package bindlock_test

import (
	"context"
	"fmt"
	"log"

	"bindlock"
)

// ExampleCompile parses a kernel and reports its operation mix.
func ExampleCompile() {
	g, err := bindlock.Compile(`
kernel axpy;
input a, x, y;
output r;
r = a * x + y;
`)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stat()
	fmt.Printf("%s: %d mul, %d add\n", st.Name, st.Muls, st.Adds)
	// Output: axpy: 1 mul, 1 add
}

// ExampleDesign_CoDesign runs the paper's co-design flow on a tiny kernel.
func ExampleDesign_CoDesign() {
	d, err := bindlock.Prepare(context.Background(), `
kernel pair;
input a, b, c, d;
output y, z;
y = a * 7 + b;
z = c * 7 + d;
`,
		bindlock.WithMaxFUs(2), bindlock.WithSamples(400),
		bindlock.WithWorkload(bindlock.WorkloadImageBlocks), bindlock.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	cands := d.Candidates(bindlock.ClassMul, 4)
	co, err := d.CoDesign(context.Background(), bindlock.ClassMul, 1, 1, cands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked FUs: %d, locked inputs per FU: %d\n",
		len(co.Cfg.Locks), len(co.Cfg.Locks[0].Minterms))
	fmt.Printf("errors positive: %v\n", co.Errors > 0)
	// Output:
	// locked FUs: 1, locked inputs per FU: 1
	// errors positive: true
}

// ExampleResilience evaluates Eqn. 1 for a one-minterm SFLL lock.
func ExampleResilience() {
	d, err := bindlock.Prepare(context.Background(), `
kernel one;
input a, b;
output y;
y = a + b;
`,
		bindlock.WithMaxFUs(1), bindlock.WithSamples(100),
		bindlock.WithWorkload(bindlock.WorkloadUniform), bindlock.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	cands := d.Candidates(bindlock.ClassAdd, 1)
	cfg, err := d.NewLockConfig(bindlock.ClassAdd, 1, [][]bindlock.Minterm{cands})
	if err != nil {
		log.Fatal(err)
	}
	lam, err := bindlock.Resilience(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ = %.0f expected SAT iterations\n", lam)
	// Output: λ = 65536 expected SAT iterations
}

func ExampleDesign_Elaborate() {
	d, err := bindlock.Prepare(context.Background(), `
kernel tiny;
input a, b;
output y;
y = a + b;
`,
		bindlock.WithMaxFUs(1), bindlock.WithSamples(50),
		bindlock.WithWorkload(bindlock.WorkloadUniform), bindlock.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	b, err := d.BindBaseline(bindlock.ClassAdd, "area")
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Elaborate(map[bindlock.Class]*bindlock.Binding{bindlock.ClassAdd: b}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inputs: %d bits, outputs: %d bits\n",
		len(res.Circuit.Inputs), len(res.Circuit.Outputs))
	// Output: inputs: 16 bits, outputs: 8 bits
}
