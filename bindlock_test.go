package bindlock

import (
	"context"
	"testing"
)

const quickKernel = `
kernel demo;
input a, b, c, d;
output y, z;
t0 = a * b;
t1 = c * d;
t2 = t0 + t1;
t3 = t2 + a;
t4 = t3 + c;
y = t4;
z = t2 - d;
`

func TestPrepareAndCoDesignFacade(t *testing.T) {
	d, err := Prepare(context.Background(), quickKernel, WithMaxFUs(2), WithSamples(300), WithWorkload(WorkloadImageBlocks), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Candidates(ClassAdd, 8)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	co, err := d.CoDesign(context.Background(), ClassAdd, 1, 2, cands)
	if err != nil {
		t.Fatal(err)
	}
	if co.Errors <= 0 {
		t.Fatal("co-design produced no errors")
	}

	// The identical locking configuration on the area baseline cannot do
	// better (co-design optimised binding and minterms together).
	area, err := d.BindBaseline(ClassAdd, "area")
	if err != nil {
		t.Fatal(err)
	}
	eArea, err := d.ApplicationErrors(co.Cfg, area)
	if err != nil {
		t.Fatal(err)
	}
	if eArea > co.Errors {
		t.Fatalf("area baseline %d beats co-design %d", eArea, co.Errors)
	}

	lam, err := Resilience(co.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lam < 1000 {
		t.Fatalf("resilience λ = %v, implausibly low for 2 locked minterms", lam)
	}
}

func TestObfuscationAwareFacade(t *testing.T) {
	d, err := Prepare(context.Background(), quickKernel, WithMaxFUs(2), WithSamples(200), WithWorkload(WorkloadAudio), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Candidates(ClassMul, 4)
	lock, err := d.NewLockConfig(ClassMul, 1, [][]Minterm{{cands[0]}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.BindObfuscationAware(ClassMul, lock)
	if err != nil {
		t.Fatal(err)
	}
	eObf, err := d.ApplicationErrors(lock, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"area", "power", "random"} {
		bb, err := d.BindBaseline(ClassMul, base)
		if err != nil {
			t.Fatal(err)
		}
		eBase, err := d.ApplicationErrors(lock, bb)
		if err != nil {
			t.Fatal(err)
		}
		if eBase > eObf {
			t.Errorf("%s baseline %d beats obf-aware %d (Thm. 2 violated)", base, eBase, eObf)
		}
	}
	if _, err := d.BindBaseline(ClassMul, "nope"); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestOverheadFacade(t *testing.T) {
	d, err := Prepare(context.Background(), quickKernel, WithMaxFUs(2), WithSamples(100), WithWorkload(WorkloadUniform), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	add, err := d.BindBaseline(ClassAdd, "area")
	if err != nil {
		t.Fatal(err)
	}
	mul, err := d.BindBaseline(ClassMul, "area")
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Overhead(map[Class]*Binding{ClassAdd: add, ClassMul: mul})
	if err != nil {
		t.Fatal(err)
	}
	if m.Registers <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if len(Benchmarks()) != 11 {
		t.Fatal("want 11 benchmarks")
	}
	d, err := PrepareBenchmark(context.Background(), "fir", WithMaxFUs(3), WithSamples(100), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.G.Name != "fir" {
		t.Fatalf("prepared %q", d.G.Name)
	}
	if _, err := PrepareBenchmark(context.Background(), "nope", WithMaxFUs(3), WithSamples(100), WithSeed(2)); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := BenchmarkByName("dct"); err != nil {
		t.Fatal(err)
	}
}

func TestLockAndAttackFacade(t *testing.T) {
	out, err := LockAndAttack(context.Background(), 3, 0b110101)
	if err != nil {
		t.Fatal(err)
	}
	if out.KeyBits != 6 || out.Iterations < 1 || out.GateCount <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestMethodologyFacade(t *testing.T) {
	d, err := PrepareBenchmark(context.Background(), "dct", WithMaxFUs(3), WithSamples(300), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Candidates(ClassAdd, 10)
	plan, err := d.Methodology(context.Background(), ClassAdd, 2, cands, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Errors < 50 {
		t.Fatalf("plan misses error target: %+v", plan)
	}
}

func TestCompileFacadeError(t *testing.T) {
	if _, err := Compile("kernel broken"); err == nil {
		t.Fatal("bad source must error")
	}
}
