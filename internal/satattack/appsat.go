package satattack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bindlock/internal/cnf"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
	"bindlock/internal/progress"
	"bindlock/internal/sat"
)

// This file implements an AppSAT-style approximate attack: run the exact
// SAT attack's DIP loop with an early-termination budget, extract the best
// candidate key, and estimate its error rate by random oracle queries.
//
// Against high-corruption locking the approximate attack recovers an exact
// or near-exact key almost immediately. Against critical-minterm locking it
// also returns a low-error key quickly — but that key still corrupts the
// protected minterms, which is precisely why the paper can afford few locked
// inputs as long as binding routes the workload onto them (and why
// approximation-resilience arguments [12] favour the critical-minterm
// family).

// ApproxOptions tunes the approximate attack.
type ApproxOptions struct {
	// MaxIterations is the early-termination DIP budget (default 16).
	MaxIterations int
	// ErrorSamples is the number of random queries used to estimate the
	// candidate key's error rate (default 2000).
	ErrorSamples int
	// Seed drives the random error-estimation queries.
	Seed int64
	// MaxConflicts bounds each SAT call, routed through the backend factory
	// so every solver the attack creates is bounded consistently.
	MaxConflicts int64
	// Solver names the registered sat backend to solve with ("" means
	// sat.DefaultBackend).
	Solver string
	// Backend, when non-nil, supplies the solver factory directly and takes
	// precedence over Solver.
	Backend sat.Factory
	// Incremental defers the constraint-only key solver to extraction time,
	// rebuilding it from the query transcript; see Options.Incremental.
	Incremental bool
	// Retry tunes per-query oracle retry (zero value: single attempt).
	Retry RetryPolicy
	// Votes is the number of oracle queries per DIP and per error sample,
	// folded per output bit by majority vote (default 1).
	Votes int
	// Quorum is the minimum agreeing votes per output bit (default simple
	// majority, Votes/2+1).
	Quorum int
}

// ApproxResult reports an approximate attack.
type ApproxResult struct {
	// Key is the best candidate key after the DIP budget.
	Key []bool
	// Iterations is the number of DIPs actually used.
	Iterations int
	// Exact records whether the DIP loop converged (miter UNSAT) within
	// the budget — the key is then provably correct.
	Exact bool
	// EstErrorRate is the sampled fraction of inputs on which the
	// candidate key disagrees with the oracle.
	EstErrorRate float64
	// Duration is the wall time of the attack.
	Duration time.Duration
}

const approxOp = "satattack: approx attack"

// ApproxAttack runs the early-terminating SAT attack against the locked
// circuit. Cancellation is honoured per DIP and per error-estimation sample;
// an interrupted run returns the partial ApproxResult alongside the typed
// interruption error.
func ApproxAttack(ctx context.Context, locked *netlist.Circuit, oracle Oracle, opts ApproxOptions) (*ApproxResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	if len(locked.Keys) == 0 {
		return nil, fmt.Errorf("satattack: circuit %q has no key inputs", locked.Name)
	}
	budget := opts.MaxIterations
	if budget == 0 {
		budget = 16
	}
	samples := opts.ErrorSamples
	if samples == 0 {
		samples = 2000
	}
	hook := progress.FromContext(ctx)
	progress.Start(hook, "approx-attack", locked.Name)
	start := time.Now()
	q := newQuerier(oracle, opts.Retry, opts.Votes, opts.Quorum, metrics.FromContext(ctx))

	factory, _, err := resolveBackend(opts.Solver, opts.Backend, opts.MaxConflicts)
	if err != nil {
		return nil, err
	}
	me := cnf.NewEncoderBackend(factory())
	inst1, err := me.Encode(locked, nil, nil)
	if err != nil {
		return nil, err
	}
	inst2, err := me.Encode(locked, inst1.Inputs, nil)
	if err != nil {
		return nil, err
	}
	diffs := make([]int, len(inst1.Outputs))
	for i := range diffs {
		diffs[i] = me.XorVar(inst1.Outputs[i], inst2.Outputs[i])
	}
	act := sat.NewLit(me.GuardedAtLeastOne(diffs), false)

	// Key solver, eager in rebuild mode, transcript-reconstructed in
	// incremental mode — the same discipline as the exact attack.
	newKeyEncoder := func() (*cnf.Encoder, []int) {
		ke := cnf.NewEncoderBackend(factory())
		return ke, ke.FreshVars(len(locked.Keys))
	}
	addKeyConstraint := func(ke *cnf.Encoder, keyVars []int, dip, outs []bool) error {
		inBits := ke.ConstVars(dip)
		ci, err := ke.Encode(locked, inBits, keyVars)
		if err != nil {
			return err
		}
		for i, ov := range ci.Outputs {
			ke.FixVar(ov, outs[i])
		}
		return nil
	}
	var ke *cnf.Encoder
	var keyVars []int
	if !opts.Incremental {
		ke, keyVars = newKeyEncoder()
	}
	var dips, answers [][]bool
	keyEncoder := func() (*cnf.Encoder, []int, error) {
		if !opts.Incremental {
			return ke, keyVars, nil
		}
		kke, kv := newKeyEncoder()
		for i, outs := range answers {
			if err := addKeyConstraint(kke, kv, dips[i], outs); err != nil {
				return nil, nil, err
			}
		}
		return kke, kv, nil
	}

	res := &ApproxResult{}
	interrupted := func(cause error) (*ApproxResult, error) {
		res.Duration = time.Since(start)
		kke, kv, kerr := keyEncoder()
		if kerr == nil {
			if found, err := kke.S.Solve(context.WithoutCancel(ctx)); err == nil && found {
				res.Key = make([]bool, len(kv))
				for i, v := range kv {
					res.Key[i] = kke.S.Value(v)
				}
			}
		}
		progress.End(hook, "approx-attack", fmt.Sprintf("interrupted after %d DIPs", res.Iterations))
		return res, interrupt.Rewrap(approxOp, cause, res)
	}
	for res.Iterations < budget {
		if cerr := interrupt.Check(ctx, approxOp, nil); cerr != nil {
			return interrupted(cerr)
		}
		found, err := me.S.SolveAssuming(ctx, act)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return interrupted(err)
			}
			return nil, fmt.Errorf("satattack: approx miter solve: %w", err)
		}
		if !found {
			res.Exact = true
			break
		}
		res.Iterations++
		progress.Tick(hook, "approx-attack", res.Iterations, budget)
		dip := make([]bool, len(inst1.Inputs))
		for i, v := range inst1.Inputs {
			dip[i] = me.S.Value(v)
		}
		outs, err := q.query(ctx, dip)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return interrupted(err)
			}
			return nil, fmt.Errorf("satattack: approx oracle query (iteration %d): %w", res.Iterations, err)
		}
		dips = append(dips, dip)
		answers = append(answers, outs)
		inBits := me.ConstVars(dip)
		for _, kv := range [][]int{inst1.Keys, inst2.Keys} {
			ci, err := me.Encode(locked, inBits, kv)
			if err != nil {
				return nil, err
			}
			for i, ov := range ci.Outputs {
				me.FixVar(ov, outs[i])
			}
		}
		if !opts.Incremental {
			if err := addKeyConstraint(ke, keyVars, dip, outs); err != nil {
				return nil, err
			}
		}
	}

	ke, keyVars, err = keyEncoder()
	if err != nil {
		return nil, err
	}
	found, err := ke.S.Solve(ctx)
	if err != nil {
		if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
			return interrupted(err)
		}
		return nil, fmt.Errorf("satattack: approx key extraction: %w", err)
	}
	if !found {
		return nil, fmt.Errorf("satattack: constraints unsatisfiable; oracle inconsistent with netlist")
	}
	res.Key = make([]bool, len(keyVars))
	for i, v := range keyVars {
		res.Key[i] = ke.S.Value(v)
	}

	// Estimate the candidate key's error rate by random queries.
	rng := rand.New(rand.NewSource(opts.Seed))
	n := len(locked.Inputs)
	wrong := 0
	for s := 0; s < samples; s++ {
		if s%256 == 0 {
			if cerr := interrupt.Check(ctx, approxOp, nil); cerr != nil {
				res.EstErrorRate = float64(wrong) / float64(s+1)
				res.Duration = time.Since(start)
				progress.End(hook, "approx-attack", "interrupted during error estimation")
				return res, interrupt.Rewrap(approxOp, cerr, res)
			}
		}
		in := make([]bool, n)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		got, err := locked.Eval(in, res.Key)
		if err != nil {
			return nil, err
		}
		want, err := q.query(ctx, in)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				res.EstErrorRate = float64(wrong) / float64(s+1)
				res.Duration = time.Since(start)
				progress.End(hook, "approx-attack", "interrupted during error estimation")
				return res, interrupt.Rewrap(approxOp, err, res)
			}
			return nil, fmt.Errorf("satattack: approx error estimation: %w", err)
		}
		for i := range got {
			if got[i] != want[i] {
				wrong++
				break
			}
		}
	}
	res.EstErrorRate = float64(wrong) / float64(samples)
	res.Duration = time.Since(start)
	progress.End(hook, "approx-attack", fmt.Sprintf("%d DIPs, est err %.3f", res.Iterations, res.EstErrorRate))
	return res, nil
}
