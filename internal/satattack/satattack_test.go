package satattack

import (
	"context"
	"errors"
	"testing"
	"time"

	"bindlock/internal/interrupt"
	"bindlock/internal/progress"

	"bindlock/internal/locking"
	"bindlock/internal/netlist"
)

func TestAttackXORLockedAdder(t *testing.T) {
	// Random XOR locking falls to the SAT attack in a handful of
	// iterations — the observation motivating SAT-resilient schemes.
	base, err := netlist.NewAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockXOR(base, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 30 {
		t.Errorf("XOR locking took %d iterations; expected quick collapse", res.Iterations)
	}
	if res.Duration <= 0 || len(res.DIPs) != res.Iterations {
		t.Errorf("bookkeeping: duration=%v dips=%d iters=%d", res.Duration, len(res.DIPs), res.Iterations)
	}
	t.Logf("xor-locked adder: %d iterations in %v", res.Iterations, res.Duration)
}

func TestAttackSFLLIsExpensive(t *testing.T) {
	// SFLL-HD(0) on a 3-bit adder: 6-bit key, 64-minterm input space.
	// Each DIP eliminates O(1) keys; the attack hits the secret after
	// traversing on average half the key space, so the MEAN iteration
	// count over random secrets sits near λ/2 (λ from Eqn. 1 ≈ 64). Any
	// single secret can fall early or late depending on the solver's
	// deterministic elimination order.
	base, err := netlist.NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	secrets := []uint64{0b101101, 0b000000, 0b111111, 0b010010, 0b100001,
		0b011011, 0b110100, 0b001110}
	total := 0
	for _, s := range secrets {
		locked, key, err := netlist.LockSFLLHD0(base, []uint64{s})
		if err != nil {
			t.Fatal(err)
		}
		oracle := OracleFromCircuit(locked, key)
		res, err := Attack(context.Background(), locked, oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
			t.Fatal(err)
		}
		total += res.Iterations
	}
	mean := float64(total) / float64(len(secrets))
	lam, err := locking.ExpectedSATIterations(6, 1, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	// Mean must be the same order of magnitude as λ/2 (band [λ/8, 2λ]),
	// far above the handful of DIPs XOR locking survives.
	if mean < lam/8 || mean > 2*lam {
		t.Errorf("mean iterations = %.1f, Eqn.1 λ = %v (acceptance band [%v, %v])",
			mean, lam, lam/8, 2*lam)
	}
	t.Logf("sfll adder: mean %.1f iterations over %d secrets (Eqn.1 λ = %v)",
		mean, len(secrets), lam)
}

func TestAttackRoutingLockedAdder(t *testing.T) {
	base, err := netlist.NewAdder(2) // 4 inputs: power of two
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockRouting(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Fatal(err)
	}
	t.Logf("routing-locked adder: %d iterations", res.Iterations)
}

func TestAttackMultiplier(t *testing.T) {
	base, err := netlist.NewMultiplier(3)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockSFLLHD0(base, []uint64{0b010110})
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestAttackIterationBudget(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{5})
	oracle := OracleFromCircuit(locked, key)
	_, err := Attack(context.Background(), locked, oracle, Options{MaxIterations: 2})
	if !errors.Is(err, ErrIterationBudget) {
		t.Fatalf("err = %v, want iteration budget", err)
	}
}

func TestAttackRejectsUnlockedCircuit(t *testing.T) {
	base, _ := netlist.NewAdder(2)
	if _, err := Attack(context.Background(), base, OracleFromCircuit(base, nil), Options{}); err == nil {
		t.Fatal("circuit without keys must be rejected")
	}
}

func TestAttackInconsistentOracle(t *testing.T) {
	// An oracle that answers from a different function: constraints become
	// unsatisfiable and the attack reports the inconsistency rather than
	// fabricating a key.
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{7})
	honest := OracleFromCircuit(locked, key)
	// Flip output bit 1, which no key bit influences (SFLL only perturbs
	// bit 0): the very first I/O constraint is unsatisfiable for every key.
	bogus := OracleFunc(func(inputs []bool) ([]bool, error) {
		outs, err := honest.Query(inputs)
		if err != nil {
			return nil, err
		}
		outs[1] = !outs[1]
		return outs, nil
	})
	_, err := Attack(context.Background(), locked, bogus, Options{})
	if err == nil {
		t.Fatal("inconsistent oracle must produce an error")
	}
}

func TestVerifyKeyDetectsWrongKey(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{0b000111})
	oracle := OracleFromCircuit(locked, key)
	wrong := append([]bool(nil), key...)
	wrong[0] = !wrong[0]
	if err := VerifyKey(context.Background(), locked, wrong, oracle); err == nil {
		t.Fatal("VerifyKey must reject a wrong key")
	}
	if err := VerifyKey(context.Background(), locked, key, oracle); err != nil {
		t.Fatalf("VerifyKey rejected the correct key: %v", err)
	}
}

// TestVerifyKeyWideCircuit is the regression test for the 64-input wrap:
// `1 << n` overflowed to a zero-size sweep space, so VerifyKey on a circuit
// with 64+ inputs checked no patterns at all and silently accepted any key.
func TestVerifyKeyWideCircuit(t *testing.T) {
	base, err := netlist.NewAdder(32) // 64 primary inputs
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockXOR(base, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	wrong := make([]bool, len(key))
	for i, b := range key {
		wrong[i] = !b
	}
	if err := VerifyKey(context.Background(), locked, wrong, oracle); err == nil {
		t.Fatal("VerifyKey accepted a wrong key on a 64-input circuit")
	}
	if err := VerifyKey(context.Background(), locked, key, oracle); err != nil {
		t.Fatalf("VerifyKey rejected the correct key: %v", err)
	}
}

// TestAttackArchitectureIndependence: the SAT attack's iteration behaviour
// depends on the locked FUNCTION, not the FU micro-architecture. Locking the
// same minterm on a ripple-carry and a carry-lookahead adder must both fall
// to the attack with verified keys, at comparable effort.
func TestAttackArchitectureIndependence(t *testing.T) {
	variants, err := netlist.ArchitectureVariants("adder", 3)
	if err != nil {
		t.Fatal(err)
	}
	secret := uint64(0b011010)
	var iters []int
	for _, base := range variants {
		locked, key, err := netlist.LockSFLLHD0(base, []uint64{secret})
		if err != nil {
			t.Fatal(err)
		}
		oracle := OracleFromCircuit(locked, key)
		res, err := Attack(context.Background(), locked, oracle, Options{})
		if err != nil {
			t.Fatalf("%s: %v", base.Name, err)
		}
		if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
			t.Fatalf("%s: %v", base.Name, err)
		}
		iters = append(iters, res.Iterations)
	}
	// Identical functions: the DIP space is the same; solver heuristics can
	// wander, so allow slack but demand the same order of magnitude.
	lo, hi := iters[0], iters[0]
	for _, n := range iters[1:] {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi > 8*lo+8 {
		t.Errorf("iteration counts diverge across architectures: %v", iters)
	}
}

// TestAttackCancellationMidRun: the acceptance scenario from the co-design
// methodology — an SFLL-locked adder whose λ (Eqn. 1) is far beyond any
// interactive budget, attacked under a 50ms context deadline. The attack
// must return promptly with a typed budget error carrying a partial result
// whose DIP count is non-zero.
func TestAttackCancellationMidRun(t *testing.T) {
	base, err := netlist.NewAdder(8) // 16 inputs: λ = 2^16 DIPs
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockSFLLHD0(base, []uint64{0xBEEF})
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Attack(ctx, locked, oracle, Options{})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("attack under a 50ms deadline must not complete")
	}
	if !errors.Is(err, interrupt.ErrBudgetExceeded) {
		t.Errorf("errors.Is(err, interrupt.ErrBudgetExceeded) = false: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false: %v", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("attack returned after %v; want prompt return near the 50ms deadline", elapsed)
	}
	if res == nil {
		t.Fatal("interrupted attack must return its partial result")
	}
	if res.Iterations == 0 {
		t.Error("partial result has zero DIP iterations; expected progress before the deadline")
	}
	if len(res.Key) != len(locked.Keys) {
		t.Errorf("partial result missing best-so-far key: len=%d want %d", len(res.Key), len(locked.Keys))
	}
	if p, ok := interrupt.Partial[*Result](err); !ok || p != res {
		t.Errorf("error must carry the same partial result: %v %v", p, ok)
	}
	t.Logf("interrupted after %d DIPs in %v", res.Iterations, elapsed)
}

// TestAttackExplicitCancel: an already-cancelled context aborts before the
// first DIP and classifies as cancellation, not budget exhaustion.
func TestAttackExplicitCancel(t *testing.T) {
	base, _ := netlist.NewAdder(4)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Attack(ctx, locked, OracleFromCircuit(locked, key), Options{})
	if !errors.Is(err, interrupt.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want cancellation semantics", err)
	}
	if res == nil || res.Iterations != 0 {
		t.Fatalf("pre-cancelled attack: res = %+v", res)
	}
}

// TestAttackBudgetPartialResult: the iteration-budget exit must populate
// the partial key, DIP count, and duration rather than abandoning them.
func TestAttackBudgetPartialResult(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{5})
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{MaxIterations: 2})
	if !errors.Is(err, ErrIterationBudget) || !errors.Is(err, interrupt.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want iteration budget with typed kind", err)
	}
	if res == nil {
		t.Fatal("budget exit must return the partial result")
	}
	if res.Iterations != 2 || len(res.DIPs) != 2 {
		t.Errorf("partial iterations = %d, DIPs = %d; want 2, 2", res.Iterations, len(res.DIPs))
	}
	if len(res.Key) != len(locked.Keys) {
		t.Errorf("budget exit missing best-guess key: len=%d want %d", len(res.Key), len(locked.Keys))
	}
	if res.Duration <= 0 {
		t.Error("budget exit missing duration")
	}
}

// TestApproxAttackCancellation: ApproxAttack honours an expired deadline
// during its DIP loop and returns the partial result.
func TestApproxAttackCancellation(t *testing.T) {
	base, _ := netlist.NewAdder(8)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{0xACE})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := ApproxAttack(ctx, locked, OracleFromCircuit(locked, key),
		ApproxOptions{MaxIterations: 1 << 20})
	if err == nil {
		t.Fatal("deadline must interrupt the approximate attack")
	}
	if !errors.Is(err, interrupt.ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want budget/deadline semantics", err)
	}
	if res == nil {
		t.Fatal("interrupted approx attack must return its partial result")
	}
	t.Logf("approx attack interrupted after %d DIPs", res.Iterations)
}

// TestAttackEmitsProgress: a context-carried hook observes attack phase
// start, per-DIP steps, and phase end.
func TestAttackEmitsProgress(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{9})
	var c progress.Counter
	ctx := progress.NewContext(context.Background(), &c)
	res, err := Attack(ctx, locked, OracleFromCircuit(locked, key), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Starts("attack") != 1 || c.Ends("attack") != 1 {
		t.Errorf("phase events: starts=%d ends=%d", c.Starts("attack"), c.Ends("attack"))
	}
	if c.Steps("attack") != res.Iterations {
		t.Errorf("step events = %d, want one per DIP (%d)", c.Steps("attack"), res.Iterations)
	}
}
