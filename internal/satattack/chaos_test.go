package satattack

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"bindlock/internal/fault"
	"bindlock/internal/netlist"
)

// TestAttackChaos is the `make chaos` hook: BINDLOCK_CHAOS_SEED drives the
// fault plan, so every chaos run exercises a different injected schedule and
// must still recover a correct key. Without the variable it runs with a
// fixed seed, keeping the path covered on plain `go test`.
//
// The rates are chosen so the retry/voting envelope holds for every seed,
// not just lucky ones: a 5-vote quorum-3 answer goes wrong only when three
// or more votes flip the same bit (probability ~(5 choose 3)·0.002³ ≈ 8e-8
// per bit per DIP), and a vote dies only after six straight transients
// (0.1⁶ = 1e-6).
func TestAttackChaos(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("BINDLOCK_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BINDLOCK_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	base, err := netlist.NewAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockXOR(base, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	perfect := OracleFromCircuit(locked, key)
	inj := fault.New(fault.Plan{Seed: seed, TransientRate: 0.1, BitFlipRate: 0.002})
	noisy := OracleFunc(inj.WrapOracle(perfect.Query))

	res, err := Attack(context.Background(), locked, noisy, Options{
		Retry:  RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond, Seed: seed},
		Votes:  5,
		Quorum: 3,
	})
	if err != nil {
		t.Fatalf("attack under chaos seed %d: %v", seed, err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, perfect); err != nil {
		t.Fatalf("chaos seed %d recovered a wrong key: %v", seed, err)
	}
	t.Logf("chaos seed %d: %d iterations, %d physical oracle calls", seed, res.Iterations, inj.Calls())
}
