package satattack

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
)

// A checkpoint preserves the expensive, externally-observable half of an
// attack: the oracle transcript. DIPs and their observed answers are the
// only inputs the attack takes from the outside world — everything else
// (CNF encoding, solver state, learned clauses) is a deterministic function
// of them. Resume therefore replays: the attack loop re-runs from iteration
// zero, asserting each freshly solved DIP matches the recorded one and
// substituting the recorded answer for a live oracle query. Once the
// transcript is exhausted, live querying continues seamlessly. Because the
// solver is deterministic and sees the identical clause sequence, the
// continuation — key, iteration count, deterministic metrics — is
// bit-identical to an uninterrupted run, without serialising any solver
// internals. Re-solving is cheap; oracle queries against a flaky physical
// IC are the resource checkpoints exist to protect.

// CheckpointVersion is the format version written by Save and required by
// LoadCheckpoint. Version 2 guards the miter's at-least-one-difference
// clause behind an activation literal (the warm-solver refactor) — a version
// 1 transcript would replay against a different clause stream and could
// diverge mid-resume, so it is rejected up front rather than part-replayed.
const CheckpointVersion = 2

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// attack being resumed: wrong circuit shape, or a replayed iteration solved
// a DIP different from the recorded one.
var ErrCheckpointMismatch = errors.New("satattack: checkpoint mismatch")

// Checkpoint is the durable state of a partially completed attack. Bit
// vectors are '0'/'1' strings, LSB first (index i of the slice is byte i of
// the string), keeping the JSON diffable and platform-independent.
type Checkpoint struct {
	Version   int    `json:"version"`
	Circuit   string `json:"circuit"`
	InputBits int    `json:"input_bits"`
	KeyBits   int    `json:"key_bits"`
	// Iterations is the number of completed DIP iterations; DIPs and
	// Answers each hold exactly that many entries, in discovery order.
	Iterations int `json:"iterations"`
	// OracleCalls counts physical oracle invocations so far — retries and
	// votes included. A resumed run seeds its querier with it, and a fault
	// injector wrapped around the oracle is Seek'd to it, so the injected
	// fault schedule stays aligned with an uninterrupted run.
	OracleCalls uint64   `json:"oracle_calls"`
	DIPs        []string `json:"dips"`
	Answers     []string `json:"answers"`
	// Solver names the sat backend that produced the transcript ("" means
	// the default backend, for transcripts written before the field existed).
	// Different engines walk different DIP sequences, so resuming under
	// another backend is rejected. The incremental flag is deliberately NOT
	// recorded: both attack modes drive the identical miter clause/solve
	// stream, so a transcript is mode-independent by construction.
	Solver string `json:"solver,omitempty"`
	// Metrics optionally embeds the registry snapshot at save time, for
	// post-mortem inspection; resume does not consume it.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// LoadCheckpoint reads and validates a checkpoint file written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("satattack: load checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("satattack: load checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointMismatch, cp.Version, CheckpointVersion)
	}
	if len(cp.DIPs) != cp.Iterations || len(cp.Answers) != cp.Iterations {
		return nil, fmt.Errorf("%w: %d iterations but %d DIPs / %d answers",
			ErrCheckpointMismatch, cp.Iterations, len(cp.DIPs), len(cp.Answers))
	}
	for i := range cp.DIPs {
		if _, err := stringToBits(cp.DIPs[i]); err != nil {
			return nil, fmt.Errorf("%w: DIP %d: %v", ErrCheckpointMismatch, i, err)
		}
		if _, err := stringToBits(cp.Answers[i]); err != nil {
			return nil, fmt.Errorf("%w: answer %d: %v", ErrCheckpointMismatch, i, err)
		}
	}
	return cp, nil
}

// Save writes the checkpoint atomically: JSON to a temp file in the target
// directory, fsync'd, then renamed over path. A crash mid-write leaves
// either the previous checkpoint or the new one, never a torn file.
func (cp *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	return nil
}

// validateFor rejects a checkpoint recorded against a different circuit or a
// different solver backend before the attack spends any work on it.
func (cp *Checkpoint) validateFor(locked *netlist.Circuit, solver string) error {
	if cp.Circuit != locked.Name || cp.InputBits != len(locked.Inputs) || cp.KeyBits != len(locked.Keys) {
		return fmt.Errorf("%w: checkpoint is for %q (%d inputs, %d keys), attack target is %q (%d inputs, %d keys)",
			ErrCheckpointMismatch, cp.Circuit, cp.InputBits, cp.KeyBits,
			locked.Name, len(locked.Inputs), len(locked.Keys))
	}
	if normalizeSolver(cp.Solver) != normalizeSolver(solver) {
		return fmt.Errorf("%w: checkpoint transcript was produced by solver backend %q, attack is using %q",
			ErrCheckpointMismatch, normalizeSolver(cp.Solver), normalizeSolver(solver))
	}
	return nil
}

// bitsToString renders a bit vector as a '0'/'1' string, LSB first.
func bitsToString(bits []bool) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func stringToBits(s string) ([]bool, error) {
	bits := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			bits[i] = true
		case '0':
		default:
			return nil, fmt.Errorf("bit %d is %q, want '0' or '1'", i, s[i])
		}
	}
	return bits, nil
}

func encodeBitVectors(vs [][]bool) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = bitsToString(v)
	}
	return out
}

func equalBits(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
