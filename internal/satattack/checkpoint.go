package satattack

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
)

// A checkpoint preserves the expensive, externally-observable half of an
// attack: the oracle transcript. DIPs and their observed answers are the
// only inputs the attack takes from the outside world — everything else
// (CNF encoding, solver state, learned clauses) is a deterministic function
// of them. Resume therefore replays: the attack loop re-runs from iteration
// zero, asserting each freshly solved DIP matches the recorded one and
// substituting the recorded answer for a live oracle query. Once the
// transcript is exhausted, live querying continues seamlessly. Because the
// solver is deterministic and sees the identical clause sequence, the
// continuation — key, iteration count, deterministic metrics — is
// bit-identical to an uninterrupted run, without serialising any solver
// internals. Re-solving is cheap; oracle queries against a flaky physical
// IC are the resource checkpoints exist to protect.

// CheckpointVersion is the format version written by Save and required by
// LoadCheckpoint. Version 2 guards the miter's at-least-one-difference
// clause behind an activation literal (the warm-solver refactor) — a version
// 1 transcript would replay against a different clause stream and could
// diverge mid-resume, so it is rejected up front rather than part-replayed.
// Version 3 adds the integrity envelope (Digest always, MAC when keyed): a
// bit-rotted or attacker-modified transcript is detected at load and
// treated as a checkpoint mismatch — cold restart — never part-replayed
// into a silently divergent resume.
const CheckpointVersion = 3

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// attack being resumed: wrong circuit shape, or a replayed iteration solved
// a DIP different from the recorded one.
var ErrCheckpointMismatch = errors.New("satattack: checkpoint mismatch")

// Checkpoint is the durable state of a partially completed attack. Bit
// vectors are '0'/'1' strings, LSB first (index i of the slice is byte i of
// the string), keeping the JSON diffable and platform-independent.
type Checkpoint struct {
	Version   int    `json:"version"`
	Circuit   string `json:"circuit"`
	InputBits int    `json:"input_bits"`
	KeyBits   int    `json:"key_bits"`
	// Iterations is the number of completed DIP iterations; DIPs and
	// Answers each hold exactly that many entries, in discovery order.
	Iterations int `json:"iterations"`
	// OracleCalls counts physical oracle invocations so far — retries and
	// votes included. A resumed run seeds its querier with it, and a fault
	// injector wrapped around the oracle is Seek'd to it, so the injected
	// fault schedule stays aligned with an uninterrupted run.
	OracleCalls uint64   `json:"oracle_calls"`
	DIPs        []string `json:"dips"`
	Answers     []string `json:"answers"`
	// Solver names the sat backend that produced the transcript ("" means
	// the default backend, for transcripts written before the field existed).
	// Different engines walk different DIP sequences, so resuming under
	// another backend is rejected. The incremental flag is deliberately NOT
	// recorded: both attack modes drive the identical miter clause/solve
	// stream, so a transcript is mode-independent by construction.
	Solver string `json:"solver,omitempty"`
	// CycleBreak records whether the transcript was produced with CycSAT
	// cycle-breaking constraints conjoined (Options.CycleBreak). The
	// constraints change the miter's clause stream and therefore the DIP
	// sequence, so a transcript never replays across modes. omitempty keeps
	// pre-cyclic version-3 files loading: they were all written with the
	// flag effectively false.
	CycleBreak bool `json:"cycle_break,omitempty"`
	// Metrics optionally embeds the registry snapshot at save time, for
	// post-mortem inspection; resume does not consume it.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Digest is "sha256:<hex>" over the canonical encoding of the
	// checkpoint with Digest and MAC cleared. Always written; detects
	// accidental corruption (bit rot, torn bytes) even for unkeyed loads.
	Digest string `json:"digest,omitempty"`
	// MAC is "hmac-sha256:<hex>" over the same canonical bytes, keyed by
	// the node checkpoint key. Written when saving with a key; a keyed
	// load REQUIRES a valid MAC, so an attacker who can rewrite the file
	// (and recompute the digest) still cannot forge a transcript without
	// the key.
	MAC string `json:"mac,omitempty"`
}

// digestPrefix / macPrefix name the algorithms in the envelope fields, so a
// future rotation is a new prefix rather than a silent format change.
const (
	digestPrefix = "sha256:"
	macPrefix    = "hmac-sha256:"
)

// canonicalBytes returns the encoding the integrity envelope signs: compact
// JSON of the checkpoint with both envelope fields cleared.
func (cp *Checkpoint) canonicalBytes() ([]byte, error) {
	c := *cp
	c.Digest, c.MAC = "", ""
	data, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("satattack: checkpoint encode: %w", err)
	}
	return data, nil
}

// seal fills the integrity envelope: Digest always, MAC when key is non-nil.
func (cp *Checkpoint) seal(key []byte) error {
	canon, err := cp.canonicalBytes()
	if err != nil {
		return err
	}
	sum := sha256.Sum256(canon)
	cp.Digest = digestPrefix + hex.EncodeToString(sum[:])
	cp.MAC = ""
	if len(key) > 0 {
		mac := hmac.New(sha256.New, key)
		mac.Write(canon)
		cp.MAC = macPrefix + hex.EncodeToString(mac.Sum(nil))
	}
	return nil
}

// verifyEnvelope checks the integrity envelope against the canonical bytes.
// Unkeyed: the digest must verify (tolerating pre-envelope files only via
// the version gate, which already rejected them). Keyed: a valid MAC under
// the key is additionally REQUIRED — a missing or wrong MAC is tamper, not
// a soft downgrade. Every failure wraps ErrCheckpointMismatch.
func (cp *Checkpoint) verifyEnvelope(key []byte) error {
	canon, err := cp.canonicalBytes()
	if err != nil {
		return err
	}
	digest, ok := cutPrefix(cp.Digest, digestPrefix)
	if !ok {
		return fmt.Errorf("%w: missing or malformed digest %q", ErrCheckpointMismatch, cp.Digest)
	}
	sum := sha256.Sum256(canon)
	want, err := hex.DecodeString(digest)
	if err != nil || subtle.ConstantTimeCompare(sum[:], want) != 1 {
		return fmt.Errorf("%w: digest verification failed (corrupt checkpoint)", ErrCheckpointMismatch)
	}
	if len(key) == 0 {
		return nil
	}
	tag, ok := cutPrefix(cp.MAC, macPrefix)
	if !ok {
		return fmt.Errorf("%w: keyed load requires an hmac-sha256 MAC, got %q", ErrCheckpointMismatch, cp.MAC)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(canon)
	got, err := hex.DecodeString(tag)
	if err != nil || !hmac.Equal(mac.Sum(nil), got) {
		return fmt.Errorf("%w: MAC verification failed (tampered checkpoint)", ErrCheckpointMismatch)
	}
	return nil
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	return s[len(prefix):], true
}

// LoadCheckpoint reads and validates a checkpoint file written by Save.
// key, when non-nil, is the node checkpoint key: the file's MAC must then
// verify, so a tampered transcript cold-restarts instead of resuming.
func LoadCheckpoint(path string, key []byte) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("satattack: load checkpoint: %w", err)
	}
	cp, err := DecodeCheckpoint(data, key)
	if err != nil {
		return nil, fmt.Errorf("satattack: load checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// DecodeCheckpoint parses and validates checkpoint bytes (see
// LoadCheckpoint). It is the seam for callers that interpose on the raw
// read — the server routes checkpoint bytes through the fault injector's
// corruption site before decoding. Integrity, version and shape failures
// all wrap ErrCheckpointMismatch.
func DecodeCheckpoint(data []byte, key []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointMismatch, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointMismatch, cp.Version, CheckpointVersion)
	}
	if err := cp.verifyEnvelope(key); err != nil {
		return nil, err
	}
	if len(cp.DIPs) != cp.Iterations || len(cp.Answers) != cp.Iterations {
		return nil, fmt.Errorf("%w: %d iterations but %d DIPs / %d answers",
			ErrCheckpointMismatch, cp.Iterations, len(cp.DIPs), len(cp.Answers))
	}
	for i := range cp.DIPs {
		if _, err := stringToBits(cp.DIPs[i]); err != nil {
			return nil, fmt.Errorf("%w: DIP %d: %v", ErrCheckpointMismatch, i, err)
		}
		if _, err := stringToBits(cp.Answers[i]); err != nil {
			return nil, fmt.Errorf("%w: answer %d: %v", ErrCheckpointMismatch, i, err)
		}
	}
	return cp, nil
}

// Save writes the checkpoint atomically: JSON to a temp file in the target
// directory, fsync'd, then renamed over path. A crash mid-write leaves
// either the previous checkpoint or the new one, never a torn file. The
// integrity envelope is (re)computed on every save; key, when non-nil,
// additionally MACs the transcript (see Digest/MAC).
func (cp *Checkpoint) Save(path string, key []byte) error {
	if err := cp.seal(key); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("satattack: save checkpoint: %w", err)
	}
	return nil
}

// validateFor rejects a checkpoint recorded against a different circuit, a
// different solver backend or a different cycle-constraint mode before the
// attack spends any work on it.
func (cp *Checkpoint) validateFor(locked *netlist.Circuit, solver string, cycleBreak bool) error {
	if cp.Circuit != locked.Name || cp.InputBits != len(locked.Inputs) || cp.KeyBits != len(locked.Keys) {
		return fmt.Errorf("%w: checkpoint is for %q (%d inputs, %d keys), attack target is %q (%d inputs, %d keys)",
			ErrCheckpointMismatch, cp.Circuit, cp.InputBits, cp.KeyBits,
			locked.Name, len(locked.Inputs), len(locked.Keys))
	}
	if normalizeSolver(cp.Solver) != normalizeSolver(solver) {
		return fmt.Errorf("%w: checkpoint transcript was produced by solver backend %q, attack is using %q",
			ErrCheckpointMismatch, normalizeSolver(cp.Solver), normalizeSolver(solver))
	}
	if cp.CycleBreak != cycleBreak {
		return fmt.Errorf("%w: checkpoint transcript recorded with cycle_break=%v, attack is running with %v",
			ErrCheckpointMismatch, cp.CycleBreak, cycleBreak)
	}
	return nil
}

// bitsToString renders a bit vector as a '0'/'1' string, LSB first.
func bitsToString(bits []bool) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func stringToBits(s string) ([]bool, error) {
	bits := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			bits[i] = true
		case '0':
		default:
			return nil, fmt.Errorf("bit %d is %q, want '0' or '1'", i, s[i])
		}
	}
	return bits, nil
}

func encodeBitVectors(vs [][]bool) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = bitsToString(v)
	}
	return out
}

func equalBits(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
