package satattack

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"bindlock/internal/netlist"
)

// latchCircuit builds the minimal cyclic locked circuit w = x OR (k AND w):
// the correct key k=0 breaks the loop (identity function), the wrong key
// k=1 closes a latch whose CNF has two fixed points at x=0 — the exact
// structure that makes the acyclic-miter SAT attack spin.
func latchCircuit(t *testing.T) (*netlist.Circuit, []bool) {
	t.Helper()
	c := netlist.New("latch")
	x := c.AddInput()
	k := c.AddKey()
	fb := c.And(k, x)
	w := c.Or(x, fb)
	c.MarkOutput(w)
	c.AddFeedback(fb, 1, w, 0, true)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c, []bool{false}
}

// TestUnconstrainedAttackDivergesOnLatch demonstrates the motivating failure
// mode: without cycle-breaking constraints the miter keeps re-finding the
// same DIP — each iteration's fresh constraint instance admits the latch's
// other fixed point — and the attack burns its whole iteration budget.
func TestUnconstrainedAttackDivergesOnLatch(t *testing.T) {
	locked, key := latchCircuit(t)
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{MaxIterations: 8})
	if err == nil {
		// A terminating run would have to produce a correct key; prove it
		// did not.
		if verr := VerifyKey(context.Background(), locked, res.Key, oracle); verr == nil {
			t.Fatal("unconstrained attack succeeded on a cyclic circuit")
		}
		return
	}
	if !errors.Is(err, ErrIterationBudget) {
		t.Fatalf("error = %v, want ErrIterationBudget", err)
	}
	if res == nil || res.Iterations != 8 {
		t.Fatalf("partial result = %+v, want 8 burned iterations", res)
	}
}

// TestCycSATRecoversLatchKey checks the constrained attack on the same
// circuit: the constraints collapse the key space to the acyclic half, the
// miter is immediately UNSAT and the extracted key verifies.
func TestCycSATRecoversLatchKey(t *testing.T) {
	locked, key := latchCircuit(t)
	oracle := OracleFromCircuit(locked, key)
	for _, incremental := range []bool{false, true} {
		res, err := Attack(context.Background(), locked, oracle,
			Options{CycleBreak: true, Incremental: incremental})
		if err != nil {
			t.Fatalf("incremental=%v: %v", incremental, err)
		}
		if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
			t.Fatalf("incremental=%v: recovered key wrong: %v", incremental, err)
		}
	}
}

// TestCycSATModesAgreeOnCyclicAdder runs the CycSAT-constrained attack on a
// cyclically locked adder (feedback cycles plus functional decoys, so the
// DIP loop does real work) in rebuild and incremental mode and requires
// bit-identical keys, DIP transcripts and iteration counts.
func TestCycSATModesAgreeOnCyclicAdder(t *testing.T) {
	base, err := netlist.NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		locked, key, err := netlist.LockCyclic(base, 2, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		oracle := OracleFromCircuit(locked, key)
		var ref *Result
		for _, incremental := range []bool{false, true} {
			res, err := Attack(context.Background(), locked, oracle,
				Options{CycleBreak: true, Incremental: incremental})
			if err != nil {
				t.Fatalf("seed %d incremental=%v: %v", seed, incremental, err)
			}
			if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
				t.Fatalf("seed %d incremental=%v: %v", seed, incremental, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !equalBits(res.Key, ref.Key) || res.Iterations != ref.Iterations {
				t.Fatalf("seed %d: modes disagree: key %v/%v iterations %d/%d",
					seed, res.Key, ref.Key, res.Iterations, ref.Iterations)
			}
			for i := range ref.DIPs {
				if !equalBits(res.DIPs[i], ref.DIPs[i]) {
					t.Fatalf("seed %d: DIP %d differs between modes", seed, i)
				}
			}
		}
	}
}

// TestCheckpointCycleBreakMismatch checks a transcript recorded under one
// cycle-constraint mode never resumes under the other.
func TestCheckpointCycleBreakMismatch(t *testing.T) {
	base, err := netlist.NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint only exists once the DIP loop has run; scan seeds for a
	// lock whose decoys force at least one distinguishing input.
	var locked *netlist.Circuit
	var key []bool
	var oracle Oracle
	path := filepath.Join(t.TempDir(), "cyclic.ckpt")
	for seed := int64(1); ; seed++ {
		if seed > 32 {
			t.Fatal("no seed in 1..32 produced a DIP-requiring cyclic lock")
		}
		locked, key, err = netlist.LockCyclic(base, 1, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		oracle = OracleFromCircuit(locked, key)
		res, err := Attack(context.Background(), locked, oracle,
			Options{CycleBreak: true, CheckpointPath: path, CheckpointEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations > 0 {
			break
		}
	}
	cp, err := LoadCheckpoint(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.CycleBreak {
		t.Fatal("checkpoint does not record cycle_break")
	}
	_, err = Attack(context.Background(), locked, oracle, Options{Resume: cp})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("cross-mode resume error = %v, want ErrCheckpointMismatch", err)
	}
	// Same mode resumes cleanly.
	res, err := Attack(context.Background(), locked, oracle,
		Options{CycleBreak: true, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Fatal(err)
	}
}
