package satattack

import (
	"context"
	"errors"
	"testing"

	"bindlock/internal/interrupt"
	"bindlock/internal/netlist"
	"bindlock/internal/sat"
)

// lockedAdder builds an SFLL-HD0-locked ripple-carry adder for backend
// plumbing tests.
func lockedAdder(t *testing.T, width int) (*netlist.Circuit, []bool) {
	t.Helper()
	base, err := netlist.NewAdder(width)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockSFLLHD0(base, []uint64{0b010110})
	if err != nil {
		t.Fatal(err)
	}
	return locked, key
}

// countingBackend wraps a real backend and records what was configured on
// it, so the option-plumbing tests can see through the factory.
type countingBackend struct {
	sat.Backend
	maxConflicts int64
}

func (c *countingBackend) SetMaxConflicts(n int64) {
	c.maxConflicts = n
	c.Backend.SetMaxConflicts(n)
}

func TestResolveBackendDefaults(t *testing.T) {
	f, name, err := resolveBackend("", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != sat.DefaultBackend {
		t.Fatalf("name = %q, want default %q", name, sat.DefaultBackend)
	}
	if _, ok := f().(*sat.Solver); !ok {
		t.Fatalf("default factory built %T, want *sat.Solver", f())
	}
}

func TestResolveBackendUnknownName(t *testing.T) {
	if _, _, err := resolveBackend("no-such-engine", nil, 0); err == nil {
		t.Fatal("unknown backend name resolved without error")
	}
}

// TestResolveBackendAppliesMaxConflicts pins the Options.MaxConflicts
// propagation: every solver the resolved factory builds — miter, key
// extractor, transcript rebuild — must carry the per-call conflict bound.
func TestResolveBackendAppliesMaxConflicts(t *testing.T) {
	var built []*countingBackend
	explicit := func() sat.Backend {
		b := &countingBackend{Backend: sat.NewSolver()}
		built = append(built, b)
		return b
	}
	f, name, err := resolveBackend("", explicit, 7)
	if err != nil {
		t.Fatal(err)
	}
	if name != sat.DefaultBackend {
		t.Fatalf("name = %q, want %q", name, sat.DefaultBackend)
	}
	f()
	f()
	if len(built) != 2 {
		t.Fatalf("explicit factory built %d backends, want 2", len(built))
	}
	for i, b := range built {
		if b.maxConflicts != 7 {
			t.Fatalf("backend %d has maxConflicts %d, want 7", i, b.maxConflicts)
		}
	}
}

// TestAttackMaxConflictsBudget drives the propagation end to end: a conflict
// budget far too small for the miter must surface as a typed budget error
// from the attack, not an infinite solve.
func TestAttackMaxConflictsBudget(t *testing.T) {
	locked, key := lockedAdder(t, 3)
	oracle := OracleFromCircuit(locked, key)
	res, err := Attack(context.Background(), locked, oracle, Options{MaxConflicts: 1})
	if err == nil {
		t.Fatalf("attack with a 1-conflict budget succeeded after %d iterations", res.Iterations)
	}
	if !errors.Is(err, interrupt.ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
}
