package satattack

import (
	"context"
	"testing"

	"bindlock/internal/netlist"
)

func TestApproxAttackExactOnXOR(t *testing.T) {
	// High-corruption XOR locking: the approximate attack converges
	// exactly well within a small budget.
	base, _ := netlist.NewAdder(4)
	locked, key, err := netlist.LockXOR(base, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	res, err := ApproxAttack(context.Background(), locked, oracle, ApproxOptions{MaxIterations: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("XOR locking not solved exactly within budget (%d iterations)", res.Iterations)
	}
	if res.EstErrorRate != 0 {
		t.Fatalf("exact key has error rate %v", res.EstErrorRate)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestApproxAttackOnSFLL(t *testing.T) {
	// Critical-minterm locking: with a tiny DIP budget the attack returns
	// an approximate key with near-zero error rate — yet the protected
	// minterm typically remains corrupted, which is the property the
	// paper's binding co-design weaponises.
	base, _ := netlist.NewAdder(4) // 8-bit input space, 8-bit key
	secret := uint64(0b10110101)
	locked, key, err := netlist.LockSFLLHD0(base, []uint64{secret})
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)
	res, err := ApproxAttack(context.Background(), locked, oracle, ApproxOptions{MaxIterations: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Skip("attack converged exactly within 8 DIPs; elimination order hit the secret")
	}
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d, want the full budget", res.Iterations)
	}
	// Low overall error: at most the two corrupted minterms out of 256,
	// so the sampled rate must be tiny.
	if res.EstErrorRate > 0.05 {
		t.Fatalf("approximate key error rate %v, want near zero", res.EstErrorRate)
	}
	// The approximate key must NOT be the correct key (the miter still had
	// DIPs), so the protected minterm stays corrupted.
	if netlist.BitsToUint64(res.Key) == secret {
		t.Fatal("budgeted attack returned the exact secret despite remaining DIPs")
	}
	in := netlist.Uint64ToBits(secret, 8)
	got, err := locked.Eval(in, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query(in)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range got {
		if got[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("protected minterm not corrupted under the approximate key")
	}
}

func TestApproxAttackRejectsUnlocked(t *testing.T) {
	base, _ := netlist.NewAdder(2)
	if _, err := ApproxAttack(context.Background(), base, OracleFromCircuit(base, nil), ApproxOptions{}); err == nil {
		t.Fatal("unlocked circuit must be rejected")
	}
}

func TestApproxAttackDefaults(t *testing.T) {
	base, _ := netlist.NewAdder(2)
	locked, key, err := netlist.LockXOR(base, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxAttack(context.Background(), locked, OracleFromCircuit(locked, key), ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
}
