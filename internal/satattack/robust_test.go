package satattack

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bindlock/internal/fault"
	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
	"bindlock/internal/progress"
)

// noSleep replaces the querier's backoff sleeps so retry tests run instantly.
func noSleep(q *querier) *querier {
	q.sleep = func(time.Duration) {}
	return q
}

func TestQuerierRetryRecovers(t *testing.T) {
	// An oracle that fails twice then answers must succeed under a
	// 3-attempt policy, with the failures visible in retry_ counters.
	calls := 0
	oracle := func(in []bool) ([]bool, error) {
		calls++
		if calls <= 2 {
			return nil, errors.New("transient")
		}
		return []bool{true, false}, nil
	}
	reg := metrics.New()
	q := noSleep(newQuerier(OracleFunc(oracle), RetryPolicy{MaxAttempts: 3}, 1, 1, reg))
	out, err := q.query(context.Background(), nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !out[0] || out[1] {
		t.Errorf("out = %v, want [true false]", out)
	}
	s := reg.Snapshot()
	if v, _ := s.Counter("retry_oracle_failures_total"); v != 2 {
		t.Errorf("retry_oracle_failures_total = %d, want 2", v)
	}
	if v, _ := s.Counter("retry_oracle_retries_total"); v != 2 {
		t.Errorf("retry_oracle_retries_total = %d, want 2", v)
	}
	if q.calls != 3 {
		t.Errorf("physical calls = %d, want 3", q.calls)
	}
}

func TestQuerierRetryExhaustion(t *testing.T) {
	oracle := func(in []bool) ([]bool, error) { return nil, errors.New("dead") }
	q := noSleep(newQuerier(OracleFunc(oracle), RetryPolicy{MaxAttempts: 4}, 1, 1, nil))
	_, err := q.query(context.Background(), nil)
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want ErrOracleUnavailable", err)
	}
	if q.calls != 4 {
		t.Errorf("physical calls = %d, want 4 (exhausted attempts)", q.calls)
	}
}

func TestQuerierMajorityVoting(t *testing.T) {
	// Two of five votes corrupt bit 0; 3-of-5 majority recovers the truth.
	call := 0
	oracle := func(in []bool) ([]bool, error) {
		call++
		out := []bool{false, true}
		if call == 2 || call == 4 {
			out[0] = true
		}
		return out, nil
	}
	q := noSleep(newQuerier(OracleFunc(oracle), RetryPolicy{}, 5, 3, nil))
	out, err := q.query(context.Background(), nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if out[0] || !out[1] {
		t.Errorf("out = %v, want [false true]", out)
	}
}

func TestQuerierNoQuorum(t *testing.T) {
	// A bit that splits 2/2 can never reach a 3-vote quorum.
	call := 0
	oracle := func(in []bool) ([]bool, error) {
		call++
		return []bool{call%2 == 0}, nil
	}
	reg := metrics.New()
	q := noSleep(newQuerier(OracleFunc(oracle), RetryPolicy{}, 4, 3, reg))
	_, err := q.query(context.Background(), nil)
	if !errors.Is(err, ErrNoQuorum) || !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want ErrNoQuorum (wrapping ErrOracleUnavailable)", err)
	}
	if v, _ := reg.Snapshot().Counter("retry_quorum_failures_total"); v != 1 {
		t.Errorf("retry_quorum_failures_total = %d, want 1", v)
	}
}

func TestVerifyKeyRetriesFlakyOracle(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockXOR(base, 4, 1)
	perfect := OracleFromCircuit(locked, key)
	calls := 0
	flaky := OracleFunc(func(in []bool) ([]bool, error) {
		calls++
		if calls%3 == 0 {
			return nil, errors.New("transient")
		}
		return perfect.Query(in)
	})
	// Without a policy the first hiccup kills the sweep...
	err := VerifyKey(context.Background(), locked, key, flaky)
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("no-retry VerifyKey err = %v, want ErrOracleUnavailable", err)
	}
	// ...with one it completes.
	if err := VerifyKey(context.Background(), locked, key, flaky,
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}); err != nil {
		t.Fatalf("retrying VerifyKey: %v", err)
	}
}

func TestVerifyKeyOracleUnavailable(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockXOR(base, 4, 1)
	dead := OracleFunc(func(in []bool) ([]bool, error) { return nil, errors.New("unplugged") })
	err := VerifyKey(context.Background(), locked, key, dead,
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want ErrOracleUnavailable after exhaustion", err)
	}
}

// TestAttackSurvivesFaultPlan is the fixed-seed acceptance scenario: 10%
// transient failures plus 1% bit-flip noise on every oracle answer, and the
// attack with retries + 3-of-5 voting still recovers a correct key, with the
// fault and retry counters visible in the metrics snapshot.
func TestAttackSurvivesFaultPlan(t *testing.T) {
	base, err := netlist.NewAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockXOR(base, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	perfect := OracleFromCircuit(locked, key)
	reg := metrics.New()
	inj := fault.New(fault.Plan{Seed: 2021, TransientRate: 0.10, BitFlipRate: 0.01}).WithRegistry(reg)
	noisy := OracleFunc(inj.WrapOracle(perfect.Query))

	ctx := metrics.NewContext(context.Background(), reg)
	res, err := Attack(ctx, locked, noisy, Options{
		Retry:  RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond, Seed: 1},
		Votes:  5,
		Quorum: 3,
	})
	if err != nil {
		t.Fatalf("attack under fault plan: %v", err)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, perfect); err != nil {
		t.Fatalf("recovered key is wrong: %v", err)
	}
	s := reg.Snapshot()
	for _, name := range []string{"fault_oracle_calls_total", "retry_oracle_attempts_total", "retry_votes_total"} {
		if v, ok := s.Counter(name); !ok || v == 0 {
			t.Errorf("counter %s = %d (present %v); want > 0", name, v, ok)
		}
	}
	if tr, _ := s.Counter("fault_transients_total"); tr == 0 {
		t.Error("fault plan injected no transients; test is vacuous")
	}
	// The environment telemetry must stay out of the deterministic subset.
	det := s.Deterministic()
	for _, c := range det.Counters {
		for _, p := range []string{"fault_", "retry_", "resume_"} {
			if strings.HasPrefix(c.Name, p) {
				t.Errorf("deterministic subset leaked %s", c.Name)
			}
		}
	}
	t.Logf("survived fault plan: %d iterations, %d physical oracle calls", res.Iterations, inj.Calls())
}

func TestAttackOracleFailurePartialResult(t *testing.T) {
	// An oracle that dies permanently mid-attack: the attack surfaces
	// ErrOracleUnavailable together with the partial result.
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockSFLLHD0(base, []uint64{5})
	perfect := OracleFromCircuit(locked, key)
	calls := 0
	dying := OracleFunc(func(in []bool) ([]bool, error) {
		calls++
		if calls > 2 {
			return nil, errors.New("oracle power lost")
		}
		return perfect.Query(in)
	})
	res, err := Attack(context.Background(), locked, dying, Options{
		Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
	})
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want ErrOracleUnavailable", err)
	}
	if res == nil || res.Iterations == 0 || len(res.Key) != len(locked.Keys) {
		t.Fatalf("oracle failure must leave a partial result with best-guess key: %+v", res)
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attack.ckpt")
	cp := &Checkpoint{
		Version: CheckpointVersion, Circuit: "adder4", InputBits: 8, KeyBits: 8,
		Iterations: 2, OracleCalls: 17,
		DIPs:    []string{"01010101", "10000001"},
		Answers: []string{"00110", "11001"},
	}
	if err := cp.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(cp)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("round trip mismatch:\n%s\n%s", a, b)
	}

	bad := *cp
	bad.Version = 99
	if err := bad.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("wrong version: err = %v, want ErrCheckpointMismatch", err)
	}
	bad = *cp
	bad.Iterations = 3
	if err := bad.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("truncated transcript: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent"), nil); err == nil {
		t.Error("missing file must error")
	}
}

// TestCheckpointTamperDetected pins the v3 integrity envelope: a checkpoint
// whose bytes changed on disk after Save — bit rot, a torn write, or hand
// editing — fails to load with ErrCheckpointMismatch rather than resuming a
// silently divergent transcript.
func TestCheckpointTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attack.ckpt")
	cp := &Checkpoint{
		Version: CheckpointVersion, Circuit: "adder4", InputBits: 8, KeyBits: 8,
		Iterations: 2, OracleCalls: 17,
		DIPs:    []string{"01010101", "10000001"},
		Answers: []string{"00110", "11001"},
	}
	if err := cp.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Edit one covered field without breaking the JSON: the recorded oracle
	// transcript now claims 97 calls instead of 17.
	tampered := bytes.Replace(raw, []byte(`"oracle_calls": 17`), []byte(`"oracle_calls": 97`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("fixture drifted: oracle_calls field not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("tampered field: err = %v, want ErrCheckpointMismatch", err)
	}
	// Reformatting alone (whitespace) is not tamper: the digest covers the
	// canonical compact encoding, not the pretty-printed file bytes.
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(loose)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, compact, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, nil); err != nil {
		t.Fatalf("reformatted checkpoint rejected: %v", err)
	}
	// Unparseable bytes are the same mismatch, not a different failure mode.
	if _, err := DecodeCheckpoint([]byte(`{"version": 3, "torn`), nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("torn bytes: err = %v, want ErrCheckpointMismatch", err)
	}
	// A pre-envelope file (version 2, no digest) is rejected by the version
	// gate before any envelope check.
	old := *cp
	old.Version, old.Digest, old.MAC = 2, "", ""
	data, err := json.Marshal(&old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(data, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("v2 file: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointMACKeying pins keyed-mode semantics: a node key at load time
// REQUIRES a valid MAC — unkeyed files and wrong-key MACs are tamper — while
// a keyed file still loads digest-only where no key is configured.
func TestCheckpointMACKeying(t *testing.T) {
	key := bytes.Repeat([]byte{0x5c}, 32)
	path := filepath.Join(t.TempDir(), "attack.ckpt")
	cp := &Checkpoint{
		Version: CheckpointVersion, Circuit: "adder4", InputBits: 8, KeyBits: 8,
		Iterations: 1, OracleCalls: 9,
		DIPs:    []string{"01010101"},
		Answers: []string{"00110"},
	}
	if err := cp.Save(path, key); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, key); err != nil {
		t.Fatalf("keyed round trip: %v", err)
	}
	if _, err := LoadCheckpoint(path, nil); err != nil {
		t.Fatalf("keyed file under an unkeyed load (digest-only): %v", err)
	}
	if _, err := LoadCheckpoint(path, bytes.Repeat([]byte{0x11}, 32)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong key: err = %v, want ErrCheckpointMismatch", err)
	}
	// One flipped MAC hex digit voids the envelope.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("hmac-sha256:"))
	if i < 0 {
		t.Fatal("keyed save wrote no MAC")
	}
	raw[i+len("hmac-sha256:")] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, key); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("flipped MAC digit: err = %v, want ErrCheckpointMismatch", err)
	}
	// An unkeyed file cannot satisfy a keyed load: stripping the MAC is not
	// a downgrade an attacker gets for free.
	if err := cp.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, key); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("MAC-less file under a keyed load: err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointRejectsWrongCircuit(t *testing.T) {
	base, _ := netlist.NewAdder(3)
	locked, key, _ := netlist.LockXOR(base, 4, 1)
	cp := &Checkpoint{
		Version: CheckpointVersion, Circuit: "someone-else",
		InputBits: len(locked.Inputs), KeyBits: len(locked.Keys),
	}
	_, err := Attack(context.Background(), locked, OracleFromCircuit(locked, key), Options{Resume: cp})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

// attackToCompletion runs an uninterrupted attack on a fresh registry and
// returns the result plus the deterministic metrics subset, serialised.
func attackToCompletion(t *testing.T, locked *netlist.Circuit, oracle Oracle, opts Options) (*Result, string) {
	t.Helper()
	reg := metrics.New()
	ctx := metrics.NewContext(context.Background(), reg)
	res, err := Attack(ctx, locked, oracle, opts)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	det, err := json.Marshal(reg.Snapshot().Deterministic())
	if err != nil {
		t.Fatal(err)
	}
	return res, string(det)
}

// TestAttackCheckpointResume kills an attack at a fixed iteration via a
// cancelling progress hook, resumes from the checkpoint it left behind, and
// requires the recovered key, iteration count, DIP transcript, and
// deterministic metrics to be byte-identical to an uninterrupted run.
func TestAttackCheckpointResume(t *testing.T) {
	base, err := netlist.NewAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := netlist.LockXOR(base, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFromCircuit(locked, key)

	full, fullDet := attackToCompletion(t, locked, oracle, Options{})
	if full.Iterations < 2 {
		t.Skipf("attack converged in %d iterations; nothing to interrupt", full.Iterations)
	}
	killAt := full.Iterations - 1

	// Phase 1: run with checkpointing, cancel as soon as iteration killAt
	// completes. The checkpoint is written before the Step event fires, so
	// the file holds exactly killAt iterations.
	path := filepath.Join(t.TempDir(), "attack.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := progress.Func(func(e progress.Event) {
		if e.Kind == progress.Step && e.Phase == "attack" && e.Done >= killAt {
			cancel()
		}
	})
	_, err = Attack(progress.NewContext(ctx, hook), locked, oracle,
		Options{CheckpointPath: path, CheckpointEvery: 1})
	if err == nil {
		t.Fatal("cancelled attack must not complete")
	}
	cp, err := LoadCheckpoint(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iterations != killAt {
		t.Fatalf("checkpoint holds %d iterations, want %d", cp.Iterations, killAt)
	}

	// Phase 2: resume on a fresh registry and compare everything.
	res, resDet := attackToCompletion(t, locked, oracle, Options{Resume: cp})
	if !equalBits(res.Key, full.Key) {
		t.Errorf("resumed key %v != uninterrupted key %v", res.Key, full.Key)
	}
	if res.Iterations != full.Iterations {
		t.Errorf("resumed iterations %d != uninterrupted %d", res.Iterations, full.Iterations)
	}
	if len(res.DIPs) != len(full.DIPs) {
		t.Fatalf("resumed DIP count %d != %d", len(res.DIPs), len(full.DIPs))
	}
	for i := range res.DIPs {
		if !equalBits(res.DIPs[i], full.DIPs[i]) {
			t.Errorf("DIP %d diverged: %s vs %s", i, bitsToString(res.DIPs[i]), bitsToString(full.DIPs[i]))
		}
	}
	if resDet != fullDet {
		t.Errorf("Deterministic() snapshots differ:\nresumed:       %s\nuninterrupted: %s", resDet, fullDet)
	}
	if err := VerifyKey(context.Background(), locked, res.Key, oracle); err != nil {
		t.Errorf("resumed key wrong: %v", err)
	}
}

// TestAttackCheckpointMismatchOnDivergence feeds a checkpoint whose recorded
// DIP cannot match what the solver re-derives.
func TestAttackCheckpointMismatchOnDivergence(t *testing.T) {
	base, _ := netlist.NewAdder(4)
	locked, key, _ := netlist.LockXOR(base, 8, 3)
	oracle := OracleFromCircuit(locked, key)
	full, _ := attackToCompletion(t, locked, oracle, Options{})
	if full.Iterations == 0 {
		t.Skip("attack needed no DIPs")
	}
	flipped := append([]bool(nil), full.DIPs[0]...)
	flipped[0] = !flipped[0]
	cp := &Checkpoint{
		Version: CheckpointVersion, Circuit: locked.Name,
		InputBits: len(locked.Inputs), KeyBits: len(locked.Keys),
		Iterations: 1,
		DIPs:       []string{bitsToString(flipped)},
		Answers:    []string{bitsToString(make([]bool, len(locked.Outputs)))},
	}
	_, err := Attack(context.Background(), locked, oracle, Options{Resume: cp})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestApproxAttackWithVoting: the approximate attack shares the resilient
// querier, so a noisy oracle still yields a usable low-error key.
func TestApproxAttackWithVoting(t *testing.T) {
	base, _ := netlist.NewAdder(4)
	locked, key, _ := netlist.LockXOR(base, 8, 3)
	perfect := OracleFromCircuit(locked, key)
	inj := fault.New(fault.Plan{Seed: 7, TransientRate: 0.1, BitFlipRate: 0.005})
	noisy := OracleFunc(inj.WrapOracle(perfect.Query))
	res, err := ApproxAttack(context.Background(), locked, noisy, ApproxOptions{
		MaxIterations: 64, ErrorSamples: 200, Seed: 3,
		Retry: RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond},
		Votes: 5, Quorum: 3,
	})
	if err != nil {
		t.Fatalf("approx attack under noise: %v", err)
	}
	if res.EstErrorRate > 0.05 {
		t.Errorf("estimated error rate %.3f; voting should have recovered a near-exact key", res.EstErrorRate)
	}
}
