package satattack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
)

// This file makes oracle I/O resilient. The attack's oracle is, in the threat
// model, a physical activated IC behind a test harness: queries can fail
// transiently, time out, or return bit-flipped answers. Two mechanisms guard
// against that — per-query retry with exponential backoff + jitter, and
// k-of-n majority voting that folds several noisy answers into one trusted
// answer per output bit. Both are policy-driven so a perfect in-process
// oracle (the default) pays a single function call and no allocation beyond
// the vote slice.

// ErrOracleUnavailable reports that a logical oracle query could not be
// answered: every retry attempt failed, or too few votes succeeded to reach
// the quorum. errors.Is(err, ErrOracleUnavailable) matches it.
var ErrOracleUnavailable = errors.New("satattack: oracle unavailable")

// ErrNoQuorum reports that the configured votes all returned, but some
// output bit split without a quorum-sized majority — the answer cannot be
// trusted. It wraps ErrOracleUnavailable, so callers checking only for that
// sentinel handle both exhaustion and disagreement.
var ErrNoQuorum = fmt.Errorf("%w: votes split below quorum", ErrOracleUnavailable)

// RetryPolicy tunes per-attempt oracle retry. The zero value means a single
// attempt with no backoff — exactly the pre-retry behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per physical query, the
	// first included (default 1: fail on the first error).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles on
	// each further attempt (default 1ms when retrying).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 250ms).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay additionally drawn uniformly at
	// random, in [0, 1] (default 0.5). Jitter only shifts wall time; it
	// never changes results, so attack determinism is unaffected.
	Jitter float64
	// Seed drives the jitter draws.
	Seed int64
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// querier answers logical oracle queries for the attack loop: each query is
// opts.Votes physical queries, each physical query retried per the policy,
// folded per output bit by majority with quorum as the minimum agreeing-vote
// count. calls counts physical oracle invocations (votes × attempts) — the
// checkpoint records it so a resumed run can Seek a fault injector back into
// schedule alignment.
type querier struct {
	oracle Oracle
	policy RetryPolicy
	votes  int
	quorum int
	rng    *rand.Rand
	mreg   *metrics.Registry
	calls  uint64
	sleep  func(time.Duration) // injectable for tests
}

func newQuerier(oracle Oracle, policy RetryPolicy, votes, quorum int, mreg *metrics.Registry) *querier {
	if votes <= 0 {
		votes = 1
	}
	if quorum <= 0 {
		quorum = votes/2 + 1
	}
	if quorum > votes {
		quorum = votes
	}
	p := policy.normalized()
	return &querier{
		oracle: oracle, policy: p, votes: votes, quorum: quorum,
		rng: rand.New(rand.NewSource(p.Seed)), mreg: mreg, sleep: time.Sleep,
	}
}

// query answers one logical oracle query. Interruption errors (context
// cancellation between retry attempts) propagate unchanged; every other
// failure mode surfaces as ErrOracleUnavailable.
func (q *querier) query(ctx context.Context, in []bool) ([]bool, error) {
	outs := make([][]bool, 0, q.votes)
	var lastErr error
	for v := 0; v < q.votes; v++ {
		out, err := q.once(ctx, in)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return nil, err
			}
			lastErr = err
			continue
		}
		outs = append(outs, out)
	}
	q.mreg.Add("retry_votes_total", int64(q.votes))
	if len(outs) < q.quorum {
		q.mreg.Add("retry_quorum_failures_total", 1)
		return nil, fmt.Errorf("%w: %d of %d votes failed (last: %v)",
			ErrOracleUnavailable, q.votes-len(outs), q.votes, lastErr)
	}
	width := len(outs[0])
	for _, o := range outs[1:] {
		if len(o) != width {
			return nil, fmt.Errorf("%w: votes disagree on output width (%d vs %d)",
				ErrOracleUnavailable, len(o), width)
		}
	}
	ans := make([]bool, width)
	for b := 0; b < width; b++ {
		ones := 0
		for _, o := range outs {
			if o[b] {
				ones++
			}
		}
		zeros := len(outs) - ones
		maj, cnt := ones > zeros, ones
		if !maj {
			cnt = zeros
		}
		if ones == zeros || cnt < q.quorum {
			q.mreg.Add("retry_quorum_failures_total", 1)
			return nil, fmt.Errorf("%w: output bit %d split %d/%d with quorum %d",
				ErrNoQuorum, b, ones, zeros, q.quorum)
		}
		ans[b] = maj
	}
	return ans, nil
}

// once runs one physical query with retry: exponential backoff from
// BaseDelay, doubled per attempt, capped at MaxDelay, plus seeded jitter.
// Cancellation is honoured between attempts so a dead oracle cannot pin the
// attack through its whole backoff ladder.
func (q *querier) once(ctx context.Context, in []bool) ([]bool, error) {
	var lastErr error
	delay := q.policy.BaseDelay
	for a := 0; a < q.policy.MaxAttempts; a++ {
		if a > 0 {
			d := delay
			if j := q.policy.Jitter; j > 0 {
				d += time.Duration(q.rng.Float64() * j * float64(delay))
			}
			if d > q.policy.MaxDelay {
				d = q.policy.MaxDelay
			}
			q.sleep(d)
			if delay <= q.policy.MaxDelay/2 {
				delay *= 2
			} else {
				delay = q.policy.MaxDelay
			}
			q.mreg.Add("retry_oracle_retries_total", 1)
			if cerr := interrupt.Check(ctx, "satattack: oracle retry", nil); cerr != nil {
				return nil, cerr
			}
		}
		q.calls++
		q.mreg.Add("retry_oracle_attempts_total", 1)
		out, err := q.oracle.Query(in)
		if err == nil {
			return out, nil
		}
		lastErr = err
		q.mreg.Add("retry_oracle_failures_total", 1)
	}
	return nil, lastErr
}
