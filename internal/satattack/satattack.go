// Package satattack implements the oracle-guided SAT attack of Subramanyan
// et al. [10], the threat model against which the paper's locking
// configurations are sized (Sec. II-A).
//
// The attack holds a locked netlist and black-box access to an activated IC
// (the oracle). It repeatedly solves a miter — two copies of the locked
// circuit with shared inputs and independent keys whose outputs differ — to
// find a distinguishing input pattern (DIP), queries the oracle on the DIP,
// and constrains both key copies to reproduce the observed output. When the
// miter becomes unsatisfiable, every key consistent with the accumulated
// constraints is functionally correct; one is extracted from a parallel
// constraint-only solver.
//
// Attack is context-aware: SFLL-style point functions are designed to blow
// up solver time, so a server embedding the attack bounds it with a context
// deadline. An interrupted attack returns the partial Result — DIP count and
// the best-so-far key guess consistent with every oracle answer observed —
// both directly and inside the typed interrupt.Error.
package satattack

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bindlock/internal/cnf"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
	"bindlock/internal/progress"
)

// Oracle answers input queries with the activated IC's outputs.
type Oracle func(inputs []bool) ([]bool, error)

// OracleFromCircuit builds the standard evaluation oracle: the locked
// circuit activated with its correct key (equivalently, the original
// circuit).
func OracleFromCircuit(c *netlist.Circuit, correctKey []bool) Oracle {
	return func(inputs []bool) ([]bool, error) {
		return c.Eval(inputs, correctKey)
	}
}

// Options tunes the attack.
type Options struct {
	// MaxIterations bounds the DIP loop (default 1 << 20).
	MaxIterations int
	// MaxConflicts bounds each SAT call (default sat.DefaultMaxConflicts).
	MaxConflicts int64
}

// Result reports a completed or interrupted attack.
type Result struct {
	// Key is a functionally correct key for the locked circuit. On an
	// interrupted attack it is the best-so-far guess consistent with every
	// observed oracle answer (nil when even that could not be extracted).
	Key []bool
	// Iterations is the number of DIPs required (λ in Eqn. 1).
	Iterations int
	// Duration is the wall time of the attack.
	Duration time.Duration
	// DIPs are the distinguishing inputs discovered, in order.
	DIPs [][]bool
}

// ErrIterationBudget is returned when the DIP loop exceeds MaxIterations.
var ErrIterationBudget = errors.New("satattack: iteration budget exhausted")

const attackOp = "satattack: attack"

// Attack runs the SAT attack against the locked circuit using the oracle.
// Cancellation is checked before every DIP iteration and inside each solver
// call. An interrupted attack — context cancelled, deadline expired, or
// iteration/conflict budget exhausted — returns the partial Result together
// with a typed error: errors.Is matches interrupt.ErrCancelled or
// interrupt.ErrBudgetExceeded (and the underlying context error), and the
// partial Result also rides inside the interrupt.Error.
func Attack(ctx context.Context, locked *netlist.Circuit, oracle Oracle, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	if len(locked.Keys) == 0 {
		return nil, fmt.Errorf("satattack: circuit %q has no key inputs", locked.Name)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 1 << 20
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "attack", locked.Name)
	start := time.Now()

	mreg := metrics.FromContext(ctx)

	// Miter solver: two key copies over shared inputs, outputs forced to
	// differ somewhere.
	me := cnf.NewEncoder()
	if opts.MaxConflicts > 0 {
		me.S.MaxConflicts = opts.MaxConflicts
	}
	inst1, err := me.Encode(locked, nil, nil)
	if err != nil {
		return nil, err
	}
	inst2, err := me.Encode(locked, inst1.Inputs, nil)
	if err != nil {
		return nil, err
	}
	diffs := make([]int, len(inst1.Outputs))
	for i := range diffs {
		diffs[i] = me.XorVar(inst1.Outputs[i], inst2.Outputs[i])
	}
	me.AtLeastOne(diffs)

	// Key solver: accumulates only the I/O constraints over one key bus;
	// it stays satisfiable (the correct key satisfies everything) and
	// yields the final key.
	ke := cnf.NewEncoder()
	if opts.MaxConflicts > 0 {
		ke.S.MaxConflicts = opts.MaxConflicts
	}
	keyVars := ke.FreshVars(len(locked.Keys))

	res := &Result{}
	// End-of-attack telemetry on every return path, completed or interrupted:
	// the miter encoder's final CNF size and the DIP count are deterministic
	// for a given circuit, so they land in the registry's deterministic
	// subset. All methods tolerate a nil registry.
	defer func() {
		mreg.Add("satattack_attacks_total", 1)
		mreg.Add("satattack_cnf_vars_total", int64(me.S.NumVars()))
		mreg.Add("satattack_cnf_clauses_total", int64(me.S.NumClauses()))
		mreg.Observe("satattack_dip_iterations", float64(res.Iterations))
	}()
	// interrupted finalises an interruption: it stamps the duration,
	// extracts the best-so-far key guess from the accumulated constraints,
	// and rewraps the cause with the attack-level partial result.
	interrupted := func(cause error) (*Result, error) {
		res.Duration = time.Since(start)
		extractKey(ctx, ke, keyVars, res)
		progress.End(hook, "attack", fmt.Sprintf("interrupted after %d DIPs", res.Iterations))
		return res, interrupt.Rewrap(attackOp, cause, res)
	}
	for res.Iterations < maxIter {
		if cerr := interrupt.Check(ctx, attackOp, nil); cerr != nil {
			return interrupted(cerr)
		}
		stopIter := mreg.Timer("satattack_iteration_seconds")
		found, err := me.S.Solve(ctx)
		stopIter()
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return interrupted(err)
			}
			return nil, fmt.Errorf("satattack: miter solve (iteration %d): %w", res.Iterations+1, err)
		}
		if !found {
			break // no more DIPs: key space collapsed to correct classes
		}
		res.Iterations++
		mreg.Add("satattack_dips_total", 1)
		progress.Emit(hook, progress.Event{
			Kind: progress.Step, Phase: "attack",
			Done: res.Iterations, Total: maxIter, Detail: "DIP",
		})

		dip := make([]bool, len(inst1.Inputs))
		for i, v := range inst1.Inputs {
			dip[i] = me.S.Value(v)
		}
		res.DIPs = append(res.DIPs, dip)
		outs, err := oracle(dip)
		if err != nil {
			return nil, fmt.Errorf("satattack: oracle query: %w", err)
		}
		mreg.Add("satattack_oracle_queries_total", 1)

		// Constrain both miter key copies and the key solver with the
		// observed I/O behaviour.
		for _, enc := range []struct {
			e    *cnf.Encoder
			keys [][]int
		}{
			{me, [][]int{inst1.Keys, inst2.Keys}},
			{ke, [][]int{keyVars}},
		} {
			inBits := enc.e.ConstVars(dip)
			for _, kv := range enc.keys {
				ci, err := enc.e.Encode(locked, inBits, kv)
				if err != nil {
					return nil, err
				}
				for i, ov := range ci.Outputs {
					enc.e.FixVar(ov, outs[i])
				}
			}
		}
	}
	if res.Iterations >= maxIter {
		cause := fmt.Errorf("%w (%d iterations)", ErrIterationBudget, maxIter)
		res.Duration = time.Since(start)
		extractKey(ctx, ke, keyVars, res)
		progress.End(hook, "attack", fmt.Sprintf("budget after %d DIPs", res.Iterations))
		return res, interrupt.Budget(attackOp, cause, res)
	}

	found, err := ke.S.Solve(ctx)
	if err != nil {
		if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
			return interrupted(err)
		}
		return nil, fmt.Errorf("satattack: key extraction: %w", err)
	}
	if !found {
		return nil, fmt.Errorf("satattack: constraints unsatisfiable; oracle inconsistent with netlist")
	}
	res.Key = make([]bool, len(keyVars))
	for i, v := range keyVars {
		res.Key[i] = ke.S.Value(v)
	}
	res.Duration = time.Since(start)
	progress.End(hook, "attack", fmt.Sprintf("%d DIPs", res.Iterations))
	return res, nil
}

// extractKey solves the accumulated I/O constraints for a best-effort key
// guess, detached from the (already-done) caller context: the constraint-only
// solver stays satisfiable and cheap, so the extraction is bounded by its own
// conflict budget rather than the expired deadline.
func extractKey(ctx context.Context, ke *cnf.Encoder, keyVars []int, res *Result) {
	if found, err := ke.S.Solve(context.WithoutCancel(ctx)); err == nil && found {
		res.Key = make([]bool, len(keyVars))
		for i, v := range keyVars {
			res.Key[i] = ke.S.Value(v)
		}
	}
}

// exhaustiveBits bounds the exhaustive VerifyKey sweep: circuits up to this
// many inputs check every pattern, larger ones a strided 2^exhaustiveBits
// subset.
const exhaustiveBits = 16

// VerifyKey checks that the recovered key makes the locked circuit agree
// with the oracle. It is exhaustive up to 2^16 input combinations and
// samples a strided subset above that; the sweep honours ctx.
func VerifyKey(ctx context.Context, locked *netlist.Circuit, key []bool, oracle Oracle) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(locked.Inputs)
	// Count iterations rather than striding to a space bound: `1 << n`
	// wraps to 0 at n = 64, which silently verified 64+-input circuits
	// against zero patterns.
	bits := n
	if bits > 64 {
		bits = 64
	}
	checks, stride := uint64(1)<<uint(bits), uint64(1)
	if bits > exhaustiveBits {
		checks = uint64(1) << uint(exhaustiveBits)
		stride = uint64(1) << uint(bits-exhaustiveBits)
	}
	const checkEvery = 1024
	for i := uint64(0); i < checks; i++ {
		v := i * stride
		if i%checkEvery == 0 {
			if err := interrupt.Check(ctx, "satattack: verify key", nil); err != nil {
				return err
			}
		}
		in := netlist.Uint64ToBits(v, n)
		got, err := locked.Eval(in, key)
		if err != nil {
			return err
		}
		want, err := oracle(in)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("satattack: key wrong at input %#x output %d", v, i)
			}
		}
	}
	return nil
}
