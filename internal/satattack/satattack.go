// Package satattack implements the oracle-guided SAT attack of Subramanyan
// et al. [10], the threat model against which the paper's locking
// configurations are sized (Sec. II-A).
//
// The attack holds a locked netlist and black-box access to an activated IC
// (the oracle). It repeatedly solves a miter — two copies of the locked
// circuit with shared inputs and independent keys whose outputs differ — to
// find a distinguishing input pattern (DIP), queries the oracle on the DIP,
// and constrains both key copies to reproduce the observed output. When the
// miter becomes unsatisfiable, every key consistent with the accumulated
// constraints is functionally correct; one is extracted from a parallel
// constraint-only solver.
//
// Attack is context-aware: SFLL-style point functions are designed to blow
// up solver time, so a server embedding the attack bounds it with a context
// deadline. An interrupted attack returns the partial Result — DIP count and
// the best-so-far key guess consistent with every oracle answer observed —
// both directly and inside the typed interrupt.Error.
package satattack

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bindlock/internal/cnf"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/netlist"
	"bindlock/internal/progress"
	"bindlock/internal/sat"
)

// Oracle answers input queries with the activated IC's outputs. Concrete
// oracles range from in-process circuit evaluation (OracleFromCircuit)
// through fault-injected and retried wrappers to, eventually, remote
// hardware; the attack only ever sees Query.
type Oracle interface {
	Query(inputs []bool) ([]bool, error)
}

// OracleFunc adapts a plain query function to the Oracle interface, the
// bridge to func-shaped seams like fault.WrapOracle.
type OracleFunc func(inputs []bool) ([]bool, error)

// Query implements Oracle.
func (f OracleFunc) Query(inputs []bool) ([]bool, error) { return f(inputs) }

// OracleFromCircuit builds the standard evaluation oracle: the locked
// circuit activated with its correct key (equivalently, the original
// circuit).
func OracleFromCircuit(c *netlist.Circuit, correctKey []bool) Oracle {
	return OracleFunc(func(inputs []bool) ([]bool, error) {
		return c.Eval(inputs, correctKey)
	})
}

// Options tunes the attack.
type Options struct {
	// MaxIterations bounds the DIP loop (default 1 << 20).
	MaxIterations int
	// MaxConflicts bounds each SAT call (default sat.DefaultMaxConflicts).
	// It is routed through the backend factory, so every solver the attack
	// creates — miter, key extractor, transcript rebuilds — is bounded
	// consistently.
	MaxConflicts int64
	// Solver names the registered sat backend to solve with ("" means
	// sat.DefaultBackend). The name is recorded in checkpoints so a
	// transcript is never resumed under a different engine.
	Solver string
	// Backend, when non-nil, supplies the solver factory directly and takes
	// precedence over Solver (tests and embedders with unregistered
	// engines). Checkpoints still record Solver as the transcript label.
	Backend sat.Factory
	// CycleBreak enables the CycSAT extension for cyclically locked
	// circuits: key-only "no structural cycle" constraints are pre-computed
	// from the netlist's feedback edges (netlist.CycleConstraints) and
	// conjoined into the miter and the key solver before the DIP loop, so
	// the attack only ever reasons over acyclic key configurations. Off by
	// default — running the plain attack against a cyclic circuit is the
	// motivating failure mode and stays expressible. The flag is recorded in
	// checkpoints: constraints change the DIP sequence, so a transcript is
	// never replayed across modes.
	CycleBreak bool
	// Incremental keeps only the one warm miter solver busy during the DIP
	// loop and defers the constraint-only key solver entirely: instead of
	// eagerly mirroring every I/O constraint into a second encoder per
	// iteration, the key solver is rebuilt from the oracle transcript at
	// extraction time with the identical clause stream. Keys and
	// deterministic metrics are bit-identical to rebuild mode by
	// construction; the per-iteration encoding work is roughly halved.
	Incremental bool
	// Retry tunes per-query oracle retry (zero value: single attempt, the
	// pre-retry behaviour).
	Retry RetryPolicy
	// Votes is the number of oracle queries per DIP, folded per output bit
	// by majority vote (default 1: trust the single answer).
	Votes int
	// Quorum is the minimum agreeing votes per output bit (default simple
	// majority, Votes/2+1). A bit that splits without a quorum-sized
	// majority fails the query with ErrNoQuorum.
	Quorum int
	// CheckpointPath, when set, makes the attack write its oracle
	// transcript (DIPs + answers + counters) atomically to this file, so a
	// killed attack can be resumed bit-identically.
	CheckpointPath string
	// CheckpointEvery is the iteration interval between checkpoint writes
	// (default 1: every iteration).
	CheckpointEvery int
	// CheckpointKey, when non-nil, MACs every checkpoint write with the
	// node key (hmac-sha256 over the canonical transcript); loading with
	// the same key then rejects any tampered file as a mismatch. nil
	// writes digest-only checkpoints (corruption detection without tamper
	// evidence).
	CheckpointKey []byte
	// Resume replays a previously saved checkpoint before querying the
	// oracle live: each re-solved DIP is asserted against the recorded one
	// (ErrCheckpointMismatch on divergence) and the recorded answer is used
	// in place of an oracle query.
	Resume *Checkpoint
}

// Result reports a completed or interrupted attack.
type Result struct {
	// Key is a functionally correct key for the locked circuit. On an
	// interrupted attack it is the best-so-far guess consistent with every
	// observed oracle answer (nil when even that could not be extracted).
	Key []bool
	// Iterations is the number of DIPs required (λ in Eqn. 1).
	Iterations int
	// Duration is the wall time of the attack.
	Duration time.Duration
	// DIPs are the distinguishing inputs discovered, in order.
	DIPs [][]bool
}

// ErrIterationBudget is returned when the DIP loop exceeds MaxIterations.
var ErrIterationBudget = errors.New("satattack: iteration budget exhausted")

const attackOp = "satattack: attack"

// normalizeSolver maps the empty backend name to the default, so checkpoint
// labels written before the field existed compare equal to explicit defaults.
func normalizeSolver(name string) string {
	if name == "" {
		return sat.DefaultBackend
	}
	return name
}

// resolveBackend turns a backend name (or an explicit factory, which wins)
// into the factory the attack builds every solver from, plus the backend
// name to label transcripts with. The factory applies maxConflicts to every
// solver it creates, so the miter, the key extractor, and any transcript
// rebuild share one consistent per-call bound.
func resolveBackend(name string, f sat.Factory, maxConflicts int64) (sat.Factory, string, error) {
	if f == nil {
		var err error
		if f, err = sat.BackendFactory(name); err != nil {
			return nil, "", err
		}
	}
	if maxConflicts > 0 {
		inner := f
		f = func() sat.Backend {
			b := inner()
			b.SetMaxConflicts(maxConflicts)
			return b
		}
	}
	return f, normalizeSolver(name), nil
}

func (o Options) backendFactory() (sat.Factory, string, error) {
	return resolveBackend(o.Solver, o.Backend, o.MaxConflicts)
}

// Attack runs the SAT attack against the locked circuit using the oracle.
// Cancellation is checked before every DIP iteration and inside each solver
// call. An interrupted attack — context cancelled, deadline expired, or
// iteration/conflict budget exhausted — returns the partial Result together
// with a typed error: errors.Is matches interrupt.ErrCancelled or
// interrupt.ErrBudgetExceeded (and the underlying context error), and the
// partial Result also rides inside the interrupt.Error.
func Attack(ctx context.Context, locked *netlist.Circuit, oracle Oracle, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	if len(locked.Keys) == 0 {
		return nil, fmt.Errorf("satattack: circuit %q has no key inputs", locked.Name)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 1 << 20
	}
	ckEvery := opts.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}

	factory, solverName, err := opts.backendFactory()
	if err != nil {
		return nil, err
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "attack", locked.Name)
	start := time.Now()

	mreg := metrics.FromContext(ctx)

	q := newQuerier(oracle, opts.Retry, opts.Votes, opts.Quorum, mreg)
	replay := opts.Resume
	if replay != nil {
		if err := replay.validateFor(locked, solverName, opts.CycleBreak); err != nil {
			return nil, err
		}
		// Physical-call continuity: the querier resumes counting where the
		// interrupted run stopped, so later checkpoints stay cumulative and
		// a fault injector Seek'd to OracleCalls stays schedule-aligned.
		q.calls = replay.OracleCalls
	}

	// Miter solver: two key copies over shared inputs, outputs forced to
	// differ somewhere. The at-least-one-difference clause is guarded by an
	// activation literal and each DIP search solves under the assumption
	// that the guard holds, so the solver stays warm across iterations and
	// the guard never contaminates the learned-clause DB when the key space
	// collapses.
	me := cnf.NewEncoderBackend(factory())
	inst1, err := me.Encode(locked, nil, nil)
	if err != nil {
		return nil, err
	}
	// The cyclic path shares every net outside the key cone between the two
	// copies: the terminal UNSAT on a cyclically locked datapath otherwise
	// spends its time re-proving two disjoint copies of the unlocked logic
	// equal. The SFLL path keeps the historical full-duplication encoding so
	// its variable stream — and with it every pinned transcript and
	// fingerprint — stays bit-identical.
	var inst2 *cnf.Instance
	if opts.CycleBreak {
		inst2, err = me.EncodeShared(locked, inst1)
	} else {
		inst2, err = me.Encode(locked, inst1.Inputs, nil)
	}
	if err != nil {
		return nil, err
	}
	// Outputs outside the key cone alias the same variable in both copies
	// and can never differ; only genuine difference candidates join the
	// miter disjunction.
	diffs := make([]int, 0, len(inst1.Outputs))
	for i := range inst1.Outputs {
		if inst1.Outputs[i] != inst2.Outputs[i] {
			diffs = append(diffs, me.XorVar(inst1.Outputs[i], inst2.Outputs[i]))
		}
	}
	act := sat.NewLit(me.GuardedAtLeastOne(diffs), false)

	// CycSAT pre-processing: derive the cycle-breaking key constraints once
	// and conjoin them over both miter key copies, so no DIP search ever
	// wanders into a key that closes a combinational loop (whose CNF fixed
	// points are unrelated to any settled circuit behaviour). The key
	// solver(s) get the same clauses below, in both modes.
	var cycleClauses []netlist.CycleClause
	if opts.CycleBreak {
		stopCC := mreg.Timer("cycsat_constraint_seconds")
		cycleClauses, err = locked.CycleConstraints()
		stopCC()
		if err != nil {
			return nil, fmt.Errorf("satattack: cycle constraints: %w", err)
		}
		mreg.Add("cycsat_constraints_total", int64(len(cycleClauses)))
		for _, kv := range [][]int{inst1.Keys, inst2.Keys} {
			if err := me.CycleClauses(kv, cycleClauses); err != nil {
				return nil, err
			}
		}
	}

	// Key solver: accumulates only the I/O constraints over one key bus; it
	// stays satisfiable (the correct key satisfies everything) and yields
	// the final key. Rebuild mode (the default) mirrors every constraint
	// into it eagerly; incremental mode skips it during the loop and
	// reconstructs it from the oracle transcript on demand, with the exact
	// clause stream the eager encoder would have accumulated — key bus
	// first, then per answered DIP the same ConstVars/Encode/FixVar
	// sequence — so the search, the model, and the metric deltas cannot
	// differ between modes.
	newKeyEncoder := func() (*cnf.Encoder, []int, error) {
		ke := cnf.NewEncoderBackend(factory())
		kv := ke.FreshVars(len(locked.Keys))
		// Cycle constraints lead the key solver's clause stream in both
		// modes, keeping rebuild and transcript reconstruction bit-identical.
		if err := ke.CycleClauses(kv, cycleClauses); err != nil {
			return nil, nil, err
		}
		return ke, kv, nil
	}
	addKeyConstraint := func(ke *cnf.Encoder, keyVars []int, dip, outs []bool) error {
		inBits := ke.ConstVars(dip)
		ci, err := ke.Encode(locked, inBits, keyVars)
		if err != nil {
			return err
		}
		for i, ov := range ci.Outputs {
			ke.FixVar(ov, outs[i])
		}
		return nil
	}
	var ke *cnf.Encoder
	var keyVars []int
	if !opts.Incremental {
		if ke, keyVars, err = newKeyEncoder(); err != nil {
			return nil, err
		}
	}

	res := &Result{}
	var answers [][]bool // oracle transcript, parallel to the answered DIPs
	// keyEncoder returns the key solver ready to extract from: the eager one
	// in rebuild mode, a transcript reconstruction in incremental mode. Only
	// answered DIPs are replayed — on an oracle failure the eager encoder is
	// missing the last DIP's constraints too, so the two stay aligned.
	keyEncoder := func() (*cnf.Encoder, []int, error) {
		if !opts.Incremental {
			return ke, keyVars, nil
		}
		kke, kv, err := newKeyEncoder()
		if err != nil {
			return nil, nil, err
		}
		for i, outs := range answers {
			if err := addKeyConstraint(kke, kv, res.DIPs[i], outs); err != nil {
				return nil, nil, err
			}
		}
		return kke, kv, nil
	}
	// End-of-attack telemetry on every return path, completed or interrupted:
	// the miter encoder's final CNF size and the DIP count are deterministic
	// for a given circuit, so they land in the registry's deterministic
	// subset. All methods tolerate a nil registry.
	defer func() {
		mreg.Add("satattack_attacks_total", 1)
		mreg.Add("satattack_cnf_vars_total", int64(me.S.NumVars()))
		mreg.Add("satattack_cnf_clauses_total", int64(me.S.NumClauses()))
		mreg.Observe("satattack_dip_iterations", float64(res.Iterations))
	}()
	// stopIter times one whole DIP iteration — miter solve, oracle query and
	// constraint encoding, but not checkpoint IO. It is re-armed per
	// iteration and safe to settle on any exit path.
	var iterTimer func()
	stopIter := func() {
		if iterTimer != nil {
			iterTimer()
			iterTimer = nil
		}
	}
	// interrupted finalises an interruption: it stamps the duration,
	// extracts the best-so-far key guess from the accumulated constraints,
	// and rewraps the cause with the attack-level partial result.
	interrupted := func(cause error) (*Result, error) {
		stopIter()
		res.Duration = time.Since(start)
		if kke, kv, kerr := keyEncoder(); kerr == nil {
			extractKey(ctx, kke, kv, res)
		}
		progress.End(hook, "attack", fmt.Sprintf("interrupted after %d DIPs", res.Iterations))
		return res, interrupt.Rewrap(attackOp, cause, res)
	}
	saveCheckpoint := func() error {
		if opts.CheckpointPath == "" {
			return nil
		}
		cp := &Checkpoint{
			Version:     CheckpointVersion,
			Circuit:     locked.Name,
			InputBits:   len(locked.Inputs),
			KeyBits:     len(locked.Keys),
			Iterations:  res.Iterations,
			OracleCalls: q.calls,
			DIPs:        encodeBitVectors(res.DIPs),
			Answers:     encodeBitVectors(answers),
			Solver:      solverName,
			CycleBreak:  opts.CycleBreak,
		}
		if snap := mreg.Snapshot(); !snap.Empty() {
			cp.Metrics = &snap
		}
		mreg.Add("resume_checkpoints_written_total", 1)
		return cp.Save(opts.CheckpointPath, opts.CheckpointKey)
	}
	for res.Iterations < maxIter {
		if cerr := interrupt.Check(ctx, attackOp, nil); cerr != nil {
			return interrupted(cerr)
		}
		iterTimer = mreg.Timer("satattack_iteration_seconds")
		found, err := me.S.SolveAssuming(ctx, act)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return interrupted(err)
			}
			stopIter()
			return nil, fmt.Errorf("satattack: miter solve (iteration %d): %w", res.Iterations+1, err)
		}
		if !found {
			stopIter()
			break // no more DIPs: key space collapsed to correct classes
		}
		res.Iterations++
		mreg.Add("satattack_dips_total", 1)

		dip := make([]bool, len(inst1.Inputs))
		for i, v := range inst1.Inputs {
			dip[i] = me.S.Value(v)
		}
		res.DIPs = append(res.DIPs, dip)

		// Answer the DIP: from the replayed transcript while it lasts (the
		// solver is deterministic, so the re-solved DIP must match the
		// recorded one), live through the resilient querier after. The
		// logical query counter covers both paths — it tracks the
		// computation, not the I/O, and so stays in the deterministic
		// metrics subset.
		var outs []bool
		if replay != nil && res.Iterations <= replay.Iterations {
			rec, _ := stringToBits(replay.DIPs[res.Iterations-1]) // validated by LoadCheckpoint
			if !equalBits(dip, rec) {
				stopIter()
				return nil, fmt.Errorf("%w: iteration %d re-solved DIP %s, checkpoint recorded %s",
					ErrCheckpointMismatch, res.Iterations, bitsToString(dip), replay.DIPs[res.Iterations-1])
			}
			outs, _ = stringToBits(replay.Answers[res.Iterations-1])
			mreg.Add("resume_replayed_queries_total", 1)
		} else {
			outs, err = q.query(ctx, dip)
			if err != nil {
				if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
					return interrupted(err)
				}
				// Oracle exhausted: surface the partial result (DIPs paid
				// for so far, best-effort key) alongside the typed error so
				// a caller holding a checkpoint loses nothing.
				stopIter()
				res.Duration = time.Since(start)
				if kke, kv, kerr := keyEncoder(); kerr == nil {
					extractKey(ctx, kke, kv, res)
				}
				progress.End(hook, "attack", fmt.Sprintf("oracle failed after %d DIPs", res.Iterations))
				return res, fmt.Errorf("satattack: oracle query (iteration %d): %w", res.Iterations, err)
			}
		}
		mreg.Add("satattack_oracle_queries_total", 1)
		answers = append(answers, outs)

		// Constrain both miter key copies — and, in rebuild mode, the eager
		// key solver — with the observed I/O behaviour.
		inBits := me.ConstVars(dip)
		for _, kv := range [][]int{inst1.Keys, inst2.Keys} {
			ci, err := me.Encode(locked, inBits, kv)
			if err != nil {
				stopIter()
				return nil, err
			}
			for i, ov := range ci.Outputs {
				me.FixVar(ov, outs[i])
			}
		}
		if !opts.Incremental {
			if err := addKeyConstraint(ke, keyVars, dip, outs); err != nil {
				stopIter()
				return nil, err
			}
		}
		stopIter()

		// Checkpoint before the progress event: a hook that cancels on
		// seeing iteration k then finds the file holding exactly k
		// iterations, which is what the resume tests rely on.
		if res.Iterations%ckEvery == 0 {
			if err := saveCheckpoint(); err != nil {
				return nil, err
			}
		}
		progress.Emit(hook, progress.Event{
			Kind: progress.Step, Phase: "attack",
			Done: res.Iterations, Total: maxIter, Detail: "DIP",
		})
	}
	// Flush the transcript tail so the file always reflects the final state,
	// whatever interval the writes were on.
	if opts.CheckpointPath != "" && res.Iterations%ckEvery != 0 {
		if err := saveCheckpoint(); err != nil {
			return nil, err
		}
	}
	if res.Iterations >= maxIter {
		cause := fmt.Errorf("%w (%d iterations)", ErrIterationBudget, maxIter)
		res.Duration = time.Since(start)
		if kke, kv, kerr := keyEncoder(); kerr == nil {
			extractKey(ctx, kke, kv, res)
		}
		progress.End(hook, "attack", fmt.Sprintf("budget after %d DIPs", res.Iterations))
		return res, interrupt.Budget(attackOp, cause, res)
	}

	ke, keyVars, err = keyEncoder()
	if err != nil {
		return nil, err
	}
	found, err := ke.S.Solve(ctx)
	if err != nil {
		if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
			return interrupted(err)
		}
		return nil, fmt.Errorf("satattack: key extraction: %w", err)
	}
	if !found {
		return nil, fmt.Errorf("satattack: constraints unsatisfiable; oracle inconsistent with netlist")
	}
	res.Key = make([]bool, len(keyVars))
	for i, v := range keyVars {
		res.Key[i] = ke.S.Value(v)
	}
	res.Duration = time.Since(start)
	progress.End(hook, "attack", fmt.Sprintf("%d DIPs", res.Iterations))
	return res, nil
}

// extractKey solves the accumulated I/O constraints for a best-effort key
// guess, detached from the (already-done) caller context: the constraint-only
// solver stays satisfiable and cheap, so the extraction is bounded by its own
// conflict budget rather than the expired deadline.
func extractKey(ctx context.Context, ke *cnf.Encoder, keyVars []int, res *Result) {
	if found, err := ke.S.Solve(context.WithoutCancel(ctx)); err == nil && found {
		res.Key = make([]bool, len(keyVars))
		for i, v := range keyVars {
			res.Key[i] = ke.S.Value(v)
		}
	}
}

// exhaustiveBits bounds the exhaustive VerifyKey sweep: circuits up to this
// many inputs check every pattern, larger ones a strided 2^exhaustiveBits
// subset.
const exhaustiveBits = 16

// VerifyKey checks that the recovered key makes the locked circuit agree
// with the oracle. It is exhaustive up to 2^16 input combinations and
// samples a strided subset above that; the sweep honours ctx. An optional
// RetryPolicy makes each oracle query resilient the same way Attack's are;
// once the policy is exhausted on a query, VerifyKey returns an error
// matching ErrOracleUnavailable rather than aborting on the first hiccup.
func VerifyKey(ctx context.Context, locked *netlist.Circuit, key []bool, oracle Oracle, policy ...RetryPolicy) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var rp RetryPolicy
	if len(policy) > 0 {
		rp = policy[0]
	}
	q := newQuerier(oracle, rp, 1, 1, metrics.FromContext(ctx))
	n := len(locked.Inputs)
	// Count iterations rather than striding to a space bound: `1 << n`
	// wraps to 0 at n = 64, which silently verified 64+-input circuits
	// against zero patterns.
	bits := n
	if bits > 64 {
		bits = 64
	}
	checks, stride := uint64(1)<<uint(bits), uint64(1)
	if bits > exhaustiveBits {
		checks = uint64(1) << uint(exhaustiveBits)
		stride = uint64(1) << uint(bits-exhaustiveBits)
	}
	const checkEvery = 1024
	for i := uint64(0); i < checks; i++ {
		v := i * stride
		if i%checkEvery == 0 {
			if err := interrupt.Check(ctx, "satattack: verify key", nil); err != nil {
				return err
			}
		}
		in := netlist.Uint64ToBits(v, n)
		got, err := locked.Eval(in, key)
		if err != nil {
			return err
		}
		want, err := q.query(ctx, in)
		if err != nil {
			if errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, interrupt.ErrBudgetExceeded) {
				return err
			}
			return fmt.Errorf("satattack: verify key at input %#x: %w", v, err)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("satattack: key wrong at input %#x output %d", v, i)
			}
		}
	}
	return nil
}
