// Package rtl models the post-binding datapath well enough to measure the
// design-overhead quantities of the paper's Fig. 6: register count,
// mux/interconnect size, and FU-input switching rate.
//
// Datapath model. Each FU has two input ports backed by port-local register
// files. A value consumed at a port must be held in that port's register
// file from the cycle after it is produced until its last read at that port;
// the port's register count is the maximum number of simultaneously live
// values (left-edge/interval colouring, which is optimal for intervals). A
// value produced on the same FU and consumed in the very next cycle can be
// taken from the FU's output register and needs no port register — this is
// the sharing that area-aware binding [20] exploits. Each port that receives
// more than one distinct source needs a multiplexer with one input per
// source.
//
// Switching. FU input toggling is measured from the same typical trace used
// for binding: for each FU and each consecutive pair of operations bound to
// it, the Hamming distance between their operand pairs, averaged over the
// trace and normalised to the 16 input bits — the switching objective of
// power-aware binding [19].
package rtl

import (
	"fmt"
	"math/bits"
	"sort"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/sim"
)

// Metrics summarises one bound datapath.
type Metrics struct {
	// Registers is the total port-register count over all FUs.
	Registers int
	// MuxInputs is the total number of multiplexer data inputs over all FU
	// ports (a port fed by a single source needs none).
	MuxInputs int
	// SwitchingRate is the mean fraction of FU input bits toggling per
	// FU activation, in [0, 1].
	SwitchingRate float64
}

// Measure computes datapath metrics for a design whose classes have been
// bound by the given bindings. Classes absent from the map are ignored (an
// unbound class would have no datapath yet). The simulation result supplies
// the operand streams for switching estimation.
func Measure(g *dfg.Graph, bindings map[dfg.Class]*binding.Binding, res *sim.Result) (Metrics, error) {
	var m Metrics
	totalToggles := 0
	totalTransitions := 0
	for _, class := range sortedClasses(bindings) {
		b := bindings[class]
		if b == nil {
			continue
		}
		if err := b.Validate(g); err != nil {
			return Metrics{}, fmt.Errorf("rtl: %v binding invalid: %w", class, err)
		}
		for fu := 0; fu < b.NumFUs; fu++ {
			ops := opsByCycle(g, b, fu)
			regs, muxes := portCosts(g, b, fu, ops)
			m.Registers += regs
			m.MuxInputs += muxes
			if res != nil {
				tg, tr := switching(res, ops)
				totalToggles += tg
				totalTransitions += tr
			}
		}
	}
	if totalTransitions > 0 && res != nil {
		samples := len(res.OperandAB)
		m.SwitchingRate = float64(totalToggles) / float64(totalTransitions*samples*16)
	}
	return m, nil
}

// opsByCycle returns the ops bound to fu in schedule order.
func opsByCycle(g *dfg.Graph, b *binding.Binding, fu int) []dfg.OpID {
	ops := b.OpsOnFU(fu)
	sortOpsByCycle(g, ops)
	return ops
}

// sortOpsByCycle orders ops by schedule cycle, breaking cycle ties by op ID.
// The tie-breaker makes the order total, so measurement and emission do not
// depend on the input permutation under Go's unstable sort.
func sortOpsByCycle(g *dfg.Graph, ops []dfg.OpID) {
	sort.Slice(ops, func(i, j int) bool {
		if g.Ops[ops[i]].Cycle != g.Ops[ops[j]].Cycle {
			return g.Ops[ops[i]].Cycle < g.Ops[ops[j]].Cycle
		}
		return ops[i] < ops[j]
	})
}

// sortedClasses returns the binding map's keys in ascending class order so
// iteration does not follow Go's randomised map order.
func sortedClasses(bindings map[dfg.Class]*binding.Binding) []dfg.Class {
	classes := make([]dfg.Class, 0, len(bindings))
	for class := range bindings {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	return classes
}

// portCosts computes the register and mux-input cost of FU fu's two ports.
func portCosts(g *dfg.Graph, b *binding.Binding, fu int, ops []dfg.OpID) (regs, muxInputs int) {
	for port := 0; port < 2; port++ {
		// lastRead[v] is the last cycle this port reads value v;
		// intervals are (produce, lastRead].
		lastRead := map[dfg.OpID]int{}
		for _, opID := range ops {
			v := g.Ops[opID].Args[port]
			if chained(g, b, fu, v, opID) {
				continue // taken from the FU's own output register
			}
			if g.Ops[opID].Cycle > lastRead[v] {
				lastRead[v] = g.Ops[opID].Cycle
			}
		}
		if len(lastRead) == 0 {
			continue
		}
		regs += maxOverlap(g, lastRead)
		if len(lastRead) > 1 {
			muxInputs += len(lastRead)
		}
	}
	return regs, muxInputs
}

// maxOverlap returns the maximum number of simultaneously live values given
// their last-read cycles — the minimum register count of the port (left-edge
// on intervals).
func maxOverlap(g *dfg.Graph, lastRead map[dfg.OpID]int) int {
	type event struct {
		at    int
		delta int
	}
	evs := make([]event, 0, 2*len(lastRead))
	for v, end := range lastRead {
		evs = append(evs, event{produceCycle(g, v) + 1, +1}, event{end + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // releases before acquires at the same cycle
	})
	maxLive, live := 0, 0
	for _, e := range evs {
		live += e.delta
		if live > maxLive {
			maxLive = live
		}
	}
	return maxLive
}

// chained reports whether value v can be consumed from FU fu's output
// register by consumer: v was produced on fu in the immediately preceding
// cycle.
func chained(g *dfg.Graph, b *binding.Binding, fu int, v dfg.OpID, consumer dfg.OpID) bool {
	prod := g.Ops[v]
	if !prod.Kind.IsBinary() || dfg.ClassOf(prod.Kind) != b.Class {
		return false
	}
	return b.FUOf(v) == fu && prod.Cycle == g.Ops[consumer].Cycle-1
}

// produceCycle returns the cycle a value becomes available (0 for inputs and
// constants).
func produceCycle(g *dfg.Graph, v dfg.OpID) int {
	if g.Ops[v].Kind.IsBinary() {
		return g.Ops[v].Cycle
	}
	return 0
}

// switching returns total toggled bits and the number of op transitions for
// the ops executing on one FU.
func switching(res *sim.Result, ops []dfg.OpID) (toggles, transitions int) {
	for i := 1; i < len(ops); i++ {
		for s := range res.OperandAB {
			prev := res.OperandAB[s][ops[i-1]]
			cur := res.OperandAB[s][ops[i]]
			toggles += bits.OnesCount32(uint32(prev ^ cur))
		}
		transitions++
	}
	return toggles, transitions
}
