package rtl

import (
	"fmt"
	"math/bits"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/sim"
)

// Commutative operations leave the binder one more degree of freedom: which
// operand drives which FU port. Orienting operands to track the previous
// operation's values reduces input toggling — a standard refinement in
// low-power binding flows (Chang & Pedram [19] exploit the same freedom for
// register assignment). This file implements the greedy orientation pass and
// an orientation-aware datapath measurement.

// Orientation records, per operation, whether its operands are swapped onto
// the FU ports (Args[1] on port a, Args[0] on port b). Missing ops are
// unswapped.
type Orientation map[dfg.OpID]bool

// orientedPair returns the operand pair of op in sample s under the
// orientation.
func orientedPair(res *sim.Result, g *dfg.Graph, orient Orientation, op dfg.OpID, s int) dfg.Minterm {
	m := res.OperandAB[s][op]
	if orient[op] {
		return dfg.MkMinterm(m.B(), m.A())
	}
	return m
}

// OptimizePorts chooses operand orientations for the commutative operations
// of one bound class, greedily minimising expected FU input toggling in
// schedule order. Non-commutative operations keep their semantic order.
func OptimizePorts(g *dfg.Graph, b *binding.Binding, res *sim.Result) (Orientation, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("rtl: OptimizePorts needs the simulation result")
	}
	orient := Orientation{}
	samples := len(res.OperandAB)
	for fu := 0; fu < b.NumFUs; fu++ {
		ops := opsByCycle(g, b, fu)
		prev := dfg.None
		for _, op := range ops {
			if prev == dfg.None || !g.Ops[op].Kind.Commutative() {
				prev = op
				continue
			}
			straight, swapped := 0, 0
			for s := 0; s < samples; s++ {
				pm := orientedPair(res, g, orient, prev, s)
				cur := res.OperandAB[s][op]
				straight += bits.OnesCount32(uint32(pm ^ cur))
				swappedPair := dfg.MkMinterm(cur.B(), cur.A())
				swapped += bits.OnesCount32(uint32(pm ^ swappedPair))
			}
			if swapped < straight {
				orient[op] = true
			}
			prev = op
		}
	}
	return orient, nil
}

// MeasureOriented computes datapath metrics like Measure, with operand
// orientations applied: switching uses the oriented operand streams, and the
// port register/mux model assigns each op's operands to ports per its
// orientation.
func MeasureOriented(g *dfg.Graph, bindings map[dfg.Class]*binding.Binding,
	res *sim.Result, orients map[dfg.Class]Orientation) (Metrics, error) {
	var m Metrics
	totalToggles := 0
	totalTransitions := 0
	for _, class := range sortedClasses(bindings) {
		b := bindings[class]
		if b == nil {
			continue
		}
		if err := b.Validate(g); err != nil {
			return Metrics{}, fmt.Errorf("rtl: %v binding invalid: %w", class, err)
		}
		orient := orients[class]
		for fu := 0; fu < b.NumFUs; fu++ {
			ops := opsByCycle(g, b, fu)
			regs, muxes := portCostsOriented(g, b, fu, ops, orient)
			m.Registers += regs
			m.MuxInputs += muxes
			if res != nil {
				tg, tr := switchingOriented(res, g, ops, orient)
				totalToggles += tg
				totalTransitions += tr
			}
		}
	}
	if totalTransitions > 0 && res != nil {
		samples := len(res.OperandAB)
		m.SwitchingRate = float64(totalToggles) / float64(totalTransitions*samples*16)
	}
	return m, nil
}

// portCostsOriented mirrors portCosts with per-op operand orientation.
func portCostsOriented(g *dfg.Graph, b *binding.Binding, fu int, ops []dfg.OpID, orient Orientation) (regs, muxInputs int) {
	for port := 0; port < 2; port++ {
		lastRead := map[dfg.OpID]int{}
		for _, opID := range ops {
			arg := port
			if orient[opID] {
				arg = 1 - port
			}
			v := g.Ops[opID].Args[arg]
			if chained(g, b, fu, v, opID) {
				continue
			}
			if g.Ops[opID].Cycle > lastRead[v] {
				lastRead[v] = g.Ops[opID].Cycle
			}
		}
		if len(lastRead) == 0 {
			continue
		}
		regs += maxOverlap(g, lastRead)
		if len(lastRead) > 1 {
			muxInputs += len(lastRead)
		}
	}
	return regs, muxInputs
}

// switchingOriented mirrors switching with orientation applied.
func switchingOriented(res *sim.Result, g *dfg.Graph, ops []dfg.OpID, orient Orientation) (toggles, transitions int) {
	for i := 1; i < len(ops); i++ {
		for s := range res.OperandAB {
			prev := orientedPair(res, g, orient, ops[i-1], s)
			cur := orientedPair(res, g, orient, ops[i], s)
			toggles += bits.OnesCount32(uint32(prev ^ cur))
		}
		transitions++
	}
	return toggles, transitions
}
