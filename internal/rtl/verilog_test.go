package rtl

import (
	"context"
	"strings"
	"testing"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/mediabench"
)

func bindAll(t *testing.T, p *mediabench.Prepared) map[dfg.Class]*binding.Binding {
	t.Helper()
	out := map[dfg.Class]*binding.Binding{}
	for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
		if !p.HasClass(class) {
			continue
		}
		b, err := (binding.AreaAware{}).Bind(&binding.Problem{
			G: p.G, Class: class, NumFUs: p.NumFUs, K: p.Res.K, Res: p.Res,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[class] = b
	}
	return out
}

func TestWriteVerilogBenchmark(t *testing.T) {
	b, err := mediabench.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prepare(context.Background(), 3, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	bindings := bindAll(t, p)

	var sb strings.Builder
	if err := WriteVerilog(&sb, p.G, bindings); err != nil {
		t.Fatal(err)
	}
	v := sb.String()

	for _, want := range []string{
		"module fir",
		"input  wire clk",
		"input  wire [7:0] in_x0",
		"output wire [7:0] out_y",
		"output wire done",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	// Every FU operation must have a result register and a latch.
	for _, op := range p.G.Ops {
		if op.Kind.IsBinary() {
			if !strings.Contains(v, "reg [7:0] v"+itoa(int(op.ID))) {
				t.Errorf("op %d has no result register", op.ID)
			}
		}
	}
	// Shared units for both classes.
	if !strings.Contains(v, "fu_alu0_y") || !strings.Contains(v, "fu_mul0_y") {
		t.Error("shared FU wires missing")
	}
	// The multiplier datapath.
	if !strings.Contains(v, "fu_mul0_a * fu_mul0_b") {
		t.Error("multiplier expression missing")
	}
}

// itoa avoids strconv for single- and double-digit op IDs in tests.
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

func TestWriteVerilogALUModes(t *testing.T) {
	// A design mixing add/sub/absdiff on one FU must emit a mode mux.
	g := dfg.New("modes")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s1 := g.AddBinary(dfg.Add, a, b)
	s2 := g.AddBinary(dfg.Sub, s1, b)
	s3 := g.AddBinary(dfg.AbsDiff, s2, a)
	g.AddOutput("y", s3)
	g.Ops[s1].Cycle = 1
	g.Ops[s2].Cycle = 2
	g.Ops[s3].Cycle = 3
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		s1: 0, s2: 0, s3: 0,
	}}
	var sb strings.Builder
	if err := WriteVerilog(&sb, g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: bd}); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "fu_alu0_a + fu_alu0_b") {
		t.Error("add mode missing")
	}
	if !strings.Contains(v, "fu_alu0_a - fu_alu0_b") {
		t.Error("sub mode missing")
	}
	if !strings.Contains(v, "(fu_alu0_a > fu_alu0_b)") {
		t.Error("absdiff mode missing")
	}
}

func TestWriteVerilogValidation(t *testing.T) {
	b, _ := mediabench.ByName("dct")
	p, err := b.Prepare(context.Background(), 3, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Missing binding for a present class.
	var sb strings.Builder
	err = WriteVerilog(&sb, p.G, map[dfg.Class]*binding.Binding{})
	if err == nil || !strings.Contains(err.Error(), "no binding") {
		t.Fatalf("err = %v, want missing binding", err)
	}
	// Wrong class key.
	bindings := bindAll(t, p)
	bad := map[dfg.Class]*binding.Binding{
		dfg.ClassAdd: bindings[dfg.ClassMul],
		dfg.ClassMul: bindings[dfg.ClassMul],
	}
	if err := WriteVerilog(&sb, p.G, bad); err == nil {
		t.Fatal("mismatched class key must error")
	}
	// Unscheduled graph.
	g := dfg.New("unsched")
	a := g.AddInput("a")
	g.AddOutput("y", g.AddBinary(dfg.Add, a, a))
	if err := WriteVerilog(&sb, g, nil); err == nil {
		t.Fatal("unscheduled graph must error")
	}
}

func TestVerilogCounterWidth(t *testing.T) {
	// The cycle counter is sized from the schedule span. A span of 70000
	// needs 17 bits to hold the done state 70001; the previous hardcoded
	// 16-bit register wrapped before ever asserting done.
	g := dfg.New("wide")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s1 := g.AddBinary(dfg.Add, a, b)
	g.AddOutput("y", s1)
	g.Ops[s1].Cycle = 70000
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{s1: 0}}
	var sb strings.Builder
	if err := WriteVerilog(&sb, g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: bd}); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "reg [16:0] cnt") {
		t.Error("counter not widened to 17 bits for a 70000-cycle span")
	}
	if !strings.Contains(v, "17'd70001") {
		t.Error("done comparison not rendered at the widened literal width")
	}
	if strings.Contains(v, "16'd") {
		t.Error("stale 16-bit literals remain in the emitted RTL")
	}
}

func TestVerilogCounterWidthSmallSpan(t *testing.T) {
	// A 3-cycle schedule only needs a 3-bit counter (holds 4 = done).
	g := dfg.New("small")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s1 := g.AddBinary(dfg.Add, a, b)
	s2 := g.AddBinary(dfg.Add, s1, b)
	s3 := g.AddBinary(dfg.Add, s2, a)
	g.AddOutput("y", s3)
	g.Ops[s1].Cycle = 1
	g.Ops[s2].Cycle = 2
	g.Ops[s3].Cycle = 3
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		s1: 0, s2: 0, s3: 0,
	}}
	var sb strings.Builder
	if err := WriteVerilog(&sb, g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: bd}); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "reg [2:0] cnt") {
		t.Error("counter not sized down to 3 bits for a 3-cycle span")
	}
	if !strings.Contains(v, "3'd4") {
		t.Error("done comparison missing at 3-bit width")
	}
}

func TestVerilogDeterministic(t *testing.T) {
	b, _ := mediabench.ByName("jdmerge3")
	p, err := b.Prepare(context.Background(), 3, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	bindings := bindAll(t, p)
	var v1, v2 strings.Builder
	if err := WriteVerilog(&v1, p.G, bindings); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&v2, p.G, bindings); err != nil {
		t.Fatal(err)
	}
	if v1.String() != v2.String() {
		t.Fatal("emission not deterministic")
	}
}
