package rtl

import (
	"context"
	"testing"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/mediabench"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

func TestOptimizePortsReducesSwitching(t *testing.T) {
	// On every benchmark, orientation must never increase the switching
	// rate relative to the unoriented measurement.
	for _, name := range []string{"fir", "dct", "motion2", "noisest2"} {
		b, err := mediabench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Prepare(context.Background(), 3, 200, 9)
		if err != nil {
			t.Fatal(err)
		}
		bindings := map[dfg.Class]*binding.Binding{}
		orients := map[dfg.Class]Orientation{}
		for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
			if !p.HasClass(class) {
				continue
			}
			bd, err := (binding.PowerAware{}).Bind(&binding.Problem{
				G: p.G, Class: class, NumFUs: 3, K: p.Res.K, Res: p.Res,
			})
			if err != nil {
				t.Fatal(err)
			}
			bindings[class] = bd
			o, err := OptimizePorts(p.G, bd, p.Res)
			if err != nil {
				t.Fatal(err)
			}
			orients[class] = o
		}
		plain, err := Measure(p.G, bindings, p.Res)
		if err != nil {
			t.Fatal(err)
		}
		oriented, err := MeasureOriented(p.G, bindings, p.Res, orients)
		if err != nil {
			t.Fatal(err)
		}
		if oriented.SwitchingRate > plain.SwitchingRate+1e-9 {
			t.Errorf("%s: oriented switching %.4f > plain %.4f",
				name, oriented.SwitchingRate, plain.SwitchingRate)
		}
	}
}

func TestOptimizePortsOnlySwapsCommutative(t *testing.T) {
	g := dfg.New("mix")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s1 := g.AddBinary(dfg.Sub, a, b)
	s2 := g.AddBinary(dfg.Sub, b, a)
	g.AddOutput("y", s1)
	g.AddOutput("z", s2)
	g.Ops[s1].Cycle = 1
	g.Ops[s2].Cycle = 2
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{s1: 0, s2: 0}}

	tr := trace.Generate(trace.Uniform, []string{"a", "b"}, 64, 1)
	res, err := simRun(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	orient, err := OptimizePorts(g, bd, res)
	if err != nil {
		t.Fatal(err)
	}
	// Subtractions are order-sensitive: nothing may be swapped even though
	// swapping would zero the toggling here.
	if len(orient) != 0 {
		t.Fatalf("non-commutative ops swapped: %v", orient)
	}
}

func TestOptimizePortsIdenticalStreams(t *testing.T) {
	// y0 = a + b; y1 = b + a on one FU: orientation must align them for
	// zero switching.
	g := dfg.New("swap")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s1 := g.AddBinary(dfg.Add, a, b)
	s2 := g.AddBinary(dfg.Add, b, a)
	g.AddOutput("y", s1)
	g.AddOutput("z", s2)
	g.Ops[s1].Cycle = 1
	g.Ops[s2].Cycle = 2
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{s1: 0, s2: 0}}

	tr := trace.Generate(trace.Uniform, []string{"a", "b"}, 64, 2)
	res, err := simRun(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	orient, err := OptimizePorts(g, bd, res)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureOriented(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: bd}, res,
		map[dfg.Class]Orientation{dfg.ClassAdd: orient})
	if err != nil {
		t.Fatal(err)
	}
	if m.SwitchingRate != 0 {
		t.Fatalf("oriented switching = %v, want 0 (identical streams)", m.SwitchingRate)
	}
	if !orient[s2] {
		t.Fatal("s2 must be swapped to align with s1")
	}
}

func TestOptimizePortsValidation(t *testing.T) {
	g := dfg.New("v")
	a := g.AddInput("a")
	s1 := g.AddBinary(dfg.Add, a, a)
	g.AddOutput("y", s1)
	g.Ops[s1].Cycle = 1
	bd := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{s1: 0}}
	if _, err := OptimizePorts(g, bd, nil); err == nil {
		t.Fatal("nil result must error")
	}
	bad := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{}}
	tr := trace.Generate(trace.Uniform, []string{"a"}, 4, 1)
	res, err := simRun(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizePorts(g, bad, res); err == nil {
		t.Fatal("invalid binding must error")
	}
}

// simRun wraps sim.Run for the tests in this file.
func simRun(g *dfg.Graph, tr *trace.Trace) (*sim.Result, error) {
	return sim.Run(context.Background(), g, tr)
}
