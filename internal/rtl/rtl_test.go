package rtl

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/sched"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

// prep compiles, schedules and simulates a kernel.
func prep(t *testing.T, src string, fus int, gen trace.Generator, seed int64) (*dfg.Graph, *sim.Result) {
	t.Helper()
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cons := sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: fus, dfg.ClassMul: fus}}
	if _, err := sched.PathBased(g, cons); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, id := range g.Inputs() {
		names = append(names, g.Ops[id].Name)
	}
	res, err := sim.Run(context.Background(), g, trace.Generate(gen, names, 128, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

const chainSrc = `
kernel ch;
input a, b;
output y;
t0 = a + b;
t1 = t0 + b;
t2 = t1 + a;
y = t2;
`

func TestSingleFUChainMetrics(t *testing.T) {
	g, res := prep(t, chainSrc, 1, trace.Uniform, 1)
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{}}
	for _, id := range g.OpsOfClass(dfg.ClassAdd) {
		b.Assign[id] = 0
	}
	m, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: b}, res)
	if err != nil {
		t.Fatal(err)
	}
	// Chained values (t0 into t1, t1 into t2) ride the output register and
	// bypass the ports. Port 0 then holds only 'a' (read by t0 at cycle 1):
	// 1 register, no mux. Port 1 holds 'b' (read cycles 1-2) and 'a' (read
	// cycle 3), whose lifetimes overlap: 2 registers, a 2-input mux.
	if m.Registers != 3 {
		t.Errorf("Registers = %d, want 3", m.Registers)
	}
	if m.MuxInputs != 2 {
		t.Errorf("MuxInputs = %d, want 2", m.MuxInputs)
	}
	if m.SwitchingRate < 0 || m.SwitchingRate > 1 {
		t.Errorf("SwitchingRate = %v outside [0,1]", m.SwitchingRate)
	}
}

func TestChainingReducesRegisters(t *testing.T) {
	// Two independent chains on two FUs: binding each chain to its own FU
	// (chaining) must cost no more than interleaving them across FUs.
	src := `
kernel two;
input a, b, c, d;
output y, z;
t0 = a + b;
t1 = c + d;
u0 = t0 + a;
u1 = t1 + c;
y = u0;
z = u1;
`
	g, res := prep(t, src, 2, trace.ImageBlocks, 2)
	adds := g.OpsOfClass(dfg.ClassAdd)
	chained := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		adds[0]: 0, adds[1]: 1, adds[2]: 0, adds[3]: 1,
	}}
	crossed := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		adds[0]: 0, adds[1]: 1, adds[2]: 1, adds[3]: 0,
	}}
	mc, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: chained}, res)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: crossed}, res)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Registers > mx.Registers {
		t.Errorf("chained registers %d > crossed %d", mc.Registers, mx.Registers)
	}
}

func TestMuxCounting(t *testing.T) {
	// One FU executing two ops with different port-0 sources in
	// non-adjacent cycles needs a 2-input mux on port 0.
	src := `
kernel mx;
input a, b, c;
output y, z;
t0 = a + b;
t1 = c + b;
y = t0;
z = t1;
`
	g, res := prep(t, src, 1, trace.Uniform, 3)
	adds := g.OpsOfClass(dfg.ClassAdd)
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		adds[0]: 0, adds[1]: 0,
	}}
	m, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: b}, res)
	if err != nil {
		t.Fatal(err)
	}
	// Port 0 sees {a, c} (mux with 2 inputs); port 1 sees {b} only.
	if m.MuxInputs != 2 {
		t.Errorf("MuxInputs = %d, want 2", m.MuxInputs)
	}
	// Registers: port 0 holds a and c; overlapping lifetimes from cycle 1
	// start; a read at cycle 1, c read at cycle 2 -> a:(1,1], c:(1,2] ->
	// max live 2. Port 1: b read at cycles 1,2 -> one register.
	if m.Registers != 3 {
		t.Errorf("Registers = %d, want 3", m.Registers)
	}
}

func TestInvalidBindingRejected(t *testing.T) {
	g, res := prep(t, chainSrc, 1, trace.Uniform, 1)
	bad := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{}}
	if _, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: bad}, res); err == nil {
		t.Fatal("incomplete binding must be rejected")
	}
}

func TestNilBindingSkipped(t *testing.T) {
	g, res := prep(t, chainSrc, 1, trace.Uniform, 1)
	m, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassMul: nil}, res)
	if err != nil || m.Registers != 0 {
		t.Fatalf("m=%+v err=%v", m, err)
	}
}

func TestSwitchingRateOrdering(t *testing.T) {
	// A binding that alternates unrelated value streams on one FU must
	// switch at least as much as one that groups identical streams.
	src := `
kernel sw;
input a, b, c, d;
output y, z;
t0 = a + b;
t1 = c + d;
u0 = t0 + b;
u1 = t1 + d;
y = u0;
z = u1;
`
	g, res := prep(t, src, 2, trace.Audio, 5)
	adds := g.OpsOfClass(dfg.ClassAdd)
	grouped := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		adds[0]: 0, adds[1]: 1, adds[2]: 0, adds[3]: 1,
	}}
	mixed := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		adds[0]: 0, adds[1]: 1, adds[2]: 1, adds[3]: 0,
	}}
	mg, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: grouped}, res)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: mixed}, res)
	if err != nil {
		t.Fatal(err)
	}
	if mg.SwitchingRate > mm.SwitchingRate+1e-9 {
		t.Errorf("grouped switching %.4f > mixed %.4f", mg.SwitchingRate, mm.SwitchingRate)
	}
}

// Property: metrics are non-negative, switching is in [0,1], and measuring
// the same binding twice is deterministic.
func TestMetricsWellFormedQuick(t *testing.T) {
	g, err := frontend.Compile(`
kernel q;
input a, b, c;
output y;
t0 = a + b;
t1 = b + c;
t2 = t0 + t1;
t3 = t2 + a;
y = t3;
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.PathBased(g, sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 2}}); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		tr := trace.Generate(trace.ImageBlocks, []string{"a", "b", "c"}, 32, seed)
		res, err := sim.Run(context.Background(), g, tr)
		if err != nil {
			return false
		}
		b, err := binding.Random{Seed: seed}.Bind(&binding.Problem{
			G: g, Class: dfg.ClassAdd, NumFUs: 2,
		})
		if err != nil {
			return false
		}
		m1, err1 := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: b}, res)
		m2, err2 := Measure(g, map[dfg.Class]*binding.Binding{dfg.ClassAdd: b}, res)
		if err1 != nil || err2 != nil || m1 != m2 {
			return false
		}
		return m1.Registers > 0 && m1.MuxInputs >= 0 &&
			m1.SwitchingRate >= 0 && m1.SwitchingRate <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSortOpsByCycleTotalOrder pins the tie-breaker: ops sharing a cycle are
// ordered by ID, so any input permutation sorts to the same sequence even
// under Go's unstable sort.
func TestSortOpsByCycleTotalOrder(t *testing.T) {
	g := dfg.New("ties")
	a := g.AddInput("a")
	b := g.AddInput("b")
	var ids []dfg.OpID
	for i := 0; i < 8; i++ {
		id := g.AddBinary(dfg.Add, a, b)
		g.Ops[id].Cycle = 1 + i/2 // pairs of ops share a cycle
		ids = append(ids, id)
	}
	want := append([]dfg.OpID(nil), ids...)
	sortOpsByCycle(g, want)
	for i := 1; i < len(want); i++ {
		pc, cc := g.Ops[want[i-1]].Cycle, g.Ops[want[i]].Cycle
		if pc > cc || (pc == cc && want[i-1] >= want[i]) {
			t.Fatalf("not a (cycle, id) order at %d: %v", i, want)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]dfg.OpID(nil), ids...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sortOpsByCycle(g, perm)
		if !reflect.DeepEqual(perm, want) {
			t.Fatalf("trial %d: sorted %v, want %v", trial, perm, want)
		}
	}
}
