package fault

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"bindlock/internal/metrics"
)

// echoOracle answers with its input unchanged, so bit-flips are observable.
func echoOracle(inputs []bool) ([]bool, error) {
	return append([]bool(nil), inputs...), nil
}

// schedule runs n calls through a fresh injector and records, per call,
// whether it errored and which bits flipped.
func schedule(t *testing.T, p Plan, n int) []string {
	t.Helper()
	w := New(p).WrapOracle(echoOracle)
	in := []bool{true, false, true, false, true, false, true, false}
	var out []string
	for c := 0; c < n; c++ {
		got, err := w(in)
		switch {
		case err != nil:
			out = append(out, "err:"+err.Error())
		default:
			s := ""
			for b := range got {
				if got[b] != in[b] {
					s += "f"
				} else {
					s += "."
				}
			}
			out = append(out, s)
		}
	}
	return out
}

func TestScheduleIsSeedDeterministic(t *testing.T) {
	p := Plan{Seed: 42, TransientRate: 0.2, BitFlipRate: 0.05}
	a := schedule(t, p, 200)
	b := schedule(t, p, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 43
	c := schedule(t, p2, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestSeekRealignsSchedule(t *testing.T) {
	// A fresh injector advanced by k calls and a seeked injector must agree
	// on every subsequent call: this is the checkpoint-resume contract.
	p := Plan{Seed: 7, TransientRate: 0.3, BitFlipRate: 0.1}
	full := schedule(t, p, 100)

	i := New(p)
	i.Seek(60)
	w := i.WrapOracle(echoOracle)
	in := []bool{true, false, true, false, true, false, true, false}
	for c := 60; c < 100; c++ {
		got, err := w(in)
		want := full[c]
		var have string
		if err != nil {
			have = "err:" + err.Error()
		} else {
			for b := range got {
				if got[b] != in[b] {
					have += "f"
				} else {
					have += "."
				}
			}
		}
		if have != want {
			t.Fatalf("call %d after Seek(60): %q, uninterrupted %q", c, have, want)
		}
	}
	if i.Calls() != 100 {
		t.Errorf("Calls() = %d, want 100", i.Calls())
	}
}

func TestRatesRoughlyHonoured(t *testing.T) {
	p := Plan{Seed: 1, TransientRate: 0.2, BitFlipRate: 0.05}
	reg := metrics.New()
	w := New(p).WithRegistry(reg).WrapOracle(echoOracle)
	in := make([]bool, 8)
	const calls = 5000
	for c := 0; c < calls; c++ {
		w(in)
	}
	s := reg.Snapshot()
	if v, _ := s.Counter("fault_oracle_calls_total"); v != calls {
		t.Errorf("fault_oracle_calls_total = %d, want %d", v, calls)
	}
	tr, _ := s.Counter("fault_transients_total")
	if float64(tr) < 0.15*calls || float64(tr) > 0.25*calls {
		t.Errorf("transients = %d over %d calls; rate 0.2 expected", tr, calls)
	}
	fl, _ := s.Counter("fault_bitflips_total")
	bits := float64((calls - tr) * 8)
	if float64(fl) < 0.03*bits || float64(fl) > 0.07*bits {
		t.Errorf("bitflips = %d over %.0f bits; rate 0.05 expected", fl, bits)
	}
}

func TestOutageWindow(t *testing.T) {
	p := Plan{Seed: 1, OutageStart: 10, OutageLen: 5}
	w := New(p).WrapOracle(echoOracle)
	in := make([]bool, 4)
	for c := 0; c < 30; c++ {
		_, err := w(in)
		inWindow := c >= 10 && c < 15
		if inWindow && !errors.Is(err, ErrOutage) {
			t.Fatalf("call %d: err = %v, want outage", c, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("call %d: unexpected error %v", c, err)
		}
	}
}

func TestLatencySpikes(t *testing.T) {
	p := Plan{Seed: 3, LatencyRate: 1, Latency: 5 * time.Millisecond}
	i := New(p)
	var slept time.Duration
	i.sleep = func(d time.Duration) { slept += d }
	w := i.WrapOracle(echoOracle)
	for c := 0; c < 4; c++ {
		w(nil)
	}
	if slept != 20*time.Millisecond {
		t.Errorf("slept %v, want 20ms (4 calls at rate 1)", slept)
	}
}

func TestHitFailEvery(t *testing.T) {
	p := Plan{FailEvery: map[string]uint64{"sat.solve": 3}}
	ctx := NewContext(context.Background(), New(p))
	var errs int
	for c := 1; c <= 9; c++ {
		if err := Hit(ctx, "sat.solve"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v", c, err)
			}
			errs++
		}
		if err := Hit(ctx, "sim.run"); err != nil {
			t.Fatalf("unconfigured site must not fail: %v", err)
		}
	}
	if errs != 3 {
		t.Errorf("9 hits at every=3: %d failures, want 3", errs)
	}
	if err := Hit(context.Background(), "sat.solve"); err != nil {
		t.Errorf("no-injector context must be silent: %v", err)
	}
}

func TestZeroPlanWrapsNothing(t *testing.T) {
	called := false
	oracle := func(in []bool) ([]bool, error) { called = true; return in, nil }
	w := New(Plan{Seed: 99}).WrapOracle(oracle)
	if _, err := w(nil); err != nil || !called {
		t.Fatalf("zero plan must pass through: err=%v called=%v", err, called)
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 42, TransientRate: 0.1, BitFlipRate: 0.01,
		LatencyRate: 0.05, Latency: 5 * time.Millisecond,
		OutageStart: 100, OutageLen: 20, CorruptRate: 0.02,
		FailEvery: map[string]uint64{"sat.solve": 50, "sim.run": 3},
	}
	got, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if got.String() != p.String() {
		t.Errorf("round trip: %q -> %q", p.String(), got.String())
	}
	if _, err := Parse(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
	for _, bad := range []string{"transient=2", "nope=1", "seed", "bitflip=x", "fail:=3", "corrupt=x", "corrupt=1.5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// bitsChanged counts differing bits between two equal-length byte slices.
func bitsChanged(a, b []byte) int {
	n := 0
	for i := range a {
		for d := a[i] ^ b[i]; d != 0; d &= d - 1 {
			n++
		}
	}
	return n
}

// TestCorruptBytesDeterministic pins the corrupt= schedule contract: which
// read is damaged and which bit flips are pure functions of (seed, site,
// per-site read index), so a chaos run is exactly replayable, and the two
// disk-read sites draw independent schedules.
func TestCorruptBytesDeterministic(t *testing.T) {
	p := Plan{Seed: 11, CorruptRate: 0.5}
	payload := []byte("checkpoint or cache entry bytes")
	run := func() (a, b []string) {
		i := New(p)
		for n := 0; n < 64; n++ {
			a = append(a, string(i.CorruptBytes("store.disk.get", payload)))
			b = append(b, string(i.CorruptBytes("ckpt.load", payload)))
		}
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	damaged, sitesAgree := 0, 0
	for n := range a1 {
		if a1[n] != a2[n] || b1[n] != b2[n] {
			t.Fatalf("read %d diverged across identical injectors", n)
		}
		if a1[n] == b1[n] {
			sitesAgree++
		}
		switch d := bitsChanged([]byte(a1[n]), payload); d {
		case 0:
		case 1:
			damaged++
		default:
			t.Fatalf("read %d: %d bits flipped, want at most 1", n, d)
		}
	}
	if sitesAgree == len(a1) {
		t.Fatal("the two sites share one corruption schedule")
	}
	// Rate 0.5 over 64 reads: some damaged, some clean, whatever the seed
	// quirks (P[all-or-none] ~ 2^-63).
	if damaged == 0 || damaged == len(a1) {
		t.Fatalf("%d of %d reads damaged at rate 0.5", damaged, len(a1))
	}
}

// TestCorruptBytesRateOne pins that corrupt=1 damages every read, counts
// each one, and never mutates the caller's slice in place.
func TestCorruptBytesRateOne(t *testing.T) {
	reg := metrics.New()
	i := New(Plan{Seed: 1, CorruptRate: 1}).WithRegistry(reg)
	orig := []byte("pristine bytes")
	for n := 0; n < 20; n++ {
		data := append([]byte(nil), orig...)
		got := i.CorruptBytes("site", data)
		if bytes.Equal(got, orig) {
			t.Fatalf("read %d escaped corrupt=1", n)
		}
		if !bytes.Equal(data, orig) {
			t.Fatal("CorruptBytes mutated the input slice")
		}
	}
	if v, _ := reg.Snapshot().Counter("fault_corruptions_total"); v != 20 {
		t.Fatalf("fault_corruptions_total = %d, want 20", v)
	}
}

func TestCorruptAtContext(t *testing.T) {
	data := []byte{0xAA, 0x55}
	if got := CorruptAt(context.Background(), "x", data); !bytes.Equal(got, data) {
		t.Fatal("no-injector context must pass bytes through")
	}
	ctx := NewContext(context.Background(), New(Plan{Seed: 2, CorruptRate: 1}))
	if got := CorruptAt(ctx, "x", data); bytes.Equal(got, data) {
		t.Fatal("corrupt=1 context left the bytes intact")
	}
}

func TestIsInjected(t *testing.T) {
	for _, err := range []error{ErrTransient, ErrOutage, ErrInjected} {
		if !IsInjected(err) {
			t.Errorf("IsInjected(%v) = false", err)
		}
	}
	if IsInjected(errors.New("other")) {
		t.Error("IsInjected(other) = true")
	}
}
