// Package fault is the deterministic fault-injection layer of the robustness
// stack: it models the noisy, flaky, rate-limited physical oracle (an
// activated IC on a tester) and injectable infrastructure failures (solver
// and simulator outages) that production-scale attack campaigns must survive.
//
// Every fault is drawn from a schedule keyed purely by (seed, call index):
// the Injector keeps one monotone call counter per surface and derives an
// independent RNG per call, so a fault plan is a pure function of its seed —
// replaying a prefix of calls reproduces exactly the same faults, and
// skipping a prefix (checkpoint resume) realigns by seeking the counter.
// That determinism is what makes every consumer's retry, voting and
// checkpoint behaviour testable with exact assertions.
//
// Four oracle fault families are modelled, matching how activated-IC query
// campaigns fail in practice:
//
//   - transient errors: the query fails with ErrTransient (tester glitch,
//     comms timeout) — retry usually succeeds;
//   - bit-flip noise: each output bit independently flips with a small
//     probability (marginal sampling, electrical noise) — majority voting
//     recovers the true answer;
//   - latency spikes: the query sleeps before answering (rate limiting,
//     device re-arm) — budgets and backoff absorb it;
//   - hard outages: a contiguous window of calls fails with ErrOutage (the
//     device goes away) — checkpointing preserves the DIP progress.
//
// Beyond the oracle, Hit provides named fail-points ("sat.solve", "sim.run")
// carried on a context, so infrastructure failures inject into the SAT
// solver and the workload simulator without either package knowing the plan.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bindlock/internal/metrics"
)

// ErrTransient marks a query that failed transiently; a retry may succeed.
var ErrTransient = errors.New("fault: transient error injected")

// ErrOutage marks a query inside a hard outage window; retries inside the
// window keep failing.
var ErrOutage = errors.New("fault: oracle outage injected")

// ErrInjected marks an infrastructure fail-point hit (solver, simulator).
var ErrInjected = errors.New("fault: failure injected")

// Plan is a declarative, seed-deterministic fault schedule. The zero value
// injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw. Two injectors with the same
	// plan produce the same fault schedule call for call.
	Seed int64
	// TransientRate is the per-call probability of an ErrTransient failure.
	TransientRate float64
	// BitFlipRate is the independent per-output-bit flip probability of a
	// successful query.
	BitFlipRate float64
	// LatencyRate is the per-call probability of a latency spike.
	LatencyRate float64
	// Latency is the sleep injected on a latency spike.
	Latency time.Duration
	// OutageStart/OutageLen define a hard outage: calls with 0-based index
	// in [OutageStart, OutageStart+OutageLen) fail with ErrOutage.
	OutageStart, OutageLen uint64
	// CorruptRate is the per-read probability that a disk-read fault site
	// (cache tier Get, checkpoint load) has one bit of its payload flipped
	// before the reader sees it — the at-rest corruption model the sealed
	// storage layer must detect. Which read corrupts and which bit flips are
	// both pure functions of (seed, site, per-site read index), so a
	// corruption schedule replays exactly.
	CorruptRate float64
	// FailEvery maps a fail-point site name ("sat.solve", "sim.run") to N:
	// every Nth Hit at that site (1-based) returns ErrInjected. 0 disables
	// the site.
	FailEvery map[string]uint64
}

// Zero reports whether the plan injects nothing at all.
func (p Plan) Zero() bool {
	return p.TransientRate == 0 && p.BitFlipRate == 0 && p.LatencyRate == 0 &&
		p.OutageLen == 0 && p.CorruptRate == 0 && len(p.FailEvery) == 0
}

// String renders the plan in the spec format Parse accepts.
func (p Plan) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Seed != 0 {
		add("seed=" + strconv.FormatInt(p.Seed, 10))
	}
	if p.TransientRate != 0 {
		add("transient=" + strconv.FormatFloat(p.TransientRate, 'g', -1, 64))
	}
	if p.BitFlipRate != 0 {
		add("bitflip=" + strconv.FormatFloat(p.BitFlipRate, 'g', -1, 64))
	}
	if p.LatencyRate != 0 {
		add("latency-rate=" + strconv.FormatFloat(p.LatencyRate, 'g', -1, 64))
	}
	if p.Latency != 0 {
		add("latency=" + p.Latency.String())
	}
	if p.OutageLen != 0 {
		add("outage-at=" + strconv.FormatUint(p.OutageStart, 10))
		add("outage-len=" + strconv.FormatUint(p.OutageLen, 10))
	}
	if p.CorruptRate != 0 {
		add("corrupt=" + strconv.FormatFloat(p.CorruptRate, 'g', -1, 64))
	}
	sites := make([]string, 0, len(p.FailEvery))
	for site := range p.FailEvery {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		if n := p.FailEvery[site]; n != 0 {
			add("fail:" + site + "=" + strconv.FormatUint(n, 10))
		}
	}
	return strings.Join(parts, ",")
}

// Parse reads a fault-plan spec: comma-separated key=value pairs.
//
//	seed=42,transient=0.1,bitflip=0.01,latency=5ms,latency-rate=0.05,
//	outage-at=100,outage-len=20,corrupt=0.2,fail:sat.solve=50,fail:sim.run=3
//
// An empty spec is the zero plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan field %q (want key=value)", field)
		}
		var err error
		switch {
		case key == "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case key == "transient":
			p.TransientRate, err = parseRate(val)
		case key == "bitflip":
			p.BitFlipRate, err = parseRate(val)
		case key == "latency-rate":
			p.LatencyRate, err = parseRate(val)
		case key == "latency":
			p.Latency, err = time.ParseDuration(val)
		case key == "outage-at":
			p.OutageStart, err = strconv.ParseUint(val, 10, 64)
		case key == "outage-len":
			p.OutageLen, err = strconv.ParseUint(val, 10, 64)
		case key == "corrupt":
			p.CorruptRate, err = parseRate(val)
		case strings.HasPrefix(key, "fail:"):
			site := strings.TrimPrefix(key, "fail:")
			if site == "" {
				return Plan{}, fmt.Errorf("fault: empty fail-point site in %q", field)
			}
			var n uint64
			n, err = strconv.ParseUint(val, 10, 64)
			if err == nil {
				if p.FailEvery == nil {
					p.FailEvery = map[string]uint64{}
				}
				p.FailEvery[site] = n
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value in %q: %v", field, err)
		}
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", r)
	}
	return r, nil
}

// Injector realises a Plan: it wraps oracles and answers fail-point hits,
// keeping the per-surface call counters that key the deterministic draws.
// It is safe for concurrent use.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	calls uint64            // oracle calls made (0-based index of the next call)
	sites map[string]uint64 // per-site Hit counts (1-based after increment)

	reg   *metrics.Registry
	sleep func(time.Duration) // latency realisation; replaceable in tests
}

// New returns an injector for the plan.
func New(p Plan) *Injector {
	return &Injector{plan: p, sites: map[string]uint64{}, sleep: time.Sleep}
}

// Plan returns the injector's fault plan.
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// WithRegistry attaches a metrics registry; every injected fault is counted
// under fault_* names. It returns the injector for chaining.
func (i *Injector) WithRegistry(r *metrics.Registry) *Injector {
	i.reg = r
	return i
}

// Calls returns the number of oracle calls observed so far.
func (i *Injector) Calls() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls
}

// Seek realigns the oracle call counter, as when resuming an attack from a
// checkpoint: calls before n were served in a previous process, and the
// schedule must continue from call n exactly as an uninterrupted run would.
func (i *Injector) Seek(n uint64) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.calls = n
	i.mu.Unlock()
}

// callRNG derives the independent RNG of one call of a surface. splitmix64
// scrambles the index so neighbouring calls share no low-bit structure.
func (i *Injector) callRNG(surface string, n uint64) *rand.Rand {
	h := n + 0x9e3779b97f4a7c15
	for _, b := range []byte(surface) {
		h = (h ^ uint64(b)) * 0xbf58476d1ce4e5b9
	}
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(i.plan.Seed ^ int64(h)))
}

// WrapOracle interposes the plan on an oracle-shaped query function. The
// wrapper draws, per call and in fixed order: outage membership, transient
// failure, latency spike, then per-bit flips — so the fault seen by call n
// never depends on how many bits earlier calls returned.
func (i *Injector) WrapOracle(oracle func([]bool) ([]bool, error)) func([]bool) ([]bool, error) {
	if i == nil || i.plan.Zero() {
		return oracle
	}
	return func(inputs []bool) ([]bool, error) {
		i.mu.Lock()
		n := i.calls
		i.calls++
		i.mu.Unlock()
		i.reg.Add("fault_oracle_calls_total", 1)

		if i.plan.OutageLen > 0 && n >= i.plan.OutageStart && n-i.plan.OutageStart < i.plan.OutageLen {
			i.reg.Add("fault_outages_total", 1)
			return nil, fmt.Errorf("%w (call %d)", ErrOutage, n)
		}
		rng := i.callRNG("oracle", n)
		if i.plan.TransientRate > 0 && rng.Float64() < i.plan.TransientRate {
			i.reg.Add("fault_transients_total", 1)
			return nil, fmt.Errorf("%w (call %d)", ErrTransient, n)
		}
		if i.plan.LatencyRate > 0 && rng.Float64() < i.plan.LatencyRate {
			i.reg.Add("fault_latency_spikes_total", 1)
			if i.plan.Latency > 0 {
				i.sleep(i.plan.Latency)
			}
		}
		outs, err := oracle(inputs)
		if err != nil || i.plan.BitFlipRate == 0 {
			return outs, err
		}
		flipped := outs
		copied := false
		for b := range outs {
			if rng.Float64() < i.plan.BitFlipRate {
				if !copied {
					flipped = append([]bool(nil), outs...)
					copied = true
				}
				flipped[b] = !flipped[b]
				i.reg.Add("fault_bitflips_total", 1)
			}
		}
		return flipped, nil
	}
}

// CorruptBytes interposes the plan's at-rest corruption model on a disk
// read: with probability CorruptRate (drawn from the per-site read index,
// so the schedule replays exactly) it returns a copy of data with one
// deterministically chosen bit flipped, counting fault_corruptions_total.
// Otherwise — and always for empty data or a zero rate — it returns data
// unchanged. The site name ("store.disk.get", "ckpt.load") keys an
// independent counter so corrupting one surface never shifts another's
// schedule.
func (i *Injector) CorruptBytes(site string, data []byte) []byte {
	if i == nil || i.plan.CorruptRate == 0 || len(data) == 0 {
		return data
	}
	i.mu.Lock()
	n := i.sites[site]
	i.sites[site]++
	i.mu.Unlock()
	rng := i.callRNG(site, n)
	if rng.Float64() >= i.plan.CorruptRate {
		return data
	}
	bit := rng.Intn(len(data) * 8)
	corrupted := append([]byte(nil), data...)
	corrupted[bit/8] ^= 1 << (bit % 8)
	i.reg.Add("fault_corruptions_total", 1)
	return corrupted
}

// CorruptAt applies the context's injector (if any) to bytes read from disk
// at a named fault site. Storage layers call it between the raw read and
// decode/authentication so chaos runs exercise the detection paths.
func CorruptAt(ctx context.Context, site string, data []byte) []byte {
	i := FromContext(ctx)
	if i == nil {
		return data
	}
	return i.CorruptBytes(site, data)
}

// Hit consults the context's injector at a named fail-point. Compute
// packages call it at operation entry; it returns nil unless the context
// carries an injector whose plan fails this site on this hit.
func Hit(ctx context.Context, site string) error {
	i := FromContext(ctx)
	if i == nil {
		return nil
	}
	return i.hit(site)
}

func (i *Injector) hit(site string) error {
	every := i.plan.FailEvery[site]
	if every == 0 {
		return nil
	}
	i.mu.Lock()
	i.sites[site]++
	n := i.sites[site]
	i.mu.Unlock()
	if n%every != 0 {
		return nil
	}
	i.reg.Add("fault_hits_total", 1)
	return fmt.Errorf("%w at %s (hit %d)", ErrInjected, site, n)
}

// IsInjected reports whether err originates from this package (any fault
// family). Consumers use it to distinguish injected chaos from genuine
// failures in tests and retry policies.
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrTransient) || errors.Is(err, ErrOutage)
}

type ctxKey struct{}

// NewContext returns a context carrying the injector; Hit fail-points
// downstream consult it. A nil injector returns ctx unchanged.
func NewContext(ctx context.Context, i *Injector) context.Context {
	if i == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, i)
}

// FromContext returns the context's injector, or nil.
func FromContext(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	i, _ := ctx.Value(ctxKey{}).(*Injector)
	return i
}
