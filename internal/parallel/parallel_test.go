package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bindlock/internal/interrupt"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, done, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
			if !done[i] {
				t.Fatalf("workers=%d: done[%d] = false", workers, i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, done, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran")
		return 0, nil
	})
	if err != nil || len(out) != 0 || len(done) != 0 {
		t.Fatalf("got out=%v done=%v err=%v", out, done, err)
	}
}

// TestMapLowestIndexError pins the deterministic first-error guarantee: with
// several failing tasks, the lowest-index failure is reported no matter which
// goroutine finished first.
func TestMapLowestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for trial := 0; trial < 20; trial++ {
		_, _, err := Map(context.Background(), 8, 32, func(_ context.Context, i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, errAt(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("trial %d: got %v, want task 7's error", trial, err)
		}
	}
}

// TestMapAbortSkipsCasualties checks that a sibling task interrupted by the
// pool's own abort does not mask the genuine failure, even when the casualty
// has a lower index.
func TestMapAbortSkipsCasualties(t *testing.T) {
	genuine := errors.New("genuine failure")
	_, _, err := Map(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			return 0, genuine
		}
		// Task 0 blocks until the pool aborts, then reports the
		// cancellation it observed.
		<-ctx.Done()
		return 0, interrupt.Check(ctx, "test task", nil)
	})
	if !errors.Is(err, genuine) {
		t.Fatalf("got %v, want the genuine failure from task 1", err)
	}
}

func TestMapStopsDispatchOnError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, done, err := Map(context.Background(), 2, 10_000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatalf("pool dispatched all %d tasks after the failure", n)
	}
	if done[3] {
		t.Fatal("failed task marked done")
	}
}

func TestMapOuterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, done, err := Map(ctx, 2, 1_000, func(tctx context.Context, i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return 0, interrupt.Check(tctx, "task", nil)
	})
	if err == nil {
		t.Fatal("cancelled fan-out returned nil error")
	}
	if !errors.Is(err, interrupt.ErrCancelled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if Prefix(done) == len(done) {
		t.Fatal("every task completed despite cancellation")
	}
}

func TestMapSequentialPathChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, done, err := Map(ctx, 1, 5, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran under a dead context")
		return 0, nil
	})
	if !errors.Is(err, interrupt.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if Prefix(done) != 0 {
		t.Fatal("tasks marked done under a dead context")
	}
}

func TestForEach(t *testing.T) {
	var hits atomic.Int64
	done, err := ForEach(context.Background(), 4, 50, func(_ context.Context, i int) error {
		hits.Add(1)
		return nil
	})
	if err != nil || hits.Load() != 50 || Prefix(done) != 50 {
		t.Fatalf("hits=%d done-prefix=%d err=%v", hits.Load(), Prefix(done), err)
	}
}

func TestPrefix(t *testing.T) {
	cases := []struct {
		done []bool
		want int
	}{
		{nil, 0},
		{[]bool{true, true}, 2},
		{[]bool{false, true}, 0},
		{[]bool{true, false, true}, 1},
	}
	for _, c := range cases {
		if got := Prefix(c.done); got != c.want {
			t.Errorf("Prefix(%v) = %d, want %d", c.done, got, c.want)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	ctx := context.Background()
	if got := Workers(ctx, 3); got != 3 {
		t.Fatalf("explicit: %d", got)
	}
	if got := Workers(NewContext(ctx, 5), 0); got != 5 {
		t.Fatalf("from context: %d", got)
	}
	if got := Workers(ctx, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default: %d", got)
	}
	if got := Workers(Sequential(NewContext(ctx, 8)), 0); got != 1 {
		t.Fatalf("sequential override: %d", got)
	}
	if got := FromContext(NewContext(ctx, 0)); got != 0 {
		t.Fatalf("NewContext(0) should be a no-op, got %d", got)
	}
}

// TestMapConcurrencyBound checks the pool never runs more than the requested
// worker count at once.
func TestMapConcurrencyBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, _, err := Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
