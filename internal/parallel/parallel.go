// Package parallel is the bounded worker pool shared by the compute stack:
// the Fig. 4 experiment sweep, the per-secret SAT-attack resilience runs,
// the co-design combination enumeration and the workload simulator all fan
// independent tasks out through Map/ForEach.
//
// The pool is built for determinism, not just throughput. Results come back
// in task-index order regardless of completion order, and the error reported
// for a failed fan-out is the error of the lowest-index failing task —
// preferring genuine task failures over casualties of the pool's own abort —
// so a parallel run fails (and succeeds) exactly like its sequential
// counterpart. Callers that need bit-identical output therefore only have to
// make each task independent and merge results in index order; the pool
// guarantees the rest.
//
// Cancellation composes with internal/interrupt: when the caller's context
// dies mid-flight the pool stops dispatching, lets in-flight tasks observe
// the cancellation, and returns a classified interrupt error alongside the
// per-task completion flags, from which callers assemble partial results
// (see Prefix).
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
)

// ctxKey carries the worker-count setting inside a context.Context, the same
// way progress hooks travel: the facade's WithParallelism option and the cmd
// tools' -j flags install it at the top of the stack and every fan-out point
// reads it back without new parameters on the hot-path signatures.
type ctxKey struct{}

// NewContext returns a context carrying the worker count n. n <= 0 returns
// ctx unchanged (the default — GOMAXPROCS — stays in effect).
func NewContext(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, n)
}

// FromContext returns the context's worker count, or 0 when none is set.
func FromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	n, _ := ctx.Value(ctxKey{}).(int)
	return n
}

// Workers resolves the effective worker count for a fan-out: an explicit
// n > 0 wins, then the context's setting, then runtime.GOMAXPROCS(0).
func Workers(ctx context.Context, n int) int {
	if n > 0 {
		return n
	}
	if c := FromContext(ctx); c > 0 {
		return c
	}
	return runtime.GOMAXPROCS(0)
}

// Sequential returns a context whose nested fan-out points run on one
// worker. Outer fan-outs (one task per benchmark, per seed) hand it to their
// tasks so an inner enumeration does not multiply the goroutine count; the
// determinism guarantee makes the nesting depth invisible in the results.
func Sequential(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, 1)
}

const mapOp = "parallel: map"

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// (0 resolves via Workers) and returns the results in index order.
//
// done[i] reports whether task i completed; out[i] is the zero value where
// it did not. On failure the returned error is the lowest-index task error,
// with errors caused by the pool's own abort (sibling cancellation after a
// genuine failure) skipped when a genuine error exists. The pool stops
// dispatching new tasks once any task fails or the caller's context dies;
// already-running tasks observe the cancellation through the ctx handed to
// fn.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) (out []T, done []bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out = make([]T, n)
	done = make([]bool, n)
	if n == 0 {
		return out, done, nil
	}
	w := Workers(ctx, workers)
	if w > n {
		w = n
	}
	// parallel_* metrics are pool-shape telemetry, deliberately outside the
	// determinism guarantee: the sequential fast path never queues, and task
	// counts at fan-out points can depend on w. Snapshot.Deterministic strips
	// them.
	m := metrics.FromContext(ctx)
	if w <= 1 {
		// Sequential fast path: exact sequential semantics, no goroutines.
		for i := 0; i < n; i++ {
			if cerr := interrupt.Check(ctx, mapOp, nil); cerr != nil {
				return out, done, cerr
			}
			m.Add("parallel_tasks_total", 1)
			v, ferr := fn(ctx, i)
			if ferr != nil {
				return out, done, ferr
			}
			out[i] = v
			done[i] = true
		}
		return out, done, nil
	}

	var dispatchStart time.Time
	if m != nil {
		dispatchStart = time.Now()
	}
	runCtx, abort := context.WithCancelCause(ctx)
	defer abort(nil)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// The stop check precedes the pull, and a pulled index always
				// runs: indices are pulled in ascending order, so the lowest
				// failing index is pulled before any failure can stop
				// dispatch, making the reported first error deterministic.
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if m != nil {
					m.Add("parallel_tasks_total", 1)
					// Queue wait: how long the task sat behind earlier tasks
					// before a worker picked it up.
					m.ObserveDuration("parallel_queue_wait_seconds", time.Since(dispatchStart))
				}
				v, ferr := fn(runCtx, i)
				if ferr != nil {
					errs[i] = ferr
					abort(ferr)
					continue
				}
				out[i] = v
				done[i] = true
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the lowest-index failure wins. When the
	// caller's own context is still live, cancellation-kind errors can only
	// be casualties of the pool abort above, so a genuine failure at a later
	// index takes precedence over them.
	var fallback error
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			continue
		}
		if fallback == nil {
			fallback = errs[i]
		}
		if ctx.Err() != nil || !errors.Is(errs[i], context.Canceled) {
			return out, done, errs[i]
		}
	}
	if fallback != nil {
		return out, done, fallback
	}
	// No task failed but dispatch may have been cut short by the caller's
	// context dying between tasks.
	if cerr := interrupt.Check(ctx, mapOp, nil); cerr != nil && Prefix(done) < n {
		return out, done, cerr
	}
	return out, done, nil
}

// ForEach is Map without per-task results.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) ([]bool, error) {
	_, done, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return done, err
}

// Prefix returns the length of the longest completed prefix of done. Callers
// assembling interrupt-compatible partial results merge exactly this prefix,
// reproducing the shape a sequential run would have left behind.
func Prefix(done []bool) int {
	for i, d := range done {
		if !d {
			return i
		}
	}
	return len(done)
}
