package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bindlock/internal/metrics"
)

func counter(t *testing.T, reg *metrics.Registry, name string) int64 {
	t.Helper()
	v, _ := reg.Snapshot().Counter(name)
	return v
}

func TestStoreRoundTripAndCounters(t *testing.T) {
	reg := metrics.New()
	s, err := Open("", 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on empty store must miss")
	}
	if got := counter(t, reg, "store_miss_total"); got != 1 {
		t.Fatalf("store_miss_total = %d, want 1", got)
	}
	val := []byte(`{"x":1}`)
	if err := s.Put("k1", val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, val)
	}
	if hits := counter(t, reg, "store_hit_total"); hits != 1 {
		t.Fatalf("store_hit_total = %d, want 1", hits)
	}
	// The returned slice is a copy: corrupting it must not poison the cache.
	got[0] = 'X'
	again, _ := s.Get("k1")
	if !bytes.Equal(again, val) {
		t.Fatalf("cache corrupted through returned slice: %q", again)
	}
}

func TestStoreEvictionByByteBudget(t *testing.T) {
	reg := metrics.New()
	s, err := Open("", 64, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Bytes() > 64 {
		t.Fatalf("memory tier holds %d bytes, budget 64", s.Bytes())
	}
	if got := counter(t, reg, "store_evict_total"); got != 2 {
		t.Fatalf("store_evict_total = %d, want 2", got)
	}
	// k0, k1 evicted; k2, k3 resident.
	if _, ok := s.Get("k0"); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := s.Get("k3"); !ok {
		t.Fatal("k3 should be resident")
	}
	// An entry larger than the whole budget still serves its own request.
	if err := s.Put("big", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("big"); !ok {
		t.Fatal("oversized entry must remain readable")
	}
}

func TestStoreLRUOrder(t *testing.T) {
	s, err := Open("", 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", make([]byte, 24))
	s.Put("b", make([]byte, 24))
	s.Get("a") // touch a so b is now least recently used
	s.Put("c", make([]byte, 24))
	if _, ok := s.Get("b"); ok {
		t.Fatal("b was most stale and should have been evicted")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a was touched and should have survived")
	}
}

func TestStoreDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s, err := Open(dir, 1<<20, reg)
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("persistent result bytes")
	if err := s.Put("key", val); err != nil {
		t.Fatal(err)
	}
	// No stray temp files after the atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("disk tier holds %d files, want 1", len(ents))
	}
	if ents[0].Name() != "key.res" {
		t.Fatalf("unexpected disk entry %q", ents[0].Name())
	}

	reopened, err := Open(dir, 1<<20, reg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.Get("key")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("reopened Get = %q, %v; want %q", got, ok, val)
	}
	// The disk hit was promoted: a second Get is served from memory even if
	// the file disappears.
	if err := os.Remove(filepath.Join(dir, "key.res")); err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get("key"); !ok {
		t.Fatal("promoted entry must be served from memory")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 1024, metrics.New())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.Put(key, []byte(key))
				if v, ok := s.Get(key); ok && string(v) != key {
					t.Errorf("got %q for key %q", v, key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFingerprintOrderIndependence(t *testing.T) {
	a := NewFingerprint("prepare").Str("bench", "fir").Int("seed", 7).Int("samples", 600)
	b := NewFingerprint("prepare").Int("samples", 600).Int("seed", 7).Str("bench", "fir")
	if a.Key() != b.Key() {
		t.Fatal("field order must not change the key")
	}
}

func TestFingerprintDeltaSensitivity(t *testing.T) {
	base := func() *Fingerprint {
		return NewFingerprint("prepare").Str("bench", "fir").Int("seed", 7).Int("samples", 600)
	}
	key := base().Key()
	deltas := map[string]*Fingerprint{
		"kind":        NewFingerprint("bind").Str("bench", "fir").Int("seed", 7).Int("samples", 600),
		"value":       NewFingerprint("prepare").Str("bench", "iir1").Int("seed", 7).Int("samples", 600),
		"seed":        NewFingerprint("prepare").Str("bench", "fir").Int("seed", 8).Int("samples", 600),
		"field added": base().Int("max_fus", 2),
		"field name":  NewFingerprint("prepare").Str("bench2", "fir").Int("seed", 7).Int("samples", 600),
	}
	for what, fp := range deltas {
		if fp.Key() == key {
			t.Errorf("%s delta did not change the key", what)
		}
	}
}

// TestFingerprintNoSeparatorSmuggling pins the reason the encoding is
// length-prefixed: field contents that look like field boundaries must not
// collide with genuinely different field lists.
func TestFingerprintNoSeparatorSmuggling(t *testing.T) {
	a := NewFingerprint("k").Str("a", "b=c")
	b := NewFingerprint("k").Str("a=b", "c")
	if a.Key() == b.Key() {
		t.Fatal(`"a"="b=c" and "a=b"="c" must not collide`)
	}
	c := NewFingerprint("k").Str("x", "1").Str("y", "2")
	d := NewFingerprint("k").Str("x", "1\x00y\x002")
	if c.Key() == d.Key() {
		t.Fatal("NUL-joined single field must not collide with two fields")
	}
}

func TestFingerprintCanonicalRoundTrip(t *testing.T) {
	fp := NewFingerprint("attack").Uint("secret", 0xB5).Int("operand_bits", 5).Str("weird", "a\x00=\nb")
	version, kind, fields, err := decodeCanonical(fp.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if version != CodeVersion || kind != "attack" {
		t.Fatalf("decoded (%q, %q), want (%q, attack)", version, kind, CodeVersion)
	}
	if len(fields) != 3 {
		t.Fatalf("decoded %d fields, want 3", len(fields))
	}
	// Sorted by name.
	if fields[0].Name != "operand_bits" || fields[1].Name != "secret" || fields[2].Name != "weird" {
		t.Fatalf("decoded order %v", fields)
	}
	if fields[2].Value != "a\x00=\nb" {
		t.Fatalf("value mangled: %q", fields[2].Value)
	}
}

func TestMemoLRU(t *testing.T) {
	m := NewMemo[int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Get("a")
	m.Put("c", 3)
	if _, ok := m.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v; want 1, true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Put("a", 10)
	if v, _ := m.Get("a"); v != 10 {
		t.Fatalf("overwrite lost: a = %d", v)
	}
}
