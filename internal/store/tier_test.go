package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bindlock/internal/metrics"
)

func TestMemoryTierBasics(t *testing.T) {
	m := NewMemoryTier(0)
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty tier hit")
	}
	if err := m.Put("a", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get("a")
	if !ok || !bytes.Equal(got, []byte("xyz")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// The returned slice is a copy: mutating it must not corrupt the cache.
	got[0] = '!'
	again, _ := m.Get("a")
	if !bytes.Equal(again, []byte("xyz")) {
		t.Fatalf("cache corrupted through returned slice: %q", again)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("hit after delete")
	}
	if err := m.Delete("a"); err != nil {
		t.Fatalf("delete of absent key: %v", err)
	}
}

func TestMemoryTierEvictionBudget(t *testing.T) {
	m := NewMemoryTier(10)
	var evicted []string
	m.onEvict = func(k string) { evicted = append(evicted, k) }
	m.Put("a", []byte("aaaa")) // 4 bytes
	m.Put("b", []byte("bbbb")) // 8 bytes total
	m.Put("c", []byte("cccc")) // 12: evicts LRU "a"
	if _, ok := m.Get("a"); ok {
		t.Fatal("a survived past the byte budget")
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
	if m.Len() != 2 || m.Bytes() != 8 {
		t.Fatalf("len=%d bytes=%d, want 2/8", m.Len(), m.Bytes())
	}
	// An oversized entry still serves its own request (front never evicted).
	m.Put("big", make([]byte, 64))
	if _, ok := m.Get("big"); !ok {
		t.Fatal("oversized entry evicted itself")
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	d, err := NewDiskTier(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("empty tier hit")
	}
	if err := d.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("k")
	if !ok || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if err := d.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("hit after delete")
	}
	if err := d.Delete("k"); err != nil {
		t.Fatalf("delete of absent key: %v", err)
	}
}

func TestChainFallThroughAndPromotion(t *testing.T) {
	mem := NewMemoryTier(0)
	disk, err := NewDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(mem, disk)

	// Seed only the slow tier; a chain Get must fall through and promote.
	if err := disk.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("chain Get = %q, %v", got, ok)
	}
	if _, ok := mem.Get("k"); !ok {
		t.Fatal("hit was not promoted into the memory tier")
	}

	// Put reaches every tier; Delete clears every tier.
	if err := c.Put("p", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := mem.Get("p"); !ok {
		t.Fatal("Put missed the memory tier")
	}
	if _, ok := disk.Get("p"); !ok {
		t.Fatal("Put missed the disk tier")
	}
	if err := c.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("p"); ok {
		t.Fatal("hit after chain delete")
	}

	// The empty chain is valid and always misses.
	if _, ok := NewChain().Get("k"); ok {
		t.Fatal("empty chain hit")
	}
}

// failTier lets the chain error-aggregation contract be pinned down.
type failTier struct{ err error }

func (f failTier) Get(string) ([]byte, bool) { return nil, false }
func (f failTier) Put(string, []byte) error  { return f.err }
func (f failTier) Delete(string) error       { return f.err }

func TestChainPutReachesAllTiersDespiteError(t *testing.T) {
	mem := NewMemoryTier(0)
	boom := errors.New("boom")
	c := NewChain(failTier{boom}, mem)
	if err := c.Put("k", []byte("v")); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want boom", err)
	}
	if _, ok := mem.Get("k"); !ok {
		t.Fatal("failing first tier starved the second")
	}
	if err := c.Delete("k"); !errors.Is(err, boom) {
		t.Fatalf("Delete error = %v, want boom", err)
	}
	if _, ok := mem.Get("k"); ok {
		t.Fatal("delete did not reach the second tier")
	}
}

func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("hit after store delete")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("disk tier still holds %d files after delete", len(entries))
	}
}

// TestDiskTierErrorDistinction pins the miss taxonomy: an absent file is a
// clean miss (onError silent), while a real I/O failure — here a directory
// sitting where the entry file should be — still misses but fires onError.
func TestDiskTierErrorDistinction(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []error
	d.onError = func(err error) { got = append(got, err) }

	if _, ok := d.Get("absent"); ok {
		t.Fatal("hit on an absent key")
	}
	if len(got) != 0 {
		t.Fatalf("clean miss fired onError: %v", got)
	}

	// A directory at the entry path makes ReadFile fail with a non-NotExist
	// error (EISDIR), the shape of corruption and permission problems.
	if err := os.Mkdir(d.path("broken"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("broken"); ok {
		t.Fatal("hit on a corrupted entry")
	}
	if len(got) != 1 {
		t.Fatalf("corrupted entry fired onError %d times, want 1", len(got))
	}
}

// TestStoreDiskErrorCounter pins the wiring: a Store-level read that hits a
// real disk error counts store_disk_error_total and still resolves as a
// recomputable miss.
func TestStoreDiskErrorCounter(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s, err := Open(dir, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "bad.res"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("bad"); ok {
		t.Fatal("hit on a corrupted entry")
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("store_disk_error_total"); v != 1 {
		t.Fatalf("store_disk_error_total = %d, want 1", v)
	}
	if v, _ := snap.Counter("store_miss_total"); v != 1 {
		t.Fatalf("store_miss_total = %d, want 1 (error still misses)", v)
	}
	// An absent key is a plain miss: the error counter must not move.
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on an absent key")
	}
	if v, _ := reg.Snapshot().Counter("store_disk_error_total"); v != 1 {
		t.Fatalf("clean miss moved store_disk_error_total to %d", v)
	}
}
