package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"bindlock/internal/metrics"
)

// HTTPTier is a Tier backed by a peer bindlockd's /v1/cache API, the remote
// level of a fleet's shared result cache. Its contract is strictly
// best-effort:
//
//   - Get misses on any failure — timeout, connection refused, non-200 —
//     never errors. A peer being down costs a recompute, not correctness;
//     failures (other than clean 404 misses) count store_remote_error_total.
//   - Put and Delete swallow transport failures the same way (counted, nil
//     returned): a job that computed a correct result must not fail because
//     a peer could not absorb a copy of it.
//
// The peer serves its *local* tiers only, so mutual -cache-peer wiring
// between two daemons cannot loop.
type HTTPTier struct {
	base   string
	client *http.Client
	reg    *metrics.Registry
}

// DefaultRemoteTimeout bounds each peer-cache request when the caller does
// not choose one; a remote tier slower than this is worse than a recompute
// for most workloads.
const DefaultRemoteTimeout = 2 * time.Second

// MaxRemoteEntryBytes bounds how much of a peer's response body Get will
// buffer. Cache entries are canonical serialised results (kilobytes, not
// gigabytes); a peer streaming more than this is misbehaving or malicious,
// and costs a counted miss rather than an OOM.
const MaxRemoteEntryBytes = 16 << 20

// NewHTTPTier returns a remote tier talking to the bindlockd at baseURL
// (e.g. "http://peer:8080"). timeout <= 0 takes DefaultRemoteTimeout; the
// registry receives store_remote_{get,hit,error}_total and may be nil.
func NewHTTPTier(baseURL string, timeout time.Duration, reg *metrics.Registry) (*HTTPTier, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: peer url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: peer url %q: scheme must be http or https", baseURL)
	}
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	return &HTTPTier{
		base:   strings.TrimRight(u.String(), "/"),
		client: &http.Client{Timeout: timeout},
		reg:    reg,
	}, nil
}

// Base returns the peer's base URL.
func (t *HTTPTier) Base() string { return t.base }

func (t *HTTPTier) url(key string) string {
	return t.base + "/v1/cache/" + key
}

// Get fetches key from the peer. Every failure mode is a miss.
func (t *HTTPTier) Get(key string) ([]byte, bool) {
	t.reg.Add("store_remote_get_total", 1)
	resp, err := t.client.Get(t.url(key))
	if err != nil {
		t.reg.Add("store_remote_error_total", 1)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false
	default:
		io.Copy(io.Discard, resp.Body)
		t.reg.Add("store_remote_error_total", 1)
		return nil, false
	}
	// Read through a hard size bound: one extra byte past the cap proves
	// the peer overflowed it without buffering an unbounded body.
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxRemoteEntryBytes+1))
	if err != nil || len(data) > MaxRemoteEntryBytes {
		t.reg.Add("store_remote_error_total", 1)
		return nil, false
	}
	t.reg.Add("store_remote_hit_total", 1)
	return data, true
}

// Put offers the bytes to the peer, best-effort.
func (t *HTTPTier) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, t.url(key), bytes.NewReader(data))
	if err != nil {
		t.reg.Add("store_remote_error_total", 1)
		return nil
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		t.reg.Add("store_remote_error_total", 1)
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.reg.Add("store_remote_error_total", 1)
	}
	return nil
}

// Delete invalidates key on the peer, best-effort.
func (t *HTTPTier) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, t.url(key), nil)
	if err != nil {
		t.reg.Add("store_remote_error_total", 1)
		return nil
	}
	resp, err := t.client.Do(req)
	if err != nil {
		t.reg.Add("store_remote_error_total", 1)
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.reg.Add("store_remote_error_total", 1)
	}
	return nil
}
