package store

import (
	"bytes"
	"testing"
)

// splitFields carves fuzz bytes into a field list: NUL-separated tokens,
// alternating name/value. The split is only a convenient way to reach many
// field shapes — the property below does not depend on it.
func splitFields(data []byte) []Field {
	parts := bytes.Split(data, []byte{0})
	var fields []Field
	for i := 0; i+1 < len(parts); i += 2 {
		fields = append(fields, Field{Name: string(parts[i]), Value: string(parts[i+1])})
	}
	return fields
}

// FuzzFingerprint guards the cache-key canonicalisation against collision
// ambiguity. Two properties:
//
//  1. Injectivity via round-trip: the canonical encoding decodes back to
//     exactly the sorted field list it was built from, so no two distinct
//     field lists can share an encoding (a shared encoding would have to
//     decode to both).
//  2. Order independence: permuting the field list (here: reversing) never
//     changes the key — option order must not split the cache.
//
// These are the two failure modes that would corrupt the result cache:
// distinct requests colliding on one key (wrong results served), and one
// request mapping to many keys (cache never hits).
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte("bench\x00fir\x00seed\x007"))
	f.Add([]byte("a\x00b=c"))
	f.Add([]byte("a=b\x00c"))
	f.Add([]byte("x\x001\x00y\x002"))
	f.Add([]byte("x\x001\x00x\x001")) // duplicate field
	f.Add([]byte("\x00"))             // empty name and value
	f.Add([]byte("käll\x00värde"))    // multi-byte runes
	f.Add([]byte("n\x00\x00\x00v"))   // values containing the split byte's neighbours
	f.Fuzz(func(t *testing.T, data []byte) {
		fields := splitFields(data)
		fp := NewFingerprint("fuzz")
		for _, fd := range fields {
			fp.Str(fd.Name, fd.Value)
		}
		enc := fp.Canonical()
		version, kind, decoded, err := decodeCanonical(enc)
		if err != nil {
			t.Fatalf("canonical encoding did not decode: %v", err)
		}
		if version != CodeVersion || kind != "fuzz" {
			t.Fatalf("decoded (%q, %q), want (%q, fuzz)", version, kind, CodeVersion)
		}
		// Round trip: decoded fields must be exactly the input fields after
		// the canonical sort.
		sorted := NewFingerprint("fuzz")
		for _, fd := range decoded {
			sorted.Str(fd.Name, fd.Value)
		}
		if !bytes.Equal(sorted.Canonical(), enc) {
			t.Fatal("re-encoding the decoded fields diverged: encoding is not injective")
		}
		if len(decoded) != len(fields) {
			t.Fatalf("decoded %d fields from %d", len(decoded), len(fields))
		}

		// Order independence: reversed insertion yields the identical key.
		rev := NewFingerprint("fuzz")
		for i := len(fields) - 1; i >= 0; i-- {
			rev.Str(fields[i].Name, fields[i].Value)
		}
		if rev.Key() != fp.Key() {
			t.Fatal("field order changed the cache key")
		}
	})
}
