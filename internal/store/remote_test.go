package store

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bindlock/internal/metrics"
)

// fakePeer is an in-memory stand-in for a peer daemon's /v1/cache API, so
// these tests exercise the HTTPTier contract without importing the server.
type fakePeer struct {
	mu   sync.Mutex
	data map[string][]byte
}

func newFakePeer() *fakePeer { return &fakePeer{data: map[string][]byte{}} }

func (p *fakePeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	p.mu.Lock()
	defer p.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		if data, ok := p.data[key]; ok {
			w.Write(data)
			return
		}
		http.Error(w, "miss", http.StatusNotFound)
	case http.MethodPut:
		body, _ := io.ReadAll(r.Body)
		p.data[key] = body
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		delete(p.data, key)
		w.WriteHeader(http.StatusNoContent)
	}
}

func TestHTTPTierRoundTrip(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()
	reg := metrics.New()
	tier, err := NewHTTPTier(ts.URL, 0, reg)
	if err != nil {
		t.Fatal(err)
	}

	key := strings.Repeat("0a", 32)
	if _, ok := tier.Get(key); ok {
		t.Fatal("hit on an empty peer")
	}
	if err := tier.Put(key, []byte("payload")); err != nil {
		t.Fatalf("put: %v", err)
	}
	data, ok := tier.Get(key)
	if !ok || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("get after put: %q, %v", data, ok)
	}
	if err := tier.Delete(key); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok := tier.Get(key); ok {
		t.Fatal("hit after delete")
	}

	snap := reg.Snapshot()
	if v, _ := snap.Counter("store_remote_get_total"); v != 3 {
		t.Fatalf("store_remote_get_total = %d, want 3", v)
	}
	if v, _ := snap.Counter("store_remote_hit_total"); v != 1 {
		t.Fatalf("store_remote_hit_total = %d, want 1", v)
	}
	// Clean 404 misses are not errors.
	if v, _ := snap.Counter("store_remote_error_total"); v != 0 {
		t.Fatalf("store_remote_error_total = %d, want 0", v)
	}
}

// TestHTTPTierPeerDown pins the miss-on-error contract: with the peer
// unreachable, Get misses, Put and Delete return nil, and every failure is
// counted.
func TestHTTPTierPeerDown(t *testing.T) {
	ts := httptest.NewServer(newFakePeer())
	reg := metrics.New()
	tier, err := NewHTTPTier(ts.URL, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close() // the address now refuses connections

	key := strings.Repeat("0b", 32)
	if _, ok := tier.Get(key); ok {
		t.Fatal("hit from a dead peer")
	}
	if err := tier.Put(key, []byte("x")); err != nil {
		t.Fatalf("put against a dead peer must be silent, got %v", err)
	}
	if err := tier.Delete(key); err != nil {
		t.Fatalf("delete against a dead peer must be silent, got %v", err)
	}
	if v, _ := reg.Snapshot().Counter("store_remote_error_total"); v != 3 {
		t.Fatalf("store_remote_error_total = %d, want 3", v)
	}
}

// TestHTTPTierServerError pins that a peer answering 500 is an error-counted
// miss, not a hit and not a hard failure.
func TestHTTPTierServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	reg := metrics.New()
	tier, err := NewHTTPTier(ts.URL, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tier.Get(strings.Repeat("0c", 32)); ok {
		t.Fatal("500 reported as a hit")
	}
	if err := tier.Put(strings.Repeat("0c", 32), []byte("x")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if v, _ := reg.Snapshot().Counter("store_remote_error_total"); v != 2 {
		t.Fatalf("store_remote_error_total = %d, want 2", v)
	}
}

// TestHTTPTierOversizeResponse pins the peer-response bound: a body beyond
// MaxRemoteEntryBytes is an error-counted miss — a misbehaving or malicious
// peer cannot balloon this daemon's memory — while a body exactly at the
// bound still serves.
func TestHTTPTierOversizeResponse(t *testing.T) {
	oversized, atBound := strings.Repeat("0e", 32), strings.Repeat("0f", 32)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		size := MaxRemoteEntryBytes
		if strings.HasSuffix(r.URL.Path, oversized) {
			size++
		}
		w.Write(bytes.Repeat([]byte{'x'}, size))
	}))
	defer ts.Close()
	reg := metrics.New()
	tier, err := NewHTTPTier(ts.URL, 0, reg)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := tier.Get(oversized); ok {
		t.Fatal("oversized peer response served as a hit")
	}
	if v, _ := reg.Snapshot().Counter("store_remote_error_total"); v != 1 {
		t.Fatalf("store_remote_error_total = %d, want 1", v)
	}
	data, ok := tier.Get(atBound)
	if !ok || len(data) != MaxRemoteEntryBytes {
		t.Fatalf("at-bound response: ok=%v len=%d, want %d", ok, len(data), MaxRemoteEntryBytes)
	}
}

func TestNewHTTPTierRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"ftp://peer", "peer:8080", "://x"} {
		if _, err := NewHTTPTier(bad, 0, nil); err == nil {
			t.Fatalf("NewHTTPTier(%q) accepted", bad)
		}
	}
	tier, err := NewHTTPTier("http://peer:8080/", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Base() != "http://peer:8080" {
		t.Fatalf("trailing slash kept: %q", tier.Base())
	}
}

// TestAttachRemoteComposition pins the chain shape: a local miss falls
// through to the remote tier and the hit is promoted into the local tiers,
// while Local() never consults the remote.
func TestAttachRemoteComposition(t *testing.T) {
	peer := newFakePeer()
	ts := httptest.NewServer(peer)
	defer ts.Close()

	reg := metrics.New()
	s, err := Open(t.TempDir(), 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := NewHTTPTier(ts.URL, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRemote(tier)

	key := strings.Repeat("0d", 32)
	peer.mu.Lock()
	peer.data[key] = []byte("remote bytes")
	peer.mu.Unlock()

	// Local view misses: the peer is not part of it.
	if _, ok := s.Local().Get(key); ok {
		t.Fatal("Local() consulted the remote tier")
	}
	// Full chain falls through to the peer and promotes.
	data, ok := s.Get(key)
	if !ok || !bytes.Equal(data, []byte("remote bytes")) {
		t.Fatalf("chain get: %q, %v", data, ok)
	}
	if _, ok := s.Local().Get(key); !ok {
		t.Fatal("remote hit was not promoted into the local tiers")
	}
}
