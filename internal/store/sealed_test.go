package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bindlock/internal/metrics"
)

func sealKey(b byte) []byte { return bytes.Repeat([]byte{b}, SealKeySize) }

func TestSealedTierRoundTrip(t *testing.T) {
	inner := NewMemoryTier(0)
	st, err := NewSealedTier(inner, sealKey(7))
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte(`{"result":"secret payload"}`)
	if err := st.Put("k", plain); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("k")
	if !ok || !bytes.Equal(got, plain) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, plain)
	}
	// At rest the entry is enveloped and opaque: magic prefix, no plaintext.
	raw, ok := inner.Get("k")
	if !ok || !bytes.HasPrefix(raw, []byte(sealMagic)) {
		t.Fatalf("sealed entry missing %q envelope: %q", sealMagic, raw)
	}
	if bytes.Contains(raw, []byte("secret payload")) {
		t.Fatal("plaintext visible in the sealed entry")
	}
	// A second Put of the identical value seals under a fresh nonce.
	if err := st.Put("k", plain); err != nil {
		t.Fatal(err)
	}
	raw2, _ := inner.Get("k")
	if bytes.Equal(raw, raw2) {
		t.Fatal("two Puts produced identical ciphertext: nonce reuse")
	}
}

// TestSealedTierTamperIsMiss pins the degrade-to-recompute contract: one
// flipped bit at rest turns the entry into a counted miss, never garbage
// bytes, and the poisoned file is dropped so the recompute's Put starts
// clean.
func TestSealedTierTamperIsMiss(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSealedTier(disk, sealKey(1))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	st.onAuthFail = func(string, error) { fails++ }
	if err := st.Put("k", []byte("result bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if data, ok := st.Get("k"); ok {
		t.Fatalf("tampered entry served: %q", data)
	}
	if fails != 1 {
		t.Fatalf("onAuthFail fired %d times, want 1", fails)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("poisoned entry left on disk after the failed Get")
	}
}

// TestSealedTierNoCrossKeyReplay pins the associated-data binding: a validly
// sealed entry copied over another fingerprint's file fails authentication —
// an attacker cannot make the cache serve result A for request B.
func TestSealedTierNoCrossKeyReplay(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSealedTier(disk, sealKey(2))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	st.onAuthFail = func(string, error) { fails++ }
	ka, kb := strings.Repeat("aa", 32), strings.Repeat("bb", 32)
	if err := st.Put(ka, []byte("result for a")); err != nil {
		t.Fatal(err)
	}
	sealed, err := os.ReadFile(filepath.Join(dir, ka+".res"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, kb+".res"), sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	if data, ok := st.Get(kb); ok {
		t.Fatalf("replayed entry served under a different fingerprint: %q", data)
	}
	if fails != 1 {
		t.Fatalf("onAuthFail fired %d times, want 1", fails)
	}
	// The original entry is untouched and still serves.
	if data, ok := st.Get(ka); !ok || !bytes.Equal(data, []byte("result for a")) {
		t.Fatalf("original entry broken by the replay attempt: %q, %v", data, ok)
	}
}

// TestSealedTierPlaintextIsFormatMiss pins the envelope check: a legacy
// plaintext .res under a sealed store is a format miss (ErrSealFormat), not
// an AEAD panic and not served as-is.
func TestSealedTierPlaintextIsFormatMiss(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSealedTier(disk, sealKey(3))
	if err != nil {
		t.Fatal(err)
	}
	var failErr error
	st.onAuthFail = func(_ string, err error) { failErr = err }
	if err := disk.Put("k", []byte("legacy plaintext result")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); ok {
		t.Fatal("unsealed legacy entry served through the sealed tier")
	}
	if !errors.Is(failErr, ErrSealFormat) {
		t.Fatalf("onAuthFail err = %v, want ErrSealFormat", failErr)
	}
}

func TestNewSealedTierKeySize(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33} {
		if _, err := NewSealedTier(NewMemoryTier(0), make([]byte, n)); err == nil {
			t.Errorf("NewSealedTier accepted a %d-byte key", n)
		}
	}
}

func TestLoadOrCreateKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "node.key")
	k1, err := LoadOrCreateKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != SealKeySize {
		t.Fatalf("generated key is %d bytes, want %d", len(k1), SealKeySize)
	}
	if info, err := os.Stat(path); err != nil || info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode %v, err %v; want 0600", info.Mode(), err)
	}
	// A second load returns the same key, not a fresh draw.
	k2, err := LoadOrCreateKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Fatal("reload produced a different key")
	}
	// A malformed key file is an error, never a silent regenerate —
	// regenerating would orphan every sealed entry on disk.
	for _, bad := range []string{"deadbeef\n", "not hex at all", ""} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadOrCreateKey(path); err == nil {
			t.Errorf("key file %q accepted", bad)
		}
	}
}

// TestStoreSealedEndToEnd pins the wired-up behavior OpenWith provides the
// daemon: sealed at rest, readable across restarts under the same key, and a
// tampered file degrades to a counted miss with the entry dropped.
func TestStoreSealedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	key := sealKey(9)
	val := []byte(`{"key":"110","secret":42}`)

	regA := metrics.New()
	sA, err := OpenWith(Options{Dir: dir, SealKey: key}, regA)
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.Put("k", val); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(sealMagic)) || bytes.Contains(raw, []byte("secret")) {
		t.Fatalf("disk entry not sealed: %q", raw)
	}

	// A cold store under the same key unseals the entry.
	regB := metrics.New()
	sB, err := OpenWith(Options{Dir: dir, SealKey: key}, regB)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sB.Get("k"); !ok || !bytes.Equal(got, val) {
		t.Fatalf("cold sealed Get = %q, %v; want %q", got, ok, val)
	}

	// One flipped byte: a third cold store must miss, count the auth
	// failure, and drop the file.
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	regC := metrics.New()
	sC, err := OpenWith(Options{Dir: dir, SealKey: key}, regC)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := sC.Get("k"); ok {
		t.Fatalf("tampered entry served: %q", data)
	}
	snap := regC.Snapshot()
	if v, _ := snap.Counter("store_auth_fail_total"); v != 1 {
		t.Fatalf("store_auth_fail_total = %d, want 1", v)
	}
	if v, _ := snap.Counter("store_miss_total"); v != 1 {
		t.Fatalf("store_miss_total = %d, want 1", v)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tampered entry left on disk")
	}
}

// TestStoreUnsealedByteCompat pins that without a seal key the on-disk
// format stays exactly the plaintext result bytes — existing caches keep
// working and sealing stays an explicit opt-in.
func TestStoreUnsealedByteCompat(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := []byte(`{"plain":"result"}`)
	if err := s.Put("k", val); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "k.res"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, val) {
		t.Fatalf("unsealed disk entry is %q, want the plaintext %q", raw, val)
	}
}

// TestDiskTierReadInterposer pins the corruption seam: the interposer sits
// on the raw-read path, under any seal, so injected bit-rot is caught by
// authentication exactly like real media corruption.
func TestDiskTierReadInterposer(t *testing.T) {
	disk, err := NewDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk.SetReadInterposer(func(b []byte) []byte {
		b[0] ^= 0x01
		return b
	})
	if err := disk.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got, _ := disk.Get("k"); bytes.Equal(got, []byte("abc")) {
		t.Fatal("interposer did not see the raw read")
	}

	// Under a seal, the same interposed corruption is an auth miss.
	st, err := NewSealedTier(disk, sealKey(4))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	st.onAuthFail = func(string, error) { fails++ }
	if err := st.Put("k2", []byte("sealed value")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k2"); ok || fails != 1 {
		t.Fatalf("interposed corruption not caught by the seal: ok=%v fails=%d", ok, fails)
	}
}
