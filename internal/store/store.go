package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bindlock/internal/metrics"
)

// Store is the two-tier content-addressed byte cache. Keys are Fingerprint
// keys (hex SHA-256); values are the canonical serialised results. All
// methods are safe for concurrent use.
//
// Determinism contract: Get returns exactly the bytes Put stored (a fresh
// copy, so callers cannot corrupt the cache). Because keys are injective
// fingerprints over everything a computation depends on, a hit is
// byte-identical to what a cold run would have produced.
type Store struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string
	reg   *metrics.Registry
}

type entry struct {
	key  string
	data []byte
}

// Open returns a store with the given in-memory byte budget (<= 0: the
// memory tier is unbounded) and, when dir is non-empty, a disk tier rooted
// there (created if absent). The registry receives the store_hit_total /
// store_miss_total / store_evict_total counters; nil disables counting.
func Open(dir string, maxBytes int64, reg *metrics.Registry) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		max:   maxBytes,
		ll:    list.New(),
		items: map[string]*list.Element{},
		dir:   dir,
		reg:   reg,
	}, nil
}

// Get returns the cached bytes for key. A memory miss falls through to the
// disk tier; a disk hit is promoted back into memory. Both tiers missing
// counts one store_miss_total; any hit counts one store_hit_total.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		data := append([]byte(nil), el.Value.(*entry).data...)
		s.mu.Unlock()
		s.reg.Add("store_hit_total", 1)
		return data, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			s.reg.Add("store_hit_total", 1)
			s.insert(key, data)
			return append([]byte(nil), data...), true
		}
	}
	s.reg.Add("store_miss_total", 1)
	return nil, false
}

// Put stores the bytes under key in both tiers. The memory tier evicts
// least-recently-used entries until it fits the byte budget; the disk tier
// (when enabled) is written atomically — temp file, fsync, rename — so a
// crash mid-write leaves either the old entry or the new one, never a torn
// file.
func (s *Store) Put(key string, data []byte) error {
	s.insert(key, data)
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	return writeAtomic(s.path(key), data)
}

// insert places a copy of data into the memory tier and trims to budget.
func (s *Store) insert(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.size += int64(len(data)) - int64(len(e.data))
		e.data = append([]byte(nil), data...)
		s.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, data: append([]byte(nil), data...)}
		s.items[key] = s.ll.PushFront(e)
		s.size += int64(len(e.data))
	}
	if s.max <= 0 {
		return
	}
	// Trim LRU entries; the entry just touched (front) is never evicted, so
	// a single oversized result still serves its own request.
	for s.size > s.max && s.ll.Len() > 1 {
		back := s.ll.Back()
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.size -= int64(len(e.data))
		s.reg.Add("store_evict_total", 1)
	}
}

// Len returns the memory-tier entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the memory-tier byte footprint.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the disk-tier root, or "" when the store is memory-only.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its disk-tier file. Keys are hex digests, so they are
// filesystem-safe by construction.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".res")
}

// writeAtomic writes data to path via temp + fsync + rename, the repository's
// standard crash-safe write discipline.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Memo is a count-bounded in-memory LRU for live objects that are expensive
// to rebuild but not worth serialising — the job manager memoizes prepared
// designs in one so a bind job following a prepare of the same kernel skips
// the compile/schedule/simulate flow. Values must be treated as shared and
// read-only by all users. Safe for concurrent use.
type Memo[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type memoEntry[V any] struct {
	key string
	val V
}

// NewMemo returns a memo holding at most max entries (max <= 0: 32).
func NewMemo[V any](max int) *Memo[V] {
	if max <= 0 {
		max = 32
	}
	return &Memo[V]{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the memoized value for key.
func (m *Memo[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		m.ll.MoveToFront(el)
		return el.Value.(*memoEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put memoizes val under key, evicting the least-recently-used entry when
// the count budget is exceeded.
func (m *Memo[V]) Put(key string, val V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		el.Value.(*memoEntry[V]).val = val
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memoEntry[V]{key: key, val: val})
	for m.ll.Len() > m.max {
		back := m.ll.Back()
		m.ll.Remove(back)
		delete(m.items, back.Value.(*memoEntry[V]).key)
	}
}

// Len returns the memo's entry count.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
