package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bindlock/internal/metrics"
)

// Store is the content-addressed byte cache used by the serving layer: a
// Chain of a memory LRU tier over an optional disk tier, with hit/miss/evict
// telemetry. Keys are Fingerprint keys (hex SHA-256); values are the
// canonical serialised results. All methods are safe for concurrent use.
//
// Determinism contract: Get returns exactly the bytes Put stored (a fresh
// copy, so callers cannot corrupt the cache). Because keys are injective
// fingerprints over everything a computation depends on, a hit is
// byte-identical to what a cold run would have produced.
type Store struct {
	mem   *MemoryTier
	disk  *DiskTier // nil when memory-only
	local *Chain    // memory + disk only — what the peer-cache API serves
	chain *Chain    // local tiers plus any attached remote tiers
	reg   *metrics.Registry
}

type entry struct {
	key  string
	data []byte
}

// Options configures OpenWith beyond the basic dir/budget pair.
type Options struct {
	// Dir roots the disk tier; empty means memory-only.
	Dir string
	// MaxBytes bounds the memory tier (<= 0: unbounded).
	MaxBytes int64
	// SealKey, when non-nil, wraps the disk tier in a SealedTier keyed by
	// it (must be SealKeySize bytes): entries are AEAD-sealed at rest and
	// a tampered/corrupted file degrades to a miss + store_auth_fail_total
	// instead of being served. nil keeps the on-disk format byte-compatible
	// with unsealed stores.
	SealKey []byte
	// ReadInterposer, when set, is installed on the disk tier's raw-read
	// path, under the seal — the deterministic-corruption seam for chaos
	// runs (fault.Injector.CorruptBytes).
	ReadInterposer func([]byte) []byte
}

// Open returns a store with the given in-memory byte budget (<= 0: the
// memory tier is unbounded) and, when dir is non-empty, a disk tier rooted
// there (created if absent). The registry receives the store_hit_total /
// store_miss_total / store_evict_total counters; nil disables counting.
func Open(dir string, maxBytes int64, reg *metrics.Registry) (*Store, error) {
	return OpenWith(Options{Dir: dir, MaxBytes: maxBytes}, reg)
}

// OpenWith is Open with the full option set: at-rest sealing and the
// chaos read interposer.
func OpenWith(o Options, reg *metrics.Registry) (*Store, error) {
	s := &Store{mem: NewMemoryTier(o.MaxBytes), reg: reg}
	s.mem.onEvict = func(string) { s.reg.Add("store_evict_total", 1) }
	tiers := []Tier{s.mem}
	if o.Dir != "" {
		disk, err := NewDiskTier(o.Dir)
		if err != nil {
			return nil, err
		}
		// A disk read failing for any reason other than a missing file is
		// a real I/O problem, not a miss; count it so a dying disk cannot
		// hide behind silent recomputation.
		disk.onError = func(error) { s.reg.Add("store_disk_error_total", 1) }
		disk.readInterposer = o.ReadInterposer
		s.disk = disk
		var at Tier = disk
		if o.SealKey != nil {
			sealed, err := NewSealedTier(disk, o.SealKey)
			if err != nil {
				return nil, err
			}
			// An entry failing authentication is detected tamper/rot, not
			// a routine miss; count it so chaos runs can assert detection.
			sealed.onAuthFail = func(string, error) { s.reg.Add("store_auth_fail_total", 1) }
			at = sealed
		}
		tiers = append(tiers, at)
	}
	s.local = NewChain(tiers...)
	s.chain = s.local
	return s, nil
}

// Tiers exposes the underlying fall-through chain, so embedders can consult
// the cache hierarchy directly or wrap it.
func (s *Store) Tiers() *Chain { return s.chain }

// Local returns the chain of local tiers only (memory, disk). The
// peer-cache HTTP endpoints must serve this view, not the full chain, so
// two daemons pointing at each other cannot ping-pong a lookup.
func (s *Store) Local() *Chain { return s.local }

// AttachRemote appends a remote tier after the local tiers, composing
// memory → disk → remote: a local miss falls through to the peer and a hit
// there is promoted back into the local tiers. Not safe to call once the
// store is in concurrent use — wire remotes at startup.
func (s *Store) AttachRemote(t Tier) {
	s.chain = NewChain(append(append([]Tier(nil), s.chain.tiers...), t)...)
}

// Get returns the cached bytes for key. A memory miss falls through the
// chain (disk, when enabled); a lower-tier hit is promoted back into memory.
// All tiers missing counts one store_miss_total; any hit counts one
// store_hit_total.
func (s *Store) Get(key string) ([]byte, bool) {
	data, ok := s.chain.Get(key)
	if ok {
		s.reg.Add("store_hit_total", 1)
	} else {
		s.reg.Add("store_miss_total", 1)
	}
	return data, ok
}

// Put stores the bytes under key in every tier.
func (s *Store) Put(key string, data []byte) error {
	return s.chain.Put(key, data)
}

// Delete removes key from every tier.
func (s *Store) Delete(key string) error {
	return s.chain.Delete(key)
}

// Len returns the memory-tier entry count.
func (s *Store) Len() int { return s.mem.Len() }

// Bytes returns the memory-tier byte footprint.
func (s *Store) Bytes() int64 { return s.mem.Bytes() }

// Dir returns the disk-tier root, or "" when the store is memory-only.
func (s *Store) Dir() string {
	if s.disk == nil {
		return ""
	}
	return s.disk.Dir()
}

// writeAtomic writes data to path via temp + fsync + rename, the repository's
// standard crash-safe write discipline.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Memo is a count-bounded in-memory LRU for live objects that are expensive
// to rebuild but not worth serialising — the job manager memoizes prepared
// designs in one so a bind job following a prepare of the same kernel skips
// the compile/schedule/simulate flow. Values must be treated as shared and
// read-only by all users. Safe for concurrent use.
type Memo[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type memoEntry[V any] struct {
	key string
	val V
}

// NewMemo returns a memo holding at most max entries (max <= 0: 32).
func NewMemo[V any](max int) *Memo[V] {
	if max <= 0 {
		max = 32
	}
	return &Memo[V]{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the memoized value for key.
func (m *Memo[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		m.ll.MoveToFront(el)
		return el.Value.(*memoEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put memoizes val under key, evicting the least-recently-used entry when
// the count budget is exceeded.
func (m *Memo[V]) Put(key string, val V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		el.Value.(*memoEntry[V]).val = val
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memoEntry[V]{key: key, val: val})
	for m.ll.Len() > m.max {
		back := m.ll.Back()
		m.ll.Remove(back)
		delete(m.items, back.Value.(*memoEntry[V]).key)
	}
}

// Len returns the memo's entry count.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
