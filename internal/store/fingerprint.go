// Package store is the content-addressed result cache behind the serving
// layer: completed workload results (prepared designs, recovered attack keys,
// co-designed locking configurations) are memoized under a SHA-256 key of a
// canonical request fingerprint, so a repeated identical request is served
// from the cache with byte-identical results instead of recomputing.
//
// The cache has two tiers. The in-memory tier is an LRU bounded by a byte
// budget; the optional disk tier persists every entry with the repository's
// atomic temp+fsync+rename discipline (the same one attack checkpoints use),
// so results survive a daemon restart. Entries never expire by time: a key is
// a pure function of (code version, workload kind, source, options, seed),
// and the repository's determinism guarantee makes the value it addresses
// immutable — recomputing it can only reproduce the identical bytes.
//
// Fingerprint is the canonicalisation layer. Requests are flattened to named
// string fields; the encoding is injective (length-prefixed fields, sorted by
// name), so neither option order nor hostile field contents ("a=b", embedded
// separators, NULs) can make two different requests collide on one key, nor
// one request produce two keys. FuzzFingerprint guards this property.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// CodeVersion is folded into every fingerprint. Bump it when the compute
// stack changes in a way that alters results for the same request, so stale
// cache entries stop being served rather than silently disagreeing with a
// fresh run. bindlock-2: the SAT attack's miter gained an activation-guarded
// difference clause and assumption-based solving, which changes DIP
// sequences (and attack jobs now carry a solver field). bindlock-3: attack
// jobs gained a scheme field (sfll or cyclic) and cyclic result payloads,
// and the Tseitin encoder pins feedback-source variables, shifting variable
// numbering on cyclic circuits.
const CodeVersion = "bindlock-3"

// Field is one named value of a fingerprint.
type Field struct {
	Name  string
	Value string
}

// Fingerprint accumulates the canonical form of a request: a workload kind
// plus named fields. Field order does not matter — Canonical sorts — and the
// zero value is unusable; call NewFingerprint.
type Fingerprint struct {
	kind   string
	fields []Field
}

// NewFingerprint starts a fingerprint for the given workload kind
// ("prepare", "attack", ...).
func NewFingerprint(kind string) *Fingerprint {
	return &Fingerprint{kind: kind}
}

// Str adds a string field.
func (f *Fingerprint) Str(name, value string) *Fingerprint {
	f.fields = append(f.fields, Field{Name: name, Value: value})
	return f
}

// Int adds an integer field.
func (f *Fingerprint) Int(name string, v int64) *Fingerprint {
	return f.Str(name, strconv.FormatInt(v, 10))
}

// Uint adds an unsigned integer field.
func (f *Fingerprint) Uint(name string, v uint64) *Fingerprint {
	return f.Str(name, strconv.FormatUint(v, 10))
}

// Canonical returns the unambiguous byte encoding the key is hashed from:
// the code version, the kind, and every field sorted by name (ties by value)
// — each string length-prefixed with a uvarint. Length prefixes, not
// separators, make the encoding injective: no field content can imitate a
// field boundary, so two distinct field lists never encode alike.
func (f *Fingerprint) Canonical() []byte {
	fields := append([]Field(nil), f.fields...)
	sort.Slice(fields, func(i, j int) bool {
		if fields[i].Name != fields[j].Name {
			return fields[i].Name < fields[j].Name
		}
		return fields[i].Value < fields[j].Value
	})
	var buf []byte
	buf = appendString(buf, CodeVersion)
	buf = appendString(buf, f.kind)
	buf = binary.AppendUvarint(buf, uint64(len(fields)))
	for _, fd := range fields {
		buf = appendString(buf, fd.Name)
		buf = appendString(buf, fd.Value)
	}
	return buf
}

// Key returns the cache key: the hex SHA-256 of the canonical encoding.
func (f *Fingerprint) Key() string {
	sum := sha256.Sum256(f.Canonical())
	return hex.EncodeToString(sum[:])
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeCanonical parses a Canonical encoding back into (version, kind,
// fields). It exists so the fuzz target can prove the encoding injective: an
// encoding that round-trips losslessly cannot map two inputs to one output.
func decodeCanonical(buf []byte) (version, kind string, fields []Field, err error) {
	rest := buf
	next := func() (string, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return "", fmt.Errorf("store: truncated canonical encoding")
		}
		s := string(rest[used : used+int(n)])
		rest = rest[used+int(n):]
		return s, nil
	}
	if version, err = next(); err != nil {
		return "", "", nil, err
	}
	if kind, err = next(); err != nil {
		return "", "", nil, err
	}
	count, used := binary.Uvarint(rest)
	if used <= 0 {
		return "", "", nil, fmt.Errorf("store: truncated canonical encoding")
	}
	rest = rest[used:]
	for i := uint64(0); i < count; i++ {
		var fd Field
		if fd.Name, err = next(); err != nil {
			return "", "", nil, err
		}
		if fd.Value, err = next(); err != nil {
			return "", "", nil, err
		}
		fields = append(fields, fd)
	}
	if len(rest) != 0 {
		return "", "", nil, fmt.Errorf("store: %d trailing bytes after canonical encoding", len(rest))
	}
	return version, kind, fields, nil
}
