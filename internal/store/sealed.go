package store

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// SealKeySize is the size of a node cache-sealing key: AES-256.
const SealKeySize = 32

// sealMagic prefixes every sealed entry so an unsealed store reading a
// sealed file (or vice versa) fails fast on format, not on a confusing
// AEAD error.
const sealMagic = "BLS1"

// ErrSealFormat marks sealed bytes whose envelope is malformed (missing
// magic, truncated nonce) — corruption or a plaintext file where a sealed
// one was expected.
var ErrSealFormat = errors.New("store: sealed entry malformed")

// SealedTier wraps an inner Tier so its bytes are authenticated-and-
// encrypted at rest (AES-256-GCM). Each Put seals the plaintext under a
// fresh random nonce with the cache key as associated data, so a sealed
// entry cannot be replayed under a different fingerprint — moving
// `<a>.res` over `<b>.res` is detected, not served. Get unseals and, on
// ANY failure (format, truncation, auth), degrades to a miss: the chain
// falls through, the result recomputes, and onAuthFail observes the event.
// Tampered or bit-rotted bytes are never returned to a caller.
//
// Entry layout: "BLS1" | 12-byte nonce | GCM ciphertext+tag.
type SealedTier struct {
	inner Tier
	aead  cipher.AEAD
	// onAuthFail, when set, observes each entry rejected at unseal time
	// (telemetry hook — store_auth_fail_total).
	onAuthFail func(key string, err error)
}

// NewSealedTier wraps inner with an AES-256-GCM seal keyed by key, which
// must be exactly SealKeySize bytes (see LoadOrCreateKey).
func NewSealedTier(inner Tier, key []byte) (*SealedTier, error) {
	if len(key) != SealKeySize {
		return nil, fmt.Errorf("store: seal key must be %d bytes, got %d", SealKeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &SealedTier{inner: inner, aead: aead}, nil
}

// Get unseals the inner tier's bytes. Any unseal failure is a miss, never
// an error and never garbage bytes.
func (t *SealedTier) Get(key string) ([]byte, bool) {
	sealed, ok := t.inner.Get(key)
	if !ok {
		return nil, false
	}
	plain, err := t.open(key, sealed)
	if err != nil {
		if t.onAuthFail != nil {
			t.onAuthFail(key, err)
		}
		// Drop the poisoned entry so the recompute's Put starts clean and
		// repeated Gets do not re-fail on the same bytes.
		_ = t.inner.Delete(key)
		return nil, false
	}
	return plain, true
}

// Put seals data under a fresh nonce and stores it in the inner tier.
func (t *SealedTier) Put(key string, data []byte) error {
	nonce := make([]byte, t.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	out := make([]byte, 0, len(sealMagic)+len(nonce)+len(data)+t.aead.Overhead())
	out = append(out, sealMagic...)
	out = append(out, nonce...)
	out = t.aead.Seal(out, nonce, data, []byte(key))
	return t.inner.Put(key, out)
}

// Delete removes key from the inner tier.
func (t *SealedTier) Delete(key string) error { return t.inner.Delete(key) }

// open authenticates and decrypts one sealed entry.
func (t *SealedTier) open(key string, sealed []byte) ([]byte, error) {
	if len(sealed) < len(sealMagic)+t.aead.NonceSize() || string(sealed[:len(sealMagic)]) != sealMagic {
		return nil, ErrSealFormat
	}
	nonce := sealed[len(sealMagic) : len(sealMagic)+t.aead.NonceSize()]
	plain, err := t.aead.Open(nil, nonce, sealed[len(sealMagic)+t.aead.NonceSize():], []byte(key))
	if err != nil {
		return nil, fmt.Errorf("store: sealed entry %s: %w", key, err)
	}
	return plain, nil
}

// LoadOrCreateKey returns the node secret stored at path (hex, one line),
// generating a fresh cryptographically random SealKeySize-byte key with
// 0600 permissions on first run. The parent directory is created if
// absent. A key file of the wrong length is an error, not a silent
// regenerate — regenerating would orphan every sealed entry on disk.
func LoadOrCreateKey(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		key, derr := hex.DecodeString(strings.TrimSpace(string(raw)))
		if derr != nil || len(key) != SealKeySize {
			return nil, fmt.Errorf("store: key file %s: want %d hex bytes", path, SealKeySize)
		}
		return key, nil
	case errors.Is(err, fs.ErrNotExist):
		key := make([]byte, SealKeySize)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return key, nil
	default:
		return nil, fmt.Errorf("store: %w", err)
	}
}
