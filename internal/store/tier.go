package store

import (
	"container/list"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Tier is one level of the content-addressed cache hierarchy. Keys are
// Fingerprint keys (hex SHA-256); values are canonical serialised results.
// Implementations must be safe for concurrent use and must return defensive
// copies from Get, so callers can never corrupt cached bytes. A miss is
// (nil, false); Delete of an absent key is a no-op.
//
// The hierarchy is composed with Chain, which makes fall-through and
// promotion a property of the composition rather than of any single tier —
// a remote tier (ROADMAP item 1) slots in as a third Tier without touching
// the server.
type Tier interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
	Delete(key string) error
}

// MemoryTier is an in-memory LRU Tier with a byte budget.
type MemoryTier struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	// onEvict, when set, observes each budget eviction (telemetry hook).
	onEvict func(key string)
}

// NewMemoryTier returns a memory tier with the given byte budget (<= 0:
// unbounded).
func NewMemoryTier(maxBytes int64) *MemoryTier {
	return &MemoryTier{
		max:   maxBytes,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

// Get returns a copy of the cached bytes and marks the entry recently used.
func (m *MemoryTier) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	return append([]byte(nil), el.Value.(*entry).data...), true
}

// Put stores a copy of data under key and trims least-recently-used entries
// to the byte budget. The entry just touched (front) is never evicted, so a
// single oversized result still serves its own request.
func (m *MemoryTier) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		e := el.Value.(*entry)
		m.size += int64(len(data)) - int64(len(e.data))
		e.data = append([]byte(nil), data...)
		m.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, data: append([]byte(nil), data...)}
		m.items[key] = m.ll.PushFront(e)
		m.size += int64(len(e.data))
	}
	if m.max <= 0 {
		return nil
	}
	for m.size > m.max && m.ll.Len() > 1 {
		back := m.ll.Back()
		e := back.Value.(*entry)
		m.ll.Remove(back)
		delete(m.items, e.key)
		m.size -= int64(len(e.data))
		if m.onEvict != nil {
			m.onEvict(e.key)
		}
	}
	return nil
}

// Delete removes key from the tier.
func (m *MemoryTier) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		e := el.Value.(*entry)
		m.ll.Remove(el)
		delete(m.items, key)
		m.size -= int64(len(e.data))
	}
	return nil
}

// Len returns the entry count.
func (m *MemoryTier) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Bytes returns the byte footprint.
func (m *MemoryTier) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size
}

// DiskTier is a Tier persisting one file per key under a root directory,
// written atomically (temp + fsync + rename) so a crash mid-write leaves
// either the old entry or the new one, never a torn file.
type DiskTier struct {
	dir string
	// onError, when set, observes read failures that are NOT a plain
	// absent-file miss — permission errors, corruption, a directory where a
	// file should be. The tier still reports a miss (the chain falls
	// through and the result recomputes), but silently eating real I/O
	// errors would hide a dying disk behind a shrinking hit rate.
	onError func(error)
	// readInterposer, when set, transforms the raw bytes of every
	// successful read before the caller sees them. It is the at-rest
	// corruption seam for deterministic chaos: the fault injector's
	// CorruptBytes plugs in here, UNDER any SealedTier wrapper, so
	// injected bit-rot exercises the authentication path exactly like
	// real media corruption would.
	readInterposer func([]byte) []byte
}

// NewDiskTier returns a disk tier rooted at dir, creating it if absent.
func NewDiskTier(dir string) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskTier{dir: dir}, nil
}

// SetReadInterposer installs f on the raw-read path (see readInterposer).
// Not safe to call once the tier is in concurrent use — wire at startup.
func (d *DiskTier) SetReadInterposer(f func([]byte) []byte) {
	d.readInterposer = f
}

// Get reads the bytes stored under key. An absent file is a clean miss;
// any other read error is surfaced to onError before missing.
func (d *DiskTier) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) && d.onError != nil {
			d.onError(err)
		}
		return nil, false
	}
	if d.readInterposer != nil {
		data = d.readInterposer(data)
	}
	return data, true
}

// Put writes data under key atomically.
func (d *DiskTier) Put(key string, data []byte) error {
	return writeAtomic(d.path(key), data)
}

// Delete removes key's file; an absent file is a no-op.
func (d *DiskTier) Delete(key string) error {
	if err := os.Remove(d.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Dir returns the tier's root directory.
func (d *DiskTier) Dir() string { return d.dir }

// path maps a key to its file. Keys are hex digests, so they are
// filesystem-safe by construction.
func (d *DiskTier) path(key string) string {
	return filepath.Join(d.dir, key+".res")
}

// Chain composes tiers into a fall-through hierarchy: Get consults tiers in
// order and promotes a hit into every faster tier it missed in; Put and
// Delete apply to all tiers. The zero-tier chain is valid and always misses.
type Chain struct {
	tiers []Tier
}

// NewChain composes the given tiers, fastest first.
func NewChain(tiers ...Tier) *Chain {
	return &Chain{tiers: tiers}
}

// Get returns the first tier's hit, promoting it into the tiers that missed.
// Promotion failures are ignored: the bytes in hand are already correct, and
// a tier that cannot absorb them simply misses again next time.
func (c *Chain) Get(key string) ([]byte, bool) {
	for i, tier := range c.tiers {
		if data, ok := tier.Get(key); ok {
			for j := 0; j < i; j++ {
				_ = c.tiers[j].Put(key, data)
			}
			return data, true
		}
	}
	return nil, false
}

// Put stores data in every tier, returning the first error after attempting
// all of them (a slow tier failing must not starve the fast ones).
func (c *Chain) Put(key string, data []byte) error {
	var first error
	for _, tier := range c.tiers {
		if err := tier.Put(key, data); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Delete removes key from every tier, returning the first error after
// attempting all of them.
func (c *Chain) Delete(key string) error {
	var first error
	for _, tier := range c.tiers {
		if err := tier.Delete(key); err != nil && first == nil {
			first = err
		}
	}
	return first
}
