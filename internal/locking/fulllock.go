package locking

import (
	"fmt"
	"math"
	"time"
)

// This file models the exponential SAT-iteration-runtime locking family
// (Full-Lock [7] and relatives) at the architectural level: key sizing of the
// keyed logarithmic routing network, its area/power overhead, and the growth
// of per-iteration SAT attack time. A gate-level keyed permutation network is
// available in internal/netlist; this analytic model is what the Sec. V-C
// design methodology optimises over.
//
// Calibration. The paper's data point (Sec. V-C): "a 384-bit Full-Lock scheme
// implemented in the b14 netlist of the ISCAS'85 suite incurred a 192%
// increase in power and 61% increase in area, while requiring < 10 minutes to
// unlock with a SAT attack." b14 is roughly 10k gates; the constants below
// reproduce (61%, 192%, ~6 min) at (384 bits, 10k gates).

// B14Gates is the approximate gate count of the b14 benchmark used for
// calibration.
const B14Gates = 10000

const (
	// areaGatesPerKeyBit is the added gate-equivalents per routing key bit
	// (switch MUX pair plus configurable-logic overhead).
	areaGatesPerKeyBit = 16.0
	// powerGatesPerKeyBit is the switching-weighted equivalent: routing
	// networks toggle on every cycle, so their dynamic-power contribution
	// per gate far exceeds the average logic gate's.
	powerGatesPerKeyBit = 50.0
	// satIterBase is the baseline time of the first SAT iteration.
	satIterBase = 10 * time.Millisecond
	// satGrowthScale sets how fast per-iteration time compounds with key
	// width: growth factor g = 1 + keyBits/satGrowthScale.
	satGrowthScale = 1024.0
	// satGrowthHorizon caps the compounding: per-iteration time grows for
	// the first satGrowthHorizon iterations and then saturates. Full-Lock's
	// hardness is a per-iteration property observed over tens of DIPs;
	// extrapolating unbounded exponential growth to the tens of thousands
	// of iterations SFLL induces would be unphysical.
	satGrowthHorizon = 48
	// DefaultFullLockIterations is the typical number of DIP iterations a
	// SAT attack needs against a routing network before the key space
	// collapses; Full-Lock's hardness is per-iteration time, not count.
	DefaultFullLockIterations = 30
)

// BenesKeyBits returns the key length of a Benes routing network over n
// wires (n a power of two): (2*log2(n) - 1) stages of n/2 keyed 2x2 switches.
func BenesKeyBits(wires int) (int, error) {
	if wires < 2 || wires&(wires-1) != 0 {
		return 0, fmt.Errorf("locking: benes network needs a power-of-two wire count, got %d", wires)
	}
	lg := 0
	for 1<<lg < wires {
		lg++
	}
	stages := 2*lg - 1
	return stages * wires / 2, nil
}

// FullLockOverhead estimates the area and power overhead (as fractions, 0.61
// = +61%) of inserting a Full-Lock-style network with the given key length
// into a design of baseGates gates.
func FullLockOverhead(keyBits, baseGates int) (areaFrac, powerFrac float64, err error) {
	if keyBits <= 0 || baseGates <= 0 {
		return 0, 0, fmt.Errorf("locking: invalid overhead query (keyBits=%d, baseGates=%d)", keyBits, baseGates)
	}
	areaFrac = float64(keyBits) * areaGatesPerKeyBit / float64(baseGates)
	powerFrac = float64(keyBits) * powerGatesPerKeyBit / float64(baseGates)
	return areaFrac, powerFrac, nil
}

// SATIterationTime returns the modelled wall time of the i-th (1-based) SAT
// attack iteration against a design carrying a Full-Lock network of the given
// key length: t_i = t0 * g^min(i-1, horizon) with g = 1 + keyBits /
// satGrowthScale. The growth saturates after satGrowthHorizon iterations.
// With keyBits = 0 every iteration costs t0 (no routing network present).
func SATIterationTime(keyBits, i int) time.Duration {
	if i < 1 {
		return 0
	}
	exp := float64(i - 1)
	if exp > satGrowthHorizon {
		exp = satGrowthHorizon
	}
	g := 1 + float64(keyBits)/satGrowthScale
	t := float64(satIterBase) * math.Pow(g, exp)
	if t > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(t)
}

// SATAttackTime returns the total modelled SAT attack time over iters
// iterations: the sum of SATIterationTime — a geometric series up to the
// growth horizon, then linear at the saturated per-iteration time.
func SATAttackTime(keyBits, iters int) time.Duration {
	if iters <= 0 {
		return 0
	}
	g := 1 + float64(keyBits)/satGrowthScale
	var total float64
	switch {
	case keyBits == 0:
		total = float64(satIterBase) * float64(iters)
	case iters <= satGrowthHorizon+1:
		total = float64(satIterBase) * (math.Pow(g, float64(iters)) - 1) / (g - 1)
	default:
		head := float64(satIterBase) * (math.Pow(g, satGrowthHorizon+1) - 1) / (g - 1)
		tail := float64(satIterBase) * math.Pow(g, satGrowthHorizon) * float64(iters-satGrowthHorizon-1)
		total = head + tail
	}
	if total > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(total)
}

// MinFullLockKeyBits returns the smallest Full-Lock key length whose modelled
// attack time over `iters` iterations meets or exceeds target. This is the
// sizing step of the Sec. V-C methodology: minterm locking (with binding
// co-design) supplies the iteration count λ; the routing network is then
// grown only as far as needed, keeping its heavy overhead minimal. Returns an
// error if even maxKeyBits cannot meet the target.
func MinFullLockKeyBits(iters int, target time.Duration, maxKeyBits int) (int, error) {
	if iters < 1 {
		return 0, fmt.Errorf("locking: need at least one SAT iteration, got %d", iters)
	}
	if SATAttackTime(0, iters) >= target {
		return 0, nil // plain minterm locking already suffices
	}
	lo, hi := 1, maxKeyBits
	if SATAttackTime(hi, iters) < target {
		return 0, fmt.Errorf("locking: target %v unreachable within %d key bits at %d iterations",
			target, maxKeyBits, iters)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if SATAttackTime(mid, iters) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
