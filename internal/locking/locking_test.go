package locking

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
)

func TestNewConfig(t *testing.T) {
	ms := [][]dfg.Minterm{{dfg.MkMinterm(1, 2)}, {dfg.MkMinterm(3, 4), dfg.MkMinterm(5, 6)}}
	cfg, err := NewConfig(dfg.ClassAdd, 3, 2, SFLLRem, ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.LockedFUs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("LockedFUs = %v", got)
	}
	if cfg.TotalLockedMinterms() != 3 {
		t.Errorf("TotalLockedMinterms = %d, want 3", cfg.TotalLockedMinterms())
	}
	if l := cfg.LockOf(1); l == nil || len(l.Minterms) != 2 {
		t.Errorf("LockOf(1) = %+v", l)
	}
	if cfg.LockOf(2) != nil {
		t.Error("FU 2 must be unlocked")
	}
}

func TestNewConfigErrors(t *testing.T) {
	if _, err := NewConfig(dfg.ClassAdd, 2, 3, SFLLRem, nil); err == nil {
		t.Error("locked > allocated must error")
	}
	if _, err := NewConfig(dfg.ClassAdd, 3, 1, FullLock, nil); err == nil {
		t.Error("non-critical-minterm scheme must error")
	}
	if _, err := NewConfig(dfg.ClassAdd, 3, 2, SFLLRem, [][]dfg.Minterm{{}}); err == nil {
		t.Error("minterm set arity mismatch must error")
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mut func(*Config)) error {
		cfg, err := NewConfig(dfg.ClassAdd, 3, 2, SFLLRem, nil)
		if err != nil {
			t.Fatal(err)
		}
		mut(cfg)
		return cfg.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"fu out of range", func(c *Config) { c.Locks[0].FU = 9 }, "outside allocation"},
		{"fu locked twice", func(c *Config) { c.Locks[1].FU = 0 }, "locked twice"},
		{"bad key length", func(c *Config) { c.Locks[0].KeyBits = 0 }, "key length"},
		{"duplicate minterm", func(c *Config) {
			c.Locks[0].Minterms = []dfg.Minterm{dfg.MkMinterm(1, 1), dfg.MkMinterm(1, 1)}
		}, "twice"},
		{"zero allocation", func(c *Config) { c.NumFUs = 0 }, "non-positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.mut)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg, _ := NewConfig(dfg.ClassAdd, 2, 1, SFLLRem, [][]dfg.Minterm{{dfg.MkMinterm(1, 2)}})
	cp := cfg.Clone()
	cp.Locks[0].Minterms[0] = dfg.MkMinterm(9, 9)
	if cfg.Locks[0].Minterms[0] != dfg.MkMinterm(1, 2) {
		t.Fatal("Clone shares minterm storage")
	}
}

func TestApplyCorruption(t *testing.T) {
	l := FULock{FU: 0, Scheme: SFLLRem, KeyBits: 16,
		Minterms: []dfg.Minterm{dfg.CanonMinterm(dfg.Add, 10, 20)}}
	// Correct key: transparent everywhere.
	if got := l.Apply(dfg.Add, 10, 20, false); got != 30 {
		t.Errorf("correct key corrupted output: %d", got)
	}
	// Wrong key on protected minterm (either operand order): corrupted.
	if got := l.Apply(dfg.Add, 10, 20, true); got == 30 {
		t.Error("wrong key must corrupt protected minterm")
	}
	if got := l.Apply(dfg.Add, 20, 10, true); got == 30 {
		t.Error("canonicalisation must catch swapped operands")
	}
	// Wrong key off the protected set: transparent.
	if got := l.Apply(dfg.Add, 10, 21, true); got != 31 {
		t.Errorf("wrong key corrupted unprotected minterm: %d", got)
	}
}

func TestSchemeProperties(t *testing.T) {
	for _, s := range []Scheme{SFLLRem, SFLLHD, StrongAntiSAT} {
		if !s.CriticalMinterm() {
			t.Errorf("%v must be critical-minterm", s)
		}
	}
	if FullLock.CriticalMinterm() {
		t.Error("full-lock is not critical-minterm")
	}
	for _, s := range []Scheme{SFLLRem, SFLLHD, StrongAntiSAT, FullLock} {
		if s.String() == "" || strings.HasPrefix(s.String(), "scheme(") {
			t.Errorf("missing name for scheme %d", s)
		}
	}
}

func TestExpectedSATIterationsSFLLPoint(t *testing.T) {
	// SFLL-style lock: 16-bit key, 1 correct key, one locked input out of
	// 2^16. λ must be on the order of the key space (the provable-security
	// point of SFLL).
	lam, err := ExpectedSATIterations(16, 1, EpsilonFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if lam < 1<<15 || lam > 1<<18 {
		t.Fatalf("λ = %v, want within [2^15, 2^18]", lam)
	}
}

func TestExpectedSATIterationsInverseTradeoff(t *testing.T) {
	// The central trade-off: for fixed key length, more locked inputs
	// (higher ε) means strictly fewer expected SAT iterations.
	prev := math.Inf(1)
	for _, locked := range []int{1, 2, 4, 16, 256, 4096} {
		lam, err := ExpectedSATIterations(16, 1, EpsilonFor(locked))
		if err != nil {
			t.Fatal(err)
		}
		if lam > prev {
			t.Fatalf("λ(%d locked) = %v exceeds λ for fewer locked inputs (%v)", locked, lam, prev)
		}
		prev = lam
	}
	if prev > 200 {
		t.Errorf("λ(4096 locked) = %v, expected collapse to ~ln(εN)/ε ≈ 130", prev)
	}
}

func TestExpectedSATIterationsKeyLengthGrowth(t *testing.T) {
	eps := EpsilonFor(4)
	l8, err := ExpectedSATIterations(8, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	l16, err := ExpectedSATIterations(16, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	if l16 <= l8 {
		t.Fatalf("λ must grow with key length: λ8=%v λ16=%v", l8, l16)
	}
}

func TestExpectedSATIterationsDomainErrors(t *testing.T) {
	if _, err := ExpectedSATIterations(0, 1, 0.1); err == nil {
		t.Error("keyBits=0 must error")
	}
	if _, err := ExpectedSATIterations(16, 0, 0.1); err == nil {
		t.Error("correctKeys=0 must error")
	}
	if _, err := ExpectedSATIterations(16, 1, 0); err == nil {
		t.Error("epsilon=0 must error")
	}
	if _, err := ExpectedSATIterations(16, 1, 1); err == nil {
		t.Error("epsilon=1 must error")
	}
	if _, err := ExpectedSATIterations(2000, 1, 0.1); err == nil {
		t.Error("absurd key length must error")
	}
}

func TestExpectedSATIterationsTinyKeySpace(t *testing.T) {
	// 1-bit key with one correct key: a single wrong key, one iteration.
	lam, err := ExpectedSATIterations(1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lam != 1 {
		t.Fatalf("λ = %v, want 1", lam)
	}
}

// Property: λ is finite, ≥1, and monotone non-increasing in ε across the
// whole valid domain.
func TestLambdaMonotoneQuick(t *testing.T) {
	f := func(rawKey uint8, rawL1, rawL2 uint16) bool {
		keyBits := 4 + int(rawKey)%16 // 4..19
		l1 := 1 + int(rawL1)%2000
		l2 := 1 + int(rawL2)%2000
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		a, err1 := ExpectedSATIterations(keyBits, 1, EpsilonFor(l1))
		b, err2 := ExpectedSATIterations(keyBits, 1, EpsilonFor(l2))
		if err1 != nil || err2 != nil {
			return false
		}
		if math.IsNaN(a) || math.IsNaN(b) || a < 1 || b < 1 {
			return false
		}
		return a >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestModuleAndConfigResilience(t *testing.T) {
	strong := FULock{FU: 0, Scheme: SFLLRem, KeyBits: 16, Minterms: []dfg.Minterm{1}}
	weak := FULock{FU: 1, Scheme: SFLLRem, KeyBits: 16,
		Minterms: make([]dfg.Minterm, 512)}
	for i := range weak.Minterms {
		weak.Minterms[i] = dfg.Minterm(i)
	}
	ls, err := ModuleResilience(strong)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := ModuleResilience(weak)
	if err != nil {
		t.Fatal(err)
	}
	if ls <= lw {
		t.Fatalf("resilience: strong=%v weak=%v", ls, lw)
	}
	cfg := &Config{Class: dfg.ClassAdd, NumFUs: 2, Locks: []FULock{strong, weak}}
	lc, err := ConfigResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lc != lw {
		t.Fatalf("config resilience %v, want weakest module %v", lc, lw)
	}
	// Zero minterms: infinite (never I/O-distinguishable).
	inf, err := ModuleResilience(FULock{FU: 0, KeyBits: 16})
	if err != nil || !math.IsInf(inf, 1) {
		t.Fatalf("empty lock resilience = %v, %v", inf, err)
	}
}

func TestBenesKeyBits(t *testing.T) {
	cases := []struct{ wires, want int }{
		{2, 1},    // 1 stage x 1 switch
		{4, 6},    // 3 stages x 2
		{8, 20},   // 5 stages x 4
		{16, 56},  // 7 stages x 8
		{64, 352}, // 11 stages x 32
	}
	for _, tc := range cases {
		got, err := BenesKeyBits(tc.wires)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("BenesKeyBits(%d) = %d, want %d", tc.wires, got, tc.want)
		}
	}
	if _, err := BenesKeyBits(12); err == nil {
		t.Error("non-power-of-two must error")
	}
	if _, err := BenesKeyBits(1); err == nil {
		t.Error("single wire must error")
	}
}

func TestFullLockCalibrationPoint(t *testing.T) {
	// Sec. V-C: 384-bit Full-Lock in b14: +61% area, +192% power, < 10 min
	// to unlock.
	area, power, err := FullLockOverhead(384, B14Gates)
	if err != nil {
		t.Fatal(err)
	}
	if area < 0.55 || area > 0.68 {
		t.Errorf("area overhead = %.2f, want ~0.61", area)
	}
	if power < 1.75 || power > 2.10 {
		t.Errorf("power overhead = %.2f, want ~1.92", power)
	}
	attack := SATAttackTime(384, DefaultFullLockIterations)
	if attack.Minutes() >= 10 {
		t.Errorf("modelled attack time %v, want < 10 min", attack)
	}
	if attack.Minutes() < 0.5 {
		t.Errorf("modelled attack time %v implausibly fast", attack)
	}
}

func TestSATTimeGrowth(t *testing.T) {
	if SATIterationTime(384, 2) <= SATIterationTime(384, 1) {
		t.Error("per-iteration time must grow")
	}
	if SATIterationTime(0, 5) != SATIterationTime(0, 1) {
		t.Error("keyBits=0 must be flat")
	}
	if SATIterationTime(384, 0) != 0 {
		t.Error("iteration 0 must cost nothing")
	}
	if SATAttackTime(384, 0) != 0 {
		t.Error("zero iterations must cost nothing")
	}
	// Totals are monotone in both arguments.
	if SATAttackTime(384, 10) <= SATAttackTime(384, 5) {
		t.Error("attack time must grow with iterations")
	}
	if SATAttackTime(512, 10) <= SATAttackTime(128, 10) {
		t.Error("attack time must grow with key bits")
	}
	// Saturation instead of overflow.
	if SATAttackTime(1<<20, 1000) <= 0 {
		t.Error("huge instances must saturate, not overflow")
	}
}

func TestMinFullLockKeyBits(t *testing.T) {
	// With many iterations from minterm locking, no routing network needed
	// for a modest target.
	k, err := MinFullLockKeyBits(100000, 500*1000*1000*1000, 4096) // 500 s
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("keyBits = %d, want 0 (minterm locking alone suffices)", k)
	}
	// With few iterations, a network is needed; result must be minimal.
	k, err = MinFullLockKeyBits(30, 300*1000*1000*1000, 4096) // 300 s over 30 iters
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 {
		t.Fatalf("keyBits = %d, want positive", k)
	}
	if SATAttackTime(k, 30) < 300*1000*1000*1000 {
		t.Error("result does not meet target")
	}
	if k > 1 && SATAttackTime(k-1, 30) >= 300*1000*1000*1000 {
		t.Error("result not minimal")
	}
	// Unreachable target.
	if _, err := MinFullLockKeyBits(1, 1<<62, 8); err == nil {
		t.Error("unreachable target must error")
	}
	if _, err := MinFullLockKeyBits(0, 1000, 8); err == nil {
		t.Error("zero iterations must error")
	}
}

func TestFullLockOverheadErrors(t *testing.T) {
	if _, _, err := FullLockOverhead(0, 100); err == nil {
		t.Error("zero key bits must error")
	}
	if _, _, err := FullLockOverhead(10, 0); err == nil {
		t.Error("zero base gates must error")
	}
}
