// Package locking models the logic-locking configurations that the binding
// algorithms optimise for, together with the SAT-resilience analytics of
// Sec. II-A.
//
// Two locking families from the paper are covered:
//
//   - Critical-minterm locking (SFLL [3-5], Strong Anti-SAT [6]): the
//     designer selects specific input minterms of a module; for (a large
//     subset of) wrong keys exactly those minterms produce errant output.
//     The paper's algorithms assume this family ("we also assume that
//     critical minterm locking schemes, such as SFLL-rem, have been used so
//     that locked inputs are static between wrong keys", Sec. IV).
//
//   - Exponential SAT-iteration-runtime locking (Full-Lock [7], LoPher [8],
//     Cross-Lock [9]): keyed routing/cipher structures that make each
//     successive SAT iteration drastically slower, at high area/power
//     overhead (Sec. V-C).
//
// Gate-level realisations of both live in internal/netlist; this package is
// the architectural view consumed by binding and co-design.
package locking

import (
	"fmt"
	"sort"

	"bindlock/internal/dfg"
)

// Scheme identifies a locking technique.
type Scheme uint8

// Supported schemes.
const (
	// SFLLRem is stripped-functionality locking with removal-based
	// stripping (SFLL-rem [5]): critical-minterm family.
	SFLLRem Scheme = iota
	// SFLLHD is SFLL with Hamming-distance-h restore (here h=0: exactly
	// the protected cubes corrupt): critical-minterm family.
	SFLLHD
	// StrongAntiSAT is the Strong Anti-SAT construction [6]:
	// critical-minterm family.
	StrongAntiSAT
	// FullLock is a keyed logarithmic (Benes) routing network [7]:
	// exponential SAT-iteration-runtime family.
	FullLock
	// Cyclic is SRCLock-style feedback obfuscation: key-programmed MUXes
	// introduce combinational cycles, and only acyclic-selecting keys
	// reproduce the original function. Wrong keys latch or oscillate, so
	// the plain acyclic-miter SAT attack diverges; breaking it requires
	// CycSAT-style structural key constraints. Gate-level realisation:
	// netlist.LockCyclic.
	Cyclic
)

func (s Scheme) String() string {
	switch s {
	case SFLLRem:
		return "sfll-rem"
	case SFLLHD:
		return "sfll-hd"
	case StrongAntiSAT:
		return "strong-anti-sat"
	case FullLock:
		return "full-lock"
	case Cyclic:
		return "cyclic"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// CriticalMinterm reports whether the scheme lets the designer pin the
// corrupted minterms (static across wrong keys). Only such schemes are valid
// inputs to the binding algorithms of Sec. IV/V.
func (s Scheme) CriticalMinterm() bool {
	switch s {
	case SFLLRem, SFLLHD, StrongAntiSAT:
		return true
	}
	return false
}

// FULock is the locking specification of one functional unit: which FU of
// the class allocation is locked, with which scheme, protecting which input
// minterms (M_l in the paper).
type FULock struct {
	FU       int
	Scheme   Scheme
	Minterms []dfg.Minterm
	// KeyBits is the locking key length |k| of this module. For SFLL-style
	// schemes over our 16-bit module input space the natural key length is
	// 16 (the restore pattern width); constructors default it.
	KeyBits int
}

// Clone returns a deep copy.
func (f FULock) Clone() FULock {
	f.Minterms = append([]dfg.Minterm(nil), f.Minterms...)
	return f
}

// MintermSet returns M_l as a set.
func (f FULock) MintermSet() map[dfg.Minterm]bool {
	set := make(map[dfg.Minterm]bool, len(f.Minterms))
	for _, m := range f.Minterms {
		set[m] = true
	}
	return set
}

// Config is a complete locking configuration for one FU class of a design:
// the allocation size R and the locked subset L with their minterm sets.
type Config struct {
	Class  dfg.Class
	NumFUs int
	Locks  []FULock
}

// DefaultKeyBits is the key length of an SFLL-style lock over the 16-bit
// module input space of a 2-input 8-bit FU.
const DefaultKeyBits = 16

// NewConfig builds a critical-minterm locking configuration locking
// lockedFUs FUs (indices 0..lockedFUs-1) out of numFUs, each protecting the
// given minterm set. Minterm identity can be filled in later (co-design) by
// leaving minterms nil.
func NewConfig(class dfg.Class, numFUs, lockedFUs int, scheme Scheme, minterms [][]dfg.Minterm) (*Config, error) {
	if lockedFUs > numFUs {
		return nil, fmt.Errorf("locking: %d locked FUs exceeds allocation %d", lockedFUs, numFUs)
	}
	if !scheme.CriticalMinterm() {
		return nil, fmt.Errorf("locking: scheme %v does not support designer-chosen minterms", scheme)
	}
	cfg := &Config{Class: class, NumFUs: numFUs}
	for i := 0; i < lockedFUs; i++ {
		var ms []dfg.Minterm
		if minterms != nil {
			if len(minterms) != lockedFUs {
				return nil, fmt.Errorf("locking: got %d minterm sets for %d locked FUs", len(minterms), lockedFUs)
			}
			ms = append([]dfg.Minterm(nil), minterms[i]...)
		}
		cfg.Locks = append(cfg.Locks, FULock{FU: i, Scheme: scheme, Minterms: ms, KeyBits: DefaultKeyBits})
	}
	return cfg, nil
}

// Validate checks structural sanity: FU indices in range and unique, minterm
// sets duplicate-free, key lengths positive.
func (c *Config) Validate() error {
	if c.NumFUs <= 0 {
		return fmt.Errorf("locking: non-positive FU allocation %d", c.NumFUs)
	}
	seen := map[int]bool{}
	for _, l := range c.Locks {
		if l.FU < 0 || l.FU >= c.NumFUs {
			return fmt.Errorf("locking: locked FU %d outside allocation of %d", l.FU, c.NumFUs)
		}
		if seen[l.FU] {
			return fmt.Errorf("locking: FU %d locked twice", l.FU)
		}
		seen[l.FU] = true
		if l.KeyBits <= 0 {
			return fmt.Errorf("locking: FU %d has key length %d", l.FU, l.KeyBits)
		}
		mseen := map[dfg.Minterm]bool{}
		for _, m := range l.Minterms {
			if mseen[m] {
				return fmt.Errorf("locking: FU %d locks minterm %v twice", l.FU, m)
			}
			mseen[m] = true
		}
	}
	return nil
}

// LockOf returns the lock on FU fu, or nil if that FU is unlocked.
func (c *Config) LockOf(fu int) *FULock {
	for i := range c.Locks {
		if c.Locks[i].FU == fu {
			return &c.Locks[i]
		}
	}
	return nil
}

// LockedFUs returns the sorted indices of locked FUs.
func (c *Config) LockedFUs() []int {
	ids := make([]int, 0, len(c.Locks))
	for _, l := range c.Locks {
		ids = append(ids, l.FU)
	}
	sort.Ints(ids)
	return ids
}

// TotalLockedMinterms sums |M_l| over all locked FUs.
func (c *Config) TotalLockedMinterms() int {
	n := 0
	for _, l := range c.Locks {
		n += len(l.Minterms)
	}
	return n
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	nc := &Config{Class: c.Class, NumFUs: c.NumFUs, Locks: make([]FULock, len(c.Locks))}
	for i, l := range c.Locks {
		nc.Locks[i] = l.Clone()
	}
	return nc
}

// CorruptionMask is the output perturbation a locked FU applies to a
// protected minterm under a wrong key. SFLL XORs the restore-failure signal
// into output bits; flipping the LSB is the canonical h=0 behaviour.
const CorruptionMask uint8 = 0x01

// Apply evaluates kind k on operands (a, b) through the FU locked by l.
// When wrongKey is true and the applied minterm is protected, the output is
// corrupted; otherwise the FU behaves transparently. This is the behavioural
// model of the gate-level construction in internal/netlist.
func (l *FULock) Apply(k dfg.Kind, a, b uint8, wrongKey bool) uint8 {
	out := dfg.EvalKind(k, a, b)
	if !wrongKey {
		return out
	}
	m := dfg.CanonMinterm(k, a, b)
	for _, lm := range l.Minterms {
		if lm == m {
			return out ^ CorruptionMask
		}
	}
	return out
}
