package locking

import (
	"fmt"
	"math"

	"bindlock/internal/dfg"
)

// ExpectedSATIterations implements Eqn. 1 of the paper:
//
//	λ = ⌈ log( (2^|k| − c − ε(2^|k| − c)) / (ε(2^|k| − c)(2^|k| − c − 1)) )
//	    / log( (2^|k| − c − ε(2^|k| − c)) / (2^|k| − c − 1) ) ⌉
//
// where |k| is the key length in bits, c the number of correct keys, and ε
// the ratio of locked inputs to total inputs of the module. It returns the
// expected number of SAT-attack iterations to unlock the module.
//
// Writing N = 2^|k| − c (the wrong-key count), the expression simplifies to
// log((1−ε)/(ε(N−1))) / log(N(1−ε)/(N−1)); we evaluate that form for
// numerical stability at large key lengths.
func ExpectedSATIterations(keyBits int, correctKeys int, epsilon float64) (float64, error) {
	if keyBits <= 0 || keyBits > 1023 {
		return 0, fmt.Errorf("locking: key length %d out of range", keyBits)
	}
	if correctKeys < 1 {
		return 0, fmt.Errorf("locking: need at least one correct key, got %d", correctKeys)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("locking: epsilon %v outside (0, 1)", epsilon)
	}
	n := math.Pow(2, float64(keyBits)) - float64(correctKeys)
	if n < 2 {
		return 1, nil // one or fewer wrong keys: a single iteration settles it
	}
	// num = ln((1-ε)/(ε(N-1))), den = ln(N(1-ε)/(N-1)), evaluated in
	// log-sum form for stability at large N. Both terms change sign
	// together at ε = 1/N (their ratio stays positive); at exactly ε = 1/N
	// the 0/0 limit is N (L'Hopital on ε).
	num := math.Log1p(-epsilon) - math.Log(epsilon) - math.Log(n-1)
	den := math.Log(n) + math.Log1p(-epsilon) - math.Log(n-1)
	if den == 0 {
		return math.Ceil(n), nil
	}
	lambda := math.Ceil(num / den)
	if lambda < 1 {
		lambda = 1
	}
	return lambda, nil
}

// EpsilonFor returns ε for a module locking `locked` of the FU's input
// minterm space.
func EpsilonFor(lockedMinterms int) float64 {
	return float64(lockedMinterms) / float64(dfg.MintermSpace)
}

// ModuleResilience returns Eqn. 1's λ for one locked FU, using its key
// length, a single correct key, and ε derived from its minterm count. FUs
// locking zero minterms have no error injection and, per the SAT attack's
// termination condition, fall to the attacker only after the full key sweep;
// we report +Inf to flag "never distinguishable by I/O".
func ModuleResilience(l FULock) (float64, error) {
	if len(l.Minterms) == 0 {
		return math.Inf(1), nil
	}
	return ExpectedSATIterations(l.KeyBits, 1, EpsilonFor(len(l.Minterms)))
}

// ConfigResilience returns the minimum λ over all locked modules of a
// configuration: the SAT attack model has scan access, so each module is
// attacked independently and the weakest module bounds the design
// ("SAT resilience is calculated separately for each locked module",
// Sec. II-A).
func ConfigResilience(c *Config) (float64, error) {
	min := math.Inf(1)
	for _, l := range c.Locks {
		lam, err := ModuleResilience(l)
		if err != nil {
			return 0, err
		}
		if lam < min {
			min = lam
		}
	}
	return min, nil
}
