package dfg

import "fmt"

// Minterm is a 2-operand input minterm of a functional unit: the concatenated
// 8-bit operand pair (a<<8)|b. The module input space of a locked FU is
// therefore 2^16 minterms, matching the per-module view under which SAT
// resilience is computed (Sec. II-A: the attack model assumes scan access, so
// each locked module is attacked in isolation over its own input space).
//
// For commutative kinds the pair is canonicalised with a <= b so the minterm
// "x applied to the FU" is well defined regardless of operand order.
type Minterm uint32

// MkMinterm packs operands (a, b) without canonicalisation.
func MkMinterm(a, b uint8) Minterm {
	return Minterm(uint32(a)<<8 | uint32(b))
}

// CanonMinterm packs operands applying canonicalisation for commutative
// kinds.
func CanonMinterm(k Kind, a, b uint8) Minterm {
	if k.Commutative() && a > b {
		a, b = b, a
	}
	return MkMinterm(a, b)
}

// A returns the first operand.
func (m Minterm) A() uint8 { return uint8(m >> 8) }

// B returns the second operand.
func (m Minterm) B() uint8 { return uint8(m) }

func (m Minterm) String() string {
	return fmt.Sprintf("(%d,%d)", m.A(), m.B())
}

// MintermSpace is the number of distinct operand pairs of a 2-input 8-bit FU.
const MintermSpace = 1 << 16

// Eval applies kind k to minterm m's operands.
func (m Minterm) Eval(k Kind) uint8 {
	return EvalKind(k, m.A(), m.B())
}

// EvalKind executes one binary operation. It panics on non-binary kinds.
func EvalKind(k Kind, a, b uint8) uint8 {
	switch k {
	case Add:
		return a + b
	case Sub:
		return a - b
	case AbsDiff:
		if a >= b {
			return a - b
		}
		return b - a
	case Mul:
		return a * b
	}
	panic(fmt.Sprintf("dfg: EvalKind(%v) is not a binary kind", k))
}
