package dfg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Scheduled FU operations are
// grouped into same-rank clusters per cycle so the schedule reads top to
// bottom, mirroring the paper's Fig. 1/2 drawings.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	byCycle := map[int][]OpID{}
	for _, op := range g.Ops {
		label := ""
		shape := "ellipse"
		switch op.Kind {
		case Input:
			label = op.Name
			shape = "invtriangle"
		case Const:
			label = fmt.Sprintf("#%d", op.Val)
			shape = "box"
		case Output:
			label = op.Name
			shape = "triangle"
		default:
			label = fmt.Sprintf("%s@%d", op.Kind, op.Cycle)
			byCycle[op.Cycle] = append(byCycle[op.Cycle], op.ID)
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", op.ID, label, shape)
	}
	for _, op := range g.Ops {
		for _, a := range op.Args {
			if a != None {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", a, op.ID)
			}
		}
	}
	for t := 1; t <= g.Cycles(); t++ {
		ids := byCycle[t]
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  { rank=same;")
		for _, id := range ids {
			fmt.Fprintf(&b, " n%d;", id)
		}
		fmt.Fprintf(&b, " }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
