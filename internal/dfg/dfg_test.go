package dfg

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond constructs the 4-op diamond of the paper's Fig. 1A:
// two cycle-1 adds feeding two cycle-2 adds.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New("fig1")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	d := g.AddInput("d")
	e := g.AddInput("e")
	f := g.AddInput("f")
	opA := g.AddBinary(Add, a, b)
	opB := g.AddBinary(Add, d, e)
	opC := g.AddBinary(Add, opA, c)
	opD := g.AddBinary(Add, opB, f)
	g.AddOutput("y1", opC)
	g.AddOutput("y2", opD)
	g.Ops[opA].Cycle = 1
	g.Ops[opB].Cycle = 1
	g.Ops[opC].Cycle = 2
	g.Ops[opD].Cycle = 2
	return g
}

func TestValidateDiamond(t *testing.T) {
	g := buildDiamond(t)
	if err := g.Validate(true); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.Cycles(); got != 2 {
		t.Errorf("Cycles() = %d, want 2", got)
	}
	if got := g.MaxConcurrency(ClassAdd); got != 2 {
		t.Errorf("MaxConcurrency(add) = %d, want 2", got)
	}
	if got := len(g.OpsOfClass(ClassAdd)); got != 4 {
		t.Errorf("len(OpsOfClass(add)) = %d, want 4", got)
	}
	if got := len(g.OpsOfClass(ClassMul)); got != 0 {
		t.Errorf("len(OpsOfClass(mul)) = %d, want 0", got)
	}
	st := g.Stat()
	if st.Adds != 4 || st.Muls != 0 || st.Inputs != 6 || st.Outputs != 2 || st.Cycles != 2 {
		t.Errorf("Stat() = %+v", st)
	}
}

func TestAtCycle(t *testing.T) {
	g := buildDiamond(t)
	n1 := g.AtCycle(ClassAdd, 1)
	n2 := g.AtCycle(ClassAdd, 2)
	if len(n1) != 2 || len(n2) != 2 {
		t.Fatalf("AtCycle sizes = %d, %d, want 2, 2", len(n1), len(n2))
	}
	if n1[0] >= n1[1] {
		t.Errorf("AtCycle must return IDs in order, got %v", n1)
	}
	if got := g.SortedCycleList(ClassAdd); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("SortedCycleList = %v, want [1 2]", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		sched bool
		want  string
	}{
		{
			name: "unscheduled binary op",
			build: func() *Graph {
				g := New("t")
				a := g.AddInput("a")
				g.AddBinary(Add, a, a)
				return g
			},
			sched: true,
			want:  "unscheduled",
		},
		{
			name: "dependency violation",
			build: func() *Graph {
				g := New("t")
				a := g.AddInput("a")
				x := g.AddBinary(Add, a, a)
				y := g.AddBinary(Add, x, a)
				g.Ops[x].Cycle = 2
				g.Ops[y].Cycle = 1
				return g
			},
			sched: true,
			want:  "depends on",
		},
		{
			name: "duplicate input name",
			build: func() *Graph {
				g := New("t")
				g.AddInput("a")
				g.AddInput("a")
				return g
			},
			want: "duplicate input",
		},
		{
			name: "duplicate output name",
			build: func() *Graph {
				g := New("t")
				a := g.AddInput("a")
				g.AddOutput("y", a)
				g.AddOutput("y", a)
				return g
			},
			want: "duplicate output",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate(tc.sched)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestAddBinaryRecordsError: builder misuse must surface as a sticky typed
// error rather than a crash — malformed frontends get a diagnostic, servers
// embedding the compiler stay up.
func TestAddBinaryRecordsError(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	if id := g.AddBinary(Input, a, a); id != None {
		t.Errorf("AddBinary(Input, ...) = %d, want None", id)
	}
	if !errors.Is(g.Err(), ErrConstruction) {
		t.Fatalf("Err() = %v, want ErrConstruction", g.Err())
	}
	if !errors.Is(g.Validate(false), ErrConstruction) {
		t.Errorf("Validate = %v, want ErrConstruction", g.Validate(false))
	}
	// Poisoned builder: later (even well-formed) calls are no-ops.
	if id := g.AddBinary(Add, a, a); id != None {
		t.Errorf("post-error AddBinary = %d, want None", id)
	}
	if n := len(g.Ops); n != 1 {
		t.Errorf("poisoned graph grew to %d ops, want 1", n)
	}
	if !errors.Is(g.Clone().Err(), ErrConstruction) {
		t.Error("Clone dropped the construction error")
	}
}

func TestAddBinaryBadOperandRecordsError(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	if id := g.AddBinary(Add, a, OpID(99)); id != None {
		t.Errorf("AddBinary with bad operand = %d, want None", id)
	}
	if !errors.Is(g.Err(), ErrConstruction) {
		t.Fatalf("Err() = %v, want ErrConstruction", g.Err())
	}
}

func TestUsers(t *testing.T) {
	g := buildDiamond(t)
	users := g.Users()
	// opA (ID 6) is used by opC (ID 8) only.
	if len(users[6]) != 1 || users[6][0] != 8 {
		t.Errorf("users[opA] = %v, want [8]", users[6])
	}
	// input a (ID 0) is used by opA only.
	if len(users[0]) != 1 || users[0][0] != 6 {
		t.Errorf("users[a] = %v, want [6]", users[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	c.Ops[6].Cycle = 99
	if g.Ops[6].Cycle == 99 {
		t.Fatal("Clone shares op storage with original")
	}
	if err := c.Validate(false); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
}

func TestDOT(t *testing.T) {
	g := buildDiamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "add@1", "add@2", "rank=same", "invtriangle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestEvalKind(t *testing.T) {
	cases := []struct {
		k       Kind
		a, b, y uint8
	}{
		{Add, 200, 100, 44}, // wraps mod 256
		{Sub, 5, 7, 254},
		{AbsDiff, 5, 7, 2},
		{AbsDiff, 7, 5, 2},
		{Mul, 16, 17, 16}, // 272 mod 256
		{Add, 0, 0, 0},
		{Mul, 255, 255, 1},
	}
	for _, tc := range cases {
		if got := EvalKind(tc.k, tc.a, tc.b); got != tc.y {
			t.Errorf("EvalKind(%v, %d, %d) = %d, want %d", tc.k, tc.a, tc.b, got, tc.y)
		}
	}
}

func TestEvalKindPanicsOnSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalKind(Input) did not panic")
		}
	}()
	EvalKind(Input, 1, 2)
}

func TestMintermPacking(t *testing.T) {
	m := MkMinterm(0xAB, 0xCD)
	if m.A() != 0xAB || m.B() != 0xCD {
		t.Fatalf("round trip failed: %v", m)
	}
	if m.String() != "(171,205)" {
		t.Errorf("String() = %q", m.String())
	}
}

// Property: minterm packing round-trips for all operand pairs.
func TestMintermRoundTripQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		m := MkMinterm(a, b)
		return m.A() == a && m.B() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: canonical minterms of commutative kinds are operand-order
// invariant, and evaluate identically to the raw operand pair.
func TestCanonMintermQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		for _, k := range []Kind{Add, AbsDiff, Mul} {
			if CanonMinterm(k, a, b) != CanonMinterm(k, b, a) {
				return false
			}
			if CanonMinterm(k, a, b).Eval(k) != EvalKind(k, a, b) {
				return false
			}
		}
		// Sub is not commutative: canonicalisation must preserve order.
		return CanonMinterm(Sub, a, b) == MkMinterm(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EvalKind(Add) is associative-with-wrap consistent: (a+b)+c ==
// a+(b+c) mod 256 when chained through the DFG evaluator semantics.
func TestAddAssociativityQuick(t *testing.T) {
	f := func(a, b, c uint8) bool {
		left := EvalKind(Add, EvalKind(Add, a, b), c)
		right := EvalKind(Add, a, EvalKind(Add, b, c))
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(Add) != ClassAdd || ClassOf(Sub) != ClassAdd || ClassOf(AbsDiff) != ClassAdd {
		t.Error("ALU kinds must map to ClassAdd")
	}
	if ClassOf(Mul) != ClassMul {
		t.Error("Mul must map to ClassMul")
	}
	if ClassOf(Input) != ClassNone || ClassOf(Output) != ClassNone || ClassOf(Const) != ClassNone {
		t.Error("sources/sinks must map to ClassNone")
	}
	if ClassAdd.String() != "adder" || ClassMul.String() != "multiplier" || ClassNone.String() != "none" {
		t.Error("Class.String mismatch")
	}
}

func TestInputsOutputsAndConst(t *testing.T) {
	g := New("io")
	a := g.AddInput("a")
	b := g.AddInput("b")
	k := g.AddConst(7)
	s := g.AddBinary(Add, a, k)
	g.AddOutput("y", s)
	g.AddOutput("z", b)
	if got := g.Inputs(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 2 {
		t.Errorf("Outputs = %v", got)
	}
	if g.Ops[k].Val != 7 || g.Ops[k].Kind != Const {
		t.Errorf("const op = %+v", g.Ops[k])
	}
	if err := g.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndClassStrings(t *testing.T) {
	for _, k := range []Kind{Input, Const, Add, Sub, AbsDiff, Mul, Output} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}

func TestAddOutputBadRefRecordsError(t *testing.T) {
	g := New("p")
	if id := g.AddOutput("y", OpID(42)); id != None {
		t.Errorf("AddOutput with bad ref = %d, want None", id)
	}
	if !errors.Is(g.Err(), ErrConstruction) {
		t.Fatalf("Err() = %v, want ErrConstruction", g.Err())
	}
}

func TestValidateMoreErrors(t *testing.T) {
	// Input with operands.
	g := New("t")
	a := g.AddInput("a")
	g.Ops[a].Args[0] = 0
	if err := g.Validate(false); err == nil {
		t.Error("input with operand must fail")
	}
	// Unnamed input.
	g2 := New("t")
	i2 := g2.AddInput("x")
	g2.Ops[i2].Name = ""
	if err := g2.Validate(false); err == nil {
		t.Error("unnamed input must fail")
	}
	// Output with two operands.
	g3 := New("t")
	a3 := g3.AddInput("a")
	o3 := g3.AddOutput("y", a3)
	g3.Ops[o3].Args[1] = a3
	if err := g3.Validate(false); err == nil {
		t.Error("output with two operands must fail")
	}
	// Unnamed output.
	g4 := New("t")
	a4 := g4.AddInput("a")
	o4 := g4.AddOutput("y", a4)
	g4.Ops[o4].Name = ""
	if err := g4.Validate(false); err == nil {
		t.Error("unnamed output must fail")
	}
	// ID mismatch.
	g5 := New("t")
	a5 := g5.AddInput("a")
	g5.Ops[a5].ID = 9
	if err := g5.Validate(false); err == nil {
		t.Error("ID mismatch must fail")
	}
	// Const with operands.
	g6 := New("t")
	k6 := g6.AddConst(1)
	g6.Ops[k6].Args[0] = 0
	if err := g6.Validate(false); err == nil {
		t.Error("const with operand must fail")
	}
	// Unknown kind.
	g7 := New("t")
	a7 := g7.AddInput("a")
	g7.Ops[a7].Kind = Kind(99)
	if err := g7.Validate(false); err == nil {
		t.Error("unknown kind must fail")
	}
}
