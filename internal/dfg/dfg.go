// Package dfg defines the scheduled data-flow graph (DFG) representation used
// throughout the library.
//
// A DFG is the output of high-level synthesis scheduling (Sec. II-B of the
// paper): nodes are operations completed in one clock cycle, edges are data
// dependencies. Operations carry a schedule step (Cycle); binding maps each
// scheduled operation of a functional-unit class onto an allocated FU.
//
// Operand values are 8-bit (the module input space of a 2-input FU is the
// 16-bit minterm space, see Minterm). All arithmetic is modulo 256.
package dfg

import (
	"errors"
	"fmt"
	"sort"
)

// ErrConstruction reports builder misuse: AddBinary with a non-binary kind,
// or an operand reference to an operation that does not exist. The builder
// is sticky — the first violation is recorded, later calls become no-ops
// returning None, and the error surfaces from Err and Validate — so
// frontends can chain construction calls and fail once, with a typed error
// instead of a crash.
var ErrConstruction = errors.New("dfg: malformed construction")

// OpID identifies an operation inside a Graph. IDs are dense indices into
// Graph.Ops.
type OpID int

// None is the nil operation reference used for unused operand slots.
const None OpID = -1

// Kind enumerates operation kinds.
type Kind uint8

// Operation kinds. Input and Const are sources, Output is a sink; the
// remaining binary kinds execute on functional units.
const (
	Input   Kind = iota // primary input, one 8-bit value per trace sample
	Const               // compile-time constant
	Add                 // a + b (mod 256)
	Sub                 // a - b (mod 256)
	AbsDiff             // |a - b|
	Mul                 // a * b (mod 256)
	Output              // sink marking a primary output
)

var kindNames = [...]string{
	Input:   "input",
	Const:   "const",
	Add:     "add",
	Sub:     "sub",
	AbsDiff: "absdiff",
	Mul:     "mul",
	Output:  "output",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsBinary reports whether the kind is a two-operand functional-unit
// operation.
func (k Kind) IsBinary() bool {
	switch k {
	case Add, Sub, AbsDiff, Mul:
		return true
	}
	return false
}

// Commutative reports whether the kind's result is invariant under operand
// swap. Commutative kinds canonicalise their minterms (see MintermOf).
func (k Kind) Commutative() bool {
	switch k {
	case Add, AbsDiff, Mul:
		return true
	}
	return false
}

// Class is a functional-unit class. Binding is performed independently per
// class ("by handling each operation/resource type separately, this
// assumption can be made without the loss of generality", Sec. IV-B).
type Class uint8

// Functional-unit classes.
const (
	ClassNone Class = iota // sources and sinks: not bound
	ClassAdd               // ALU class: Add, Sub, AbsDiff
	ClassMul               // multiplier class: Mul
)

func (c Class) String() string {
	switch c {
	case ClassAdd:
		return "adder"
	case ClassMul:
		return "multiplier"
	}
	return "none"
}

// ClassOf returns the functional-unit class that executes kind k.
func ClassOf(k Kind) Class {
	switch k {
	case Add, Sub, AbsDiff:
		return ClassAdd
	case Mul:
		return ClassMul
	}
	return ClassNone
}

// Op is a single DFG operation.
type Op struct {
	ID   OpID
	Kind Kind
	// Args are the producing operations for binary ops and Output (Args[0]
	// only). Unused slots hold None.
	Args [2]OpID
	// Name labels Input and Output ops with their source-level identifier.
	Name string
	// Val is the value of a Const op.
	Val uint8
	// Cycle is the 1-based schedule step. 0 means unscheduled. Sources
	// (Input, Const) are available from cycle 0 and are never scheduled.
	Cycle int
}

// Graph is a (possibly scheduled) data-flow graph. Ops must be in topological
// order: every operand index is smaller than its consumer's index. The
// constructors in this package and the frontend maintain this invariant;
// Validate checks it.
type Graph struct {
	// Name identifies the kernel the graph was extracted from.
	Name string
	Ops  []Op

	// err records the first builder misuse (ErrConstruction); once set,
	// builder calls are no-ops and Validate refuses the graph.
	err error
}

// New returns an empty graph named name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// add appends an op and returns its ID.
func (g *Graph) add(op Op) OpID {
	if g.err != nil {
		return None
	}
	op.ID = OpID(len(g.Ops))
	g.Ops = append(g.Ops, op)
	return op.ID
}

// fail records the first construction error and poisons the builder.
func (g *Graph) fail(err error) OpID {
	if g.err == nil {
		g.err = err
	}
	return None
}

// Err returns the first builder misuse recorded on the graph, or nil.
// errors.Is(err, ErrConstruction) matches it.
func (g *Graph) Err() error { return g.err }

// AddInput appends a primary input named name.
func (g *Graph) AddInput(name string) OpID {
	return g.add(Op{Kind: Input, Name: name, Args: [2]OpID{None, None}})
}

// AddConst appends a constant source with value v.
func (g *Graph) AddConst(v uint8) OpID {
	return g.add(Op{Kind: Const, Val: v, Args: [2]OpID{None, None}})
}

// AddBinary appends a binary operation of kind k consuming a and b. A
// non-binary kind or an out-of-range operand records ErrConstruction on the
// graph and returns None.
func (g *Graph) AddBinary(k Kind, a, b OpID) OpID {
	if g.err != nil {
		return None
	}
	if !k.IsBinary() {
		return g.fail(fmt.Errorf("%w: graph %q AddBinary with non-binary kind %v", ErrConstruction, g.Name, k))
	}
	if !g.checkRef(a) || !g.checkRef(b) {
		return None
	}
	return g.add(Op{Kind: k, Args: [2]OpID{a, b}})
}

// AddOutput appends an output sink named name consuming src.
func (g *Graph) AddOutput(name string, src OpID) OpID {
	if g.err != nil || !g.checkRef(src) {
		return None
	}
	return g.add(Op{Kind: Output, Name: name, Args: [2]OpID{src, None}})
}

// checkRef validates an operand reference, recording the first violation as
// the graph's sticky construction error.
func (g *Graph) checkRef(id OpID) bool {
	if id < 0 || int(id) >= len(g.Ops) {
		g.fail(fmt.Errorf("%w: graph %q operand %d out of range (have %d ops)", ErrConstruction, g.Name, id, len(g.Ops)))
		return false
	}
	return true
}

// Inputs returns the IDs of all Input ops in definition order.
func (g *Graph) Inputs() []OpID {
	var ids []OpID
	for _, op := range g.Ops {
		if op.Kind == Input {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// Outputs returns the IDs of all Output ops in definition order.
func (g *Graph) Outputs() []OpID {
	var ids []OpID
	for _, op := range g.Ops {
		if op.Kind == Output {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// OpsOfClass returns the IDs of all operations executing on class c, in ID
// order.
func (g *Graph) OpsOfClass(c Class) []OpID {
	var ids []OpID
	for _, op := range g.Ops {
		if ClassOf(op.Kind) == c && c != ClassNone {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// Cycles returns the schedule span s: the largest cycle over all ops. An
// unscheduled graph has span 0.
func (g *Graph) Cycles() int {
	s := 0
	for _, op := range g.Ops {
		if op.Cycle > s {
			s = op.Cycle
		}
	}
	return s
}

// AtCycle returns the operations of class c scheduled at cycle t, in ID
// order. These are the concurrent operations N_t that one binding step must
// map onto FUs (Sec. IV-B).
func (g *Graph) AtCycle(c Class, t int) []OpID {
	var ids []OpID
	for _, op := range g.Ops {
		if op.Cycle == t && ClassOf(op.Kind) == c {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// MaxConcurrency returns the largest number of class-c operations scheduled
// in any single cycle (|N_m| in the paper's complexity analysis). This is the
// minimum feasible FU allocation for the class.
func (g *Graph) MaxConcurrency(c Class) int {
	perCycle := map[int]int{}
	maxN := 0
	for _, op := range g.Ops {
		if ClassOf(op.Kind) == c {
			perCycle[op.Cycle]++
			if perCycle[op.Cycle] > maxN {
				maxN = perCycle[op.Cycle]
			}
		}
	}
	return maxN
}

// Users returns, for each op, the IDs of the ops consuming its result.
func (g *Graph) Users() [][]OpID {
	users := make([][]OpID, len(g.Ops))
	for _, op := range g.Ops {
		for _, a := range op.Args {
			if a != None {
				users[a] = append(users[a], op.ID)
			}
		}
	}
	return users
}

// Validate checks structural invariants: topological op order, operand arity
// per kind, names on inputs/outputs, and (when scheduled is true) that every
// FU operation has a positive cycle no earlier than one past each of its
// FU-operation operands.
func (g *Graph) Validate(scheduled bool) error {
	if g.err != nil {
		return g.err
	}
	seenName := map[string]bool{}
	for i, op := range g.Ops {
		if op.ID != OpID(i) {
			return fmt.Errorf("dfg %q: op %d has ID %d", g.Name, i, op.ID)
		}
		switch op.Kind {
		case Input:
			if op.Name == "" {
				return fmt.Errorf("dfg %q: input op %d unnamed", g.Name, i)
			}
			if seenName["in:"+op.Name] {
				return fmt.Errorf("dfg %q: duplicate input %q", g.Name, op.Name)
			}
			seenName["in:"+op.Name] = true
			if op.Args[0] != None || op.Args[1] != None {
				return fmt.Errorf("dfg %q: input op %d has operands", g.Name, i)
			}
		case Const:
			if op.Args[0] != None || op.Args[1] != None {
				return fmt.Errorf("dfg %q: const op %d has operands", g.Name, i)
			}
		case Output:
			if op.Name == "" {
				return fmt.Errorf("dfg %q: output op %d unnamed", g.Name, i)
			}
			if seenName["out:"+op.Name] {
				return fmt.Errorf("dfg %q: duplicate output %q", g.Name, op.Name)
			}
			seenName["out:"+op.Name] = true
			if op.Args[0] == None || op.Args[1] != None {
				return fmt.Errorf("dfg %q: output op %d must have exactly one operand", g.Name, i)
			}
			if op.Args[0] >= OpID(i) {
				return fmt.Errorf("dfg %q: op %d not in topological order", g.Name, i)
			}
		default:
			if !op.Kind.IsBinary() {
				return fmt.Errorf("dfg %q: op %d has unknown kind %v", g.Name, i, op.Kind)
			}
			for _, a := range op.Args {
				if a == None {
					return fmt.Errorf("dfg %q: binary op %d missing operand", g.Name, i)
				}
				if a >= OpID(i) || a < 0 {
					return fmt.Errorf("dfg %q: op %d not in topological order", g.Name, i)
				}
			}
		}
		if scheduled && op.Kind.IsBinary() {
			if op.Cycle <= 0 {
				return fmt.Errorf("dfg %q: op %d unscheduled", g.Name, i)
			}
			for _, a := range op.Args {
				arg := g.Ops[a]
				if arg.Kind.IsBinary() && arg.Cycle >= op.Cycle {
					return fmt.Errorf("dfg %q: op %d at cycle %d depends on op %d at cycle %d",
						g.Name, i, op.Cycle, a, arg.Cycle)
				}
			}
		}
	}
	return nil
}

// Stats summarises a graph for reporting.
type Stats struct {
	Name    string
	Adds    int // ClassAdd operations (add, sub, absdiff)
	Muls    int // ClassMul operations
	Inputs  int
	Outputs int
	Cycles  int
}

// Stat computes summary statistics for g.
func (g *Graph) Stat() Stats {
	st := Stats{Name: g.Name, Cycles: g.Cycles()}
	for _, op := range g.Ops {
		switch {
		case op.Kind == Input:
			st.Inputs++
		case op.Kind == Output:
			st.Outputs++
		case ClassOf(op.Kind) == ClassAdd:
			st.Adds++
		case ClassOf(op.Kind) == ClassMul:
			st.Muls++
		}
	}
	return st
}

// Clone returns a deep copy of g. Schedules are preserved.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Name: g.Name, Ops: make([]Op, len(g.Ops)), err: g.err}
	copy(ng.Ops, g.Ops)
	return ng
}

// SortedCycleList returns the sorted list of distinct cycles containing
// class-c operations. Binding iterates over exactly these cycles.
func (g *Graph) SortedCycleList(c Class) []int {
	set := map[int]bool{}
	for _, op := range g.Ops {
		if ClassOf(op.Kind) == c {
			set[op.Cycle] = true
		}
	}
	cycles := make([]int, 0, len(set))
	for t := range set {
		cycles = append(cycles, t)
	}
	sort.Ints(cycles)
	return cycles
}
