// Package binding implements resource binding: mapping each scheduled
// operation of a functional-unit class onto an allocated FU.
//
// It provides the paper's obfuscation-aware binding algorithm (Sec. IV)
// alongside the two security-oblivious baselines it is evaluated against —
// area-aware binding in the style of Huang et al. [20] and power-aware
// binding in the style of Chang et al. [19] — plus a seeded random binder.
// All four reduce each clock cycle to a weighted bipartite matching between
// the cycle's concurrent operations and the allocated FUs; they differ only
// in the edge weights.
package binding

import (
	"fmt"
	"sort"

	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/sim"
)

// Binding is a complete mapping of every class operation to an FU index in
// [0, NumFUs).
type Binding struct {
	Class  dfg.Class
	NumFUs int
	Assign map[dfg.OpID]int
}

// FUOf returns the FU executing op, or -1 if op is unbound.
func (b *Binding) FUOf(op dfg.OpID) int {
	fu, ok := b.Assign[op]
	if !ok {
		return -1
	}
	return fu
}

// OpsOnFU returns the operations bound to FU fu, in ID order.
func (b *Binding) OpsOnFU(fu int) []dfg.OpID {
	var ids []dfg.OpID
	for op, f := range b.Assign {
		if f == fu {
			ids = append(ids, op)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks that the binding is valid and complete for g: every class
// operation is bound to an in-range FU, and no FU executes two operations in
// the same cycle (Thm. 1's validity conditions).
func (b *Binding) Validate(g *dfg.Graph) error {
	busy := map[[2]int]dfg.OpID{} // (cycle, fu) -> op
	for _, id := range g.OpsOfClass(b.Class) {
		fu, ok := b.Assign[id]
		if !ok {
			return fmt.Errorf("binding: op %d of %q unbound", id, g.Name)
		}
		if fu < 0 || fu >= b.NumFUs {
			return fmt.Errorf("binding: op %d bound to FU %d outside allocation %d", id, fu, b.NumFUs)
		}
		key := [2]int{g.Ops[id].Cycle, fu}
		if prev, clash := busy[key]; clash {
			return fmt.Errorf("binding: ops %d and %d share FU %d in cycle %d", prev, id, fu, key[0])
		}
		busy[key] = id
	}
	for op := range b.Assign {
		if int(op) >= len(g.Ops) || dfg.ClassOf(g.Ops[op].Kind) != b.Class {
			return fmt.Errorf("binding: op %d is not a %v operation of %q", op, b.Class, g.Name)
		}
	}
	return nil
}

// Problem bundles the inputs a binder consumes. Lock may be nil for binders
// that ignore locking (area/power/random); Res may be nil for binders that
// ignore the trace (obfuscation-aware uses only K, area uses only structure).
type Problem struct {
	G     *dfg.Graph
	Class dfg.Class
	// NumFUs is the allocation size R. It must be at least the schedule's
	// maximum concurrency.
	NumFUs int
	// K is the minterm occurrence matrix from simulating the typical
	// workload.
	K *sim.KMatrix
	// Lock is the locking configuration (for the obfuscation-aware binder).
	Lock *locking.Config
	// Res carries per-sample operand values (for the power-aware binder).
	Res *sim.Result
}

func (p *Problem) check() error {
	if p.G == nil {
		return fmt.Errorf("binding: nil graph")
	}
	if p.Class == dfg.ClassNone {
		return fmt.Errorf("binding: class required")
	}
	need := p.G.MaxConcurrency(p.Class)
	if p.NumFUs < need {
		return fmt.Errorf("binding: allocation %d below max concurrency %d of %q",
			p.NumFUs, need, p.G.Name)
	}
	return nil
}

// Binder produces a binding for a problem.
type Binder interface {
	// Name identifies the algorithm in reports.
	Name() string
	Bind(p *Problem) (*Binding, error)
}

// ApplicationErrors evaluates the paper's objective cost function (Eqn. 2):
//
//	E = Σ_{l∈L} Σ_{m∈M_l} Σ_{n∈N_l} K_{m,n}
//
// the expected number of times a locked input is applied to a locked FU over
// the typical workload, for binding b under locking configuration cfg.
func ApplicationErrors(g *dfg.Graph, k *sim.KMatrix, cfg *locking.Config, b *Binding) (int, error) {
	if cfg.Class != b.Class {
		return 0, fmt.Errorf("binding: locking class %v does not match binding class %v", cfg.Class, b.Class)
	}
	if cfg.NumFUs != b.NumFUs {
		return 0, fmt.Errorf("binding: locking allocation %d does not match binding allocation %d",
			cfg.NumFUs, b.NumFUs)
	}
	total := 0
	for _, l := range cfg.Locks {
		for _, n := range b.OpsOnFU(l.FU) {
			for _, m := range l.Minterms {
				total += k.Count(m, n)
			}
		}
	}
	return total, nil
}
