package binding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/sim"
)

// enumerateBindings visits every valid binding of g's class-c ops onto
// numFUs units by choosing an injective FU assignment per cycle.
func enumerateBindings(g *dfg.Graph, class dfg.Class, numFUs int, visit func(map[dfg.OpID]int)) {
	cycles := g.SortedCycleList(class)
	assign := map[dfg.OpID]int{}
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(cycles) {
			visit(assign)
			return
		}
		ops := g.AtCycle(class, cycles[ci])
		used := make([]bool, numFUs)
		var perOp func(oi int)
		perOp = func(oi int) {
			if oi == len(ops) {
				rec(ci + 1)
				return
			}
			for fu := 0; fu < numFUs; fu++ {
				if used[fu] {
					continue
				}
				used[fu] = true
				assign[ops[oi]] = fu
				perOp(oi + 1)
				used[fu] = false
			}
		}
		perOp(0)
	}
	rec(0)
}

// TestThm2OptimalityRandomQuick verifies Thm. 2 empirically: on random
// scheduled DFGs with random K matrices and random locking configurations,
// no binding in the full enumeration beats the obfuscation-aware binder.
func TestThm2OptimalityRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		// Random scheduled DFG: 2-4 cycles, 1-3 add ops each.
		g := dfg.New("rnd")
		a := g.AddInput("a")
		b := g.AddInput("b")
		numFUs := 2 + r.Intn(2)
		cycles := 2 + r.Intn(3)
		var last dfg.OpID
		for t0 := 1; t0 <= cycles; t0++ {
			n := 1 + r.Intn(numFUs)
			for i := 0; i < n; i++ {
				last = g.AddBinary(dfg.Add, a, b)
				g.Ops[last].Cycle = t0
			}
		}
		g.AddOutput("y", last)
		if g.Validate(true) != nil {
			return false
		}

		// Random K over a small minterm alphabet.
		minterms := []dfg.Minterm{
			dfg.CanonMinterm(dfg.Add, 1, 2),
			dfg.CanonMinterm(dfg.Add, 3, 4),
			dfg.CanonMinterm(dfg.Add, 5, 6),
		}
		k := sim.NewKMatrix(len(g.Ops))
		for _, id := range g.OpsOfClass(dfg.ClassAdd) {
			for _, m := range minterms {
				if c := r.Intn(12); c > 0 {
					k.Add(m, id, c)
				}
			}
		}

		// Random locking configuration.
		lockedFUs := 1 + r.Intn(numFUs)
		sets := make([][]dfg.Minterm, lockedFUs)
		for i := range sets {
			perm := r.Perm(len(minterms))
			take := 1 + r.Intn(len(minterms))
			for _, mi := range perm[:take] {
				sets[i] = append(sets[i], minterms[mi])
			}
		}
		cfg, err := locking.NewConfig(dfg.ClassAdd, numFUs, lockedFUs, locking.SFLLRem, sets)
		if err != nil {
			return false
		}

		bd, err := (ObfuscationAware{}).Bind(&Problem{
			G: g, Class: dfg.ClassAdd, NumFUs: numFUs, K: k, Lock: cfg,
		})
		if err != nil {
			return false
		}
		algE, err := ApplicationErrors(g, k, cfg, bd)
		if err != nil {
			return false
		}

		best := -1
		enumerateBindings(g, dfg.ClassAdd, numFUs, func(assign map[dfg.OpID]int) {
			cand := &Binding{Class: dfg.ClassAdd, NumFUs: numFUs, Assign: assign}
			e, err := ApplicationErrors(g, k, cfg, cand)
			if err == nil && e > best {
				best = e
			}
		})
		return algE == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
