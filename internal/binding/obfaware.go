package binding

import (
	"fmt"

	"bindlock/internal/dfg"
	"bindlock/internal/matching"
)

// ObfuscationAware is the paper's security-aware binder (Sec. IV-B). For each
// cycle t it builds the complete weighted bipartite graph B_t between the
// concurrent operations N_t and the allocated FUs, with edge weight
//
//	w_{i,j} = Σ_{m ∈ M_i} K_{m,j}   (Eqn. 3)
//
// (the number of times FU i's locked inputs would be applied to it if
// operation j were bound to it; zero on unlocked FUs), and solves the
// max-weight full matching. Cycles are separable, so binding them
// independently is globally optimal (Thm. 2).
type ObfuscationAware struct{}

// Name implements Binder.
func (ObfuscationAware) Name() string { return "obfuscation-aware" }

// Bind implements Binder. The problem must carry the K matrix and a
// critical-minterm locking configuration whose minterm sets are fixed.
func (ObfuscationAware) Bind(p *Problem) (*Binding, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	if p.K == nil {
		return nil, fmt.Errorf("binding: obfuscation-aware binder needs the K matrix")
	}
	if p.Lock == nil {
		return nil, fmt.Errorf("binding: obfuscation-aware binder needs a locking configuration")
	}
	if err := p.Lock.Validate(); err != nil {
		return nil, err
	}
	if p.Lock.Class != p.Class || p.Lock.NumFUs != p.NumFUs {
		return nil, fmt.Errorf("binding: locking configuration is for %v/%d FUs, problem is %v/%d",
			p.Lock.Class, p.Lock.NumFUs, p.Class, p.NumFUs)
	}
	for _, l := range p.Lock.Locks {
		if !l.Scheme.CriticalMinterm() {
			return nil, fmt.Errorf("binding: FU %d uses %v, which cannot pin locked inputs", l.FU, l.Scheme)
		}
	}

	b := &Binding{Class: p.Class, NumFUs: p.NumFUs, Assign: map[dfg.OpID]int{}}
	for _, t := range p.G.SortedCycleList(p.Class) {
		ops := p.G.AtCycle(p.Class, t)
		w := make([][]float64, len(ops))
		for i, opID := range ops {
			w[i] = make([]float64, p.NumFUs)
			for fu := 0; fu < p.NumFUs; fu++ {
				if l := p.Lock.LockOf(fu); l != nil {
					sum := 0
					for _, m := range l.Minterms {
						sum += p.K.Count(m, opID)
					}
					w[i][fu] = float64(sum)
				}
			}
		}
		assign, _, err := matching.MaxWeight(w)
		if err != nil {
			return nil, fmt.Errorf("binding: cycle %d of %q: %w", t, p.G.Name, err)
		}
		for i, opID := range ops {
			b.Assign[opID] = assign[i]
		}
	}
	if err := b.Validate(p.G); err != nil {
		return nil, err
	}
	return b, nil
}
