package binding

import (
	"fmt"
	"math/bits"
	"math/rand"

	"bindlock/internal/dfg"
	"bindlock/internal/matching"
)

// AreaAware is the register/interconnect-minimising baseline in the style of
// Huang et al., "Data path allocation based on bipartite weighted matching"
// (DAC 1991) [20]. Cycles are bound in schedule order; the cost of placing an
// operation on an FU is the number of new sources that must be routed to the
// FU's input ports (each new source is a mux input and often a dedicated
// register), discounted when an operand was itself computed on that FU in an
// earlier cycle (the value can be consumed from the FU's output register).
// Each cycle is solved as a min-cost full matching.
type AreaAware struct{}

// Name implements Binder.
func (AreaAware) Name() string { return "area-aware" }

// Bind implements Binder.
func (AreaAware) Bind(p *Problem) (*Binding, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	b := &Binding{Class: p.Class, NumFUs: p.NumFUs, Assign: map[dfg.OpID]int{}}
	// sources[f] holds the producer ops already routed to FU f's inputs.
	sources := make([]map[dfg.OpID]bool, p.NumFUs)
	// producedBy[op] is the FU that computed op (if bound already).
	producedBy := map[dfg.OpID]int{}
	for f := range sources {
		sources[f] = map[dfg.OpID]bool{}
	}

	for _, t := range p.G.SortedCycleList(p.Class) {
		ops := p.G.AtCycle(p.Class, t)
		w := make([][]float64, len(ops))
		for i, opID := range ops {
			w[i] = make([]float64, p.NumFUs)
			op := p.G.Ops[opID]
			for f := 0; f < p.NumFUs; f++ {
				cost := 0.0
				for _, a := range op.Args {
					if !sources[f][a] {
						cost++ // new mux input / routed register
					}
					if pf, ok := producedBy[a]; ok && pf == f {
						cost -= 0.5 // operand already in f's output register
					}
				}
				w[i][f] = cost
			}
		}
		assign, _, err := matching.MinCost(w)
		if err != nil {
			return nil, fmt.Errorf("binding: area-aware cycle %d of %q: %w", t, p.G.Name, err)
		}
		for i, opID := range ops {
			f := assign[i]
			b.Assign[opID] = f
			producedBy[opID] = f
			for _, a := range p.G.Ops[opID].Args {
				sources[f][a] = true
			}
		}
	}
	if err := b.Validate(p.G); err != nil {
		return nil, err
	}
	return b, nil
}

// PowerAware is the switching-minimising baseline in the style of Chang and
// Pedram, "Register allocation and binding for low power" (DAC 1995) [19].
// It uses the same trace the security-aware binders use: the cost of placing
// an operation on an FU is the average Hamming distance between the FU's
// previous operand pair and the operation's operand pair across the trace —
// the expected input toggling the placement causes. Each cycle is a min-cost
// full matching; the FU input history is updated as cycles are bound.
type PowerAware struct{}

// Name implements Binder.
func (PowerAware) Name() string { return "power-aware" }

// Bind implements Binder. The problem must carry the simulation result (the
// per-sample operand streams).
func (PowerAware) Bind(p *Problem) (*Binding, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	if p.Res == nil {
		return nil, fmt.Errorf("binding: power-aware binder needs the simulation result")
	}
	b := &Binding{Class: p.Class, NumFUs: p.NumFUs, Assign: map[dfg.OpID]int{}}
	// lastOp[f] is the most recently bound op on FU f (dfg.None if idle).
	lastOp := make([]dfg.OpID, p.NumFUs)
	for f := range lastOp {
		lastOp[f] = dfg.None
	}
	nSamples := len(p.Res.OperandAB)

	for _, t := range p.G.SortedCycleList(p.Class) {
		ops := p.G.AtCycle(p.Class, t)
		w := make([][]float64, len(ops))
		for i, opID := range ops {
			w[i] = make([]float64, p.NumFUs)
			for f := 0; f < p.NumFUs; f++ {
				if lastOp[f] == dfg.None {
					continue // first use: no toggle cost
				}
				toggles := 0
				for s := 0; s < nSamples; s++ {
					prev := p.Res.OperandAB[s][lastOp[f]]
					cur := p.Res.OperandAB[s][opID]
					toggles += bits.OnesCount32(uint32(prev ^ cur))
				}
				if nSamples > 0 {
					w[i][f] = float64(toggles) / float64(nSamples)
				}
			}
		}
		assign, _, err := matching.MinCost(w)
		if err != nil {
			return nil, fmt.Errorf("binding: power-aware cycle %d of %q: %w", t, p.G.Name, err)
		}
		for i, opID := range ops {
			b.Assign[opID] = assign[i]
			lastOp[assign[i]] = opID
		}
	}
	if err := b.Validate(p.G); err != nil {
		return nil, err
	}
	return b, nil
}

// Random binds each cycle with a seeded random injective assignment. It is
// the "any valid binding" control.
type Random struct {
	Seed int64
}

// Name implements Binder.
func (r Random) Name() string { return "random" }

// Bind implements Binder.
func (r Random) Bind(p *Problem) (*Binding, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	b := &Binding{Class: p.Class, NumFUs: p.NumFUs, Assign: map[dfg.OpID]int{}}
	for _, t := range p.G.SortedCycleList(p.Class) {
		ops := p.G.AtCycle(p.Class, t)
		perm := rng.Perm(p.NumFUs)
		for i, opID := range ops {
			b.Assign[opID] = perm[i]
		}
	}
	if err := b.Validate(p.G); err != nil {
		return nil, err
	}
	return b, nil
}
