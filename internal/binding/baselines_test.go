package binding

import (
	"context"
	"math/bits"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/sched"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

// benchProblem compiles and schedules a small kernel and simulates a
// workload, returning a ready-to-bind problem.
func benchProblem(t *testing.T, gen trace.Generator, seed int64) *Problem {
	t.Helper()
	src := `
kernel bp;
input a, b, c, d;
output y, z;
t0 = a + b;
t1 = c + d;
t2 = t0 + c;
t3 = t1 + a;
t4 = t2 + t3;
t5 = t4 + b;
y = t4;
z = t5;
`
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.PathBased(g, sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 2}}); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(gen, []string{"a", "b", "c", "d"}, 256, seed)
	res, err := sim.Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: res.K, Res: res}
}

func TestAreaAwareProducesValidBinding(t *testing.T) {
	p := benchProblem(t, trace.ImageBlocks, 1)
	b, err := AreaAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(p.G); err != nil {
		t.Fatal(err)
	}
	if (AreaAware{}).Name() != "area-aware" {
		t.Error("name mismatch")
	}
}

func TestAreaAwarePrefersChaining(t *testing.T) {
	// A chain t0 -> t2 and an unrelated pair: binding t2 on the FU that
	// produced t0 saves a register, so area-aware must co-locate them.
	src := `
kernel ch;
input a, b, c, d;
output y, z;
t0 = a + b;
t1 = c + d;
t2 = t0 + a;
t3 = t1 + c;
y = t2;
z = t3;
`
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.PathBased(g, sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 2}}); err != nil {
		t.Fatal(err)
	}
	p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2}
	b, err := AreaAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	adds := g.OpsOfClass(dfg.ClassAdd)
	t0, t1, t2, t3 := adds[0], adds[1], adds[2], adds[3]
	if b.FUOf(t0) != b.FUOf(t2) {
		t.Errorf("t0 on FU%d but consumer t2 on FU%d; chaining lost", b.FUOf(t0), b.FUOf(t2))
	}
	if b.FUOf(t1) != b.FUOf(t3) {
		t.Errorf("t1 on FU%d but consumer t3 on FU%d; chaining lost", b.FUOf(t1), b.FUOf(t3))
	}
}

func TestPowerAwareProducesValidBinding(t *testing.T) {
	p := benchProblem(t, trace.Audio, 2)
	b, err := PowerAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(p.G); err != nil {
		t.Fatal(err)
	}
}

func TestPowerAwareNeedsTrace(t *testing.T) {
	p := benchProblem(t, trace.Audio, 2)
	p.Res = nil
	if _, err := (PowerAware{}).Bind(p); err == nil {
		t.Error("power-aware without simulation result must error")
	}
}

// switchingOf measures the average per-cycle FU input toggling of a binding,
// the quantity the power-aware binder minimises.
func switchingOf(p *Problem, b *Binding) float64 {
	total := 0
	transitions := 0
	for fu := 0; fu < b.NumFUs; fu++ {
		ops := b.OpsOnFU(fu)
		// OpsOnFU returns ID order; schedule order follows cycle.
		for i := 1; i < len(ops); i++ {
			for s := range p.Res.OperandAB {
				total += bits.OnesCount32(uint32(p.Res.OperandAB[s][ops[i-1]] ^ p.Res.OperandAB[s][ops[i]]))
			}
			transitions += len(p.Res.OperandAB)
		}
	}
	if transitions == 0 {
		return 0
	}
	return float64(total) / float64(transitions)
}

func TestPowerAwareBeatsRandomOnSwitching(t *testing.T) {
	p := benchProblem(t, trace.Audio, 3)
	pw, err := PowerAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for seed := int64(0); seed < 5; seed++ {
		rb, err := Random{Seed: seed}.Bind(p)
		if err != nil {
			t.Fatal(err)
		}
		if s := switchingOf(p, rb); s > worst {
			worst = s
		}
	}
	if s := switchingOf(p, pw); s > worst+1e-9 {
		t.Errorf("power-aware switching %.3f exceeds worst random %.3f", s, worst)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := benchProblem(t, trace.Uniform, 4)
	b1, err := Random{Seed: 9}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Random{Seed: 9}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	for op, fu := range b1.Assign {
		if b2.Assign[op] != fu {
			t.Fatal("random binder not deterministic under fixed seed")
		}
	}
	if (Random{Seed: 9}).Name() != "random" {
		t.Error("name mismatch")
	}
}

// Property: all binders produce valid bindings on randomly generated
// scheduled DFGs.
func TestAllBindersValidQuick(t *testing.T) {
	f := func(seed int64) bool {
		gen := trace.Generator(uint8(seed) % 5)
		src := `
kernel q;
input a, b, c;
output y;
t0 = a + b;
t1 = b + c;
t2 = t0 + t1;
t3 = t2 + a;
t4 = t3 + t1;
y = t4;
`
		g, err := frontend.Compile(src)
		if err != nil {
			return false
		}
		if _, err := sched.PathBased(g, sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 2}}); err != nil {
			return false
		}
		tr := trace.Generate(gen, []string{"a", "b", "c"}, 64, seed)
		res, err := sim.Run(context.Background(), g, tr)
		if err != nil {
			return false
		}
		p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 3, K: res.K, Res: res}
		for _, binder := range []Binder{AreaAware{}, PowerAware{}, Random{Seed: seed}} {
			b, err := binder.Bind(p)
			if err != nil || b.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
