package binding

import (
	"strings"
	"testing"

	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/sim"
)

// mintermX and mintermY are the two example minterms of Sec. III.
var (
	mintermX = dfg.CanonMinterm(dfg.Add, 1, 2)
	mintermY = dfg.CanonMinterm(dfg.Add, 3, 4)
)

// fig1 builds the motivational example of Fig. 1: a 2-cycle DFG with
// OPA, OPB in cycle 1 and OPC, OPD in cycle 2, and the stated expected
// occurrence table for minterms x and y.
func fig1(t *testing.T) (*dfg.Graph, *sim.KMatrix, [4]dfg.OpID) {
	t.Helper()
	g := dfg.New("fig1")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	d := g.AddInput("d")
	e := g.AddInput("e")
	f := g.AddInput("f")
	opA := g.AddBinary(dfg.Add, a, b)
	opB := g.AddBinary(dfg.Add, d, e)
	opC := g.AddBinary(dfg.Add, opA, c)
	opD := g.AddBinary(dfg.Add, opB, f)
	g.AddOutput("y1", opC)
	g.AddOutput("y2", opD)
	g.Ops[opA].Cycle = 1
	g.Ops[opB].Cycle = 1
	g.Ops[opC].Cycle = 2
	g.Ops[opD].Cycle = 2
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKMatrix(len(g.Ops))
	// Exp. input occurrences (Fig. 1A):
	// minterm x: OPA=6, OPB=1, OPC=0, OPD=10
	// minterm y: OPA=9, OPB=0, OPC=0, OPD=8
	k.Add(mintermX, opA, 6)
	k.Add(mintermX, opB, 1)
	k.Add(mintermX, opD, 10)
	k.Add(mintermY, opA, 9)
	k.Add(mintermY, opD, 8)
	return g, k, [4]dfg.OpID{opA, opB, opC, opD}
}

// TestMotivationalExample reproduces Sec. III: locking minterm x on FU 0,
// the obfuscation-aware binding injects 16 errors (binding 2 of Fig. 1B),
// versus 6 for the security-oblivious binding 1.
func TestMotivationalExample(t *testing.T) {
	g, k, ops := fig1(t)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 2, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	if err != nil {
		t.Fatal(err)
	}

	// Binding 1 (security-oblivious): FU0 runs {OPA, OPC}; 6 errors.
	b1 := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 0, ops[3]: 1,
	}}
	if err := b1.Validate(g); err != nil {
		t.Fatal(err)
	}
	e1, err := ApplicationErrors(g, k, cfg, b1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 6 {
		t.Errorf("binding 1 errors = %d, want 6", e1)
	}

	// Obfuscation-aware binding: must find binding 2 with 16 errors.
	p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: k, Lock: cfg}
	b2, err := ObfuscationAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ApplicationErrors(g, k, cfg, b2)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != 16 {
		t.Errorf("obfuscation-aware errors = %d, want 16 (6+10)", e2)
	}
	if b2.FUOf(ops[0]) != 0 || b2.FUOf(ops[3]) != 0 {
		t.Errorf("binding 2 must place OPA and OPD on the locked FU; got %v", b2.Assign)
	}

	// Locking minterm y instead (the co-design choice of Sec. III-C)
	// yields 17 errors under obfuscation-aware binding.
	cfgY, err := locking.NewConfig(dfg.ClassAdd, 2, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermY}})
	if err != nil {
		t.Fatal(err)
	}
	p.Lock = cfgY
	b3, err := ObfuscationAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := ApplicationErrors(g, k, cfgY, b3)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != 17 {
		t.Errorf("co-design configuration errors = %d, want 17 (9+8)", e3)
	}
}

// fig2 builds the example of Fig. 2: 5 operations over 2 cycles, 3 FUs, FU0
// locking x and FU1 locking y.
func fig2(t *testing.T) (*dfg.Graph, *sim.KMatrix, *locking.Config) {
	t.Helper()
	g := dfg.New("fig2")
	ins := make([]dfg.OpID, 7)
	for i, n := range []string{"a", "b", "c", "d", "e", "f", "g2"} {
		ins[i] = g.AddInput(n)
	}
	opA := g.AddBinary(dfg.Add, ins[0], ins[1])
	opB := g.AddBinary(dfg.Add, ins[2], ins[3])
	opC := g.AddBinary(dfg.Add, opA, ins[4])
	opD := g.AddBinary(dfg.Add, opB, ins[5])
	opE := g.AddBinary(dfg.Add, opB, ins[6])
	g.AddOutput("y1", opC)
	g.AddOutput("y2", opD)
	g.AddOutput("y3", opE)
	g.Ops[opA].Cycle = 1
	g.Ops[opB].Cycle = 1
	g.Ops[opC].Cycle = 2
	g.Ops[opD].Cycle = 2
	g.Ops[opE].Cycle = 2
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKMatrix(len(g.Ops))
	// Input 'x': OPA=6, OPB=4, OPC=3, OPD=0, OPE=10
	// Input 'y': OPA=9, OPB=3, OPC=7, OPD=0, OPE=8
	k.Add(mintermX, opA, 6)
	k.Add(mintermX, opB, 4)
	k.Add(mintermX, opC, 3)
	k.Add(mintermX, opE, 10)
	k.Add(mintermY, opA, 9)
	k.Add(mintermY, opB, 3)
	k.Add(mintermY, opC, 7)
	k.Add(mintermY, opE, 8)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 3, 2, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}, {mintermY}})
	if err != nil {
		t.Fatal(err)
	}
	return g, k, cfg
}

// TestFigure2Binding reproduces Fig. 2C: at t=1 the max-weight matching maps
// OPA to FU2 (weight 9) and OPB to FU1 (weight 4), total cost 13; the full
// binding then adds the optimal cycle-2 matching (10 + 7) for 30 total.
func TestFigure2Binding(t *testing.T) {
	g, k, cfg := fig2(t)
	p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 3, K: k, Lock: cfg}
	b, err := ObfuscationAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	adds := g.OpsOfClass(dfg.ClassAdd)
	opA, opB := adds[0], adds[1]
	if b.FUOf(opA) != 1 {
		t.Errorf("OPA bound to FU%d, want FU2 (index 1, the y-locked FU)", b.FUOf(opA)+1)
	}
	if b.FUOf(opB) != 0 {
		t.Errorf("OPB bound to FU%d, want FU1 (index 0, the x-locked FU)", b.FUOf(opB)+1)
	}
	e, err := ApplicationErrors(g, k, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if e != 30 {
		t.Errorf("total errors = %d, want 30 (13 at t=1 + 17 at t=2)", e)
	}
}

func TestObfuscationAwareIsOptimalOnFig1(t *testing.T) {
	// Enumerate all 4 valid bindings of fig1 and check Thm. 2: no binding
	// beats the algorithm's.
	g, k, ops := fig1(t)
	cfg, _ := locking.NewConfig(dfg.ClassAdd, 2, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	best := -1
	for c1 := 0; c1 < 2; c1++ {
		for c2 := 0; c2 < 2; c2++ {
			b := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
				ops[0]: c1, ops[1]: 1 - c1, ops[2]: c2, ops[3]: 1 - c2,
			}}
			e, err := ApplicationErrors(g, k, cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if e > best {
				best = e
			}
		}
	}
	p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: k, Lock: cfg}
	b, err := ObfuscationAware{}.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ApplicationErrors(g, k, cfg, b)
	if e != best {
		t.Errorf("algorithm errors = %d, exhaustive best = %d", e, best)
	}
}

func TestBindingValidate(t *testing.T) {
	g, _, ops := fig1(t)
	// Two ops on the same FU in the same cycle.
	bad := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 0, ops[2]: 1, ops[3]: 0,
	}}
	if err := bad.Validate(g); err == nil || !strings.Contains(err.Error(), "share FU") {
		t.Errorf("err = %v, want share FU", err)
	}
	// Unbound op.
	missing := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 1,
	}}
	if err := missing.Validate(g); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("err = %v, want unbound", err)
	}
	// FU out of range.
	oob := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 1, ops[3]: 5,
	}}
	if err := oob.Validate(g); err == nil || !strings.Contains(err.Error(), "outside allocation") {
		t.Errorf("err = %v, want outside allocation", err)
	}
	// Binding an op of the wrong class.
	alien := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 0, ops[3]: 1, dfg.OpID(0): 0,
	}}
	if err := alien.Validate(g); err == nil {
		t.Error("binding a non-class op must fail validation")
	}
}

func TestProblemChecks(t *testing.T) {
	g, k, _ := fig1(t)
	cfg, _ := locking.NewConfig(dfg.ClassAdd, 2, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	// Allocation below max concurrency.
	p := &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 1, K: k, Lock: cfg}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil ||
		!strings.Contains(err.Error(), "below max concurrency") {
		t.Errorf("err = %v, want below max concurrency", err)
	}
	// Missing K.
	p = &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, Lock: cfg}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("missing K must error")
	}
	// Missing lock.
	p = &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: k}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("missing lock must error")
	}
	// Mismatched allocation between lock and problem.
	cfg3, _ := locking.NewConfig(dfg.ClassAdd, 3, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	p = &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: k, Lock: cfg3}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("allocation mismatch must error")
	}
	// Non-critical-minterm scheme.
	bad := cfg.Clone()
	bad.Locks[0].Scheme = locking.FullLock
	p = &Problem{G: g, Class: dfg.ClassAdd, NumFUs: 2, K: k, Lock: bad}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("full-lock scheme must be rejected by the minterm binder")
	}
	// Class none.
	p = &Problem{G: g, Class: dfg.ClassNone, NumFUs: 2, K: k, Lock: cfg}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("class none must error")
	}
	// Nil graph.
	p = &Problem{Class: dfg.ClassAdd, NumFUs: 2, K: k, Lock: cfg}
	if _, err := (ObfuscationAware{}).Bind(p); err == nil {
		t.Error("nil graph must error")
	}
}

func TestApplicationErrorsMismatch(t *testing.T) {
	g, k, ops := fig1(t)
	cfg, _ := locking.NewConfig(dfg.ClassAdd, 3, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	b := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 0, ops[3]: 1,
	}}
	if _, err := ApplicationErrors(g, k, cfg, b); err == nil {
		t.Error("allocation mismatch must error")
	}
	cfgMul, _ := locking.NewConfig(dfg.ClassMul, 2, 1, locking.SFLLRem,
		[][]dfg.Minterm{{mintermX}})
	if _, err := ApplicationErrors(g, k, cfgMul, b); err == nil {
		t.Error("class mismatch must error")
	}
}

func TestOpsOnFUAndFUOf(t *testing.T) {
	g, _, ops := fig1(t)
	b := &Binding{Class: dfg.ClassAdd, NumFUs: 2, Assign: map[dfg.OpID]int{
		ops[0]: 0, ops[1]: 1, ops[2]: 0, ops[3]: 1,
	}}
	if err := b.Validate(g); err != nil {
		t.Fatal(err)
	}
	on0 := b.OpsOnFU(0)
	if len(on0) != 2 || on0[0] != ops[0] || on0[1] != ops[2] {
		t.Errorf("OpsOnFU(0) = %v", on0)
	}
	if b.FUOf(ops[1]) != 1 || b.FUOf(dfg.OpID(0)) != -1 {
		t.Error("FUOf lookup broken")
	}
}
