// Package metrics is the quantitative telemetry layer of the compute stack:
// a dependency-free, concurrency-safe registry of named counters, gauges and
// histograms that every long-running computation reports into.
//
// Where internal/progress streams qualitative per-phase events, this package
// aggregates the numbers the logic-locking literature characterises designs
// by — CDCL conflict/decision/propagation counts, SAT-attack DIP iterations,
// CNF growth, simulation throughput, co-design enumeration sizes — into a
// point-in-time Snapshot exportable as JSON or Prometheus text exposition.
//
// A Registry travels inside a context.Context (NewContext/FromContext), the
// same way progress hooks do, so the compute packages need no new parameters:
// each retrieves the registry from the ctx it already takes for cancellation
// and emits through the nil-safe methods. Every method on a nil *Registry is
// a no-op, so uninstrumented runs pay only a nil check per emission site.
//
// Determinism. The repository guarantees bit-identical computation at any
// worker count, and the counter layer extends that guarantee: every counter
// and every non-timing histogram in a Snapshot is identical between a -j 1
// and a -j N run of the same work. Wall-time histograms (names ending in
// "_seconds") and the worker pool's own dispatch metrics ("parallel_*", whose
// task shapes legitimately depend on the worker count) are the only
// exceptions; Snapshot.Deterministic strips exactly those, and the
// determinism tests compare what remains byte for byte.
package metrics

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a concurrency-safe collection of named metrics. The zero value
// is not usable; call New. A nil *Registry is valid and ignores all writes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*hist{},
	}
}

// Add increments the named counter by delta. Counters are monotone event
// totals ("sat_conflicts_total"); use Set for point-in-time values.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records the named gauge's current value, replacing the previous one.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one observation into the named histogram. Bucket bounds are
// chosen from the name on first use: "*_seconds" histograms get latency
// buckets (1µs..60s), everything else gets power-of-two value buckets.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHist(boundsFor(name))
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// ObserveDuration records a duration, in seconds, into the named histogram.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, d.Seconds())
}

var noopStop = func() {}

// Timer starts a stopwatch; the returned func records the elapsed time into
// the named "*_seconds" histogram. On a nil registry it is a shared no-op and
// the clock is never read.
func (r *Registry) Timer(name string) func() {
	if r == nil {
		return noopStop
	}
	start := time.Now()
	return func() { r.ObserveDuration(name, time.Since(start)) }
}

// Snapshot captures a point-in-time copy of every metric, sorted by name, so
// two snapshots of identical registries serialise identically.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	for name, v := range r.counters {
		s.Counters = append(s.Counters, Counter{Name: name, Value: v})
	}
	for name, v := range r.gauges {
		s.Gauges = append(s.Gauges, Gauge{Name: name, Value: v})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.export(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// hist is a fixed-bucket histogram. Buckets[i] counts observations with
// v <= bounds[i]; the implicit last bucket (+Inf) catches the rest.
type hist struct {
	bounds  []float64
	buckets []uint64 // len(bounds)+1; non-cumulative
	count   uint64
	sum     float64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.count++
	h.sum += v
}

func (h *hist) export(name string) Histogram {
	return Histogram{
		Name:    name,
		Count:   h.count,
		Sum:     h.sum,
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]uint64(nil), h.buckets...),
	}
}

// timeBounds are the upper bucket bounds, in seconds, of "*_seconds"
// histograms: 1µs to 1min in decades with a 2.5/5 split around the
// millisecond-to-second range the SAT attack lives in.
var timeBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 1, 5, 30, 60,
}

// valueBounds are the upper bucket bounds of value histograms (iteration
// counts, sizes): powers of two up to 2^16.
var valueBounds = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
}

func boundsFor(name string) []float64 {
	if strings.HasSuffix(name, "_seconds") {
		return timeBounds
	}
	return valueBounds
}

type ctxKey struct{}

// NewContext returns a context carrying the registry. A nil registry returns
// ctx unchanged.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the context's registry, or nil when none is installed
// (every Registry method tolerates the nil).
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
