package metrics

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Add("b_total", 2)
	r.Add("a_total", 1)
	r.Add("a_total", 4)
	r.Set("g", 3.5)
	r.Set("g", 7.25)
	r.Observe("iters", 3)
	r.Observe("iters", 100)
	r.ObserveDuration("solve_seconds", 2*time.Millisecond)

	s := r.Snapshot()
	if v, ok := s.Counter("a_total"); !ok || v != 5 {
		t.Errorf("a_total = %d, %v; want 5, true", v, ok)
	}
	if v, ok := s.Gauge("g"); !ok || v != 7.25 {
		t.Errorf("g = %v, %v; want 7.25 (last write wins)", v, ok)
	}
	h, ok := s.Histogram("iters")
	if !ok || h.Count != 2 || h.Sum != 103 {
		t.Fatalf("iters histogram = %+v, %v; want count 2 sum 103", h, ok)
	}
	// 3 lands in the <=4 bucket, 100 in the <=128 bucket of the value bounds.
	if got := h.Buckets[2]; got != 1 {
		t.Errorf("bucket le=4 = %d, want 1", got)
	}
	hs, ok := s.Histogram("solve_seconds")
	if !ok || hs.Count != 1 {
		t.Fatalf("solve_seconds missing")
	}
	if !reflect.DeepEqual(hs.Bounds, timeBounds) {
		t.Errorf("_seconds histogram got value bounds %v", hs.Bounds)
	}
	// Sections are sorted by name.
	if s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Add("c", 1)
	r.Set("g", 1)
	r.Observe("h", 1)
	r.ObserveDuration("h_seconds", time.Second)
	r.Timer("t_seconds")()
	if s := r.Snapshot(); !s.Empty() {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a registry")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("nil context yielded a registry")
	}
	r := New()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("registry did not round-trip through the context")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	r.Add("c_total", 3)
	r.Observe("iters", 2)
	before := r.Snapshot()
	r.Add("c_total", 4)
	r.Add("new_total", 1)
	r.Observe("iters", 5)
	r.Set("g", 9)
	d := r.Snapshot().Diff(before)
	if v, _ := d.Counter("c_total"); v != 4 {
		t.Errorf("diff c_total = %d, want 4", v)
	}
	if v, _ := d.Counter("new_total"); v != 1 {
		t.Errorf("diff new_total = %d, want 1", v)
	}
	h, _ := d.Histogram("iters")
	if h.Count != 1 || h.Sum != 5 {
		t.Errorf("diff iters = count %d sum %v, want 1, 5", h.Count, h.Sum)
	}
	if v, ok := d.Gauge("g"); !ok || v != 9 {
		t.Errorf("diff gauge g = %v, %v; want current value 9", v, ok)
	}
}

func TestDeterministicFiltering(t *testing.T) {
	r := New()
	r.Add("sat_conflicts_total", 10)
	r.Add("parallel_tasks_total", 4)
	r.Set("design_ops", 12)
	r.Observe("satattack_dip_iterations", 6)
	r.ObserveDuration("sat_solve_seconds", time.Millisecond)
	r.ObserveDuration("parallel_queue_wait_seconds", time.Microsecond)

	d := r.Snapshot().Deterministic()
	if len(d.Counters) != 1 || d.Counters[0].Name != "sat_conflicts_total" {
		t.Errorf("deterministic counters = %+v", d.Counters)
	}
	if len(d.Gauges) != 0 {
		t.Errorf("gauges survived Deterministic: %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Name != "satattack_dip_iterations" {
		t.Errorf("deterministic histograms = %+v", d.Histograms)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add("c_total", 1)
	r.Observe("h", 2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if v, ok := back.Counter("c_total"); !ok || v != 1 {
		t.Errorf("round-trip lost c_total: %+v", back)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Add("sat_conflicts_total", 42)
	r.Set("design_ops", 7)
	r.Observe("iters", 3)
	r.Observe("iters", 3)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bindlock_sat_conflicts_total counter",
		"bindlock_sat_conflicts_total 42",
		"# TYPE bindlock_design_ops gauge",
		"bindlock_design_ops 7",
		"# TYPE bindlock_iters histogram",
		`bindlock_iters_bucket{le="4"} 2`,
		`bindlock_iters_bucket{le="+Inf"} 2`,
		"bindlock_iters_sum 6",
		"bindlock_iters_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: every later bucket >= the le="4" one.
	if strings.Contains(out, `bindlock_iters_bucket{le="65536"} 0`) {
		t.Errorf("buckets not accumulated:\n%s", out)
	}
}

func TestPromFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		2:            "2",
	} {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — writers
// on all three metric types plus concurrent snapshotters — so `make race`
// verifies the locking. Final counter totals are asserted exactly.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Add("shared_total", 1)
				r.Set("gauge", float64(g))
				r.Observe("values", float64(i%100))
				r.ObserveDuration("lat_seconds", time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if v, _ := s.Counter("shared_total"); v != goroutines*perG {
		t.Errorf("shared_total = %d, want %d", v, goroutines*perG)
	}
	h, _ := s.Histogram("values")
	if h.Count != goroutines*perG {
		t.Errorf("values count = %d, want %d", h.Count, goroutines*perG)
	}
}
