package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Counter is one snapshotted counter.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Gauge is one snapshotted gauge.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Histogram is one snapshotted histogram. Buckets[i] counts observations with
// value <= Bounds[i]; Buckets[len(Bounds)] is the +Inf overflow bucket.
// Buckets are non-cumulative; the Prometheus exporter accumulates them.
type Histogram struct {
	Name    string    `json:"name"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, each section sorted by
// metric name. Identical registries produce byte-identical serialisations.
type Snapshot struct {
	Counters   []Counter   `json:"counters"`
	Gauges     []Gauge     `json:"gauges"`
	Histograms []Histogram `json:"histograms"`
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Counter returns the named counter's value, or (0, false) when absent.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value, or (0, false) when absent.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram, or (zero, false) when absent.
func (s Snapshot) Histogram(name string) (Histogram, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return Histogram{}, false
}

// Diff returns the change from prev to s: counters and histogram counts
// subtract (metrics absent from prev diff against zero), gauges keep their
// current value. Both snapshots must come from the same registry or at least
// agree on histogram bucket bounds.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{}
	for _, c := range s.Counters {
		pv, _ := prev.Counter(c.Name)
		d.Counters = append(d.Counters, Counter{Name: c.Name, Value: c.Value - pv})
	}
	d.Gauges = append(d.Gauges, s.Gauges...)
	for _, h := range s.Histograms {
		ph, ok := prev.Histogram(h.Name)
		dh := Histogram{
			Name:    h.Name,
			Count:   h.Count,
			Sum:     h.Sum,
			Bounds:  append([]float64(nil), h.Bounds...),
			Buckets: append([]uint64(nil), h.Buckets...),
		}
		if ok {
			dh.Count -= ph.Count
			dh.Sum -= ph.Sum
			for i := range dh.Buckets {
				dh.Buckets[i] -= ph.Buckets[i]
			}
		}
		d.Histograms = append(d.Histograms, dh)
	}
	return d
}

// nondeterministicPrefixes lists metric families Deterministic strips by
// name prefix: "parallel_" (the pool's task shapes depend on the worker count
// by construction), and the robustness layer's environment telemetry —
// "fault_" (injected faults hit only live oracle calls), "retry_" (retry and
// voting attempts depend on which calls the environment failed) and
// "resume_" (checkpoint replay history) — which describes how a run got to
// its result, not the result itself: a checkpoint-resumed attack replays
// recorded answers instead of re-querying, so these counters legitimately
// differ from an uninterrupted run that computed the identical key.
var nondeterministicPrefixes = []string{"parallel_", "fault_", "retry_", "resume_"}

func nondeterministicName(name string) bool {
	for _, p := range nondeterministicPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Deterministic returns the subset of the snapshot the repository's
// determinism guarantee covers: all counters, all non-timing histograms, and
// no gauges. Dropped are "*_seconds" histograms (wall time varies run to
// run), the nondeterministicPrefixes families (worker-pool shapes and the
// fault/retry/resume environment telemetry), and gauges (point-in-time
// values whose last writer is schedule-dependent under parallel sweeps).
// What remains is byte-identical between -j 1 and -j N runs of the same
// computation, and between an uninterrupted run and a checkpoint-resumed one.
func (s Snapshot) Deterministic() Snapshot {
	d := Snapshot{}
	for _, c := range s.Counters {
		if nondeterministicName(c.Name) {
			continue
		}
		d.Counters = append(d.Counters, c)
	}
	for _, h := range s.Histograms {
		if strings.HasSuffix(h.Name, "_seconds") || nondeterministicName(h.Name) {
			continue
		}
		d.Histograms = append(d.Histograms, h)
	}
	return d
}

// WriteJSON serialises the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// promPrefix namespaces every exported metric family.
const promPrefix = "bindlock_"

// WritePrometheus serialises the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count families, all prefixed "bindlock_".
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "# TYPE %s%s counter\n", promPrefix, c.Name)
		fmt.Fprintf(bw, "%s%s %d\n", promPrefix, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s%s gauge\n", promPrefix, g.Name)
		fmt.Fprintf(bw, "%s%s %s\n", promPrefix, g.Name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s%s histogram\n", promPrefix, h.Name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(bw, "%s%s_bucket{le=%q} %d\n", promPrefix, h.Name, promFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s%s_bucket{le=\"+Inf\"} %d\n", promPrefix, h.Name, h.Count)
		fmt.Fprintf(bw, "%s%s_sum %s\n", promPrefix, h.Name, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s%s_count %d\n", promPrefix, h.Name, h.Count)
	}
	return bw.Flush()
}

// promFloat renders a float the way Prometheus expects (no exponent for
// integral values, "+Inf"/"-Inf"/"NaN" specials).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
