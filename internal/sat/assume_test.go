package sat

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// backendsUnderTest returns a fresh instance of every registered backend so
// the assumption contract is checked against each engine, not just CDCL.
func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	out := map[string]Backend{}
	for _, name := range Backends() {
		b, err := NewBackend(name)
		if err != nil {
			t.Fatalf("NewBackend(%q): %v", name, err)
		}
		out[name] = b
	}
	return out
}

func TestSolveAssumingBasic(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			a := s.NewVar()
			b := s.NewVar()
			// a -> b
			s.AddClause(NewLit(a, true), NewLit(b, false))

			sat, err := s.SolveAssuming(context.Background(), NewLit(a, false))
			if err != nil || !sat {
				t.Fatalf("assume a: sat=%v err=%v, want true", sat, err)
			}
			if !s.Value(a) || !s.Value(b) {
				t.Fatalf("model a=%v b=%v, want both true", s.Value(a), s.Value(b))
			}
			if got := s.FailedAssumptions(); got != nil {
				t.Fatalf("FailedAssumptions after SAT = %v, want nil", got)
			}

			// Conflicting assumptions a ∧ ¬b: unsatisfiable under them, but the
			// formula — and the solver — must stay healthy.
			sat, err = s.SolveAssuming(context.Background(), NewLit(a, false), NewLit(b, true))
			if err != nil || sat {
				t.Fatalf("assume a,¬b: sat=%v err=%v, want false nil", sat, err)
			}
			failed := s.FailedAssumptions()
			if len(failed) == 0 {
				t.Fatal("no failed assumptions reported for UNSAT-under-assumptions")
			}
			for _, l := range failed {
				if l != NewLit(a, false) && l != NewLit(b, true) {
					t.Fatalf("failed assumption %v is not a subset of the passed set", l)
				}
			}

			// Assumptions were scoped to the call: the bare formula is still SAT.
			sat, err = s.Solve(context.Background())
			if err != nil || !sat {
				t.Fatalf("solve after failed assumptions: sat=%v err=%v, want true", sat, err)
			}
		})
	}
}

func TestSolveAssumingDoesNotPoisonClauseDB(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			const n = 8
			vars := make([]int, n)
			for i := range vars {
				vars[i] = s.NewVar()
			}
			// Chain v0 -> v1 -> ... -> v7.
			for i := 0; i+1 < n; i++ {
				s.AddClause(NewLit(vars[i], true), NewLit(vars[i+1], false))
			}

			// Assuming v0 ∧ ¬v7 is unsatisfiable; do it repeatedly and verify the
			// solver still answers the satisfiable queries in between. With
			// clause learning this exercises that failed assumptions never enter
			// the learned-clause DB as facts.
			for round := 0; round < 3; round++ {
				sat, err := s.SolveAssuming(context.Background(), NewLit(vars[0], false), NewLit(vars[n-1], true))
				if err != nil || sat {
					t.Fatalf("round %d assume v0,¬v7: sat=%v err=%v, want false nil", round, sat, err)
				}
				sat, err = s.SolveAssuming(context.Background(), NewLit(vars[n-1], true))
				if err != nil || !sat {
					t.Fatalf("round %d assume ¬v7: sat=%v err=%v, want true", round, sat, err)
				}
				if s.Value(vars[0]) {
					t.Fatalf("round %d: v0 true in a model assuming ¬v7 (chain forces ¬v0)", round)
				}
			}
		})
	}
}

// TestSolveAssumingAlreadySatisfied covers the dummy-decision-level path: an
// assumption forced true by propagation before it is installed.
func TestSolveAssumingAlreadySatisfied(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			a := s.NewVar()
			b := s.NewVar()
			s.AddClause(NewLit(a, false)) // unit: a
			s.AddClause(NewLit(a, true), NewLit(b, false))

			sat, err := s.SolveAssuming(context.Background(), NewLit(a, false), NewLit(b, false))
			if err != nil || !sat {
				t.Fatalf("sat=%v err=%v, want true", sat, err)
			}
			// And an assumption contradicting a root-level unit fails cleanly.
			sat, err = s.SolveAssuming(context.Background(), NewLit(a, true))
			if err != nil || sat {
				t.Fatalf("assume ¬a against unit a: sat=%v err=%v, want false nil", sat, err)
			}
			if failed := s.FailedAssumptions(); len(failed) == 0 {
				t.Fatal("no failed assumptions for root-level contradiction")
			}
			sat, err = s.Solve(context.Background())
			if err != nil || !sat {
				t.Fatalf("formula poisoned by root-contradicting assumption: sat=%v err=%v", sat, err)
			}
		})
	}
}

func TestSolveAssumingUnknownVariable(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			v := s.NewVar()
			s.AddClause(NewLit(v, false))
			if _, err := s.SolveAssuming(context.Background(), NewLit(v+7, false)); !errors.Is(err, ErrUnknownVariable) {
				t.Fatalf("out-of-range assumption: err=%v, want ErrUnknownVariable", err)
			}
			if _, err := s.SolveAssuming(context.Background(), LitUndef); !errors.Is(err, ErrUnknownVariable) {
				t.Fatalf("LitUndef assumption: err=%v, want ErrUnknownVariable", err)
			}
			// The rejection is not sticky: a clean call still works.
			sat, err := s.SolveAssuming(context.Background(), NewLit(v, false))
			if err != nil || !sat {
				t.Fatalf("after rejected assumption: sat=%v err=%v, want true", sat, err)
			}
		})
	}
}

// TestSolveAssumingPoisonedSolver pins the precedence between the sticky
// AddClause boundary error and assumption handling: a poisoned solver
// reports its sticky error from SolveAssuming just as it does from Solve.
func TestSolveAssumingPoisonedSolver(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			v := s.NewVar()
			s.AddClause(NewLit(v, false), NewLit(v+3, false)) // unknown var: sticky error
			if s.Err() == nil {
				t.Fatal("AddClause with unknown variable did not record a sticky error")
			}
			if _, err := s.SolveAssuming(context.Background(), NewLit(v, false)); !errors.Is(err, ErrUnknownVariable) {
				t.Fatalf("poisoned solver: err=%v, want sticky ErrUnknownVariable", err)
			}
		})
	}
}

func TestSolveAssumingOnUNSATFormula(t *testing.T) {
	for name, s := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			v := s.NewVar()
			s.AddClause(NewLit(v, false))
			s.AddClause(NewLit(v, true))
			sat, err := s.SolveAssuming(context.Background(), NewLit(v, false))
			if err != nil || sat {
				t.Fatalf("UNSAT formula under assumptions: sat=%v err=%v, want false nil", sat, err)
			}
		})
	}
}

// TestSolveAssumingClauseRetention checks learned-clause reuse across calls on
// the CDCL backend: solving the same sub-problem twice under assumptions must
// not repeat the first call's conflicts from scratch.
func TestSolveAssumingClauseRetention(t *testing.T) {
	s := NewSolver()
	rng := rand.New(rand.NewSource(7))
	const n = 60
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	sel := s.NewVar() // selector guarding a hard sub-formula
	// Random 3-SAT at a hard-ish ratio, every clause guarded by ¬sel.
	for i := 0; i < 4*n; i++ {
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		s.AddClause(NewLit(sel, true), NewLit(vars[a], rng.Intn(2) == 0), NewLit(vars[b], rng.Intn(2) == 0), NewLit(vars[c], rng.Intn(2) == 0))
	}

	if _, err := s.SolveAssuming(context.Background(), NewLit(sel, false)); err != nil {
		t.Fatalf("first solve: %v", err)
	}
	first := s.Stats().Conflicts
	if _, err := s.SolveAssuming(context.Background(), NewLit(sel, false)); err != nil {
		t.Fatalf("second solve: %v", err)
	}
	second := s.Stats().Conflicts - first
	if first > 0 && second >= first {
		t.Fatalf("second identical query cost %d conflicts, first cost %d — learned clauses not retained", second, first)
	}
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	want := map[string]bool{"cdcl": false, "dpll": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := BackendFactory(""); err != nil {
		t.Fatalf("empty name should resolve to the default backend: %v", err)
	}
	if _, err := BackendFactory("no-such-engine"); err == nil {
		t.Fatal("unknown backend name resolved")
	}
	if err := RegisterBackend("", func() Backend { return NewSolver() }); err == nil {
		t.Fatal("empty backend name registered")
	}
	if err := RegisterBackend("x-nil", nil); err == nil {
		t.Fatal("nil factory registered")
	}
	if err := RegisterBackend("cdcl", func() Backend { return NewSolver() }); err == nil {
		t.Fatal("duplicate backend name registered")
	}
}

// TestDPLLAgainstBruteForce cross-checks the reference engine on random small
// formulas, with and without assumptions.
func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(5)
		d := NewDPLL()
		for i := 0; i < n; i++ {
			d.NewVar()
		}
		var clauses [][]Lit
		for i := 0; i < 3+rng.Intn(4*n); i++ {
			var c []Lit
			for j := 0; j < 1+rng.Intn(3); j++ {
				c = append(c, NewLit(rng.Intn(n), rng.Intn(2) == 0))
			}
			d.AddClause(append([]Lit(nil), c...)...)
			clauses = append(clauses, c)
		}
		var assumps []Lit
		for j := 0; j < rng.Intn(3); j++ {
			assumps = append(assumps, NewLit(rng.Intn(n), rng.Intn(2) == 0))
		}
		ref := clauses
		for _, a := range assumps {
			ref = append(ref, []Lit{a})
		}
		want := bruteForce(n, ref)
		got, err := d.SolveAssuming(context.Background(), assumps...)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: dpll=%v bruteforce=%v (clauses %v assumps %v)", iter, got, want, clauses, assumps)
		}
		if got {
			for _, c := range ref {
				sat := false
				for _, l := range c {
					if d.Value(l.Var()) != l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates %v", iter, c)
				}
			}
		}
	}
}
