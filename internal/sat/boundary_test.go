package sat

import (
	"context"
	"errors"
	"strings"
	"testing"

	"bindlock/internal/fault"
)

// TestAddClauseUnknownVariable: an out-of-range literal must not crash or
// poison the answer as UNSAT — it records a sticky typed error that the next
// Solve returns.
func TestAddClauseUnknownVariable(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	s.AddClause(NewLit(v, false), NewLit(7, false))
	if !errors.Is(s.Err(), ErrUnknownVariable) {
		t.Fatalf("Err() = %v, want ErrUnknownVariable", s.Err())
	}
	// Poisoned: later clauses are dropped, Solve refuses with the error
	// rather than reporting UNSAT for a formula it never saw.
	s.AddClause(NewLit(v, true))
	ok, err := s.Solve(context.Background())
	if !errors.Is(err, ErrUnknownVariable) {
		t.Fatalf("Solve err = %v, want ErrUnknownVariable", err)
	}
	if ok {
		t.Error("poisoned Solve must not report SAT")
	}
	if s.NumClauses() != 0 {
		t.Errorf("poisoned solver attached %d clauses, want 0", s.NumClauses())
	}
}

func TestValueErr(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	if _, err := s.ValueErr(v); !errors.Is(err, ErrNoModel) {
		t.Fatalf("pre-solve ValueErr err = %v, want ErrNoModel", err)
	}
	s.AddClause(NewLit(v, false))
	if ok, err := s.Solve(context.Background()); !ok || err != nil {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	got, err := s.ValueErr(v)
	if err != nil || !got {
		t.Errorf("ValueErr(%d) = %v, %v; want true, nil", v, got, err)
	}
	if _, err := s.ValueErr(99); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("out-of-range ValueErr err = %v, want ErrUnknownVariable", err)
	}
	if _, err := s.ValueErr(-1); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("negative ValueErr err = %v, want ErrUnknownVariable", err)
	}
}

// TestSolveFaultHook: a context-carried injector configured to fail
// sat.solve every call makes Solve return the injected error.
func TestSolveFaultHook(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	s.AddClause(NewLit(v, false))
	ctx := fault.NewContext(context.Background(),
		fault.New(fault.Plan{FailEvery: map[string]uint64{"sat.solve": 1}}))
	if _, err := s.Solve(ctx); !fault.IsInjected(err) {
		t.Fatalf("Solve err = %v, want injected fault", err)
	}
	// The solver is untouched: a clean context solves normally.
	if ok, err := s.Solve(context.Background()); !ok || err != nil {
		t.Fatalf("post-fault Solve = %v, %v", ok, err)
	}
}

func TestParseDIMACSVarCap(t *testing.T) {
	_, err := ParseDIMACS(strings.NewReader("p cnf 999999999 1\n1 0\n"))
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized header err = %v, want variable-limit rejection", err)
	}
	if _, err := ParseDIMACS(strings.NewReader("p cnf 2 1\np cnf 2 1\n1 0\n")); err == nil {
		t.Fatal("duplicate problem line must be rejected")
	}
}
