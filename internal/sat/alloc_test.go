package sat

import (
	"testing"
)

// TestPropagateSteadyStateAllocs gates the arena layout's core promise: once
// the watch lists, trail and heap have reached capacity, a full
// decide/propagate/backtrack cycle touches only pre-allocated storage. A
// regression here means the hot loop started allocating per propagation —
// exactly the failure mode the flat arena replaced the slice-of-slices
// layout to eliminate.
//
// The formula is a long implication chain x0 -> x1 -> ... -> x(n-1): one
// decision floods the whole trail through propagate, exercising the watcher
// scan, blocker checks and enqueue for every variable, and cancelUntil then
// unwinds all of it.
func TestPropagateSteadyStateAllocs(t *testing.T) {
	s := NewSolver()
	const n = 128
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		if !s.AddClause(NewLit(i, true), NewLit(i+1, false)) {
			t.Fatal("chain clause rejected")
		}
	}

	cycle := func() {
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		if !s.enqueue(NewLit(0, false), refUndef) {
			t.Fatal("decision enqueue failed")
		}
		if confl := s.propagate(); confl != refUndef {
			t.Fatalf("implication chain conflicted at ref %d", confl)
		}
		if len(s.trail) != n {
			t.Fatalf("propagate implied %d of %d variables", len(s.trail), n)
		}
		s.cancelUntil(0)
	}

	// One warm-up cycle grows every slice (trail, watch lists, heap) to its
	// steady-state capacity; everything after must reuse that storage.
	cycle()
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("decide/propagate/backtrack cycle allocates %.1f times per run, want 0", avg)
	}
}
