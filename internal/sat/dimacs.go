package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxDIMACSVars bounds the variable count ParseDIMACS accepts. The header's
// declared count drives an upfront per-variable allocation, so an adversarial
// one-line file ("p cnf 999999999 1") could otherwise demand gigabytes before
// a single clause is read.
const MaxDIMACSVars = 1 << 20

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Variables are numbered 1..n externally and mapped to 0..n-1 internally.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := NewSolver()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	declared := -1
	var clause []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if declared >= 0 {
				return nil, fmt.Errorf("sat: duplicate problem line %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			if n > MaxDIMACSVars {
				return nil, fmt.Errorf("sat: %d variables exceeds the %d limit", n, MaxDIMACSVars)
			}
			declared = n
			for i := 0; i < n; i++ {
				s.NewVar()
			}
			continue
		}
		if declared < 0 {
			return nil, fmt.Errorf("sat: clause before problem line")
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			av := v
			if av < 0 {
				av = -av
			}
			if av > declared {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", v, declared)
			}
			clause = append(clause, NewLit(av-1, v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		s.AddClause(clause...)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteDIMACS serialises clauses in DIMACS format. Learned clauses are
// excluded.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), s.problemCount)
	for r := 0; r < len(s.arena); {
		hdr := uint32(s.arena[r])
		n := int(hdr >> hdrSizeShift)
		if hdr&hdrLearned == 0 {
			for _, l := range s.arena[r+clauseHeader : r+clauseHeader+n] {
				if l.Sign() {
					fmt.Fprintf(bw, "-%d ", l.Var()+1)
				} else {
					fmt.Fprintf(bw, "%d ", l.Var()+1)
				}
			}
			fmt.Fprintln(bw, "0")
		}
		r += clauseHeader + n
	}
	return bw.Flush()
}
