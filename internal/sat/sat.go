// Package sat is a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver built on the standard MiniSat architecture: two
// watched literals per clause, VSIDS variable activities, phase saving,
// first-UIP conflict analysis with non-chronological backjumping, and Luby
// restarts.
//
// The clause database is a single flat arena ([]Lit) addressed by packed
// ClauseRef offsets, and every watch-list entry carries a blocker literal, so
// the propagation hot loop usually decides a clause is satisfied from the
// watcher alone without touching clause memory. The pre-arena slice-of-slices
// engine survives as the "cdcl-slices" backend (slices.go) for differential
// testing and honest before/after benchmarking.
//
// It is the engine behind the oracle-guided SAT attack of Subramanyan et al.
// [10] implemented in internal/satattack, which the paper uses as the
// benchmark threat model for logic locking (Sec. II-A).
package sat

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"bindlock/internal/fault"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/progress"
)

// Lit is a literal: variable index (0-based) shifted left once, with the low
// bit set for negation.
type Lit uint32

// LitUndef is the sentinel "no literal".
const LitUndef Lit = ^Lit(0)

// NewLit returns the literal for variable v (0-based), negated if neg.
func NewLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lifted boolean values
const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// ErrBudget is returned by Solve when the conflict budget is exhausted
// before a result is reached.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// ErrUnknownVariable reports a literal or variable index outside the
// solver's allocated range at an exported entry point (AddClause, ValueErr).
var ErrUnknownVariable = errors.New("sat: unknown variable")

// ErrNoModel is returned by ValueErr when no satisfying model is available
// (Solve has not returned true since the last clause was added).
var ErrNoModel = errors.New("sat: no model available")

// ClauseRef is a packed reference to a clause: the offset of its header word
// in the solver's arena. refUndef marks "no clause" (decisions, external
// facts).
type ClauseRef int32

const refUndef ClauseRef = -1

// Arena clause layout, back to back in one []Lit:
//
//	arena[ref+0]  header: size<<hdrSizeShift | flags
//	arena[ref+1]  activity (float32 bits; meaningful for learned clauses)
//	arena[ref+2…] the literals; positions 0 and 1 are the watched pair
//
// The header flags mark learned clauses and clauses condemned by reduceDB;
// a removed clause stays in place only until the same reduceDB call's sweep
// compacts the arena over it.
const (
	hdrRemoved   = 1 << 0
	hdrLearned   = 1 << 1
	hdrSizeShift = 2
	clauseHeader = 2 // words before the literals
)

// watcher is one packed watch-list entry: the watching clause plus a blocker
// literal — some literal of the clause (usually the other watched one) whose
// truth proves the clause satisfied without loading it from the arena.
type watcher struct {
	ref     ClauseRef
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call NewSolver.
type Solver struct {
	arena        []Lit       // flat clause storage; see the layout above
	clauseCount  int         // clauses ever attached (NumClauses)
	problemCount int         // non-learned clauses attached
	learnedTotal int64       // learned clauses ever attached
	learnts      int         // live learned clause count
	learntRefs   []ClauseRef // live learned clauses, attach order
	claInc       float64

	watches [][]watcher // per literal: watchers of clauses watching it

	assign   []int8      // per var
	level    []int32     // per var: decision level of assignment
	reason   []ClauseRef // per var: clause that implied it, or refUndef
	polarity []bool      // per var: saved phase (last assigned sign)

	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap

	ok     bool  // false once a top-level conflict is derived
	err    error // sticky: first AddClause boundary violation; Solve returns it
	failed []Lit // failed assumptions of the last unsatisfiable SolveAssuming

	// MaxConflicts bounds the search effort of each solve call; 0 means
	// DefaultMaxConflicts. The budget is per call: a reused solver does not
	// start later calls part-exhausted by earlier ones.
	MaxConflicts int64

	// statistics
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64

	model     []bool
	seen      []bool // scratch for conflict analysis
	learntBuf []Lit  // scratch for analyze (attached clauses are arena copies)
	clauseBuf []Lit  // scratch for AddClause simplification
}

// DefaultMaxConflicts is the default search budget.
const DefaultMaxConflicts = 20_000_000

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of clauses attached so far — problem plus
// learned, including clauses since deleted by reduceDB (the count only grows).
func (s *Solver) NumClauses() int { return s.clauseCount }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, refUndef)
	s.polarity = append(s.polarity, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

// clauseLits returns the clause's literal slice, aliasing the arena.
func (s *Solver) clauseLits(ref ClauseRef) []Lit {
	n := int(uint32(s.arena[ref]) >> hdrSizeShift)
	return s.arena[int(ref)+clauseHeader : int(ref)+clauseHeader+n]
}

func (s *Solver) clauseAct(ref ClauseRef) float64 {
	return float64(math.Float32frombits(uint32(s.arena[ref+1])))
}

func (s *Solver) setClauseAct(ref ClauseRef, act float32) {
	s.arena[ref+1] = Lit(math.Float32bits(act))
}

func (s *Solver) valueLit(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

// decisionLevel returns the current decision level.
func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// enqueue assigns literal l with the given reason clause (refUndef for
// decisions and external facts). It returns false if l is already false.
func (s *Solver) enqueue(l Lit, from ClauseRef) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.polarity[v] = l.Sign()
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// AddClause adds a clause over the given literals. It must be called at the
// top level (between Solve calls). It returns false if the formula became
// trivially unsatisfiable. A literal referencing an unallocated variable
// records a sticky ErrUnknownVariable on the solver — the clause is dropped,
// further clauses are ignored, and the next Solve returns the error (not
// UNSAT: a malformed encoding proves nothing about satisfiability). Calling
// AddClause during search remains a panic; that is an internal-invariant
// violation only solver-embedding code can commit.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.err != nil {
		return true // poisoned: clause dropped, Solve surfaces the error
	}
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Simplify: sort out duplicates, satisfied clauses, false literals. The
	// scan over the accepted prefix replaces the old map-based dedup —
	// encoder clauses are short, and the scratch buffer keeps the encoding
	// phase allocation-free.
	clause := s.clauseBuf[:0]
outer:
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() || l.Var() < 0 {
			s.err = fmt.Errorf("%w: literal %v (have %d vars)", ErrUnknownVariable, l, s.NumVars())
			return true
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // clause already satisfied
		case lFalse:
			continue
		}
		for _, e := range clause {
			if e == l {
				continue outer // duplicate
			}
			if e == l.Neg() {
				return true // tautological
			}
		}
		clause = append(clause, l)
	}
	s.clauseBuf = clause
	switch len(clause) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(clause[0], refUndef) {
			s.ok = false
			return false
		}
		if s.propagate() != refUndef {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(clause, false)
	return true
}

// attach copies the clause into the arena and registers its two watchers,
// each blocking on the other watched literal.
func (s *Solver) attach(lits []Lit, learned bool) ClauseRef {
	ref := ClauseRef(len(s.arena))
	hdr := uint32(len(lits)) << hdrSizeShift
	if learned {
		hdr |= hdrLearned
	}
	s.arena = append(s.arena, Lit(hdr), 0)
	s.arena = append(s.arena, lits...)
	s.clauseCount++
	if learned {
		s.learnedTotal++
		s.learnts++
		s.learntRefs = append(s.learntRefs, ref)
	} else {
		s.problemCount++
	}
	s.watches[lits[0]] = append(s.watches[lits[0]], watcher{ref, lits[1]})
	s.watches[lits[1]] = append(s.watches[lits[1]], watcher{ref, lits[0]})
	return ref
}

// propagate performs unit propagation over the watched literals. It returns
// the reference of a conflicting clause, or refUndef.
//
// The blocker check is the hot-path point of the arena layout: a watcher
// whose blocker literal is true proves its clause satisfied without loading
// the clause, so the common case costs one assignment-array read. Only when
// the blocker misses is the clause pulled from the arena, normalised (false
// literal to position 1), and either re-blocked on the other watch, moved to
// a new watch, or recognised as unit/conflicting. reduceDB sweeps condemned
// clauses out of every watch list before returning, so each watcher
// reference here is live by invariant.
func (s *Solver) propagate() ClauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			base := int(w.ref)
			n := int(uint32(s.arena[base]) >> hdrSizeShift)
			lits := s.arena[base+clauseHeader : base+clauseHeader+n]
			// Normalise: the false literal sits at position 1.
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			other := lits[0]
			// Satisfied by the other watch? Keep, re-blocking on it.
			if other != w.blocker && s.valueLit(other) == lTrue {
				kept = append(kept, watcher{w.ref, other})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < n; k++ {
				if s.valueLit(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1]] = append(s.watches[lits[1]], watcher{w.ref, other})
					found = true
					break
				}
			}
			if found {
				continue // watch moved: drop from this list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.ref, other})
			if !s.enqueue(other, w.ref) {
				// Conflict: restore the remaining watches and bail.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falseLit] = kept
				s.qhead = len(s.trail)
				return w.ref
			}
		}
		s.watches[falseLit] = kept
	}
	return refUndef
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = refUndef
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learned clause
// (asserting literal first) and the backjump level. The returned slice is a
// reused scratch buffer: the caller must copy it (attach does) before the
// next conflict.
func (s *Solver) analyze(confl ClauseRef) ([]Lit, int32) {
	learnt := append(s.learntBuf[:0], LitUndef)
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1
	cur := s.decisionLevel()

	for {
		lits := s.clauseLits(confl)
		s.bumpClause(confl)
		start := 0
		if p != LitUndef {
			start = 1 // lits[0] is the implied literal p
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= cur {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select the next trail literal to resolve on.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Clear remaining marks.
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}

	// Backjump level: highest level among the non-asserting literals.
	back := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		back = s.level[learnt[1].Var()]
	}
	s.learntBuf = learnt
	return learnt, back
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

const (
	varDecay = 1.0 / 0.95
	claDecay = 1.0 / 0.999
)

// bumpClause raises a learned clause's activity (problem clauses carry no
// activity: they are never removed). Activities are float32s stored inline
// in the arena header; the ordering reduceDB needs survives the narrower
// precision, and the usual 1e20 rescale keeps them in range.
func (s *Solver) bumpClause(ref ClauseRef) {
	if uint32(s.arena[ref])&hdrLearned == 0 {
		return
	}
	act := float32(s.clauseAct(ref) + s.claInc)
	s.setClauseAct(ref, act)
	if act > 1e20 {
		for _, lr := range s.learntRefs {
			s.setClauseAct(lr, float32(s.clauseAct(lr)*1e-20))
		}
		s.claInc *= 1e-20
	}
}

// locked reports whether the clause is the reason of a current assignment
// and therefore must not be deleted.
func (s *Solver) locked(ref ClauseRef) bool {
	v := s.clauseLits(ref)[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == ref
}

// reduceDB deletes roughly half of the live learned clauses, lowest activity
// first, keeping binary and locked clauses. Deletion is mark-and-sweep: the
// condemned clauses are flagged in their headers, then sweep drops their
// watchers from every watch list and compacts the arena over their storage —
// so no stale watcher survives the call and removed clause bodies are
// reclaimed rather than leaked.
func (s *Solver) reduceDB() {
	var cands []reduceCand
	for _, ref := range s.learntRefs {
		if len(s.clauseLits(ref)) <= 2 || s.locked(ref) {
			continue
		}
		cands = append(cands, reduceCand{int32(ref), s.clauseAct(ref)})
	}
	if len(cands) < 2 {
		return
	}
	// Remove the lower-activity half.
	reduceOrder(cands)
	for _, c := range cands[:len(cands)/2] {
		ref := ClauseRef(c.idx)
		s.arena[ref] |= hdrRemoved
		s.learnts--
	}
	s.sweep()
}

// sweep compacts the arena over clauses marked removed and rewrites every
// live reference: watch lists (dropping watchers of removed clauses — the
// watch-hygiene point of the layout), assignment reasons (reasons are locked
// and so never removed), and the learned-clause list.
func (s *Solver) sweep() {
	remap := make(map[ClauseRef]ClauseRef, s.clauseCount)
	w := 0
	for r := 0; r < len(s.arena); {
		hdr := uint32(s.arena[r])
		tot := clauseHeader + int(hdr>>hdrSizeShift)
		if hdr&hdrRemoved == 0 {
			remap[ClauseRef(r)] = ClauseRef(w)
			copy(s.arena[w:w+tot], s.arena[r:r+tot])
			w += tot
		}
		r += tot
	}
	s.arena = s.arena[:w]
	for li := range s.watches {
		ws := s.watches[li]
		kept := ws[:0]
		for _, wt := range ws {
			if nr, ok := remap[wt.ref]; ok {
				wt.ref = nr
				kept = append(kept, wt)
			}
		}
		s.watches[li] = kept
	}
	for v := range s.reason {
		if s.reason[v] != refUndef {
			s.reason[v] = remap[s.reason[v]]
		}
	}
	lr := s.learntRefs[:0]
	for _, ref := range s.learntRefs {
		if nr, ok := remap[ref]; ok {
			lr = append(lr, nr)
		}
	}
	s.learntRefs = lr
}

// reduceCand is a clause-deletion candidate considered by reduceDB.
type reduceCand struct {
	idx int32
	act float64
}

// reduceOrder sorts deletion candidates into ascending activity, breaking
// activity ties by clause reference (attach order): a total order, so which
// clauses fall in the deleted half depends only on the inputs, not on the
// sort implementation.
func reduceOrder(cands []reduceCand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].act != cands[j].act {
			return cands[i].act < cands[j].act
		}
		return cands[i].idx < cands[j].idx
	})
}

// pickBranch selects the unassigned variable with highest activity.
func (s *Solver) pickBranch() int {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby computes term x (0-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's formulation).
func luby(x int64) int64 {
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Stats is a snapshot of the solver's search counters — the partial result
// an interrupted Solve carries.
type Stats struct {
	Conflicts, Decisions, Propagations, Restarts int64
}

// Stats snapshots the solver's search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Restarts:     s.Restarts,
	}
}

// SetMaxConflicts bounds each subsequent solve call's conflict budget
// (0: DefaultMaxConflicts). It is the Backend form of the MaxConflicts field.
func (s *Solver) SetMaxConflicts(n int64) { s.MaxConflicts = n }

// ctxCheckInterval bounds how many conflicts/decisions may pass between
// cancellation checks; at CDCL step rates this keeps cancellation latency
// well under the ~100ms promptness target.
const ctxCheckInterval = 2048

// Solve searches for a satisfying assignment. It returns (true, nil) with a
// model available via Value, (false, nil) if the formula is unsatisfiable,
// or (false, err) when interrupted: err wraps interrupt.ErrBudgetExceeded
// (and ErrBudget) when the conflict budget ran out, or classifies ctx.Err()
// when the context was cancelled or its deadline expired. Either way the
// error carries a Stats snapshot as partial result. Cancellation is checked
// at restart boundaries and every ctxCheckInterval conflicts/decisions.
func (s *Solver) Solve(ctx context.Context) (bool, error) {
	return s.SolveAssuming(ctx)
}

// SolveAssuming is Solve under temporary assumption literals, the MiniSat
// incremental interface. Assumptions are installed as the first decisions of
// the search (one decision level each), never as clauses: everything the
// call learns is derived by resolution from the clause database alone and
// therefore stays valid for later calls with different assumptions, while
// the assumptions themselves are retracted on return. (false, nil) with
// assumptions means the clause set is unsatisfiable together with them;
// FailedAssumptions then reports a responsible subset, the clause database
// is unpoisoned, and the solver remains usable. Only a conflict at decision
// level zero — below every assumption — marks the formula itself
// unsatisfiable.
func (s *Solver) SolveAssuming(ctx context.Context, assumps ...Lit) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.failed = nil
	if m := metrics.FromContext(ctx); m != nil {
		// Solver counters are cumulative across Solve calls on a reused
		// solver (the attack loop re-solves one growing formula), so the
		// registry records per-call deltas.
		stop := m.Timer("sat_solve_seconds")
		before := s.Stats()
		learnedBefore := s.learnedTotal
		defer func() {
			stop()
			after := s.Stats()
			m.Add("sat_solve_total", 1)
			m.Add("sat_conflicts_total", after.Conflicts-before.Conflicts)
			m.Add("sat_decisions_total", after.Decisions-before.Decisions)
			m.Add("sat_propagations_total", after.Propagations-before.Propagations)
			m.Add("sat_restarts_total", after.Restarts-before.Restarts)
			m.Add("sat_learned_clauses_total", s.learnedTotal-learnedBefore)
		}()
	}
	if err := fault.Hit(ctx, "sat.solve"); err != nil {
		return false, fmt.Errorf("sat: solve: %w", err)
	}
	if s.err != nil {
		return false, s.err
	}
	if !s.ok {
		return false, nil
	}
	for _, a := range assumps {
		if a == LitUndef || a.Var() < 0 || a.Var() >= s.NumVars() {
			return false, fmt.Errorf("%w: assumption %v (have %d vars)", ErrUnknownVariable, a, s.NumVars())
		}
	}
	defer s.cancelUntil(0)
	if s.propagate() != refUndef {
		s.ok = false
		return false, nil
	}

	budget := s.MaxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	// The budget is per call: measure conflicts against this call's start,
	// so a warm solver reused across an attack's iterations is not charged
	// for earlier calls' work.
	budgetBase := s.Conflicts
	hook := progress.FromContext(ctx)
	var restartN int64
	const restartBase = 100
	maxLearnts := s.problemCount/3 + 1000
	sinceCheck := 0

	for {
		if err := interrupt.Check(ctx, "sat: solve", s.Stats()); err != nil {
			return false, err
		}
		progress.Emit(hook, progress.Event{
			Kind: progress.Step, Phase: "solve",
			Conflicts: s.Conflicts, Decisions: s.Decisions,
		})
		restartBudget := luby(restartN) * restartBase
		restartN++
		s.Restarts++
		conflicts := int64(0)
		for {
			if sinceCheck++; sinceCheck >= ctxCheckInterval {
				sinceCheck = 0
				if err := interrupt.Check(ctx, "sat: solve", s.Stats()); err != nil {
					return false, err
				}
			}
			confl := s.propagate()
			if confl != refUndef {
				s.Conflicts++
				conflicts++
				if s.decisionLevel() == 0 {
					s.ok = false
					return false, nil
				}
				learnt, back := s.analyze(confl)
				s.cancelUntil(back)
				if len(learnt) == 1 {
					if !s.enqueue(learnt[0], refUndef) {
						s.ok = false
						return false, nil
					}
				} else {
					ref := s.attach(learnt, true)
					s.bumpClause(ref)
					s.enqueue(learnt[0], ref)
				}
				s.varInc *= varDecay
				s.claInc *= claDecay
				if s.learnts > maxLearnts {
					s.reduceDB()
					maxLearnts += maxLearnts / 10
				}
				if s.Conflicts-budgetBase >= budget {
					return false, interrupt.Budget("sat: solve", ErrBudget, s.Stats())
				}
				continue
			}
			if conflicts >= restartBudget {
				s.cancelUntil(0)
				break // restart
			}
			// Extend the assumption prefix first: assumption i is the
			// decision of level i+1. An assumption already implied true
			// opens a dummy level (keeping the level-per-assumption
			// invariant); one implied false is a final conflict — the
			// assumptions are jointly unsatisfiable with the clause set,
			// which says nothing about the clause set alone.
			next := LitUndef
			for next == LitUndef && int(s.decisionLevel()) < len(assumps) {
				switch p := assumps[s.decisionLevel()]; s.valueLit(p) {
				case lTrue:
					s.trailLim = append(s.trailLim, int32(len(s.trail)))
				case lFalse:
					s.failed = s.analyzeFinal(p)
					return false, nil
				default:
					next = p
				}
			}
			if next == LitUndef {
				v := s.pickBranch()
				if v == -1 {
					// All variables assigned: SAT.
					s.model = make([]bool, s.NumVars())
					for i, a := range s.assign {
						s.model[i] = a == lTrue
					}
					return true, nil
				}
				s.Decisions++
				next = NewLit(v, s.polarity[v])
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.enqueue(next, refUndef)
		}
	}
}

// analyzeFinal computes the failed-assumption set once assumption p is found
// false while the trail holds only assumption decisions and their
// consequences. Walking the trail backwards from the top, it expands implied
// literals through their reason clauses and collects the assumption
// decisions reached — MiniSat's final-conflict analysis. The result is the
// subset of the passed assumptions (in their original polarity, p included)
// that is jointly unsatisfiable with the clause set. Nothing is learned and
// nothing enters the clause database: the "conflict" involves the
// assumptions, which are scoped to this call, so recording any of it as a
// clause would poison later calls.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out // p is falsified by the formula alone at the root
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == refUndef {
			// A decision: at this point of the search every decision is an
			// assumption, recorded on the trail in its passed polarity.
			if s.level[v] > 0 {
				out = append(out, s.trail[i])
			}
		} else {
			// Implied: charge the literals of its reason clause (lits[0]
			// is the implied literal itself).
			for _, q := range s.clauseLits(s.reason[v])[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return out
}

// FailedAssumptions returns the failed-assumption subset computed by the
// most recent SolveAssuming call that returned (false, nil) under
// assumptions, in the polarity they were passed. It returns nil after any
// other outcome — a satisfiable call, a formula-level UNSAT, or an error.
func (s *Solver) FailedAssumptions() []Lit { return s.failed }

// Value returns variable v's value in the most recent model. It panics if no
// model is available; hot loops that have just seen Solve return true may use
// it unconditionally. Boundary code should prefer ValueErr.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v]
}

// ValueErr is the non-panicking form of Value for exported boundaries: it
// returns ErrNoModel when no model is available and ErrUnknownVariable when
// v is out of range.
func (s *Solver) ValueErr(v int) (bool, error) {
	if s.model == nil {
		return false, ErrNoModel
	}
	if v < 0 || v >= len(s.model) {
		return false, fmt.Errorf("%w: variable %d (model has %d)", ErrUnknownVariable, v, len(s.model))
	}
	return s.model[v], nil
}

// Err returns the sticky boundary error recorded by AddClause, or nil.
func (s *Solver) Err() error { return s.err }

// varHeap is an indexed max-heap over variable activities.
type varHeap struct {
	act  *[]float64
	heap []int
	pos  []int // var -> heap index, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap { return &varHeap{act: act} }

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v int) {
	for v >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
	}
}
