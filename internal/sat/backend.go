package sat

// This file defines the solver seam of the attack stack. Everything above
// the CNF layer — the Tseitin encoder, the SAT attack's miter loop, the
// facade and the serving layer — programs against Backend, not against the
// concrete CDCL struct, so alternative engines (the bundled DPLL reference
// solver, or a future external solver binding) plug in behind a name instead
// of forking the attack loop. Named construction matters beyond dependency
// injection: the server folds the backend name into its cache fingerprints,
// and attack checkpoints record it, so results computed by one engine are
// never served or resumed under another.

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Backend is the solver interface the CNF and attack layers program against.
// Implementations must be deterministic: the same sequence of NewVar /
// AddClause / Solve / SolveAssuming calls yields the same models, the same
// failed-assumption sets and the same Stats, which is what the repository's
// bit-identical-results guarantee rests on.
type Backend interface {
	// NewVar allocates a fresh variable and returns its index.
	NewVar() int
	// AddClause adds a clause at the top level (between solve calls). It
	// returns false if the formula became trivially unsatisfiable. A literal
	// over an unallocated variable records a sticky error surfaced by the
	// next solve call (see Err).
	AddClause(lits ...Lit) bool
	// Solve searches for a model of the clause set.
	Solve(ctx context.Context) (bool, error)
	// SolveAssuming searches for a model under temporary assumption
	// literals. Assumptions act as scoped decisions, not clauses: they are
	// retracted when the call returns, and anything learned during the call
	// remains valid for later calls. (false, nil) under assumptions means
	// unsatisfiable with them; FailedAssumptions then reports a subset of
	// the assumptions responsible, and the solver stays usable.
	SolveAssuming(ctx context.Context, assumps ...Lit) (bool, error)
	// FailedAssumptions returns the failed-assumption subset of the most
	// recent SolveAssuming call that returned (false, nil), in the polarity
	// the assumptions were passed; nil after any other outcome.
	FailedAssumptions() []Lit
	// Value returns variable v's value in the most recent model; it may
	// panic without one. ValueErr is the non-panicking boundary form.
	Value(v int) bool
	ValueErr(v int) (bool, error)
	// Err returns the sticky boundary error recorded by AddClause, or nil.
	Err() error
	// Stats snapshots the search counters.
	Stats() Stats
	// NumVars and NumClauses report formula size for telemetry.
	NumVars() int
	NumClauses() int
	// SetMaxConflicts bounds the search effort of each subsequent solve
	// call (0: the backend default). The budget is per call, not
	// cumulative, so a long-lived solver does not start later calls
	// part-exhausted.
	SetMaxConflicts(n int64)
}

// Factory constructs a fresh Backend. The attack layer takes factories, not
// instances, because one attack builds several solvers (miter and key
// extraction) that must come from the same engine.
type Factory func() Backend

// DefaultBackend is the backend name used when none is requested.
const DefaultBackend = "cdcl"

var (
	backendMu  sync.RWMutex
	backendReg = map[string]Factory{}
)

func init() {
	MustRegisterBackend("cdcl", func() Backend { return NewSolver() })
	MustRegisterBackend("dpll", func() Backend { return NewDPLL() })
}

// RegisterBackend makes a named backend available to BackendFactory. It
// fails on an empty name, a nil factory, or a name already taken — silently
// replacing an engine would let cached results and checkpoints recorded
// under the name disagree with fresh runs.
func RegisterBackend(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sat: backend name is empty")
	}
	if f == nil {
		return fmt.Errorf("sat: backend %q has a nil factory", name)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendReg[name]; dup {
		return fmt.Errorf("sat: backend %q already registered", name)
	}
	backendReg[name] = f
	return nil
}

// MustRegisterBackend is RegisterBackend for init-time registration.
func MustRegisterBackend(name string, f Factory) {
	if err := RegisterBackend(name, f); err != nil {
		panic(err)
	}
}

// BackendFactory resolves a backend name ("" means DefaultBackend) to its
// factory.
func BackendFactory(name string) (Factory, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	f, ok := backendReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sat: unknown solver backend %q (have %v)", name, Backends())
	}
	return f, nil
}

// NewBackend constructs a fresh solver from a backend name ("" means
// DefaultBackend).
func NewBackend(name string) (Backend, error) {
	f, err := BackendFactory(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendReg))
	for n := range backendReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
