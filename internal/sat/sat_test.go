package sat

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"bindlock/internal/interrupt"
	"bindlock/internal/progress"
)

// bruteForce decides satisfiability of a clause set over n variables by
// exhaustive enumeration (reference oracle for the CDCL implementation).
func bruteForce(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// checkModel verifies the solver's model satisfies every clause.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if s.Value(l.Var()) != l.Sign() {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model violates clause %v", c)
		}
	}
}

func TestTrivialSAT(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(NewLit(a, false))
	s.AddClause(NewLit(a, true), NewLit(b, false))
	ok, err := s.Solve(context.Background())
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatalf("model a=%v b=%v, want true true", s.Value(a), s.Value(b))
	}
}

func TestTrivialUNSAT(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(NewLit(a, false))
	if s.AddClause(NewLit(a, true)) {
		t.Fatal("contradictory unit must report failure")
	}
	ok, err := s.Solve(context.Background())
	if err != nil || ok {
		t.Fatalf("Solve = %v, %v, want UNSAT", ok, err)
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause must fail")
	}
	if ok, _ := s.Solve(context.Background()); ok {
		t.Fatal("must be UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(a, true)) // tautology: ignored
	s.AddClause(NewLit(b, false), NewLit(b, false), NewLit(b, false))
	ok, err := s.Solve(context.Background())
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	if !s.Value(b) {
		t.Fatal("b must be true")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — classically UNSAT and exercises
	// clause learning. Variable p*3+h means pigeon p sits in hole h.
	s := NewSolver()
	vars := make([][]int, 4)
	for p := range vars {
		vars[p] = make([]int, 3)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < 4; p++ {
		s.AddClause(NewLit(vars[p][0], false), NewLit(vars[p][1], false), NewLit(vars[p][2], false))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				s.AddClause(NewLit(vars[p1][h], true), NewLit(vars[p2][h], true))
			}
		}
	}
	ok, err := s.Solve(context.Background())
	if err != nil || ok {
		t.Fatalf("PHP(4,3) = %v, %v, want UNSAT", ok, err)
	}
	if s.Conflicts == 0 {
		t.Error("UNSAT proof without conflicts is impossible")
	}
}

func TestPigeonholeLarger(t *testing.T) {
	// PHP(7,6) requires real conflict-driven search.
	s := NewSolver()
	n, m := 7, 6
	vars := make([][]int, n)
	for p := range vars {
		vars[p] = make([]int, m)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		lits := make([]Lit, m)
		for h := 0; h < m; h++ {
			lits[h] = NewLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < m; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NewLit(vars[p1][h], true), NewLit(vars[p2][h], true))
			}
		}
	}
	ok, err := s.Solve(context.Background())
	if err != nil || ok {
		t.Fatalf("PHP(7,6) = %v, %v, want UNSAT", ok, err)
	}
}

// TestRandom3SATAgainstBruteForce cross-checks CDCL against exhaustive
// enumeration on random 3-SAT instances around the phase transition.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9) // 4..12 vars
		nc := int(4.3*float64(n)) + rng.Intn(5)
		s := NewSolver()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		clauses := make([][]Lit, 0, nc)
		for i := 0; i < nc; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = NewLit(rng.Intn(n), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		got, err := s.Solve(context.Background())
		if err != nil {
			return false
		}
		want := bruteForce(n, clauses)
		if got != want {
			return false
		}
		if got {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Sign() {
						sat = true
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalSolving(t *testing.T) {
	// Solve, add constraints, solve again: the SAT-attack usage pattern.
	s := NewSolver()
	vars := make([]int, 6)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// At least one true.
	lits := make([]Lit, 6)
	for i := range lits {
		lits[i] = NewLit(vars[i], false)
	}
	s.AddClause(lits...)
	for round := 0; round < 5; round++ {
		ok, err := s.Solve(context.Background())
		if err != nil || !ok {
			t.Fatalf("round %d: %v %v", round, ok, err)
		}
		// Forbid the returned model restricted to true vars.
		var block []Lit
		for _, v := range vars {
			if s.Value(v) {
				block = append(block, NewLit(v, true))
			} else {
				block = append(block, NewLit(v, false))
			}
		}
		s.AddClause(block...)
	}
}

func TestXorChainUNSAT(t *testing.T) {
	// x1 ^ x2, x2 ^ x3, ..., plus x1 == xn and odd chain length: UNSAT.
	// Encoded as CNF equivalences; stresses propagation.
	s := NewSolver()
	n := 14 // 13 XOR-true constraints flip parity an odd number of times
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	addXorTrue := func(a, b int) { // a XOR b = true
		s.AddClause(NewLit(a, false), NewLit(b, false))
		s.AddClause(NewLit(a, true), NewLit(b, true))
	}
	addEq := func(a, b int) { // a == b
		s.AddClause(NewLit(a, false), NewLit(b, true))
		s.AddClause(NewLit(a, true), NewLit(b, false))
	}
	for i := 0; i+1 < n; i++ {
		addXorTrue(vars[i], vars[i+1])
	}
	addEq(vars[0], vars[n-1]) // x_{n-1} = NOT x_0 after 13 flips: contradiction
	ok, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("odd xor chain with equality must be UNSAT")
	}
}

// pigeonhole encodes PHP(n, m): n pigeons into m holes. For n > m it is UNSAT
// and exponentially hard for resolution — the standard budget/cancellation
// workload.
func pigeonhole(s *Solver, n, m int) {
	vars := make([][]int, n)
	for p := range vars {
		vars[p] = make([]int, m)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		lits := make([]Lit, m)
		for h := 0; h < m; h++ {
			lits[h] = NewLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < m; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NewLit(vars[p1][h], true), NewLit(vars[p2][h], true))
			}
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A hard instance with a tiny budget must return ErrBudget, typed as a
	// budget interruption carrying the search counters.
	s := NewSolver()
	pigeonhole(s, 9, 8)
	s.MaxConflicts = 50
	_, err := s.Solve(context.Background())
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !errors.Is(err, interrupt.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want interrupt.ErrBudgetExceeded", err)
	}
	stats, ok := interrupt.Partial[Stats](err)
	if !ok || stats.Conflicts < 50 {
		t.Fatalf("partial stats = %+v, %v; want conflicts >= 50", stats, ok)
	}
}

func TestSolveCancellation(t *testing.T) {
	// A deadline mid-search must interrupt the solver promptly with partial
	// statistics; PHP(11,10) runs far beyond the 20ms budget otherwise.
	s := NewSolver()
	pigeonhole(s, 11, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Solve(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, interrupt.ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline-classified budget interruption", err)
	}
	if elapsed > 120*time.Millisecond {
		t.Errorf("solver returned %v after the 20ms deadline; want prompt return", elapsed)
	}
	stats, ok := interrupt.Partial[Stats](err)
	if !ok || stats.Conflicts == 0 {
		t.Errorf("partial stats = %+v, %v; want non-zero conflicts", stats, ok)
	}

	// Pre-cancelled contexts never enter the search.
	s2 := NewSolver()
	pigeonhole(s2, 9, 8)
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := s2.Solve(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve = %v, want context.Canceled", err)
	}
}

func TestSolveEmitsProgress(t *testing.T) {
	var c progress.Counter
	s := NewSolver()
	pigeonhole(s, 8, 7)
	s.MaxConflicts = 5000
	ctx := progress.NewContext(context.Background(), &c)
	_, _ = s.Solve(ctx)
	if c.Steps("solve") == 0 {
		t.Fatal("Solve emitted no solve progress events")
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLitBasics(t *testing.T) {
	l := NewLit(5, false)
	if l.Var() != 5 || l.Sign() {
		t.Fatal("positive literal broken")
	}
	n := l.Neg()
	if n.Var() != 5 || !n.Sign() || n.Neg() != l {
		t.Fatal("negation broken")
	}
	if l.String() != "6" || n.String() != "-6" || LitUndef.String() != "undef" {
		t.Errorf("String: %q %q", l.String(), n.String())
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	src := `c example
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve(context.Background())
	if err != nil || !ok {
		t.Fatalf("Solve = %v %v", ok, err)
	}
	// -1 forces x1 false; 1 -2 forces x2 false; 2 3 forces x3 true.
	if s.Value(0) || s.Value(1) || !s.Value(2) {
		t.Fatalf("model = %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}

	var sb strings.Builder
	s2 := NewSolver()
	for i := 0; i < 3; i++ {
		s2.NewVar()
	}
	s2.AddClause(NewLit(0, false), NewLit(1, true))
	if err := s2.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p cnf 3 1") || !strings.Contains(sb.String(), "1 -2 0") {
		t.Errorf("WriteDIMACS output:\n%s", sb.String())
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"1 2 0\n",
		"p cnf 2 1\n5 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 2 1\n1 a 0\n",
	}
	for _, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestValuePanicsWithoutModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Value without model must panic")
		}
	}()
	s := NewSolver()
	s.NewVar()
	s.Value(0)
}

func TestStatisticsPopulated(t *testing.T) {
	s := NewSolver()
	n := 8
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	rng := rand.New(rand.NewSource(5))
	var clauses [][]Lit
	for i := 0; i < 30; i++ {
		c := []Lit{
			NewLit(rng.Intn(n), rng.Intn(2) == 0),
			NewLit(rng.Intn(n), rng.Intn(2) == 0),
			NewLit(rng.Intn(n), rng.Intn(2) == 0),
		}
		clauses = append(clauses, c)
		s.AddClause(c...)
	}
	ok, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		checkModel(t, s, clauses)
	}
	if s.Propagations == 0 && s.Decisions == 0 {
		t.Error("no work recorded")
	}
}

// TestReduceDBStress drives enough conflicts to trigger learned-clause
// database reduction and checks the solver still decides correctly.
func TestReduceDBStress(t *testing.T) {
	// PHP(8,7): UNSAT with thousands of conflicts.
	s := NewSolver()
	n, m := 8, 7
	vars := make([][]int, n)
	for p := range vars {
		vars[p] = make([]int, m)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		lits := make([]Lit, m)
		for h := 0; h < m; h++ {
			lits[h] = NewLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < m; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NewLit(vars[p1][h], true), NewLit(vars[p2][h], true))
			}
		}
	}
	ok, err := s.Solve(context.Background())
	if err != nil || ok {
		t.Fatalf("PHP(8,7) = %v, %v, want UNSAT", ok, err)
	}
	if s.Conflicts < 1000 {
		t.Skipf("only %d conflicts; reduceDB untested on this machine", s.Conflicts)
	}
	// Reduction must actually have removed clauses: the live learned count
	// trails the number of learned clauses ever attached.
	if removed := int(s.learnedTotal) - s.learnts; removed == 0 {
		t.Errorf("no clauses removed after %d conflicts", s.Conflicts)
	}
}

// TestReduceDBPreservesSATAnswers re-checks random instances larger than the
// brute-force tests, comparing against a fresh solve with reduction
// effectively disabled (huge conflict budget but few conflicts).
func TestReduceDBPreservesSATAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		nv := 30
		nc := 125
		type cl []Lit
		var clauses []cl
		for i := 0; i < nc; i++ {
			c := cl{
				NewLit(rng.Intn(nv), rng.Intn(2) == 0),
				NewLit(rng.Intn(nv), rng.Intn(2) == 0),
				NewLit(rng.Intn(nv), rng.Intn(2) == 0),
			}
			clauses = append(clauses, c)
		}
		solve := func() bool {
			s := NewSolver()
			for i := 0; i < nv; i++ {
				s.NewVar()
			}
			for _, c := range clauses {
				s.AddClause(c...)
			}
			ok, err := s.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				for _, c := range clauses {
					sat := false
					for _, l := range c {
						if s.Value(l.Var()) != l.Sign() {
							sat = true
						}
					}
					if !sat {
						t.Fatal("model violates clause")
					}
				}
			}
			return ok
		}
		a := solve()
		b := solve()
		if a != b {
			t.Fatalf("nondeterministic answer on trial %d", trial)
		}
	}
}

// TestReduceOrderTotalOrder pins reduceDB's deletion order: ascending
// activity with the clause index breaking ties, so which clauses fall in the
// deleted half depends only on the inputs, not the sort implementation or
// the input permutation.
func TestReduceOrderTotalOrder(t *testing.T) {
	base := []reduceCand{
		{idx: 9, act: 0.5},
		{idx: 1, act: 1},
		{idx: 3, act: 1},
		{idx: 7, act: 1},
		{idx: 2, act: 2},
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		cands := append([]reduceCand(nil), base...)
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		reduceOrder(cands)
		for i, want := range base {
			if cands[i] != want {
				t.Fatalf("trial %d: order[%d] = %+v, want %+v", trial, i, cands[i], want)
			}
		}
	}
}
