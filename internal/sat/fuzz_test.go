package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS drives the DIMACS reader with arbitrary bytes. The
// property under test: ParseDIMACS never panics and never allocates
// unboundedly (MaxDIMACSVars gates the header), and an accepted formula is
// well-formed enough for the solver boundary (no sticky AddClause error).
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"",
		"p cnf 0 0\n",
		"p cnf 2 2\n1 -2 0\n2 0\n",
		"c comment\np cnf 3 1\n1 2 3 0\n",
		"p cnf 1 1\n1 0",      // no trailing newline, clause flushed at EOF
		"p cnf 1 1\n1",        // unterminated clause
		"1 0\n",               // clause before problem line
		"p cnf 999999999 1\n", // over the variable cap
		"p cnf 2 1\n1 x 0\n",  // bad literal token
		"p cnf 2 1\n3 0\n",    // literal beyond declared count
		"p cnf 2 1\n-0 0\n",   // negative zero
		"p cnf 2 1\n1 -1 0\n", // tautology
		"p cnf 2 2\n1 0\n-1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseDIMACS(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("ParseDIMACS returned nil solver and nil error")
		}
		if s.Err() != nil {
			t.Fatalf("accepted formula left a sticky solver error: %v", s.Err())
		}
		if s.NumVars() > MaxDIMACSVars {
			t.Fatalf("solver has %d vars, above the %d cap", s.NumVars(), MaxDIMACSVars)
		}
	})
}
