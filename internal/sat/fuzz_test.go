package sat

import (
	"context"
	"strings"
	"testing"
)

// FuzzParseDIMACS drives the DIMACS reader with arbitrary bytes. The
// property under test: ParseDIMACS never panics and never allocates
// unboundedly (MaxDIMACSVars gates the header), and an accepted formula is
// well-formed enough for the solver boundary (no sticky AddClause error).
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"",
		"p cnf 0 0\n",
		"p cnf 2 2\n1 -2 0\n2 0\n",
		"c comment\np cnf 3 1\n1 2 3 0\n",
		"p cnf 1 1\n1 0",      // no trailing newline, clause flushed at EOF
		"p cnf 1 1\n1",        // unterminated clause
		"1 0\n",               // clause before problem line
		"p cnf 999999999 1\n", // over the variable cap
		"p cnf 2 1\n1 x 0\n",  // bad literal token
		"p cnf 2 1\n3 0\n",    // literal beyond declared count
		"p cnf 2 1\n-0 0\n",   // negative zero
		"p cnf 2 1\n1 -1 0\n", // tautology
		"p cnf 2 2\n1 0\n-1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseDIMACS(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("ParseDIMACS returned nil solver and nil error")
		}
		if s.Err() != nil {
			t.Fatalf("accepted formula left a sticky solver error: %v", s.Err())
		}
		if s.NumVars() > MaxDIMACSVars {
			t.Fatalf("solver has %d vars, above the %d cap", s.NumVars(), MaxDIMACSVars)
		}
	})
}

// FuzzSolveAssuming differentially tests the CDCL solver's assumption
// interface against the DPLL reference engine. The fuzzer's byte stream is
// decoded into a small formula plus an assumption set; both engines must
// agree on satisfiability, a SAT model must satisfy every clause and every
// assumption, and an UNSAT-under-assumptions verdict must report a failed
// subset of the assumptions that — added as unit clauses — makes a fresh
// solve unsatisfiable. Each solver is also queried again afterwards to prove
// assumptions never poison the clause DB.
func FuzzSolveAssuming(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 255, 3, 255, 1})
	f.Add([]byte{4, 1, 0, 3, 255, 2, 1})
	f.Add([]byte{2, 0, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%6) + 1 // 1..6 variables
		data = data[1:]

		cdcl := NewSolver()
		dpll := NewDPLL()
		for i := 0; i < n; i++ {
			cdcl.NewVar()
			dpll.NewVar()
		}

		// Decode: bytes are literals (var = b%n, sign = b>=128); 255 ends a
		// clause; after the clause section a trailing run encodes assumptions.
		var clauses [][]Lit
		var cur []Lit
		var assumps []Lit
		for i, b := range data {
			if b == 255 {
				if len(cur) > 0 {
					clauses = append(clauses, cur)
					cur = nil
				}
				continue
			}
			l := NewLit(int(b)%n, b >= 128)
			if i >= len(data)-3 && len(cur) == 0 && len(assumps) < 3 {
				assumps = append(assumps, l)
				continue
			}
			cur = append(cur, l)
		}
		if len(cur) > 0 {
			clauses = append(clauses, cur)
		}
		if len(clauses) > 24 {
			clauses = clauses[:24]
		}
		for _, c := range clauses {
			cdcl.AddClause(append([]Lit(nil), c...)...)
			dpll.AddClause(append([]Lit(nil), c...)...)
		}

		ctx := context.Background()
		gotC, errC := cdcl.SolveAssuming(ctx, assumps...)
		gotD, errD := dpll.SolveAssuming(ctx, assumps...)
		if errC != nil || errD != nil {
			t.Fatalf("solve errors: cdcl=%v dpll=%v", errC, errD)
		}
		if gotC != gotD {
			t.Fatalf("disagreement: cdcl=%v dpll=%v (clauses %v assumps %v)", gotC, gotD, clauses, assumps)
		}

		check := func(name string, val func(int) bool) {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if val(l.Var()) != l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("%s model violates clause %v", name, c)
				}
			}
			for _, a := range assumps {
				if val(a.Var()) == a.Sign() {
					t.Fatalf("%s model violates assumption %v", name, a)
				}
			}
		}
		if gotC {
			check("cdcl", cdcl.Value)
			check("dpll", dpll.Value)
		} else if len(assumps) > 0 {
			failed := cdcl.FailedAssumptions()
			set := map[Lit]bool{}
			for _, a := range assumps {
				set[a] = true
			}
			for _, l := range failed {
				if !set[l] {
					t.Fatalf("failed assumption %v not in passed set %v", l, assumps)
				}
			}
			// The failed subset must itself be sufficient for unsatisfiability.
			fresh := NewSolver()
			for i := 0; i < n; i++ {
				fresh.NewVar()
			}
			for _, c := range clauses {
				fresh.AddClause(append([]Lit(nil), c...)...)
			}
			for _, l := range failed {
				fresh.AddClause(l)
			}
			if sat, err := fresh.Solve(ctx); err != nil {
				t.Fatalf("fresh solve: %v", err)
			} else if sat {
				t.Fatalf("failed subset %v does not reproduce unsatisfiability", failed)
			}
		}

		// Both solvers stay usable after an assumption query.
		reC, errC := cdcl.Solve(ctx)
		reD, errD := dpll.Solve(ctx)
		if errC != nil || errD != nil {
			t.Fatalf("re-solve errors: cdcl=%v dpll=%v", errC, errD)
		}
		if reC != reD {
			t.Fatalf("re-solve disagreement: cdcl=%v dpll=%v", reC, reD)
		}
	})
}
