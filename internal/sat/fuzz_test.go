package sat

import (
	"context"
	"strings"
	"testing"
)

// FuzzParseDIMACS drives the DIMACS reader with arbitrary bytes. The
// property under test: ParseDIMACS never panics and never allocates
// unboundedly (MaxDIMACSVars gates the header), and an accepted formula is
// well-formed enough for the solver boundary (no sticky AddClause error).
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"",
		"p cnf 0 0\n",
		"p cnf 2 2\n1 -2 0\n2 0\n",
		"c comment\np cnf 3 1\n1 2 3 0\n",
		"p cnf 1 1\n1 0",      // no trailing newline, clause flushed at EOF
		"p cnf 1 1\n1",        // unterminated clause
		"1 0\n",               // clause before problem line
		"p cnf 999999999 1\n", // over the variable cap
		"p cnf 2 1\n1 x 0\n",  // bad literal token
		"p cnf 2 1\n3 0\n",    // literal beyond declared count
		"p cnf 2 1\n-0 0\n",   // negative zero
		"p cnf 2 1\n1 -1 0\n", // tautology
		"p cnf 2 2\n1 0\n-1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseDIMACS(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("ParseDIMACS returned nil solver and nil error")
		}
		if s.Err() != nil {
			t.Fatalf("accepted formula left a sticky solver error: %v", s.Err())
		}
		if s.NumVars() > MaxDIMACSVars {
			t.Fatalf("solver has %d vars, above the %d cap", s.NumVars(), MaxDIMACSVars)
		}
	})
}

// FuzzSolveAssuming differentially tests the assumption interface three ways:
// the arena CDCL engine, the frozen pre-arena slice engine, and the DPLL
// reference. The fuzzer's byte stream is decoded into a small formula plus an
// assumption set; all engines must agree on satisfiability, a SAT model must
// satisfy every clause and every assumption, and an UNSAT-under-assumptions
// verdict must report a failed subset of the assumptions that — added as unit
// clauses — makes a fresh solve unsatisfiable, for each CDCL engine's own
// subset (the engines may legitimately report different subsets). Each solver
// is also queried again afterwards to prove assumptions never poison the
// clause DB.
func FuzzSolveAssuming(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 255, 3, 255, 1})
	f.Add([]byte{4, 1, 0, 3, 255, 2, 1})
	f.Add([]byte{2, 0, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%6) + 1 // 1..6 variables
		data = data[1:]

		engines := []struct {
			name string
			b    Backend
		}{
			{"cdcl", NewSolver()},
			{"cdcl-slices", newSlicesSolver()},
			{"dpll", NewDPLL()},
		}
		for i := 0; i < n; i++ {
			for _, e := range engines {
				e.b.NewVar()
			}
		}

		// Decode: bytes are literals (var = b%n, sign = b>=128); 255 ends a
		// clause; after the clause section a trailing run encodes assumptions.
		var clauses [][]Lit
		var cur []Lit
		var assumps []Lit
		for i, b := range data {
			if b == 255 {
				if len(cur) > 0 {
					clauses = append(clauses, cur)
					cur = nil
				}
				continue
			}
			l := NewLit(int(b)%n, b >= 128)
			if i >= len(data)-3 && len(cur) == 0 && len(assumps) < 3 {
				assumps = append(assumps, l)
				continue
			}
			cur = append(cur, l)
		}
		if len(cur) > 0 {
			clauses = append(clauses, cur)
		}
		if len(clauses) > 24 {
			clauses = clauses[:24]
		}
		for _, c := range clauses {
			for _, e := range engines {
				e.b.AddClause(append([]Lit(nil), c...)...)
			}
		}

		ctx := context.Background()
		verdicts := make([]bool, len(engines))
		for i, e := range engines {
			got, err := e.b.SolveAssuming(ctx, assumps...)
			if err != nil {
				t.Fatalf("%s solve: %v", e.name, err)
			}
			verdicts[i] = got
			if got != verdicts[0] {
				t.Fatalf("disagreement: %s=%v %s=%v (clauses %v assumps %v)",
					engines[0].name, verdicts[0], e.name, got, clauses, assumps)
			}
		}
		sat := verdicts[0]

		check := func(name string, val func(int) bool) {
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if val(l.Var()) != l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("%s model violates clause %v", name, c)
				}
			}
			for _, a := range assumps {
				if val(a.Var()) == a.Sign() {
					t.Fatalf("%s model violates assumption %v", name, a)
				}
			}
		}
		if sat {
			for _, e := range engines {
				check(e.name, e.b.Value)
			}
		} else if len(assumps) > 0 {
			// Each CDCL engine reports its own failed subset — the engines
			// walk different search trees, so the subsets may differ — but
			// every reported subset must come from the passed assumptions and
			// must independently reproduce unsatisfiability.
			set := map[Lit]bool{}
			for _, a := range assumps {
				set[a] = true
			}
			for _, e := range engines {
				if e.name == "dpll" {
					continue
				}
				failed := e.b.FailedAssumptions()
				for _, l := range failed {
					if !set[l] {
						t.Fatalf("%s failed assumption %v not in passed set %v", e.name, l, assumps)
					}
				}
				fresh := NewSolver()
				for i := 0; i < n; i++ {
					fresh.NewVar()
				}
				for _, c := range clauses {
					fresh.AddClause(append([]Lit(nil), c...)...)
				}
				for _, l := range failed {
					fresh.AddClause(l)
				}
				if got, err := fresh.Solve(ctx); err != nil {
					t.Fatalf("%s fresh solve: %v", e.name, err)
				} else if got {
					t.Fatalf("%s failed subset %v does not reproduce unsatisfiability", e.name, failed)
				}
			}
		}

		// Every solver stays usable after an assumption query.
		re := make([]bool, len(engines))
		for i, e := range engines {
			got, err := e.b.Solve(ctx)
			if err != nil {
				t.Fatalf("%s re-solve: %v", e.name, err)
			}
			re[i] = got
			if got != re[0] {
				t.Fatalf("re-solve disagreement: %s=%v %s=%v",
					engines[0].name, re[0], e.name, got)
			}
		}
	})
}
