package sat

import (
	"context"
	"fmt"

	"bindlock/internal/fault"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/progress"
)

// slicesSolver is the pre-arena CDCL engine, frozen as the "cdcl-slices"
// backend. It is the slice-of-slices clause-store implementation the arena
// Solver replaced: clauses live in a [][]Lit with per-literal watch lists of
// clause indices, and reduceDB frees clause bodies by nilling slice entries.
// It is kept verbatim (only renamed) as a reference point: benchpar measures
// the arena engine's iterations/sec against it, and the backend-parameterised
// assumption suite plus FuzzSolveAssuming keep it semantically honest. The
// two engines walk different search trajectories (the arena engine's blocker
// literals skip satisfied clauses without re-normalising them), so their DIP
// transcripts are not interchangeable — checkpoints record the engine name
// and refuse to resume across engines.
type slicesSolver struct {
	clauses  [][]Lit // problem + learned clauses; first two lits are watched
	learntAt int     // clauses[learntAt:] are learned
	removed  []bool  // per clause: deleted by reduceDB
	claAct   []float64
	claInc   float64
	learnts  int // live learned clause count

	watches [][]int32 // per literal: indices of clauses watching it

	assign   []int8  // per var
	level    []int32 // per var: decision level of assignment
	reason   []int32 // per var: clause index that implied it, or -1
	polarity []bool  // per var: saved phase (last assigned sign)

	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap

	ok     bool  // false once a top-level conflict is derived
	err    error // sticky: first AddClause boundary violation; Solve returns it
	failed []Lit // failed assumptions of the last unsatisfiable SolveAssuming

	maxConflicts int64

	// statistics
	conflicts    int64
	decisions    int64
	propagations int64
	restarts     int64

	model []bool
	seen  []bool // scratch for conflict analysis
}

func init() {
	MustRegisterBackend("cdcl-slices", func() Backend { return newSlicesSolver() })
}

// newSlicesSolver returns an empty legacy solver.
func newSlicesSolver() *slicesSolver {
	s := &slicesSolver{ok: true, varInc: 1, claInc: 1}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created so far.
func (s *slicesSolver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of clauses attached so far — problem plus
// learned, including clauses since deleted by reduceDB (the slice only grows).
func (s *slicesSolver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its index.
func (s *slicesSolver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.polarity = append(s.polarity, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

func (s *slicesSolver) valueLit(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

// decisionLevel returns the current decision level.
func (s *slicesSolver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// enqueue assigns literal l with the given reason clause (-1 for decisions
// and external facts). It returns false if l is already false.
func (s *slicesSolver) enqueue(l Lit, from int32) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.polarity[v] = l.Sign()
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// AddClause adds a clause over the given literals; see Solver.AddClause for
// the boundary contract (this engine implements the identical semantics).
func (s *slicesSolver) AddClause(lits ...Lit) bool {
	if s.err != nil {
		return true // poisoned: clause dropped, Solve surfaces the error
	}
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Simplify: sort out duplicates, satisfied clauses, false literals.
	clause := make([]Lit, 0, len(lits))
	seen := map[Lit]bool{}
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() || l.Var() < 0 {
			s.err = fmt.Errorf("%w: literal %v (have %d vars)", ErrUnknownVariable, l, s.NumVars())
			return true
		}
		switch {
		case s.valueLit(l) == lTrue, seen[l.Neg()]:
			return true // clause already satisfied / tautological
		case s.valueLit(l) == lFalse, seen[l]:
			continue
		default:
			seen[l] = true
			clause = append(clause, l)
		}
	}
	switch len(clause) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(clause[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() != -1 {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(clause)
	s.learntAt = len(s.clauses)
	return true
}

// attach appends the clause and registers its two watches.
func (s *slicesSolver) attach(clause []Lit) int32 {
	idx := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause)
	s.removed = append(s.removed, false)
	s.claAct = append(s.claAct, 0)
	s.watches[clause[0]] = append(s.watches[clause[0]], idx)
	s.watches[clause[1]] = append(s.watches[clause[1]], idx)
	return idx
}

// propagate performs unit propagation over the watched literals. It returns
// the index of a conflicting clause, or -1.
func (s *slicesSolver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			if s.removed[ci] {
				continue // deleted by reduceDB: drop the stale watch
			}
			clause := s.clauses[ci]
			// Normalise: the false literal sits at position 1.
			if clause[0] == falseLit {
				clause[0], clause[1] = clause[1], clause[0]
			}
			// Satisfied by the other watch?
			if s.valueLit(clause[0]) == lTrue {
				kept = append(kept, ci)
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(clause); k++ {
				if s.valueLit(clause[k]) != lFalse {
					clause[1], clause[k] = clause[k], clause[1]
					s.watches[clause[1]] = append(s.watches[clause[1]], ci)
					found = true
					break
				}
			}
			if found {
				continue // watch moved: drop from this list
			}
			// Clause is unit or conflicting.
			kept = append(kept, ci)
			if !s.enqueue(clause[0], ci) {
				// Conflict: restore the remaining watches and bail.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falseLit] = kept
				s.qhead = len(s.trail)
				return ci
			}
		}
		s.watches[falseLit] = kept
	}
	return -1
}

// cancelUntil undoes assignments above the given decision level.
func (s *slicesSolver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = -1
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learned clause
// (asserting literal first) and the backjump level.
func (s *slicesSolver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{LitUndef}
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1
	cur := s.decisionLevel()

	for {
		clause := s.clauses[confl]
		s.bumpClause(confl)
		start := 0
		if p != LitUndef {
			start = 1 // clause[0] is the implied literal p
		}
		for _, q := range clause[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= cur {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select the next trail literal to resolve on.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Clear remaining marks.
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}

	// Backjump level: highest level among the non-asserting literals.
	back := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		back = s.level[learnt[1].Var()]
	}
	return learnt, back
}

func (s *slicesSolver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

// bumpClause raises a learned clause's activity (problem clauses are
// unaffected: they are never removed).
func (s *slicesSolver) bumpClause(ci int32) {
	if int(ci) < s.learntAt {
		return
	}
	s.claAct[ci] += s.claInc
	if s.claAct[ci] > 1e20 {
		for i := s.learntAt; i < len(s.claAct); i++ {
			s.claAct[i] *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// locked reports whether the clause is the reason of a current assignment
// and therefore must not be deleted.
func (s *slicesSolver) locked(ci int32) bool {
	clause := s.clauses[ci]
	v := clause[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == ci
}

// reduceDB deletes roughly half of the live learned clauses, lowest
// activity first, keeping binary and locked clauses. Watches are cleaned
// lazily by propagate.
func (s *slicesSolver) reduceDB() {
	var cands []reduceCand
	for i := s.learntAt; i < len(s.clauses); i++ {
		ci := int32(i)
		if s.removed[i] || len(s.clauses[i]) <= 2 || s.locked(ci) {
			continue
		}
		cands = append(cands, reduceCand{ci, s.claAct[i]})
	}
	if len(cands) < 2 {
		return
	}
	// Remove the lower-activity half.
	reduceOrder(cands)
	for _, c := range cands[:len(cands)/2] {
		s.removed[c.idx] = true
		s.clauses[c.idx] = nil
		s.learnts--
	}
}

// pickBranch selects the unassigned variable with highest activity.
func (s *slicesSolver) pickBranch() int {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// Stats snapshots the solver's search counters.
func (s *slicesSolver) Stats() Stats {
	return Stats{
		Conflicts:    s.conflicts,
		Decisions:    s.decisions,
		Propagations: s.propagations,
		Restarts:     s.restarts,
	}
}

// SetMaxConflicts bounds each subsequent solve call's conflict budget
// (0: DefaultMaxConflicts).
func (s *slicesSolver) SetMaxConflicts(n int64) { s.maxConflicts = n }

// Solve searches for a satisfying assignment; see Solver.Solve.
func (s *slicesSolver) Solve(ctx context.Context) (bool, error) {
	return s.SolveAssuming(ctx)
}

// SolveAssuming is Solve under temporary assumption literals; see
// Solver.SolveAssuming for the contract this engine shares.
func (s *slicesSolver) SolveAssuming(ctx context.Context, assumps ...Lit) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.failed = nil
	if m := metrics.FromContext(ctx); m != nil {
		// Solver counters are cumulative across Solve calls on a reused
		// solver (the attack loop re-solves one growing formula), so the
		// registry records per-call deltas.
		stop := m.Timer("sat_solve_seconds")
		before := s.Stats()
		learnedBefore := len(s.clauses) - s.learntAt
		defer func() {
			stop()
			after := s.Stats()
			m.Add("sat_solve_total", 1)
			m.Add("sat_conflicts_total", after.Conflicts-before.Conflicts)
			m.Add("sat_decisions_total", after.Decisions-before.Decisions)
			m.Add("sat_propagations_total", after.Propagations-before.Propagations)
			m.Add("sat_restarts_total", after.Restarts-before.Restarts)
			m.Add("sat_learned_clauses_total", int64(len(s.clauses)-s.learntAt-learnedBefore))
		}()
	}
	if err := fault.Hit(ctx, "sat.solve"); err != nil {
		return false, fmt.Errorf("sat: solve: %w", err)
	}
	if s.err != nil {
		return false, s.err
	}
	if !s.ok {
		return false, nil
	}
	for _, a := range assumps {
		if a == LitUndef || a.Var() < 0 || a.Var() >= s.NumVars() {
			return false, fmt.Errorf("%w: assumption %v (have %d vars)", ErrUnknownVariable, a, s.NumVars())
		}
	}
	defer s.cancelUntil(0)
	if s.propagate() != -1 {
		s.ok = false
		return false, nil
	}

	budget := s.maxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	// The budget is per call: measure conflicts against this call's start,
	// so a warm solver reused across an attack's iterations is not charged
	// for earlier calls' work.
	budgetBase := s.conflicts
	hook := progress.FromContext(ctx)
	var restartN int64
	const restartBase = 100
	maxLearnts := s.learntAt/3 + 1000
	sinceCheck := 0

	for {
		if err := interrupt.Check(ctx, "sat: solve", s.Stats()); err != nil {
			return false, err
		}
		progress.Emit(hook, progress.Event{
			Kind: progress.Step, Phase: "solve",
			Conflicts: s.conflicts, Decisions: s.decisions,
		})
		restartBudget := luby(restartN) * restartBase
		restartN++
		s.restarts++
		conflicts := int64(0)
		for {
			if sinceCheck++; sinceCheck >= ctxCheckInterval {
				sinceCheck = 0
				if err := interrupt.Check(ctx, "sat: solve", s.Stats()); err != nil {
					return false, err
				}
			}
			confl := s.propagate()
			if confl != -1 {
				s.conflicts++
				conflicts++
				if s.decisionLevel() == 0 {
					s.ok = false
					return false, nil
				}
				learnt, back := s.analyze(confl)
				s.cancelUntil(back)
				if len(learnt) == 1 {
					if !s.enqueue(learnt[0], -1) {
						s.ok = false
						return false, nil
					}
				} else {
					ci := s.attach(learnt)
					s.learnts++
					s.bumpClause(ci)
					s.enqueue(learnt[0], ci)
				}
				s.varInc *= varDecay
				s.claInc *= claDecay
				if s.learnts > maxLearnts {
					s.reduceDB()
					maxLearnts += maxLearnts / 10
				}
				if s.conflicts-budgetBase >= budget {
					return false, interrupt.Budget("sat: solve", ErrBudget, s.Stats())
				}
				continue
			}
			if conflicts >= restartBudget {
				s.cancelUntil(0)
				break // restart
			}
			// Extend the assumption prefix first: assumption i is the
			// decision of level i+1. An assumption already implied true
			// opens a dummy level (keeping the level-per-assumption
			// invariant); one implied false is a final conflict — the
			// assumptions are jointly unsatisfiable with the clause set,
			// which says nothing about the clause set alone.
			next := LitUndef
			for next == LitUndef && int(s.decisionLevel()) < len(assumps) {
				switch p := assumps[s.decisionLevel()]; s.valueLit(p) {
				case lTrue:
					s.trailLim = append(s.trailLim, int32(len(s.trail)))
				case lFalse:
					s.failed = s.analyzeFinal(p)
					return false, nil
				default:
					next = p
				}
			}
			if next == LitUndef {
				v := s.pickBranch()
				if v == -1 {
					// All variables assigned: SAT.
					s.model = make([]bool, s.NumVars())
					for i, a := range s.assign {
						s.model[i] = a == lTrue
					}
					return true, nil
				}
				s.decisions++
				next = NewLit(v, s.polarity[v])
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.enqueue(next, -1)
		}
	}
}

// analyzeFinal computes the failed-assumption set; see Solver.analyzeFinal.
func (s *slicesSolver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out // p is falsified by the formula alone at the root
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == -1 {
			// A decision: at this point of the search every decision is an
			// assumption, recorded on the trail in its passed polarity.
			if s.level[v] > 0 {
				out = append(out, s.trail[i])
			}
		} else {
			// Implied: charge the literals of its reason clause (clause[0]
			// is the implied literal itself).
			for _, q := range s.clauses[s.reason[v]][1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return out
}

// FailedAssumptions returns the failed-assumption subset of the most recent
// unsatisfiable SolveAssuming call; see Solver.FailedAssumptions.
func (s *slicesSolver) FailedAssumptions() []Lit { return s.failed }

// Value returns variable v's value in the most recent model.
func (s *slicesSolver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v]
}

// ValueErr is the non-panicking form of Value for exported boundaries.
func (s *slicesSolver) ValueErr(v int) (bool, error) {
	if s.model == nil {
		return false, ErrNoModel
	}
	if v < 0 || v >= len(s.model) {
		return false, fmt.Errorf("%w: variable %d (model has %d)", ErrUnknownVariable, v, len(s.model))
	}
	return s.model[v], nil
}

// Err returns the sticky boundary error recorded by AddClause, or nil.
func (s *slicesSolver) Err() error { return s.err }
