package sat

// This file is the second solver engine behind the Backend seam: a plain
// DPLL solver — unit propagation by clause scanning, chronological
// backtracking, no clause learning, no heuristics beyond first-unassigned
// branching with false-first phase. It exists for two reasons. As a
// reference engine it is simple enough to audit, so the fuzz harness
// cross-checks the CDCL solver's SAT/UNSAT verdicts against it. As a second
// registered backend it proves the seam: the attack stack, the cache
// fingerprints and the checkpoint format all carry a backend name end to
// end. It is exponentially slower than CDCL on hard instances — use it for
// small jobs and differential testing, not SFLL keyspaces.

import (
	"context"
	"fmt"

	"bindlock/internal/interrupt"
)

// DPLL is a backtracking SAT solver implementing Backend. The zero value is
// not usable; call NewDPLL.
type DPLL struct {
	nvars   int
	clauses [][]Lit

	assign []int8 // per var; rebuilt each solve call
	trail  []Lit
	// levels[i] describes decision level i+1: the trail index of its
	// decision and whether the false-first phase was already flipped.
	// Assumption levels are never flipped — exhausting them means
	// unsatisfiable under the assumptions.
	levels []dpllLevel

	ok     bool
	err    error
	failed []Lit
	model  []bool

	maxConflicts int64
	stats        Stats
}

type dpllLevel struct {
	at      int
	flipped bool
}

// NewDPLL returns an empty DPLL solver.
func NewDPLL() *DPLL {
	return &DPLL{ok: true}
}

// NewVar allocates a fresh variable and returns its index.
func (d *DPLL) NewVar() int {
	v := d.nvars
	d.nvars++
	return v
}

// NumVars returns the number of variables created so far.
func (d *DPLL) NumVars() int { return d.nvars }

// NumClauses returns the number of clauses added so far.
func (d *DPLL) NumClauses() int { return len(d.clauses) }

// SetMaxConflicts bounds each solve call's backtrack budget
// (0: DefaultMaxConflicts).
func (d *DPLL) SetMaxConflicts(n int64) { d.maxConflicts = n }

// Stats snapshots the search counters.
func (d *DPLL) Stats() Stats { return d.stats }

// Err returns the sticky boundary error recorded by AddClause, or nil.
func (d *DPLL) Err() error { return d.err }

// AddClause adds a clause, with the same boundary semantics as the CDCL
// solver: a literal over an unallocated variable records a sticky
// ErrUnknownVariable (the clause is dropped and the next solve call returns
// the error), an empty clause marks the formula unsatisfiable, and the
// return value reports whether the formula is still possibly satisfiable.
func (d *DPLL) AddClause(lits ...Lit) bool {
	if d.err != nil {
		return true
	}
	if !d.ok {
		return false
	}
	clause := make([]Lit, 0, len(lits))
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() < 0 || l.Var() >= d.nvars {
			d.err = fmt.Errorf("%w: literal %v (have %d vars)", ErrUnknownVariable, l, d.nvars)
			return true
		}
		switch {
		case seen[l.Neg()]:
			return true // tautological
		case seen[l]:
			continue
		default:
			seen[l] = true
			clause = append(clause, l)
		}
	}
	if len(clause) == 0 {
		d.ok = false
		return false
	}
	d.clauses = append(d.clauses, clause)
	return true
}

func (d *DPLL) valueLit(l Lit) int8 {
	v := d.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

func (d *DPLL) set(l Lit) {
	if l.Sign() {
		d.assign[l.Var()] = lFalse
	} else {
		d.assign[l.Var()] = lTrue
	}
	d.trail = append(d.trail, l)
}

// propagate scans all clauses to a fixpoint, asserting unit clauses. It
// returns false on a conflict (some clause has every literal false).
func (d *DPLL) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, clause := range d.clauses {
			unassigned := LitUndef
			n := 0
			sat := false
			for _, l := range clause {
				switch d.valueLit(l) {
				case lTrue:
					sat = true
				case lUndef:
					unassigned = l
					n++
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch n {
			case 0:
				return false // every literal false: conflict
			case 1:
				d.set(unassigned)
				d.stats.Propagations++
				changed = true
			}
		}
	}
	return true
}

// backtrack undoes decision levels until one with an unflipped non-assumption
// decision remains, flips it, and returns true. Exhausting the stack — or
// reaching an assumption level, which must not be flipped — means the search
// space under the assumptions is empty.
func (d *DPLL) backtrack(nAssumps int) bool {
	for len(d.levels) > nAssumps {
		top := &d.levels[len(d.levels)-1]
		decision := d.trail[top.at]
		for i := len(d.trail) - 1; i >= top.at; i-- {
			d.assign[d.trail[i].Var()] = lUndef
		}
		d.trail = d.trail[:top.at]
		if !top.flipped {
			top.flipped = true
			d.set(decision.Neg())
			return true
		}
		d.levels = d.levels[:len(d.levels)-1]
	}
	return false
}

// Solve searches for a model; see SolveAssuming.
func (d *DPLL) Solve(ctx context.Context) (bool, error) {
	return d.SolveAssuming(ctx)
}

// SolveAssuming searches for a model under the given assumptions. The
// engine has no clause learning, so unsatisfiability under assumptions
// reports the whole assumption set as failed (a sound over-approximation of
// the minimal core the CDCL backend extracts). Interruption mirrors the
// CDCL solver: context errors and the per-call conflict budget surface as
// interrupt-typed errors carrying a Stats snapshot.
func (d *DPLL) SolveAssuming(ctx context.Context, assumps ...Lit) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d.failed = nil
	d.model = nil
	if d.err != nil {
		return false, d.err
	}
	if !d.ok {
		return false, nil
	}
	for _, a := range assumps {
		if a == LitUndef || a.Var() < 0 || a.Var() >= d.nvars {
			return false, fmt.Errorf("%w: assumption %v (have %d vars)", ErrUnknownVariable, a, d.nvars)
		}
	}

	budget := d.maxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	conflicts := int64(0)

	// Fresh search state per call; the clause set is the only persistent
	// formula state, so assumptions scope naturally to this call.
	if cap(d.assign) < d.nvars {
		d.assign = make([]int8, d.nvars)
	}
	d.assign = d.assign[:d.nvars]
	for i := range d.assign {
		d.assign[i] = lUndef
	}
	d.trail = d.trail[:0]
	d.levels = d.levels[:0]

	unsat := func() (bool, error) {
		if len(assumps) > 0 {
			d.failed = append([]Lit(nil), assumps...)
		} else {
			d.ok = false
		}
		return false, nil
	}

	sinceCheck := 0
	for {
		if sinceCheck++; sinceCheck >= ctxCheckInterval {
			sinceCheck = 0
			if err := interrupt.Check(ctx, "sat: dpll solve", d.stats); err != nil {
				return false, err
			}
		}
		if !d.propagate() {
			d.stats.Conflicts++
			if conflicts++; conflicts >= budget {
				return false, interrupt.Budget("sat: dpll solve", ErrBudget, d.stats)
			}
			if !d.backtrack(len(assumps)) {
				return unsat()
			}
			continue
		}
		// Install the next pending assumption as a decision. One already
		// true is skipped without a level (the prefix below the first real
		// decision needs no unwinding granularity); one already false is a
		// final conflict.
		next := LitUndef
		for i := len(d.levels); next == LitUndef && i < len(assumps); {
			switch a := assumps[i]; d.valueLit(a) {
			case lTrue:
				i++
				// Keep level accounting aligned with assumptions by
				// recording a dummy (already-satisfied) level.
				d.levels = append(d.levels, dpllLevel{at: len(d.trail), flipped: true})
			case lFalse:
				d.failed = append([]Lit(nil), assumps...)
				return false, nil
			default:
				next = a
			}
		}
		if next == LitUndef {
			v := -1
			for i := 0; i < d.nvars; i++ {
				if d.assign[i] == lUndef {
					v = i
					break
				}
			}
			if v == -1 {
				d.model = make([]bool, d.nvars)
				for i, a := range d.assign {
					d.model[i] = a == lTrue
				}
				return true, nil
			}
			d.stats.Decisions++
			d.levels = append(d.levels, dpllLevel{at: len(d.trail)})
			d.set(NewLit(v, true)) // false-first phase
			continue
		}
		d.stats.Decisions++
		d.levels = append(d.levels, dpllLevel{at: len(d.trail), flipped: true})
		d.set(next)
	}
}

// FailedAssumptions returns the assumption set of the most recent
// SolveAssuming call that returned (false, nil) under assumptions; nil
// otherwise. Without clause learning the engine cannot isolate a smaller
// core, so the whole set is reported.
func (d *DPLL) FailedAssumptions() []Lit { return d.failed }

// Value returns variable v's value in the most recent model. It panics
// without one; boundary code should prefer ValueErr.
func (d *DPLL) Value(v int) bool {
	if d.model == nil {
		panic("sat: Value called without a model")
	}
	return d.model[v]
}

// ValueErr is the non-panicking form of Value.
func (d *DPLL) ValueErr(v int) (bool, error) {
	if d.model == nil {
		return false, ErrNoModel
	}
	if v < 0 || v >= len(d.model) {
		return false, fmt.Errorf("%w: variable %d (model has %d)", ErrUnknownVariable, v, len(d.model))
	}
	return d.model[v], nil
}
