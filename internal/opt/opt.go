// Package opt implements the standard DFG optimisation passes an HLS
// front end runs before scheduling: constant folding, common-subexpression
// elimination and dead-code elimination.
//
// The passes operate on unscheduled graphs (they change the operation set,
// invalidating any schedule) and preserve I/O behaviour exactly — the test
// suite checks equivalence by simulation on every benchmark. Fewer
// operations mean fewer binding slots, which interacts with the paper's
// security flow: eliminating redundant operations concentrates the remaining
// workload minterms on fewer candidates, a mild amplifier for
// obfuscation-aware binding.
package opt

import (
	"fmt"

	"bindlock/internal/dfg"
)

// Result summarises what a pass pipeline removed.
type Result struct {
	FoldedConsts int
	CSEMerged    int
	DeadRemoved  int
	Simplified   int // algebraic identities applied (x*1, x+0, ...)
}

// Optimize runs constant folding, CSE and DCE to a fixed point and returns
// the optimised graph (the input is not modified) with pass statistics.
func Optimize(g *dfg.Graph) (*dfg.Graph, Result, error) {
	if err := g.Validate(false); err != nil {
		return nil, Result{}, err
	}
	var res Result
	cur := g
	for {
		next, stats, changed := rewrite(cur)
		res.FoldedConsts += stats.FoldedConsts
		res.CSEMerged += stats.CSEMerged
		res.DeadRemoved += stats.DeadRemoved
		res.Simplified += stats.Simplified
		cur = next
		if !changed {
			break
		}
	}
	if err := cur.Validate(false); err != nil {
		return nil, Result{}, fmt.Errorf("opt: produced invalid graph: %w", err)
	}
	return cur, res, nil
}

// exprKey canonically identifies a computation for CSE.
type exprKey struct {
	kind dfg.Kind
	a, b dfg.OpID
}

func keyOf(k dfg.Kind, a, b dfg.OpID) exprKey {
	if k.Commutative() && b < a {
		a, b = b, a
	}
	return exprKey{kind: k, a: a, b: b}
}

// simplify applies single-constant algebraic identities. It returns the
// replacement representative (dfg.None meaning "the constant zero") and
// whether an identity applied.
func simplify(k dfg.Kind, a, b dfg.OpID, va uint8, aOK bool, vb uint8, bOK bool,
	seenConst map[uint8]dfg.OpID) (dfg.OpID, bool) {
	switch k {
	case dfg.Add:
		if aOK && va == 0 {
			return b, true
		}
		if bOK && vb == 0 {
			return a, true
		}
	case dfg.Sub:
		// x-0 = x; 0-x does not simplify.
		if bOK && vb == 0 {
			return a, true
		}
	case dfg.AbsDiff:
		// |x-0| = |0-x| = x (values are unsigned).
		if bOK && vb == 0 {
			return a, true
		}
		if aOK && va == 0 {
			return b, true
		}
	case dfg.Mul:
		if aOK && va == 1 {
			return b, true
		}
		if bOK && vb == 1 {
			return a, true
		}
		if (aOK && va == 0) || (bOK && vb == 0) {
			return dfg.None, true
		}
	}
	return dfg.None, false
}

// rewrite performs one folding+CSE+DCE sweep, rebuilding the graph.
func rewrite(g *dfg.Graph) (*dfg.Graph, Result, bool) {
	var res Result

	// Pass 1 (forward): value numbering with folding and CSE. remap maps
	// old op IDs to the representative old ID whose computation survives.
	remap := make([]dfg.OpID, len(g.Ops))
	constVal := map[dfg.OpID]uint8{} // old const-producing op -> value
	isConst := make([]bool, len(g.Ops))
	seenExpr := map[exprKey]dfg.OpID{}
	seenConst := map[uint8]dfg.OpID{}

	for _, op := range g.Ops {
		switch op.Kind {
		case dfg.Input, dfg.Output:
			remap[op.ID] = op.ID
		case dfg.Const:
			if rep, ok := seenConst[op.Val]; ok {
				remap[op.ID] = rep
				res.CSEMerged++
			} else {
				seenConst[op.Val] = op.ID
				remap[op.ID] = op.ID
			}
			constVal[remap[op.ID]] = op.Val
			isConst[op.ID] = true
		default:
			a := remap[op.Args[0]]
			b := remap[op.Args[1]]
			// Constant folding: both operands constant.
			va, aOK := constVal[a]
			vb, bOK := constVal[b]
			if aOK && bOK {
				v := dfg.EvalKind(op.Kind, va, vb)
				if rep, ok := seenConst[v]; ok {
					remap[op.ID] = rep
				} else {
					// Introduce a virtual constant: reuse this op's slot
					// as a const marker; materialised in pass 2.
					seenConst[v] = op.ID
					remap[op.ID] = op.ID
				}
				constVal[remap[op.ID]] = v
				isConst[op.ID] = true
				res.FoldedConsts++
				continue
			}
			// Algebraic identities with one constant operand. All hold in
			// modulo-256 arithmetic: x+0 = x-0 = |x-0| = x*1 = x; x*0 = 0.
			if rep, ok := simplify(op.Kind, a, b, va, aOK, vb, bOK, seenConst); ok {
				if rep == dfg.None {
					// x*0: introduce/reuse the zero constant.
					if z, have := seenConst[0]; have {
						rep = z
					} else {
						seenConst[0] = op.ID
						rep = op.ID
					}
					constVal[rep] = 0
					isConst[op.ID] = rep == op.ID
				}
				remap[op.ID] = rep
				res.Simplified++
				continue
			}
			key := keyOf(op.Kind, a, b)
			if rep, ok := seenExpr[key]; ok {
				remap[op.ID] = rep
				res.CSEMerged++
			} else {
				seenExpr[key] = op.ID
				remap[op.ID] = op.ID
			}
		}
	}

	// Pass 2 (backward): liveness from outputs. Primary inputs are always
	// kept — optimisation must not change the kernel's I/O signature.
	live := make([]bool, len(g.Ops))
	for i := len(g.Ops) - 1; i >= 0; i-- {
		op := g.Ops[i]
		if op.Kind == dfg.Input {
			live[i] = true
			continue
		}
		if op.Kind == dfg.Output {
			live[i] = true
			live[remap[op.Args[0]]] = true
			continue
		}
		if !live[i] || remap[op.ID] != op.ID {
			continue
		}
		if op.Kind.IsBinary() && !isConst[op.ID] {
			live[remap[op.Args[0]]] = true
			live[remap[op.Args[1]]] = true
		}
	}

	// Pass 3 (forward): rebuild.
	ng := dfg.New(g.Name)
	newID := make([]dfg.OpID, len(g.Ops))
	for i := range newID {
		newID[i] = dfg.None
	}
	changed := false
	for _, op := range g.Ops {
		rep := remap[op.ID]
		if op.Kind != dfg.Output && (rep != op.ID || !live[op.ID]) {
			changed = true
			if !live[op.ID] && rep == op.ID && op.Kind.IsBinary() && !isConst[op.ID] {
				res.DeadRemoved++
			}
			continue
		}
		switch {
		case op.Kind == dfg.Input:
			newID[op.ID] = ng.AddInput(op.Name)
		case op.Kind == dfg.Output:
			ng.AddOutput(op.Name, newID[remap[op.Args[0]]])
		case isConst[op.ID]:
			if !live[op.ID] {
				changed = true
				continue
			}
			newID[op.ID] = ng.AddConst(constVal[rep])
			if op.Kind != dfg.Const {
				changed = true // a folded expression became a constant
			}
		default:
			a := newID[remap[op.Args[0]]]
			b := newID[remap[op.Args[1]]]
			newID[op.ID] = ng.AddBinary(op.Kind, a, b)
		}
	}
	return ng, res, changed
}
