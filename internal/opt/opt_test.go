package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/mediabench"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

// equivalent checks the two graphs compute identical outputs over a trace.
func equivalent(t *testing.T, g1, g2 *dfg.Graph, tr *trace.Trace) {
	t.Helper()
	r1, err := sim.Run(context.Background(), g1, tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(context.Background(), g2, tr)
	if err != nil {
		t.Fatal(err)
	}
	o1 := g1.Outputs()
	o2 := g2.Outputs()
	if len(o1) != len(o2) {
		t.Fatalf("output counts differ: %d vs %d", len(o1), len(o2))
	}
	for s := range tr.Samples {
		for i := range o1 {
			if g1.Ops[o1[i]].Name != g2.Ops[o2[i]].Name {
				t.Fatalf("output order changed: %q vs %q", g1.Ops[o1[i]].Name, g2.Ops[o2[i]].Name)
			}
			if r1.Vals[s][o1[i]] != r2.Vals[s][o2[i]] {
				t.Fatalf("sample %d output %q: %d vs %d",
					s, g1.Ops[o1[i]].Name, r1.Vals[s][o1[i]], r2.Vals[s][o2[i]])
			}
		}
	}
}

func inputsOf(g *dfg.Graph) []string {
	var names []string
	for _, id := range g.Inputs() {
		names = append(names, g.Ops[id].Name)
	}
	return names
}

func TestCSEMergesDuplicates(t *testing.T) {
	g, err := frontend.Compile(`
kernel c;
input a, b;
output y, z;
t0 = a + b;
t1 = b + a;
y = t0 * 3;
z = t1 * 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	og, res, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	// a+b and b+a merge (commutative); then t0*3 and t1*3 merge.
	if res.CSEMerged < 2 {
		t.Errorf("CSEMerged = %d, want >= 2", res.CSEMerged)
	}
	st := og.Stat()
	if st.Adds != 1 || st.Muls != 1 {
		t.Errorf("optimised stats = %+v, want 1 add 1 mul", st)
	}
	tr := trace.Generate(trace.Uniform, inputsOf(g), 128, 1)
	equivalent(t, g, og, tr)
}

func TestConstantFolding(t *testing.T) {
	g, err := frontend.Compile(`
kernel f;
input a;
output y;
k = 3 * 5;
m = k + 7;
y = a + m;
`)
	if err != nil {
		t.Fatal(err)
	}
	og, res, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.FoldedConsts < 2 {
		t.Errorf("FoldedConsts = %d, want >= 2 (3*5 and k+7)", res.FoldedConsts)
	}
	if st := og.Stat(); st.Adds != 1 || st.Muls != 0 {
		t.Errorf("optimised stats = %+v, want a single add", st)
	}
	tr := trace.Generate(trace.Uniform, inputsOf(g), 64, 2)
	equivalent(t, g, og, tr)
}

func TestDeadCodeElimination(t *testing.T) {
	g := dfg.New("dead")
	a := g.AddInput("a")
	b := g.AddInput("b")
	used := g.AddBinary(dfg.Add, a, b)
	g.AddBinary(dfg.Mul, a, b) // dead
	dead2 := g.AddBinary(dfg.Sub, a, b)
	g.AddBinary(dfg.Add, dead2, a) // dead chain
	g.AddOutput("y", used)
	og, res, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadRemoved < 3 {
		t.Errorf("DeadRemoved = %d, want >= 3", res.DeadRemoved)
	}
	if st := og.Stat(); st.Adds != 1 || st.Muls != 0 {
		t.Errorf("optimised stats = %+v", st)
	}
	// I/O signature preserved, including inputs that became unused.
	if len(og.Inputs()) != 2 {
		t.Errorf("inputs = %d, want 2", len(og.Inputs()))
	}
}

func TestOptimizePreservesAllBenchmarks(t *testing.T) {
	// The strongest equivalence check: every MediaBench kernel optimised
	// and simulated against the original over its own workload.
	for _, b := range mediabench.All() {
		g, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		og, res, err := Optimize(g)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		tr := b.Workload(g, 200, 7)
		equivalent(t, g, og, tr)
		before := g.Stat()
		after := og.Stat()
		if after.Adds > before.Adds || after.Muls > before.Muls {
			t.Errorf("%s: optimisation grew the graph: %+v -> %+v", b.Name, before, after)
		}
		t.Logf("%s: %d+%d ops -> %d+%d (folded %d, merged %d, dead %d)",
			b.Name, before.Adds, before.Muls, after.Adds, after.Muls,
			res.FoldedConsts, res.CSEMerged, res.DeadRemoved)
	}
}

// Property: optimisation is idempotent — a second run changes nothing.
func TestOptimizeIdempotentQuick(t *testing.T) {
	benches := mediabench.All()
	f := func(idx uint8) bool {
		b := benches[int(idx)%len(benches)]
		g, err := b.Compile()
		if err != nil {
			return false
		}
		o1, _, err := Optimize(g)
		if err != nil {
			return false
		}
		o2, res2, err := Optimize(o1)
		if err != nil {
			return false
		}
		return len(o2.Ops) == len(o1.Ops) &&
			res2.FoldedConsts == 0 && res2.CSEMerged == 0 && res2.DeadRemoved == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 22}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeRejectsInvalid(t *testing.T) {
	g := dfg.New("bad")
	g.AddInput("a")
	g.AddInput("a") // duplicate name: invalid
	if _, _, err := Optimize(g); err == nil {
		t.Fatal("invalid graph must be rejected")
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	g, err := frontend.Compile(`
kernel alg;
input a, b;
output p, q, r, s, u;
p = a * 1;
q = a + 0;
r = a - 0;
s = absdiff(a, 0) + b * 0;
u = 0 + b;
`)
	if err != nil {
		t.Fatal(err)
	}
	og, res, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Simplified < 5 {
		t.Errorf("Simplified = %d, want >= 5", res.Simplified)
	}
	// Everything reduces to wires and one dead-free add (s = a + 0 = a).
	if st := og.Stat(); st.Adds != 0 || st.Muls != 0 {
		t.Errorf("optimised stats = %+v, want no FU ops at all", st)
	}
	tr := trace.Generate(trace.Uniform, inputsOf(g), 128, 3)
	equivalent(t, g, og, tr)
}

// Property: optimisation preserves behaviour on randomly generated graphs
// with constant-heavy structure.
func TestOptimizeEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := randNew(seed)
		g := dfg.New("q")
		a := g.AddInput("a")
		b := g.AddInput("b")
		avail := []dfg.OpID{a, b, g.AddConst(0), g.AddConst(1), g.AddConst(uint8(r.Intn(256)))}
		kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.AbsDiff}
		var last dfg.OpID
		for i := 0; i < 3+r.Intn(25); i++ {
			x := avail[r.Intn(len(avail))]
			y := avail[r.Intn(len(avail))]
			last = g.AddBinary(kinds[r.Intn(len(kinds))], x, y)
			avail = append(avail, last)
		}
		g.AddOutput("y", last)
		og, _, err := Optimize(g)
		if err != nil {
			return false
		}
		tr := trace.Generate(trace.Uniform, []string{"a", "b"}, 64, seed)
		r1, err := sim.Run(context.Background(), g, tr)
		if err != nil {
			return false
		}
		r2, err := sim.Run(context.Background(), og, tr)
		if err != nil {
			return false
		}
		out1 := g.Outputs()[0]
		out2 := og.Outputs()[0]
		for s := range tr.Samples {
			if r1.Vals[s][out1] != r2.Vals[s][out2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randNew seeds a local PRNG for the property tests.
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
