package codesign

import (
	"context"
	"fmt"
	"time"

	"bindlock/internal/interrupt"

	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/sim"
)

// Target is a designer's security goal for the Sec. V-C methodology: an
// application error rate the locking must cause over the typical workload,
// and a minimum permissible SAT attack runtime.
type Target struct {
	// MinErrors is the minimum Eqn. 2 application error count.
	MinErrors int
	// MinSATTime is the minimum modelled SAT attack wall time.
	MinSATTime time.Duration
	// MaxMintermsPerFU bounds how many inputs each FU may lock while
	// searching for the error target (default 8).
	MaxMintermsPerFU int
	// MaxFullLockKeyBits bounds the supplementary routing network
	// (default 1024).
	MaxFullLockKeyBits int
	// BaseGates is the design size used for overhead reporting (default
	// locking.B14Gates).
	BaseGates int
}

// Plan is the methodology's output: a co-designed critical-minterm locking
// configuration meeting the error target with the fewest locked inputs
// (hence maximum SAT resilience), supplemented — only if needed — by an
// exponential-iteration-runtime network sized to meet the SAT time target.
type Plan struct {
	// Result is the co-designed minterm locking solution.
	Result *Result
	// MintermsPerFU is the locked input count per FU the search settled on.
	MintermsPerFU int
	// Lambda is the Eqn. 1 expected SAT iterations of the weakest locked
	// module.
	Lambda float64
	// FullLockKeyBits is the supplementary routing network size (0 when
	// minterm locking alone meets the SAT target).
	FullLockKeyBits int
	// EstSATTime is the modelled total attack time of the combined scheme.
	EstSATTime time.Duration
	// AreaOverhead and PowerOverhead are the routing network's overhead
	// fractions (0 when no network is used).
	AreaOverhead, PowerOverhead float64
}

// Methodology implements Sec. V-C: "by using our co-design approach to
// incrementally tune the number of locked inputs in each FU, a locking
// configuration can be designed that achieves a sufficient application error
// rate with the minimum number of locked inputs, hence, the maximum SAT
// resilience. If the SAT resilience of this locking configuration is
// insufficient, exponential SAT iteration runtime locking schemes can be
// used alongside ... to increase SAT runtime to a sufficient level."
func Methodology(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, base Options, target Target) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if target.MaxMintermsPerFU == 0 {
		target.MaxMintermsPerFU = 8
	}
	if target.MaxFullLockKeyBits == 0 {
		target.MaxFullLockKeyBits = 1024
	}
	if target.BaseGates == 0 {
		target.BaseGates = locking.B14Gates
	}
	if target.MaxMintermsPerFU > len(base.Candidates) {
		target.MaxMintermsPerFU = len(base.Candidates)
	}

	// Step 1: smallest per-FU locked input count meeting the error target.
	var res *Result
	m := 0
	for m = 1; m <= target.MaxMintermsPerFU; m++ {
		base.MintermsPerFU = m
		r, err := Heuristic(ctx, g, k, base)
		if err != nil {
			return nil, interrupt.Rewrap("codesign: methodology", err, &Plan{Result: res, MintermsPerFU: m - 1})
		}
		if r.Errors >= target.MinErrors {
			res = r
			break
		}
		res = r
	}
	if res == nil || res.Errors < target.MinErrors {
		return nil, fmt.Errorf("codesign: error target %d unreachable; best achievable is %d with %d locked inputs per FU",
			target.MinErrors, res.Errors, target.MaxMintermsPerFU)
	}

	// Step 2: SAT resilience of the minterm locking alone.
	lambda, err := locking.ConfigResilience(res.Cfg)
	if err != nil {
		return nil, err
	}
	iters := int(lambda)
	if lambda > 1<<30 {
		iters = 1 << 30
	}

	// Step 3: size the supplementary routing network only as far as needed.
	keyBits, err := locking.MinFullLockKeyBits(iters, target.MinSATTime, target.MaxFullLockKeyBits)
	if err != nil {
		return nil, fmt.Errorf("codesign: SAT time target: %w", err)
	}
	plan := &Plan{
		Result:          res,
		MintermsPerFU:   m,
		Lambda:          lambda,
		FullLockKeyBits: keyBits,
		EstSATTime:      locking.SATAttackTime(keyBits, iters),
	}
	if keyBits > 0 {
		plan.AreaOverhead, plan.PowerOverhead, err = locking.FullLockOverhead(keyBits, target.BaseGates)
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}
