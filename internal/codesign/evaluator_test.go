package codesign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/sim"
)

// wideGraph builds a scheduled DFG with `perCycle` adds in each of `cycles`
// cycles.
func wideGraph(cycles, perCycle int) *dfg.Graph {
	g := dfg.New("wide")
	a := g.AddInput("a")
	b := g.AddInput("b")
	var last dfg.OpID
	for t := 1; t <= cycles; t++ {
		for i := 0; i < perCycle; i++ {
			last = g.AddBinary(dfg.Add, a, b)
			g.Ops[last].Cycle = t
		}
	}
	g.AddOutput("y", last)
	return g
}

func TestEvaluatorExportedAPI(t *testing.T) {
	g := wideGraph(2, 2)
	cands := []dfg.Minterm{
		dfg.CanonMinterm(dfg.Add, 1, 1),
		dfg.CanonMinterm(dfg.Add, 2, 2),
	}
	k := sim.NewKMatrix(len(g.Ops))
	adds := g.OpsOfClass(dfg.ClassAdd)
	k.Add(cands[0], adds[0], 5)
	k.Add(cands[1], adds[1], 3)
	k.Add(cands[0], adds[2], 7)
	k.Add(cands[1], adds[3], 2)

	o := Options{Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 1, MintermsPerFU: 1,
		Candidates: cands, Scheme: locking.SFLLRem}
	ev := NewEvaluator(g, k, o)

	// FU0 locks candidate 0: optimal binding grabs ops 0 (5) and 2 (7).
	if got := ev.Eval([][]int{{0}, nil}); got != 12 {
		t.Errorf("Eval = %d, want 12", got)
	}
	// Both FUs locked on different candidates: 5+3 in cycle 1, 7+2 in 2.
	if got := ev.Eval([][]int{{0}, {1}}); got != 17 {
		t.Errorf("Eval = %d, want 17", got)
	}

	// BaselineEval on a fixed binding: ops 0,2 on FU0; 1,3 on FU1.
	opOnFU := map[dfg.OpID]int{adds[0]: 0, adds[1]: 1, adds[2]: 0, adds[3]: 1}
	if got := ev.BaselineEval(opOnFU, [][]int{{0}, nil}); got != 12 {
		t.Errorf("BaselineEval = %d, want 12", got)
	}
	if got := ev.BaselineEval(opOnFU, [][]int{{1}, nil}); got != 0 {
		t.Errorf("BaselineEval = %d, want 0 (candidate 1 never on FU0)", got)
	}

	// PerFUCandidateTotals must agree with BaselineEval sums.
	totals := ev.PerFUCandidateTotals(opOnFU, len(cands))
	if totals[0][0] != 12 || totals[0][1] != 0 || totals[1][0] != 0 || totals[1][1] != 5 {
		t.Errorf("totals = %v", totals)
	}
}

// TestEvaluatorHungarianFallback exercises the large-allocation path
// (NumFUs > 4 bypasses direct assignment enumeration) and checks it agrees
// with the official binder.
func TestEvaluatorHungarianFallback(t *testing.T) {
	g := wideGraph(3, 5)
	cands := []dfg.Minterm{
		dfg.CanonMinterm(dfg.Add, 1, 1),
		dfg.CanonMinterm(dfg.Add, 2, 2),
		dfg.CanonMinterm(dfg.Add, 3, 3),
	}
	k := sim.NewKMatrix(len(g.Ops))
	for i, id := range g.OpsOfClass(dfg.ClassAdd) {
		k.Add(cands[i%3], id, 1+i*i%11)
	}
	const numFUs = 6
	o := Options{Class: dfg.ClassAdd, NumFUs: numFUs, LockedFUs: 2, MintermsPerFU: 1,
		Candidates: cands, Scheme: locking.SFLLRem}
	ev := NewEvaluator(g, k, o)
	if ev.assignments != nil {
		t.Fatal("allocation of 6 FUs must use the Hungarian fallback")
	}
	sets := [][]int{{0}, {2}, nil, nil, nil, nil}
	got := ev.Eval(sets)

	cfg := o.configFor(sets)
	bd, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
		G: g, Class: dfg.ClassAdd, NumFUs: numFUs, K: k, Lock: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := binding.ApplicationErrors(g, k, cfg, bd)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Hungarian-path Eval = %d, binder = %d", got, want)
	}
}

// Property: the direct-enumeration path and the Hungarian path agree on
// random instances where both are applicable.
func TestEvaluatorPathsAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		g := wideGraph(1+r.Intn(3), 1+r.Intn(3))
		cands := []dfg.Minterm{
			dfg.CanonMinterm(dfg.Add, 1, 1),
			dfg.CanonMinterm(dfg.Add, 2, 2),
		}
		k := sim.NewKMatrix(len(g.Ops))
		for _, id := range g.OpsOfClass(dfg.ClassAdd) {
			for ci := range cands {
				if c := r.Intn(8); c > 0 {
					k.Add(cands[ci], id, c)
				}
			}
		}
		numFUs := 3
		o := Options{Class: dfg.ClassAdd, NumFUs: numFUs, LockedFUs: 2, MintermsPerFU: 1,
			Candidates: cands, Scheme: locking.SFLLRem}
		evDirect := NewEvaluator(g, k, o)
		evHung := NewEvaluator(g, k, o)
		evHung.assignments = nil // force the Hungarian path
		sets := [][]int{{r.Intn(2)}, {r.Intn(2)}, nil}
		return evDirect.Eval(sets) == evHung.Eval(sets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCombinationsExported(t *testing.T) {
	if got := len(Combinations(10, 3)); got != 120 {
		t.Fatalf("C(10,3) = %d, want 120", got)
	}
	if got := len(Combinations(5, 1)); got != 5 {
		t.Fatalf("C(5,1) = %d, want 5", got)
	}
}

// newRand avoids importing math/rand at top level in multiple test files.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
