package codesign

import (
	"bindlock/internal/dfg"
	"bindlock/internal/matching"
	"bindlock/internal/sim"
)

// evaluator computes the Eqn. 2 cost of the obfuscation-aware binding for a
// candidate-set assignment without materialising configs or bindings. The
// enumeration loops of Optimal/Heuristic call it millions of times, so it
// pre-tabulates candidate occurrence counts per operation and, for the small
// FU counts typical of HLS (R ≤ 4), replaces the Hungarian solver with direct
// enumeration of the per-cycle assignments.
type Evaluator struct {
	// cycles[t] lists the class ops of the t-th occupied cycle.
	cycles [][]dfg.OpID
	// cnt[op][c] is K_{candidate c, op}; op indexed by a dense remap.
	cnt    map[dfg.OpID][]int
	numFUs int
	// assignments[k] enumerates the injective maps of k ops onto FUs,
	// precomputed when numFUs is small.
	assignments [][][]int
}

const directEnumFUs = 4

// NewEvaluator builds an evaluator for the given problem. It is exported for
// the experiment harness, which sweeps far more candidate-set assignments
// than the co-design algorithms themselves.
func NewEvaluator(g *dfg.Graph, k *sim.KMatrix, o Options) *Evaluator {
	return newEvaluator(g, k, &o)
}

func newEvaluator(g *dfg.Graph, k *sim.KMatrix, o *Options) *Evaluator {
	ev := &Evaluator{cnt: map[dfg.OpID][]int{}, numFUs: o.NumFUs}
	for _, t := range g.SortedCycleList(o.Class) {
		ops := g.AtCycle(o.Class, t)
		ev.cycles = append(ev.cycles, ops)
		for _, op := range ops {
			row := make([]int, len(o.Candidates))
			for ci, m := range o.Candidates {
				row[ci] = k.Count(m, op)
			}
			ev.cnt[op] = row
		}
	}
	if o.NumFUs <= directEnumFUs {
		maxOps := 0
		for _, ops := range ev.cycles {
			if len(ops) > maxOps {
				maxOps = len(ops)
			}
		}
		ev.assignments = make([][][]int, maxOps+1)
		for kk := 1; kk <= maxOps; kk++ {
			ev.assignments[kk] = injections(kk, o.NumFUs)
		}
	}
	return ev
}

// injections enumerates all injective assignments of k sources onto n sinks.
func injections(k, n int) [][]int {
	var out [][]int
	cur := make([]int, k)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for f := 0; f < n; f++ {
			if !used[f] {
				used[f] = true
				cur[i] = f
				rec(i + 1)
				used[f] = false
			}
		}
	}
	rec(0)
	return out
}

// Eval returns the Eqn. 2 cost of the optimal obfuscation-aware binding when
// FU f locks the candidate indices sets[f] (nil = unlocked). Cycles are
// separable (Thm. 2), so the per-cycle optima sum to the global optimum.
func (ev *Evaluator) Eval(sets [][]int) int {
	return ev.eval(sets)
}

// BaselineEval returns the Eqn. 2 cost when the binding is fixed (opOnFU maps
// each class op to its FU) and FU f locks the candidate indices sets[f]. This
// is the cost of applying an identical locking configuration to a circuit
// bound by a security-oblivious algorithm.
func (ev *Evaluator) BaselineEval(opOnFU map[dfg.OpID]int, sets [][]int) int {
	total := 0
	for _, ops := range ev.cycles {
		for _, op := range ops {
			set := sets[opOnFU[op]]
			if set == nil {
				continue
			}
			row := ev.cnt[op]
			for _, ci := range set {
				total += row[ci]
			}
		}
	}
	return total
}

// PerFUCandidateTotals returns totals[fu][c]: the summed occurrences of
// candidate c over the ops the fixed binding places on FU fu. Harness code
// uses it to evaluate many lock placements on one baseline binding cheaply.
func (ev *Evaluator) PerFUCandidateTotals(opOnFU map[dfg.OpID]int, numCands int) [][]int {
	totals := make([][]int, ev.numFUs)
	for fu := range totals {
		totals[fu] = make([]int, numCands)
	}
	for _, ops := range ev.cycles {
		for _, op := range ops {
			fu := opOnFU[op]
			row := ev.cnt[op]
			for c := 0; c < numCands; c++ {
				totals[fu][c] += row[c]
			}
		}
	}
	return totals
}

func (ev *Evaluator) eval(sets [][]int) int {
	total := 0
	for _, ops := range ev.cycles {
		if ev.assignments != nil {
			best := 0
			for _, as := range ev.assignments[len(ops)] {
				sum := 0
				for i, op := range ops {
					set := sets[as[i]]
					if set == nil {
						continue
					}
					row := ev.cnt[op]
					for _, ci := range set {
						sum += row[ci]
					}
				}
				if sum > best {
					best = sum
				}
			}
			total += best
			continue
		}
		// Large allocations: fall back to the Hungarian solver.
		w := make([][]float64, len(ops))
		for i, op := range ops {
			w[i] = make([]float64, ev.numFUs)
			row := ev.cnt[op]
			for f := 0; f < ev.numFUs; f++ {
				if sets[f] == nil {
					continue
				}
				s := 0
				for _, ci := range sets[f] {
					s += row[ci]
				}
				w[i][f] = float64(s)
			}
		}
		_, sum, err := matching.MaxWeight(w)
		if err == nil {
			total += int(sum + 0.5)
		}
	}
	return total
}
