// Package codesign implements binding–obfuscation co-design (Sec. V of the
// paper): choosing the binding and the locked input minterms together to
// maximise locking-induced application errors.
//
// Two algorithms are provided. Optimal enumerates every combination of
// candidate locked inputs for every locked FU — ((|C| choose |M|))^|L|
// combinations — applying obfuscation-informed binding to each; it is exact
// but exponential. Heuristic is the paper's P-time algorithm: it fixes locked
// FUs one at a time, enumerating combinations only for the FU under
// consideration with all previously fixed FUs locked and the rest unlocked
// (Sec. V-A, steps 1–5). The paper measures the heuristic within 0.5% of
// optimal; the experiment harness reproduces that comparison.
package codesign

import (
	"context"
	"fmt"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/locking"
	"bindlock/internal/progress"
	"bindlock/internal/sim"
)

// Options configures a co-design run.
type Options struct {
	Class dfg.Class
	// NumFUs is the allocation size R.
	NumFUs int
	// LockedFUs is |L|: FUs 0..LockedFUs-1 are locked.
	LockedFUs int
	// MintermsPerFU is |M_l|, identical for each locked FU (as in the
	// paper's evaluation sweep).
	MintermsPerFU int
	// Candidates is the designer-specified candidate locked input list C.
	Candidates []dfg.Minterm
	// Scheme is the critical-minterm scheme realising the lock.
	Scheme locking.Scheme
	// MaxEnumerations bounds the optimal algorithm's combination count;
	// 0 applies DefaultMaxEnumerations. The heuristic ignores it.
	MaxEnumerations int
}

// DefaultMaxEnumerations caps the optimal algorithm's search size.
const DefaultMaxEnumerations = 400000

// Result is a co-designed locking configuration with its binding and cost.
type Result struct {
	Cfg     *locking.Config
	Binding *binding.Binding
	// Errors is the Eqn. 2 application error count of the solution.
	Errors int
	// Enumerated is the number of locked-input combinations evaluated.
	Enumerated int
}

func (o *Options) check(g *dfg.Graph, k *sim.KMatrix) error {
	if g == nil || k == nil {
		return fmt.Errorf("codesign: graph and K matrix required")
	}
	if o.LockedFUs < 1 || o.LockedFUs > o.NumFUs {
		return fmt.Errorf("codesign: locked FU count %d outside [1, %d]", o.LockedFUs, o.NumFUs)
	}
	if o.MintermsPerFU < 1 || o.MintermsPerFU > len(o.Candidates) {
		return fmt.Errorf("codesign: %d minterms per FU with %d candidates", o.MintermsPerFU, len(o.Candidates))
	}
	if !o.Scheme.CriticalMinterm() {
		return fmt.Errorf("codesign: scheme %v cannot pin locked inputs", o.Scheme)
	}
	if o.NumFUs < g.MaxConcurrency(o.Class) {
		return fmt.Errorf("codesign: allocation %d below max concurrency %d",
			o.NumFUs, g.MaxConcurrency(o.Class))
	}
	seen := map[dfg.Minterm]bool{}
	for _, m := range o.Candidates {
		if seen[m] {
			return fmt.Errorf("codesign: duplicate candidate %v", m)
		}
		seen[m] = true
	}
	return nil
}

// configFor materialises a locking configuration from per-FU candidate index
// sets.
func (o *Options) configFor(sets [][]int) *locking.Config {
	cfg := &locking.Config{Class: o.Class, NumFUs: o.NumFUs}
	for fu, set := range sets {
		if set == nil {
			continue
		}
		ms := make([]dfg.Minterm, len(set))
		for i, ci := range set {
			ms[i] = o.Candidates[ci]
		}
		cfg.Locks = append(cfg.Locks, locking.FULock{
			FU: fu, Scheme: o.Scheme, Minterms: ms, KeyBits: locking.DefaultKeyBits,
		})
	}
	return cfg
}

// finalize runs the official obfuscation-aware binder on the winning
// configuration and packages the result.
func finalize(g *dfg.Graph, k *sim.KMatrix, o *Options, sets [][]int, enumerated int) (*Result, error) {
	cfg := o.configFor(sets)
	b, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
		G: g, Class: o.Class, NumFUs: o.NumFUs, K: k, Lock: cfg,
	})
	if err != nil {
		return nil, err
	}
	e, err := binding.ApplicationErrors(g, k, cfg, b)
	if err != nil {
		return nil, err
	}
	return &Result{Cfg: cfg, Binding: b, Errors: e, Enumerated: enumerated}, nil
}

// ctxEvery is the candidate-evaluation stride between context checks in the
// enumeration loops: cheap evals dominate, so checking every leaf would cost
// more than the work it guards.
const ctxEvery = 256

// Optimal runs the exact co-design algorithm. It returns an error when the
// enumeration exceeds the configured budget ("this results in a
// non-polynomial runtime", Sec. V-B); callers wanting an any-size answer
// should use Heuristic. Cancellation is checked every few hundred candidate
// evaluations; an interrupted search returns the best solution found so far
// (bound and costed) alongside the typed interruption error.
func Optimal(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.check(g, k); err != nil {
		return nil, err
	}
	combos := combinations(len(o.Candidates), o.MintermsPerFU)
	total := 1
	budget := o.MaxEnumerations
	if budget == 0 {
		budget = DefaultMaxEnumerations
	}
	for i := 0; i < o.LockedFUs; i++ {
		if total > budget/len(combos)+1 {
			total = budget + 1
			break
		}
		total *= len(combos)
	}
	if total > budget {
		return nil, fmt.Errorf("codesign: optimal enumeration of %d^%d combinations exceeds budget %d",
			len(combos), o.LockedFUs, budget)
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "codesign", fmt.Sprintf("optimal over %d combinations", total))
	ev := newEvaluator(g, k, &o)
	sets := make([][]int, o.NumFUs)
	bestSets := make([][]int, o.NumFUs)
	bestE := -1
	enumerated := 0
	var rec func(fu int) error
	rec = func(fu int) error {
		if fu == o.LockedFUs {
			enumerated++
			if enumerated%ctxEvery == 0 {
				if cerr := interrupt.Check(ctx, "codesign: optimal", nil); cerr != nil {
					return cerr
				}
				progress.Tick(hook, "codesign", enumerated, total)
			}
			if e := ev.eval(sets); e > bestE {
				bestE = e
				for i := range sets {
					bestSets[i] = append([]int(nil), sets[i]...)
				}
			}
			return nil
		}
		for _, c := range combos {
			sets[fu] = c
			if err := rec(fu + 1); err != nil {
				return err
			}
		}
		sets[fu] = nil
		return nil
	}
	if cerr := rec(0); cerr != nil {
		return interruptedResult(g, k, &o, bestSets, enumerated, "codesign: optimal", cerr, hook)
	}
	progress.End(hook, "codesign", fmt.Sprintf("optimal: %d evaluated", enumerated))
	return finalize(g, k, &o, bestSets, enumerated)
}

// interruptedResult packages the best-so-far candidate sets of a cancelled
// enumeration: the partial solution is bound and costed like a final one so
// callers get a usable configuration, then attached to the typed error.
func interruptedResult(g *dfg.Graph, k *sim.KMatrix, o *Options, bestSets [][]int, enumerated int, op string, cause error, hook progress.Hook) (*Result, error) {
	progress.End(hook, "codesign", fmt.Sprintf("interrupted after %d evaluations", enumerated))
	any := false
	for _, s := range bestSets {
		if s != nil {
			any = true
			break
		}
	}
	if !any {
		return nil, interrupt.Rewrap(op, cause, nil)
	}
	res, err := finalize(g, k, o, bestSets, enumerated)
	if err != nil {
		return nil, interrupt.Rewrap(op, cause, nil)
	}
	return res, interrupt.Rewrap(op, cause, res)
}

// Heuristic runs the paper's P-time sequential algorithm: locked FUs are
// processed one at a time; for the FU under consideration every candidate
// combination is tried (with previously fixed FUs locked and later FUs
// unlocked) and the best is frozen before moving on.
// Cancellation is checked every few hundred candidate evaluations; an
// interrupted search returns the configuration frozen so far.
func Heuristic(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.check(g, k); err != nil {
		return nil, err
	}
	combos := combinations(len(o.Candidates), o.MintermsPerFU)
	hook := progress.FromContext(ctx)
	progress.Start(hook, "codesign", fmt.Sprintf("heuristic over %d combinations per FU", len(combos)))
	ev := newEvaluator(g, k, &o)
	sets := make([][]int, o.NumFUs)
	enumerated := 0
	for fu := 0; fu < o.LockedFUs; fu++ {
		bestE := -1
		var best []int
		for _, c := range combos {
			sets[fu] = c
			enumerated++
			if enumerated%ctxEvery == 0 {
				if cerr := interrupt.Check(ctx, "codesign: heuristic", nil); cerr != nil {
					sets[fu] = best
					return interruptedResult(g, k, &o, sets, enumerated, "codesign: heuristic", cerr, hook)
				}
				progress.Tick(hook, "codesign", enumerated, len(combos)*o.LockedFUs)
			}
			if e := ev.eval(sets); e > bestE {
				bestE = e
				best = c
			}
		}
		sets[fu] = best
	}
	progress.End(hook, "codesign", fmt.Sprintf("heuristic: %d evaluated", enumerated))
	return finalize(g, k, &o, sets, enumerated)
}

// Combinations returns all k-subsets of {0..n-1} in lexicographic order.
// The co-design algorithms enumerate these; the experiment harness reuses
// them to sweep locked-input identities.
func Combinations(n, k int) [][]int {
	return combinations(n, k)
}

// combinations returns all k-subsets of {0..n-1} in lexicographic order.
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i <= n-(k-pos); i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}
