// Package codesign implements binding–obfuscation co-design (Sec. V of the
// paper): choosing the binding and the locked input minterms together to
// maximise locking-induced application errors.
//
// Two algorithms are provided. Optimal enumerates every combination of
// candidate locked inputs for every locked FU — ((|C| choose |M|))^|L|
// combinations — applying obfuscation-informed binding to each; it is exact
// but exponential. Heuristic is the paper's P-time algorithm: it fixes locked
// FUs one at a time, enumerating combinations only for the FU under
// consideration with all previously fixed FUs locked and the rest unlocked
// (Sec. V-A, steps 1–5). The paper measures the heuristic within 0.5% of
// optimal; the experiment harness reproduces that comparison.
package codesign

import (
	"context"
	"fmt"
	"sync/atomic"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/locking"
	"bindlock/internal/metrics"
	"bindlock/internal/parallel"
	"bindlock/internal/progress"
	"bindlock/internal/sim"
)

// Options configures a co-design run.
type Options struct {
	Class dfg.Class
	// NumFUs is the allocation size R.
	NumFUs int
	// LockedFUs is |L|: FUs 0..LockedFUs-1 are locked.
	LockedFUs int
	// MintermsPerFU is |M_l|, identical for each locked FU (as in the
	// paper's evaluation sweep).
	MintermsPerFU int
	// Candidates is the designer-specified candidate locked input list C.
	Candidates []dfg.Minterm
	// Scheme is the critical-minterm scheme realising the lock.
	Scheme locking.Scheme
	// MaxEnumerations bounds the optimal algorithm's combination count;
	// 0 applies DefaultMaxEnumerations. The heuristic ignores it.
	MaxEnumerations int
	// DegradeToHeuristic makes Optimal fall back to Heuristic instead of
	// failing when the enumeration exceeds the budget. The result then has
	// Degraded set so callers can tell an exact optimum from a fallback.
	DegradeToHeuristic bool
}

// DefaultMaxEnumerations caps the optimal algorithm's search size.
const DefaultMaxEnumerations = 400000

// Result is a co-designed locking configuration with its binding and cost.
type Result struct {
	Cfg     *locking.Config
	Binding *binding.Binding
	// Errors is the Eqn. 2 application error count of the solution.
	Errors int
	// Enumerated is the number of locked-input combinations evaluated.
	Enumerated int
	// Degraded reports that Optimal exceeded its enumeration budget and
	// fell back to the heuristic (Options.DegradeToHeuristic): the result
	// is a good solution, not a provable optimum.
	Degraded bool
}

func (o *Options) check(g *dfg.Graph, k *sim.KMatrix) error {
	if g == nil || k == nil {
		return fmt.Errorf("codesign: graph and K matrix required")
	}
	if o.LockedFUs < 1 || o.LockedFUs > o.NumFUs {
		return fmt.Errorf("codesign: locked FU count %d outside [1, %d]", o.LockedFUs, o.NumFUs)
	}
	if o.MintermsPerFU < 1 || o.MintermsPerFU > len(o.Candidates) {
		return fmt.Errorf("codesign: %d minterms per FU with %d candidates", o.MintermsPerFU, len(o.Candidates))
	}
	if !o.Scheme.CriticalMinterm() {
		return fmt.Errorf("codesign: scheme %v cannot pin locked inputs", o.Scheme)
	}
	if o.NumFUs < g.MaxConcurrency(o.Class) {
		return fmt.Errorf("codesign: allocation %d below max concurrency %d",
			o.NumFUs, g.MaxConcurrency(o.Class))
	}
	seen := map[dfg.Minterm]bool{}
	for _, m := range o.Candidates {
		if seen[m] {
			return fmt.Errorf("codesign: duplicate candidate %v", m)
		}
		seen[m] = true
	}
	return nil
}

// configFor materialises a locking configuration from per-FU candidate index
// sets.
func (o *Options) configFor(sets [][]int) *locking.Config {
	cfg := &locking.Config{Class: o.Class, NumFUs: o.NumFUs}
	for fu, set := range sets {
		if set == nil {
			continue
		}
		ms := make([]dfg.Minterm, len(set))
		for i, ci := range set {
			ms[i] = o.Candidates[ci]
		}
		cfg.Locks = append(cfg.Locks, locking.FULock{
			FU: fu, Scheme: o.Scheme, Minterms: ms, KeyBits: locking.DefaultKeyBits,
		})
	}
	return cfg
}

// finalize runs the official obfuscation-aware binder on the winning
// configuration and packages the result. The binding phase is the one
// non-enumeration cost of a co-design run, so it gets its own timing.
func finalize(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o *Options, sets [][]int, enumerated int) (*Result, error) {
	mreg := metrics.FromContext(ctx)
	defer mreg.Timer("binding_bind_seconds")()
	mreg.Add("binding_bind_total", 1)
	cfg := o.configFor(sets)
	b, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
		G: g, Class: o.Class, NumFUs: o.NumFUs, K: k, Lock: cfg,
	})
	if err != nil {
		return nil, err
	}
	e, err := binding.ApplicationErrors(g, k, cfg, b)
	if err != nil {
		return nil, err
	}
	return &Result{Cfg: cfg, Binding: b, Errors: e, Enumerated: enumerated}, nil
}

// ctxEvery is the candidate-evaluation stride between context checks in the
// enumeration loops: cheap evals dominate, so checking every leaf would cost
// more than the work it guards.
const ctxEvery = 256

// Optimal runs the exact co-design algorithm. It returns an error when the
// enumeration exceeds the configured budget ("this results in a
// non-polynomial runtime", Sec. V-B); callers wanting an any-size answer
// should use Heuristic. Cancellation is checked every few hundred candidate
// evaluations; an interrupted search returns the best solution found so far
// (bound and costed) alongside the typed interruption error.
func Optimal(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.check(g, k); err != nil {
		return nil, err
	}
	combos := combinations(len(o.Candidates), o.MintermsPerFU)
	total := 1
	budget := o.MaxEnumerations
	if budget == 0 {
		budget = DefaultMaxEnumerations
	}
	for i := 0; i < o.LockedFUs; i++ {
		if total > budget/len(combos)+1 {
			total = budget + 1
			break
		}
		total *= len(combos)
	}
	if total > budget {
		if o.DegradeToHeuristic {
			// Graceful degradation (the paper's own answer to the
			// non-polynomial runtime, Sec. V-C): hand the instance to the
			// polynomial heuristic and mark the result as inexact.
			mreg := metrics.FromContext(ctx)
			mreg.Add("codesign_degraded_total", 1)
			res, err := Heuristic(ctx, g, k, o)
			if res != nil {
				res.Degraded = true
			}
			return res, err
		}
		return nil, fmt.Errorf("codesign: optimal enumeration of %d^%d combinations exceeds budget %d",
			len(combos), o.LockedFUs, budget)
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "codesign", fmt.Sprintf("optimal over %d combinations", total))
	mreg := metrics.FromContext(ctx)
	defer mreg.Timer("codesign_seconds")()
	ev := newEvaluator(g, k, &o)

	// The combination space shards by top-level (FU 0) combination: one task
	// per combination, each enumerating its subtree sequentially with private
	// scratch state against the shared immutable evaluator. The sequential
	// enumeration keeps the FIRST maximum in lexicographic leaf order, which
	// the merge reproduces: strict > within each subtree, then strict >
	// across subtrees in ascending task order.
	var ticks atomic.Int64
	subs, done, perr := parallel.Map(ctx, 0, len(combos), func(tctx context.Context, ti int) (subtree, error) {
		st := subtree{bestE: -1}
		sets := make([][]int, o.NumFUs)
		sets[0] = combos[ti]
		var rec func(fu int) error
		rec = func(fu int) error {
			if fu == o.LockedFUs {
				st.enumerated++
				// The check/tick stride counts evaluations globally across
				// shards; subtrees are usually far smaller than the stride.
				if ticks.Add(1)%ctxEvery == 0 {
					if cerr := interrupt.Check(tctx, "codesign: optimal", nil); cerr != nil {
						return cerr
					}
					progress.Tick(hook, "codesign", int(ticks.Load()), total)
				}
				if e := ev.eval(sets); e > st.bestE {
					st.bestE = e
					st.bestSets = make([][]int, o.NumFUs)
					for i := range sets {
						st.bestSets[i] = append([]int(nil), sets[i]...)
					}
				}
				return nil
			}
			for _, c := range combos {
				sets[fu] = c
				if err := rec(fu + 1); err != nil {
					return err
				}
			}
			sets[fu] = nil
			return nil
		}
		return st, rec(1)
	})
	best := subtree{bestE: -1}
	enumerated := 0
	for i, st := range subs {
		if !done[i] {
			continue
		}
		enumerated += st.enumerated
		if st.bestE > best.bestE {
			best = st
		}
	}
	mreg.Add("codesign_evaluated_total", int64(enumerated))
	if perr != nil {
		// Leaves the interruption cut off: the gap to the planned total.
		mreg.Add("codesign_pruned_total", int64(total-enumerated))
		return interruptedResult(ctx, g, k, &o, best.bestSets, enumerated, "codesign: optimal", perr, hook)
	}
	progress.End(hook, "codesign", fmt.Sprintf("optimal: %d evaluated", enumerated))
	return finalize(ctx, g, k, &o, best.bestSets, enumerated)
}

// subtree is one shard's outcome in the parallel enumerations: the best
// candidate-set assignment seen, its cost, and the leaves evaluated.
type subtree struct {
	bestE      int
	bestSets   [][]int
	enumerated int
}

// interruptedResult packages the best-so-far candidate sets of a cancelled
// enumeration: the partial solution is bound and costed like a final one so
// callers get a usable configuration, then attached to the typed error.
func interruptedResult(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o *Options, bestSets [][]int, enumerated int, op string, cause error, hook progress.Hook) (*Result, error) {
	progress.End(hook, "codesign", fmt.Sprintf("interrupted after %d evaluations", enumerated))
	any := false
	for _, s := range bestSets {
		if s != nil {
			any = true
			break
		}
	}
	if !any {
		return nil, interrupt.Rewrap(op, cause, nil)
	}
	res, err := finalize(ctx, g, k, o, bestSets, enumerated)
	if err != nil {
		return nil, interrupt.Rewrap(op, cause, nil)
	}
	return res, interrupt.Rewrap(op, cause, res)
}

// Heuristic runs the paper's P-time sequential algorithm: locked FUs are
// processed one at a time; for the FU under consideration every candidate
// combination is tried (with previously fixed FUs locked and later FUs
// unlocked) and the best is frozen before moving on.
// Cancellation is checked every few hundred candidate evaluations; an
// interrupted search returns the configuration frozen so far.
func Heuristic(ctx context.Context, g *dfg.Graph, k *sim.KMatrix, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := o.check(g, k); err != nil {
		return nil, err
	}
	combos := combinations(len(o.Candidates), o.MintermsPerFU)
	hook := progress.FromContext(ctx)
	progress.Start(hook, "codesign", fmt.Sprintf("heuristic over %d combinations per FU", len(combos)))
	mreg := metrics.FromContext(ctx)
	defer mreg.Timer("codesign_seconds")()
	ev := newEvaluator(g, k, &o)
	sets := make([][]int, o.NumFUs)
	enumerated := 0
	w := parallel.Workers(ctx, 0)
	if w > len(combos) {
		w = len(combos)
	}
	var ticks atomic.Int64
	for fu := 0; fu < o.LockedFUs; fu++ {
		// The rounds themselves are inherently sequential (each freezes a
		// FU before the next), but a round's combination scan shards into w
		// contiguous chunks. Merging chunk maxima in ascending order with
		// strict > reproduces the sequential scan's first-maximum choice.
		chunks, done, perr := parallel.Map(ctx, w, w, func(tctx context.Context, ci int) (subtree, error) {
			lo, hi := ci*len(combos)/w, (ci+1)*len(combos)/w
			st := subtree{bestE: -1}
			local := append([][]int(nil), sets...)
			for j := lo; j < hi; j++ {
				if ticks.Add(1)%ctxEvery == 0 {
					if cerr := interrupt.Check(tctx, "codesign: heuristic", nil); cerr != nil {
						return st, cerr
					}
					progress.Tick(hook, "codesign", int(ticks.Load()), len(combos)*o.LockedFUs)
				}
				local[fu] = combos[j]
				st.enumerated++
				if e := ev.eval(local); e > st.bestE {
					st.bestE = e
					st.bestSets = append([][]int(nil), local...)
				}
			}
			return st, nil
		})
		best := subtree{bestE: -1}
		for ci, st := range chunks {
			if !done[ci] {
				continue
			}
			enumerated += st.enumerated
			if st.bestE > best.bestE {
				best = st
			}
		}
		if perr != nil {
			mreg.Add("codesign_evaluated_total", int64(enumerated))
			mreg.Add("codesign_pruned_total", int64(len(combos)*o.LockedFUs-enumerated))
			// Frozen FUs so far plus the interrupted round's best, if any.
			partial := sets
			if best.bestSets != nil {
				partial = best.bestSets
			}
			return interruptedResult(ctx, g, k, &o, partial, enumerated, "codesign: heuristic", perr, hook)
		}
		mreg.Add("codesign_rounds_total", 1)
		sets = best.bestSets
	}
	mreg.Add("codesign_evaluated_total", int64(enumerated))
	progress.End(hook, "codesign", fmt.Sprintf("heuristic: %d evaluated", enumerated))
	return finalize(ctx, g, k, &o, sets, enumerated)
}

// Combinations returns all k-subsets of {0..n-1} in lexicographic order.
// The co-design algorithms enumerate these; the experiment harness reuses
// them to sweep locked-input identities.
func Combinations(n, k int) [][]int {
	return combinations(n, k)
}

// combinations returns all k-subsets of {0..n-1} in lexicographic order.
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i <= n-(k-pos); i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}
