package codesign

import (
	"context"
	"strings"
	"testing"
	"time"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/locking"
	"bindlock/internal/mediabench"
	"bindlock/internal/metrics"
	"bindlock/internal/progress"
	"bindlock/internal/sim"
	"errors"
)

var (
	mintermX = dfg.CanonMinterm(dfg.Add, 1, 2)
	mintermY = dfg.CanonMinterm(dfg.Add, 3, 4)
	mintermZ = dfg.CanonMinterm(dfg.Add, 5, 6)
)

// fig1 rebuilds the Sec. III motivational DFG and occurrence table.
func fig1(t *testing.T) (*dfg.Graph, *sim.KMatrix) {
	t.Helper()
	g := dfg.New("fig1")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	d := g.AddInput("d")
	e := g.AddInput("e")
	f := g.AddInput("f")
	opA := g.AddBinary(dfg.Add, a, b)
	opB := g.AddBinary(dfg.Add, d, e)
	opC := g.AddBinary(dfg.Add, opA, c)
	opD := g.AddBinary(dfg.Add, opB, f)
	g.AddOutput("y1", opC)
	g.AddOutput("y2", opD)
	g.Ops[opA].Cycle = 1
	g.Ops[opB].Cycle = 1
	g.Ops[opC].Cycle = 2
	g.Ops[opD].Cycle = 2
	k := sim.NewKMatrix(len(g.Ops))
	k.Add(mintermX, opA, 6)
	k.Add(mintermX, opB, 1)
	k.Add(mintermX, opD, 10)
	k.Add(mintermY, opA, 9)
	k.Add(mintermY, opD, 8)
	return g, k
}

// TestCoDesignMotivationalExample reproduces Sec. III-C: free to choose the
// locked input from {x, y}, co-design locks y and achieves 17 errors —
// beating every configuration locking x.
func TestCoDesignMotivationalExample(t *testing.T) {
	g, k := fig1(t)
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 1, MintermsPerFU: 1,
		Candidates: []dfg.Minterm{mintermX, mintermY},
		Scheme:     locking.SFLLRem,
	}
	for name, run := range map[string]func(context.Context, *dfg.Graph, *sim.KMatrix, Options) (*Result, error){
		"optimal": Optimal, "heuristic": Heuristic,
	} {
		t.Run(name, func(t *testing.T) {
			r, err := run(context.Background(), g, k, o)
			if err != nil {
				t.Fatal(err)
			}
			if r.Errors != 17 {
				t.Errorf("errors = %d, want 17 (9+8 from locking y)", r.Errors)
			}
			lock := r.Cfg.Locks[0]
			if len(lock.Minterms) != 1 || lock.Minterms[0] != mintermY {
				t.Errorf("locked minterms = %v, want [y]", lock.Minterms)
			}
			if err := r.Binding.Validate(g); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHeuristicMatchesOptimalOnBenchmarks(t *testing.T) {
	// Tractable configurations on two real benchmarks: the heuristic must
	// land within a whisker of the optimum (paper: < 0.5% degradation).
	for _, name := range []string{"fir", "jdmerge3"} {
		b, err := mediabench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Prepare(context.Background(), 3, 300, 42)
		if err != nil {
			t.Fatal(err)
		}
		cands := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 8)
		cs := make([]dfg.Minterm, len(cands))
		for i, mc := range cands {
			cs[i] = mc.M
		}
		o := Options{
			Class: dfg.ClassAdd, NumFUs: 3, LockedFUs: 2, MintermsPerFU: 2,
			Candidates: cs, Scheme: locking.SFLLRem,
		}
		opt, err := Optimal(context.Background(), p.G, p.Res.K, o)
		if err != nil {
			t.Fatal(err)
		}
		heu, err := Heuristic(context.Background(), p.G, p.Res.K, o)
		if err != nil {
			t.Fatal(err)
		}
		if heu.Errors > opt.Errors {
			t.Fatalf("%s: heuristic %d beats optimal %d: optimal is broken", name, heu.Errors, opt.Errors)
		}
		if float64(heu.Errors) < 0.90*float64(opt.Errors) {
			t.Errorf("%s: heuristic %d more than 10%% below optimal %d", name, heu.Errors, opt.Errors)
		}
		if opt.Enumerated != 28*28 { // (8 choose 2)^2
			t.Errorf("%s: enumerated %d, want 784", name, opt.Enumerated)
		}
	}
}

func TestOptimalAgreesWithBruteForceBinder(t *testing.T) {
	// Cross-check the fast evaluator against the official binder: for every
	// enumerated combination the evaluator's cost must equal the cost of
	// the ObfuscationAware binding.
	b, err := mediabench.ByName("jdmerge1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prepare(context.Background(), 2, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	cands := p.Res.K.TopMinterms(p.G, dfg.ClassMul, 5)
	cs := make([]dfg.Minterm, len(cands))
	for i, mc := range cands {
		cs[i] = mc.M
	}
	o := Options{
		Class: dfg.ClassMul, NumFUs: 2, LockedFUs: 1, MintermsPerFU: 2,
		Candidates: cs, Scheme: locking.SFLLRem,
	}
	if err := o.check(p.G, p.Res.K); err != nil {
		t.Fatal(err)
	}
	ev := newEvaluator(p.G, p.Res.K, &o)
	for _, combo := range combinations(len(cs), 2) {
		sets := make([][]int, o.NumFUs)
		sets[0] = combo
		want := ev.eval(sets)
		cfg := o.configFor(sets)
		bd, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
			G: p.G, Class: o.Class, NumFUs: o.NumFUs, K: p.Res.K, Lock: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := binding.ApplicationErrors(p.G, p.Res.K, cfg, bd)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("combo %v: evaluator %d, binder %d", combo, want, got)
		}
	}
}

func TestOptimalBudget(t *testing.T) {
	g, k := fig1(t)
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 1,
		Candidates: []dfg.Minterm{mintermX, mintermY, mintermZ},
		Scheme:     locking.SFLLRem,
		// 3^2 = 9 combinations > 4.
		MaxEnumerations: 4,
	}
	if _, err := Optimal(context.Background(), g, k, o); err == nil || !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("err = %v, want budget error", err)
	}
	o.MaxEnumerations = 16
	r, err := Optimal(context.Background(), g, k, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Enumerated != 9 {
		t.Errorf("enumerated = %d, want 9", r.Enumerated)
	}
	if r.Degraded {
		t.Error("within-budget Optimal must not report Degraded")
	}
}

// TestOptimalDegradesToHeuristic: over budget with DegradeToHeuristic set,
// Optimal returns the heuristic's solution marked Degraded instead of
// failing, and bumps the degradation counter.
func TestOptimalDegradesToHeuristic(t *testing.T) {
	g, k := fig1(t)
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 1,
		Candidates:         []dfg.Minterm{mintermX, mintermY, mintermZ},
		Scheme:             locking.SFLLRem,
		MaxEnumerations:    4, // 3^2 = 9 > 4
		DegradeToHeuristic: true,
	}
	reg := metrics.New()
	ctx := metrics.NewContext(context.Background(), reg)
	r, err := Optimal(ctx, g, k, o)
	if err != nil {
		t.Fatalf("degrading Optimal: %v", err)
	}
	if !r.Degraded {
		t.Error("over-budget fallback must set Degraded")
	}
	if r.Cfg == nil || r.Binding == nil {
		t.Fatal("degraded result missing configuration or binding")
	}
	if v, _ := reg.Snapshot().Counter("codesign_degraded_total"); v != 1 {
		t.Errorf("codesign_degraded_total = %d, want 1", v)
	}
	// The fallback must agree with a direct Heuristic run.
	h, err := Heuristic(context.Background(), g, k, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != h.Errors {
		t.Errorf("degraded errors = %d, direct heuristic = %d", r.Errors, h.Errors)
	}
}

func TestOptionValidation(t *testing.T) {
	g, k := fig1(t)
	base := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 1, MintermsPerFU: 1,
		Candidates: []dfg.Minterm{mintermX}, Scheme: locking.SFLLRem,
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"no locked FUs", func(o *Options) { o.LockedFUs = 0 }, "locked FU count"},
		{"too many locked FUs", func(o *Options) { o.LockedFUs = 3 }, "locked FU count"},
		{"too many minterms", func(o *Options) { o.MintermsPerFU = 2 }, "candidates"},
		{"zero minterms", func(o *Options) { o.MintermsPerFU = 0 }, "candidates"},
		{"wrong scheme", func(o *Options) { o.Scheme = locking.FullLock }, "cannot pin"},
		{"allocation too small", func(o *Options) { o.NumFUs = 1; o.LockedFUs = 1 }, "below max concurrency"},
		{"duplicate candidates", func(o *Options) {
			o.Candidates = []dfg.Minterm{mintermX, mintermX}
		}, "duplicate candidate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mut(&o)
			_, err := Heuristic(context.Background(), g, k, o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
	if _, err := Heuristic(context.Background(), nil, k, base); err == nil {
		t.Error("nil graph must error")
	}
}

func TestCombinations(t *testing.T) {
	c := combinations(4, 2)
	if len(c) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(c))
	}
	if c[0][0] != 0 || c[0][1] != 1 || c[5][0] != 2 || c[5][1] != 3 {
		t.Errorf("combinations = %v", c)
	}
	if len(combinations(3, 3)) != 1 {
		t.Error("C(3,3) must be 1")
	}
}

func TestMethodology(t *testing.T) {
	b, err := mediabench.ByName("dct")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prepare(context.Background(), 3, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	cands := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 10)
	cs := make([]dfg.Minterm, len(cands))
	total := 0
	for i, mc := range cands {
		cs[i] = mc.M
		total += mc.Count
	}
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 3, LockedFUs: 2,
		Candidates: cs, Scheme: locking.SFLLRem,
	}
	// A modest error target plus a SAT time target that minterm locking
	// alone cannot reach (λ iterations at 10ms each is far below a year).
	target := Target{
		MinErrors:  total / 20,
		MinSATTime: 365 * 24 * time.Hour,
	}
	plan, err := Methodology(context.Background(), p.G, p.Res.K, o, target)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Errors < target.MinErrors {
		t.Errorf("plan errors %d below target %d", plan.Result.Errors, target.MinErrors)
	}
	if plan.Lambda < 1 {
		t.Errorf("lambda = %v", plan.Lambda)
	}
	if plan.FullLockKeyBits <= 0 {
		t.Error("a year-long SAT target must require a routing network")
	}
	if plan.EstSATTime < target.MinSATTime {
		t.Errorf("estimated SAT time %v below target %v", plan.EstSATTime, target.MinSATTime)
	}
	if plan.AreaOverhead <= 0 || plan.PowerOverhead <= plan.AreaOverhead {
		t.Errorf("overheads area=%v power=%v", plan.AreaOverhead, plan.PowerOverhead)
	}

	// The same error target with a trivial SAT target needs no network.
	easy := Target{MinErrors: total / 20, MinSATTime: time.Millisecond}
	plan2, err := Methodology(context.Background(), p.G, p.Res.K, o, easy)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.FullLockKeyBits != 0 {
		t.Errorf("trivial SAT target sized a %d-bit network", plan2.FullLockKeyBits)
	}
	if plan2.AreaOverhead != 0 || plan2.PowerOverhead != 0 {
		t.Error("no network must mean no overhead")
	}

	// Minimality of locked inputs: a plan with fewer minterms per FU must
	// miss the error target.
	if plan.MintermsPerFU > 1 {
		o2 := o
		o2.MintermsPerFU = plan.MintermsPerFU - 1
		r, err := Heuristic(context.Background(), p.G, p.Res.K, o2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Errors >= target.MinErrors {
			t.Errorf("methodology not minimal: %d minterms already reach target", o2.MintermsPerFU)
		}
	}

	// Unreachable error target.
	if _, err := Methodology(context.Background(), p.G, p.Res.K, o, Target{MinErrors: 1 << 30}); err == nil {
		t.Error("unreachable error target must error")
	}
}

// TestOptimalCancellationMidSearch: an intractably large exact enumeration
// under a deadline must return promptly with the best-so-far co-design
// solution attached to a typed budget error.
func TestOptimalCancellationMidSearch(t *testing.T) {
	g, k := fig1(t)
	// 18 candidates choose 3, over 2 locked FUs: 816^2 ≈ 666k evaluations —
	// far more than a few milliseconds of search.
	var cands []dfg.Minterm
	for i := 0; i < 18; i++ {
		cands = append(cands, dfg.CanonMinterm(dfg.Add, uint8(10+i), uint8(40+i)))
	}
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 3,
		Candidates: cands, Scheme: locking.SFLLRem,
		MaxEnumerations: 1 << 30,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Optimal(ctx, g, k, o)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline must interrupt the optimal search")
	}
	if !errors.Is(err, interrupt.ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want budget/deadline semantics", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("optimal returned after %v; want < 100ms", elapsed)
	}
	if res == nil {
		t.Fatal("interrupted optimal search must return its best-so-far result")
	}
	if res.Enumerated == 0 {
		t.Error("partial result reports zero evaluated combinations")
	}
	if res.Cfg == nil || res.Binding == nil {
		t.Error("partial result must be bound and costed")
	}
	if p, ok := interrupt.Partial[*Result](err); !ok || p != res {
		t.Errorf("error must carry the partial result: %v %v", p, ok)
	}
	t.Logf("optimal interrupted after %d evaluations in %v", res.Enumerated, elapsed)
}

// TestHeuristicExplicitCancel: cancelling mid-heuristic returns the FUs
// frozen so far with cancellation (not budget) semantics.
func TestHeuristicExplicitCancel(t *testing.T) {
	g, k := fig1(t)
	var cands []dfg.Minterm
	for i := 0; i < 22; i++ {
		cands = append(cands, dfg.CanonMinterm(dfg.Add, uint8(10+i), uint8(40+i)))
	}
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 4,
		Candidates: cands, Scheme: locking.SFLLRem,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Heuristic(ctx, g, k, o)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("heuristic finished before the cancel fired")
	}
	if !errors.Is(err, interrupt.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want cancellation semantics", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("heuristic returned after %v; want < 100ms", elapsed)
	}
}

// TestMethodologyCancellation: the Sec. V-C methodology propagates
// interruption from its inner heuristic searches.
func TestMethodologyCancellation(t *testing.T) {
	g, k := fig1(t)
	var cands []dfg.Minterm
	for i := 0; i < 22; i++ {
		cands = append(cands, dfg.CanonMinterm(dfg.Add, uint8(10+i), uint8(40+i)))
	}
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2,
		Candidates: cands, Scheme: locking.SFLLRem,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Methodology(ctx, g, k, o, Target{MinErrors: 1 << 30, MaxMintermsPerFU: 8})
	if !errors.Is(err, interrupt.ErrCancelled) {
		t.Fatalf("err = %v; want cancellation to surface through the methodology", err)
	}
}

// TestCoDesignEmitsProgress: a context-carried hook observes the codesign
// phase lifecycle.
func TestCoDesignEmitsProgress(t *testing.T) {
	g, k := fig1(t)
	var cands []dfg.Minterm
	for i := 0; i < 12; i++ {
		cands = append(cands, dfg.CanonMinterm(dfg.Add, uint8(10+i), uint8(40+i)))
	}
	o := Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 2,
		Candidates: cands, Scheme: locking.SFLLRem,
	}
	var c progress.Counter
	ctx := progress.NewContext(context.Background(), &c)
	if _, err := Optimal(ctx, g, k, o); err != nil {
		t.Fatal(err)
	}
	// (12 choose 2)^2 = 4356 evaluations at a 256 stride: several ticks.
	if c.Starts("codesign") != 1 || c.Ends("codesign") != 1 || c.Steps("codesign") == 0 {
		t.Errorf("progress events: starts=%d steps=%d ends=%d",
			c.Starts("codesign"), c.Steps("codesign"), c.Ends("codesign"))
	}
}
