package codesign

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/locking"
	"bindlock/internal/parallel"
	"bindlock/internal/progress"
)

// wideOptions builds a configuration whose enumeration is large enough to
// shard meaningfully: (12 choose 2)^2 = 4356 combinations.
func wideOptions(t *testing.T) ([]dfg.Minterm, Options) {
	t.Helper()
	var cands []dfg.Minterm
	for i := 0; i < 12; i++ {
		cands = append(cands, dfg.CanonMinterm(dfg.Add, uint8(10+i), uint8(40+i)))
	}
	return cands, Options{
		Class: dfg.ClassAdd, NumFUs: 2, LockedFUs: 2, MintermsPerFU: 2,
		Candidates: cands, Scheme: locking.SFLLRem,
	}
}

// TestOptimalParallelDeterminism asserts the tentpole guarantee for the
// exact enumeration: the Result — winning configuration included, since ties
// break toward the lowest lexicographic combination index — is identical at
// every worker count.
func TestOptimalParallelDeterminism(t *testing.T) {
	g, k := fig1(t)
	_, o := wideOptions(t)
	seq, err := Optimal(parallel.NewContext(context.Background(), 1), g, k, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := Optimal(parallel.NewContext(context.Background(), workers), g, k, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel Result differs from sequential:\nseq %+v\npar %+v",
				workers, seq.Cfg, par.Cfg)
		}
	}
}

// TestHeuristicParallelDeterminism does the same for the P-time algorithm's
// sharded per-round scans.
func TestHeuristicParallelDeterminism(t *testing.T) {
	g, k := fig1(t)
	_, o := wideOptions(t)
	seq, err := Heuristic(parallel.NewContext(context.Background(), 1), g, k, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := Heuristic(parallel.NewContext(context.Background(), workers), g, k, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel Result differs from sequential:\nseq %+v\npar %+v",
				workers, seq.Cfg, par.Cfg)
		}
	}
}

// TestOptimalParallelCancellation cancels a sharded enumeration mid-flight
// and checks the typed error still carries a usable best-so-far Result.
func TestOptimalParallelCancellation(t *testing.T) {
	g, k := fig1(t)
	_, o := wideOptions(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int64
	hooked := progress.NewContext(ctx, progress.Func(func(e progress.Event) {
		if e.Kind == progress.Step && e.Phase == "codesign" && steps.Add(1) == 2 {
			cancel()
		}
	}))
	res, err := Optimal(parallel.NewContext(hooked, 4), g, k, o)
	if err == nil {
		t.Fatal("cancelled enumeration returned nil error")
	}
	if !errors.Is(err, interrupt.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res != nil {
		// A partial solution, when delivered, must be fully costed and
		// carried by the typed error too.
		if res.Errors < 0 || res.Cfg == nil || res.Binding == nil {
			t.Fatalf("partial result not costed: %+v", res)
		}
		if p, ok := interrupt.Partial[*Result](err); !ok || p != res {
			t.Fatal("typed error does not carry the partial Result")
		}
	}
}
