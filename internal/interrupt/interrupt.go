// Package interrupt defines the typed cancellation and budget errors shared
// by every long-running computation in the library: the CDCL solver, the
// oracle-guided SAT attack, binding–obfuscation co-design, workload
// simulation and the experiment sweeps.
//
// An interrupted computation returns an *Error that (a) classifies the
// interruption as cancellation or budget exhaustion, (b) unwraps to the
// underlying cause (ctx.Err() or a package budget sentinel), so
// errors.Is(err, context.Canceled) and friends keep working, and (c) carries
// the best-effort partial result — the best-so-far key guess, iterations
// completed, candidates evaluated — so a deadline-bounded caller can report
// progress instead of discarding the work.
package interrupt

import (
	"context"
	"errors"
	"fmt"
)

// ErrCancelled marks a computation cut short by context cancellation.
var ErrCancelled = errors.New("cancelled")

// ErrBudgetExceeded marks a computation cut short by an exhausted budget: a
// context deadline, a solver conflict budget, or an attack iteration budget.
var ErrBudgetExceeded = errors.New("budget exceeded")

// Error is a typed interruption. errors.Is matches both its Kind (ErrCancelled
// or ErrBudgetExceeded) and, through Unwrap, its Cause (context.Canceled,
// context.DeadlineExceeded, or a package budget sentinel).
type Error struct {
	// Op names the interrupted computation ("sat: solve", "satattack: attack").
	Op string
	// Kind is ErrCancelled or ErrBudgetExceeded.
	Kind error
	// Cause is the underlying reason: ctx.Err() or a budget sentinel.
	Cause error
	// Partial is the package-specific best-effort partial result (for
	// example *satattack.Result with the best-so-far key), or nil.
	Partial any
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("%s: %v", e.Op, e.Kind)
	if e.Cause != nil {
		msg = fmt.Sprintf("%s: %v", msg, e.Cause)
	}
	return msg
}

// Is reports whether target is the error's kind.
func (e *Error) Is(target error) bool { return target == e.Kind }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Cause }

// FromContext wraps a context error. Deadline expiry is classified as a
// budget (the caller's time budget ran out); explicit cancellation as
// ErrCancelled.
func FromContext(op string, cerr error, partial any) *Error {
	kind := ErrCancelled
	if errors.Is(cerr, context.DeadlineExceeded) {
		kind = ErrBudgetExceeded
	}
	return &Error{Op: op, Kind: kind, Cause: cerr, Partial: partial}
}

// Budget wraps a non-context budget exhaustion (conflict or iteration
// limits), keeping the package sentinel reachable through errors.Is.
func Budget(op string, cause error, partial any) *Error {
	return &Error{Op: op, Kind: ErrBudgetExceeded, Cause: cause, Partial: partial}
}

// Rewrap lifts an interruption from an inner layer to an outer one, keeping
// the kind and cause but substituting the outer operation name and partial
// result. A non-interruption error is returned unchanged.
func Rewrap(op string, err error, partial any) error {
	var e *Error
	if !errors.As(err, &e) {
		return err
	}
	return &Error{Op: op, Kind: e.Kind, Cause: e.Cause, Partial: partial}
}

// Partial extracts the typed partial result from an interruption error chain.
func Partial[T any](err error) (T, bool) {
	var e *Error
	if errors.As(err, &e) {
		if p, ok := e.Partial.(T); ok {
			return p, true
		}
	}
	var zero T
	return zero, false
}

// Check returns nil while ctx is live and a classified *Error once it is
// done. Compute loops call it at iteration boundaries; partial may be nil
// when the caller attaches the partial result a layer up.
func Check(ctx context.Context, op string, partial any) error {
	if cerr := ctx.Err(); cerr != nil {
		return FromContext(op, cerr, partial)
	}
	return nil
}
