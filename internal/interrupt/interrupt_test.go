package interrupt

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFromContextClassification(t *testing.T) {
	// Explicit cancellation is ErrCancelled; deadline expiry is a budget.
	cancelCtx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext("op", cancelCtx.Err(), nil)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled ctx: errors.Is(ErrCancelled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx must unwrap to context.Canceled: %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("cancelled ctx must not match ErrBudgetExceeded: %v", err)
	}

	dlCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	err = FromContext("op", dlCtx.Err(), nil)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("deadline ctx: errors.Is(ErrBudgetExceeded) = false: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline ctx must unwrap to context.DeadlineExceeded: %v", err)
	}
}

func TestBudgetKeepsSentinelReachable(t *testing.T) {
	sentinel := errors.New("pkg: out of fuel")
	err := Budget("op", sentinel, 42)
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, sentinel) {
		t.Fatalf("budget error must match both kind and sentinel: %v", err)
	}
	if n, ok := Partial[int](err); !ok || n != 42 {
		t.Fatalf("Partial[int] = %v, %v; want 42, true", n, ok)
	}
	if _, ok := Partial[string](err); ok {
		t.Fatal("Partial with the wrong type must report false")
	}
}

func TestRewrapPreservesKindAndCause(t *testing.T) {
	inner := FromContext("inner", context.Canceled, "inner-partial")
	outer := Rewrap("outer", inner, "outer-partial")
	if !errors.Is(outer, ErrCancelled) || !errors.Is(outer, context.Canceled) {
		t.Fatalf("rewrapped error lost its classification: %v", outer)
	}
	if p, ok := Partial[string](outer); !ok || p != "outer-partial" {
		t.Fatalf("rewrapped partial = %v, %v", p, ok)
	}
	plain := errors.New("plain failure")
	if got := Rewrap("outer", plain, nil); got != plain {
		t.Fatalf("non-interruption error must pass through unchanged, got %v", got)
	}
}

func TestCheck(t *testing.T) {
	if err := Check(context.Background(), "op", nil); err != nil {
		t.Fatalf("live context: Check = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx, "op", "state")
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Check on a cancelled ctx = %v", err)
	}
	if p, ok := Partial[string](err); !ok || p != "state" {
		t.Fatalf("Check partial = %v, %v", p, ok)
	}
}
