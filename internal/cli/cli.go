// Package cli holds the conventions shared by the repository's command-line
// tools: the process exit-code contract and the telemetry surface (-metrics,
// -cpuprofile, -memprofile) every tool exposes.
//
// Exit codes follow one rule everywhere: 0 success, 1 failure, 2 interrupted
// (context cancelled, deadline expired, or an iteration/conflict budget
// exhausted — anything errors.Is-matching the interrupt sentinels). The
// distinction matters operationally: an orchestrator retrying failures must
// not retry a run its own timeout killed, and an interrupted run still wrote
// its partial results and partial metrics snapshot.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
)

// The exit-code contract.
const (
	ExitOK          = 0
	ExitFailure     = 1
	ExitInterrupted = 2
)

// ExitCode maps an error onto the exit-code contract: nil is success,
// interruptions (cancellation, deadline, budget) are 2, everything else 1.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, interrupt.ErrCancelled),
		errors.Is(err, interrupt.ErrBudgetExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ExitInterrupted
	}
	return ExitFailure
}

// Telemetry bundles a tool's observability state: the metrics registry, the
// output paths, and the in-flight CPU profile. Flush is safe on every exit
// path — including interrupted ones, which is why tools route os.Exit through
// Exit instead of deferring (defers do not run across os.Exit).
type Telemetry struct {
	// Registry collects the run's metrics. Non-nil whenever -metrics was
	// given; tools may also install their own registry before Context.
	Registry *metrics.Registry

	metricsPath string
	memPath     string
	cpuFile     *os.File
}

// NewTelemetry prepares the run's telemetry: creates a registry when a
// metrics path is set, starts the CPU profile when requested, and remembers
// where to put the heap profile. Any path may be empty to disable that piece.
func NewTelemetry(metricsPath, cpuProfile, memProfile string) (*Telemetry, error) {
	t := &Telemetry{metricsPath: metricsPath, memPath: memProfile}
	if metricsPath != "" {
		t.Registry = metrics.New()
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		t.cpuFile = f
	}
	if t.Registry != nil {
		t.Registry.Set("process_gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	}
	return t, nil
}

// Context installs the registry (when present) so the compute stack picks it
// up; otherwise ctx is returned unchanged and metrics stay disabled.
func (t *Telemetry) Context(ctx context.Context) context.Context {
	return metrics.NewContext(ctx, t.Registry)
}

// Flush finalises all telemetry outputs: stops the CPU profile, writes the
// heap profile, and writes the metrics snapshot (format chosen by file
// extension: ".prom" is Prometheus text, anything else JSON). It is
// idempotent per output — the CPU profile stops only once.
func (t *Telemetry) Flush() error {
	var firstErr error
	if t.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := t.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cpuprofile: %w", err)
		}
		t.cpuFile = nil
	}
	if t.memPath != "" {
		if err := writeHeapProfile(t.memPath); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if t.metricsPath != "" && t.Registry != nil {
		if err := WriteSnapshotFile(t.metricsPath, t.Registry.Snapshot()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Exit flushes telemetry and terminates the process. A flush failure turns a
// success into a failure but never masks an interruption code.
func (t *Telemetry) Exit(code int) {
	if err := t.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
		if code == ExitOK {
			code = ExitFailure
		}
	}
	os.Exit(code)
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialise up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// WriteSnapshotFile writes the snapshot to path, as Prometheus text when the
// extension is ".prom" and as JSON otherwise.
func WriteSnapshotFile(path string, s metrics.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if filepath.Ext(path) == ".prom" {
		err = s.WritePrometheus(f)
	} else {
		err = s.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}
