package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
)

// TestExitCode pins the exit-code contract over the error shapes the tools
// actually produce: bare sentinels, wrapped interrupt errors carrying partial
// results, raw context errors, and ordinary failures.
func TestExitCode(t *testing.T) {
	cancelled := interrupt.Rewrap("test: op", context.Canceled, 42)
	budget := interrupt.Budget("test: op", errors.New("out of conflicts"), nil)
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain failure", errors.New("boom"), ExitFailure},
		{"wrapped failure", fmt.Errorf("outer: %w", errors.New("inner")), ExitFailure},
		{"cancelled sentinel", interrupt.ErrCancelled, ExitInterrupted},
		{"budget sentinel", interrupt.ErrBudgetExceeded, ExitInterrupted},
		{"context.Canceled", context.Canceled, ExitInterrupted},
		{"context.DeadlineExceeded", context.DeadlineExceeded, ExitInterrupted},
		{"typed cancelled with partial", cancelled, ExitInterrupted},
		{"typed budget", budget, ExitInterrupted},
		{"doubly wrapped interrupt", fmt.Errorf("attack: %w", cancelled), ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWriteSnapshotFileFormats(t *testing.T) {
	r := metrics.New()
	r.Add("c_total", 3)
	snap := r.Snapshot()
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "out.json")
	if err := WriteSnapshotFile(jsonPath, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"c_total"`) {
		t.Errorf("JSON output missing counter:\n%s", data)
	}

	promPath := filepath.Join(dir, "out.prom")
	if err := WriteSnapshotFile(promPath, snap); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "bindlock_c_total 3") {
		t.Errorf("Prometheus output missing sample:\n%s", data)
	}
}

func TestTelemetryFlushWritesEverything(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "m.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	tel, err := NewTelemetry(metricsPath, cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Registry == nil {
		t.Fatal("registry not created for -metrics run")
	}
	ctx := tel.Context(context.Background())
	if metrics.FromContext(ctx) != tel.Registry {
		t.Fatal("Context did not install the registry")
	}
	if v, ok := tel.Registry.Snapshot().Gauge("process_gomaxprocs"); !ok || v < 1 {
		t.Errorf("process_gomaxprocs gauge = %v, %v", v, ok)
	}
	tel.Registry.Add("work_total", 1)
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{metricsPath, cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", filepath.Base(p), err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(p))
		}
	}
	// Second flush must not restart or double-close the CPU profile.
	if err := tel.Flush(); err != nil {
		t.Errorf("second Flush: %v", err)
	}
}

func TestTelemetryDisabled(t *testing.T) {
	tel, err := NewTelemetry("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if tel.Registry != nil {
		t.Error("registry created without -metrics")
	}
	ctx := tel.Context(context.Background())
	if metrics.FromContext(ctx) != nil {
		t.Error("disabled telemetry installed a registry")
	}
	if err := tel.Flush(); err != nil {
		t.Errorf("disabled Flush: %v", err)
	}
}
