package alloc

import (
	"strings"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/mediabench"
	"bindlock/internal/sched"
)

func compile(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const wideSrc = `
kernel w;
input a, b;
output y;
t0 = a + b;
t1 = a + a;
t2 = b + b;
t3 = a - b;
t4 = t0 + t1;
t5 = t2 + t3;
y = t4 + t5;
`

func TestMinimalWide(t *testing.T) {
	g := compile(t, wideSrc)
	// Critical path is 3; at latency 3 the 4 first-level adds need 2 FUs
	// (cycle budget: 7 adds over 3 cycles needs >= ceil(7/3) = 3... the
	// dependency structure allows 4+2+1 with 4 FUs or 3+2+2 with 3).
	a, err := Minimal(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	fus := a[dfg.ClassAdd]
	if fus < 3 || fus > 4 {
		t.Fatalf("allocation = %d, want 3 or 4", fus)
	}
	// Verify minimality and sufficiency directly.
	if !meetsLatency(g, dfg.ClassAdd, fus, 3) {
		t.Fatal("allocation does not meet latency")
	}
	if fus > 1 && meetsLatency(g, dfg.ClassAdd, fus-1, 3) {
		t.Fatal("allocation not minimal")
	}
	// Relaxed latency: a single FU suffices.
	a7, err := Minimal(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a7[dfg.ClassAdd] != 1 {
		t.Fatalf("latency 7 allocation = %d, want 1", a7[dfg.ClassAdd])
	}
}

func TestMinimalInfeasible(t *testing.T) {
	g := compile(t, wideSrc)
	_, err := Minimal(g, 2) // critical path is 3
	if err == nil || !strings.Contains(err.Error(), "critical path") {
		t.Fatalf("err = %v, want critical path error", err)
	}
	if _, err := Minimal(g, 0); err == nil {
		t.Fatal("latency 0 must error")
	}
}

func TestMinimalSkipsAbsentClasses(t *testing.T) {
	g := compile(t, wideSrc) // no multipliers
	a, err := Minimal(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a[dfg.ClassMul]; ok {
		t.Fatal("allocation must omit absent classes")
	}
}

func TestTradeoffMonotone(t *testing.T) {
	b, err := mediabench.ByName("dct")
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Tradeoff(g, dfg.ClassAdd, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency > pts[i-1].Latency {
			t.Fatalf("latency increased with more FUs: %+v", pts)
		}
	}
	if pts[0].Latency <= pts[len(pts)-1].Latency-1 && pts[0].FUs != 1 {
		t.Fatal("sweep must start at 1 FU")
	}
}

func TestTradeoffErrors(t *testing.T) {
	g := compile(t, wideSrc)
	if _, err := Tradeoff(g, dfg.ClassMul, 3); err == nil {
		t.Fatal("absent class must error")
	}
	if _, err := Tradeoff(g, dfg.ClassAdd, 0); err == nil {
		t.Fatal("maxFUs 0 must error")
	}
}

// Property: on every benchmark kernel, the minimal allocation at the
// path-based 3-FU schedule span is at most 3 per class, and scheduling with
// the minimal allocation meets the latency.
func TestMinimalConsistentWithSchedulerQuick(t *testing.T) {
	benches := mediabench.All()
	f := func(idx uint8) bool {
		b := benches[int(idx)%len(benches)]
		g, err := b.Compile()
		if err != nil {
			return false
		}
		probe := g.Clone()
		span, err := sched.PathBased(probe, sched.DefaultConstraints())
		if err != nil {
			return false
		}
		a, err := Minimal(g, span)
		if err != nil {
			return false
		}
		for class, fus := range a {
			if fus > 3 {
				return false
			}
			if !meetsLatency(g, class, fus, span) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 22}); err != nil {
		t.Error(err)
	}
}
