// Package alloc implements the allocation phase of HLS: deciding how many
// functional units of each class to provision (Sec. II-B: "Allocation
// determines the type and number of resources necessary to implement a
// design").
//
// Allocation interacts with the paper's security story through the FU count
// R: locking configurations lock L <= R units and the binding algorithms
// need |R| at least the schedule's concurrency. This package finds minimal
// allocations for a latency target and exposes the area/latency trade-off
// curve.
package alloc

import (
	"fmt"

	"bindlock/internal/dfg"
	"bindlock/internal/sched"
)

// Allocation is a per-class FU provision.
type Allocation map[dfg.Class]int

// Minimal returns the smallest per-class allocation under which the
// path-based scheduler meets the latency bound. Classes absent from the
// graph are omitted. The search is monotone (more FUs never lengthen a list
// schedule), so each class binary-searches independently against a schedule
// probe with the other classes unconstrained.
func Minimal(g *dfg.Graph, latency int) (Allocation, error) {
	if latency < 1 {
		return nil, fmt.Errorf("alloc: latency bound %d", latency)
	}
	// Feasibility: the critical path must fit.
	probe := g.Clone()
	if span := sched.ASAP(probe); span > latency {
		return nil, fmt.Errorf("alloc: latency %d below critical path %d of %q", latency, span, g.Name)
	}
	out := Allocation{}
	for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
		total := len(g.OpsOfClass(class))
		if total == 0 {
			continue
		}
		lo, hi := 1, maxConcurrencyBound(g, class)
		for lo < hi {
			mid := (lo + hi) / 2
			if meetsLatency(g, class, mid, latency) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if !meetsLatency(g, class, lo, latency) {
			return nil, fmt.Errorf("alloc: no %v allocation meets latency %d for %q", class, latency, g.Name)
		}
		out[class] = lo
	}
	return out, nil
}

// maxConcurrencyBound returns an allocation that certainly suffices: the
// class's concurrency under an unconstrained ASAP schedule.
func maxConcurrencyBound(g *dfg.Graph, class dfg.Class) int {
	probe := g.Clone()
	sched.ASAP(probe)
	n := probe.MaxConcurrency(class)
	if n < 1 {
		n = 1
	}
	return n
}

// meetsLatency schedules a clone with `fus` units of class (other classes
// unconstrained) and reports whether the span fits.
func meetsLatency(g *dfg.Graph, class dfg.Class, fus, latency int) bool {
	probe := g.Clone()
	span, err := sched.PathBased(probe, sched.Constraints{
		MaxFUs: map[dfg.Class]int{class: fus},
	})
	return err == nil && span <= latency
}

// Point is one point of the area/latency trade-off curve.
type Point struct {
	FUs     int
	Latency int
}

// Tradeoff sweeps the class allocation from 1 to maxFUs and reports the
// schedule span at each point (the classic HLS design-space curve). Spans
// are non-increasing in FUs.
func Tradeoff(g *dfg.Graph, class dfg.Class, maxFUs int) ([]Point, error) {
	if maxFUs < 1 {
		return nil, fmt.Errorf("alloc: maxFUs %d", maxFUs)
	}
	if len(g.OpsOfClass(class)) == 0 {
		return nil, fmt.Errorf("alloc: %q has no %v operations", g.Name, class)
	}
	var pts []Point
	for fus := 1; fus <= maxFUs; fus++ {
		probe := g.Clone()
		span, err := sched.PathBased(probe, sched.Constraints{
			MaxFUs: map[dfg.Class]int{class: fus},
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{FUs: fus, Latency: span})
	}
	return pts, nil
}
