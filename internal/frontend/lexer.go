package frontend

import (
	"strconv"
	"unicode"
)

// lexer converts kernel source into a token stream.
type lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) pos() pos { return pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpace consumes whitespace and // line comments.
func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	p := l.pos()
	if l.off >= len(l.src) {
		return token{Kind: tokEOF, Pos: p}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for l.off < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		word := string(l.src[start:l.off])
		if k, ok := keywords[word]; ok {
			return token{Kind: k, Text: word, Pos: p}, nil
		}
		return token{Kind: tokIdent, Text: word, Pos: p}, nil
	case unicode.IsDigit(r):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.off])
		n, err := strconv.Atoi(text)
		if err != nil || n > 255 {
			return token{}, errf(p, "numeric literal %q out of 8-bit range", text)
		}
		return token{Kind: tokNumber, Text: text, Num: n, Pos: p}, nil
	}
	l.advance()
	var k tokKind
	switch r {
	case '=':
		k = tokAssign
	case '+':
		k = tokPlus
	case '-':
		k = tokMinus
	case '*':
		k = tokStar
	case '(':
		k = tokLParen
	case ')':
		k = tokRParen
	case ',':
		k = tokComma
	case ';':
		k = tokSemi
	default:
		return token{}, errf(p, "unexpected character %q", r)
	}
	return token{Kind: k, Text: string(r), Pos: p}, nil
}

// lexAll tokenises the whole input, appending the EOF token.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == tokEOF {
			return toks, nil
		}
	}
}
