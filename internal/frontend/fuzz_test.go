package frontend

import "testing"

// FuzzCompile drives the full frontend — lexer, parser, lowering — with
// arbitrary source. The property under test: Compile never panics, and any
// graph it accepts passes dfg.Validate. Crashers become corpus entries
// under testdata/fuzz/FuzzCompile.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"kernel k;\ninput a;\noutput y;\ny = a + 1;\n",
		"kernel fir4;\ninput x0, x1, x2, x3;\noutput y;\nconst C0 = 3;\nconst C1 = 7;\nt0 = x0 * C0;\nt1 = x1 * C1;\ny = t0 + t1 + x2 - x3;\n",
		"kernel sad;\ninput a, b, c;\noutput y;\ny = absdiff(a, b) + (c - 1) * 2;\n",
		"kernel dup;\ninput a;\ninput a;\noutput y;\ny = a;\n",
		"kernel bad;\noutput y;\ny = missing + 1;\n",
		"kernel deep;\ninput a;\noutput y;\ny = ((((a))));\n",
		"kernel k;\ninput a;\noutput y;\ny = a *",
		"// comment only\n",
		"kernel ké;\ninput ß;\noutput y;\ny = ß;\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Compile(src)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		if g == nil {
			t.Fatal("Compile returned nil graph and nil error")
		}
		if verr := g.Validate(false); verr != nil {
			t.Fatalf("Compile accepted source producing an invalid graph: %v\nsource:\n%s", verr, src)
		}
	})
}
