// Package frontend compiles kernels written in a small C-like expression
// language into data-flow graphs.
//
// It stands in for the SUIF-based DFG extraction of the paper's experimental
// flow (Fig. 3: C function -> SUIF -> input DFG). The language covers exactly
// what the MediaBench kernels need: 8-bit inputs/outputs, named constants,
// and expressions over +, -, * and absdiff(a, b).
//
// Example kernel:
//
//	kernel fir4;
//	input x0, x1, x2, x3;
//	output y;
//	const C0 = 3; const C1 = 7;
//	t0 = x0 * C0;
//	t1 = x1 * C1;
//	y = t0 + t1 + x2 - x3;
package frontend

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKernel
	tokInput
	tokOutput
	tokConst
	tokAbsDiff
	tokAssign // =
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokSemi   // ;
)

var tokNames = map[tokKind]string{
	tokEOF:     "end of input",
	tokIdent:   "identifier",
	tokNumber:  "number",
	tokKernel:  "'kernel'",
	tokInput:   "'input'",
	tokOutput:  "'output'",
	tokConst:   "'const'",
	tokAbsDiff: "'absdiff'",
	tokAssign:  "'='",
	tokPlus:    "'+'",
	tokMinus:   "'-'",
	tokStar:    "'*'",
	tokLParen:  "'('",
	tokRParen:  "')'",
	tokComma:   "','",
	tokSemi:    "';'",
}

func (k tokKind) String() string { return tokNames[k] }

// pos is a source position for diagnostics.
type pos struct {
	Line, Col int
}

func (p pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexical token.
type token struct {
	Kind tokKind
	Text string
	Num  int
	Pos  pos
}

var keywords = map[string]tokKind{
	"kernel":  tokKernel,
	"input":   tokInput,
	"output":  tokOutput,
	"const":   tokConst,
	"absdiff": tokAbsDiff,
}

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("frontend: %s: %s", e.Pos, e.Msg) }

func errf(p pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}
