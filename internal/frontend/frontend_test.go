package frontend

import (
	"strings"
	"testing"

	"bindlock/internal/dfg"
)

const firSrc = `
kernel fir4;
// 4-tap FIR with fixed coefficients.
input x0, x1, x2, x3;
output y;
const C0 = 3;
const C1 = 7;
t0 = x0 * C0;
t1 = x1 * C1;
y = t0 + t1 + x2 - x3;
`

func TestCompileFIR(t *testing.T) {
	g, err := Compile(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "fir4" {
		t.Errorf("Name = %q, want fir4", g.Name)
	}
	st := g.Stat()
	if st.Inputs != 4 || st.Outputs != 1 {
		t.Errorf("Stat = %+v", st)
	}
	if st.Muls != 2 {
		t.Errorf("Muls = %d, want 2", st.Muls)
	}
	if st.Adds != 3 { // two adds and one sub
		t.Errorf("Adds = %d, want 3", st.Adds)
	}
	if err := g.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestCompileAbsDiffAndParens(t *testing.T) {
	src := `
kernel sad;
input a, b, c;
output y;
y = absdiff(a, b) + (c - 1) * 2;
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []dfg.Kind
	for _, op := range g.Ops {
		if op.Kind.IsBinary() {
			kinds = append(kinds, op.Kind)
		}
	}
	want := []dfg.Kind{dfg.AbsDiff, dfg.Sub, dfg.Mul, dfg.Add}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
kernel prec;
input a, b, c;
output y;
y = a + b * c;
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// The mul must feed the add, not vice versa.
	var mulID, addID dfg.OpID = dfg.None, dfg.None
	for _, op := range g.Ops {
		switch op.Kind {
		case dfg.Mul:
			mulID = op.ID
		case dfg.Add:
			addID = op.ID
		}
	}
	add := g.Ops[addID]
	if add.Args[0] != 0 || add.Args[1] != mulID {
		t.Fatalf("add args = %v, want [a mul]", add.Args)
	}
}

func TestConstantDeduplication(t *testing.T) {
	src := `
kernel dedupe;
input a;
output y;
const K = 5;
y = a * K + 5;
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	consts := 0
	for _, op := range g.Ops {
		if op.Kind == dfg.Const {
			consts++
		}
	}
	if consts != 1 {
		t.Errorf("const ops = %d, want 1 (K and literal 5 must dedupe)", consts)
	}
}

func TestLocalReassignment(t *testing.T) {
	src := `
kernel acc;
input a, b;
output y;
t = a + b;
t = t + a;
y = t;
`
	g, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stat(); st.Adds != 2 {
		t.Errorf("Adds = %d, want 2", st.Adds)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined ident", "kernel k; input a; output y; y = a + q;", "undefined identifier"},
		{"output read", "kernel k; input a; output y, z; y = a; z = y + a;", "cannot be read"},
		{"output never assigned", "kernel k; input a; output y;", "never assigned"},
		{"output assigned twice", "kernel k; input a; output y; y = a; y = a;", "assigned twice"},
		{"duplicate input", "kernel k; input a, a; output y; y = a;", "declared twice"},
		{"duplicate output decl", "kernel k; input a; output y, y; y = a;", "declared twice"},
		{"input output clash", "kernel k; input a; output a; a = a;", "both input and output"},
		{"const shadows input", "kernel k; input a; const a = 1; output y; y = a;", "shadows"},
		{"const shadows output", "kernel k; input b; output y; const y = 1; y = b;", "shadows an output"},
		{"literal too large", "kernel k; input a; output y; y = a + 300;", "out of 8-bit range"},
		{"bad char", "kernel k; input a; output y; y = a ^ a;", "unexpected character"},
		{"missing semi", "kernel k; input a; output y; y = a", "expected ';'"},
		{"missing kernel", "input a; output y; y = a;", "expected 'kernel'"},
		{"garbage top level", "kernel k; input a; output y; y = a; )", "unexpected"},
		{"empty expression", "kernel k; input a; output y; y = ;", "expected expression"},
		{"unclosed paren", "kernel k; input a; output y; y = (a + a;", "expected ')'"},
		{"absdiff missing comma", "kernel k; input a; output y; y = absdiff(a a);", "expected ','"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Compile error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestLineCommentsAndPositions(t *testing.T) {
	src := "kernel k;\ninput a;\noutput y;\n// comment line\ny = a + q;\n"
	_, err := Compile(src)
	if err == nil {
		t.Fatal("expected error")
	}
	var fe *Error
	if !asFrontendError(err, &fe) {
		t.Fatalf("error %T is not *frontend.Error", err)
	}
	if fe.Pos.Line != 5 {
		t.Errorf("error line = %d, want 5 (comments must not desync positions)", fe.Pos.Line)
	}
}

func asFrontendError(err error, target **Error) bool {
	fe, ok := err.(*Error)
	if ok {
		*target = fe
	}
	return ok
}

func TestLexAllTokens(t *testing.T) {
	toks, err := lexAll("kernel k; x = absdiff(a, 12) * (b + c) - d;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []tokKind{
		tokKernel, tokIdent, tokSemi,
		tokIdent, tokAssign, tokAbsDiff, tokLParen, tokIdent, tokComma, tokNumber,
		tokRParen, tokStar, tokLParen, tokIdent, tokPlus, tokIdent, tokRParen,
		tokMinus, tokIdent, tokSemi, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}
