package frontend

// The AST mirrors the grammar:
//
//	program := "kernel" ident ";" decl* stmt*
//	decl    := ("input" | "output") identList ";" | "const" ident "=" number ";"
//	stmt    := ident "=" expr ";"
//	expr    := term  (("+" | "-") term)*
//	term    := factor ("*" factor)*
//	factor  := ident | number | "(" expr ")" | "absdiff" "(" expr "," expr ")"

// program is a parsed kernel.
type program struct {
	Name    string
	Inputs  []string
	Outputs []string
	Consts  []constDecl
	Stmts   []stmt
}

type constDecl struct {
	Name string
	Val  uint8
	Pos  pos
}

type stmt struct {
	LHS string
	RHS expr
	Pos pos
}

// expr is an expression tree node.
type expr interface{ exprPos() pos }

type identExpr struct {
	Name string
	Pos  pos
}

type numExpr struct {
	Val uint8
	Pos pos
}

type binExpr struct {
	Op   rune // '+', '-', '*', 'd' (absdiff)
	L, R expr
	Pos  pos
}

func (e *identExpr) exprPos() pos { return e.Pos }
func (e *numExpr) exprPos() pos   { return e.Pos }
func (e *binExpr) exprPos() pos   { return e.Pos }
