package frontend

import (
	"bindlock/internal/dfg"
)

// Compile parses and lowers kernel source into an unscheduled DFG. The
// resulting graph passes dfg.Validate(false); schedule it with the sched
// package before binding.
func Compile(src string) (*dfg.Graph, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	return lower(prog)
}

// lower converts a parsed program into a DFG, with semantic checks:
// identifiers must be defined before use, inputs/consts/locals share one
// namespace, every declared output must be assigned exactly once, and
// outputs cannot be read back (the DFG is purely feed-forward).
func lower(prog *program) (*dfg.Graph, error) {
	g := dfg.New(prog.Name)
	env := map[string]dfg.OpID{} // name -> producing op
	isOutput := map[string]bool{}
	outputDone := map[string]bool{}
	constCache := map[uint8]dfg.OpID{}

	mkConst := func(v uint8) dfg.OpID {
		if id, ok := constCache[v]; ok {
			return id
		}
		id := g.AddConst(v)
		constCache[v] = id
		return id
	}

	for _, name := range prog.Outputs {
		if isOutput[name] {
			return nil, errf(pos{}, "output %q declared twice", name)
		}
		isOutput[name] = true
	}
	for _, name := range prog.Inputs {
		if _, dup := env[name]; dup {
			return nil, errf(pos{}, "input %q declared twice", name)
		}
		if isOutput[name] {
			return nil, errf(pos{}, "%q declared both input and output", name)
		}
		env[name] = g.AddInput(name)
	}
	for _, c := range prog.Consts {
		if _, dup := env[c.Name]; dup {
			return nil, errf(c.Pos, "const %q shadows an existing name", c.Name)
		}
		if isOutput[c.Name] {
			return nil, errf(c.Pos, "const %q shadows an output", c.Name)
		}
		env[c.Name] = mkConst(c.Val)
	}

	var lowerExpr func(e expr) (dfg.OpID, error)
	lowerExpr = func(e expr) (dfg.OpID, error) {
		switch e := e.(type) {
		case *identExpr:
			if isOutput[e.Name] {
				return dfg.None, errf(e.Pos, "output %q cannot be read", e.Name)
			}
			id, ok := env[e.Name]
			if !ok {
				return dfg.None, errf(e.Pos, "undefined identifier %q", e.Name)
			}
			return id, nil
		case *numExpr:
			return mkConst(e.Val), nil
		case *binExpr:
			l, err := lowerExpr(e.L)
			if err != nil {
				return dfg.None, err
			}
			r, err := lowerExpr(e.R)
			if err != nil {
				return dfg.None, err
			}
			var k dfg.Kind
			switch e.Op {
			case '+':
				k = dfg.Add
			case '-':
				k = dfg.Sub
			case '*':
				k = dfg.Mul
			case 'd':
				k = dfg.AbsDiff
			default:
				return dfg.None, errf(e.Pos, "internal: unknown operator %q", e.Op)
			}
			return g.AddBinary(k, l, r), nil
		}
		return dfg.None, errf(pos{}, "internal: unknown expression node")
	}

	for _, s := range prog.Stmts {
		val, err := lowerExpr(s.RHS)
		if err != nil {
			return nil, err
		}
		if isOutput[s.LHS] {
			if outputDone[s.LHS] {
				return nil, errf(s.Pos, "output %q assigned twice", s.LHS)
			}
			outputDone[s.LHS] = true
			g.AddOutput(s.LHS, val)
			continue
		}
		env[s.LHS] = val
	}

	for _, name := range prog.Outputs {
		if !outputDone[name] {
			return nil, errf(pos{}, "output %q never assigned", name)
		}
	}
	if err := g.Validate(false); err != nil {
		return nil, err
	}
	return g, nil
}
