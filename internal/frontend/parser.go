package frontend

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.Kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.Kind != k {
		return token{}, errf(t.Pos, "expected %v, found %v %q", k, t.Kind, t.Text)
	}
	return p.advance(), nil
}

// parse parses a complete kernel program.
func parse(src string) (*program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if _, err := p.expect(tokKernel); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	prog := &program{Name: name.Text}

	for {
		switch p.cur().Kind {
		case tokInput:
			p.advance()
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			prog.Inputs = append(prog.Inputs, ids...)
		case tokOutput:
			p.advance()
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			prog.Outputs = append(prog.Outputs, ids...)
		case tokConst:
			p.advance()
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokAssign); err != nil {
				return nil, err
			}
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, constDecl{Name: id.Text, Val: uint8(num.Num), Pos: id.Pos})
		case tokIdent:
			id := p.advance()
			if _, err := p.expect(tokAssign); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			prog.Stmts = append(prog.Stmts, stmt{LHS: id.Text, RHS: e, Pos: id.Pos})
		case tokEOF:
			return prog, nil
		default:
			t := p.cur()
			return nil, errf(t.Pos, "unexpected %v %q at top level", t.Kind, t.Text)
		}
	}
}

func (p *parser) identList() ([]string, error) {
	var ids []string
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id.Text)
		if p.cur().Kind == tokComma {
			p.advance()
			continue
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return ids, nil
	}
}

func (p *parser) parseExpr() (expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != tokPlus && t.Kind != tokMinus {
			return left, nil
		}
		p.advance()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := '+'
		if t.Kind == tokMinus {
			op = '-'
		}
		left = &binExpr{Op: op, L: left, R: right, Pos: t.Pos}
	}
}

func (p *parser) parseTerm() (expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == tokStar {
		t := p.advance()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &binExpr{Op: '*', L: left, R: right, Pos: t.Pos}
	}
	return left, nil
}

func (p *parser) parseFactor() (expr, error) {
	t := p.cur()
	switch t.Kind {
	case tokIdent:
		p.advance()
		return &identExpr{Name: t.Text, Pos: t.Pos}, nil
	case tokNumber:
		p.advance()
		return &numExpr{Val: uint8(t.Num), Pos: t.Pos}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokAbsDiff:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		l, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &binExpr{Op: 'd', L: l, R: r, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %v %q", t.Kind, t.Text)
}
