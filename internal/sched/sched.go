// Package sched schedules data-flow graphs onto clock cycles.
//
// It provides ASAP and ALAP schedules plus the resource-constrained
// path-based list scheduler used to prepare the paper's benchmarks ("each DFG
// was scheduled to be executed on up to 3 FUs using a path-based scheduler",
// Sec. VI). Scheduling assigns a 1-based Cycle to every functional-unit
// operation; sources and sinks are untimed.
package sched

import (
	"fmt"

	"bindlock/internal/dfg"
)

// Constraints bounds the number of concurrent operations per FU class. A
// missing class is unconstrained.
type Constraints struct {
	MaxFUs map[dfg.Class]int
}

// DefaultConstraints mirrors the paper's setup: at most 3 adders and 3
// multipliers.
func DefaultConstraints() Constraints {
	return Constraints{MaxFUs: map[dfg.Class]int{
		dfg.ClassAdd: 3,
		dfg.ClassMul: 3,
	}}
}

// limit returns the FU bound for class c, or a number larger than any DFG if
// unconstrained.
func (c Constraints) limit(cl dfg.Class) int {
	if c.MaxFUs == nil {
		return 1 << 30
	}
	if n, ok := c.MaxFUs[cl]; ok {
		if n < 1 {
			return 1
		}
		return n
	}
	return 1 << 30
}

// ASAP assigns each FU operation the earliest feasible cycle, ignoring
// resource constraints. It mutates g in place and returns the schedule span.
func ASAP(g *dfg.Graph) int {
	span := 0
	for i := range g.Ops {
		op := &g.Ops[i]
		if !op.Kind.IsBinary() {
			op.Cycle = 0
			continue
		}
		c := 1
		for _, a := range op.Args {
			arg := g.Ops[a]
			if arg.Kind.IsBinary() && arg.Cycle+1 > c {
				c = arg.Cycle + 1
			}
		}
		op.Cycle = c
		if c > span {
			span = c
		}
	}
	return span
}

// ALAP assigns each FU operation the latest cycle that still meets deadline,
// ignoring resource constraints. It returns an error if the critical path
// exceeds the deadline.
func ALAP(g *dfg.Graph, deadline int) error {
	// Longest path from each op to a sink, in FU-op hops.
	depth := downstreamDepth(g)
	for i := range g.Ops {
		op := &g.Ops[i]
		if !op.Kind.IsBinary() {
			op.Cycle = 0
			continue
		}
		c := deadline - depth[i]
		if c < 1 {
			return fmt.Errorf("sched: deadline %d infeasible for %q (critical path %d)",
				deadline, g.Name, depth[i]+1)
		}
		op.Cycle = c
	}
	return nil
}

// downstreamDepth returns, for every op, the number of FU operations strictly
// below it on its longest path to a sink. This is the classic path-based
// scheduling priority: ops on long paths are urgent.
func downstreamDepth(g *dfg.Graph) []int {
	depth := make([]int, len(g.Ops))
	users := g.Users()
	for i := len(g.Ops) - 1; i >= 0; i-- {
		d := 0
		for _, u := range users[i] {
			ud := depth[u]
			if g.Ops[u].Kind.IsBinary() {
				ud++
			}
			if ud > d {
				d = ud
			}
		}
		depth[i] = d
	}
	return depth
}

// PathBased performs resource-constrained list scheduling with
// longest-path-to-sink priority, the stand-in for the paper's path-based
// scheduler [24]. It mutates g in place and returns the schedule span.
func PathBased(g *dfg.Graph, cons Constraints) (int, error) {
	depth := downstreamDepth(g)
	unscheduled := 0
	for i := range g.Ops {
		g.Ops[i].Cycle = 0
		if g.Ops[i].Kind.IsBinary() {
			unscheduled++
		}
	}

	span := 0
	for t := 1; unscheduled > 0; t++ {
		if t > 4*len(g.Ops)+4 {
			return 0, fmt.Errorf("sched: no progress scheduling %q", g.Name)
		}
		// Ready: all FU-op operands finished in an earlier cycle.
		ready := map[dfg.Class][]dfg.OpID{}
		for _, op := range g.Ops {
			if !op.Kind.IsBinary() || op.Cycle != 0 {
				continue
			}
			ok := true
			for _, a := range op.Args {
				arg := g.Ops[a]
				if arg.Kind.IsBinary() && (arg.Cycle == 0 || arg.Cycle >= t) {
					ok = false
					break
				}
			}
			if ok {
				cl := dfg.ClassOf(op.Kind)
				ready[cl] = append(ready[cl], op.ID)
			}
		}
		for cl, ids := range ready {
			// Highest downstream depth first; ID order breaks ties for
			// determinism.
			sortByPriority(ids, depth)
			n := cons.limit(cl)
			if n > len(ids) {
				n = len(ids)
			}
			for _, id := range ids[:n] {
				g.Ops[id].Cycle = t
				unscheduled--
				if t > span {
					span = t
				}
			}
		}
	}
	if err := g.Validate(true); err != nil {
		return 0, fmt.Errorf("sched: produced invalid schedule: %w", err)
	}
	return span, nil
}

// sortByPriority orders ids by decreasing depth, then increasing ID.
func sortByPriority(ids []dfg.OpID, depth []int) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if depth[b] > depth[a] || (depth[b] == depth[a] && b < a) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
}
