package sched

import (
	"fmt"
	"math"

	"bindlock/internal/dfg"
)

// ForceDirected implements force-directed scheduling (Paulin & Knight): given
// a latency bound, it picks one operation/cycle assignment at a time so as to
// minimise the expected concurrency of every FU class — the classic
// resource-minimising HLS scheduler, complementing the resource-constrained
// path-based scheduler. Frames are the [ASAP, ALAP] mobility ranges;
// distribution graphs spread each unscheduled op's unit probability over its
// frame; the scheduled assignment is the (op, cycle) pair of minimum force
// (self force plus the frame-restriction forces induced on direct
// predecessors and successors).
//
// It mutates g in place and returns the achieved span (== latency when
// feasible).
func ForceDirected(g *dfg.Graph, latency int) (int, error) {
	// Mobility frames from ASAP/ALAP.
	asap := g.Clone()
	ASAP(asap)
	alap := g.Clone()
	if err := ALAP(alap, latency); err != nil {
		return 0, err
	}
	early := make([]int, len(g.Ops))
	late := make([]int, len(g.Ops))
	var fuOps []dfg.OpID
	for i := range g.Ops {
		g.Ops[i].Cycle = 0
		if !g.Ops[i].Kind.IsBinary() {
			continue
		}
		early[i] = asap.Ops[i].Cycle
		late[i] = alap.Ops[i].Cycle
		fuOps = append(fuOps, dfg.OpID(i))
	}
	users := g.Users()

	scheduled := make([]bool, len(g.Ops))
	remaining := len(fuOps)
	for remaining > 0 {
		// Distribution graphs per class.
		dg := map[dfg.Class][]float64{}
		for _, id := range fuOps {
			cl := dfg.ClassOf(g.Ops[id].Kind)
			if dg[cl] == nil {
				dg[cl] = make([]float64, latency+1)
			}
			w := float64(late[id] - early[id] + 1)
			for t := early[id]; t <= late[id]; t++ {
				dg[cl][t] += 1 / w
			}
		}

		// selfForce of placing op at cycle t.
		selfForce := func(id dfg.OpID, t int) float64 {
			cl := dfg.ClassOf(g.Ops[id].Kind)
			avg := 0.0
			w := float64(late[id] - early[id] + 1)
			for tau := early[id]; tau <= late[id]; tau++ {
				avg += dg[cl][tau] / w
			}
			return dg[cl][t] - avg
		}

		bestForce := math.Inf(1)
		var bestOp dfg.OpID = dfg.None
		bestT := 0
		for _, id := range fuOps {
			if scheduled[id] {
				continue
			}
			for t := early[id]; t <= late[id]; t++ {
				force := selfForce(id, t)
				// Frame-restriction forces on direct neighbours.
				for _, a := range g.Ops[id].Args {
					if g.Ops[a].Kind.IsBinary() && !scheduled[a] && late[a] >= t {
						force += selfForce(a, min(late[a], t-1)) * 0.5
					}
				}
				for _, u := range users[id] {
					if g.Ops[u].Kind.IsBinary() && !scheduled[u] && early[u] <= t {
						force += selfForce(u, max(early[u], t+1)) * 0.5
					}
				}
				if force < bestForce-1e-12 ||
					(math.Abs(force-bestForce) <= 1e-12 && (bestOp == dfg.None || id < bestOp)) {
					bestForce = force
					bestOp = id
					bestT = t
				}
			}
		}
		if bestOp == dfg.None {
			return 0, fmt.Errorf("sched: force-directed scheduling stuck on %q", g.Name)
		}
		// Commit and tighten frames.
		scheduled[bestOp] = true
		g.Ops[bestOp].Cycle = bestT
		early[bestOp], late[bestOp] = bestT, bestT
		remaining--
		if err := propagateFrames(g, fuOps, early, late); err != nil {
			return 0, err
		}
	}
	if err := g.Validate(true); err != nil {
		return 0, fmt.Errorf("sched: force-directed produced invalid schedule: %w", err)
	}
	return g.Cycles(), nil
}

// propagateFrames restores frame consistency after a commitment: an op must
// start after every FU-op operand's earliest finish and before every FU-op
// user's latest start.
func propagateFrames(g *dfg.Graph, fuOps []dfg.OpID, early, late []int) error {
	users := g.Users()
	for changed := true; changed; {
		changed = false
		for _, id := range fuOps {
			for _, a := range g.Ops[id].Args {
				if g.Ops[a].Kind.IsBinary() && early[a]+1 > early[id] {
					early[id] = early[a] + 1
					changed = true
				}
			}
			for _, u := range users[id] {
				if g.Ops[u].Kind.IsBinary() && late[u]-1 < late[id] {
					late[id] = late[u] - 1
					changed = true
				}
			}
			if early[id] > late[id] {
				return fmt.Errorf("sched: frame of op %d collapsed", id)
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
