package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
)

// chain builds a linear chain of n adds: t = ((a+b)+b)+b ...
func chain(n int) *dfg.Graph {
	g := dfg.New("chain")
	a := g.AddInput("a")
	b := g.AddInput("b")
	cur := g.AddBinary(dfg.Add, a, b)
	for i := 1; i < n; i++ {
		cur = g.AddBinary(dfg.Add, cur, b)
	}
	g.AddOutput("y", cur)
	return g
}

// wide builds n independent adds.
func wide(n int) *dfg.Graph {
	g := dfg.New("wide")
	a := g.AddInput("a")
	b := g.AddInput("b")
	for i := 0; i < n; i++ {
		id := g.AddBinary(dfg.Add, a, b)
		g.AddOutput(outName(i), id)
	}
	return g
}

func outName(i int) string { return "y" + string(rune('a'+i)) }

func TestASAPChain(t *testing.T) {
	g := chain(5)
	if span := ASAP(g); span != 5 {
		t.Fatalf("ASAP span = %d, want 5", span)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestASAPWide(t *testing.T) {
	g := wide(6)
	if span := ASAP(g); span != 1 {
		t.Fatalf("ASAP span = %d, want 1 (all independent)", span)
	}
}

func TestALAPMeetsDeadline(t *testing.T) {
	g := chain(3)
	if err := ALAP(g, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// The last op of the chain must sit exactly at the deadline.
	last := g.OpsOfClass(dfg.ClassAdd)[2]
	if g.Ops[last].Cycle != 7 {
		t.Errorf("last op cycle = %d, want 7", g.Ops[last].Cycle)
	}
}

func TestALAPInfeasible(t *testing.T) {
	g := chain(5)
	err := ALAP(g, 3)
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestPathBasedRespectsResourceLimit(t *testing.T) {
	g := wide(10)
	span, err := PathBased(g, Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if span != 4 { // ceil(10/3)
		t.Fatalf("span = %d, want 4", span)
	}
	for t0 := 1; t0 <= span; t0++ {
		if n := len(g.AtCycle(dfg.ClassAdd, t0)); n > 3 {
			t.Fatalf("cycle %d has %d concurrent adds, limit 3", t0, n)
		}
	}
}

func TestPathBasedPrioritisesCriticalPath(t *testing.T) {
	// One long chain (depth 4) plus independent ops, 1 FU: the chain ops
	// must be scheduled as early as dependencies allow or the span blows up.
	g := dfg.New("prio")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c1 := g.AddBinary(dfg.Add, a, b)
	c2 := g.AddBinary(dfg.Add, c1, b)
	c3 := g.AddBinary(dfg.Add, c2, b)
	c4 := g.AddBinary(dfg.Add, c3, b)
	i1 := g.AddBinary(dfg.Add, a, a)
	i2 := g.AddBinary(dfg.Add, b, b)
	g.AddOutput("y", c4)
	g.AddOutput("z", g.AddBinary(dfg.Add, i1, i2))

	span, err := PathBased(g, Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Critical path is 4; with 2 FUs and 7 ops, optimal span is 4.
	if span != 4 {
		t.Fatalf("span = %d, want 4", span)
	}
	if g.Ops[c1].Cycle != 1 {
		t.Errorf("critical-path head scheduled at %d, want 1", g.Ops[c1].Cycle)
	}
}

func TestPathBasedMixedClasses(t *testing.T) {
	src := `
kernel mixed;
input a, b, c, d;
output y;
t0 = a * b;
t1 = c * d;
t2 = a * c;
y = t0 + t1 + t2;
`
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	span, err := PathBased(g, Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 1, dfg.ClassMul: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxConcurrency(dfg.ClassMul) > 2 || g.MaxConcurrency(dfg.ClassAdd) > 1 {
		t.Fatal("resource limits violated")
	}
	if span < 3 {
		t.Fatalf("span = %d, impossible for this DFG", span)
	}
}

func TestDefaultConstraints(t *testing.T) {
	c := DefaultConstraints()
	if c.limit(dfg.ClassAdd) != 3 || c.limit(dfg.ClassMul) != 3 {
		t.Fatal("default constraints must allow 3 FUs per class")
	}
	var unconstrained Constraints
	if unconstrained.limit(dfg.ClassAdd) < 1<<20 {
		t.Fatal("zero-value constraints must be unconstrained")
	}
	z := Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: 0}}
	if z.limit(dfg.ClassAdd) != 1 {
		t.Fatal("non-positive limits must clamp to 1")
	}
}

// randomDAG builds a random DFG with the given op count.
func randomDAG(r *rand.Rand, nOps int) *dfg.Graph {
	g := dfg.New("rand")
	a := g.AddInput("a")
	b := g.AddInput("b")
	avail := []dfg.OpID{a, b}
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.Mul, dfg.AbsDiff}
	var last dfg.OpID
	for i := 0; i < nOps; i++ {
		x := avail[r.Intn(len(avail))]
		y := avail[r.Intn(len(avail))]
		last = g.AddBinary(kinds[r.Intn(len(kinds))], x, y)
		avail = append(avail, last)
	}
	g.AddOutput("y", last)
	return g
}

// Property: on random DAGs, PathBased produces valid schedules respecting
// constraints, with span at least the ASAP span (resources only delay).
func TestPathBasedRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 3+r.Intn(40))
		asapSpan := ASAP(g.Clone())
		maxAdd := 1 + r.Intn(3)
		maxMul := 1 + r.Intn(3)
		cons := Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: maxAdd, dfg.ClassMul: maxMul}}
		span, err := PathBased(g, cons)
		if err != nil {
			return false
		}
		if g.Validate(true) != nil {
			return false
		}
		if g.MaxConcurrency(dfg.ClassAdd) > maxAdd || g.MaxConcurrency(dfg.ClassMul) > maxMul {
			return false
		}
		return span >= asapSpan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: ASAP schedules are dependency-minimal — every op either sits at
// cycle 1 or has an operand finishing exactly one cycle earlier.
func TestASAPTightQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 3+r.Intn(30))
		ASAP(g)
		for _, op := range g.Ops {
			if !op.Kind.IsBinary() {
				continue
			}
			if op.Cycle == 1 {
				continue
			}
			tight := false
			for _, a := range op.Args {
				arg := g.Ops[a]
				if arg.Kind.IsBinary() && arg.Cycle == op.Cycle-1 {
					tight = true
				}
			}
			if !tight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
