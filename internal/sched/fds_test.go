package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
)

func TestForceDirectedChain(t *testing.T) {
	g := chain(4)
	span, err := ForceDirected(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if span > 6 {
		t.Fatalf("span = %d exceeds latency bound 6", span)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestForceDirectedBalancesWideGraph(t *testing.T) {
	// 6 independent adds with latency 3: FDS must balance to 2 per cycle,
	// where ASAP would pile all 6 into cycle 1.
	g := wide(6)
	asapClone := g.Clone()
	ASAP(asapClone)
	if asapClone.MaxConcurrency(dfg.ClassAdd) != 6 {
		t.Fatalf("ASAP concurrency = %d, want 6", asapClone.MaxConcurrency(dfg.ClassAdd))
	}
	if _, err := ForceDirected(g, 3); err != nil {
		t.Fatal(err)
	}
	if got := g.MaxConcurrency(dfg.ClassAdd); got != 2 {
		t.Errorf("FDS concurrency = %d, want perfectly balanced 2", got)
	}
}

func TestForceDirectedInfeasibleLatency(t *testing.T) {
	g := chain(5)
	if _, err := ForceDirected(g, 3); err == nil {
		t.Fatal("latency below critical path must error")
	}
}

func TestForceDirectedMixedClasses(t *testing.T) {
	// Class distribution graphs are independent: muls must not push adds.
	g := dfg.New("mixed")
	a := g.AddInput("a")
	b := g.AddInput("b")
	var lastAdd, lastMul dfg.OpID
	for i := 0; i < 4; i++ {
		lastAdd = g.AddBinary(dfg.Add, a, b)
		lastMul = g.AddBinary(dfg.Mul, a, b)
	}
	g.AddOutput("y", lastAdd)
	g.AddOutput("z", lastMul)
	if _, err := ForceDirected(g, 2); err != nil {
		t.Fatal(err)
	}
	if g.MaxConcurrency(dfg.ClassAdd) != 2 || g.MaxConcurrency(dfg.ClassMul) != 2 {
		t.Errorf("concurrency add=%d mul=%d, want 2/2",
			g.MaxConcurrency(dfg.ClassAdd), g.MaxConcurrency(dfg.ClassMul))
	}
}

// Property: FDS produces valid schedules within the latency bound on random
// DAGs, with concurrency never above the per-cycle op budget it implies.
func TestForceDirectedRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 3+r.Intn(25))
		probe := g.Clone()
		cp := ASAP(probe)
		latency := cp + r.Intn(4)
		span, err := ForceDirected(g, latency)
		if err != nil {
			return false
		}
		return span <= latency && g.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: at equal latency, FDS's peak concurrency never exceeds ASAP's
// (the whole point of force balancing).
func TestForceDirectedNotWorseThanASAPQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(20))
		asapClone := g.Clone()
		cp := ASAP(asapClone)
		latency := cp + 2
		if _, err := ForceDirected(g, latency); err != nil {
			return false
		}
		for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
			if g.MaxConcurrency(class) > asapClone.MaxConcurrency(class)+0 &&
				asapClone.MaxConcurrency(class) > 0 &&
				g.MaxConcurrency(class) > len(g.OpsOfClass(class)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
