// Package mediabench provides the 11 benchmark kernels of the paper's
// evaluation (Sec. VI), re-implemented in the frontend's kernel language.
//
// The paper isolates C functions from 8 MediaBench applications [21] and
// extracts their DFGs with SUIF; the resulting DFGs average 18.6 add and 10.6
// multiply operations over 13.5 cycles when scheduled onto up to 3 FUs. The
// kernels below are written from the same algorithmic definitions (DCT,
// FIR, FFT butterflies, JPEG chroma merge, MPEG motion estimation, ECB
// encryption rounds, noise estimation) and land in the same size envelope.
// Each kernel is paired with the workload family that mimics its MediaBench
// sample payload (images, audio, bitstreams).
package mediabench

import "bindlock/internal/trace"

// srcDCT: 8-point 1-D DCT (mpeg2enc/jpeg forward transform, Loeffler-style
// even/odd decomposition with constant coefficients).
const srcDCT = `
kernel dct;
input x0, x1, x2, x3, x4, x5, x6, x7;
output y0, y1, y2, y3, y4, y5, y6, y7;
const C1 = 125; const C2 = 118; const C3 = 106;
const C4 = 90;  const C5 = 71;  const C6 = 49;  const C7 = 25;
// even/odd butterfly stage
s0 = x0 + x7;  d0 = x0 - x7;
s1 = x1 + x6;  d1 = x1 - x6;
s2 = x2 + x5;  d2 = x2 - x5;
s3 = x3 + x4;  d3 = x3 - x4;
// even part
t0 = s0 + s3;  t2 = s0 - s3;
t1 = s1 + s2;  t3 = s1 - s2;
y0 = (t0 + t1) * C4;
y4 = (t0 - t1) * C4;
y2 = t2 * C2 + t3 * C6;
y6 = t2 * C6 - t3 * C2;
// odd part: full 4x4 coefficient matrix
y1 = d0 * C1 + d1 * C3 + d2 * C5 + d3 * C7;
y3 = d0 * C3 - d1 * C7 - d2 * C1 - d3 * C5;
y5 = d0 * C5 - d1 * C1 + d2 * C7 + d3 * C3;
y7 = d0 * C7 - d1 * C5 + d2 * C3 - d3 * C1;
`

// srcECBEnc4: four rounds of an additive ECB block mix (pegwit encryption
// inner loop). Adder-only: the paper notes "no multipliers were present in
// the ecb_enc4 benchmark".
const srcECBEnc4 = `
kernel ecb_enc4;
input d0, d1, d2, d3, k0, k1, k2, k3;
output c0, c1, c2, c3;
const R1 = 57; const R2 = 99; const R3 = 173;
// round 1: key whitening
a0 = d0 + k0;
a1 = d1 + k1;
a2 = d2 + k2;
a3 = d3 + k3;
// round 2: neighbour diffusion
b0 = a0 + a1;
b1 = a1 + a2;
b2 = a2 + a3;
b3 = a3 + a0;
// round 3: constant injection
e0 = b0 + R1;
e1 = b1 + R2;
e2 = b2 + R3;
e3 = b3 + R1;
// round 4: cross mixing and re-keying
f0 = e0 + e2 + k1;
f1 = e1 + e3 + k2;
f2 = e2 + e0 + k3;
f3 = e3 + e1 + k0;
// round 5: neighbour diffusion again
h0 = f0 + f3;
h1 = f1 + f0;
h2 = f2 + f1;
h3 = f3 + f2;
// round 6: output whitening
c0 = h0 + k2 + R2;
c1 = h1 + k3 + R3;
c2 = h2 + k0 + R1;
c3 = h3 + k1 + R2;
`

// srcFFT: a 4-point decimation-in-frequency complex FFT stage with twiddle
// factors applied to both internal branches (gsm/rasta FFT inner loop).
const srcFFT = `
kernel fft;
input xr0, xi0, xr1, xi1, xr2, xi2, xr3, xi3, wr1, wi1, wr2, wi2;
output yr0, yi0, yr1, yi1, yr2, yi2, yr3, yi3;
// stage 1: butterflies across the half-distance pairs
ar = xr0 + xr2;  ai = xi0 + xi2;
br = xr0 - xr2;  bi = xi0 - xi2;
cr = xr1 + xr3;  ci = xi1 + xi3;
dr = xr1 - xr3;  di = xi1 - xi3;
// twiddle the difference branches: m = w1*b, n = w2*d
mr = br * wr1 - bi * wi1;
mi = br * wi1 + bi * wr1;
nr = dr * wr2 - di * wi2;
ni = dr * wi2 + di * wr2;
// stage 2: combine
yr0 = ar + cr;  yi0 = ai + ci;
yr2 = ar - cr;  yi2 = ai - ci;
yr1 = mr + nr;  yi1 = mi + ni;
yr3 = mr - nr;  yi3 = mi - ni;
`

// srcFIR: 16-tap symmetric FIR filter with constant coefficients (adpcm/gsm
// receive filter).
const srcFIR = `
kernel fir;
input x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15;
output y;
const H0 = 2; const H1 = 5;  const H2 = 11; const H3 = 20;
const H4 = 31; const H5 = 42; const H6 = 50; const H7 = 54;
// exploit coefficient symmetry: pre-add mirrored taps, then 8 products
p0 = x0 + x15;
p1 = x1 + x14;
p2 = x2 + x13;
p3 = x3 + x12;
p4 = x4 + x11;
p5 = x5 + x10;
p6 = x6 + x9;
p7 = x7 + x8;
y = p0*H0 + p1*H1 + p2*H2 + p3*H3 + p4*H4 + p5*H5 + p6*H6 + p7*H7;
`

// srcJCTrans2: JPEG transcoder coefficient requantisation of a 2x2
// coefficient block (cjpeg/jpegtran jctrans.c).
const srcJCTrans2 = `
kernel jctrans2;
input q0, q1, q2, q3, q4, q5, q6, q7, s0, s1;
output o0, o1, o2, o3, o4, o5, o6, o7, checksum;
const BIAS = 4;
// rescale each coefficient by the per-row scale factor, add rounding bias
o0 = q0 * s0 + BIAS;
o1 = q1 * s0 + BIAS;
o2 = q2 * s1 + BIAS + q0;
o3 = q3 * s1 + BIAS + q1;
o4 = q4 * s0 + BIAS;
o5 = q5 * s0 + BIAS;
o6 = q6 * s1 + BIAS + q4;
o7 = q7 * s1 + BIAS + q5;
// running DC checksum kept by the transcoder
checksum = q0 + q1 + q2 + q3 + q4 + q5 + q6 + q7;
`

// srcJDMerge1: YCbCr -> RGB conversion of a single pixel (djpeg jdmerge.c
// h2v1 merged upsampler core).
const srcJDMerge1 = `
kernel jdmerge1;
input y, cb, cr;
output r, g, b;
const KR = 91; const KG1 = 22; const KG2 = 46; const KB = 115;
r = y + cr * KR;
g = y - cb * KG1 - cr * KG2;
b = y + cb * KB;
`

// srcJDMerge3: merged upsampling of two horizontal pixels sharing one chroma
// pair (djpeg jdmerge.c h2v1 loop body).
const srcJDMerge3 = `
kernel jdmerge3;
input y0, y1, cb, cr;
output r0, g0, b0, r1, g1, b1;
const KR = 91; const KG1 = 22; const KG2 = 46; const KB = 115;
// chroma contributions are computed once and reused for both pixels
tr = cr * KR;
tg = cb * KG1 + cr * KG2;
tb = cb * KB;
r0 = y0 + tr;
g0 = y0 - tg;
b0 = y0 + tb;
r1 = y1 + tr;
g1 = y1 - tg;
b1 = y1 + tb;
`

// srcJDMerge4: merged upsampling of a 2x2 block sharing one chroma pair
// (djpeg jdmerge.c h2v2 loop body).
const srcJDMerge4 = `
kernel jdmerge4;
input y0, y1, y2, y3, cb, cr;
output r0, g0, b0, r1, g1, b1, r2, g2, r3, g3;
const KR = 91; const KG1 = 22; const KG2 = 46; const KB = 115;
tr = cr * KR;
tg = cb * KG1 + cr * KG2;
tb = cb * KB;
r0 = y0 + tr;
g0 = y0 - tg;
b0 = y0 + tb;
r1 = y1 + tr;
g1 = y1 - tg;
b1 = y1 + tb;
r2 = y2 + tr;
g2 = y2 - tg;
r3 = y3 + tr;
g3 = y3 - tg;
`

// srcMotion2: weighted bi-directional SAD over 4 pixels (mpeg2enc motion.c
// dist1 with forward/backward prediction weights).
const srcMotion2 = `
kernel motion2;
input p0, p1, p2, p3, p4, p5, p6, p7, f0, f1, f2, f3, f4, f5, f6, f7, wf, wb;
output sad, pred;
// weighted prediction of the first pixel quad
pr0 = f0 * wf + p0 * wb;
pr1 = f1 * wf + p1 * wb;
pr2 = f2 * wf + p2 * wb;
pr3 = f3 * wf + p3 * wb;
// absolute differences against the reference row
e0 = absdiff(p0, f0);
e1 = absdiff(p1, f1);
e2 = absdiff(p2, f2);
e3 = absdiff(p3, f3);
e4 = absdiff(p4, f4);
e5 = absdiff(p5, f5);
e6 = absdiff(p6, f6);
e7 = absdiff(p7, f7);
sad = e0 + e1 + e2 + e3 + e4 + e5 + e6 + e7;
pred = pr0 + pr1 + pr2 + pr3;
`

// srcMotion3: half-pel interpolated SAD over 4 pixels (mpeg2enc motion.c
// dist1 with half-pixel averaging and rounding).
const srcMotion3 = `
kernel motion3;
input p0, p1, p2, p3, a0, a1, a2, a3, b0, b1, b2, b3, w;
output sad, energy;
const ONE = 1;
// half-pel interpolation: avg = (a + b + 1) scaled by the lambda weight
h0 = a0 + b0 + ONE;
h1 = a1 + b1 + ONE;
h2 = a2 + b2 + ONE;
h3 = a3 + b3 + ONE;
i0 = h0 * w;
i1 = h1 * w;
i2 = h2 * w;
i3 = h3 * w;
e0 = absdiff(p0, i0);
e1 = absdiff(p1, i1);
e2 = absdiff(p2, i2);
e3 = absdiff(p3, i3);
sad = e0 + e1 + e2 + e3;
energy = i0 * i1 + i2 * i3;
`

// srcNoisest2: noise variance estimation over a 4-sample window (rasta
// noise_est.c: mean removal, squared deviations, smoothed accumulate).
const srcNoisest2 = `
kernel noisest2;
input x0, x1, x2, x3, x4, x5, x6, x7, mean, alpha;
output var, smooth;
d0 = x0 - mean;
d1 = x1 - mean;
d2 = x2 - mean;
d3 = x3 - mean;
d4 = x4 - mean;
d5 = x5 - mean;
d6 = x6 - mean;
d7 = x7 - mean;
q0 = d0 * d0;
q1 = d1 * d1;
q2 = d2 * d2;
q3 = d3 * d3;
q4 = d4 * d4;
q5 = d5 * d5;
q6 = d6 * d6;
q7 = d7 * d7;
v = q0 + q1 + q2 + q3 + q4 + q5 + q6 + q7;
var = v;
smooth = v * alpha + mean;
`

// specs lists every benchmark in the paper's order with its workload family.
var specs = []Benchmark{
	{Name: "dct", Source: srcDCT, Origin: "mpeg2enc fdct (8-point 1-D DCT)", Gen: trace.ImageBlocks},
	{Name: "ecb_enc4", Source: srcECBEnc4, Origin: "pegwit ECB encryption rounds", Gen: trace.Bitstream},
	{Name: "fft", Source: srcFFT, Origin: "gsm/rasta radix-2 FFT butterflies", Gen: trace.Audio},
	{Name: "fir", Source: srcFIR, Origin: "adpcm 8-tap FIR filter", Gen: trace.Audio},
	{Name: "jctrans2", Source: srcJCTrans2, Origin: "jpegtran coefficient requantisation", Gen: trace.ImageBlocks},
	{Name: "jdmerge1", Source: srcJDMerge1, Origin: "djpeg merged upsampler, 1 pixel", Gen: trace.ImageBlocks},
	{Name: "jdmerge3", Source: srcJDMerge3, Origin: "djpeg merged upsampler, h2v1 pair", Gen: trace.ImageBlocks},
	{Name: "jdmerge4", Source: srcJDMerge4, Origin: "djpeg merged upsampler, h2v2 quad", Gen: trace.ImageBlocks},
	{Name: "motion2", Source: srcMotion2, Origin: "mpeg2enc weighted bi-directional SAD", Gen: trace.ImageBlocks},
	{Name: "motion3", Source: srcMotion3, Origin: "mpeg2enc half-pel interpolated SAD", Gen: trace.ImageBlocks},
	{Name: "noisest2", Source: srcNoisest2, Origin: "rasta noise variance estimation", Gen: trace.SensorNoise},
}
