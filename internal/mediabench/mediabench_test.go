package mediabench

import (
	"context"
	"testing"

	"bindlock/internal/dfg"
)

func TestAllCompileAndValidate(t *testing.T) {
	if len(All()) != 11 {
		t.Fatalf("benchmark count = %d, want 11", len(All()))
	}
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			g, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(false); err != nil {
				t.Fatal(err)
			}
			if g.Name != b.Name {
				t.Errorf("graph name %q, want %q", g.Name, b.Name)
			}
			if b.Origin == "" {
				t.Error("missing origin")
			}
		})
	}
}

func TestOnlyECBLacksMultipliers(t *testing.T) {
	// "No multipliers were present in the ecb_enc4 benchmark."
	for _, b := range All() {
		g, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		muls := len(g.OpsOfClass(dfg.ClassMul))
		if b.Name == "ecb_enc4" {
			if muls != 0 {
				t.Errorf("ecb_enc4 has %d multipliers, want 0", muls)
			}
		} else if muls == 0 {
			t.Errorf("%s has no multipliers", b.Name)
		}
		if adds := len(g.OpsOfClass(dfg.ClassAdd)); adds == 0 {
			t.Errorf("%s has no adders", b.Name)
		}
	}
}

func TestSuiteSizeEnvelope(t *testing.T) {
	// The paper's DFGs average 18.6 adds, 10.6 muls and 13.5 cycles when
	// scheduled on up to 3 FUs. Require the suite to land in the same
	// neighbourhood (generous band: these are re-implementations).
	totalAdds, totalMuls, totalCycles := 0, 0, 0
	for _, b := range All() {
		p, err := b.Prepare(context.Background(), 3, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := p.G.Stat()
		totalAdds += st.Adds
		totalMuls += st.Muls
		totalCycles += st.Cycles
	}
	n := len(All())
	avgAdds := float64(totalAdds) / float64(n)
	avgMuls := float64(totalMuls) / float64(n)
	avgCycles := float64(totalCycles) / float64(n)
	if avgAdds < 9 || avgAdds > 28 {
		t.Errorf("average adds = %.1f, paper reports 18.6", avgAdds)
	}
	if avgMuls < 5 || avgMuls > 16 {
		t.Errorf("average muls = %.1f, paper reports 10.6", avgMuls)
	}
	if avgCycles < 6 || avgCycles > 21 {
		t.Errorf("average cycles = %.1f, paper reports 13.5", avgCycles)
	}
	t.Logf("suite averages: %.1f adds, %.1f muls, %.1f cycles (paper: 18.6, 10.6, 13.5)",
		avgAdds, avgMuls, avgCycles)
}

func TestByName(t *testing.T) {
	b, err := ByName("fft")
	if err != nil || b.Name != "fft" {
		t.Fatalf("ByName(fft) = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestPrepareFlow(t *testing.T) {
	b, _ := ByName("dct")
	p, err := b.Prepare(context.Background(), 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.G.Validate(true); err != nil {
		t.Fatal(err)
	}
	if p.G.MaxConcurrency(dfg.ClassAdd) > 3 || p.G.MaxConcurrency(dfg.ClassMul) > 3 {
		t.Error("schedule exceeds 3 FUs per class")
	}
	if !p.HasClass(dfg.ClassAdd) || !p.HasClass(dfg.ClassMul) {
		t.Error("dct must have both classes")
	}
	// The K matrix must cover the workload: every add op saw 100 samples.
	for _, id := range p.G.OpsOfClass(dfg.ClassAdd) {
		if p.Res.K.OpTotal(id) != 100 {
			t.Fatalf("op %d total %d, want 100", id, p.Res.K.OpTotal(id))
		}
	}
}

func TestPrepareDeterministic(t *testing.T) {
	b, _ := ByName("fir")
	p1, err := b.Prepare(context.Background(), 3, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Prepare(context.Background(), 3, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	top1 := p1.Res.K.TopMinterms(p1.G, dfg.ClassMul, 10)
	top2 := p2.Res.K.TopMinterms(p2.G, dfg.ClassMul, 10)
	if len(top1) != len(top2) {
		t.Fatal("nondeterministic top minterms")
	}
	for i := range top1 {
		if top1[i] != top2[i] {
			t.Fatal("nondeterministic top minterms")
		}
	}
}

func TestWorkloadsConcentrateMinterms(t *testing.T) {
	// The security-aware algorithms rely on non-uniform minterm mass: the
	// top-10 candidate minterms must carry a visible share of the total.
	for _, b := range All() {
		p, err := b.Prepare(context.Background(), 3, 400, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
			if !p.HasClass(class) {
				continue
			}
			ops := p.G.OpsOfClass(class)
			total := 400 * len(ops)
			top := p.Res.K.TopMinterms(p.G, class, 10)
			mass := 0
			for _, mc := range top {
				mass += mc.Count
			}
			if mass*100 < total { // at least 1% in the top 10
				t.Errorf("%s/%v: top-10 minterm mass %d of %d (<1%%): workload too uniform",
					b.Name, class, mass, total)
			}
		}
	}
}
