package mediabench

import (
	"context"
	"fmt"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/sched"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

// Benchmark describes one kernel: its source in the frontend language, the
// MediaBench function it reproduces, and the workload family standing in for
// the MediaBench sample payload.
type Benchmark struct {
	Name   string
	Source string
	Origin string
	Gen    trace.Generator
}

// All returns the 11 benchmarks in the paper's order.
func All() []Benchmark {
	return append([]Benchmark(nil), specs...)
}

// ByName looks a benchmark up by name.
func ByName(name string) (Benchmark, error) {
	for _, b := range specs {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("mediabench: unknown benchmark %q", name)
}

// Compile parses the kernel into an unscheduled DFG.
func (b Benchmark) Compile() (*dfg.Graph, error) {
	return frontend.Compile(b.Source)
}

// Workload generates n samples of the benchmark's typical input trace under
// the given seed, with one column per DFG input.
func (b Benchmark) Workload(g *dfg.Graph, n int, seed int64) *trace.Trace {
	names := make([]string, 0, 8)
	for _, id := range g.Inputs() {
		names = append(names, g.Ops[id].Name)
	}
	return trace.Generate(b.Gen, names, n, seed)
}

// Prepared is a benchmark after the full Fig. 3 flow: compiled, scheduled
// onto at most maxFUs units per class, and simulated over its sample
// workload.
type Prepared struct {
	Bench Benchmark
	G     *dfg.Graph
	Res   *sim.Result
	// Trace is the sample workload the simulation ran over.
	Trace *trace.Trace
	// NumFUs is the binding allocation per class (the scheduler's limit).
	NumFUs int
}

// DefaultSamples is the default workload length used by the experiment
// harness.
const DefaultSamples = 600

// Prepare runs the experimental flow of Fig. 3 for the benchmark: compile,
// schedule path-based onto up to maxFUs FUs per class, generate the sample
// workload, and simulate to obtain expected input occurrences per operation.
// The simulation honours ctx.
func (b Benchmark) Prepare(ctx context.Context, maxFUs, samples int, seed int64) (*Prepared, error) {
	g, err := b.Compile()
	if err != nil {
		return nil, fmt.Errorf("mediabench: compile %s: %w", b.Name, err)
	}
	cons := sched.Constraints{MaxFUs: map[dfg.Class]int{
		dfg.ClassAdd: maxFUs,
		dfg.ClassMul: maxFUs,
	}}
	if _, err := sched.PathBased(g, cons); err != nil {
		return nil, fmt.Errorf("mediabench: schedule %s: %w", b.Name, err)
	}
	tr := b.Workload(g, samples, seed)
	res, err := sim.Run(ctx, g, tr)
	if err != nil {
		return nil, fmt.Errorf("mediabench: simulate %s: %w", b.Name, err)
	}
	return &Prepared{Bench: b, G: g, Res: res, Trace: tr, NumFUs: maxFUs}, nil
}

// HasClass reports whether the prepared DFG contains any operations of class
// c (ecb_enc4 has no multipliers).
func (p *Prepared) HasClass(c dfg.Class) bool {
	return len(p.G.OpsOfClass(c)) > 0
}
