// Package keymat is the key-material hygiene layer of the serving stack.
// The artifact this system produces and defends IS a secret — an SFLL
// locking key / protected minterm — so its lifecycle follows two rules,
// mirroring how garble splits random builds from -reversible ones:
//
//   - Secrets default to cryptographically random, drawn per request from
//     crypto/rand. Reproducible mode (an explicit caller-supplied secret
//     or seed) is the opt-in exception for experiments and tests, never
//     the default.
//   - Key bits never appear outside a result payload: logs, progress
//     events and job records render Redacted instead. The result payload
//     itself is exempt — recovering the key is the attack's entire point.
package keymat

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// Redacted is the placeholder rendered anywhere key material would
// otherwise leak into logs, progress events or job records.
const Redacted = "<redacted>"

// RandomSecret draws a uniformly random secret of the given bit width
// (1..64) from crypto/rand. The width is the full input width the secret
// must fit (for an attack on a w-bit-operand adder, 2*w).
func RandomSecret(bits int) (uint64, error) {
	if bits < 1 || bits > 64 {
		return 0, fmt.Errorf("keymat: secret width %d outside [1, 64]", bits)
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("keymat: %w", err)
	}
	v := binary.LittleEndian.Uint64(buf[:])
	if bits < 64 {
		v &= 1<<uint(bits) - 1
	}
	return v, nil
}
