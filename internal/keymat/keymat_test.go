package keymat

import "testing"

func TestRandomSecretBounds(t *testing.T) {
	for _, bits := range []int{1, 6, 16, 63, 64} {
		for i := 0; i < 64; i++ {
			v, err := RandomSecret(bits)
			if err != nil {
				t.Fatal(err)
			}
			if bits < 64 && v >= 1<<uint(bits) {
				t.Fatalf("RandomSecret(%d) = %#x, exceeds the width", bits, v)
			}
		}
	}
	for _, bad := range []int{0, -1, 65} {
		if _, err := RandomSecret(bad); err == nil {
			t.Errorf("RandomSecret(%d) accepted", bad)
		}
	}
}

func TestRandomSecretDraws(t *testing.T) {
	// Two full-width draws colliding means the entropy source is broken
	// (P = 2^-64), and narrow widths must still cover more than one value.
	a, err := RandomSecret(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSecret(64)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("two 64-bit draws both returned %#x", a)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		v, err := RandomSecret(4)
		if err != nil {
			t.Fatal(err)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatal("256 4-bit draws returned a single value")
	}
}
