package netlist

import (
	"testing"
	"testing/quick"
)

// TestAlternateArchitecturesEquivalentQuick checks that every
// micro-architecture of an FU computes the same function.
func TestAlternateArchitecturesEquivalentQuick(t *testing.T) {
	for _, kind := range []string{"adder", "multiplier"} {
		for _, width := range []int{2, 4, 8} {
			variants, err := ArchitectureVariants(kind, width)
			if err != nil {
				t.Fatal(err)
			}
			if len(variants) < 2 {
				t.Fatalf("%s: want >= 2 variants", kind)
			}
			for _, v := range variants {
				if err := v.Validate(); err != nil {
					t.Fatalf("%s: %v", v.Name, err)
				}
			}
			mask := uint64(1)<<uint(2*width) - 1
			f := func(raw uint32) bool {
				in := uint64(raw) & mask
				ref := evalUint(t, variants[0], in, nil)
				for _, v := range variants[1:] {
					if evalUint(t, v, in, nil) != ref {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Errorf("%s width %d: %v", kind, width, err)
			}
		}
	}
}

// TestCLAExhaustive checks the lookahead adder bit-for-bit at width 4.
func TestCLAExhaustive(t *testing.T) {
	cla, err := NewAdderCLA(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got := evalUint(t, cla, a|b<<4, nil); got != (a+b)&0xF {
				t.Fatalf("cla(%d, %d) = %d, want %d", a, b, got, (a+b)&0xF)
			}
		}
	}
}

// TestShiftAddExhaustive checks the shift-add multiplier at width 4.
func TestShiftAddExhaustive(t *testing.T) {
	sa, err := NewMultiplierShiftAdd(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got := evalUint(t, sa, a|b<<4, nil); got != (a*b)&0xF {
				t.Fatalf("sa(%d, %d) = %d, want %d", a, b, got, (a*b)&0xF)
			}
		}
	}
}

func TestArchitectureVariantsErrors(t *testing.T) {
	if _, err := ArchitectureVariants("divider", 4); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := NewAdderCLA(0); err == nil {
		t.Fatal("width 0 must error")
	}
	if _, err := NewMultiplierShiftAdd(99); err == nil {
		t.Fatal("width 99 must error")
	}
}
