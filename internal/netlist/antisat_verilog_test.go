package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLockAntiSATSemantics(t *testing.T) {
	base, _ := NewAdder(3) // 6-bit input space: exhaustively checkable
	locked, key, err := LockAntiSAT(base, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := locked.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(key) != 12 { // two 6-bit key halves
		t.Fatalf("key length = %d, want 12", len(key))
	}
	// Correct key (K1 == K2): transparent everywhere.
	for in := uint64(0); in < 64; in++ {
		if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
			t.Fatalf("correct key corrupts input %#x", in)
		}
	}
	// ANY key with K1 == K2 is correct (the scheme's correct-key class).
	alt := make([]bool, 12)
	for i := 0; i < 6; i++ {
		alt[i] = i%2 == 0
		alt[i+6] = alt[i]
	}
	for in := uint64(0); in < 64; in++ {
		if evalUint(t, locked, in, alt) != evalUint(t, base, in, nil) {
			t.Fatalf("alternate K1==K2 key corrupts input %#x", in)
		}
	}
	// A wrong key (K1 != K2) corrupts exactly the inputs X where
	// AND(X^K1) & ~AND(X^K2): X == ~K1 and X != ~K2 — at most one minterm.
	wrong := append([]bool(nil), key...)
	wrong[0] = !wrong[0] // K1 differs from K2 in bit 0
	corrupted := 0
	for in := uint64(0); in < 64; in++ {
		if evalUint(t, locked, in, wrong) != evalUint(t, base, in, nil) {
			corrupted++
		}
	}
	if corrupted != 1 {
		t.Fatalf("wrong key corrupts %d minterms, want exactly 1 (low-ε Anti-SAT property)", corrupted)
	}
}

func TestLockAntiSATErrors(t *testing.T) {
	base, _ := NewAdder(2)
	locked, _, _ := LockAntiSAT(base, 1)
	if _, _, err := LockAntiSAT(locked, 1); err == nil {
		t.Error("double locking must error")
	}
	one := New("one")
	a := one.AddInput()
	one.MarkOutput(one.Buf(a))
	if _, _, err := LockAntiSAT(one, 1); err == nil {
		t.Error("single-input circuit must error")
	}
}

func TestWriteVerilogRoundTripSemantics(t *testing.T) {
	// We cannot run a Verilog simulator here, but the export must be
	// structurally complete: a wire and assign per logic gate, ports with
	// correct widths, and every output driven.
	base, _ := NewAdder(4)
	locked, _, err := LockSFLLHD0(base, []uint64{0x5A})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := locked.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module add4_sfll",
		"input  wire [7:0] in",
		"input  wire [7:0] key",
		"output wire [3:0] out",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	if got := strings.Count(v, "assign"); got < locked.LogicGates() {
		t.Errorf("assign count %d below logic gate count %d", got, locked.LogicGates())
	}
	for i := range locked.Outputs {
		if !strings.Contains(v, "assign out["+itoa(i)+"]") {
			t.Errorf("output %d not driven", i)
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestWriteVerilogUnlocked(t *testing.T) {
	mul, _ := NewMultiplier(2)
	var sb strings.Builder
	if err := mul.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "key") {
		t.Error("unlocked circuit must have no key port")
	}
	if !strings.Contains(sb.String(), "module mul2") {
		t.Error("module name missing")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"add8":         "add8",
		"add8-sfll":    "add8_sfll",
		"8bit":         "_8bit",
		"":             "circuit",
		"a b/c":        "a_b_c",
		"mul2-xorlock": "mul2_xorlock",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAntiSATSurvivesManyWrongKeys(t *testing.T) {
	// Statistical check of the low-corruption property across random wrong
	// keys: corruption is at most 1 minterm each.
	base, _ := NewAdder(2)
	locked, key, err := LockAntiSAT(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		wrong := make([]bool, len(key))
		for i := range wrong {
			wrong[i] = rng.Intn(2) == 1
		}
		// Skip the correct-key class K1 == K2.
		same := true
		for i := 0; i < 4; i++ {
			if wrong[i] != wrong[i+4] {
				same = false
			}
		}
		if same {
			continue
		}
		corrupted := 0
		for in := uint64(0); in < 16; in++ {
			if evalUint(t, locked, in, wrong) != evalUint(t, base, in, nil) {
				corrupted++
			}
		}
		if corrupted > 1 {
			t.Fatalf("wrong key corrupts %d minterms, want <= 1", corrupted)
		}
	}
}
