package netlist

import (
	"fmt"
	"math/bits"
)

// This file implements SFLL-HD(h) for general h: the FU output is perturbed
// for every input at Hamming distance exactly h from a hard-coded stripped
// pattern, and restored for inputs at distance h from the key. The correct
// key is the stripped pattern itself. Per wrong key, C(n, h) input minterms
// are corrupted, so h directly sets ε in Eqn. 1 at a fixed key length —
// this is the knob behind the paper's error-rate/SAT-resilience trade-off.

// addBus builds a ripple adder over two little-endian wire buses of possibly
// different lengths, returning the (max+1)-bit sum bus.
func addBus(c *Circuit, a, b []int) []int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, 0, n+1)
	carry := -1
	for i := 0; i < n; i++ {
		var x, y = -1, -1
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		sum, cout := -1, -1
		switch {
		case x >= 0 && y >= 0:
			sum = c.Xor(x, y)
			cout = c.And(x, y)
		case x >= 0:
			sum = x
		case y >= 0:
			sum = y
		}
		if carry >= 0 {
			if sum >= 0 {
				s2 := c.Xor(sum, carry)
				c2 := c.And(sum, carry)
				if cout >= 0 {
					cout = c.Or(cout, c2)
				} else {
					cout = c2
				}
				sum = s2
			} else {
				sum = carry
			}
			carry = -1
		}
		if sum < 0 {
			sum = c.AddConst(false)
		}
		out = append(out, sum)
		carry = cout
	}
	if carry >= 0 {
		out = append(out, carry)
	} else {
		out = append(out, c.AddConst(false))
	}
	return out
}

// popCount builds a population-count circuit over the wires, returning a
// little-endian result bus.
func popCount(c *Circuit, wires []int) []int {
	if len(wires) == 0 {
		return []int{c.AddConst(false)}
	}
	buses := make([][]int, len(wires))
	for i, w := range wires {
		buses[i] = []int{w}
	}
	for len(buses) > 1 {
		var next [][]int
		for i := 0; i+1 < len(buses); i += 2 {
			next = append(next, addBus(c, buses[i], buses[i+1]))
		}
		if len(buses)%2 == 1 {
			next = append(next, buses[len(buses)-1])
		}
		buses = next
	}
	return buses[0]
}

// busEqualsConst asserts a wire bus equals a constant, returning the match
// wire.
func busEqualsConst(c *Circuit, bus []int, v uint64) int {
	match := -1
	for i, w := range bus {
		var eq int
		if v>>uint(i)&1 == 1 {
			eq = c.Buf(w)
		} else {
			eq = c.Not(w)
		}
		if match < 0 {
			match = eq
		} else {
			match = c.And(match, eq)
		}
	}
	return match
}

// hdEquals builds HD(inputs, ref) == h where ref is either a constant
// pattern (key == nil) or fresh key inputs appended to the circuit.
func hdEquals(c *Circuit, inputs []int, pattern []bool, useKey bool, h int) int {
	diffs := make([]int, len(inputs))
	for i, in := range inputs {
		if useKey {
			k := c.AddKey()
			diffs[i] = c.Xor(in, k)
		} else if pattern[i] {
			diffs[i] = c.Not(in)
		} else {
			diffs[i] = c.Buf(in)
		}
	}
	return busEqualsConst(c, popCount(c, diffs), uint64(h))
}

// LockSFLLHD applies SFLL-HD(h) locking protecting the inputs at Hamming
// distance h from the stripped pattern. The correct key is the pattern
// itself; each wrong key corrupts C(n, h) protected minterms plus its own
// distance-h ball, giving ε = C(n, h)/2^n in Eqn. 1. h = 0 reduces to
// LockSFLLHD0 with a single protected pattern.
func LockSFLLHD(base *Circuit, stripped uint64, h int) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if len(base.Keys) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
	}
	n := len(base.Inputs)
	if h < 0 || h > n {
		return nil, nil, fmt.Errorf("netlist: hamming distance %d outside [0, %d]", h, n)
	}
	if stripped >= 1<<uint(n) {
		return nil, nil, fmt.Errorf("netlist: pattern %#x exceeds %d-bit input space", stripped, n)
	}
	lc := base.Clone()
	lc.Name = fmt.Sprintf("%s-sfllhd%d", base.Name, h)
	pattern := Uint64ToBits(stripped, n)
	perturb := hdEquals(lc, lc.Inputs, pattern, false, h)
	restore := hdEquals(lc, lc.Inputs, nil, true, h)
	flip := lc.Xor(perturb, restore)
	lc.Outputs = append([]int(nil), lc.Outputs...)
	lc.Outputs[0] = lc.Xor(base.Outputs[0], flip)
	return lc, pattern, nil
}

// ProtectedCount returns C(n, h): the number of minterms a wrong key
// corrupts under SFLL-HD(h) on an n-bit input space (the ε numerator).
func ProtectedCount(n, h int) int {
	if h < 0 || h > n {
		return 0
	}
	// The binomial stays small at our widths; compute it directly.
	num, den := 1, 1
	for i := 0; i < h; i++ {
		num *= n - i
		den *= i + 1
	}
	return num / den
}

// HammingDistance counts differing bits of two patterns.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }
