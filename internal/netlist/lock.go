package netlist

import (
	"fmt"
	"math/rand"
)

// This file implements the gate-level locking constructions evaluated by the
// SAT attack: random XOR/XNOR key-gate insertion (the classic baseline that
// the SAT attack defeats quickly), SFLL-HD(0) critical-minterm locking (the
// family the paper's binding algorithms assume), and a keyed routing network
// (the Full-Lock-style exponential-runtime family of Sec. V-C).

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Name:     c.Name,
		Gates:    append([]Gate(nil), c.Gates...),
		Inputs:   append([]int(nil), c.Inputs...),
		Keys:     append([]int(nil), c.Keys...),
		Outputs:  append([]int(nil), c.Outputs...),
		Feedback: append([]FeedbackEdge(nil), c.Feedback...),
		err:      c.err,
	}
	return nc
}

// LockXOR inserts nKeys random XOR/XNOR key gates after randomly chosen
// logic gates (random logic locking / EPIC-style). It returns the locked
// circuit and the correct key. The base circuit is not modified.
func LockXOR(base *Circuit, nKeys int, seed int64) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	var logicGates []int
	for id, g := range base.Gates {
		if g.Kind.arity() > 0 {
			logicGates = append(logicGates, id)
		}
	}
	if nKeys < 1 || nKeys > len(logicGates) {
		return nil, nil, fmt.Errorf("netlist: cannot insert %d key gates into %d logic gates",
			nKeys, len(logicGates))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(logicGates))
	selected := map[int]bool{}
	for _, i := range perm[:nKeys] {
		selected[logicGates[i]] = true
	}

	lc := New(base.Name + "-xorlock")
	remap := make([]int, len(base.Gates))
	var key []bool
	for id, g := range base.Gates {
		ng := g
		if g.Kind.arity() >= 1 {
			ng.A = remap[g.A]
		}
		if g.Kind.arity() == 2 {
			ng.B = remap[g.B]
		}
		switch g.Kind {
		case GInput:
			remap[id] = lc.AddInput()
		case GKey:
			return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
		default:
			remap[id] = lc.add(ng)
		}
		if selected[id] {
			k := lc.AddKey()
			// XNOR polarity hides the correct key value: XOR wants 0,
			// XNOR wants 1.
			if rng.Intn(2) == 0 {
				remap[id] = lc.Xor(remap[id], k)
				key = append(key, false)
			} else {
				remap[id] = lc.Xnor(remap[id], k)
				key = append(key, true)
			}
		}
	}
	for _, o := range base.Outputs {
		lc.MarkOutput(remap[o])
	}
	return lc, key, nil
}

// LockSFLLHD0 applies SFLL-HD(0)-style critical-minterm locking protecting
// the given input patterns (each over the full input bus, LSB-first packed
// into a uint64). For each protected pattern s a perturb unit flips output
// bit 0 when X == s and a restore unit flips it back when X == k_s; the
// correct key is the concatenation of the protected patterns themselves.
// Under any wrong key block k != s, the FU output is corrupted exactly at
// X = s (the designer-chosen locked input, static across wrong keys) and at
// X = k (the wrong-key-dependent cube).
func LockSFLLHD0(base *Circuit, protected []uint64) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if len(base.Keys) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
	}
	if len(protected) == 0 {
		return nil, nil, fmt.Errorf("netlist: no protected patterns")
	}
	seen := map[uint64]bool{}
	for _, s := range protected {
		if s >= 1<<uint(len(base.Inputs)) {
			return nil, nil, fmt.Errorf("netlist: pattern %#x exceeds %d-bit input space", s, len(base.Inputs))
		}
		if seen[s] {
			return nil, nil, fmt.Errorf("netlist: duplicate protected pattern %#x", s)
		}
		seen[s] = true
	}

	lc := base.Clone()
	lc.Name = base.Name + "-sfll"
	var key []bool
	flip := -1
	for _, s := range protected {
		pattern := Uint64ToBits(s, len(lc.Inputs))
		perturb := equalsConst(lc, lc.Inputs, pattern)
		restore := equalsKey(lc, lc.Inputs)
		pair := lc.Xor(perturb, restore)
		if flip < 0 {
			flip = pair
		} else {
			flip = lc.Xor(flip, pair)
		}
		key = append(key, pattern...)
	}
	lc.Outputs = append([]int(nil), lc.Outputs...)
	lc.Outputs[0] = lc.Xor(base.Outputs[0], flip)
	return lc, key, nil
}

// LockRouting prepends a keyed routing network (Full-Lock style [7]) over
// the circuit's inputs: stages of key-controlled 2x2 swap switches in a
// butterfly arrangement. The correct key is all zeros (every switch passes
// straight through). The input count must be a power of two.
func LockRouting(base *Circuit, seed int64) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if len(base.Keys) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
	}
	n := len(base.Inputs)
	if n < 2 || n&(n-1) != 0 {
		return nil, nil, fmt.Errorf("netlist: routing network needs power-of-two inputs, got %d", n)
	}
	lg := 0
	for 1<<lg < n {
		lg++
	}

	lc := New(base.Name + "-route")
	wires := make([]int, n)
	for i := range wires {
		wires[i] = lc.AddInput()
	}
	var key []bool
	stages := 2*lg - 1
	for st := 0; st < stages; st++ {
		stride := 1 << uint(st%lg)
		next := append([]int(nil), wires...)
		for i := 0; i < n; i++ {
			if i&stride != 0 || i+stride >= n {
				continue
			}
			k := lc.AddKey()
			key = append(key, false)
			lo, hi := wires[i], wires[i+stride]
			next[i] = lc.Mux(k, lo, hi)
			next[i+stride] = lc.Mux(k, hi, lo)
		}
		wires = next
	}

	// Copy the base logic, with original inputs replaced by network wires.
	remap := make([]int, len(base.Gates))
	in := 0
	for id, g := range base.Gates {
		if g.Kind == GInput {
			remap[id] = wires[in]
			in++
			continue
		}
		ng := g
		if g.Kind.arity() >= 1 {
			ng.A = remap[g.A]
		}
		if g.Kind.arity() == 2 {
			ng.B = remap[g.B]
		}
		remap[id] = lc.add(ng)
	}
	for _, o := range base.Outputs {
		lc.MarkOutput(remap[o])
	}
	_ = seed // reserved: future randomized initial permutations
	return lc, key, nil
}
