// Package netlist provides gate-level combinational circuits: the substrate
// on which logic locking is physically realised and SAT-attacked.
//
// The paper's architectural algorithms reason about locked FUs abstractly;
// validating their SAT-resilience claims (Eqn. 1, Sec. II-A) requires real
// locked netlists and a real SAT attack. This package synthesises the FU
// datapaths (ripple-carry adders, array multipliers), inserts locking
// structures (XOR key gates, SFLL-HD functionality stripping and restore,
// keyed routing networks), and evaluates circuits for use as attack oracles.
package netlist

import (
	"errors"
	"fmt"
)

// ErrConstruction reports that a builder call referenced a gate that does
// not exist. The builder is sticky: the first bad reference is recorded,
// every later call becomes a no-op returning -1, and the error surfaces
// from Err, Validate, and Eval — so generator code can chain builder calls
// without checking each one and still never ship a malformed circuit.
var ErrConstruction = errors.New("netlist: malformed construction")

// GateKind enumerates gate types. Input and Key are sources; all others
// combine fan-ins.
type GateKind uint8

// Gate kinds.
const (
	GInput GateKind = iota // primary input
	GKey                   // key input
	GConst                 // constant (value in Arg)
	GNot                   // 1 fan-in
	GBuf                   // 1 fan-in
	GAnd
	GOr
	GXor
	GNand
	GNor
	GXnor
)

var gateNames = [...]string{
	GInput: "input", GKey: "key", GConst: "const", GNot: "not", GBuf: "buf",
	GAnd: "and", GOr: "or", GXor: "xor", GNand: "nand", GNor: "nor", GXnor: "xnor",
}

func (k GateKind) String() string {
	if int(k) < len(gateNames) {
		return gateNames[k]
	}
	return fmt.Sprintf("gate(%d)", uint8(k))
}

// arity returns the fan-in count of a gate kind.
func (k GateKind) arity() int {
	switch k {
	case GInput, GKey, GConst:
		return 0
	case GNot, GBuf:
		return 1
	default:
		return 2
	}
}

// Gate is one node of the circuit. Fan-ins reference earlier gates
// (topological order is an invariant maintained by the builder).
type Gate struct {
	Kind GateKind
	A, B int  // fan-ins; -1 when unused
	Arg  bool // constant value for GConst
}

// Circuit is a combinational netlist with designated primary inputs, key
// inputs and outputs.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate ids, in bus order
	Keys    []int
	Outputs []int

	// err records the first builder misuse (ErrConstruction); once set,
	// builder calls are no-ops and Validate/Eval refuse the circuit.
	err error
}

// New returns an empty circuit.
func New(name string) *Circuit { return &Circuit{Name: name} }

func (c *Circuit) add(g Gate) int {
	if c.err != nil {
		return -1
	}
	n := g.Kind.arity()
	if n >= 1 {
		if !c.ref(g.A) {
			return -1
		}
	} else {
		g.A = -1
	}
	if n == 2 {
		if !c.ref(g.B) {
			return -1
		}
	} else {
		g.B = -1
	}
	c.Gates = append(c.Gates, g)
	return len(c.Gates) - 1
}

// ref checks a fan-in reference, recording the first violation as the
// circuit's sticky construction error.
func (c *Circuit) ref(id int) bool {
	if id < 0 || id >= len(c.Gates) {
		c.err = fmt.Errorf("%w: circuit %q fan-in %d out of range (have %d gates)",
			ErrConstruction, c.Name, id, len(c.Gates))
		return false
	}
	return true
}

// Err returns the first builder misuse recorded on the circuit, or nil.
// errors.Is(err, ErrConstruction) matches it.
func (c *Circuit) Err() error { return c.err }

// AddInput appends a primary input and returns its gate id.
func (c *Circuit) AddInput() int {
	id := c.add(Gate{Kind: GInput})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddKey appends a key input and returns its gate id.
func (c *Circuit) AddKey() int {
	id := c.add(Gate{Kind: GKey})
	c.Keys = append(c.Keys, id)
	return id
}

// AddConst appends a constant gate.
func (c *Circuit) AddConst(v bool) int { return c.add(Gate{Kind: GConst, Arg: v}) }

// Not appends an inverter on a.
func (c *Circuit) Not(a int) int { return c.add(Gate{Kind: GNot, A: a}) }

// Buf appends a buffer on a.
func (c *Circuit) Buf(a int) int { return c.add(Gate{Kind: GBuf, A: a}) }

// And appends an AND gate.
func (c *Circuit) And(a, b int) int { return c.add(Gate{Kind: GAnd, A: a, B: b}) }

// Or appends an OR gate.
func (c *Circuit) Or(a, b int) int { return c.add(Gate{Kind: GOr, A: a, B: b}) }

// Xor appends an XOR gate.
func (c *Circuit) Xor(a, b int) int { return c.add(Gate{Kind: GXor, A: a, B: b}) }

// Nand appends a NAND gate.
func (c *Circuit) Nand(a, b int) int { return c.add(Gate{Kind: GNand, A: a, B: b}) }

// Nor appends a NOR gate.
func (c *Circuit) Nor(a, b int) int { return c.add(Gate{Kind: GNor, A: a, B: b}) }

// Xnor appends an XNOR gate.
func (c *Circuit) Xnor(a, b int) int { return c.add(Gate{Kind: GXnor, A: a, B: b}) }

// Mux appends sel ? hi : lo as three gates.
func (c *Circuit) Mux(sel, lo, hi int) int {
	notSel := c.Not(sel)
	return c.Or(c.And(sel, hi), c.And(notSel, lo))
}

// MarkOutput designates gate id as the next primary output.
func (c *Circuit) MarkOutput(id int) {
	if c.err != nil || !c.ref(id) {
		return
	}
	c.Outputs = append(c.Outputs, id)
}

// NumGates returns the total gate count (including sources).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// LogicGates returns the count of combinational gates (excluding sources),
// the "area" figure used in overhead reporting.
func (c *Circuit) LogicGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.arity() > 0 {
			n++
		}
	}
	return n
}

// Eval computes the outputs for the given input and key assignments.
func (c *Circuit) Eval(inputs, keys []bool) ([]bool, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("netlist %s: got %d inputs, want %d", c.Name, len(inputs), len(c.Inputs))
	}
	if len(keys) != len(c.Keys) {
		return nil, fmt.Errorf("netlist %s: got %d key bits, want %d", c.Name, len(keys), len(c.Keys))
	}
	vals := make([]bool, len(c.Gates))
	in, key := 0, 0
	for id, g := range c.Gates {
		switch g.Kind {
		case GInput:
			vals[id] = inputs[in]
			in++
		case GKey:
			vals[id] = keys[key]
			key++
		case GConst:
			vals[id] = g.Arg
		case GNot:
			vals[id] = !vals[g.A]
		case GBuf:
			vals[id] = vals[g.A]
		case GAnd:
			vals[id] = vals[g.A] && vals[g.B]
		case GOr:
			vals[id] = vals[g.A] || vals[g.B]
		case GXor:
			vals[id] = vals[g.A] != vals[g.B]
		case GNand:
			vals[id] = !(vals[g.A] && vals[g.B])
		case GNor:
			vals[id] = !(vals[g.A] || vals[g.B])
		case GXnor:
			vals[id] = vals[g.A] == vals[g.B]
		default:
			return nil, fmt.Errorf("netlist %s: unknown gate kind %v", c.Name, g.Kind)
		}
	}
	outs := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		outs[i] = vals[id]
	}
	return outs, nil
}

// Validate checks structural invariants: topological fan-in order, source
// bookkeeping consistency, and output references. A circuit whose builder
// recorded a construction error fails validation with that error.
func (c *Circuit) Validate() error {
	if c.err != nil {
		return c.err
	}
	in, key := 0, 0
	for id, g := range c.Gates {
		n := g.Kind.arity()
		if n >= 1 && (g.A < 0 || g.A >= id) {
			return fmt.Errorf("netlist %s: gate %d fan-in A=%d not topological", c.Name, id, g.A)
		}
		if n == 2 && (g.B < 0 || g.B >= id) {
			return fmt.Errorf("netlist %s: gate %d fan-in B=%d not topological", c.Name, id, g.B)
		}
		switch g.Kind {
		case GInput:
			if in >= len(c.Inputs) || c.Inputs[in] != id {
				return fmt.Errorf("netlist %s: input bookkeeping broken at gate %d", c.Name, id)
			}
			in++
		case GKey:
			if key >= len(c.Keys) || c.Keys[key] != id {
				return fmt.Errorf("netlist %s: key bookkeeping broken at gate %d", c.Name, id)
			}
			key++
		}
	}
	if in != len(c.Inputs) || key != len(c.Keys) {
		return fmt.Errorf("netlist %s: source bookkeeping counts wrong", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("netlist %s: no outputs", c.Name)
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Gates) {
			return fmt.Errorf("netlist %s: output %d out of range", c.Name, o)
		}
	}
	return nil
}

// Uint64ToBits expands the low n bits of v, LSB first.
func Uint64ToBits(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// BitsToUint64 packs bits (LSB first) into an integer.
func BitsToUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
