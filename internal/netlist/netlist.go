// Package netlist provides gate-level combinational circuits: the substrate
// on which logic locking is physically realised and SAT-attacked.
//
// The paper's architectural algorithms reason about locked FUs abstractly;
// validating their SAT-resilience claims (Eqn. 1, Sec. II-A) requires real
// locked netlists and a real SAT attack. This package synthesises the FU
// datapaths (ripple-carry adders, array multipliers), inserts locking
// structures (XOR key gates, SFLL-HD functionality stripping and restore,
// keyed routing networks), and evaluates circuits for use as attack oracles.
package netlist

import (
	"errors"
	"fmt"
)

// ErrConstruction reports that a builder call referenced a gate that does
// not exist. The builder is sticky: the first bad reference is recorded,
// every later call becomes a no-op returning -1, and the error surfaces
// from Err, Validate, and Eval — so generator code can chain builder calls
// without checking each one and still never ship a malformed circuit.
var ErrConstruction = errors.New("netlist: malformed construction")

// ErrUnstable reports a cyclic circuit configuration that did not settle: the
// key-conditioned feedback left at least one output oscillating or latching,
// so the circuit has no unique combinational value for that input/key pair.
// Wrong keys of cyclic locking schemes are *designed* to trigger this; the
// evaluator detects it deterministically (three-valued fixed point) instead
// of looping forever.
var ErrUnstable = errors.New("netlist: combinational feedback did not settle")

// GateKind enumerates gate types. Input and Key are sources; all others
// combine fan-ins.
type GateKind uint8

// Gate kinds.
const (
	GInput GateKind = iota // primary input
	GKey                   // key input
	GConst                 // constant (value in Arg)
	GNot                   // 1 fan-in
	GBuf                   // 1 fan-in
	GAnd
	GOr
	GXor
	GNand
	GNor
	GXnor
)

var gateNames = [...]string{
	GInput: "input", GKey: "key", GConst: "const", GNot: "not", GBuf: "buf",
	GAnd: "and", GOr: "or", GXor: "xor", GNand: "nand", GNor: "nor", GXnor: "xnor",
}

func (k GateKind) String() string {
	if int(k) < len(gateNames) {
		return gateNames[k]
	}
	return fmt.Sprintf("gate(%d)", uint8(k))
}

// arity returns the fan-in count of a gate kind.
func (k GateKind) arity() int {
	switch k {
	case GInput, GKey, GConst:
		return 0
	case GNot, GBuf:
		return 1
	default:
		return 2
	}
}

// Gate is one node of the circuit. Fan-ins reference earlier gates
// (topological order is an invariant maintained by the builder).
type Gate struct {
	Kind GateKind
	A, B int  // fan-ins; -1 when unused
	Arg  bool // constant value for GConst
}

// FeedbackEdge registers one key-conditioned back-edge: fan-in Pin of gate
// Gate reads the output of the LATER gate From, breaking the topological
// invariant on purpose. Key indexes the circuit's key bus; the edge is
// considered structurally live exactly when keys[Key] == Arm.
//
// Contract (maintained by LockCyclic, assumed by CycleConstraints and the
// evaluator): whenever keys[Key] != Arm the consuming gate's output must not
// depend on the rewired fan-in — in the MUX construction the back-edge feeds
// an AND whose other input is forced to 0 by the key, so the broken edge is
// dead combinationally, not just conceptually.
type FeedbackEdge struct {
	Gate int  // consuming gate id
	Pin  int  // 0 = fan-in A, 1 = fan-in B
	From int  // source gate id, >= Gate
	Key  int  // index into Keys (bus position, not gate id)
	Arm  bool // key value under which the edge is live
}

// Circuit is a combinational netlist with designated primary inputs, key
// inputs and outputs.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate ids, in bus order
	Keys    []int
	Outputs []int
	// Feedback lists the registered key-conditioned back-edges of a cyclic
	// circuit (SRCLock-style locking). Empty for ordinary acyclic netlists,
	// which keep the single-pass evaluator and the strict topological
	// Validate invariant.
	Feedback []FeedbackEdge

	// err records the first builder misuse (ErrConstruction); once set,
	// builder calls are no-ops and Validate/Eval refuse the circuit.
	err error
}

// New returns an empty circuit.
func New(name string) *Circuit { return &Circuit{Name: name} }

func (c *Circuit) add(g Gate) int {
	if c.err != nil {
		return -1
	}
	n := g.Kind.arity()
	if n >= 1 {
		if !c.ref(g.A) {
			return -1
		}
	} else {
		g.A = -1
	}
	if n == 2 {
		if !c.ref(g.B) {
			return -1
		}
	} else {
		g.B = -1
	}
	c.Gates = append(c.Gates, g)
	return len(c.Gates) - 1
}

// ref checks a fan-in reference, recording the first violation as the
// circuit's sticky construction error.
func (c *Circuit) ref(id int) bool {
	if id < 0 || id >= len(c.Gates) {
		c.err = fmt.Errorf("%w: circuit %q fan-in %d out of range (have %d gates)",
			ErrConstruction, c.Name, id, len(c.Gates))
		return false
	}
	return true
}

// Err returns the first builder misuse recorded on the circuit, or nil.
// errors.Is(err, ErrConstruction) matches it.
func (c *Circuit) Err() error { return c.err }

// AddInput appends a primary input and returns its gate id.
func (c *Circuit) AddInput() int {
	id := c.add(Gate{Kind: GInput})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddKey appends a key input and returns its gate id.
func (c *Circuit) AddKey() int {
	id := c.add(Gate{Kind: GKey})
	c.Keys = append(c.Keys, id)
	return id
}

// AddConst appends a constant gate.
func (c *Circuit) AddConst(v bool) int { return c.add(Gate{Kind: GConst, Arg: v}) }

// Not appends an inverter on a.
func (c *Circuit) Not(a int) int { return c.add(Gate{Kind: GNot, A: a}) }

// Buf appends a buffer on a.
func (c *Circuit) Buf(a int) int { return c.add(Gate{Kind: GBuf, A: a}) }

// And appends an AND gate.
func (c *Circuit) And(a, b int) int { return c.add(Gate{Kind: GAnd, A: a, B: b}) }

// Or appends an OR gate.
func (c *Circuit) Or(a, b int) int { return c.add(Gate{Kind: GOr, A: a, B: b}) }

// Xor appends an XOR gate.
func (c *Circuit) Xor(a, b int) int { return c.add(Gate{Kind: GXor, A: a, B: b}) }

// Nand appends a NAND gate.
func (c *Circuit) Nand(a, b int) int { return c.add(Gate{Kind: GNand, A: a, B: b}) }

// Nor appends a NOR gate.
func (c *Circuit) Nor(a, b int) int { return c.add(Gate{Kind: GNor, A: a, B: b}) }

// Xnor appends an XNOR gate.
func (c *Circuit) Xnor(a, b int) int { return c.add(Gate{Kind: GXnor, A: a, B: b}) }

// Mux appends sel ? hi : lo as three gates.
func (c *Circuit) Mux(sel, lo, hi int) int {
	notSel := c.Not(sel)
	return c.Or(c.And(sel, hi), c.And(notSel, lo))
}

// AddFeedback rewires fan-in pin (0=A, 1=B) of gate to read from a gate at
// or after it in topological order, registering the back-edge as conditioned
// on key bit key (bus index) being equal to arm. Misuse — out-of-range ids,
// a forward "feedback" that an ordinary edge could express, a pin the gate
// does not have, or a second feedback on the same pin — records the sticky
// construction error, mirroring the rest of the builder.
func (c *Circuit) AddFeedback(gate, pin, from, key int, arm bool) {
	if c.err != nil {
		return
	}
	fail := func(format string, args ...any) {
		c.err = fmt.Errorf("%w: circuit %q "+format,
			append([]any{ErrConstruction, c.Name}, args...)...)
	}
	if gate < 0 || gate >= len(c.Gates) {
		fail("feedback gate %d out of range", gate)
		return
	}
	if from < gate || from >= len(c.Gates) {
		fail("feedback source %d invalid for gate %d (want %d <= from < %d)",
			from, gate, gate, len(c.Gates))
		return
	}
	if key < 0 || key >= len(c.Keys) {
		fail("feedback key index %d out of range (have %d keys)", key, len(c.Keys))
		return
	}
	g := &c.Gates[gate]
	if pin < 0 || pin >= g.Kind.arity() {
		fail("feedback pin %d invalid for %v gate %d", pin, g.Kind, gate)
		return
	}
	for _, fe := range c.Feedback {
		if fe.Gate == gate && fe.Pin == pin {
			fail("duplicate feedback on gate %d pin %d", gate, pin)
			return
		}
	}
	if pin == 0 {
		g.A = from
	} else {
		g.B = from
	}
	c.Feedback = append(c.Feedback, FeedbackEdge{Gate: gate, Pin: pin, From: from, Key: key, Arm: arm})
}

// HasFeedback reports whether the circuit carries registered back-edges
// (i.e. is a cyclic netlist needing the fixed-point evaluator).
func (c *Circuit) HasFeedback() bool { return len(c.Feedback) > 0 }

// MarkOutput designates gate id as the next primary output.
func (c *Circuit) MarkOutput(id int) {
	if c.err != nil || !c.ref(id) {
		return
	}
	c.Outputs = append(c.Outputs, id)
}

// NumGates returns the total gate count (including sources).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// LogicGates returns the count of combinational gates (excluding sources),
// the "area" figure used in overhead reporting.
func (c *Circuit) LogicGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.arity() > 0 {
			n++
		}
	}
	return n
}

// Eval computes the outputs for the given input and key assignments. An
// acyclic circuit evaluates in a single topological pass; a circuit with
// registered feedback edges evaluates to a three-valued fixed point and
// returns ErrUnstable when the configuration oscillates or latches instead
// of settling (see EvalCyclic).
func (c *Circuit) Eval(inputs, keys []bool) ([]bool, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("netlist %s: got %d inputs, want %d", c.Name, len(inputs), len(c.Inputs))
	}
	if len(keys) != len(c.Keys) {
		return nil, fmt.Errorf("netlist %s: got %d key bits, want %d", c.Name, len(keys), len(c.Keys))
	}
	if len(c.Feedback) > 0 {
		return c.evalCyclic(inputs, keys)
	}
	vals := make([]bool, len(c.Gates))
	in, key := 0, 0
	for id, g := range c.Gates {
		switch g.Kind {
		case GInput:
			vals[id] = inputs[in]
			in++
		case GKey:
			vals[id] = keys[key]
			key++
		case GConst:
			vals[id] = g.Arg
		case GNot:
			vals[id] = !vals[g.A]
		case GBuf:
			vals[id] = vals[g.A]
		case GAnd:
			vals[id] = vals[g.A] && vals[g.B]
		case GOr:
			vals[id] = vals[g.A] || vals[g.B]
		case GXor:
			vals[id] = vals[g.A] != vals[g.B]
		case GNand:
			vals[id] = !(vals[g.A] && vals[g.B])
		case GNor:
			vals[id] = !(vals[g.A] || vals[g.B])
		case GXnor:
			vals[id] = vals[g.A] == vals[g.B]
		default:
			return nil, fmt.Errorf("netlist %s: unknown gate kind %v", c.Name, g.Kind)
		}
	}
	outs := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		outs[i] = vals[id]
	}
	return outs, nil
}

// Three-valued logic for the cyclic evaluator: 0, 1, or X (undefined).
const (
	tv0 uint8 = 0
	tv1 uint8 = 1
	tvX uint8 = 2
)

// evalCyclic evaluates a circuit with feedback edges to a ternary fixed
// point: every non-source gate starts at X and repeated in-order sweeps
// refine values monotonically (X may become 0/1, defined values never
// change), so the iteration converges within one sweep per gate. Controlling
// values propagate through X — AND(0, X) = 0 — which is exactly how a broken
// feedback MUX arm kills the undefined loop value under the correct key. Any
// output still X at the fixed point means the configuration latches or
// oscillates; that surfaces as ErrUnstable rather than an arbitrary value.
func (c *Circuit) evalCyclic(inputs, keys []bool) ([]bool, error) {
	vals := make([]uint8, len(c.Gates))
	in, key := 0, 0
	for id, g := range c.Gates {
		switch g.Kind {
		case GInput:
			vals[id] = b2t(inputs[in])
			in++
		case GKey:
			vals[id] = b2t(keys[key])
			key++
		case GConst:
			vals[id] = b2t(g.Arg)
		default:
			vals[id] = tvX
		}
	}
	for pass := 0; pass <= len(c.Gates); pass++ {
		changed := false
		for id, g := range c.Gates {
			if g.Kind.arity() == 0 {
				continue
			}
			var nv uint8
			a := vals[g.A]
			switch g.Kind {
			case GNot:
				nv = tNot(a)
			case GBuf:
				nv = a
			case GAnd:
				nv = tAnd(a, vals[g.B])
			case GOr:
				nv = tOr(a, vals[g.B])
			case GXor:
				nv = tXor(a, vals[g.B])
			case GNand:
				nv = tNot(tAnd(a, vals[g.B]))
			case GNor:
				nv = tNot(tOr(a, vals[g.B]))
			case GXnor:
				nv = tNot(tXor(a, vals[g.B]))
			default:
				return nil, fmt.Errorf("netlist %s: unknown gate kind %v", c.Name, g.Kind)
			}
			if nv != vals[id] {
				vals[id] = nv
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	outs := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		switch vals[id] {
		case tvX:
			return nil, fmt.Errorf("%w: circuit %q output %d undefined under key %#x",
				ErrUnstable, c.Name, i, BitsToUint64(keys))
		case tv1:
			outs[i] = true
		}
	}
	return outs, nil
}

func b2t(v bool) uint8 {
	if v {
		return tv1
	}
	return tv0
}

func tNot(a uint8) uint8 {
	if a == tvX {
		return tvX
	}
	return a ^ 1
}

func tAnd(a, b uint8) uint8 {
	if a == tv0 || b == tv0 {
		return tv0
	}
	if a == tvX || b == tvX {
		return tvX
	}
	return tv1
}

func tOr(a, b uint8) uint8 {
	if a == tv1 || b == tv1 {
		return tv1
	}
	if a == tvX || b == tvX {
		return tvX
	}
	return tv0
}

func tXor(a, b uint8) uint8 {
	if a == tvX || b == tvX {
		return tvX
	}
	return a ^ b
}

// Validate checks structural invariants: topological fan-in order (except
// for registered feedback edges), source bookkeeping consistency, feedback
// registration consistency, and output references. A circuit whose builder
// recorded a construction error fails validation with that error.
func (c *Circuit) Validate() error {
	if c.err != nil {
		return c.err
	}
	// Registered back-edges, keyed by (gate, pin); Validate exempts exactly
	// these from the topological invariant and checks they match the wiring.
	type pinRef struct{ gate, pin int }
	var back map[pinRef]FeedbackEdge
	if len(c.Feedback) > 0 {
		back = make(map[pinRef]FeedbackEdge, len(c.Feedback))
		for _, fe := range c.Feedback {
			if fe.Gate < 0 || fe.Gate >= len(c.Gates) || fe.From < fe.Gate || fe.From >= len(c.Gates) {
				return fmt.Errorf("netlist %s: feedback edge %+v out of range", c.Name, fe)
			}
			if fe.Key < 0 || fe.Key >= len(c.Keys) {
				return fmt.Errorf("netlist %s: feedback edge %+v key index out of range", c.Name, fe)
			}
			if fe.Pin < 0 || fe.Pin >= c.Gates[fe.Gate].Kind.arity() {
				return fmt.Errorf("netlist %s: feedback edge %+v pin invalid", c.Name, fe)
			}
			ref := pinRef{fe.Gate, fe.Pin}
			if _, dup := back[ref]; dup {
				return fmt.Errorf("netlist %s: duplicate feedback on gate %d pin %d", c.Name, fe.Gate, fe.Pin)
			}
			got := c.Gates[fe.Gate].A
			if fe.Pin == 1 {
				got = c.Gates[fe.Gate].B
			}
			if got != fe.From {
				return fmt.Errorf("netlist %s: feedback edge %+v disagrees with wiring (fan-in is %d)",
					c.Name, fe, got)
			}
			back[ref] = fe
		}
	}
	in, key := 0, 0
	for id, g := range c.Gates {
		n := g.Kind.arity()
		if n >= 1 && (g.A < 0 || g.A >= id) {
			if _, ok := back[pinRef{id, 0}]; !ok {
				return fmt.Errorf("netlist %s: gate %d fan-in A=%d not topological", c.Name, id, g.A)
			}
			if g.A < 0 || g.A >= len(c.Gates) {
				return fmt.Errorf("netlist %s: gate %d fan-in A=%d out of range", c.Name, id, g.A)
			}
		}
		if n == 2 && (g.B < 0 || g.B >= id) {
			if _, ok := back[pinRef{id, 1}]; !ok {
				return fmt.Errorf("netlist %s: gate %d fan-in B=%d not topological", c.Name, id, g.B)
			}
			if g.B < 0 || g.B >= len(c.Gates) {
				return fmt.Errorf("netlist %s: gate %d fan-in B=%d out of range", c.Name, id, g.B)
			}
		}
		switch g.Kind {
		case GInput:
			if in >= len(c.Inputs) || c.Inputs[in] != id {
				return fmt.Errorf("netlist %s: input bookkeeping broken at gate %d", c.Name, id)
			}
			in++
		case GKey:
			if key >= len(c.Keys) || c.Keys[key] != id {
				return fmt.Errorf("netlist %s: key bookkeeping broken at gate %d", c.Name, id)
			}
			key++
		}
	}
	if in != len(c.Inputs) || key != len(c.Keys) {
		return fmt.Errorf("netlist %s: source bookkeeping counts wrong", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("netlist %s: no outputs", c.Name)
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Gates) {
			return fmt.Errorf("netlist %s: output %d out of range", c.Name, o)
		}
	}
	return nil
}

// Uint64ToBits expands the low n bits of v, LSB first.
func Uint64ToBits(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// BitsToUint64 packs bits (LSB first) into an integer.
func BitsToUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
