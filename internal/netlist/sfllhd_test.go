package netlist

import (
	"testing"
	"testing/quick"
)

func TestPopCountCircuitQuick(t *testing.T) {
	// Build a standalone popcount circuit over 7 inputs and compare with
	// the software count.
	c := New("pc")
	wires := make([]int, 7)
	for i := range wires {
		wires[i] = c.AddInput()
	}
	for _, w := range popCount(c, wires) {
		c.MarkOutput(w)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint8) bool {
		v := uint64(raw) & 0x7F
		outs, err := c.Eval(Uint64ToBits(v, 7), nil)
		if err != nil {
			return false
		}
		return BitsToUint64(outs) == uint64(HammingDistance(v, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}

func TestProtectedCount(t *testing.T) {
	cases := []struct{ n, h, want int }{
		{6, 0, 1}, {6, 1, 6}, {6, 2, 15}, {6, 3, 20}, {6, 6, 1},
		{8, 2, 28}, {6, 7, 0}, {6, -1, 0},
	}
	for _, tc := range cases {
		if got := ProtectedCount(tc.n, tc.h); got != tc.want {
			t.Errorf("ProtectedCount(%d, %d) = %d, want %d", tc.n, tc.h, got, tc.want)
		}
	}
}

func TestLockSFLLHDSemantics(t *testing.T) {
	base, _ := NewAdder(3)
	secret := uint64(0b110010)
	for _, h := range []int{0, 1, 2} {
		locked, key, err := LockSFLLHD(base, secret, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := locked.Validate(); err != nil {
			t.Fatal(err)
		}
		if BitsToUint64(key) != secret {
			t.Fatalf("h=%d: correct key %#x, want %#x", h, BitsToUint64(key), secret)
		}
		// Correct key: transparent everywhere.
		for in := uint64(0); in < 64; in++ {
			if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
				t.Fatalf("h=%d: correct key corrupts input %#x", h, in)
			}
		}
		// A wrong key corrupts exactly the symmetric difference of the
		// distance-h balls around secret and the wrong value.
		wrong := secret ^ 0b000111 // distance 3 away
		wk := Uint64ToBits(wrong, 6)
		for in := uint64(0); in < 64; in++ {
			inSecretBall := HammingDistance(in, secret) == h
			inWrongBall := HammingDistance(in, wrong) == h
			want := inSecretBall != inWrongBall
			got := evalUint(t, locked, in, wk) != evalUint(t, base, in, nil)
			if got != want {
				t.Fatalf("h=%d input %#x: corrupted=%v, want %v", h, in, got, want)
			}
		}
	}
}

func TestLockSFLLHDErrors(t *testing.T) {
	base, _ := NewAdder(2)
	if _, _, err := LockSFLLHD(base, 0, -1); err == nil {
		t.Error("negative h must error")
	}
	if _, _, err := LockSFLLHD(base, 0, 5); err == nil {
		t.Error("h beyond input width must error")
	}
	if _, _, err := LockSFLLHD(base, 1<<10, 1); err == nil {
		t.Error("pattern outside space must error")
	}
	locked, _, _ := LockSFLLHD(base, 1, 1)
	if _, _, err := LockSFLLHD(locked, 1, 1); err == nil {
		t.Error("double locking must error")
	}
}

func TestAddBusWidths(t *testing.T) {
	// Cross-check bus adder on asymmetric widths.
	c := New("ab")
	a := []int{c.AddInput(), c.AddInput(), c.AddInput()} // 3 bits
	b := []int{c.AddInput()}                             // 1 bit
	for _, w := range addBus(c, a, b) {
		c.MarkOutput(w)
	}
	for av := uint64(0); av < 8; av++ {
		for bv := uint64(0); bv < 2; bv++ {
			in := av | bv<<3
			got := evalUint(t, c, in, nil)
			if got != av+bv {
				t.Fatalf("addBus(%d, %d) = %d", av, bv, got)
			}
		}
	}
}
