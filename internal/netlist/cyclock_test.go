package netlist

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestLockCyclicTransparentUnderCorrectKey checks that the locked circuit
// computes the base function under the correct key for every adder width
// the attack path uses, and that the correct key is acyclic.
func TestLockCyclicTransparentUnderCorrectKey(t *testing.T) {
	for width := 2; width <= 4; width++ {
		base, err := NewAdder(width)
		if err != nil {
			t.Fatal(err)
		}
		locked, key, err := LockCyclic(base, 2, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(locked.Feedback) != 2 {
			t.Fatalf("width %d: %d feedback edges, want 2", width, len(locked.Feedback))
		}
		if len(locked.Keys) != 4 {
			t.Fatalf("width %d: %d key bits, want 4", width, len(locked.Keys))
		}
		if locked.CyclicUnder(key) {
			t.Fatalf("width %d: correct key closes a cycle", width)
		}
		n := len(base.Inputs)
		for v := uint64(0); v < 1<<uint(n); v++ {
			in := Uint64ToBits(v, n)
			want, err := base.Eval(in, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := locked.Eval(in, key)
			if err != nil {
				t.Fatalf("width %d input %#x: %v", width, v, err)
			}
			if BitsToUint64(got) != BitsToUint64(want) {
				t.Fatalf("width %d input %#x: locked %#x, base %#x",
					width, v, BitsToUint64(got), BitsToUint64(want))
			}
		}
	}
}

// TestLockCyclicWrongKeyClosesCycle checks the scheme's point: flipping any
// cycle key bit makes the conditioned graph cyclic, and the ternary
// evaluator reports the non-settling configurations as ErrUnstable instead
// of returning an arbitrary value or hanging.
func TestLockCyclicWrongKeyClosesCycle(t *testing.T) {
	base, err := NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	locked, key, err := LockCyclic(base, 3, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range key {
		wrong := append([]bool(nil), key...)
		wrong[i] = !wrong[i]
		if !locked.CyclicUnder(wrong) {
			t.Fatalf("flipping cycle bit %d leaves the graph acyclic", i)
		}
	}
	// At least one (input, wrong-key) pair must fail to settle: a latch has
	// several fixed points and an oscillator none, and both leave the
	// three-valued fixed point at X somewhere.
	sawUnstable := false
	n := len(locked.Inputs)
	for i := range key {
		wrong := append([]bool(nil), key...)
		wrong[i] = !wrong[i]
		for v := uint64(0); v < 1<<uint(n); v++ {
			_, err := locked.Eval(Uint64ToBits(v, n), wrong)
			if errors.Is(err, ErrUnstable) {
				sawUnstable = true
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sawUnstable {
		t.Fatal("no wrong-key configuration reported ErrUnstable")
	}
}

// TestLockCyclicDeterministic pins the construction to its seed.
func TestLockCyclicDeterministic(t *testing.T) {
	base, err := NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	l1, k1, err := LockCyclic(base, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	l2, k2, err := LockCyclic(base, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if BitsToUint64(k1) != BitsToUint64(k2) || len(l1.Gates) != len(l2.Gates) {
		t.Fatal("same seed produced different locked circuits")
	}
	l3, _, err := LockCyclic(base, 2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Feedback) != len(l3.Feedback) {
		t.Fatal("feedback edge count should not depend on seed")
	}
}

// TestLockCyclicErrors covers the constructor's argument validation.
func TestLockCyclicErrors(t *testing.T) {
	base, err := NewAdder(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LockCyclic(base, 0, 0, 1); err == nil {
		t.Fatal("want error for zero cycles")
	}
	if _, _, err := LockCyclic(base, 1, -1, 1); err == nil {
		t.Fatal("want error for negative decoys")
	}
	if _, _, err := LockCyclic(base, 1<<20, 0, 1); err == nil {
		t.Fatal("want error for more cuts than gates")
	}
	locked, _, err := LockCyclic(base, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LockCyclic(locked, 1, 0, 1); err == nil {
		t.Fatal("want error for re-locking a keyed circuit")
	}
}

// TestCycleConstraintsMatchReference checks on LockCyclic instances that the
// generated clauses accept exactly the acyclic key assignments.
func TestCycleConstraintsMatchReference(t *testing.T) {
	base, err := NewAdder(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		locked, key, err := LockCyclic(base, 2, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		clauses, err := locked.CycleConstraints()
		if err != nil {
			t.Fatal(err)
		}
		if len(clauses) == 0 {
			t.Fatalf("seed %d: no constraints for a cyclic circuit", seed)
		}
		nk := len(locked.Keys)
		for v := uint64(0); v < 1<<uint(nk); v++ {
			keys := Uint64ToBits(v, nk)
			sat := true
			for _, cl := range clauses {
				if !cl.Satisfied(keys) {
					sat = false
					break
				}
			}
			if got := locked.CyclicUnder(keys); sat == got {
				t.Fatalf("seed %d key %#x: constraints satisfied=%v but cyclic=%v",
					seed, v, sat, got)
			}
		}
		// The correct key in particular must pass.
		for _, cl := range clauses {
			if !cl.Satisfied(key) {
				t.Fatalf("seed %d: correct key violates %v", seed, cl)
			}
		}
	}
}

// TestCycleConstraintsAcyclic checks the degenerate cases: no feedback means
// no clauses.
func TestCycleConstraintsAcyclic(t *testing.T) {
	base, err := NewAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	clauses, err := base.CycleConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 0 {
		t.Fatalf("acyclic circuit produced %d clauses", len(clauses))
	}
}

// TestAddFeedbackValidation covers the builder-side contract of AddFeedback
// and the Validate relaxation.
func TestAddFeedbackValidation(t *testing.T) {
	build := func() (*Circuit, int, int) {
		c := New("fb")
		x := c.AddInput()
		k := c.AddKey()
		a := c.And(k, x)
		w := c.Or(x, a)
		c.MarkOutput(w)
		return c, a, w
	}
	// Legal back-edge: And's B pin reads the later Or.
	c, a, w := build()
	c.AddFeedback(a, 1, w, 0, true)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid feedback rejected: %v", err)
	}
	if !c.HasFeedback() {
		t.Fatal("HasFeedback false after AddFeedback")
	}
	// A forward reference is not feedback.
	c, a, _ = build()
	c.AddFeedback(a, 1, 0, 0, true)
	if err := c.Validate(); !errors.Is(err, ErrConstruction) {
		t.Fatalf("forward feedback not rejected: %v", err)
	}
	// Bad key index.
	c, a, w = build()
	c.AddFeedback(a, 1, w, 5, true)
	if err := c.Validate(); !errors.Is(err, ErrConstruction) {
		t.Fatalf("bad key index not rejected: %v", err)
	}
	// Duplicate pin.
	c, a, w = build()
	c.AddFeedback(a, 1, w, 0, true)
	c.AddFeedback(a, 1, w, 0, false)
	if err := c.Validate(); !errors.Is(err, ErrConstruction) {
		t.Fatalf("duplicate feedback not rejected: %v", err)
	}
	// Tampering with the Feedback slice after construction fails Validate.
	c, a, w = build()
	c.AddFeedback(a, 1, w, 0, true)
	c.Feedback[0].From = w - 1
	if err := c.Validate(); err == nil {
		t.Fatal("feedback/wiring disagreement not caught")
	}
}

// TestEvalCyclicLatchAndBreak pins the evaluator's semantics on the minimal
// latch: w = x OR (k AND w). Armed (k=1) the loop latches for x=0; broken
// (k=0) the circuit is the identity.
func TestEvalCyclicLatchAndBreak(t *testing.T) {
	c := New("latch")
	x := c.AddInput()
	k := c.AddKey()
	fb := c.And(k, x) // B rewired to the Or below
	w := c.Or(x, fb)
	c.MarkOutput(w)
	c.AddFeedback(fb, 1, w, 0, true)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x, k     bool
		want     bool
		unstable bool
	}{
		{x: false, k: false, want: false},
		{x: true, k: false, want: true},
		{x: true, k: true, want: true},      // controlling 1 kills the loop
		{x: false, k: true, unstable: true}, // w = w: latch
	} {
		got, err := c.Eval([]bool{tc.x}, []bool{tc.k})
		if tc.unstable {
			if !errors.Is(err, ErrUnstable) {
				t.Fatalf("x=%v k=%v: want ErrUnstable, got %v %v", tc.x, tc.k, got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("x=%v k=%v: %v", tc.x, tc.k, err)
		}
		if got[0] != tc.want {
			t.Fatalf("x=%v k=%v: got %v want %v", tc.x, tc.k, got[0], tc.want)
		}
	}
}

// TestCyclicVerilogEmission checks that a cyclic netlist exports: the
// feedback wire appears on a right-hand side before its declaration, which
// is exactly what the two-pass naming exists for.
func TestCyclicVerilogEmission(t *testing.T) {
	base, err := NewAdder(2)
	if err != nil {
		t.Fatal(err)
	}
	locked, _, err := LockCyclic(base, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := locked.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "module") || !strings.Contains(v, "endmodule") {
		t.Fatal("malformed Verilog output")
	}
	// Every feedback source wire must be referenced by its consuming AND.
	for _, fe := range locked.Feedback {
		if !strings.Contains(v, fmt.Sprintf("n%d;", fe.From)) {
			t.Fatalf("feedback source n%d missing from Verilog", fe.From)
		}
	}
}

// FuzzCycleConstraints builds random key-conditioned feedback graphs and
// checks the CycSAT constraint generator against the reference DFS: a key
// assignment satisfies every generated clause exactly when the conditioned
// graph is acyclic, and the all-edges-broken assignment (the analogue of the
// correct key) always satisfies them.
func FuzzCycleConstraints(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2))
	f.Add(int64(2), uint8(10), uint8(4))
	f.Add(int64(99), uint8(20), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nGates, nEdges uint8) {
		gates := int(nGates)%24 + 2
		edges := int(nEdges)%8 + 1
		rng := rand.New(rand.NewSource(seed))

		// A random base DAG of AND/OR/XOR/NOT gates over one input...
		c := New("fuzz")
		c.AddInput()
		keyIx := make([]int, edges)
		for i := range keyIx {
			c.AddKey()
			keyIx[i] = i
		}
		firstLogic := len(c.Gates)
		for len(c.Gates) < firstLogic+gates {
			a := rng.Intn(len(c.Gates))
			b := rng.Intn(len(c.Gates))
			switch rng.Intn(4) {
			case 0:
				c.And(a, b)
			case 1:
				c.Or(a, b)
			case 2:
				c.Xor(a, b)
			default:
				c.Not(a)
			}
		}
		c.MarkOutput(len(c.Gates) - 1)

		// ...plus random key-conditioned back-edges on binary gates. Each
		// edge gets its own key bit, so the assignment breaking every edge
		// exists (the "correct key" of the random instance).
		arms := make([]bool, edges)
		placed := 0
		for _, id := range rng.Perm(gates) {
			if placed == edges {
				break
			}
			g := firstLogic + id
			if c.Gates[g].Kind.arity() != 2 {
				continue
			}
			from := g + rng.Intn(len(c.Gates)-g)
			arms[placed] = rng.Intn(2) == 1
			c.AddFeedback(g, 1, from, keyIx[placed], arms[placed])
			placed++
		}
		if placed == 0 || c.Err() != nil {
			t.Skip("no placeable edges")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("generated circuit invalid: %v", err)
		}

		clauses, err := c.CycleConstraints()
		if err != nil {
			t.Skip("enumeration bound")
		}
		nk := len(c.Keys)
		for v := uint64(0); v < 1<<uint(nk); v++ {
			keys := Uint64ToBits(v, nk)
			sat := true
			for _, cl := range clauses {
				if !cl.Satisfied(keys) {
					sat = false
					break
				}
			}
			if cyc := c.CyclicUnder(keys); sat == cyc {
				t.Fatalf("seed %d key %#x: satisfied=%v cyclic=%v (clauses %v, feedback %+v)",
					seed, v, sat, cyc, clauses, c.Feedback)
			}
		}
		// All edges broken must be accepted.
		correct := make([]bool, nk)
		for i := 0; i < placed; i++ {
			correct[keyIx[i]] = !arms[i]
		}
		for _, cl := range clauses {
			if !cl.Satisfied(correct) {
				t.Fatalf("seed %d: all-broken key violates %v", seed, cl)
			}
		}
	})
}
