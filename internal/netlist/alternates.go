package netlist

import "fmt"

// Alternate FU micro-architectures. The SAT attack and the locking
// constructions operate on function, not structure: locking an FU built as a
// carry-lookahead adder or a shift-add multiplier must behave identically to
// the ripple/array versions. The test suite uses these to check that
// structural choice affects only gate counts, never attack semantics.

// CLABus builds a carry-lookahead adder over equal-width buses (single-level
// lookahead over generate/propagate, modular sum).
func CLABus(c *Circuit, a, b []int) []int {
	checkBuses(a, b)
	width := len(a)
	g := make([]int, width) // generate
	p := make([]int, width) // propagate
	for i := 0; i < width; i++ {
		g[i] = c.And(a[i], b[i])
		p[i] = c.Xor(a[i], b[i])
	}
	// carry[i] = g[i-1] | p[i-1]&g[i-2] | ... | p[i-1]..p[0]&c0 (c0 = 0)
	out := make([]int, width)
	carry := -1 // carry into bit i; -1 = constant 0
	for i := 0; i < width; i++ {
		if carry < 0 {
			out[i] = p[i]
		} else {
			out[i] = c.Xor(p[i], carry)
		}
		// Next carry: g[i] | (p[i] & carry).
		if i+1 < width {
			if carry < 0 {
				carry = g[i]
			} else {
				carry = c.Or(g[i], c.And(p[i], carry))
			}
		}
	}
	return out
}

// ShiftAddMulBus builds a multiplier as a sequence of conditional shifted
// additions (the unrolled shift-add algorithm), returning the low width
// product bits.
func ShiftAddMulBus(c *Circuit, a, b []int) []int {
	checkBuses(a, b)
	width := len(a)
	zero := c.AddConst(false)
	acc := make([]int, width)
	for i := range acc {
		acc[i] = zero
	}
	for j := 0; j < width; j++ {
		// Shifted, b[j]-gated copy of a.
		addend := make([]int, width)
		for i := 0; i < width; i++ {
			if i < j {
				addend[i] = zero
			} else {
				addend[i] = c.And(a[i-j], b[j])
			}
		}
		acc = AddBus(c, acc, addend)
	}
	return acc
}

// NewAdderCLA builds a standalone carry-lookahead adder FU.
func NewAdderCLA(width int) (*Circuit, error) {
	cc, err := newBinaryFU("addcla", width, 32, CLABus)
	if err != nil {
		return nil, err
	}
	return cc, nil
}

// NewMultiplierShiftAdd builds a standalone shift-add multiplier FU.
func NewMultiplierShiftAdd(width int) (*Circuit, error) {
	cc, err := newBinaryFU("mulsa", width, 16, ShiftAddMulBus)
	if err != nil {
		return nil, err
	}
	return cc, nil
}

// ArchitectureVariants returns the available micro-architectures of an FU
// kind ("adder" or "multiplier") at the given width.
func ArchitectureVariants(kind string, width int) ([]*Circuit, error) {
	switch kind {
	case "adder":
		rc, err := NewAdder(width)
		if err != nil {
			return nil, err
		}
		cla, err := NewAdderCLA(width)
		if err != nil {
			return nil, err
		}
		return []*Circuit{rc, cla}, nil
	case "multiplier":
		arr, err := NewMultiplier(width)
		if err != nil {
			return nil, err
		}
		sa, err := NewMultiplierShiftAdd(width)
		if err != nil {
			return nil, err
		}
		return []*Circuit{arr, sa}, nil
	}
	return nil, fmt.Errorf("netlist: unknown FU kind %q", kind)
}
