package netlist

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func evalUint(t *testing.T, c *Circuit, in uint64, keys []bool) uint64 {
	t.Helper()
	outs, err := c.Eval(Uint64ToBits(in, len(c.Inputs)), keys)
	if err != nil {
		t.Fatal(err)
	}
	return BitsToUint64(outs)
}

func TestAdderCorrectQuick(t *testing.T) {
	for _, width := range []int{1, 4, 8} {
		add, err := NewAdder(width)
		if err != nil {
			t.Fatal(err)
		}
		if err := add.Validate(); err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(width) - 1
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			in := a | b<<uint(width)
			return evalUint(t, add, in, nil) == (a+b)&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestMultiplierCorrectQuick(t *testing.T) {
	for _, width := range []int{2, 4, 8} {
		mul, err := NewMultiplier(width)
		if err != nil {
			t.Fatal(err)
		}
		if err := mul.Validate(); err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(width) - 1
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			in := a | b<<uint(width)
			return evalUint(t, mul, in, nil) == (a*b)&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestBuilderRanges(t *testing.T) {
	if _, err := NewAdder(0); err == nil {
		t.Error("width 0 must error")
	}
	if _, err := NewAdder(64); err == nil {
		t.Error("width 64 must error")
	}
	if _, err := NewMultiplier(0); err == nil {
		t.Error("width 0 must error")
	}
	if _, err := NewMultiplier(20); err == nil {
		t.Error("width 20 must error")
	}
}

func TestBitsRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		return BitsToUint64(Uint64ToBits(v&0xFFFF, 16)) == v&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalArityErrors(t *testing.T) {
	add, _ := NewAdder(4)
	if _, err := add.Eval(make([]bool, 3), nil); err == nil {
		t.Error("wrong input arity must error")
	}
	if _, err := add.Eval(make([]bool, 8), make([]bool, 1)); err == nil {
		t.Error("wrong key arity must error")
	}
}

func TestMuxAndGatePrimitives(t *testing.T) {
	c := New("prims")
	a := c.AddInput()
	b := c.AddInput()
	s := c.AddInput()
	c.MarkOutput(c.Mux(s, a, b))
	c.MarkOutput(c.Nand(a, b))
	c.MarkOutput(c.Nor(a, b))
	c.MarkOutput(c.Xnor(a, b))
	c.MarkOutput(c.Buf(a))
	c.MarkOutput(c.AddConst(true))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b, s bool
		want    [6]bool
	}{
		{false, true, false, [6]bool{false, true, false, false, false, true}},
		{false, true, true, [6]bool{true, true, false, false, false, true}},
		{true, true, false, [6]bool{true, false, false, true, true, true}},
		{false, false, true, [6]bool{false, true, true, true, false, true}},
	} {
		outs, err := c.Eval([]bool{tc.a, tc.b, tc.s}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range tc.want {
			if outs[i] != want {
				t.Errorf("a=%v b=%v s=%v: out[%d] = %v, want %v", tc.a, tc.b, tc.s, i, outs[i], want)
			}
		}
	}
}

func TestLockXORTransparentUnderCorrectKey(t *testing.T) {
	base, _ := NewAdder(4)
	locked, key, err := LockXOR(base, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := locked.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(locked.Keys) != 6 || len(key) != 6 {
		t.Fatalf("keys = %d/%d, want 6", len(locked.Keys), len(key))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		in := rng.Uint64() & 0xFF
		if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
			t.Fatalf("correct key not transparent at input %#x", in)
		}
	}
	// A wrong key must corrupt something.
	wrong := append([]bool(nil), key...)
	wrong[0] = !wrong[0]
	diff := false
	for i := 0; i < 256; i++ {
		if evalUint(t, locked, uint64(i), wrong) != evalUint(t, base, uint64(i), nil) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("flipped key bit caused no corruption anywhere")
	}
}

func TestLockXORErrors(t *testing.T) {
	base, _ := NewAdder(2)
	if _, _, err := LockXOR(base, 0, 1); err == nil {
		t.Error("zero keys must error")
	}
	if _, _, err := LockXOR(base, 10000, 1); err == nil {
		t.Error("more keys than gates must error")
	}
	locked, _, _ := LockXOR(base, 2, 1)
	if _, _, err := LockXOR(locked, 2, 1); err == nil {
		t.Error("double locking must error")
	}
}

func TestLockSFLLHD0Semantics(t *testing.T) {
	base, _ := NewAdder(3) // 6-bit input space: exhaustively checkable
	secret := uint64(0b101011)
	locked, key, err := LockSFLLHD0(base, []uint64{secret})
	if err != nil {
		t.Fatal(err)
	}
	if err := locked.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(key) != 6 {
		t.Fatalf("key length = %d, want 6", len(key))
	}
	if BitsToUint64(key) != secret {
		t.Fatalf("correct key = %#x, want the protected pattern %#x", BitsToUint64(key), secret)
	}
	// Correct key: transparent on the whole input space.
	for in := uint64(0); in < 64; in++ {
		if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
			t.Fatalf("correct key corrupts input %#x", in)
		}
	}
	// Wrong key w: corrupted exactly at {secret, w} on output bit 0.
	for w := uint64(0); w < 64; w++ {
		if w == secret {
			continue
		}
		wk := Uint64ToBits(w, 6)
		for in := uint64(0); in < 64; in++ {
			got := evalUint(t, locked, in, wk)
			want := evalUint(t, base, in, nil)
			corrupted := in == secret || in == w
			if corrupted && got == want {
				t.Fatalf("wrong key %#x fails to corrupt input %#x", w, in)
			}
			if !corrupted && got != want {
				t.Fatalf("wrong key %#x corrupts unprotected input %#x", w, in)
			}
			if corrupted && got^want != 1 {
				t.Fatalf("corruption mask = %#x, want bit 0 only", got^want)
			}
		}
	}
}

func TestLockSFLLHD0MultipleMinterms(t *testing.T) {
	base, _ := NewAdder(2)
	protected := []uint64{0b0011, 0b1100}
	locked, key, err := LockSFLLHD0(base, protected)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 8 { // two 4-bit blocks
		t.Fatalf("key length = %d, want 8", len(key))
	}
	for in := uint64(0); in < 16; in++ {
		if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
			t.Fatalf("correct key corrupts input %#x", in)
		}
	}
	// A wrong key in the first block corrupts protected[0] (static locked
	// input) regardless of the chosen wrong value.
	for w := uint64(0); w < 16; w++ {
		if w == protected[0] {
			continue
		}
		wk := append(Uint64ToBits(w, 4), Uint64ToBits(protected[1], 4)...)
		got := evalUint(t, locked, protected[0], wk)
		want := evalUint(t, base, protected[0], nil)
		if got == want {
			t.Fatalf("wrong key %#x does not corrupt the protected minterm", w)
		}
	}
}

func TestLockSFLLHD0Errors(t *testing.T) {
	base, _ := NewAdder(2)
	if _, _, err := LockSFLLHD0(base, nil); err == nil {
		t.Error("no patterns must error")
	}
	if _, _, err := LockSFLLHD0(base, []uint64{1 << 10}); err == nil {
		t.Error("pattern outside input space must error")
	}
	if _, _, err := LockSFLLHD0(base, []uint64{3, 3}); err == nil {
		t.Error("duplicate pattern must error")
	}
	locked, _, _ := LockSFLLHD0(base, []uint64{1})
	if _, _, err := LockSFLLHD0(locked, []uint64{2}); err == nil {
		t.Error("double locking must error")
	}
}

func TestLockRoutingIdentityUnderZeroKey(t *testing.T) {
	base, _ := NewAdder(4) // 8 inputs: power of two
	locked, key, err := LockRouting(base, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := locked.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(key) == 0 {
		t.Fatal("routing lock added no key bits")
	}
	for _, k := range key {
		if k {
			t.Fatal("correct routing key must be all-zero (identity)")
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		in := rng.Uint64() & 0xFF
		if evalUint(t, locked, in, key) != evalUint(t, base, in, nil) {
			t.Fatalf("identity key not transparent at %#x", in)
		}
	}
	// Some single-bit wrong key must corrupt at least one input.
	wrong := append([]bool(nil), key...)
	wrong[0] = true
	diff := false
	for in := uint64(0); in < 256; in++ {
		if evalUint(t, locked, in, wrong) != evalUint(t, base, in, nil) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("swapped switch caused no corruption")
	}
}

func TestLockRoutingErrors(t *testing.T) {
	base, _ := NewAdder(3) // 6 inputs: not a power of two
	if _, _, err := LockRouting(base, 1); err == nil {
		t.Error("non-power-of-two input count must error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	add, _ := NewAdder(2)
	add.Outputs[0] = 999
	if err := add.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want out of range", err)
	}
	add2, _ := NewAdder(2)
	add2.Inputs = add2.Inputs[:1]
	if err := add2.Validate(); err == nil {
		t.Error("broken input bookkeeping must error")
	}
}

func TestLogicGatesCount(t *testing.T) {
	add, _ := NewAdder(8)
	if add.LogicGates() >= add.NumGates() {
		t.Error("logic gates must exclude sources")
	}
	if add.NumGates()-add.LogicGates() != 16 {
		t.Errorf("source count = %d, want 16", add.NumGates()-add.LogicGates())
	}
}

// TestBuilderRecordsConstructionError: a bad fan-in reference must not
// crash — it poisons the builder with a sticky typed error that Err,
// Validate, and Eval all surface.
func TestBuilderRecordsConstructionError(t *testing.T) {
	c := New("bad")
	a := c.AddInput()
	if id := c.And(a, 99); id != -1 {
		t.Errorf("And with bad fan-in = %d, want -1", id)
	}
	if !errors.Is(c.Err(), ErrConstruction) {
		t.Fatalf("Err() = %v, want ErrConstruction", c.Err())
	}
	// Poisoned builder: later calls are no-ops and nothing was appended.
	if id := c.Not(a); id != -1 {
		t.Errorf("post-error Not = %d, want -1", id)
	}
	if c.NumGates() != 1 {
		t.Errorf("poisoned circuit grew to %d gates, want 1", c.NumGates())
	}
	if !errors.Is(c.Validate(), ErrConstruction) {
		t.Errorf("Validate = %v, want ErrConstruction", c.Validate())
	}
	if _, err := c.Eval(nil, nil); !errors.Is(err, ErrConstruction) {
		t.Errorf("Eval err = %v, want ErrConstruction", err)
	}
	if !errors.Is(c.Clone().Err(), ErrConstruction) {
		t.Error("Clone dropped the construction error")
	}
}

func TestMarkOutputBadRefRecordsError(t *testing.T) {
	c := New("bad")
	c.AddInput()
	c.MarkOutput(7)
	if len(c.Outputs) != 0 {
		t.Errorf("bad MarkOutput appended an output: %v", c.Outputs)
	}
	if !errors.Is(c.Err(), ErrConstruction) {
		t.Fatalf("Err() = %v, want ErrConstruction", c.Err())
	}
}
