package netlist

import "fmt"

// Bus-level arithmetic builders: construct adders, subtractors,
// absolute-difference units and multipliers over existing wire buses inside
// a circuit. The datapath elaborator (internal/elaborate) uses these to turn
// a bound DFG into one flat gate-level netlist; NewAdder/NewMultiplier wrap
// them for standalone FUs.

// checkBuses panics on mismatched operand widths — a programming error in
// the caller.
func checkBuses(a, b []int) {
	if len(a) != len(b) || len(a) == 0 {
		panic(fmt.Sprintf("netlist: operand buses %d/%d bits", len(a), len(b)))
	}
}

// AddBus builds a ripple-carry adder over equal-width buses, returning the
// modular sum bus (carry-out dropped).
func AddBus(c *Circuit, a, b []int) []int {
	checkBuses(a, b)
	out := make([]int, len(a))
	carry := -1
	for i := range a {
		axb := c.Xor(a[i], b[i])
		if carry < 0 {
			out[i] = axb
			carry = c.And(a[i], b[i])
		} else {
			out[i] = c.Xor(axb, carry)
			carry = c.Or(c.And(axb, carry), c.And(a[i], b[i]))
		}
	}
	return out
}

// subBus builds a - b as a + ~b + 1, returning the difference bus and the
// final carry (1 when a >= b, i.e. no borrow).
func subBus(c *Circuit, a, b []int) (diff []int, noBorrow int) {
	checkBuses(a, b)
	diff = make([]int, len(a))
	carry := c.AddConst(true) // +1 of the two's complement
	for i := range a {
		nb := c.Not(b[i])
		axb := c.Xor(a[i], nb)
		diff[i] = c.Xor(axb, carry)
		carry = c.Or(c.And(axb, carry), c.And(a[i], nb))
	}
	return diff, carry
}

// SubBus builds the modular difference a - b.
func SubBus(c *Circuit, a, b []int) []int {
	diff, _ := subBus(c, a, b)
	return diff
}

// AbsDiffBus builds |a - b|: both subtraction orders, selected by the borrow
// of a - b.
func AbsDiffBus(c *Circuit, a, b []int) []int {
	ab, geq := subBus(c, a, b) // geq = (a >= b)
	ba, _ := subBus(c, b, a)
	out := make([]int, len(a))
	for i := range a {
		out[i] = c.Mux(geq, ba[i], ab[i])
	}
	return out
}

// MulBus builds an array multiplier over equal-width buses, returning the
// low len(a) product bits (modular semantics).
func MulBus(c *Circuit, a, b []int) []int {
	checkBuses(a, b)
	width := len(a)
	acc := make([]int, width)
	for i := range acc {
		acc[i] = -1 // semantically zero
	}
	for j := 0; j < width; j++ {
		carry := -1
		for i := 0; i+j < width; i++ {
			pp := c.And(a[i], b[j])
			pos := i + j
			sum, cout := pp, -1
			if acc[pos] >= 0 {
				x := c.Xor(sum, acc[pos])
				cAnd := c.And(sum, acc[pos])
				sum, cout = x, cAnd
			}
			if carry >= 0 {
				x := c.Xor(sum, carry)
				cAnd := c.And(sum, carry)
				if cout >= 0 {
					cout = c.Or(cout, cAnd)
				} else {
					cout = cAnd
				}
				sum = x
			}
			acc[pos] = sum
			carry = cout
		}
	}
	zero := -1
	for i := 0; i < width; i++ {
		if acc[i] < 0 {
			if zero < 0 {
				zero = c.AddConst(false)
			}
			acc[i] = zero
		}
	}
	return acc
}

// ConstBus returns wires pinned to the low width bits of v.
func ConstBus(c *Circuit, v uint64, width int) []int {
	out := make([]int, width)
	for i := range out {
		out[i] = c.AddConst(v>>uint(i)&1 == 1)
	}
	return out
}
