package netlist

import (
	"fmt"
	"math/rand"
)

// LockAntiSAT inserts an Anti-SAT block (Xie & Srivastava; the basis of the
// Strong Anti-SAT construction [6] the paper cites as a critical-minterm
// scheme). Two complementary key-programmable AND trees gate an output flip:
//
//	flip = AND_i(x_i XOR k1_i)  AND  NOT( AND_i(x_i XOR k2_i) )
//
// For any key with K1 = K2 the two trees are complementary and flip is
// identically zero (all such keys are correct); for K1 != K2 exactly the
// inputs X = ~K1 with X != ~K2 flip — one corrupted minterm per wrong key,
// which is why each SAT-attack DIP eliminates O(1) keys and the expected
// iteration count scales with 2^n.
//
// The returned correct key sets K1 = K2 = r for a seed-chosen r.
func LockAntiSAT(base *Circuit, seed int64) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if len(base.Keys) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
	}
	n := len(base.Inputs)
	if n < 2 {
		return nil, nil, fmt.Errorf("netlist: anti-sat needs at least 2 inputs, got %d", n)
	}
	lc := base.Clone()
	lc.Name = base.Name + "-antisat"

	andTree := func() int {
		acc := -1
		for _, in := range lc.Inputs {
			k := lc.AddKey()
			x := lc.Xor(in, k)
			if acc < 0 {
				acc = x
			} else {
				acc = lc.And(acc, x)
			}
		}
		return acc
	}
	g1 := andTree()         // AND(X ^ K1)
	g2 := lc.Not(andTree()) // NAND(X ^ K2)
	flip := lc.And(g1, g2)  // nonzero only under wrong keys
	lc.Outputs = append([]int(nil), lc.Outputs...)
	lc.Outputs[0] = lc.Xor(base.Outputs[0], flip)

	rng := rand.New(rand.NewSource(seed))
	r := make([]bool, n)
	for i := range r {
		r[i] = rng.Intn(2) == 1
	}
	key := append(append([]bool(nil), r...), r...)
	return lc, key, nil
}
