package netlist

import (
	"testing"
	"testing/quick"
)

// busTestCircuit builds a circuit computing all four bus operations over two
// width-bit inputs, outputs concatenated.
func busTestCircuit(width int) *Circuit {
	c := New("bus")
	a := make([]int, width)
	b := make([]int, width)
	for i := range a {
		a[i] = c.AddInput()
	}
	for i := range b {
		b[i] = c.AddInput()
	}
	for _, w := range AddBus(c, a, b) {
		c.MarkOutput(w)
	}
	for _, w := range SubBus(c, a, b) {
		c.MarkOutput(w)
	}
	for _, w := range AbsDiffBus(c, a, b) {
		c.MarkOutput(w)
	}
	for _, w := range MulBus(c, a, b) {
		c.MarkOutput(w)
	}
	return c
}

// TestBusOpsQuick cross-checks all four bus builders against integer
// arithmetic across widths.
func TestBusOpsQuick(t *testing.T) {
	for _, width := range []int{1, 3, 8} {
		c := busTestCircuit(width)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(width) - 1
		f := func(ra, rb uint16) bool {
			a := uint64(ra) & mask
			b := uint64(rb) & mask
			in := append(Uint64ToBits(a, width), Uint64ToBits(b, width)...)
			outs, err := c.Eval(in, nil)
			if err != nil {
				return false
			}
			get := func(i int) uint64 {
				return BitsToUint64(outs[i*width : (i+1)*width])
			}
			absd := a - b
			if b > a {
				absd = b - a
			}
			return get(0) == (a+b)&mask &&
				get(1) == (a-b)&mask &&
				get(2) == absd&mask &&
				get(3) == (a*b)&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestConstBus(t *testing.T) {
	c := New("k")
	// A dummy input keeps the circuit non-degenerate.
	in := c.AddInput()
	bus := ConstBus(c, 0b1011, 4)
	for _, w := range bus {
		c.MarkOutput(w)
	}
	c.MarkOutput(c.Buf(in))
	outs, err := c.Eval([]bool{false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if BitsToUint64(outs[:4]) != 0b1011 {
		t.Fatalf("ConstBus = %#b", BitsToUint64(outs[:4]))
	}
}

func TestBusMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched buses must panic")
		}
	}()
	c := New("bad")
	a := []int{c.AddInput()}
	b := []int{c.AddInput(), c.AddInput()}
	AddBus(c, a, b)
}
