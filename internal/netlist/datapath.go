package netlist

import "fmt"

// This file synthesises standalone FU circuits from the bus builders in
// bus.go. Operand buses are LSB-first; arithmetic is modulo 2^width,
// matching the dfg package's 8-bit FU semantics (the final carry is
// dropped).

// newBinaryFU creates a circuit with two width-bit operand buses and applies
// build to them.
func newBinaryFU(name string, width, maxWidth int, build func(c *Circuit, a, b []int) []int) (*Circuit, error) {
	if width < 1 || width > maxWidth {
		return nil, fmt.Errorf("netlist: %s width %d out of range [1, %d]", name, width, maxWidth)
	}
	c := New(fmt.Sprintf("%s%d", name, width))
	a := make([]int, width)
	b := make([]int, width)
	for i := range a {
		a[i] = c.AddInput()
	}
	for i := range b {
		b[i] = c.AddInput()
	}
	for _, w := range build(c, a, b) {
		c.MarkOutput(w)
	}
	return c, nil
}

// NewAdder builds a ripple-carry adder over two width-bit operands,
// producing a width-bit sum. Inputs are a[0..w-1] then b[0..w-1].
func NewAdder(width int) (*Circuit, error) {
	return newBinaryFU("add", width, 32, AddBus)
}

// NewSubtractor builds a two's-complement subtractor (a - b mod 2^width).
func NewSubtractor(width int) (*Circuit, error) {
	return newBinaryFU("sub", width, 32, SubBus)
}

// NewAbsDiff builds an absolute-difference unit (|a - b|).
func NewAbsDiff(width int) (*Circuit, error) {
	return newBinaryFU("absdiff", width, 32, AbsDiffBus)
}

// NewMultiplier builds an array multiplier over two width-bit operands,
// producing the low width bits of the product (modular semantics).
func NewMultiplier(width int) (*Circuit, error) {
	return newBinaryFU("mul", width, 16, MulBus)
}

// equalsKey builds a comparator asserting bus == the circuit's next
// len(bus) key inputs, returning the match signal. Used by SFLL restore
// units.
func equalsKey(c *Circuit, bus []int) int {
	match := -1
	for _, bit := range bus {
		k := c.AddKey()
		eq := c.Xnor(bit, k)
		if match < 0 {
			match = eq
		} else {
			match = c.And(match, eq)
		}
	}
	return match
}

// equalsConst builds a comparator asserting bus == the constant pattern.
func equalsConst(c *Circuit, bus []int, pattern []bool) int {
	match := -1
	for i, bit := range bus {
		var eq int
		if pattern[i] {
			eq = c.Buf(bit)
		} else {
			eq = c.Not(bit)
		}
		if match < 0 {
			match = eq
		} else {
			match = c.And(match, eq)
		}
	}
	return match
}
