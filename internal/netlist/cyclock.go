package netlist

import (
	"fmt"
	"math/rand"
)

// This file implements SRCLock-style cyclic logic locking (arXiv:1804.09162)
// and the CycSAT-side constraint generator that defeats it. LockCyclic cuts
// wires of the base netlist and re-routes them through key-controlled MUXes
// whose alternate input comes from the cut point's own transitive fanout: the
// correct key selects the original (acyclic) wire, a wrong key closes a real
// combinational cycle that latches or oscillates. Plain SAT attacks assume an
// acyclic miter and either diverge or extract garbage on such circuits;
// CycleConstraints derives the key-only "no structural cycle" clauses
// (Zhou et al., CycSAT) that restore the attack, which internal/satattack
// conjoins into the miter when Options.CycleBreak is set.

// KeyLit is one literal of a cycle-breaking clause: key bus bit Key must
// equal Val for the literal to hold.
type KeyLit struct {
	Key int
	Val bool
}

// CycleClause is a disjunction of KeyLits. A clause is generated per
// elementary feedback cycle and holds exactly when at least one edge of that
// cycle is broken (its key bit set opposite to the edge's Arm value).
type CycleClause []KeyLit

// maxCycleClauses bounds the elementary-cycle enumeration. The number of
// elementary cycles can be exponential in pathological feedback graphs;
// LockCyclic's constructions stay tiny, and anything past this bound is a
// sign the generator is being pointed at the wrong kind of graph.
const maxCycleClauses = 4096

// LockCyclic inserts cycles key-programmed feedback MUXes and decoys
// functional-corruption MUXes into base, returning the locked circuit and
// the correct key (cycle bits first, in insertion order, then decoy bits).
//
// Each feedback MUX cuts the first fan-in of a randomly chosen logic gate u
// and ORs two AND arms: one passes the original wire, the other injects the
// value of a wire sampled from u's transitive fanout — a back-edge. Under
// the correct key bit the feedback arm is forced to constant 0, the edge is
// combinationally dead and the circuit computes exactly the base function;
// under the wrong bit the original wire is cut off and a real combinational
// cycle closes through the datapath. Decoy MUXes select between the original
// wire and an unrelated earlier wire — acyclic either way, so they corrupt
// the function without being resolvable by cycle analysis alone; the SAT
// attack's DIP loop has to do real work even with CycSAT constraints.
func LockCyclic(base *Circuit, cycles, decoys int, seed int64) (*Circuit, []bool, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if len(base.Keys) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
	}
	if len(base.Feedback) != 0 {
		return nil, nil, fmt.Errorf("netlist: base circuit already has feedback edges")
	}
	if cycles < 1 {
		return nil, nil, fmt.Errorf("netlist: cyclic locking needs at least one feedback edge, got %d", cycles)
	}
	if decoys < 0 {
		return nil, nil, fmt.Errorf("netlist: negative decoy count %d", decoys)
	}
	var logicGates []int
	for id, g := range base.Gates {
		if g.Kind.arity() > 0 {
			logicGates = append(logicGates, id)
		}
	}
	if cycles+decoys > len(logicGates) {
		return nil, nil, fmt.Errorf("netlist: cannot cut %d wires in %d logic gates",
			cycles+decoys, len(logicGates))
	}

	// Forward adjacency of the base DAG, for sampling feedback sources from
	// a cut point's transitive fanout.
	fanout := make([][]int, len(base.Gates))
	for id, g := range base.Gates {
		if g.Kind.arity() >= 1 {
			fanout[g.A] = append(fanout[g.A], id)
		}
		if g.Kind.arity() == 2 {
			fanout[g.B] = append(fanout[g.B], id)
		}
	}
	downstream := func(u int) []int {
		seen := make(map[int]bool, 16)
		stack := []int{u}
		var out []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range fanout[v] {
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
					stack = append(stack, w)
				}
			}
		}
		return out
	}

	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(logicGates))
	type cyclePlan struct {
		from int // base gate id supplying the feedback value
		arm  bool
	}
	cycleCuts := map[int]cyclePlan{}
	decoyCuts := map[int]bool{} // cut gate -> correct key bit value
	for _, i := range perm[:cycles] {
		u := logicGates[i]
		// The feedback source is any wire the cut point reconverges into —
		// including u itself, which is always downstream of its own fan-in
		// MUX and guarantees a cycle exists to close.
		cands := append(downstream(u), u)
		cycleCuts[u] = cyclePlan{from: cands[rng.Intn(len(cands))], arm: rng.Intn(2) == 1}
	}
	for _, i := range perm[cycles : cycles+decoys] {
		decoyCuts[logicGates[i]] = rng.Intn(2) == 1
	}

	lc := New(base.Name + "-cyclock")
	remap := make([]int, len(base.Gates))
	var key []bool
	type pendingEdge struct {
		fbAnd int // AND gate in lc whose B pin becomes the back-edge
		from  int // base gate id of the feedback source
		keyIx int
		arm   bool
	}
	var pending []pendingEdge
	for id, g := range base.Gates {
		ng := g
		if g.Kind.arity() >= 1 {
			ng.A = remap[g.A]
		}
		if g.Kind.arity() == 2 {
			ng.B = remap[g.B]
		}
		switch g.Kind {
		case GInput:
			remap[id] = lc.AddInput()
			continue
		case GKey:
			return nil, nil, fmt.Errorf("netlist: base circuit already has key inputs")
		}
		if plan, ok := cycleCuts[id]; ok {
			orig := ng.A
			k := lc.AddKey()
			keyIx := len(lc.Keys) - 1
			armSel, passSel := k, lc.Not(k)
			if !plan.arm {
				armSel, passSel = passSel, armSel
			}
			// The feedback arm's B pin temporarily reads the original wire
			// (any valid earlier gate works); it is rewired to the remapped
			// feedback source once that gate exists.
			fbAnd := lc.And(armSel, orig)
			ng.A = lc.Or(fbAnd, lc.And(passSel, orig))
			pending = append(pending, pendingEdge{fbAnd: fbAnd, from: plan.from, keyIx: keyIx, arm: plan.arm})
			key = append(key, !plan.arm)
		} else if good, ok := decoyCuts[id]; ok {
			orig := ng.A
			// Any already-placed wire that is not the original serves as the
			// decoy's corrupting alternative.
			alt := remap[rng.Intn(id)]
			k := lc.AddKey()
			goodSel, badSel := k, lc.Not(k)
			if !good {
				goodSel, badSel = badSel, goodSel
			}
			ng.A = lc.Or(lc.And(goodSel, orig), lc.And(badSel, alt))
			key = append(key, good)
		}
		remap[id] = lc.add(ng)
	}
	for _, p := range pending {
		lc.AddFeedback(p.fbAnd, 1, remap[p.from], p.keyIx, p.arm)
	}
	for _, o := range base.Outputs {
		lc.MarkOutput(remap[o])
	}
	if err := lc.Validate(); err != nil {
		return nil, nil, err
	}
	return lc, key, nil
}

// CycleConstraints derives the CycSAT key-only "no structural cycle"
// constraints of a cyclic circuit: one CycleClause per elementary cycle of
// the feedback-edge condensation, requiring at least one edge of the cycle
// to be broken. A key assignment satisfies every returned clause if and only
// if the key-conditioned circuit graph is acyclic (see CyclicUnder, the
// reference the fuzz target checks against). For the MUX family LockCyclic
// builds, a structurally live cycle is also sensitizable — the armed AND arm
// passes the feedback value combinationally — so the structural constraints
// coincide with CycSAT's "no sensitizable cycle" refinement.
//
// An acyclic circuit yields no clauses. The enumeration is capped at
// maxCycleClauses elementary cycles and errors beyond it.
func (c *Circuit) CycleConstraints() ([]CycleClause, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.Feedback)
	if n == 0 {
		return nil, nil
	}
	// Condensation: node i is feedback edge i; edge i -> j iff the base
	// (feedback-free) DAG has a path from edge i's consuming gate to edge
	// j's source gate. Every structural cycle of the conditioned circuit is
	// a cyclic alternation of feedback edges and base paths, so cycles of
	// the condensation are exactly the minimal cyclic feedback subsets.
	fanout := c.baseFanout()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		reach := make([]bool, len(c.Gates))
		stack := []int{c.Feedback[i].Gate}
		reach[c.Feedback[i].Gate] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range fanout[v] {
				if !reach[w] {
					reach[w] = true
					stack = append(stack, w)
				}
			}
		}
		for j := 0; j < n; j++ {
			adj[i][j] = reach[c.Feedback[j].From]
		}
	}

	// Enumerate elementary cycles: a DFS rooted at each node s restricted to
	// nodes >= s finds each elementary cycle exactly once, at its minimal
	// node.
	var clauses []CycleClause
	onPath := make([]bool, n)
	path := make([]int, 0, n)
	var dfs func(s, v int) error
	dfs = func(s, v int) error {
		for w := 0; w < n; w++ {
			if !adj[v][w] {
				continue
			}
			if w == s {
				if cl := c.cycleClause(path); cl != nil {
					clauses = append(clauses, cl)
					if len(clauses) > maxCycleClauses {
						return fmt.Errorf("netlist %s: more than %d elementary feedback cycles",
							c.Name, maxCycleClauses)
					}
				}
			} else if w > s && !onPath[w] {
				onPath[w] = true
				path = append(path, w)
				if err := dfs(s, w); err != nil {
					return err
				}
				path = path[:len(path)-1]
				onPath[w] = false
			}
		}
		return nil
	}
	for s := 0; s < n; s++ {
		onPath[s] = true
		path = append(path[:0], s)
		if err := dfs(s, s); err != nil {
			return nil, err
		}
		onPath[s] = false
	}
	return clauses, nil
}

// cycleClause turns a cycle (list of feedback-edge indices) into the
// disjunction "some edge of this cycle is broken". Literals over the same
// key bit are deduplicated; a clause demanding both polarities of one bit is
// a tautology and is dropped (nil).
func (c *Circuit) cycleClause(edges []int) CycleClause {
	cl := make(CycleClause, 0, len(edges))
	for _, e := range edges {
		fe := c.Feedback[e]
		lit := KeyLit{Key: fe.Key, Val: !fe.Arm}
		dup := false
		for _, have := range cl {
			if have.Key == lit.Key {
				if have.Val != lit.Val {
					return nil // tautology: the bit breaks one edge either way
				}
				dup = true
				break
			}
		}
		if !dup {
			cl = append(cl, lit)
		}
	}
	return cl
}

// Satisfied reports whether the key assignment satisfies the clause.
func (cl CycleClause) Satisfied(keys []bool) bool {
	for _, lit := range cl {
		if lit.Key >= 0 && lit.Key < len(keys) && keys[lit.Key] == lit.Val {
			return true
		}
	}
	return false
}

// CyclicUnder reports whether the circuit graph conditioned on the key
// assignment — base edges plus every feedback edge whose key bit equals its
// Arm value — contains a cycle. It is the reference oracle the constraint
// generator is validated against (FuzzCycleConstraints) and a direct way
// for tests to confirm that a wrong key closes a combinational loop.
func (c *Circuit) CyclicUnder(keys []bool) bool {
	adj := c.baseFanout()
	for _, fe := range c.Feedback {
		if fe.Key < len(keys) && keys[fe.Key] == fe.Arm {
			adj[fe.From] = append(adj[fe.From], fe.Gate)
		}
	}
	// Iterative three-colour DFS: a back edge to an in-progress node is a
	// cycle.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]uint8, len(c.Gates))
	type frame struct{ v, i int }
	for root := range c.Gates {
		if colour[root] != white {
			continue
		}
		stack := []frame{{v: root}}
		colour[root] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				switch colour[w] {
				case grey:
					return true
				case white:
					colour[w] = grey
					stack = append(stack, frame{v: w})
				}
				continue
			}
			colour[f.v] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// baseFanout returns the forward adjacency of the circuit with every
// registered feedback pin excluded — the acyclic skeleton the cycle analyses
// run over.
func (c *Circuit) baseFanout() [][]int {
	type pinRef struct{ gate, pin int }
	back := make(map[pinRef]bool, len(c.Feedback))
	for _, fe := range c.Feedback {
		back[pinRef{fe.Gate, fe.Pin}] = true
	}
	adj := make([][]int, len(c.Gates))
	for id, g := range c.Gates {
		if g.Kind.arity() >= 1 && !back[pinRef{id, 0}] {
			adj[g.A] = append(adj[g.A], id)
		}
		if g.Kind.arity() == 2 && !back[pinRef{id, 1}] {
			adj[g.B] = append(adj[g.B], id)
		}
	}
	return adj
}
