package cnf

import (
	"context"
	"testing"
	"testing/quick"

	"bindlock/internal/netlist"
)

// TestEncodeMatchesEval checks Tseitin correctness: for every gate kind, a
// circuit's CNF encoding under pinned inputs must force the outputs the
// evaluator computes.
func TestEncodeMatchesEval(t *testing.T) {
	c := netlist.New("gates")
	a := c.AddInput()
	b := c.AddInput()
	c.MarkOutput(c.And(a, b))
	c.MarkOutput(c.Or(a, b))
	c.MarkOutput(c.Xor(a, b))
	c.MarkOutput(c.Nand(a, b))
	c.MarkOutput(c.Nor(a, b))
	c.MarkOutput(c.Xnor(a, b))
	c.MarkOutput(c.Not(a))
	c.MarkOutput(c.Buf(b))
	c.MarkOutput(c.Mux(a, b, c.Not(b)))
	c.MarkOutput(c.AddConst(true))

	for v := uint64(0); v < 4; v++ {
		in := netlist.Uint64ToBits(v, 2)
		want, err := c.Eval(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEncoder()
		inst, err := e.Encode(c, e.ConstVars(in), nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := e.S.Solve(context.Background())
		if err != nil || !ok {
			t.Fatalf("input %#x: solve = %v %v", v, ok, err)
		}
		for i, ov := range inst.Outputs {
			if e.S.Value(ov) != want[i] {
				t.Errorf("input %#x output %d: cnf %v, eval %v", v, i, e.S.Value(ov), want[i])
			}
		}
	}
}

// Property: for random operand pairs, the adder/multiplier encodings agree
// with direct evaluation.
func TestEncodeArithmeticQuick(t *testing.T) {
	add, err := netlist.NewAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	mul, err := netlist.NewMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		for _, c := range []*netlist.Circuit{add, mul} {
			n := len(c.Inputs)
			in := netlist.Uint64ToBits(uint64(raw)&(1<<uint(n)-1), n)
			want, err := c.Eval(in, nil)
			if err != nil {
				return false
			}
			e := NewEncoder()
			inst, err := e.Encode(c, e.ConstVars(in), nil)
			if err != nil {
				return false
			}
			ok, err := e.S.Solve(context.Background())
			if err != nil || !ok {
				return false
			}
			for i, ov := range inst.Outputs {
				if e.S.Value(ov) != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEncodeForcedOutputRecoverInputs(t *testing.T) {
	// Pin the adder's output to a constant and solve for inputs: the model
	// must be a preimage.
	add, _ := netlist.NewAdder(4)
	e := NewEncoder()
	inst, err := e.Encode(add, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := netlist.Uint64ToBits(9, 4)
	for i, ov := range inst.Outputs {
		e.FixVar(ov, target[i])
	}
	ok, err := e.S.Solve(context.Background())
	if err != nil || !ok {
		t.Fatalf("solve = %v %v", ok, err)
	}
	in := make([]bool, 8)
	for i, v := range inst.Inputs {
		in[i] = e.S.Value(v)
	}
	got, err := add.Eval(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.BitsToUint64(got) != 9 {
		t.Fatalf("preimage evaluates to %d, want 9", netlist.BitsToUint64(got))
	}
}

func TestSharedBusEncoding(t *testing.T) {
	// Two adder copies over the same input variables must always agree.
	add, _ := netlist.NewAdder(3)
	e := NewEncoder()
	i1, err := e.Encode(add, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := e.Encode(add, i1.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Assert some output differs: must be UNSAT.
	diffs := make([]int, len(i1.Outputs))
	for i := range diffs {
		diffs[i] = e.XorVar(i1.Outputs[i], i2.Outputs[i])
	}
	e.AtLeastOne(diffs)
	ok, err := e.S.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identical circuit copies cannot differ")
	}
}

func TestEncodeBindingArityErrors(t *testing.T) {
	add, _ := netlist.NewAdder(2)
	e := NewEncoder()
	if _, err := e.Encode(add, []int{0}, nil); err == nil {
		t.Error("wrong input bus arity must error")
	}
	locked, _, _ := netlist.LockXOR(add, 2, 1)
	if _, err := e.Encode(locked, nil, []int{0}); err == nil {
		t.Error("wrong key bus arity must error")
	}
}

func TestConstVarStable(t *testing.T) {
	e := NewEncoder()
	t1 := e.ConstVar(true)
	t2 := e.ConstVar(true)
	f1 := e.ConstVar(false)
	if t1 != t2 || t1 == f1 {
		t.Fatal("ConstVar must cache per polarity")
	}
	ok, err := e.S.Solve(context.Background())
	if err != nil || !ok {
		t.Fatal("constants alone must be SAT")
	}
	if !e.S.Value(t1) || e.S.Value(f1) {
		t.Fatal("constants pinned wrong")
	}
}

func TestXorVarTruthTable(t *testing.T) {
	for v := 0; v < 4; v++ {
		e := NewEncoder()
		a := e.ConstVar(v&1 == 1)
		b := e.ConstVar(v&2 == 2)
		y := e.XorVar(a, b)
		ok, err := e.S.Solve(context.Background())
		if err != nil || !ok {
			t.Fatal(err)
		}
		want := (v&1 == 1) != (v&2 == 2)
		if e.S.Value(y) != want {
			t.Errorf("xor(%d) = %v, want %v", v, e.S.Value(y), want)
		}
	}
}

// latchCircuit builds w = x OR (k AND w) with the AND's B pin registered as
// a feedback edge armed by k=1: the minimal cyclic locked circuit.
func latchCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("latch")
	x := c.AddInput()
	k := c.AddKey()
	fb := c.And(k, x)
	w := c.Or(x, fb)
	c.MarkOutput(w)
	c.AddFeedback(fb, 1, w, 0, true)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEncodeCyclicFixedPoints checks the Tseitin encoding of a cyclic
// circuit admits exactly the circuit's fixed points: under the armed key
// both latch values are models, under the broken key the output is forced.
func TestEncodeCyclicFixedPoints(t *testing.T) {
	solve := func(x, k, out bool) bool {
		e := NewEncoder()
		inst, err := e.Encode(latchCircuit(t), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.FixVar(inst.Inputs[0], x)
		e.FixVar(inst.Keys[0], k)
		e.FixVar(inst.Outputs[0], out)
		ok, err := e.S.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	// Armed latch at x=0: w = w, both fixed points satisfiable.
	if !solve(false, true, false) || !solve(false, true, true) {
		t.Fatal("armed latch should admit both fixed points at x=0")
	}
	// Broken key: w = x exactly.
	if solve(false, false, true) || solve(true, false, false) {
		t.Fatal("broken key must force w = x")
	}
	if !solve(false, false, false) || !solve(true, false, true) {
		t.Fatal("broken key lost the functional fixed point")
	}
	// Armed with controlling input x=1: w forced to 1 despite the loop.
	if solve(true, true, false) || !solve(true, true, true) {
		t.Fatal("controlling input must collapse the armed loop")
	}
}

// TestCycleClausesRestrictKeys checks the conjoined constraints exclude the
// cycle-closing key assignment.
func TestCycleClausesRestrictKeys(t *testing.T) {
	c := latchCircuit(t)
	clauses, err := c.CycleConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) == 0 {
		t.Fatal("latch produced no cycle constraints")
	}
	e := NewEncoder()
	inst, err := e.Encode(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CycleClauses(inst.Keys, clauses); err != nil {
		t.Fatal(err)
	}
	e.FixVar(inst.Keys[0], true) // the armed (cyclic) choice
	ok, err := e.S.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cycle clauses failed to exclude the armed key")
	}
	// Out-of-range clause indices are rejected.
	if err := e.CycleClauses(nil, clauses); err == nil {
		t.Fatal("want error for clause over an empty key bus")
	}
}
