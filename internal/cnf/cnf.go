// Package cnf translates gate-level circuits into CNF via the Tseitin
// transformation, instantiating circuit copies inside a sat.Solver.
//
// The SAT attack needs several copies of the locked circuit sharing or
// fixing different buses (two key copies over shared inputs for the miter;
// input-constant copies for the distinguishing-I/O constraints), so the
// encoder exposes explicit variable binding per bus.
package cnf

import (
	"fmt"

	"bindlock/internal/netlist"
	"bindlock/internal/sat"
)

// Encoder instantiates circuits into a solver backend.
type Encoder struct {
	S sat.Backend

	varTrue  int
	varFalse int
	haveK    bool
}

// NewEncoder returns an encoder over a fresh solver of the default backend.
func NewEncoder() *Encoder { return &Encoder{S: sat.NewSolver()} }

// NewEncoderBackend returns an encoder over the given solver backend.
func NewEncoderBackend(b sat.Backend) *Encoder { return &Encoder{S: b} }

// Instance records the solver variables of one circuit copy.
type Instance struct {
	Inputs  []int
	Keys    []int
	Outputs []int
}

// ConstVar returns a solver variable pinned to the given constant.
func (e *Encoder) ConstVar(v bool) int {
	if !e.haveK {
		e.varTrue = e.S.NewVar()
		e.varFalse = e.S.NewVar()
		e.S.AddClause(sat.NewLit(e.varTrue, false))
		e.S.AddClause(sat.NewLit(e.varFalse, true))
		e.haveK = true
	}
	if v {
		return e.varTrue
	}
	return e.varFalse
}

// FreshVars allocates n fresh solver variables.
func (e *Encoder) FreshVars(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = e.S.NewVar()
	}
	return vs
}

// ConstVars returns pinned variables for a bit pattern.
func (e *Encoder) ConstVars(bits []bool) []int {
	vs := make([]int, len(bits))
	for i, b := range bits {
		vs[i] = e.ConstVar(b)
	}
	return vs
}

// Encode instantiates circuit c. inputs and keys bind the respective buses
// to existing solver variables; pass nil to allocate fresh ones. The
// returned instance records all three buses.
func (e *Encoder) Encode(c *netlist.Circuit, inputs, keys []int) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if inputs == nil {
		inputs = e.FreshVars(len(c.Inputs))
	}
	if keys == nil {
		keys = e.FreshVars(len(c.Keys))
	}
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("cnf: %d input vars for %d inputs", len(inputs), len(c.Inputs))
	}
	if len(keys) != len(c.Keys) {
		return nil, fmt.Errorf("cnf: %d key vars for %d keys", len(keys), len(c.Keys))
	}

	s := e.S
	gateVar := make([]int, len(c.Gates))
	in, key := 0, 0
	pos := func(v int) sat.Lit { return sat.NewLit(v, false) }
	neg := func(v int) sat.Lit { return sat.NewLit(v, true) }

	for id, g := range c.Gates {
		switch g.Kind {
		case netlist.GInput:
			gateVar[id] = inputs[in]
			in++
			continue
		case netlist.GKey:
			gateVar[id] = keys[key]
			key++
			continue
		case netlist.GConst:
			gateVar[id] = e.ConstVar(g.Arg)
			continue
		case netlist.GBuf:
			gateVar[id] = gateVar[g.A]
			continue
		}
		y := s.NewVar()
		gateVar[id] = y
		a := gateVar[g.A]
		switch g.Kind {
		case netlist.GNot:
			s.AddClause(pos(y), pos(a))
			s.AddClause(neg(y), neg(a))
		case netlist.GAnd, netlist.GNand:
			b := gateVar[g.B]
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNand {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a))
			s.AddClause(yn, pos(b))
			s.AddClause(yp, neg(a), neg(b))
		case netlist.GOr, netlist.GNor:
			b := gateVar[g.B]
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNor {
				yp, yn = yn, yp
			}
			s.AddClause(yp, neg(a))
			s.AddClause(yp, neg(b))
			s.AddClause(yn, pos(a), pos(b))
		case netlist.GXor, netlist.GXnor:
			b := gateVar[g.B]
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GXnor {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a), pos(b))
			s.AddClause(yn, neg(a), neg(b))
			s.AddClause(yp, pos(a), neg(b))
			s.AddClause(yp, neg(a), pos(b))
		default:
			return nil, fmt.Errorf("cnf: unsupported gate kind %v", g.Kind)
		}
	}

	inst := &Instance{
		Inputs: inputs,
		Keys:   keys,
	}
	for _, o := range c.Outputs {
		inst.Outputs = append(inst.Outputs, gateVar[o])
	}
	return inst, nil
}

// FixVar pins an existing solver variable to a constant.
func (e *Encoder) FixVar(v int, val bool) {
	e.S.AddClause(sat.NewLit(v, !val))
}

// XorVar returns a fresh variable constrained to a XOR b.
func (e *Encoder) XorVar(a, b int) int {
	s := e.S
	y := s.NewVar()
	s.AddClause(sat.NewLit(y, true), sat.NewLit(a, false), sat.NewLit(b, false))
	s.AddClause(sat.NewLit(y, true), sat.NewLit(a, true), sat.NewLit(b, true))
	s.AddClause(sat.NewLit(y, false), sat.NewLit(a, false), sat.NewLit(b, true))
	s.AddClause(sat.NewLit(y, false), sat.NewLit(a, true), sat.NewLit(b, false))
	return y
}

// AtLeastOne adds a clause requiring one of the variables to be true.
func (e *Encoder) AtLeastOne(vars []int) {
	lits := make([]sat.Lit, len(vars))
	for i, v := range vars {
		lits[i] = sat.NewLit(v, false)
	}
	e.S.AddClause(lits...)
}

// GuardedAtLeastOne allocates a fresh guard variable g and adds the clause
// (¬g ∨ v1 ∨ … ∨ vn): whenever g holds, at least one of the variables must
// be true. Solving under the assumption g activates the constraint; solving
// without it leaves the clause vacuously satisfiable, which is how the
// attack loop keeps one warm miter solver usable for both difference
// finding and plain consistency checks.
func (e *Encoder) GuardedAtLeastOne(vars []int) int {
	g := e.S.NewVar()
	lits := make([]sat.Lit, 0, len(vars)+1)
	lits = append(lits, sat.NewLit(g, true))
	for _, v := range vars {
		lits = append(lits, sat.NewLit(v, false))
	}
	e.S.AddClause(lits...)
	return g
}
