// Package cnf translates gate-level circuits into CNF via the Tseitin
// transformation, instantiating circuit copies inside a sat.Solver.
//
// The SAT attack needs several copies of the locked circuit sharing or
// fixing different buses (two key copies over shared inputs for the miter;
// input-constant copies for the distinguishing-I/O constraints), so the
// encoder exposes explicit variable binding per bus.
package cnf

import (
	"fmt"

	"bindlock/internal/netlist"
	"bindlock/internal/sat"
)

// Encoder instantiates circuits into a solver backend.
type Encoder struct {
	S sat.Backend

	varTrue  int
	varFalse int
	haveK    bool
}

// NewEncoder returns an encoder over a fresh solver of the default backend.
func NewEncoder() *Encoder { return &Encoder{S: sat.NewSolver()} }

// NewEncoderBackend returns an encoder over the given solver backend.
func NewEncoderBackend(b sat.Backend) *Encoder { return &Encoder{S: b} }

// Instance records the solver variables of one circuit copy.
type Instance struct {
	Inputs  []int
	Keys    []int
	Outputs []int

	// gateVars is the per-gate solver variable of this copy, kept so a
	// later EncodeShared call can alias the nets a second key copy has in
	// common with this one.
	gateVars []int
}

// ConstVar returns a solver variable pinned to the given constant.
func (e *Encoder) ConstVar(v bool) int {
	if !e.haveK {
		e.varTrue = e.S.NewVar()
		e.varFalse = e.S.NewVar()
		e.S.AddClause(sat.NewLit(e.varTrue, false))
		e.S.AddClause(sat.NewLit(e.varFalse, true))
		e.haveK = true
	}
	if v {
		return e.varTrue
	}
	return e.varFalse
}

// FreshVars allocates n fresh solver variables.
func (e *Encoder) FreshVars(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = e.S.NewVar()
	}
	return vs
}

// ConstVars returns pinned variables for a bit pattern.
func (e *Encoder) ConstVars(bits []bool) []int {
	vs := make([]int, len(bits))
	for i, b := range bits {
		vs[i] = e.ConstVar(b)
	}
	return vs
}

// Encode instantiates circuit c. inputs and keys bind the respective buses
// to existing solver variables; pass nil to allocate fresh ones. The
// returned instance records all three buses.
func (e *Encoder) Encode(c *netlist.Circuit, inputs, keys []int) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if inputs == nil {
		inputs = e.FreshVars(len(c.Inputs))
	}
	if keys == nil {
		keys = e.FreshVars(len(c.Keys))
	}
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("cnf: %d input vars for %d inputs", len(inputs), len(c.Inputs))
	}
	if len(keys) != len(c.Keys) {
		return nil, fmt.Errorf("cnf: %d key vars for %d keys", len(keys), len(c.Keys))
	}

	s := e.S
	gateVar := make([]int, len(c.Gates))
	in, key := 0, 0
	pos := func(v int) sat.Lit { return sat.NewLit(v, false) }
	neg := func(v int) sat.Lit { return sat.NewLit(v, true) }

	// Cyclic circuits reference gates that have not been encoded yet: each
	// distinct feedback source gets a variable pinned up front, in Feedback
	// order, so both miter copies and every transcript rebuild allocate the
	// identical variable stream. When the source gate is finally encoded it
	// either *is* the pinned variable (fresh-variable kinds) or is tied to it
	// with equivalence clauses (alias kinds: input/key/const/buf).
	var pinned map[int]int
	if len(c.Feedback) > 0 {
		pinned = make(map[int]int, len(c.Feedback))
		for _, fe := range c.Feedback {
			if _, ok := pinned[fe.From]; !ok {
				pinned[fe.From] = s.NewVar()
			}
		}
	}
	// fanin resolves a fan-in reference from gate id: an ordinary (earlier)
	// gate by its encoded variable, a back-edge by its pinned variable —
	// Validate guarantees any non-topological fan-in is a registered
	// feedback source, so the pinned lookup cannot miss.
	fanin := func(ref, id int) int {
		if ref >= id {
			return pinned[ref]
		}
		return gateVar[ref]
	}
	// bindPinned ties an alias-encoded gate's variable to its pinned
	// feedback variable.
	bindPinned := func(id int) {
		if pv, ok := pinned[id]; ok && pv != gateVar[id] {
			s.AddClause(neg(pv), pos(gateVar[id]))
			s.AddClause(pos(pv), neg(gateVar[id]))
		}
	}

	for id, g := range c.Gates {
		switch g.Kind {
		case netlist.GInput:
			gateVar[id] = inputs[in]
			in++
			bindPinned(id)
			continue
		case netlist.GKey:
			gateVar[id] = keys[key]
			key++
			bindPinned(id)
			continue
		case netlist.GConst:
			gateVar[id] = e.ConstVar(g.Arg)
			bindPinned(id)
			continue
		case netlist.GBuf:
			gateVar[id] = fanin(g.A, id)
			bindPinned(id)
			continue
		}
		y, havePin := 0, false
		if pinned != nil {
			y, havePin = pinned[id]
		}
		if !havePin {
			y = s.NewVar()
		}
		gateVar[id] = y
		a := fanin(g.A, id)
		switch g.Kind {
		case netlist.GNot:
			s.AddClause(pos(y), pos(a))
			s.AddClause(neg(y), neg(a))
		case netlist.GAnd, netlist.GNand:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNand {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a))
			s.AddClause(yn, pos(b))
			s.AddClause(yp, neg(a), neg(b))
		case netlist.GOr, netlist.GNor:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNor {
				yp, yn = yn, yp
			}
			s.AddClause(yp, neg(a))
			s.AddClause(yp, neg(b))
			s.AddClause(yn, pos(a), pos(b))
		case netlist.GXor, netlist.GXnor:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GXnor {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a), pos(b))
			s.AddClause(yn, neg(a), neg(b))
			s.AddClause(yp, pos(a), neg(b))
			s.AddClause(yp, neg(a), pos(b))
		default:
			return nil, fmt.Errorf("cnf: unsupported gate kind %v", g.Kind)
		}
	}

	inst := &Instance{
		Inputs:   inputs,
		Keys:     keys,
		gateVars: gateVar,
	}
	for _, o := range c.Outputs {
		inst.Outputs = append(inst.Outputs, gateVar[o])
	}
	return inst, nil
}

// keyCone marks every gate whose value can depend on a key input: the
// forward closure of the GKey gates over ordinary fan-in edges and feedback
// back-edges. Back-edges point at later gates, so the sweep iterates to a
// fixed point instead of trusting a single topological pass.
func keyCone(c *netlist.Circuit) []bool {
	dep := make([]bool, len(c.Gates))
	for changed := true; changed; {
		changed = false
		for id, g := range c.Gates {
			if dep[id] {
				continue
			}
			d := false
			switch g.Kind {
			case netlist.GInput, netlist.GConst:
			case netlist.GKey:
				d = true
			case netlist.GNot, netlist.GBuf:
				d = dep[g.A]
			default:
				d = dep[g.A] || dep[g.B]
			}
			if d {
				dep[id] = true
				changed = true
			}
		}
	}
	return dep
}

// EncodeShared instantiates a second key copy of c against prev, a full
// Encode of the same circuit in this encoder. Only the key cone — gates
// whose value can depend on a key bit — is re-encoded on fresh variables
// with a fresh key bus; every net outside the cone aliases prev's variable
// outright. The copies are miter-equivalent to two full Encode calls over a
// shared input bus, but the solver sees the shared logic once, so proving
// the final "no distinguishing input remains" UNSAT no longer requires
// re-deriving the equality of two syntactically disjoint copies of the
// whole datapath.
func (e *Encoder) EncodeShared(c *netlist.Circuit, prev *Instance) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if prev == nil || len(prev.gateVars) != len(c.Gates) {
		return nil, fmt.Errorf("cnf: shared encode against a foreign instance")
	}
	keys := e.FreshVars(len(c.Keys))
	dep := keyCone(c)

	s := e.S
	gateVar := make([]int, len(c.Gates))
	key := 0
	pos := func(v int) sat.Lit { return sat.NewLit(v, false) }
	neg := func(v int) sat.Lit { return sat.NewLit(v, true) }

	// Only key-dependent feedback sources need this copy's own pinned
	// variable; a cone-external source resolves to prev's settled variable.
	var pinned map[int]int
	if len(c.Feedback) > 0 {
		pinned = make(map[int]int, len(c.Feedback))
		for _, fe := range c.Feedback {
			if _, ok := pinned[fe.From]; !ok && dep[fe.From] {
				pinned[fe.From] = s.NewVar()
			}
		}
	}
	fanin := func(ref, id int) int {
		if !dep[ref] {
			return prev.gateVars[ref]
		}
		if ref >= id {
			return pinned[ref]
		}
		return gateVar[ref]
	}
	bindPinned := func(id int) {
		if pv, ok := pinned[id]; ok && pv != gateVar[id] {
			s.AddClause(neg(pv), pos(gateVar[id]))
			s.AddClause(pos(pv), neg(gateVar[id]))
		}
	}

	for id, g := range c.Gates {
		if !dep[id] {
			gateVar[id] = prev.gateVars[id]
			if g.Kind == netlist.GKey {
				// Unreachable (a key gate is always in its own cone), but
				// keep the bus walk aligned if that ever changes.
				key++
			}
			continue
		}
		switch g.Kind {
		case netlist.GKey:
			gateVar[id] = keys[key]
			key++
			bindPinned(id)
			continue
		case netlist.GBuf:
			gateVar[id] = fanin(g.A, id)
			bindPinned(id)
			continue
		}
		y, havePin := 0, false
		if pinned != nil {
			y, havePin = pinned[id]
		}
		if !havePin {
			y = s.NewVar()
		}
		gateVar[id] = y
		a := fanin(g.A, id)
		switch g.Kind {
		case netlist.GNot:
			s.AddClause(pos(y), pos(a))
			s.AddClause(neg(y), neg(a))
		case netlist.GAnd, netlist.GNand:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNand {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a))
			s.AddClause(yn, pos(b))
			s.AddClause(yp, neg(a), neg(b))
		case netlist.GOr, netlist.GNor:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GNor {
				yp, yn = yn, yp
			}
			s.AddClause(yp, neg(a))
			s.AddClause(yp, neg(b))
			s.AddClause(yn, pos(a), pos(b))
		case netlist.GXor, netlist.GXnor:
			b := fanin(g.B, id)
			yp, yn := pos(y), neg(y)
			if g.Kind == netlist.GXnor {
				yp, yn = yn, yp
			}
			s.AddClause(yn, pos(a), pos(b))
			s.AddClause(yn, neg(a), neg(b))
			s.AddClause(yp, pos(a), neg(b))
			s.AddClause(yp, neg(a), pos(b))
		default:
			return nil, fmt.Errorf("cnf: unsupported gate kind %v", g.Kind)
		}
	}

	inst := &Instance{
		Inputs:   prev.Inputs,
		Keys:     keys,
		gateVars: gateVar,
	}
	for _, o := range c.Outputs {
		inst.Outputs = append(inst.Outputs, gateVar[o])
	}
	return inst, nil
}

// FixVar pins an existing solver variable to a constant.
func (e *Encoder) FixVar(v int, val bool) {
	e.S.AddClause(sat.NewLit(v, !val))
}

// XorVar returns a fresh variable constrained to a XOR b.
func (e *Encoder) XorVar(a, b int) int {
	s := e.S
	y := s.NewVar()
	s.AddClause(sat.NewLit(y, true), sat.NewLit(a, false), sat.NewLit(b, false))
	s.AddClause(sat.NewLit(y, true), sat.NewLit(a, true), sat.NewLit(b, true))
	s.AddClause(sat.NewLit(y, false), sat.NewLit(a, false), sat.NewLit(b, true))
	s.AddClause(sat.NewLit(y, false), sat.NewLit(a, true), sat.NewLit(b, false))
	return y
}

// CycleClauses conjoins CycSAT cycle-breaking constraints over a key bus:
// for each netlist.CycleClause at least one of its literals
// (keyVars[Key] == Val) must hold, so every satisfying assignment of the
// solver selects an acyclic key configuration. The clauses are permanent
// (unguarded): cyclic wrong keys are never functionally correct, so pruning
// them can only shrink the search.
func (e *Encoder) CycleClauses(keyVars []int, clauses []netlist.CycleClause) error {
	for _, cl := range clauses {
		lits := make([]sat.Lit, 0, len(cl))
		for _, kl := range cl {
			if kl.Key < 0 || kl.Key >= len(keyVars) {
				return fmt.Errorf("cnf: cycle clause key index %d outside %d-bit key bus",
					kl.Key, len(keyVars))
			}
			lits = append(lits, sat.NewLit(keyVars[kl.Key], !kl.Val))
		}
		e.S.AddClause(lits...)
	}
	return nil
}

// AtLeastOne adds a clause requiring one of the variables to be true.
func (e *Encoder) AtLeastOne(vars []int) {
	lits := make([]sat.Lit, len(vars))
	for i, v := range vars {
		lits[i] = sat.NewLit(v, false)
	}
	e.S.AddClause(lits...)
}

// GuardedAtLeastOne allocates a fresh guard variable g and adds the clause
// (¬g ∨ v1 ∨ … ∨ vn): whenever g holds, at least one of the variables must
// be true. Solving under the assumption g activates the constraint; solving
// without it leaves the clause vacuously satisfiable, which is how the
// attack loop keeps one warm miter solver usable for both difference
// finding and plain consistency checks.
func (e *Encoder) GuardedAtLeastOne(vars []int) int {
	g := e.S.NewVar()
	lits := make([]sat.Lit, 0, len(vars)+1)
	lits = append(lits, sat.NewLit(g, true))
	for _, v := range vars {
		lits = append(lits, sat.NewLit(v, false))
	}
	e.S.AddClause(lits...)
	return g
}
