package trace

import (
	"testing"
	"testing/quick"
)

var allGens = []Generator{Uniform, ImageBlocks, Audio, Bitstream, SensorNoise}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	names := []string{"a", "b", "c"}
	for _, g := range allGens {
		t.Run(g.String(), func(t *testing.T) {
			t1 := Generate(g, names, 100, 42)
			t2 := Generate(g, names, 100, 42)
			if t1.Len() != 100 {
				t.Fatalf("Len = %d, want 100", t1.Len())
			}
			for s := range t1.Samples {
				if len(t1.Samples[s]) != 3 {
					t.Fatalf("sample %d has %d values", s, len(t1.Samples[s]))
				}
				for i := range t1.Samples[s] {
					if t1.Samples[s][i] != t2.Samples[s][i] {
						t.Fatalf("generator %v not deterministic at sample %d", g, s)
					}
				}
			}
			t3 := Generate(g, names, 100, 43)
			same := true
			for s := range t1.Samples {
				for i := range t1.Samples[s] {
					if t1.Samples[s][i] != t3.Samples[s][i] {
						same = false
					}
				}
			}
			if same && g != Uniform {
				// Pathologically possible but with these generators a
				// different seed must change something.
				t.Errorf("generator %v ignored the seed", g)
			}
		})
	}
}

// distinctPairs counts distinct (a, b) pairs over the first two inputs.
func distinctPairs(tr *Trace) int {
	set := map[[2]uint8]bool{}
	for _, s := range tr.Samples {
		set[[2]uint8{s[0], s[1]}] = true
	}
	return len(set)
}

func TestStructuredWorkloadsAreHeavyTailed(t *testing.T) {
	// The point of the structured generators is minterm concentration:
	// far fewer distinct operand pairs than a uniform workload.
	names := []string{"a", "b", "c", "d"}
	n := 2000
	uni := distinctPairs(Generate(Uniform, names, n, 1))
	for _, g := range []Generator{ImageBlocks, Bitstream, SensorNoise} {
		structured := distinctPairs(Generate(g, names, n, 1))
		if structured >= uni {
			t.Errorf("%v produced %d distinct pairs, uniform produced %d; want fewer", g, structured, uni)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	tr := New([]string{"a", "b"}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong arity must panic")
		}
	}()
	tr.Append([]uint8{1})
}

func TestAppendCopies(t *testing.T) {
	tr := New([]string{"a"}, 1)
	v := []uint8{7}
	tr.Append(v)
	v[0] = 9
	if tr.Samples[0][0] != 7 {
		t.Fatal("Append must copy the sample")
	}
}

func TestIndex(t *testing.T) {
	tr := New([]string{"a", "b"}, 0)
	if tr.Index("b") != 1 || tr.Index("a") != 0 || tr.Index("zz") != -1 {
		t.Fatal("Index lookup broken")
	}
}

func TestGeneratorString(t *testing.T) {
	for _, g := range allGens {
		if g.String() == "" {
			t.Errorf("empty name for generator %d", g)
		}
	}
	if Generator(99).String() != "generator(99)" {
		t.Error("unknown generator String mismatch")
	}
}

// Property: every generated value is a valid byte and every sample has the
// declared arity, across generators, sizes and seeds.
func TestGenerateWellFormedQuick(t *testing.T) {
	f := func(seed int64, gIdx uint8, nInputs uint8) bool {
		g := allGens[int(gIdx)%len(allGens)]
		k := 1 + int(nInputs)%6
		names := make([]string, k)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		tr := Generate(g, names, 50, seed)
		if tr.Len() != 50 {
			return false
		}
		for _, s := range tr.Samples {
			if len(s) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
