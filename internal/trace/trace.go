// Package trace generates the "typical" input traces (sample workloads) that
// drive binding decisions.
//
// The paper assumes knowledge of the IC's input distribution during HLS — "a
// common assumption for HLS [19], [22]" — and uses MediaBench's sample
// workloads. The MediaBench payloads (images, audio, video bitstreams) are
// not redistributable, so this package synthesises workloads with the same
// statistical character: heavy-tailed, correlated minterm distributions with
// repeated values, zero runs, and smooth local structure. Every generator is
// deterministic under its seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Trace is a sequence of input samples for a DFG. Samples[s][i] is the value
// of input Names[i] in sample s.
type Trace struct {
	Names   []string
	Samples [][]uint8
}

// New returns an empty trace over the named inputs with capacity for n
// samples.
func New(names []string, n int) *Trace {
	return &Trace{Names: append([]string(nil), names...), Samples: make([][]uint8, 0, n)}
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Append adds one sample; vals must match Names in length and order.
func (t *Trace) Append(vals []uint8) {
	if len(vals) != len(t.Names) {
		panic(fmt.Sprintf("trace: sample has %d values, want %d", len(vals), len(t.Names)))
	}
	t.Samples = append(t.Samples, append([]uint8(nil), vals...))
}

// Index returns the position of input name, or -1.
func (t *Trace) Index(name string) int {
	for i, n := range t.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Generator enumerates the built-in workload families.
type Generator uint8

// Workload families, chosen per benchmark class (see internal/mediabench).
const (
	// Uniform draws every input independently and uniformly. It is the
	// adversarial "no structure" baseline; real media workloads are far
	// from it.
	Uniform Generator = iota
	// ImageBlocks emulates pixel blocks from natural images: a smooth
	// per-sample base level with small spatial deltas between inputs and
	// occasional flat (constant) blocks. Drives dct/jdmerge/jctrans/motion.
	ImageBlocks
	// Audio emulates PCM audio feeding a tapped delay line: consecutive
	// inputs are consecutive samples of a noisy sum of sinusoids. Drives
	// fir/fft.
	Audio
	// Bitstream emulates protocol/cipher input data: repeated header
	// bytes, counters, and runs of padding. Drives ecb_enc.
	Bitstream
	// SensorNoise emulates a sensor channel: values concentrated around a
	// slowly drifting mean with rare outliers. Drives noisest.
	SensorNoise
)

func (g Generator) String() string {
	switch g {
	case Uniform:
		return "uniform"
	case ImageBlocks:
		return "image-blocks"
	case Audio:
		return "audio"
	case Bitstream:
		return "bitstream"
	case SensorNoise:
		return "sensor-noise"
	}
	return fmt.Sprintf("generator(%d)", uint8(g))
}

// Generate produces n samples over the named inputs using family g and the
// given seed.
func Generate(g Generator, names []string, n int, seed int64) *Trace {
	r := rand.New(rand.NewSource(seed))
	t := New(names, n)
	vals := make([]uint8, len(names))
	switch g {
	case Uniform:
		for s := 0; s < n; s++ {
			for i := range vals {
				vals[i] = uint8(r.Intn(256))
			}
			t.Append(vals)
		}
	case ImageBlocks:
		for s := 0; s < n; s++ {
			base := uint8(r.Intn(256))
			if r.Float64() < 0.12 { // dark blocks: very common in real video
				base = uint8(r.Intn(12))
			}
			flat := r.Float64() < 0.08 // flat blocks: all-equal pixels
			grad := r.Intn(7) - 3      // smooth gradient step
			for i := range vals {
				if flat {
					vals[i] = base
					continue
				}
				v := int(base) + grad*i + r.Intn(5) - 2
				vals[i] = clamp(v)
			}
			t.Append(vals)
		}
	case Audio:
		phase := r.Float64() * 2 * math.Pi
		f1 := 0.05 + r.Float64()*0.1
		f2 := 0.21 + r.Float64()*0.1
		pos := 0
		silence := 0 // remaining silent samples (real audio is full of them)
		sample := func(k int) uint8 {
			x := 96*math.Sin(f1*float64(k)+phase) + 24*math.Sin(f2*float64(k))
			x += float64(r.Intn(9) - 4)
			v := clamp(int(128 + x))
			return v &^ 3 // coarse quantisation, as after ADC companding
		}
		for s := 0; s < n; s++ {
			if silence == 0 && r.Float64() < 0.03 {
				silence = 4 + r.Intn(16)
			}
			// Consecutive inputs are a sliding window over the stream.
			for i := range vals {
				if silence > 0 {
					vals[i] = 128
				} else {
					vals[i] = sample(pos + i)
				}
			}
			if silence > 0 {
				silence--
			}
			pos++
			t.Append(vals)
		}
	case Bitstream:
		headers := []uint8{0x00, 0xFF, 0x47, 0x1F}
		ctr := uint8(0)
		for s := 0; s < n; s++ {
			mode := r.Intn(10)
			for i := range vals {
				switch {
				case mode < 3: // header run
					vals[i] = headers[r.Intn(len(headers))]
				case mode < 6: // counter data
					vals[i] = ctr + uint8(i)
				case mode < 8: // zero padding
					vals[i] = 0
				default: // payload bytes
					vals[i] = uint8(r.Intn(256))
				}
			}
			ctr += uint8(1 + r.Intn(3))
			t.Append(vals)
		}
	case SensorNoise:
		mean := 120.0
		for s := 0; s < n; s++ {
			mean += r.Float64()*2 - 1 // slow drift
			if mean < 40 {
				mean = 40
			}
			if mean > 215 {
				mean = 215
			}
			for i := range vals {
				v := mean + r.NormFloat64()*4
				if r.Float64() < 0.02 { // rare outlier spike
					v = mean + r.NormFloat64()*60
				}
				vals[i] = clamp(int(v))
			}
			t.Append(vals)
		}
	default:
		panic(fmt.Sprintf("trace: unknown generator %v", g))
	}
	return t
}

func clamp(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
