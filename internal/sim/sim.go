// Package sim interprets data-flow graphs over input traces and accumulates
// the input-minterm occurrence matrix K of Sec. IV-A.
//
// "One way to calculate K for a given DFG is to simulate the execution of the
// DFG for 'typical' input traces ... Given an input trace for the DFG, we can
// perform time simulation to calculate the number of times a given locked
// input is applied to each operation." This package is exactly that
// simulator.
package sim

import (
	"context"
	"fmt"
	"sort"

	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/progress"
	"bindlock/internal/trace"
)

// KMatrix records, per operation, how many times each input minterm was
// applied over the simulated trace. K_{m,n} of the paper is Count(m, n).
// Minterms of commutative kinds are canonicalised, so operand order does not
// split counts.
type KMatrix struct {
	perOp []map[dfg.Minterm]int // indexed by OpID; nil for non-FU ops
}

// NewKMatrix returns an empty K matrix for a graph of numOps operations.
// Counts are normally produced by Run; the constructor exists so that
// analytically specified occurrence tables (such as the paper's Fig. 1 and
// Fig. 2 examples) can be expressed directly.
func NewKMatrix(numOps int) *KMatrix {
	k := &KMatrix{perOp: make([]map[dfg.Minterm]int, numOps)}
	for i := range k.perOp {
		k.perOp[i] = map[dfg.Minterm]int{}
	}
	return k
}

// Add increments K_{m,n} by count.
func (k *KMatrix) Add(m dfg.Minterm, n dfg.OpID, count int) {
	if k.perOp[n] == nil {
		k.perOp[n] = map[dfg.Minterm]int{}
	}
	k.perOp[n][m] += count
}

// Count returns K_{m,n}: occurrences of minterm m at operation n.
func (k *KMatrix) Count(m dfg.Minterm, n dfg.OpID) int {
	if int(n) >= len(k.perOp) || k.perOp[n] == nil {
		return 0
	}
	return k.perOp[n][m]
}

// OpTotal returns the total number of recorded applications at operation n
// (equal to the trace length for FU ops).
func (k *KMatrix) OpTotal(n dfg.OpID) int {
	total := 0
	for _, c := range k.perOp[n] {
		total += c
	}
	return total
}

// OpMinterms returns the distinct minterms observed at operation n.
func (k *KMatrix) OpMinterms(n dfg.OpID) []dfg.Minterm {
	ms := make([]dfg.Minterm, 0, len(k.perOp[n]))
	for m := range k.perOp[n] {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// MintermCount is a minterm with an aggregate occurrence count.
type MintermCount struct {
	M     dfg.Minterm
	Count int
}

// TopMinterms returns the k most frequent minterms aggregated over all
// class-c operations of g, in decreasing count order (minterm value breaks
// ties, for determinism). This implements the paper's default candidate
// locked-input selection: "the most obvious relies on the 'typical' input
// trace to select the most common inputs in the DFG (i.e. the top 'x' most
// common inputs)" (Sec. V-B).
func (k *KMatrix) TopMinterms(g *dfg.Graph, c dfg.Class, topK int) []MintermCount {
	agg := map[dfg.Minterm]int{}
	for _, id := range g.OpsOfClass(c) {
		for m, n := range k.perOp[id] {
			agg[m] += n
		}
	}
	all := make([]MintermCount, 0, len(agg))
	for m, n := range agg {
		all = append(all, MintermCount{M: m, Count: n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].M < all[j].M
	})
	if topK > len(all) {
		topK = len(all)
	}
	return all[:topK]
}

// Result carries everything one simulation produces.
type Result struct {
	K *KMatrix
	// Vals[s][n] is the value produced by op n in sample s (inputs carry
	// their sample value; Output ops mirror their operand). Consumed by
	// the RTL switching-activity model.
	Vals [][]uint8
	// OperandAB[s][n] is the raw, non-canonicalised operand pair applied
	// to binary op n in sample s (zero for non-binary ops).
	OperandAB [][]dfg.Minterm
}

// ctxEvery is the per-sample stride between context checks: samples are
// microseconds of work, so a per-sample check would dominate the loop.
const ctxEvery = 256

// Run interprets g over tr, producing the K matrix and per-sample values.
// Every DFG input must be present in the trace. Cancellation is honoured at
// sample granularity; an interrupted run returns the partial Result covering
// the samples completed so far (Vals/OperandAB truncated to that prefix)
// inside the typed error.
func Run(ctx context.Context, g *dfg.Graph, tr *trace.Trace) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inputIdx := make(map[dfg.OpID]int)
	for _, id := range g.Inputs() {
		idx := tr.Index(g.Ops[id].Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: trace missing input %q of %q", g.Ops[id].Name, g.Name)
		}
		inputIdx[id] = idx
	}

	k := &KMatrix{perOp: make([]map[dfg.Minterm]int, len(g.Ops))}
	for _, op := range g.Ops {
		if op.Kind.IsBinary() {
			k.perOp[op.ID] = map[dfg.Minterm]int{}
		}
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "simulate", g.Name)
	res := &Result{
		K:         k,
		Vals:      make([][]uint8, tr.Len()),
		OperandAB: make([][]dfg.Minterm, tr.Len()),
	}
	for s, sample := range tr.Samples {
		if s%ctxEvery == 0 {
			if cerr := interrupt.Check(ctx, "sim: run", nil); cerr != nil {
				res.Vals = res.Vals[:s]
				res.OperandAB = res.OperandAB[:s]
				progress.End(hook, "simulate", fmt.Sprintf("interrupted at sample %d/%d", s, tr.Len()))
				return res, interrupt.Rewrap("sim: run", cerr, res)
			}
			progress.Tick(hook, "simulate", s, tr.Len())
		}
		vals := make([]uint8, len(g.Ops))
		ab := make([]dfg.Minterm, len(g.Ops))
		for _, op := range g.Ops {
			switch op.Kind {
			case dfg.Input:
				vals[op.ID] = sample[inputIdx[op.ID]]
			case dfg.Const:
				vals[op.ID] = op.Val
			case dfg.Output:
				vals[op.ID] = vals[op.Args[0]]
			default:
				a := vals[op.Args[0]]
				b := vals[op.Args[1]]
				vals[op.ID] = dfg.EvalKind(op.Kind, a, b)
				ab[op.ID] = dfg.MkMinterm(a, b)
				k.perOp[op.ID][dfg.CanonMinterm(op.Kind, a, b)]++
			}
		}
		res.Vals[s] = vals
		res.OperandAB[s] = ab
	}
	progress.End(hook, "simulate", fmt.Sprintf("%d samples", tr.Len()))
	return res, nil
}
