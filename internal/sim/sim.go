// Package sim interprets data-flow graphs over input traces and accumulates
// the input-minterm occurrence matrix K of Sec. IV-A.
//
// "One way to calculate K for a given DFG is to simulate the execution of the
// DFG for 'typical' input traces ... Given an input trace for the DFG, we can
// perform time simulation to calculate the number of times a given locked
// input is applied to each operation." This package is exactly that
// simulator.
package sim

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"bindlock/internal/bitslice"
	"bindlock/internal/dfg"
	"bindlock/internal/fault"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/parallel"
	"bindlock/internal/progress"
	"bindlock/internal/trace"
)

// KMatrix records, per operation, how many times each input minterm was
// applied over the simulated trace. K_{m,n} of the paper is Count(m, n).
// Minterms of commutative kinds are canonicalised, so operand order does not
// split counts.
type KMatrix struct {
	perOp []map[dfg.Minterm]int // indexed by OpID; nil for non-FU ops
}

// NewKMatrix returns an empty K matrix for a graph of numOps operations.
// Counts are normally produced by Run; the constructor exists so that
// analytically specified occurrence tables (such as the paper's Fig. 1 and
// Fig. 2 examples) can be expressed directly.
func NewKMatrix(numOps int) *KMatrix {
	k := &KMatrix{perOp: make([]map[dfg.Minterm]int, numOps)}
	for i := range k.perOp {
		k.perOp[i] = map[dfg.Minterm]int{}
	}
	return k
}

// Add increments K_{m,n} by count. The matrix grows to cover n when the op
// lies beyond the constructed size, keeping Add total on the same domain
// where Count, OpTotal and OpMinterms are defined.
func (k *KMatrix) Add(m dfg.Minterm, n dfg.OpID, count int) {
	if int(n) >= len(k.perOp) {
		grown := make([]map[dfg.Minterm]int, int(n)+1)
		copy(grown, k.perOp)
		k.perOp = grown
	}
	if k.perOp[n] == nil {
		k.perOp[n] = map[dfg.Minterm]int{}
	}
	k.perOp[n][m] += count
}

// Count returns K_{m,n}: occurrences of minterm m at operation n.
func (k *KMatrix) Count(m dfg.Minterm, n dfg.OpID) int {
	if int(n) >= len(k.perOp) || k.perOp[n] == nil {
		return 0
	}
	return k.perOp[n][m]
}

// OpTotal returns the total number of recorded applications at operation n
// (equal to the trace length for FU ops). Out-of-range ops have no recorded
// applications and total 0, matching Count.
func (k *KMatrix) OpTotal(n dfg.OpID) int {
	if int(n) >= len(k.perOp) {
		return 0
	}
	total := 0
	for _, c := range k.perOp[n] {
		total += c
	}
	return total
}

// OpMinterms returns the distinct minterms observed at operation n, empty
// for out-of-range ops (matching Count).
func (k *KMatrix) OpMinterms(n dfg.OpID) []dfg.Minterm {
	if int(n) >= len(k.perOp) {
		return nil
	}
	ms := make([]dfg.Minterm, 0, len(k.perOp[n]))
	for m := range k.perOp[n] {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// NumMinterms returns the total number of distinct (operation, minterm)
// entries recorded in the matrix — the K matrix's support size.
func (k *KMatrix) NumMinterms() int {
	total := 0
	for _, counts := range k.perOp {
		total += len(counts)
	}
	return total
}

// MintermCount is a minterm with an aggregate occurrence count.
type MintermCount struct {
	M     dfg.Minterm
	Count int
}

// TopMinterms returns the k most frequent minterms aggregated over all
// class-c operations of g, in decreasing count order (minterm value breaks
// ties, for determinism). This implements the paper's default candidate
// locked-input selection: "the most obvious relies on the 'typical' input
// trace to select the most common inputs in the DFG (i.e. the top 'x' most
// common inputs)" (Sec. V-B).
func (k *KMatrix) TopMinterms(g *dfg.Graph, c dfg.Class, topK int) []MintermCount {
	agg := map[dfg.Minterm]int{}
	for _, id := range g.OpsOfClass(c) {
		for m, n := range k.perOp[id] {
			agg[m] += n
		}
	}
	all := make([]MintermCount, 0, len(agg))
	for m, n := range agg {
		all = append(all, MintermCount{M: m, Count: n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].M < all[j].M
	})
	if topK > len(all) {
		topK = len(all)
	}
	return all[:topK]
}

// Result carries everything one simulation produces.
type Result struct {
	K *KMatrix
	// Vals[s][n] is the value produced by op n in sample s (inputs carry
	// their sample value; Output ops mirror their operand). Consumed by
	// the RTL switching-activity model.
	Vals [][]uint8
	// OperandAB[s][n] is the raw, non-canonicalised operand pair applied
	// to binary op n in sample s (zero for non-binary ops).
	OperandAB [][]dfg.Minterm
}

// ctxEvery is the per-sample stride between context checks: samples are
// microseconds of work, so a per-sample check would dominate the loop.
const ctxEvery = 256

// minParallelSamples is the trace length below which sharding is not worth
// the fan-out overhead.
const minParallelSamples = 2 * ctxEvery

// newRunMatrix builds the K matrix Run populates: one count map per binary
// (FU) operation of g.
func newRunMatrix(g *dfg.Graph) *KMatrix {
	k := &KMatrix{perOp: make([]map[dfg.Minterm]int, len(g.Ops))}
	for _, op := range g.Ops {
		if op.Kind.IsBinary() {
			k.perOp[op.ID] = map[dfg.Minterm]int{}
		}
	}
	return k
}

// addAll merges src's counts into k. Integer counts are additive, so merging
// per-worker matrices in task order reproduces the sequential matrix
// exactly.
func (k *KMatrix) addAll(src *KMatrix) {
	for n, counts := range src.perOp {
		if len(counts) == 0 {
			continue
		}
		if k.perOp[n] == nil {
			k.perOp[n] = map[dfg.Minterm]int{}
		}
		for m, c := range counts {
			k.perOp[n][m] += c
		}
	}
}

// evalSample interprets one trace sample, incrementing k and recording the
// per-op values and raw operand pairs into res at index s. It is the scalar
// reference for the bit-sliced block evaluator; Run's output must stay
// bit-identical to driving this over every sample in order.
func evalSample(g *dfg.Graph, inputIdx map[dfg.OpID]int, sample []uint8, s int, k *KMatrix, res *Result) {
	vals := make([]uint8, len(g.Ops))
	ab := make([]dfg.Minterm, len(g.Ops))
	for _, op := range g.Ops {
		switch op.Kind {
		case dfg.Input:
			vals[op.ID] = sample[inputIdx[op.ID]]
		case dfg.Const:
			vals[op.ID] = op.Val
		case dfg.Output:
			vals[op.ID] = vals[op.Args[0]]
		default:
			a := vals[op.Args[0]]
			b := vals[op.Args[1]]
			vals[op.ID] = dfg.EvalKind(op.Kind, a, b)
			ab[op.ID] = dfg.MkMinterm(a, b)
			k.perOp[op.ID][dfg.CanonMinterm(op.Kind, a, b)]++
		}
	}
	res.Vals[s] = vals
	res.OperandAB[s] = ab
}

// blockState is the per-worker scratch of the bit-sliced evaluator: one Vec
// per op, reused across blocks, plus the input packing buffer.
type blockState struct {
	vecs []bitslice.Vec
	buf  [bitslice.Lanes]uint8
}

func newBlockState(g *dfg.Graph) *blockState {
	return &blockState{vecs: make([]bitslice.Vec, len(g.Ops))}
}

// evalBlock interprets lanes consecutive samples starting at s0 through the
// bit-sliced evaluator: one graph walk computes all lanes at once, then each
// lane unpacks into the same per-sample Vals/OperandAB/K writes evalSample
// performs, in the same order — the block path is bit-identical to the scalar
// path by construction.
func evalBlock(g *dfg.Graph, inputIdx map[dfg.OpID]int, tr *trace.Trace, s0, lanes int, k *KMatrix, res *Result, st *blockState) {
	for _, op := range g.Ops {
		switch op.Kind {
		case dfg.Input:
			idx := inputIdx[op.ID]
			for l := 0; l < lanes; l++ {
				st.buf[l] = tr.Samples[s0+l][idx]
			}
			st.vecs[op.ID] = bitslice.Pack(st.buf[:lanes])
		case dfg.Const:
			st.vecs[op.ID] = bitslice.Splat(op.Val)
		case dfg.Output:
			st.vecs[op.ID] = st.vecs[op.Args[0]]
		default:
			st.vecs[op.ID] = bitslice.Eval(op.Kind, st.vecs[op.Args[0]], st.vecs[op.Args[1]])
		}
	}
	for l := 0; l < lanes; l++ {
		vals := make([]uint8, len(g.Ops))
		ab := make([]dfg.Minterm, len(g.Ops))
		for _, op := range g.Ops {
			vals[op.ID] = st.vecs[op.ID].Get(l)
			if op.Kind.IsBinary() {
				a := vals[op.Args[0]]
				b := vals[op.Args[1]]
				ab[op.ID] = dfg.MkMinterm(a, b)
				k.perOp[op.ID][dfg.CanonMinterm(op.Kind, a, b)]++
			}
		}
		res.Vals[s0+l] = vals
		res.OperandAB[s0+l] = ab
	}
}

// chunkBounds splits n items into `chunks` contiguous balanced ranges:
// chunk i covers [bounds[i], bounds[i+1]).
func chunkBounds(n, chunks int) []int {
	b := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		b[i] = i * n / chunks
	}
	return b
}

// Run interprets g over tr, producing the K matrix and per-sample values.
// Evaluation is 64-way bit-sliced (see internal/bitslice): each graph walk
// computes a block of 64 samples, which then unpack into the same per-sample
// records a scalar walk would write, so results are bit-identical to the
// scalar interpreter (evalSample, kept as the differential-test reference).
// Every DFG input must be present in the trace. Samples are sharded across
// the worker pool configured on ctx (see internal/parallel); per-worker K
// matrices merge in shard order, so the Result is bit-identical to a
// single-worker run. Cancellation is honoured at sample granularity; an
// interrupted run returns the partial Result covering a contiguous sample
// prefix (Vals/OperandAB truncated, K restricted to that prefix) inside the
// typed error.
func Run(ctx context.Context, g *dfg.Graph, tr *trace.Trace) (*Result, error) {
	return RunN(ctx, g, tr, 0)
}

// RunN is Run with an explicit worker count; 0 resolves from the context's
// parallelism setting, falling back to GOMAXPROCS.
func RunN(ctx context.Context, g *dfg.Graph, tr *trace.Trace, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := fault.Hit(ctx, "sim.run"); err != nil {
		return nil, fmt.Errorf("sim: run: %w", err)
	}
	inputIdx := make(map[dfg.OpID]int)
	for _, id := range g.Inputs() {
		idx := tr.Index(g.Ops[id].Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: trace missing input %q of %q", g.Ops[id].Name, g.Name)
		}
		inputIdx[id] = idx
	}

	hook := progress.FromContext(ctx)
	progress.Start(hook, "simulate", g.Name)
	k := newRunMatrix(g)
	res := &Result{
		K:         k,
		Vals:      make([][]uint8, tr.Len()),
		OperandAB: make([][]dfg.Minterm, tr.Len()),
	}

	if m := metrics.FromContext(ctx); m != nil {
		start := time.Now()
		// res.Vals is truncated to the completed prefix on interruption, so
		// the deferred read counts exactly the samples that ran.
		defer func() {
			elapsed := time.Since(start)
			m.ObserveDuration("sim_run_seconds", elapsed)
			n := len(res.Vals)
			m.Add("sim_samples_total", int64(n))
			m.Add("sim_kmatrix_minterms_total", int64(res.K.NumMinterms()))
			if sec := elapsed.Seconds(); sec > 0 {
				m.Set("sim_samples_per_second", float64(n)/sec)
			}
		}()
	}

	w := parallel.Workers(ctx, workers)
	if w > 1 && tr.Len() >= minParallelSamples {
		return runSharded(ctx, g, tr, inputIdx, w, hook, res)
	}

	st := newBlockState(g)
	for s := 0; s < tr.Len(); s += bitslice.Lanes {
		// ctxEvery is a multiple of the lane width, so block starts land on
		// exactly the check points the scalar loop honoured.
		if s%ctxEvery == 0 {
			if cerr := interrupt.Check(ctx, "sim: run", nil); cerr != nil {
				res.Vals = res.Vals[:s]
				res.OperandAB = res.OperandAB[:s]
				progress.End(hook, "simulate", fmt.Sprintf("interrupted at sample %d/%d", s, tr.Len()))
				return res, interrupt.Rewrap("sim: run", cerr, res)
			}
			progress.Tick(hook, "simulate", s, tr.Len())
		}
		lanes := tr.Len() - s
		if lanes > bitslice.Lanes {
			lanes = bitslice.Lanes
		}
		evalBlock(g, inputIdx, tr, s, lanes, k, res, st)
	}
	progress.End(hook, "simulate", fmt.Sprintf("%d samples", tr.Len()))
	return res, nil
}

// runSharded fans the samples out over w contiguous shards. Each worker
// accumulates a private K matrix and writes Vals/OperandAB into its own
// disjoint index range; the shard matrices merge in shard order afterwards.
// On interruption the partial Result covers the longest contiguous sample
// prefix — completed shards up to the first incomplete one plus that shard's
// finished samples — matching the shape a sequential run leaves behind.
func runSharded(ctx context.Context, g *dfg.Graph, tr *trace.Trace, inputIdx map[dfg.OpID]int, w int, hook progress.Hook, res *Result) (*Result, error) {
	bounds := chunkBounds(tr.Len(), w)
	shardK := make([]*KMatrix, w)
	shardDone := make([]int, w) // samples completed per shard
	var ticks atomic.Int64
	done, perr := parallel.ForEach(ctx, w, w, func(tctx context.Context, ci int) error {
		lo, hi := bounds[ci], bounds[ci+1]
		sk := newRunMatrix(g)
		shardK[ci] = sk
		st := newBlockState(g)
		for s := lo; s < hi; s += bitslice.Lanes {
			if (s-lo)%ctxEvery == 0 {
				if cerr := interrupt.Check(tctx, "sim: run", nil); cerr != nil {
					shardDone[ci] = s - lo
					return cerr
				}
				if s > lo {
					progress.Tick(hook, "simulate", int(ticks.Add(ctxEvery)), tr.Len())
				}
			}
			lanes := hi - s
			if lanes > bitslice.Lanes {
				lanes = bitslice.Lanes
			}
			evalBlock(g, inputIdx, tr, s, lanes, sk, res, st)
		}
		shardDone[ci] = hi - lo
		return nil
	})
	if perr == nil {
		for _, sk := range shardK {
			res.K.addAll(sk)
		}
		progress.End(hook, "simulate", fmt.Sprintf("%d samples", tr.Len()))
		return res, nil
	}

	// Interrupted: assemble the contiguous prefix.
	prefix := 0
	for ci := 0; ci < w; ci++ {
		if shardK[ci] != nil && (done[ci] || shardDone[ci] > 0) {
			// A fully completed shard contributes whole; the first
			// incomplete shard contributes its finished samples (its
			// private K covers exactly those).
			res.K.addAll(shardK[ci])
		}
		if !done[ci] {
			prefix = bounds[ci] + shardDone[ci]
			break
		}
		prefix = bounds[ci+1]
	}
	res.Vals = res.Vals[:prefix]
	res.OperandAB = res.OperandAB[:prefix]
	progress.End(hook, "simulate", fmt.Sprintf("interrupted at sample %d/%d", prefix, tr.Len()))
	return res, interrupt.Rewrap("sim: run", perr, res)
}
