package sim

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/trace"
)

func compile(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunComputesValues(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = (a + b) * 2 - b;
`)
	tr := trace.New([]string{"a", "b"}, 2)
	tr.Append([]uint8{10, 20})
	tr.Append([]uint8{200, 100})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	outID := g.Outputs()[0]
	if got := res.Vals[0][outID]; got != 40 { // (10+20)*2-20
		t.Errorf("sample 0 output = %d, want 40", got)
	}
	if got := res.Vals[1][outID]; got != 244 { // ((300 mod 256)*2 - 100) mod 256
		t.Errorf("sample 1 output = %d, want 244", got)
	}
}

func TestKMatrixCounts(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = a + b;
`)
	tr := trace.New([]string{"a", "b"}, 3)
	tr.Append([]uint8{3, 5})
	tr.Append([]uint8{5, 3}) // commutative: same canonical minterm
	tr.Append([]uint8{1, 1})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	addID := g.OpsOfClass(dfg.ClassAdd)[0]
	if got := res.K.Count(dfg.CanonMinterm(dfg.Add, 3, 5), addID); got != 2 {
		t.Errorf("count(3,5) = %d, want 2 (operand order must canonicalise)", got)
	}
	if got := res.K.Count(dfg.CanonMinterm(dfg.Add, 1, 1), addID); got != 1 {
		t.Errorf("count(1,1) = %d, want 1", got)
	}
	if got := res.K.OpTotal(addID); got != 3 {
		t.Errorf("OpTotal = %d, want 3", got)
	}
	if got := len(res.K.OpMinterms(addID)); got != 2 {
		t.Errorf("distinct minterms = %d, want 2", got)
	}
}

func TestSubNotCanonicalised(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = a - b;
`)
	tr := trace.New([]string{"a", "b"}, 2)
	tr.Append([]uint8{9, 4})
	tr.Append([]uint8{4, 9})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	subID := g.OpsOfClass(dfg.ClassAdd)[0]
	if got := res.K.Count(dfg.MkMinterm(9, 4), subID); got != 1 {
		t.Errorf("count(9,4) = %d, want 1", got)
	}
	if got := res.K.Count(dfg.MkMinterm(4, 9), subID); got != 1 {
		t.Errorf("count(4,9) = %d, want 1", got)
	}
}

func TestTopMinterms(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y, z;
y = a + b;
z = a + 7;
`)
	tr := trace.New([]string{"a", "b"}, 4)
	tr.Append([]uint8{7, 7})
	tr.Append([]uint8{7, 7})
	tr.Append([]uint8{7, 2})
	tr.Append([]uint8{1, 2})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	top := res.K.TopMinterms(g, dfg.ClassAdd, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// (7,7) occurs twice in y's add and three times in z's add (a=7 with
	// const 7 in the first three samples).
	if top[0].M != dfg.CanonMinterm(dfg.Add, 7, 7) || top[0].Count != 5 {
		t.Errorf("top[0] = %+v, want (7,7) x5", top[0])
	}
	if top[0].Count < top[1].Count || top[1].Count < top[2].Count {
		t.Error("TopMinterms not sorted by count")
	}
}

func TestTopMintermsDeterministicTies(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = a + b;
`)
	tr := trace.New([]string{"a", "b"}, 2)
	tr.Append([]uint8{1, 2})
	tr.Append([]uint8{3, 4})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	top := res.K.TopMinterms(g, dfg.ClassAdd, 2)
	if top[0].M >= top[1].M {
		t.Errorf("ties must break by minterm value: %v", top)
	}
}

func TestRunMissingInput(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = a + b;
`)
	tr := trace.New([]string{"a"}, 1)
	tr.Append([]uint8{1})
	_, err := Run(context.Background(), g, tr)
	if err == nil || !strings.Contains(err.Error(), "missing input") {
		t.Fatalf("err = %v, want missing input", err)
	}
}

func TestOperandABRaw(t *testing.T) {
	g := compile(t, `
kernel k;
input a, b;
output y;
y = a * b;
`)
	tr := trace.New([]string{"a", "b"}, 1)
	tr.Append([]uint8{200, 3})
	res, err := Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	mulID := g.OpsOfClass(dfg.ClassMul)[0]
	if got := res.OperandAB[0][mulID]; got != dfg.MkMinterm(200, 3) {
		t.Errorf("OperandAB = %v, want (200,3) uncanonicalised", got)
	}
}

// Property: for any trace, per-op totals equal the trace length and the sum
// of TopMinterms counts over all minterms equals (#class ops) * trace length.
func TestKMatrixConservationQuick(t *testing.T) {
	g, err := frontend.Compile(`
kernel k;
input a, b, c;
output y;
t = a + b;
u = t * c;
y = u + a;
`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		tr := trace.Generate(trace.ImageBlocks, []string{"a", "b", "c"}, 64, seed)
		res, err := Run(context.Background(), g, tr)
		if err != nil {
			return false
		}
		for _, id := range g.OpsOfClass(dfg.ClassAdd) {
			if res.K.OpTotal(id) != 64 {
				return false
			}
		}
		all := res.K.TopMinterms(g, dfg.ClassAdd, 1<<20)
		total := 0
		for _, mc := range all {
			total += mc.Count
		}
		return total == 2*64 // two add-class ops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewKMatrixAndAdd(t *testing.T) {
	k := NewKMatrix(4)
	m := dfg.MkMinterm(1, 2)
	k.Add(m, 2, 5)
	k.Add(m, 2, 3)
	if got := k.Count(m, 2); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if got := k.Count(m, 3); got != 0 {
		t.Fatalf("Count on untouched op = %d", got)
	}
	// Out-of-range op is a safe zero.
	if got := k.Count(m, 99); got != 0 {
		t.Fatalf("Count out of range = %d", got)
	}
	// Add on a nil row allocates.
	k2 := &KMatrix{perOp: make([]map[dfg.Minterm]int, 3)}
	k2.Add(m, 1, 2)
	if k2.Count(m, 1) != 2 {
		t.Fatal("Add on nil row failed")
	}
}
