package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"bindlock/internal/dfg"
	"bindlock/internal/interrupt"
	"bindlock/internal/progress"
	"bindlock/internal/trace"
)

// TestKMatrixOutOfRangeConsistency is the regression test for the
// bounds-check inconsistency: Count returned 0 for an out-of-range OpID
// while OpTotal, OpMinterms and Add panicked on the same argument.
func TestKMatrixOutOfRangeConsistency(t *testing.T) {
	k := NewKMatrix(2)
	m := dfg.MkMinterm(3, 4)
	const far = dfg.OpID(17)

	if got := k.Count(m, far); got != 0 {
		t.Errorf("Count out of range = %d, want 0", got)
	}
	if got := k.OpTotal(far); got != 0 {
		t.Errorf("OpTotal out of range = %d, want 0", got)
	}
	if got := k.OpMinterms(far); len(got) != 0 {
		t.Errorf("OpMinterms out of range = %v, want empty", got)
	}
	// Add grows the matrix instead of panicking, and the other accessors see
	// the new counts.
	k.Add(m, far, 6)
	if got := k.Count(m, far); got != 6 {
		t.Errorf("Count after growing Add = %d, want 6", got)
	}
	if got := k.OpTotal(far); got != 6 {
		t.Errorf("OpTotal after growing Add = %d, want 6", got)
	}
	if got := k.OpMinterms(far); len(got) != 1 || got[0] != m {
		t.Errorf("OpMinterms after growing Add = %v, want [%v]", got, m)
	}
	// Ops below the grown index remain zero.
	if got := k.OpTotal(9); got != 0 {
		t.Errorf("OpTotal on untouched grown op = %d, want 0", got)
	}
}

const shardKernel = `
kernel shard;
input a, b, c;
output y, z;
t = a + b;
u = t * c;
v = a * c;
y = u + v;
z = t - c;
`

// TestRunShardedDeterminism asserts the tentpole guarantee at the simulator
// layer: sharding samples across workers yields a Result bit-identical to
// the sequential run, for several worker counts.
func TestRunShardedDeterminism(t *testing.T) {
	g := compile(t, shardKernel)
	tr := trace.Generate(trace.ImageBlocks, []string{"a", "b", "c"}, 4*minParallelSamples, 7)

	seq, err := RunN(context.Background(), g, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par, err := RunN(context.Background(), g, tr, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: sharded Result differs from sequential", workers)
		}
	}
}

// TestRunShardedCancelPartial cancels a sharded run mid-flight and checks
// the partial Result has the sequential shape: a contiguous sample prefix
// whose values match the uninterrupted run, with the K matrix covering
// exactly that prefix.
func TestRunShardedCancelPartial(t *testing.T) {
	g := compile(t, shardKernel)
	total := 8 * minParallelSamples
	tr := trace.Generate(trace.ImageBlocks, []string{"a", "b", "c"}, total, 7)

	full, err := RunN(context.Background(), g, tr, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from the progress stream once simulation ticks start arriving,
	// so the pool is genuinely mid-flight.
	hooked := progress.NewContext(ctx, progress.Func(func(e progress.Event) {
		if e.Kind == progress.Step && e.Phase == "simulate" {
			cancel()
		}
	}))
	res, err := RunN(hooked, g, tr, 4)
	if err == nil {
		t.Fatal("cancelled sharded run returned nil error")
	}
	if !errors.Is(err, interrupt.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	partial, ok := interrupt.Partial[*Result](err)
	if !ok || partial != res {
		t.Fatal("typed error does not carry the partial Result")
	}
	n := len(res.Vals)
	if n >= total {
		t.Fatalf("partial covers all %d samples; cancellation had no effect", total)
	}
	if len(res.OperandAB) != n {
		t.Fatalf("OperandAB length %d != Vals length %d", len(res.OperandAB), n)
	}
	for s := 0; s < n; s++ {
		if !reflect.DeepEqual(res.Vals[s], full.Vals[s]) {
			t.Fatalf("partial Vals[%d] differ from the uninterrupted run", s)
		}
	}
	// K covers exactly the prefix: every FU op saw n applications.
	for _, id := range g.OpsOfClass(dfg.ClassAdd) {
		if got := res.K.OpTotal(id); got != n {
			t.Fatalf("partial OpTotal(%d) = %d, want prefix length %d", id, got, n)
		}
	}
}
