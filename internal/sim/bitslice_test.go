package sim

import (
	"context"
	"testing"

	"bindlock/internal/dfg"
	"bindlock/internal/trace"
)

// scalarRun drives the scalar reference evaluator (evalSample) over the whole
// trace, reproducing what Run produced before the bit-sliced migration.
func scalarRun(t *testing.T, g *dfg.Graph, tr *trace.Trace) *Result {
	t.Helper()
	inputIdx := map[dfg.OpID]int{}
	for _, id := range g.Inputs() {
		idx := tr.Index(g.Ops[id].Name)
		if idx < 0 {
			t.Fatalf("trace missing input %q", g.Ops[id].Name)
		}
		inputIdx[id] = idx
	}
	res := &Result{
		K:         newRunMatrix(g),
		Vals:      make([][]uint8, tr.Len()),
		OperandAB: make([][]dfg.Minterm, tr.Len()),
	}
	for s, sample := range tr.Samples {
		evalSample(g, inputIdx, sample, s, res.K, res)
	}
	return res
}

func requireSameResult(t *testing.T, g *dfg.Graph, want, got *Result) {
	t.Helper()
	if len(got.Vals) != len(want.Vals) {
		t.Fatalf("Vals length: got %d want %d", len(got.Vals), len(want.Vals))
	}
	for s := range want.Vals {
		for n := range want.Vals[s] {
			if got.Vals[s][n] != want.Vals[s][n] {
				t.Fatalf("Vals[%d][%d]: got %d want %d", s, n, got.Vals[s][n], want.Vals[s][n])
			}
			if got.OperandAB[s][n] != want.OperandAB[s][n] {
				t.Fatalf("OperandAB[%d][%d]: got %v want %v", s, n, got.OperandAB[s][n], want.OperandAB[s][n])
			}
		}
	}
	for _, op := range g.Ops {
		if !op.Kind.IsBinary() {
			continue
		}
		wantMs := want.K.OpMinterms(op.ID)
		gotMs := got.K.OpMinterms(op.ID)
		if len(gotMs) != len(wantMs) {
			t.Fatalf("op %d minterm support: got %d want %d", op.ID, len(gotMs), len(wantMs))
		}
		for _, m := range wantMs {
			if gc, wc := got.K.Count(m, op.ID), want.K.Count(m, op.ID); gc != wc {
				t.Fatalf("K[%v,%d]: got %d want %d", m, op.ID, gc, wc)
			}
		}
	}
}

// TestBitSlicedMatchesScalar is the scalar/bit-sliced differential: Run's
// 64-way block evaluator must reproduce the scalar interpreter bit-for-bit —
// values, raw operand pairs, and the full K matrix — across all binary kinds,
// multiple workload shapes, and trace lengths that exercise full blocks,
// partial tails, and sub-block traces.
func TestBitSlicedMatchesScalar(t *testing.T) {
	g := compile(t, `
kernel mixed;
input a, b, c;
output y, z;
t1 = a + b;
t2 = a - c;
t3 = t1 * t2;
t4 = absdiff(t3, b);
y = t4 * 3 + c;
z = absdiff(t1, t2);
`)
	for _, gen := range []trace.Generator{trace.Uniform, trace.ImageBlocks} {
		for _, n := range []int{1, 63, 64, 65, 500, 1024} {
			tr := trace.Generate(gen, []string{"a", "b", "c"}, n, 42)
			want := scalarRun(t, g, tr)
			got, err := RunN(context.Background(), g, tr, 1)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, g, want, got)
		}
	}
}

// TestBitSlicedShardedMatchesScalar repeats the differential through the
// sharded path, whose shard bounds are not lane-aligned.
func TestBitSlicedShardedMatchesScalar(t *testing.T) {
	g := compile(t, `
kernel sharded;
input a, b;
output y;
y = (a + b) * absdiff(a, b) - b;
`)
	tr := trace.Generate(trace.ImageBlocks, []string{"a", "b"}, 1500, 7)
	want := scalarRun(t, g, tr)
	for _, w := range []int{2, 3, 5} {
		got, err := RunN(context.Background(), g, tr, w)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, g, want, got)
	}
}
