package elaborate

import (
	"context"
	"testing"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/lockedsim"
	"bindlock/internal/locking"
	"bindlock/internal/mediabench"
)

// prepBench prepares a benchmark and binds all classes area-aware.
func prepBench(t *testing.T, name string, samples int) (*mediabench.Prepared, map[dfg.Class]*binding.Binding) {
	t.Helper()
	b, err := mediabench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Prepare(context.Background(), 3, samples, 11)
	if err != nil {
		t.Fatal(err)
	}
	bindings := map[dfg.Class]*binding.Binding{}
	for _, class := range []dfg.Class{dfg.ClassAdd, dfg.ClassMul} {
		if !p.HasClass(class) {
			continue
		}
		bd, err := (binding.AreaAware{}).Bind(&binding.Problem{
			G: p.G, Class: class, NumFUs: 3, K: p.Res.K, Res: p.Res,
		})
		if err != nil {
			t.Fatal(err)
		}
		bindings[class] = bd
	}
	return p, bindings
}

// TestElaborateMatchesSimulator is the central cross-validation: the
// gate-level elaboration of every benchmark must agree with the behavioural
// DFG interpreter on the whole workload.
func TestElaborateMatchesSimulator(t *testing.T) {
	for _, name := range []string{"fir", "jdmerge1", "motion2", "noisest2"} {
		p, bindings := prepBench(t, name, 40)
		res, err := Design(p.G, bindings, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outIDs := p.G.Outputs()
		for s, sample := range p.Trace.Samples {
			got, err := res.Circuit.Eval(PackInputs(sample), nil)
			if err != nil {
				t.Fatal(err)
			}
			vals := UnpackOutputs(got)
			for i, outID := range outIDs {
				want := p.Res.Vals[s][outID]
				if vals[i] != want {
					t.Fatalf("%s sample %d output %d: gates %d, simulator %d",
						name, s, i, vals[i], want)
				}
			}
		}
	}
}

// TestElaborateLockedCorrectKeyTransparent checks the locked elaboration is
// functionally identical to the clean design under the correct key.
func TestElaborateLockedCorrectKeyTransparent(t *testing.T) {
	p, bindings := prepBench(t, "jdmerge3", 60)
	top := p.Res.K.TopMinterms(p.G, dfg.ClassMul, 3)
	cfg, err := locking.NewConfig(dfg.ClassMul, 3, 2, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M, top[1].M}, {top[2].M}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Design(p.G, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}
	locked, err := Design(p.G, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(locked.CorrectKey) != 3*2*Width {
		t.Fatalf("key bits = %d, want %d", len(locked.CorrectKey), 3*2*Width)
	}
	if len(locked.KeyOfFU) != 2 {
		t.Fatalf("KeyOfFU = %v", locked.KeyOfFU)
	}
	for s, sample := range p.Trace.Samples {
		in := PackInputs(sample)
		want, err := clean.Circuit.Eval(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := locked.Circuit.Eval(in, locked.CorrectKey)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sample %d bit %d: correct key corrupts output", s, i)
			}
		}
	}
}

// TestElaborateWrongKeyMatchesBehaviouralModel checks gate-level corruption
// equals the lockedsim behavioural model when the wrong key decodes to
// operand pairs absent from the workload.
func TestElaborateWrongKeyMatchesBehaviouralModel(t *testing.T) {
	p, bindings := prepBench(t, "fir", 80)
	top := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 2)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 3, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M, top[1].M}})
	if err != nil {
		t.Fatal(err)
	}
	locked, err := Design(p.G, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Design(p.G, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong key: decode both blocks to (251, 253) / (247, 249) — operand
	// pairs that never appear in the adder workload (verified below).
	absent := []dfg.Minterm{dfg.MkMinterm(251, 253), dfg.MkMinterm(247, 249)}
	for _, id := range p.G.OpsOfClass(dfg.ClassAdd) {
		for _, m := range absent {
			if p.Res.K.Count(dfg.CanonMinterm(dfg.Add, m.A(), m.B()), id) != 0 {
				t.Skip("chosen absent minterm occurs in this workload")
			}
		}
	}
	var wrongKey []bool
	for _, m := range absent {
		pattern := uint64(m.A()) | uint64(m.B())<<Width
		wrongKey = append(wrongKey, pack16(pattern)...)
	}

	rep, err := lockedsim.Run(context.Background(), p.G, p.Trace, bindings[dfg.ClassAdd], cfg)
	if err != nil {
		t.Fatal(err)
	}
	gateCorruptedSamples := 0
	gateCorruptedOutputs := 0
	for _, sample := range p.Trace.Samples {
		in := PackInputs(sample)
		want, err := clean.Circuit.Eval(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := locked.Circuit.Eval(in, wrongKey)
		if err != nil {
			t.Fatal(err)
		}
		cleanVals := UnpackOutputs(want)
		gotVals := UnpackOutputs(got)
		corrupted := false
		for i := range cleanVals {
			if cleanVals[i] != gotVals[i] {
				gateCorruptedOutputs++
				corrupted = true
			}
		}
		if corrupted {
			gateCorruptedSamples++
		}
	}
	if gateCorruptedSamples != rep.CorruptedSamples {
		t.Errorf("gate-level corrupted samples = %d, behavioural model = %d",
			gateCorruptedSamples, rep.CorruptedSamples)
	}
	if gateCorruptedOutputs != rep.CorruptedOutputs {
		t.Errorf("gate-level corrupted outputs = %d, behavioural model = %d",
			gateCorruptedOutputs, rep.CorruptedOutputs)
	}
	if rep.Injections == 0 {
		t.Error("test vacuous: no injections occurred")
	}
}

func pack16(v uint64) []bool {
	out := make([]bool, 16)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

func TestDesignValidation(t *testing.T) {
	p, bindings := prepBench(t, "jdmerge1", 8)
	top := p.Res.K.TopMinterms(p.G, dfg.ClassMul, 1)
	cfg, err := locking.NewConfig(dfg.ClassMul, 3, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M}})
	if err != nil {
		t.Fatal(err)
	}
	// Locking without the class binding.
	if _, err := Design(p.G, map[dfg.Class]*binding.Binding{
		dfg.ClassAdd: bindings[dfg.ClassAdd],
	}, cfg); err == nil {
		t.Error("missing locked-class binding must error")
	}
	// Mislabelled bindings map.
	if _, err := Design(p.G, map[dfg.Class]*binding.Binding{
		dfg.ClassAdd: bindings[dfg.ClassMul],
		dfg.ClassMul: bindings[dfg.ClassMul],
	}, cfg); err == nil {
		t.Error("mislabelled bindings must error")
	}
	// Unscheduled graph.
	g := dfg.New("u")
	a := g.AddInput("a")
	g.AddOutput("y", g.AddBinary(dfg.Add, a, a))
	if _, err := Design(g, nil, nil); err == nil {
		t.Error("unscheduled graph must error")
	}
	// Non-critical-minterm scheme.
	bad := cfg.Clone()
	bad.Locks[0].Scheme = locking.FullLock
	if _, err := Design(p.G, bindings, bad); err == nil {
		t.Error("full-lock scheme must be rejected")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	sample := []uint8{0, 255, 7, 128}
	bits := PackInputs(sample)
	if len(bits) != 32 {
		t.Fatalf("bits = %d", len(bits))
	}
	back := UnpackOutputs(bits)
	for i := range sample {
		if back[i] != sample[i] {
			t.Fatalf("round trip: %v -> %v", sample, back)
		}
	}
}

// TestSharedKeyAcrossInstances checks that ops on the same locked FU share
// key inputs: the elaborated key count must be 2*Width*minterms per locked
// FU regardless of how many ops the FU executes.
func TestSharedKeyAcrossInstances(t *testing.T) {
	p, bindings := prepBench(t, "ecb_enc4", 8)
	top := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 2)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 3, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M, top[1].M}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Design(p.G, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lockedOps := 0
	for _, id := range p.G.OpsOfClass(dfg.ClassAdd) {
		if bindings[dfg.ClassAdd].FUOf(id) == 0 {
			lockedOps++
		}
	}
	if lockedOps < 2 {
		t.Fatalf("test vacuous: only %d ops on the locked FU", lockedOps)
	}
	if got := len(res.Circuit.Keys); got != 2*2*Width {
		t.Fatalf("key bits = %d, want %d (shared across %d op instances)",
			got, 2*2*Width, lockedOps)
	}
}
