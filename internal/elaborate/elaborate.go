// Package elaborate lowers a scheduled, bound data-flow graph into one flat
// gate-level netlist, with the locking configuration realised as SFLL-HD(0)
// hardware on the locked FU instances.
//
// Elaboration is the bridge between the architectural view (DFG, binding,
// locking.Config) and the gate-level view (netlist, SAT attack): every FU
// operation instantiates the gate-level datapath of its kind, and every
// operation bound to a locked FU additionally carries the FU's
// perturb/restore logic — crucially, operations on the same locked FU share
// the same physical key inputs, exactly as the ops time-share one locked
// unit in hardware.
//
// Two attack surfaces fall out (Sec. II-A): with scan access the adversary
// isolates one locked FU and attacks its 16-bit module input space; without
// scan the adversary sees only the primary I/O of the whole elaborated cone.
// The experiments package compares budgeted attacks on both.
package elaborate

import (
	"fmt"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/netlist"
)

// Width is the operand width of every FU (fixed by the dfg package's 8-bit
// semantics).
const Width = 8

// Result is an elaborated design.
type Result struct {
	// Circuit implements the DFG: one Width-bit input bus per DFG input
	// (in declaration order, LSB first), one output bus per DFG output.
	Circuit *netlist.Circuit
	// CorrectKey activates the design (empty when cfg is nil).
	CorrectKey []bool
	// KeyOfFU maps each locked FU index to its key bit range
	// [start, start+len) within the circuit's key bus.
	KeyOfFU map[int][2]int
}

// Design elaborates g under the given per-class bindings and locking
// configuration. cfg may be nil for an unlocked reference netlist; when
// non-nil, the binding for cfg.Class must be present.
func Design(g *dfg.Graph, bindings map[dfg.Class]*binding.Binding, cfg *locking.Config) (*Result, error) {
	if err := g.Validate(true); err != nil {
		return nil, err
	}
	for class, b := range bindings {
		if b == nil {
			continue
		}
		if b.Class != class {
			return nil, fmt.Errorf("elaborate: bindings key %v holds a %v binding", class, b.Class)
		}
		if err := b.Validate(g); err != nil {
			return nil, err
		}
	}
	var lockedBinding *binding.Binding
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		lockedBinding = bindings[cfg.Class]
		if lockedBinding == nil {
			return nil, fmt.Errorf("elaborate: locking targets %v but no binding given", cfg.Class)
		}
		for _, l := range cfg.Locks {
			if !l.Scheme.CriticalMinterm() {
				return nil, fmt.Errorf("elaborate: cannot realise %v at gate level here", l.Scheme)
			}
		}
	}

	c := netlist.New(g.Name)
	res := &Result{Circuit: c, KeyOfFU: map[int][2]int{}}

	// Key buses first (so key indices are stable regardless of graph
	// structure): 2*Width bits per locked minterm per locked FU.
	fuKeys := map[int][][]int{} // fu -> per-minterm key bus
	if cfg != nil {
		for _, l := range cfg.Locks {
			start := len(c.Keys)
			for _, m := range l.Minterms {
				bus := make([]int, 2*Width)
				for i := range bus {
					bus[i] = c.AddKey()
				}
				fuKeys[l.FU] = append(fuKeys[l.FU], bus)
				pattern := uint64(m.A()) | uint64(m.B())<<Width
				res.CorrectKey = append(res.CorrectKey, netlist.Uint64ToBits(pattern, 2*Width)...)
			}
			res.KeyOfFU[l.FU] = [2]int{start, len(c.Keys)}
		}
	}

	// Elaborate ops in topological order.
	bus := make([][]int, len(g.Ops))
	for _, op := range g.Ops {
		switch op.Kind {
		case dfg.Input:
			b := make([]int, Width)
			for i := range b {
				b[i] = c.AddInput()
			}
			bus[op.ID] = b
		case dfg.Const:
			bus[op.ID] = netlist.ConstBus(c, uint64(op.Val), Width)
		case dfg.Output:
			for _, w := range bus[op.Args[0]] {
				c.MarkOutput(w)
			}
		default:
			a := bus[op.Args[0]]
			b := bus[op.Args[1]]
			var out []int
			switch op.Kind {
			case dfg.Add:
				out = netlist.AddBus(c, a, b)
			case dfg.Sub:
				out = netlist.SubBus(c, a, b)
			case dfg.AbsDiff:
				out = netlist.AbsDiffBus(c, a, b)
			case dfg.Mul:
				out = netlist.MulBus(c, a, b)
			default:
				return nil, fmt.Errorf("elaborate: unsupported kind %v", op.Kind)
			}
			if cfg != nil && dfg.ClassOf(op.Kind) == cfg.Class {
				if l := cfg.LockOf(lockedBinding.FUOf(op.ID)); l != nil {
					out = lockOpInstance(c, op.Kind, a, b, out, l, fuKeys[l.FU])
				}
			}
			bus[op.ID] = out
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("elaborate: produced invalid netlist: %w", err)
	}
	return res, nil
}

// lockOpInstance wraps one FU-op instance with the locked FU's SFLL-HD(0)
// perturb/restore logic: output bit 0 flips when the operand pair matches a
// protected minterm XOR when it matches the corresponding key block. For
// commutative kinds both operand orders match, mirroring the canonical
// minterm semantics of the behavioural model.
func lockOpInstance(c *netlist.Circuit, kind dfg.Kind, a, b, out []int,
	l *locking.FULock, keys [][]int) []int {
	matchPair := func(xa, xb []int) int {
		// xa/xb are either constant patterns (nil marker handled by caller)
		// or wire buses; here both are wires.
		return c.And(equalsWires(c, a, xa), equalsWires(c, b, xb))
	}
	flip := -1
	for i, m := range l.Minterms {
		// Perturb: input == protected minterm (order-insensitive for
		// commutative kinds).
		pa := netlist.ConstBus(c, uint64(m.A()), Width)
		pb := netlist.ConstBus(c, uint64(m.B()), Width)
		perturb := matchPair(pa, pb)
		if kind.Commutative() && m.A() != m.B() {
			perturb = c.Or(perturb, matchPair(pb, pa))
		}
		// Restore: input == key block (same order insensitivity).
		ka := keys[i][:Width]
		kb := keys[i][Width:]
		restore := matchPair(ka, kb)
		if kind.Commutative() {
			restore = c.Or(restore, matchPair(kb, ka))
		}
		pair := c.Xor(perturb, restore)
		if flip < 0 {
			flip = pair
		} else {
			flip = c.Xor(flip, pair)
		}
	}
	if flip < 0 {
		return out
	}
	locked := append([]int(nil), out...)
	locked[0] = c.Xor(out[0], flip)
	return locked
}

// equalsWires compares two wire buses bit by bit.
func equalsWires(c *netlist.Circuit, a, b []int) int {
	match := -1
	for i := range a {
		eq := c.Xnor(a[i], b[i])
		if match < 0 {
			match = eq
		} else {
			match = c.And(match, eq)
		}
	}
	return match
}

// PackInputs flattens one trace sample (in DFG input declaration order) into
// the elaborated circuit's input bit vector.
func PackInputs(sample []uint8) []bool {
	out := make([]bool, 0, len(sample)*Width)
	for _, v := range sample {
		out = append(out, netlist.Uint64ToBits(uint64(v), Width)...)
	}
	return out
}

// UnpackOutputs splits the circuit's output bits into 8-bit values, one per
// DFG output in declaration order.
func UnpackOutputs(bits []bool) []uint8 {
	out := make([]uint8, 0, len(bits)/Width)
	for i := 0; i+Width <= len(bits); i += Width {
		out = append(out, uint8(netlist.BitsToUint64(bits[i:i+Width])))
	}
	return out
}
