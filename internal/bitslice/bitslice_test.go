package bitslice

import (
	"math/bits"
	"math/rand"
	"testing"

	"bindlock/internal/dfg"
)

func randLanes(rng *rand.Rand, n int) []uint8 {
	vals := make([]uint8, n)
	for i := range vals {
		vals[i] = uint8(rng.Intn(256))
	}
	return vals
}

// TestPackGetRoundTrip pins the lane encoding: Pack then Get is the identity
// and padding lanes read back zero.
func TestPackGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(Lanes)
		vals := randLanes(rng, n)
		v := Pack(vals)
		for i, want := range vals {
			if got := v.Get(i); got != want {
				t.Fatalf("lane %d: got %d want %d", i, got, want)
			}
		}
		for i := n; i < Lanes; i++ {
			if got := v.Get(i); got != 0 {
				t.Fatalf("padding lane %d: got %d want 0", i, got)
			}
		}
	}
}

func TestSplat(t *testing.T) {
	for _, x := range []uint8{0, 1, 0x80, 0xAB, 0xFF} {
		v := Splat(x)
		for i := 0; i < Lanes; i++ {
			if got := v.Get(i); got != x {
				t.Fatalf("Splat(%d) lane %d: got %d", x, i, got)
			}
		}
	}
}

// TestEvalMatchesScalar drives every binary kind over random lane vectors and
// checks each lane against dfg.EvalKind — the bit-identity contract sim and
// lockedsim rely on.
func TestEvalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.AbsDiff, dfg.Mul}
	for trial := 0; trial < 200; trial++ {
		as := randLanes(rng, Lanes)
		bs := randLanes(rng, Lanes)
		va, vb := Pack(as), Pack(bs)
		for _, k := range kinds {
			out := Eval(k, va, vb)
			for i := 0; i < Lanes; i++ {
				want := dfg.EvalKind(k, as[i], bs[i])
				if got := out.Get(i); got != want {
					t.Fatalf("%v(%d,%d) lane %d: got %d want %d", k, as[i], bs[i], i, got, want)
				}
			}
		}
	}
}

// TestEvalEdgeCases hits the carry/borrow corners the random sweep might
// miss: full wraparound, equal operands, extremes.
func TestEvalEdgeCases(t *testing.T) {
	pairs := [][2]uint8{
		{0, 0}, {0xFF, 0xFF}, {0xFF, 1}, {1, 0xFF}, {0x80, 0x80},
		{0x7F, 0x81}, {0, 0xFF}, {0xFF, 0}, {16, 16}, {255, 2},
	}
	as := make([]uint8, len(pairs))
	bs := make([]uint8, len(pairs))
	for i, p := range pairs {
		as[i], bs[i] = p[0], p[1]
	}
	va, vb := Pack(as), Pack(bs)
	for _, k := range []dfg.Kind{dfg.Add, dfg.Sub, dfg.AbsDiff, dfg.Mul} {
		out := Eval(k, va, vb)
		for i := range pairs {
			want := dfg.EvalKind(k, as[i], bs[i])
			if got := out.Get(i); got != want {
				t.Fatalf("%v(%d,%d): got %d want %d", k, as[i], bs[i], got, want)
			}
		}
	}
}

func TestNeqAndEqConst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		as := randLanes(rng, Lanes)
		bs := randLanes(rng, Lanes)
		// Force some equal lanes so both mask polarities are exercised.
		for i := 0; i < Lanes; i += 3 {
			bs[i] = as[i]
		}
		va, vb := Pack(as), Pack(bs)
		neq := Neq(va, vb)
		x := uint8(rng.Intn(256))
		eqx := EqConst(va, x)
		for i := 0; i < Lanes; i++ {
			if got, want := neq>>i&1 == 1, as[i] != bs[i]; got != want {
				t.Fatalf("Neq lane %d: got %v want %v", i, got, want)
			}
			if got, want := eqx>>i&1 == 1, as[i] == x; got != want {
				t.Fatalf("EqConst lane %d: got %v want %v", i, got, want)
			}
		}
	}
}

func TestXorMasked(t *testing.T) {
	as := make([]uint8, Lanes)
	for i := range as {
		as[i] = uint8(i * 7)
	}
	v := Pack(as)
	mask := uint64(0xA5A5_5A5A_DEAD_BEEF)
	out := XorMasked(v, mask, 0x03)
	for i := 0; i < Lanes; i++ {
		want := as[i]
		if mask>>i&1 == 1 {
			want ^= 0x03
		}
		if got := out.Get(i); got != want {
			t.Fatalf("lane %d: got %d want %d", i, got, want)
		}
	}
}

// TestMatchCanon checks the canonical-minterm match mask against the scalar
// definition for commutative and non-commutative kinds, including the
// non-canonical-minterm (never matches) case.
func TestMatchCanon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kinds := []dfg.Kind{dfg.Add, dfg.Sub, dfg.AbsDiff, dfg.Mul}
	for trial := 0; trial < 100; trial++ {
		as := randLanes(rng, Lanes)
		bs := randLanes(rng, Lanes)
		// Small operand domain so matches actually occur.
		for i := range as {
			as[i] &= 3
			bs[i] &= 3
		}
		va, vb := Pack(as), Pack(bs)
		for _, k := range kinds {
			lm := dfg.MkMinterm(uint8(rng.Intn(4)), uint8(rng.Intn(4)))
			mask := MatchCanon(k, va, vb, lm)
			for i := 0; i < Lanes; i++ {
				want := dfg.CanonMinterm(k, as[i], bs[i]) == lm
				if got := mask>>i&1 == 1; got != want {
					t.Fatalf("%v lm=%v lane %d (a=%d b=%d): got %v want %v",
						k, lm, i, as[i], bs[i], got, want)
				}
			}
		}
	}
}

// TestMatchCanonCounts sanity-checks popcount aggregation, the way lockedsim
// consumes match masks.
func TestMatchCanonCounts(t *testing.T) {
	as := []uint8{1, 2, 2, 1, 3}
	bs := []uint8{2, 1, 2, 1, 0}
	va, vb := Pack(as), Pack(bs)
	laneMask := uint64(1<<len(as)) - 1
	got := bits.OnesCount64(MatchCanon(dfg.Add, va, vb, dfg.MkMinterm(1, 2)) & laneMask)
	if got != 2 { // lanes 0 and 1: canon(1,2) and canon(2,1)
		t.Fatalf("commutative count: got %d want 2", got)
	}
	got = bits.OnesCount64(MatchCanon(dfg.Sub, va, vb, dfg.MkMinterm(1, 2)) & laneMask)
	if got != 1 { // lane 0 only: Sub is not canonicalised
		t.Fatalf("non-commutative count: got %d want 1", got)
	}
}
