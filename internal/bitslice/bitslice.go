// Package bitslice evaluates the dfg value domain (uint8 arithmetic mod 256)
// 64 samples at a time in bit-sliced form: a Vec stores 64 lanes as eight
// uint64 bit-planes, so one ripple-carry pass over the planes adds all 64
// lanes with word-parallel AND/XOR/OR instead of 64 scalar adds. internal/sim
// and internal/lockedsim interpret whole trace blocks through this package
// and unpack (or popcount) afterwards; results are bit-identical to the
// scalar interpreter because every operation here implements exactly
// dfg.EvalKind's semantics lane-wise.
package bitslice

import (
	"fmt"

	"bindlock/internal/dfg"
)

// Lanes is the number of 8-bit samples a Vec carries.
const Lanes = 64

// Vec is a bit-sliced vector of 64 uint8 lanes: bit i of plane v[b] is bit b
// of lane i.
type Vec [8]uint64

// Splat returns a Vec with every lane equal to x.
func Splat(x uint8) Vec {
	var v Vec
	for b := 0; b < 8; b++ {
		if x&(1<<b) != 0 {
			v[b] = ^uint64(0)
		}
	}
	return v
}

// Pack loads vals into lanes 0..len(vals)-1 (len(vals) <= Lanes); remaining
// lanes are zero.
func Pack(vals []uint8) Vec {
	var v Vec
	for i, x := range vals {
		for b := 0; b < 8; b++ {
			v[b] |= uint64(x>>b&1) << i
		}
	}
	return v
}

// Get extracts the value of one lane.
func (v Vec) Get(lane int) uint8 {
	var x uint8
	for b := 0; b < 8; b++ {
		x |= uint8(v[b]>>lane&1) << b
	}
	return x
}

// Add returns a+b per lane (mod 256) via a ripple-carry pass.
func Add(a, b Vec) Vec {
	var out Vec
	var carry uint64
	for i := 0; i < 8; i++ {
		axb := a[i] ^ b[i]
		out[i] = axb ^ carry
		carry = (a[i] & b[i]) | (axb & carry)
	}
	return out
}

// subBorrow returns a-b per lane (mod 256) and the final borrow mask: bit i
// of the mask is set iff lane i underflowed, i.e. a < b unsigned.
func subBorrow(a, b Vec) (Vec, uint64) {
	var out Vec
	var borrow uint64
	for i := 0; i < 8; i++ {
		axb := a[i] ^ b[i]
		out[i] = axb ^ borrow
		borrow = (^a[i] & b[i]) | (^axb & borrow)
	}
	return out, borrow
}

// Sub returns a-b per lane (mod 256).
func Sub(a, b Vec) Vec {
	d, _ := subBorrow(a, b)
	return d
}

// AbsDiff returns |a-b| per lane: the borrow mask of a-b selects b-a in the
// lanes where a < b.
func AbsDiff(a, b Vec) Vec {
	ab, borrow := subBorrow(a, b)
	ba, _ := subBorrow(b, a)
	var out Vec
	for i := 0; i < 8; i++ {
		out[i] = (ab[i] &^ borrow) | (ba[i] & borrow)
	}
	return out
}

// Mul returns a*b per lane (mod 256) by shift-add: for each set bit-plane k
// of b, a<<k is added into the accumulator under that plane's lane mask.
func Mul(a, b Vec) Vec {
	var acc Vec
	for k := 0; k < 8; k++ {
		m := b[k]
		if m == 0 {
			continue
		}
		var carry uint64
		for j := k; j < 8; j++ {
			ad := a[j-k] & m
			axb := acc[j] ^ ad
			s := axb ^ carry
			carry = (acc[j] & ad) | (axb & carry)
			acc[j] = s
		}
	}
	return acc
}

// Eval applies binary kind k lane-wise, mirroring dfg.EvalKind. It panics on
// non-binary kinds, like the scalar evaluator.
func Eval(k dfg.Kind, a, b Vec) Vec {
	switch k {
	case dfg.Add:
		return Add(a, b)
	case dfg.Sub:
		return Sub(a, b)
	case dfg.AbsDiff:
		return AbsDiff(a, b)
	case dfg.Mul:
		return Mul(a, b)
	}
	panic(fmt.Sprintf("bitslice: Eval(%v) is not a binary kind", k))
}

// Neq returns the mask of lanes where a and b differ.
func Neq(a, b Vec) uint64 {
	var diff uint64
	for i := 0; i < 8; i++ {
		diff |= a[i] ^ b[i]
	}
	return diff
}

// EqConst returns the mask of lanes where v equals the scalar x.
func EqConst(v Vec, x uint8) uint64 {
	neq := uint64(0)
	for b := 0; b < 8; b++ {
		plane := v[b]
		if x&(1<<b) != 0 {
			plane = ^plane
		}
		neq |= plane
	}
	return ^neq
}

// XorMasked flips the bits of x in every lane selected by mask.
func XorMasked(v Vec, mask uint64, x uint8) Vec {
	for b := 0; b < 8; b++ {
		if x&(1<<b) != 0 {
			v[b] ^= mask
		}
	}
	return v
}

// MatchCanon returns the mask of lanes whose canonicalised operand pair
// equals minterm lm, i.e. lanes where dfg.CanonMinterm(k, a, b) == lm.
// A non-canonical lm under a commutative kind can never match (the scalar
// comparison is against an always-canonical minterm), so the mask is zero.
func MatchCanon(k dfg.Kind, a, b Vec, lm dfg.Minterm) uint64 {
	la, lb := lm.A(), lm.B()
	if k.Commutative() {
		if la > lb {
			return 0
		}
		m := EqConst(a, la) & EqConst(b, lb)
		if la != lb {
			m |= EqConst(a, lb) & EqConst(b, la)
		}
		return m
	}
	return EqConst(a, la) & EqConst(b, lb)
}
