package lockedsim

import (
	"context"
	"testing"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/mediabench"
	"bindlock/internal/trace"
)

// scalarRun is the pre-bit-slicing scalar simulation loop, kept verbatim as
// the differential reference for Run's aggregated block evaluator.
func scalarRun(t *testing.T, g *dfg.Graph, tr *trace.Trace, b *binding.Binding, cfg *locking.Config) Report {
	t.Helper()
	inputIdx := map[dfg.OpID]int{}
	for _, id := range g.Inputs() {
		idx := tr.Index(g.Ops[id].Name)
		if idx < 0 {
			t.Fatalf("trace missing input %q", g.Ops[id].Name)
		}
		inputIdx[id] = idx
	}
	lockOf := make([]*locking.FULock, len(g.Ops))
	for _, id := range g.OpsOfClass(cfg.Class) {
		lockOf[id] = cfg.LockOf(b.FUOf(id))
	}
	rep := Report{Samples: tr.Len()}
	clean := make([]uint8, len(g.Ops))
	dirty := make([]uint8, len(g.Ops))
	for _, sample := range tr.Samples {
		corrupted := false
		for _, op := range g.Ops {
			switch op.Kind {
			case dfg.Input:
				clean[op.ID] = sample[inputIdx[op.ID]]
				dirty[op.ID] = clean[op.ID]
			case dfg.Const:
				clean[op.ID] = op.Val
				dirty[op.ID] = op.Val
			case dfg.Output:
				clean[op.ID] = clean[op.Args[0]]
				dirty[op.ID] = dirty[op.Args[0]]
				rep.TotalOutputs++
				if clean[op.ID] != dirty[op.ID] {
					rep.CorruptedOutputs++
					corrupted = true
				}
			default:
				ca, cb := clean[op.Args[0]], clean[op.Args[1]]
				clean[op.ID] = dfg.EvalKind(op.Kind, ca, cb)
				da, db := dirty[op.Args[0]], dirty[op.Args[1]]
				if l := lockOf[op.ID]; l != nil {
					cm := dfg.CanonMinterm(op.Kind, ca, cb)
					dm := dfg.CanonMinterm(op.Kind, da, db)
					for _, lm := range l.Minterms {
						if lm == cm {
							rep.CleanInjections++
						}
						if lm == dm {
							rep.Injections++
						}
					}
					dirty[op.ID] = l.Apply(op.Kind, da, db, true)
				} else {
					dirty[op.ID] = dfg.EvalKind(op.Kind, da, db)
				}
			}
		}
		if corrupted {
			rep.CorruptedSamples++
		}
	}
	return rep
}

// TestBitSlicedMatchesScalarKernels is the scalar/bit-sliced differential on
// real benchmarks: every Report counter from the aggregated popcount path
// must equal the scalar per-sample loop, across trace lengths exercising
// full blocks, partial tails, and sub-block traces.
func TestBitSlicedMatchesScalarKernels(t *testing.T) {
	for _, name := range []string{"fir", "jdmerge3", "motion2", "dct"} {
		bench, err := mediabench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 63, 64, 65, 250, 300} {
			p, err := bench.Prepare(context.Background(), 3, n, 5)
			if err != nil {
				t.Fatal(err)
			}
			tr := bench.Workload(p.G, n, 5)
			top := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 4)
			if len(top) < 4 {
				t.Fatalf("%s: only %d minterms", name, len(top))
			}
			cfg, err := locking.NewConfig(dfg.ClassAdd, 3, 2, locking.SFLLRem,
				[][]dfg.Minterm{{top[0].M, top[1].M}, {top[2].M, top[3].M}})
			if err != nil {
				t.Fatal(err)
			}
			bd, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
				G: p.G, Class: dfg.ClassAdd, NumFUs: 3, K: p.Res.K, Lock: cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := scalarRun(t, p.G, tr, bd, cfg)
			got, err := Run(context.Background(), p.G, tr, bd, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s n=%d: bit-sliced report %+v != scalar %+v", name, n, got, want)
			}
		}
	}
}

// TestBitSlicedNonCanonicalMintermNeverMatches pins the canonicalisation
// corner the mask path must reproduce: a non-canonical minterm (a > b) of a
// commutative kind never matches a canonicalised application, so it injects
// nothing — exactly like the scalar comparison against CanonMinterm.
func TestBitSlicedNonCanonicalMintermNeverMatches(t *testing.T) {
	g, tr, res := prep(t, passthrough, 1, trace.Uniform, 200, 9)
	top := res.K.TopMinterms(g, dfg.ClassAdd, 1)
	hot := top[0].M
	if hot.A() == hot.B() {
		t.Skip("hottest minterm is symmetric; cannot form a non-canonical twin")
	}
	// Swap the operands: same unordered pair, non-canonical encoding.
	swapped := dfg.MkMinterm(hot.B(), hot.A())
	cfg := &locking.Config{Class: dfg.ClassAdd, NumFUs: 1, Locks: []locking.FULock{
		{FU: 0, Scheme: locking.SFLLRem, KeyBits: 16, Minterms: []dfg.Minterm{swapped}},
	}}
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		g.OpsOfClass(dfg.ClassAdd)[0]: 0,
	}}
	rep, err := Run(context.Background(), g, tr, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections != 0 || rep.CleanInjections != 0 || rep.CorruptedOutputs != 0 {
		t.Errorf("non-canonical minterm matched: %+v", rep)
	}
	if want := scalarRun(t, g, tr, b, cfg); rep != want {
		t.Errorf("bit-sliced %+v != scalar %+v", rep, want)
	}
}
