// Package lockedsim executes a bound, locked design functionally — locked
// FUs behaviourally corrupt protected minterms under a wrong key — and
// measures application-level output corruption.
//
// The paper's cost function (Eqn. 2) counts error-injection events: how
// often a locked input reaches a locked FU. Whether an injected error
// actually corrupts a primary output depends on downstream masking
// ("application-level correctness", Li et al. [15], the paper's motivation
// for needing *many* injections). This package closes that loop: it runs
// the same workload through the locked datapath and reports, alongside the
// injection count (which must equal Eqn. 2's E — the packages cross-check
// each other), how many primary output values and how many workload samples
// actually corrupt.
package lockedsim

import (
	"context"
	"fmt"
	"math/bits"

	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"

	"bindlock/internal/binding"
	"bindlock/internal/bitslice"
	"bindlock/internal/dfg"
	"bindlock/internal/locking"
	"bindlock/internal/trace"
)

// Report summarises one locked-design simulation.
type Report struct {
	// Samples is the workload length.
	Samples int
	// Injections counts locked-input applications to locked FUs as seen by
	// the wrong-keyed IC (on the corrupted data stream).
	Injections int
	// CleanInjections counts locked-input applications on the clean data
	// stream — by construction exactly the paper's Eqn. 2 cost E, so
	// lockedsim and binding.ApplicationErrors cross-validate each other.
	// Injections can drift from CleanInjections once corrupted values
	// propagate into downstream operands.
	CleanInjections int
	// CorruptedOutputs counts primary-output values differing from the
	// clean design.
	CorruptedOutputs int
	// TotalOutputs is Samples x primary output count.
	TotalOutputs int
	// CorruptedSamples counts samples with at least one corrupted output —
	// the application error events an end user observes.
	CorruptedSamples int
}

// OutputErrorRate returns the fraction of corrupted primary-output values.
func (r Report) OutputErrorRate() float64 {
	if r.TotalOutputs == 0 {
		return 0
	}
	return float64(r.CorruptedOutputs) / float64(r.TotalOutputs)
}

// SampleErrorRate returns the fraction of workload samples with visible
// corruption.
func (r Report) SampleErrorRate() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.CorruptedSamples) / float64(r.Samples)
}

// Run simulates g over tr twice — once clean, once with cfg's locked FUs
// corrupting under a wrong key — using binding b to decide which operations
// execute on locked units. The binding and configuration must agree on class
// and allocation. Cancellation is honoured at sample granularity; an
// interrupted run returns the Report accumulated so far (Samples reduced to
// the completed count) inside the typed error.
func Run(ctx context.Context, g *dfg.Graph, tr *trace.Trace, b *binding.Binding, cfg *locking.Config) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Class != b.Class || cfg.NumFUs != b.NumFUs {
		return Report{}, fmt.Errorf("lockedsim: binding (%v/%d) and locking (%v/%d) disagree",
			b.Class, b.NumFUs, cfg.Class, cfg.NumFUs)
	}
	if err := b.Validate(g); err != nil {
		return Report{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	inputIdx := map[dfg.OpID]int{}
	for _, id := range g.Inputs() {
		idx := tr.Index(g.Ops[id].Name)
		if idx < 0 {
			return Report{}, fmt.Errorf("lockedsim: trace missing input %q", g.Ops[id].Name)
		}
		inputIdx[id] = idx
	}
	// lockOf[op] is the lock governing the FU the op is bound to (nil if
	// the op runs on an unlocked unit or another class).
	lockOf := make([]*locking.FULock, len(g.Ops))
	for _, id := range g.OpsOfClass(cfg.Class) {
		lockOf[id] = cfg.LockOf(b.FUOf(id))
	}

	rep := Report{Samples: tr.Len()}
	if m := metrics.FromContext(ctx); m != nil {
		// rep.Samples is reduced to the completed count on interruption, so
		// the deferred reads cover exactly the work that happened.
		defer m.Timer("lockedsim_run_seconds")()
		defer func() {
			m.Add("lockedsim_samples_total", int64(rep.Samples))
			m.Add("lockedsim_injections_total", int64(rep.Injections))
		}()
	}
	// The simulation is 64-way bit-sliced (see internal/bitslice): each graph
	// walk evaluates a block of 64 samples in clean and corrupted form at
	// once, and every Report counter aggregates by popcount over lane masks
	// instead of per-sample branches — injection matches are canonical-minterm
	// equality masks, output corruption is a clean-vs-dirty difference mask.
	// Counts are bit-identical to the scalar loop (pinned by the package's
	// differential test) because each mask bit is exactly the scalar
	// predicate for that lane. Tail blocks shorter than 64 lanes are handled
	// by masking the padding lanes out of every count.
	clean := make([]bitslice.Vec, len(g.Ops))
	dirty := make([]bitslice.Vec, len(g.Ops))
	var buf [bitslice.Lanes]uint8
	for si := 0; si < tr.Len(); si += bitslice.Lanes {
		// Block starts land on every 256-sample boundary the scalar loop
		// checked, so interruption points are unchanged.
		if si%256 == 0 {
			if cerr := interrupt.Check(ctx, "lockedsim: run", nil); cerr != nil {
				rep.Samples = si
				return rep, interrupt.Rewrap("lockedsim: run", cerr, rep)
			}
		}
		lanes := tr.Len() - si
		if lanes > bitslice.Lanes {
			lanes = bitslice.Lanes
		}
		laneMask := ^uint64(0)
		if lanes < bitslice.Lanes {
			laneMask = 1<<lanes - 1
		}
		var corruptedLanes uint64
		for _, op := range g.Ops {
			switch op.Kind {
			case dfg.Input:
				idx := inputIdx[op.ID]
				for l := 0; l < lanes; l++ {
					buf[l] = tr.Samples[si+l][idx]
				}
				clean[op.ID] = bitslice.Pack(buf[:lanes])
				dirty[op.ID] = clean[op.ID]
			case dfg.Const:
				clean[op.ID] = bitslice.Splat(op.Val)
				dirty[op.ID] = clean[op.ID]
			case dfg.Output:
				clean[op.ID] = clean[op.Args[0]]
				dirty[op.ID] = dirty[op.Args[0]]
				rep.TotalOutputs += lanes
				diff := bitslice.Neq(clean[op.ID], dirty[op.ID]) & laneMask
				rep.CorruptedOutputs += bits.OnesCount64(diff)
				corruptedLanes |= diff
			default:
				ca, cb := clean[op.Args[0]], clean[op.Args[1]]
				clean[op.ID] = bitslice.Eval(op.Kind, ca, cb)
				da, db := dirty[op.Args[0]], dirty[op.Args[1]]
				out := bitslice.Eval(op.Kind, da, db)
				if l := lockOf[op.ID]; l != nil {
					var dirtyMatch uint64
					for _, lm := range l.Minterms {
						mc := bitslice.MatchCanon(op.Kind, ca, cb, lm) & laneMask
						md := bitslice.MatchCanon(op.Kind, da, db, lm) & laneMask
						rep.CleanInjections += bits.OnesCount64(mc)
						rep.Injections += bits.OnesCount64(md)
						dirtyMatch |= md
					}
					out = bitslice.XorMasked(out, dirtyMatch, locking.CorruptionMask)
				}
				dirty[op.ID] = out
			}
		}
		rep.CorruptedSamples += bits.OnesCount64(corruptedLanes)
	}
	return rep, nil
}
