package lockedsim

import (
	"context"
	"testing"
	"testing/quick"

	"bindlock/internal/binding"
	"bindlock/internal/dfg"
	"bindlock/internal/frontend"
	"bindlock/internal/locking"
	"bindlock/internal/mediabench"
	"bindlock/internal/sched"
	"bindlock/internal/sim"
	"bindlock/internal/trace"
)

// prep compiles, schedules and simulates a kernel for locked simulation.
func prep(t *testing.T, src string, fus int, gen trace.Generator, n int, seed int64) (*dfg.Graph, *trace.Trace, *sim.Result) {
	t.Helper()
	g, err := frontend.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cons := sched.Constraints{MaxFUs: map[dfg.Class]int{dfg.ClassAdd: fus, dfg.ClassMul: fus}}
	if _, err := sched.PathBased(g, cons); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, id := range g.Inputs() {
		names = append(names, g.Ops[id].Name)
	}
	tr := trace.Generate(gen, names, n, seed)
	res, err := sim.Run(context.Background(), g, tr)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr, res
}

const passthrough = `
kernel pt;
input a, b;
output y;
y = a + b;
`

func TestDirectCorruption(t *testing.T) {
	// One add feeding the output directly: every injection is visible.
	g, tr, res := prep(t, passthrough, 1, trace.Uniform, 200, 1)
	top := res.K.TopMinterms(g, dfg.ClassAdd, 1)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 1, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M}})
	if err != nil {
		t.Fatal(err)
	}
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		g.OpsOfClass(dfg.ClassAdd)[0]: 0,
	}}
	rep, err := Run(context.Background(), g, tr, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections != top[0].Count {
		t.Errorf("injections = %d, want %d", rep.Injections, top[0].Count)
	}
	if rep.CleanInjections != rep.Injections {
		t.Errorf("clean injections = %d, dirty = %d; no upstream lock exists", rep.CleanInjections, rep.Injections)
	}
	if rep.CorruptedOutputs != rep.Injections {
		t.Errorf("corrupted outputs = %d, want every injection visible (%d)",
			rep.CorruptedOutputs, rep.Injections)
	}
	if rep.CorruptedSamples != rep.Injections {
		t.Errorf("corrupted samples = %d, want %d", rep.CorruptedSamples, rep.Injections)
	}
	if rep.Samples != 200 || rep.TotalOutputs != 200 {
		t.Errorf("bookkeeping: %+v", rep)
	}
	if rep.OutputErrorRate() <= 0 || rep.SampleErrorRate() <= 0 {
		t.Error("rates must be positive")
	}
}

func TestCleanInjectionsMatchEqn2(t *testing.T) {
	// Cross-validation of two independent implementations: the lockedsim
	// clean-stream injection count must equal binding.ApplicationErrors
	// (Eqn. 2 evaluated from the K matrix) for every benchmark.
	for _, name := range []string{"fir", "jdmerge3", "motion2"} {
		bench, err := mediabench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Prepare(context.Background(), 3, 250, 5)
		if err != nil {
			t.Fatal(err)
		}
		tr := bench.Workload(p.G, 250, 5)
		top := p.Res.K.TopMinterms(p.G, dfg.ClassAdd, 4)
		cfg, err := locking.NewConfig(dfg.ClassAdd, 3, 2, locking.SFLLRem,
			[][]dfg.Minterm{{top[0].M, top[1].M}, {top[2].M, top[3].M}})
		if err != nil {
			t.Fatal(err)
		}
		bd, err := (binding.ObfuscationAware{}).Bind(&binding.Problem{
			G: p.G, Class: dfg.ClassAdd, NumFUs: 3, K: p.Res.K, Lock: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantE, err := binding.ApplicationErrors(p.G, p.Res.K, cfg, bd)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), p.G, tr, bd, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CleanInjections != wantE {
			t.Errorf("%s: lockedsim clean injections = %d, Eqn. 2 E = %d",
				name, rep.CleanInjections, wantE)
		}
		if rep.CorruptedOutputs > rep.TotalOutputs {
			t.Errorf("%s: impossible corruption counts %+v", name, rep)
		}
	}
}

func TestMaskingReducesVisibleErrors(t *testing.T) {
	// Multiplying by a power of two masks LSB flips (the corrupted bit
	// shifts out mod 256 only for large shifts; times-16 keeps it), so use
	// times-0: y = (a + b) * 0 masks everything.
	src := `
kernel mask;
input a, b;
output y;
t = a + b;
y = t * 0;
`
	g, tr, res := prep(t, src, 1, trace.Uniform, 150, 2)
	top := res.K.TopMinterms(g, dfg.ClassAdd, 1)
	cfg, err := locking.NewConfig(dfg.ClassAdd, 1, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M}})
	if err != nil {
		t.Fatal(err)
	}
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		g.OpsOfClass(dfg.ClassAdd)[0]: 0,
	}}
	rep, err := Run(context.Background(), g, tr, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections == 0 {
		t.Fatal("no injections: pick a hotter minterm")
	}
	if rep.CorruptedOutputs != 0 {
		t.Errorf("corruption visible through a times-zero mask: %+v", rep)
	}
}

func TestRunValidation(t *testing.T) {
	g, tr, res := prep(t, passthrough, 1, trace.Uniform, 50, 3)
	top := res.K.TopMinterms(g, dfg.ClassAdd, 1)
	cfg, _ := locking.NewConfig(dfg.ClassAdd, 1, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M}})
	okB := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		g.OpsOfClass(dfg.ClassAdd)[0]: 0,
	}}

	// Class/allocation mismatch.
	mulCfg, _ := locking.NewConfig(dfg.ClassMul, 1, 1, locking.SFLLRem,
		[][]dfg.Minterm{{top[0].M}})
	if _, err := Run(context.Background(), g, tr, okB, mulCfg); err == nil {
		t.Error("class mismatch must error")
	}
	// Invalid binding.
	badB := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{}}
	if _, err := Run(context.Background(), g, tr, badB, cfg); err == nil {
		t.Error("incomplete binding must error")
	}
	// Missing trace input.
	shortTr := trace.New([]string{"a"}, 1)
	shortTr.Append([]uint8{1})
	if _, err := Run(context.Background(), g, shortTr, okB, cfg); err == nil {
		t.Error("missing input must error")
	}
	// Invalid locking config.
	broken := cfg.Clone()
	broken.Locks[0].FU = 7
	if _, err := Run(context.Background(), g, tr, okB, broken); err == nil {
		t.Error("invalid config must error")
	}
}

// Property: an empty minterm set injects nothing and corrupts nothing, and
// reports are deterministic.
func TestNoMintermsNoCorruptionQuick(t *testing.T) {
	g, tr, _ := prep(t, passthrough, 1, trace.Uniform, 64, 4)
	b := &binding.Binding{Class: dfg.ClassAdd, NumFUs: 1, Assign: map[dfg.OpID]int{
		g.OpsOfClass(dfg.ClassAdd)[0]: 0,
	}}
	f := func(seed int64) bool {
		cfg := &locking.Config{Class: dfg.ClassAdd, NumFUs: 1, Locks: []locking.FULock{
			{FU: 0, Scheme: locking.SFLLRem, KeyBits: 16},
		}}
		r1, err1 := Run(context.Background(), g, tr, b, cfg)
		r2, err2 := Run(context.Background(), g, tr, b, cfg)
		return err1 == nil && err2 == nil && r1 == r2 &&
			r1.Injections == 0 && r1.CorruptedOutputs == 0 && r1.CorruptedSamples == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
