package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxWeightSquare(t *testing.T) {
	// The Fig. 2C example: OPA/OPB onto FU1/FU2/FU3 with locked-input
	// occurrence weights. Max matching maps OPA->FU2 (9), OPB->FU1 (4),
	// total cost 13 (paper: "Total Cost of Binding: 13").
	w := [][]float64{
		// FU1 (locks x)  FU2 (locks y)  FU3 (unlocked)
		{6, 9, 0}, // OPA: K[x][A]=6, K[y][A]=9
		{4, 3, 0}, // OPB: K[x][B]=4, K[y][B]=3
	}
	assign, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 13 {
		t.Fatalf("total = %v, want 13", total)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

func TestMinCostSimple(t *testing.T) {
	w := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := MinCost(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
	seen := map[int]bool{}
	for _, j := range assign {
		if seen[j] {
			t.Fatalf("column %d used twice: %v", j, assign)
		}
		seen[j] = true
	}
}

func TestRectangularMoreSinks(t *testing.T) {
	// 1 source, 4 sinks: pick the best sink.
	w := [][]float64{{1, 7, 3, 2}}
	assign, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || total != 7 {
		t.Fatalf("assign=%v total=%v, want [1] 7", assign, total)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, _, err := MaxWeight(nil); err == nil {
		t.Error("nil matrix must error")
	}
	if _, _, err := MaxWeight([][]float64{{1}, {2}}); err == nil {
		t.Error("more rows than cols must error")
	}
	if _, _, err := MinCost([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix must error")
	}
	if _, _, err := MinCost([][]float64{{math.NaN(), 1}}); err == nil {
		t.Error("NaN weight must error")
	}
	if _, _, err := MinCost([][]float64{{math.Inf(1), 1}}); err == nil {
		t.Error("infinite weight must error")
	}
	if _, _, err := BruteForceMax(nil); err == nil {
		t.Error("brute force nil matrix must error")
	}
}

func TestZeroWeights(t *testing.T) {
	w := [][]float64{{0, 0}, {0, 0}}
	assign, total, err := MaxWeight(w)
	if err != nil || total != 0 {
		t.Fatalf("assign=%v total=%v err=%v", assign, total, err)
	}
	if assign[0] == assign[1] {
		t.Fatal("matching must be injective even with tied weights")
	}
}

func TestNegativeWeights(t *testing.T) {
	// Full matching is required even when all edges are negative.
	w := [][]float64{
		{-5, -1},
		{-2, -8},
	}
	assign, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != -3 { // -1 + -2
		t.Fatalf("total = %v, want -3", total)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

func validAssign(assign []int, n, m int) bool {
	if len(assign) != n {
		return false
	}
	seen := map[int]bool{}
	for _, j := range assign {
		if j < 0 || j >= m || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

// Property: Hungarian result equals the brute-force optimum on random small
// instances, and is always a valid injective full matching.
func TestHungarianMatchesBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := n + r.Intn(3)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = math.Floor(r.Float64()*41) - 10 // integers in [-10, 30]
			}
		}
		assign, total, err := MaxWeight(w)
		if err != nil || !validAssign(assign, n, m) {
			return false
		}
		_, want, err := BruteForceMax(w)
		if err != nil {
			return false
		}
		return math.Abs(total-want) < 1e-9
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values:   nil,
		Rand:     rng,
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MinCost and MaxWeight are duals under negation.
func TestMinMaxDualityQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := n + r.Intn(3)
		w := make([][]float64, n)
		neg := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			neg[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = float64(r.Intn(100))
				neg[i][j] = -w[i][j]
			}
		}
		_, maxTotal, err1 := MaxWeight(w)
		_, minTotal, err2 := MinCost(neg)
		return err1 == nil && err2 == nil && math.Abs(maxTotal+minTotal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeInstanceRuns(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n, m := 60, 80
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, m)
		for j := range w[i] {
			w[i][j] = r.Float64() * 1000
		}
	}
	assign, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if !validAssign(assign, n, m) {
		t.Fatal("invalid assignment")
	}
	// Greedy lower bound sanity check: the optimum cannot be worse than a
	// greedy row-by-row assignment.
	used := make([]bool, m)
	greedy := 0.0
	for i := 0; i < n; i++ {
		best, bj := -1.0, -1
		for j := 0; j < m; j++ {
			if !used[j] && w[i][j] > best {
				best, bj = w[i][j], j
			}
		}
		used[bj] = true
		greedy += best
	}
	if total < greedy-1e-6 {
		t.Fatalf("optimal %v below greedy %v", total, greedy)
	}
}
