// Package matching solves the weighted bipartite matching (assignment)
// problems at the heart of every binder in this library.
//
// The paper's binding algorithms reduce each clock cycle to a max-weight full
// matching of the cycle's concurrent operations (sources) onto the allocated
// functional units (sinks), which "can be solved optimally in P-time"
// (Sec. IV-B). We implement the O(n*m*n) Hungarian algorithm with potentials
// (Jonker-Volgenant style), which is exact and comfortably fast at HLS sizes.
package matching

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports an invalid weight matrix: no rows, ragged rows, or more
// sources than sinks (a full matching would not exist).
var ErrShape = errors.New("matching: weight matrix must be rectangular with rows <= cols")

// MinCost computes a minimum-cost full matching of the n sources (rows) onto
// the m >= n sinks (columns) of cost matrix w. It returns assign, where
// assign[i] is the column matched to row i, and the total cost. Every row is
// matched to exactly one column and no column is used twice.
func MinCost(w [][]float64) (assign []int, total float64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, ErrShape
	}
	m := len(w[0])
	if m < n {
		return nil, 0, ErrShape
	}
	for _, row := range w {
		if len(row) != m {
			return nil, 0, ErrShape
		}
		for _, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, 0, fmt.Errorf("matching: non-finite weight %v", x)
			}
		}
	}

	const inf = math.MaxFloat64
	// 1-indexed potentials and matching state, following the classic
	// shortest-augmenting-path formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row matched to column j (0 = free)
	way := make([]int, m+1) // back-pointers along the alternating tree
	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the found path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i := range assign {
		total += w[i][assign[i]]
	}
	return assign, total, nil
}

// MaxWeight computes a maximum-weight full matching of the n sources onto the
// m >= n sinks of weight matrix w, by negating the weights and delegating to
// MinCost ("by negating each edge weight", Sec. IV-C).
func MaxWeight(w [][]float64) (assign []int, total float64, err error) {
	n := len(w)
	if n == 0 || len(w[0]) < n {
		return nil, 0, ErrShape
	}
	neg := make([][]float64, n)
	for i, row := range w {
		neg[i] = make([]float64, len(row))
		for j, x := range row {
			neg[i][j] = -x
		}
	}
	assign, negTotal, err := MinCost(neg)
	return assign, -negTotal, err
}

// BruteForceMax computes a maximum-weight full matching by exhaustive
// permutation enumeration. It is exponential and exists as the reference
// oracle for testing the Hungarian implementation; callers should use
// MaxWeight.
func BruteForceMax(w [][]float64) (assign []int, total float64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, ErrShape
	}
	m := len(w[0])
	if m < n {
		return nil, 0, ErrShape
	}
	best := math.Inf(-1)
	cur := make([]int, n)
	used := make([]bool, m)
	var bestAssign []int
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if i == n {
			if sum > best {
				best = sum
				bestAssign = append([]int(nil), cur...)
			}
			return
		}
		for j := 0; j < m; j++ {
			if !used[j] {
				used[j] = true
				cur[i] = j
				rec(i+1, sum+w[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return bestAssign, best, nil
}
