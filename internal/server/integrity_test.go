package server

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bindlock/internal/fault"
	"bindlock/internal/metrics"
	"bindlock/internal/satattack"
	"bindlock/internal/store"
)

// waitCached polls until the job's .res lands in cacheDir: the manager
// records Done just before the store Put, so the file can trail the
// terminal state by a beat.
func waitCached(t *testing.T, cacheDir, key string) string {
	t.Helper()
	path := filepath.Join(cacheDir, key+".res")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return path
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cached entry %s never reached disk", path)
	return ""
}

// sealedStore opens a sealed store over cacheDir under the node key at
// keyPath (generated on first use), the way bindlockd wires -cache-seal.
func sealedStore(t *testing.T, cacheDir, keyPath string, reg *metrics.Registry) (*store.Store, []byte) {
	t.Helper()
	key, err := store.LoadOrCreateKey(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenWith(store.Options{Dir: cacheDir, SealKey: key}, reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, key
}

// TestSealedCacheTamperRecompute is the satellite e2e for the result cache:
// flip one byte in a cached .res under a sealed store and the entry must
// never be served — the daemon recomputes to byte-identical bytes, counts
// the authentication failure, and re-seals the entry.
func TestSealedCacheTamperRecompute(t *testing.T) {
	req := fastAttack()
	dir := t.TempDir()
	cacheDir, keyPath := filepath.Join(dir, "cache"), filepath.Join(dir, "node.key")

	regA := metrics.New()
	storeA, _ := sealedStore(t, cacheDir, keyPath, regA)
	ref := submitWait(t, newManager(t, Config{Workers: 1, Store: storeA, Registry: regA}), req)

	// Flip one byte of the sealed entry on disk.
	path := waitCached(t, cacheDir, ref.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A cold daemon on the same cache dir: the memory tier is empty, the
	// disk entry is poisoned. The submission must run, not serve tamper.
	regB := metrics.New()
	storeB, _ := sealedStore(t, cacheDir, keyPath, regB)
	final := submitWait(t, newManager(t, Config{Workers: 1, Store: storeB, Registry: regB}), req)
	if final.Cached {
		t.Fatal("tampered cache entry was served as a hit")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("recompute diverged from the clean reference:\nref: %s\ngot: %s", ref.Result, final.Result)
	}
	if v, _ := regB.Snapshot().Counter("store_auth_fail_total"); v == 0 {
		t.Fatal("tamper went uncounted: store_auth_fail_total = 0")
	}

	// The recompute re-sealed the entry: a third cold store serves it.
	regC := metrics.New()
	storeC, _ := sealedStore(t, cacheDir, keyPath, regC)
	if data, ok := storeC.Get(final.Key); !ok || !bytes.Equal(data, ref.Result) {
		t.Fatalf("re-sealed entry unreadable: ok=%v", ok)
	}
}

// TestSealedCheckpointTamperColdRestart is the satellite e2e for
// checkpoints: fault an attack mid-run so it leaves a MAC'd .ckpt, flip one
// byte of it, and the restarted daemon must reject the transcript, count
// it, cold-restart from iteration zero, and still produce the clean run's
// exact bytes.
func TestSealedCheckpointTamperColdRestart(t *testing.T) {
	req := Request{Kind: KindAttack, OperandBits: 4, Secret: 0x6B}
	ref := submitWait(t, newManager(t, Config{Workers: 1}), req)

	dir := t.TempDir()
	key, err := store.LoadOrCreateKey(filepath.Join(dir, "node.key"))
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Interrupt the first run mid-attack (a width-4 attack makes ~140
	// sat.solve calls, so every=50 fails inside the run with several
	// iterations checkpointed).
	inj := fault.New(fault.Plan{Seed: 1, FailEvery: map[string]uint64{"sat.solve": 50}})
	a := newManager(t, Config{
		Workers: 1, CheckpointDir: ckptDir, CheckpointKey: key,
		BaseContext: fault.NewContext(context.Background(), inj),
	})
	j, err := a.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j = waitTerminal(t, a, j.ID); j.State != StateFailed {
		t.Fatalf("fault plan did not interrupt the attack: state %s", j.State)
	}
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("interrupted attack left %d checkpoint files, want 1", len(ents))
	}
	path := filepath.Join(ckptDir, ents[0].Name())

	// The checkpoint is keyed: it loads under the node key, and one flipped
	// MAC hex digit voids it.
	if _, err := satattack.LoadCheckpoint(path, key); err != nil {
		t.Fatalf("untampered checkpoint does not load: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("hmac-sha256:"))
	if i < 0 {
		t.Fatal("checkpoint written without a MAC despite CheckpointKey")
	}
	raw[i+len("hmac-sha256:")] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart without faults: the tampered transcript must not be resumed.
	regB := metrics.New()
	b := newManager(t, Config{Workers: 1, CheckpointDir: ckptDir, CheckpointKey: key, Registry: regB})
	final := submitWait(t, b, req)
	if final.Resumed {
		t.Fatal("tampered checkpoint was resumed")
	}
	if v, _ := regB.Snapshot().Counter("resume_checkpoints_rejected_total"); v != 1 {
		t.Fatalf("resume_checkpoints_rejected_total = %d, want 1", v)
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("cold restart diverged from the clean reference:\nref: %s\ngot: %s", ref.Result, final.Result)
	}
	if ents, _ := os.ReadDir(ckptDir); len(ents) != 0 {
		t.Fatalf("%d checkpoint files left after the cold restart succeeded", len(ents))
	}
}

// TestServerChaosCorruption runs the corrupt= drill end to end, wired the
// way bindlockd wires -fault-plan with -cache-seal: every disk read comes
// back with one bit flipped under the seal, so every cache hit the restarted
// daemon would have served degrades to an authenticated recompute with
// byte-identical results.
func TestServerChaosCorruption(t *testing.T) {
	req := fastAttack()
	dir := t.TempDir()
	cacheDir, keyPath := filepath.Join(dir, "cache"), filepath.Join(dir, "node.key")

	// Populate the sealed cache cleanly.
	regA := metrics.New()
	storeA, _ := sealedStore(t, cacheDir, keyPath, regA)
	ref := submitWait(t, newManager(t, Config{Workers: 1, Store: storeA, Registry: regA}), req)
	waitCached(t, cacheDir, ref.Key)

	// Restart under a corrupt=1 plan: the injector damages the raw bytes of
	// every disk read, under the seal, exactly like failing media.
	plan, err := fault.Parse("seed=3,corrupt=1")
	if err != nil {
		t.Fatal(err)
	}
	regB := metrics.New()
	inj := fault.New(plan).WithRegistry(regB)
	key, err := store.LoadOrCreateKey(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := store.OpenWith(store.Options{
		Dir: cacheDir, SealKey: key,
		ReadInterposer: func(b []byte) []byte { return inj.CorruptBytes("store.disk.get", b) },
	}, regB)
	if err != nil {
		t.Fatal(err)
	}
	b := newManager(t, Config{
		Workers: 1, Store: storeB, Registry: regB,
		BaseContext: fault.NewContext(context.Background(), inj),
	})
	final := submitWait(t, b, req)
	if final.Cached {
		t.Fatal("corrupted disk read served as a cache hit")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("chaos recompute diverged from the clean reference:\nref: %s\ngot: %s", ref.Result, final.Result)
	}
	snap := regB.Snapshot()
	if v, _ := snap.Counter("fault_corruptions_total"); v == 0 {
		t.Fatal("corrupt=1 plan active but fault_corruptions_total never moved")
	}
	if v, _ := snap.Counter("store_auth_fail_total"); v == 0 {
		t.Fatal("injected corruption went undetected: store_auth_fail_total = 0")
	}
}

// TestKeyMaterialRedaction pins key hygiene on job records: every surface a
// record reaches (Get, List) carries Secret zeroed and SecretRedacted set —
// only the result payload holds the key material.
func TestKeyMaterialRedaction(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	req := fastAttack()
	j := submitWait(t, m, req)
	if j.Req.Secret != 0 || !j.Req.SecretRedacted {
		t.Fatalf("job record leaks the secret: secret=%#x redacted=%v", j.Req.Secret, j.Req.SecretRedacted)
	}
	var res AttackResult
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Secret != req.Secret {
		t.Fatalf("result payload secret = %#x, want %#x", res.Secret, req.Secret)
	}
	for _, rec := range m.List() {
		if rec.Req.Secret != 0 || !rec.Req.SecretRedacted {
			t.Fatalf("List leaks the secret on job %s", rec.ID)
		}
	}
	if got, ok := m.Get(j.ID); !ok || got.Req.Secret != 0 {
		t.Fatalf("Get leaks the secret: ok=%v secret=%#x", ok, got.Req.Secret)
	}
}

// TestRandomSecretRequest pins the production key-material mode: the server
// draws the secret, the job runs on it, and the record redacts it; the mode
// is attack-only and refuses an explicit secret alongside.
func TestRandomSecretRequest(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	if _, err := m.Submit(Request{Kind: KindAttack, OperandBits: 3, Secret: 1, RandomSecret: true}); err == nil {
		t.Fatal("random_secret with an explicit secret accepted")
	}
	prep := fastPrepare(KindPrepare)
	prep.RandomSecret = true
	if _, err := m.Submit(prep); err == nil {
		t.Fatal("random_secret on a non-attack job accepted")
	}

	j := submitWait(t, m, Request{Kind: KindAttack, OperandBits: 3, RandomSecret: true})
	if j.Req.Secret != 0 || !j.Req.SecretRedacted {
		t.Fatalf("random-secret record leaks: secret=%#x redacted=%v", j.Req.Secret, j.Req.SecretRedacted)
	}
	var res AttackResult
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Secret >= 1<<6 {
		t.Fatalf("drawn secret %#x exceeds 2*OperandBits bits", res.Secret)
	}
	if res.Key == "" {
		t.Fatal("attack on a drawn secret recovered no key")
	}
}

// TestCheckpointSweep pins the orphan GC: a .ckpt older than the retain age
// is removed at Start and counted; fresh checkpoints and non-checkpoint
// files are untouched; a negative retain age disables the sweep entirely.
func TestCheckpointSweep(t *testing.T) {
	ckptDir := t.TempDir()
	stale := time.Now().Add(-8 * 24 * time.Hour)
	old := filepath.Join(ckptDir, strings.Repeat("ab", 32)+".ckpt")
	fresh := filepath.Join(ckptDir, strings.Repeat("cd", 32)+".ckpt")
	bystander := filepath.Join(ckptDir, "notes.txt")
	for _, p := range []string{old, fresh, bystander} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{old, bystander} {
		if err := os.Chtimes(p, stale, stale); err != nil {
			t.Fatal(err)
		}
	}

	reg := metrics.New()
	newManager(t, Config{Workers: 1, CheckpointDir: ckptDir, Registry: reg})
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("stale orphaned checkpoint survived the startup sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh checkpoint was swept")
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatal("non-checkpoint file was swept")
	}
	if v, _ := reg.Snapshot().Counter("server_ckpt_gced_total"); v != 1 {
		t.Fatalf("server_ckpt_gced_total = %d, want 1", v)
	}

	// Negative retain age: sweeping is off, even 8-day orphans stay.
	dir2 := t.TempDir()
	orphan := filepath.Join(dir2, strings.Repeat("ef", 32)+".ckpt")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(orphan, stale, stale); err != nil {
		t.Fatal(err)
	}
	newManager(t, Config{Workers: 1, CheckpointDir: dir2, CheckpointRetainAge: -1})
	if _, err := os.Stat(orphan); err != nil {
		t.Fatal("sweep ran despite a negative CheckpointRetainAge")
	}
}
