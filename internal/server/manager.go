package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bindlock"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/parallel"
	"bindlock/internal/progress"
	"bindlock/internal/store"
)

// Submission errors, distinguished so the HTTP layer can map them onto
// status codes (400 / 429 / 503).
var (
	// ErrBadRequest wraps request validation failures.
	ErrBadRequest = errors.New("server: bad request")
	// ErrQueueFull reports a submission bouncing off the bounded queue.
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining reports a submission during graceful shutdown.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob reports an id no job was registered under.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrRateLimited reports a submission bouncing off the admission
	// limiter; the HTTP layer maps it onto 429 with Retry-After.
	ErrRateLimited = errors.New("server: rate limited")
)

// errDrained is the cancellation cause handed to running jobs when the drain
// grace period expires.
var errDrained = errors.New("server: drained")

// Config tunes a Manager.
type Config struct {
	// Workers is the number of job slots — jobs executing concurrently
	// (default GOMAXPROCS). The slots run on the internal/parallel pool.
	Workers int
	// MaxQueue bounds the submit queue (default 64); submissions beyond it
	// fail with ErrQueueFull rather than blocking the API.
	MaxQueue int
	// JobTimeout is the per-job context deadline (0: none). A job over its
	// deadline fails with the interrupt budget error, partial results
	// attached.
	JobTimeout time.Duration
	// JobParallelism bounds the compute-stack worker count inside each job
	// (default 1, so Workers jobs use about Workers cores; results are
	// bit-identical at any setting).
	JobParallelism int
	// CheckpointDir, when set, makes attack jobs write their oracle
	// transcript there (atomic, every CheckpointEvery iterations) and
	// resume from it when an identical request is resubmitted after a
	// drain or crash.
	CheckpointDir string
	// CheckpointEvery is the iteration interval between checkpoint writes
	// (default 1).
	CheckpointEvery int
	// CheckpointKey, when non-nil, MACs every checkpoint write with this
	// node secret and requires a valid MAC at load: a tampered or foreign
	// .ckpt is rejected (resume_checkpoints_rejected_total) and the attack
	// cold-restarts deterministically. nil writes digest-only checkpoints.
	CheckpointKey []byte
	// CheckpointRetainAge bounds how long an orphaned .ckpt (a job that
	// never resumed) may linger in CheckpointDir before the sweep removes
	// it: on Start and periodically alongside record GC. 0 defaults to
	// RetainAge when that is set, else 7 days; negative disables sweeping.
	CheckpointRetainAge time.Duration
	// DesignMemo bounds the in-memory memo of prepared designs (default 32).
	DesignMemo int
	// Store is the content-addressed result cache; nil gets a memory-only
	// store.
	Store *store.Store
	// Registry is the server-owned metrics registry served at /metrics;
	// nil gets a fresh one.
	Registry *metrics.Registry
	// RetainJobs bounds the terminal job records kept for polling (default
	// 4096, negative: unbounded). Live records never count against it.
	RetainJobs int
	// RetainAge, when positive, additionally drops terminal records older
	// than it, whatever the count.
	RetainAge time.Duration
	// MaxBatch caps the job count of one POST /v1/jobs:batch request
	// (default 64).
	MaxBatch int
	// RatePerSec enables token-bucket admission control on the HTTP submit
	// endpoints at this sustained rate (0: disabled); Burst is the bucket
	// size (default ceil(RatePerSec)). Rejected submissions get 429 with
	// Retry-After.
	RatePerSec float64
	Burst      int
	// BaseContext, when non-nil, is the root of every job's context chain —
	// the seam the chaos harness uses to carry a fault-injection plan into
	// job execution (fault.NewContext), and daemons use to carry telemetry.
	BaseContext context.Context
}

// Manager runs jobs: a bounded submit queue feeding worker slots, each job
// executing under its own cancellable, deadline-bounded context with the
// server's metrics registry, its progress ring and the configured compute
// parallelism attached. Completed results are stored in the
// content-addressed cache; identical future submissions are served from it
// byte-identically.
type Manager struct {
	cfg     Config
	reg     *metrics.Registry
	store   *store.Store
	designs *store.Memo[*bindlock.Design]

	queue       chan *job
	baseCtx     context.Context
	stopWorkers context.CancelFunc
	workersDone chan struct{}
	runningN    atomic.Int64
	// queueN mirrors the submit queue's depth: incremented under m.mu on
	// enqueue, decremented at dequeue. The gauge is published from it, so
	// interleaved updates can never go backwards past a stale len() read.
	queueN  atomic.Int64
	limiter *tokenBucket
	// lastCkptSweep is the unix-nano time of the last orphan-checkpoint
	// sweep, CAS-guarded so concurrent submitters elect one sweeper.
	lastCkptSweep atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	inflight map[string]*job // fingerprint key → queued/running primary
	draining bool
	nextID   int64
}

// New builds a manager; call Start before submitting.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = 1
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.CheckpointRetainAge == 0 {
		if cfg.RetainAge > 0 {
			cfg.CheckpointRetainAge = cfg.RetainAge
		} else {
			cfg.CheckpointRetainAge = 7 * 24 * time.Hour
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.New()
	}
	if cfg.Store == nil {
		s, err := store.Open("", 0, cfg.Registry)
		if err != nil {
			return nil, err
		}
		cfg.Store = s
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	return &Manager{
		cfg:         cfg,
		reg:         cfg.Registry,
		store:       cfg.Store,
		designs:     store.NewMemo[*bindlock.Design](cfg.DesignMemo),
		queue:       make(chan *job, cfg.MaxQueue),
		baseCtx:     ctx,
		stopWorkers: cancel,
		workersDone: make(chan struct{}),
		jobs:        map[string]*job{},
		inflight:    map[string]*job{},
		limiter:     newTokenBucket(cfg.RatePerSec, cfg.Burst),
	}, nil
}

// Registry returns the server-owned metrics registry.
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Store returns the result cache.
func (m *Manager) Store() *store.Store { return m.store }

// Start launches the worker slots on the internal/parallel pool, after
// sweeping checkpoints orphaned by jobs that never came back to resume.
func (m *Manager) Start() {
	m.sweepCheckpoints(time.Now())
	m.reg.Set("server_worker_slots", float64(m.cfg.Workers))
	go func() {
		defer close(m.workersDone)
		// One long-lived loop per slot; the pool gives us the bounded
		// fan-out and context plumbing every other subsystem uses.
		parallel.ForEach(m.baseCtx, m.cfg.Workers, m.cfg.Workers,
			func(ctx context.Context, i int) error {
				m.workerLoop(ctx)
				return nil
			})
	}()
}

func (m *Manager) workerLoop(ctx context.Context) {
	for {
		select {
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.reg.Set("server_queue_depth", float64(m.queueN.Add(-1)))
			m.exec(ctx, j)
		case <-ctx.Done():
			return
		}
	}
}

// Submit validates, fingerprints and enqueues a job. A request whose
// fingerprint is already in the result cache completes immediately (State
// done, Cached true) with the stored bytes — by the cache's determinism
// contract, exactly what running it again would produce; a cache hit needs
// no worker, so it is served even while draining. A request whose
// fingerprint is already queued or running attaches to that execution
// (single flight): the new record carries attached_to, shares the primary's
// progress ring, and lands the primary's byte-identical result — one
// execution, one checkpoint file, however many identical submissions arrive.
func (m *Manager) Submit(req Request) (Job, error) {
	r, err := resolve(req)
	if err != nil {
		// Both wraps survive: Is(ErrBadRequest) for the status mapping, and
		// As(*BadFieldError) for the structured 400 body.
		return Job{}, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	m.reg.Add("server_jobs_submitted_total", 1)
	key := r.fingerprint().Key()
	now := time.Now()
	m.maybeSweepCheckpoints(now)

	// The cache lookup may touch disk or a peer, so it runs outside m.mu.
	// A same-key job finishing in between only costs one recompute — the
	// in-flight check below is what keeps concurrent executions single.
	cachedBytes, cached := m.store.Get(key)

	m.mu.Lock()
	if cached {
		j := newJob(r, key, now)
		j.state = StateDone
		j.cached = true
		j.result = cachedBytes
		j.finished = now
		m.registerLocked(j, now)
		m.mu.Unlock()
		m.reg.Add("server_jobs_cached_total", 1)
		return j.snapshot(), nil
	}
	if primary, ok := m.inflight[key]; ok {
		if j, attached := m.attachLocked(primary, r, key, now); attached {
			m.mu.Unlock()
			m.reg.Add("server_jobs_deduped_total", 1)
			return j.snapshot(), nil
		}
	}
	if m.draining {
		m.mu.Unlock()
		return Job{}, ErrDraining
	}
	j := newJob(r, key, now)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.reg.Add("server_queue_rejected_total", 1)
		return Job{}, ErrQueueFull
	}
	m.inflight[key] = j
	m.registerLocked(j, now)
	depth := m.queueN.Add(1)
	m.mu.Unlock()
	m.reg.Set("server_queue_depth", float64(depth))
	return j.snapshot(), nil
}

// attachLocked rides a new record on the in-flight primary; callers hold
// m.mu. It reports false when the primary went terminal in the meantime
// (a queued-job cancellation races the inflight cleanup) — the caller then
// falls through to a fresh enqueue.
func (m *Manager) attachLocked(primary *job, r *resolved, key string, now time.Time) (*job, bool) {
	primary.mu.Lock()
	if primary.state.Terminal() {
		primary.mu.Unlock()
		return nil, false
	}
	j := newJob(r, key, now)
	j.attachedTo = primary.id
	j.prog = primary.prog // one execution, one progress stream
	j.state = primary.state
	j.started = primary.started
	m.nextID++
	j.id = fmt.Sprintf("j%d", m.nextID)
	primary.attached = append(primary.attached, j)
	primary.duplicates = append(primary.duplicates, j.id)
	primary.mu.Unlock()
	// Land the record after releasing primary.mu: the retention GC takes
	// every record's lock, so it must never run under one.
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.gcLocked(now)
	return j, true
}

// registerLocked assigns the next id, lands the record, and trims terminal
// records past the retention bounds; callers hold m.mu.
func (m *Manager) registerLocked(j *job, now time.Time) {
	m.nextID++
	j.id = fmt.Sprintf("j%d", m.nextID)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.gcLocked(now)
}

// gcLocked drops the oldest terminal records beyond the RetainJobs count
// bound and any terminal record older than RetainAge, then publishes the
// retained count. Live records (queued, running, attached-live) are never
// touched, so nothing a worker or waiter still holds can vanish mid-flight.
func (m *Manager) gcLocked(now time.Time) {
	overCount := 0
	if m.cfg.RetainJobs > 0 {
		terminal := 0
		for _, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			if j.state.Terminal() {
				terminal++
			}
			j.mu.Unlock()
		}
		overCount = terminal - m.cfg.RetainJobs
	}
	if overCount > 0 || m.cfg.RetainAge > 0 {
		kept := m.order[:0]
		dropped := 0
		for _, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			terminal := j.state.Terminal()
			finished := j.finished
			j.mu.Unlock()
			aged := m.cfg.RetainAge > 0 && terminal && now.Sub(finished) > m.cfg.RetainAge
			if terminal && (overCount > 0 || aged) {
				if overCount > 0 {
					overCount--
				}
				delete(m.jobs, id)
				dropped++
				continue
			}
			kept = append(kept, id)
		}
		m.order = kept
		if dropped > 0 {
			m.reg.Add("server_jobs_gced_total", int64(dropped))
		}
	}
	m.reg.Set("server_jobs_retained", float64(len(m.jobs)))
}

// checkpointSweepInterval throttles the submit-path checkpoint sweep; the
// sweep also runs once, synchronously, at Start.
const checkpointSweepInterval = time.Minute

// maybeSweepCheckpoints kicks an asynchronous orphan sweep at most once per
// checkpointSweepInterval; the CAS makes concurrent submitters elect one
// sweeper.
func (m *Manager) maybeSweepCheckpoints(now time.Time) {
	if m.cfg.CheckpointDir == "" || m.cfg.CheckpointRetainAge <= 0 {
		return
	}
	last := m.lastCkptSweep.Load()
	if now.UnixNano()-last < int64(checkpointSweepInterval) {
		return
	}
	if !m.lastCkptSweep.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	go m.sweepCheckpoints(now)
}

// sweepCheckpoints removes .ckpt files in CheckpointDir older than
// CheckpointRetainAge whose fingerprint key is not in flight — transcripts
// of jobs that never came back to resume. Age is judged by mtime, which
// every checkpoint write refreshes, so an attack slowly making progress is
// never swept out from under its next drain.
func (m *Manager) sweepCheckpoints(now time.Time) {
	dir := m.cfg.CheckpointDir
	if dir == "" || m.cfg.CheckpointRetainAge <= 0 {
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	m.mu.Lock()
	inflight := make(map[string]bool, len(m.inflight))
	for key := range m.inflight {
		inflight[key] = true
	}
	m.mu.Unlock()
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		if inflight[strings.TrimSuffix(name, ".ckpt")] {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil || now.Sub(info.ModTime()) <= m.cfg.CheckpointRetainAge {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	if removed > 0 {
		m.reg.Add("server_ckpt_gced_total", int64(removed))
	}
}

// Wait blocks until job id has recorded progress past since (ProgressTotal
// > since), reached a terminal state, or wait elapsed — whichever comes
// first — and returns the snapshot at that moment. since < 0 waits for a
// terminal state only. It reports false when the id is unknown (possibly
// GC'd under the retention bound).
func (m *Manager) Wait(ctx context.Context, id string, since int, wait time.Duration) (Job, bool) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		m.mu.Lock()
		j, ok := m.jobs[id]
		m.mu.Unlock()
		if !ok {
			return Job{}, false
		}
		ch := j.waitChan() // captured before the snapshot, so no lost wakeups
		snap := j.snapshot()
		if snap.State.Terminal() || (since >= 0 && snap.ProgressTotal > since) {
			return snap, true
		}
		select {
		case <-ch:
		case <-timer.C:
			return snap, true
		case <-ctx.Done():
			return snap, true
		}
	}
}

// Get returns the job record for id.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// List returns every job record in submission order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Cancel requests cancellation of a job: a queued job is cancelled on the
// spot, a running one has its context cancelled and finishes with its
// partial results surfaced. Terminal jobs are left as they are.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	m.cancelJob(j, "cancelled by request")
	return j.snapshot(), nil
}

// cancelJob cancels one job whatever its stage; safe against the
// queued-to-running transition because both hold j.mu. Cancelling an
// attached record detaches just that record — the shared execution keeps
// running for the primary and any other duplicates. Cancelling a queued
// primary settles its attached records too.
func (m *Manager) cancelJob(j *job, reason string) {
	now := time.Now()
	j.mu.Lock()
	if j.attachedTo != "" && !j.state.Terminal() {
		j.state = StateCancelled
		j.errMsg = reason
		j.finished = now
		j.wakeLocked()
		j.mu.Unlock()
		m.reg.Add("server_jobs_cancelled_total", 1)
		return
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = reason
		j.finished = now
		j.wakeLocked()
		attached := append([]*job(nil), j.attached...)
		j.mu.Unlock()
		m.dropInflight(j)
		n := 1 + m.settleAttached(attached, StateCancelled, nil, nil, reason, now)
		m.reg.Add("server_jobs_cancelled_total", int64(n))
		return
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(context.Canceled)
		}
		return
	}
	j.mu.Unlock()
}

// dropInflight clears j's single-flight registration, so the next identical
// submission starts a fresh execution. Callers must not hold j.mu (lock
// order is m.mu before job locks).
func (m *Manager) dropInflight(j *job) {
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
}

// settleAttached lands the primary's outcome on every record still riding
// on it, returning how many it settled. Records already terminal (detached
// by an earlier cancel) are left alone.
func (m *Manager) settleAttached(attached []*job, st State, result, partial []byte, errMsg string, now time.Time) int {
	n := 0
	for _, a := range attached {
		a.mu.Lock()
		if !a.state.Terminal() {
			a.state = st
			a.result = result
			a.partial = partial
			a.errMsg = errMsg
			a.finished = now
			a.wakeLocked()
			n++
		}
		a.mu.Unlock()
	}
	return n
}

// Stats reports the live job counts.
func (m *Manager) Stats() (queued, running, total int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running, len(m.jobs), m.draining
}

// Drain gracefully shuts the manager down: intake closes (Submit returns
// ErrDraining), queued jobs are cancelled, and running jobs are given until
// ctx expires to finish — after which they are cancelled, in-flight attacks
// having checkpointed their oracle transcript along the way so a restarted
// manager resumes them bit-identically. Drain returns once every worker slot
// has exited; it is idempotent.
func (m *Manager) Drain(ctx context.Context) {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	var live []*job
	for _, j := range m.jobs {
		live = append(live, j)
	}
	cancelled := 0
	if first {
		// Queued jobs are cancelled before the queue closes, so no job can
		// start once draining has begun; workers then run the queue dry
		// (skipping the cancelled records) and exit. No Submit can be
		// mid-send: sends happen under m.mu with draining false.
		for _, j := range live {
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StateCancelled
				j.errMsg = "server draining"
				j.finished = time.Now()
				j.wakeLocked()
				cancelled++
			}
			j.mu.Unlock()
		}
		// Queued single-flight primaries just went terminal; drop their
		// registrations so nothing attaches to a cancelled record.
		for key, j := range m.inflight {
			j.mu.Lock()
			if j.state.Terminal() {
				delete(m.inflight, key)
			}
			j.mu.Unlock()
		}
		close(m.queue)
	}
	m.mu.Unlock()
	if cancelled > 0 {
		m.reg.Add("server_jobs_cancelled_total", int64(cancelled))
	}

	select {
	case <-m.workersDone:
	case <-ctx.Done():
		// Grace expired: cancel what is still running and wait it out.
		for _, j := range live {
			m.cancelJob(j, "server draining")
		}
		<-m.workersDone
	}
	m.stopWorkers()
}

// exec runs one dequeued job through its kind's executor under the job
// context: cancellation cause, deadline, metrics registry, progress ring and
// compute parallelism.
func (m *Manager) exec(workerCtx context.Context, j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(workerCtx)
	now := time.Now()
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.wakeLocked()
	attached := append([]*job(nil), j.attached...)
	j.mu.Unlock()
	defer cancel(nil)

	// Records that attached while this job was queued follow it into the
	// running state; later attachments copy the state at attach time.
	for _, a := range attached {
		a.mu.Lock()
		if a.state == StateQueued {
			a.state = StateRunning
			a.started = now
			a.wakeLocked()
		}
		a.mu.Unlock()
	}

	m.reg.Set("server_jobs_running", float64(m.runningN.Add(1)))
	defer func() { m.reg.Set("server_jobs_running", float64(m.runningN.Add(-1))) }()

	runCtx := ctx
	if m.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, m.cfg.JobTimeout)
		defer tcancel()
	}
	runCtx = metrics.NewContext(runCtx, m.reg)
	runCtx = progress.NewContext(runCtx, j.prog)
	runCtx = parallel.NewContext(runCtx, m.cfg.JobParallelism)

	stop := m.reg.Timer("server_job_seconds")
	payload, err := m.run(runCtx, j)
	stop()
	m.finish(j, payload, err)
}

// finish lands the executor's outcome in the job record, in every record
// attached to it (byte-identical result bytes), and, on success, in the
// result cache.
func (m *Manager) finish(j *job, payload any, err error) {
	var resultBytes []byte
	if err == nil {
		b, merr := json.Marshal(payload)
		if merr != nil {
			err = fmt.Errorf("server: encode result: %w", merr)
		} else {
			resultBytes = b
		}
	}
	now := time.Now()
	j.mu.Lock()
	j.finished = now
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = resultBytes
	case errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	if err != nil && payload != nil {
		// Partial results extracted from the typed interrupt errors stay
		// visible in the job record.
		if b, merr := json.Marshal(payload); merr == nil {
			j.partial = b
		}
	}
	state := j.state
	key := j.key
	partial := j.partial
	errMsg := j.errMsg
	attached := append([]*job(nil), j.attached...)
	j.wakeLocked()
	j.mu.Unlock()

	switch state {
	case StateDone:
		m.reg.Add("server_jobs_done_total", 1)
		if perr := m.store.Put(key, resultBytes); perr != nil {
			m.reg.Add("server_store_errors_total", 1)
		}
	case StateCancelled:
		m.reg.Add("server_jobs_cancelled_total", 1)
	case StateFailed:
		m.reg.Add("server_jobs_failed_total", 1)
	}
	// Cache first, single-flight cleanup second: an identical submission
	// arriving in between sees either the live entry or the cached bytes,
	// never a gap that starts a second execution mid-checkpoint.
	m.dropInflight(j)
	m.settleAttached(attached, state, resultBytes, partial, errMsg, now)
}
