package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bindlock"
	"bindlock/internal/interrupt"
	"bindlock/internal/metrics"
	"bindlock/internal/parallel"
	"bindlock/internal/progress"
	"bindlock/internal/store"
)

// Submission errors, distinguished so the HTTP layer can map them onto
// status codes (400 / 429 / 503).
var (
	// ErrBadRequest wraps request validation failures.
	ErrBadRequest = errors.New("server: bad request")
	// ErrQueueFull reports a submission bouncing off the bounded queue.
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining reports a submission during graceful shutdown.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob reports an id no job was registered under.
	ErrUnknownJob = errors.New("server: unknown job")
)

// errDrained is the cancellation cause handed to running jobs when the drain
// grace period expires.
var errDrained = errors.New("server: drained")

// Config tunes a Manager.
type Config struct {
	// Workers is the number of job slots — jobs executing concurrently
	// (default GOMAXPROCS). The slots run on the internal/parallel pool.
	Workers int
	// MaxQueue bounds the submit queue (default 64); submissions beyond it
	// fail with ErrQueueFull rather than blocking the API.
	MaxQueue int
	// JobTimeout is the per-job context deadline (0: none). A job over its
	// deadline fails with the interrupt budget error, partial results
	// attached.
	JobTimeout time.Duration
	// JobParallelism bounds the compute-stack worker count inside each job
	// (default 1, so Workers jobs use about Workers cores; results are
	// bit-identical at any setting).
	JobParallelism int
	// CheckpointDir, when set, makes attack jobs write their oracle
	// transcript there (atomic, every CheckpointEvery iterations) and
	// resume from it when an identical request is resubmitted after a
	// drain or crash.
	CheckpointDir string
	// CheckpointEvery is the iteration interval between checkpoint writes
	// (default 1).
	CheckpointEvery int
	// DesignMemo bounds the in-memory memo of prepared designs (default 32).
	DesignMemo int
	// Store is the content-addressed result cache; nil gets a memory-only
	// store.
	Store *store.Store
	// Registry is the server-owned metrics registry served at /metrics;
	// nil gets a fresh one.
	Registry *metrics.Registry
}

// Manager runs jobs: a bounded submit queue feeding worker slots, each job
// executing under its own cancellable, deadline-bounded context with the
// server's metrics registry, its progress ring and the configured compute
// parallelism attached. Completed results are stored in the
// content-addressed cache; identical future submissions are served from it
// byte-identically.
type Manager struct {
	cfg     Config
	reg     *metrics.Registry
	store   *store.Store
	designs *store.Memo[*bindlock.Design]

	queue       chan *job
	baseCtx     context.Context
	stopWorkers context.CancelFunc
	workersDone chan struct{}
	runningN    atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	draining bool
	nextID   int64
}

// New builds a manager; call Start before submitting.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = 1
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.New()
	}
	if cfg.Store == nil {
		s, err := store.Open("", 0, cfg.Registry)
		if err != nil {
			return nil, err
		}
		cfg.Store = s
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:         cfg,
		reg:         cfg.Registry,
		store:       cfg.Store,
		designs:     store.NewMemo[*bindlock.Design](cfg.DesignMemo),
		queue:       make(chan *job, cfg.MaxQueue),
		baseCtx:     ctx,
		stopWorkers: cancel,
		workersDone: make(chan struct{}),
		jobs:        map[string]*job{},
	}, nil
}

// Registry returns the server-owned metrics registry.
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Store returns the result cache.
func (m *Manager) Store() *store.Store { return m.store }

// Start launches the worker slots on the internal/parallel pool.
func (m *Manager) Start() {
	m.reg.Set("server_worker_slots", float64(m.cfg.Workers))
	go func() {
		defer close(m.workersDone)
		// One long-lived loop per slot; the pool gives us the bounded
		// fan-out and context plumbing every other subsystem uses.
		parallel.ForEach(m.baseCtx, m.cfg.Workers, m.cfg.Workers,
			func(ctx context.Context, i int) error {
				m.workerLoop(ctx)
				return nil
			})
	}()
}

func (m *Manager) workerLoop(ctx context.Context) {
	for {
		select {
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.reg.Set("server_queue_depth", float64(len(m.queue)))
			m.exec(ctx, j)
		case <-ctx.Done():
			return
		}
	}
}

// Submit validates, fingerprints and enqueues a job. A request whose
// fingerprint is already in the result cache completes immediately
// (State done, Cached true) with the stored bytes — by the cache's
// determinism contract, exactly what running it again would produce.
func (m *Manager) Submit(req Request) (Job, error) {
	r, err := resolve(req)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m.reg.Add("server_jobs_submitted_total", 1)
	key := r.fingerprint().Key()
	now := time.Now()
	j := &job{kind: r.Kind, key: key, req: r, created: now, prog: &progressRing{}, state: StateQueued}

	cachedBytes, cached := m.store.Get(key)
	if cached {
		j.state = StateDone
		j.cached = true
		j.result = cachedBytes
		j.finished = now
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Job{}, ErrDraining
	}
	if !cached {
		select {
		case m.queue <- j:
		default:
			m.mu.Unlock()
			m.reg.Add("server_queue_rejected_total", 1)
			return Job{}, ErrQueueFull
		}
	}
	m.nextID++
	j.id = fmt.Sprintf("j%d", m.nextID)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()

	m.reg.Set("server_queue_depth", float64(len(m.queue)))
	if cached {
		m.reg.Add("server_jobs_cached_total", 1)
	}
	return j.snapshot(), nil
}

// Get returns the job record for id.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// List returns every job record in submission order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Cancel requests cancellation of a job: a queued job is cancelled on the
// spot, a running one has its context cancelled and finishes with its
// partial results surfaced. Terminal jobs are left as they are.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	m.cancelJob(j, "cancelled by request")
	return j.snapshot(), nil
}

// cancelJob cancels one job whatever its stage; safe against the
// queued-to-running transition because both hold j.mu.
func (m *Manager) cancelJob(j *job, reason string) {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = reason
		j.finished = time.Now()
		j.mu.Unlock()
		m.reg.Add("server_jobs_cancelled_total", 1)
		return
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(context.Canceled)
		}
		return
	}
	j.mu.Unlock()
}

// Stats reports the live job counts.
func (m *Manager) Stats() (queued, running, total int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running, len(m.jobs), m.draining
}

// Drain gracefully shuts the manager down: intake closes (Submit returns
// ErrDraining), queued jobs are cancelled, and running jobs are given until
// ctx expires to finish — after which they are cancelled, in-flight attacks
// having checkpointed their oracle transcript along the way so a restarted
// manager resumes them bit-identically. Drain returns once every worker slot
// has exited; it is idempotent.
func (m *Manager) Drain(ctx context.Context) {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	var live []*job
	for _, j := range m.jobs {
		live = append(live, j)
	}
	cancelled := 0
	if first {
		// Queued jobs are cancelled before the queue closes, so no job can
		// start once draining has begun; workers then run the queue dry
		// (skipping the cancelled records) and exit. No Submit can be
		// mid-send: sends happen under m.mu with draining false.
		for _, j := range live {
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StateCancelled
				j.errMsg = "server draining"
				j.finished = time.Now()
				cancelled++
			}
			j.mu.Unlock()
		}
		close(m.queue)
	}
	m.mu.Unlock()
	if cancelled > 0 {
		m.reg.Add("server_jobs_cancelled_total", int64(cancelled))
	}

	select {
	case <-m.workersDone:
	case <-ctx.Done():
		// Grace expired: cancel what is still running and wait it out.
		for _, j := range live {
			m.cancelJob(j, "server draining")
		}
		<-m.workersDone
	}
	m.stopWorkers()
}

// exec runs one dequeued job through its kind's executor under the job
// context: cancellation cause, deadline, metrics registry, progress ring and
// compute parallelism.
func (m *Manager) exec(workerCtx context.Context, j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(workerCtx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel(nil)

	m.reg.Set("server_jobs_running", float64(m.runningN.Add(1)))
	defer func() { m.reg.Set("server_jobs_running", float64(m.runningN.Add(-1))) }()

	runCtx := ctx
	if m.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, m.cfg.JobTimeout)
		defer tcancel()
	}
	runCtx = metrics.NewContext(runCtx, m.reg)
	runCtx = progress.NewContext(runCtx, j.prog)
	runCtx = parallel.NewContext(runCtx, m.cfg.JobParallelism)

	stop := m.reg.Timer("server_job_seconds")
	payload, err := m.run(runCtx, j)
	stop()
	m.finish(j, payload, err)
}

// finish lands the executor's outcome in the job record and, on success, in
// the result cache.
func (m *Manager) finish(j *job, payload any, err error) {
	var resultBytes []byte
	if err == nil {
		b, merr := json.Marshal(payload)
		if merr != nil {
			err = fmt.Errorf("server: encode result: %w", merr)
		} else {
			resultBytes = b
		}
	}
	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = resultBytes
	case errors.Is(err, interrupt.ErrCancelled) || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	if err != nil && payload != nil {
		// Partial results extracted from the typed interrupt errors stay
		// visible in the job record.
		if b, merr := json.Marshal(payload); merr == nil {
			j.partial = b
		}
	}
	state := j.state
	key := j.key
	j.mu.Unlock()

	switch state {
	case StateDone:
		m.reg.Add("server_jobs_done_total", 1)
		if perr := m.store.Put(key, resultBytes); perr != nil {
			m.reg.Add("server_store_errors_total", 1)
		}
	case StateCancelled:
		m.reg.Add("server_jobs_cancelled_total", 1)
	case StateFailed:
		m.reg.Add("server_jobs_failed_total", 1)
	}
}
