package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bindlock/internal/fault"
	"bindlock/internal/metrics"
)

// cyclicAttack is a cyclic-scheme attack sized to run a handful of DIP
// iterations: enough transcript for the resume tests, still milliseconds.
func cyclicAttack() Request {
	return Request{
		Kind: KindAttack, Scheme: SchemeCyclic,
		OperandBits: 6, CycleEdges: 4, CycleDecoys: 8, Seed: 2,
	}
}

// TestCyclicAttackJob runs a cyclic attack through the manager and checks the
// result payload and the cyclock metric.
func TestCyclicAttackJob(t *testing.T) {
	reg := metrics.New()
	m := newManager(t, Config{Workers: 1, Registry: reg})
	j := submitWait(t, m, cyclicAttack())
	var res AttackResult
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Scheme != SchemeCyclic {
		t.Fatalf("scheme %q, want cyclic", res.Scheme)
	}
	if res.FeedbackEdges != 4 {
		t.Fatalf("feedback edges %d, want 4", res.FeedbackEdges)
	}
	if res.Secret != 0 {
		t.Fatalf("cyclic result carries a secret: %d", res.Secret)
	}
	if res.KeyBits == 0 || len(res.Key) != res.KeyBits {
		t.Fatalf("key %q does not match key_bits %d", res.Key, res.KeyBits)
	}
	if v, _ := reg.Snapshot().Counter("cyclock_cycles_inserted"); v != 4 {
		t.Fatalf("cyclock_cycles_inserted = %v, want 4", v)
	}
	if v, _ := reg.Snapshot().Counter("cycsat_constraints_total"); v == 0 {
		t.Fatal("cycsat_constraints_total never moved")
	}
}

// TestSubmitBadFieldErrors pins the typed rejection for enumerated fields:
// the HTTP layer must answer 400 with the offending field and the supported
// values as structure, for both unknown kinds and unknown attack schemes.
func TestSubmitBadFieldErrors(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	cases := []struct {
		name      string
		body      string
		field     string
		got       string
		supported []string
	}{
		{
			name:  "unknown kind",
			body:  `{"kind": "exfiltrate"}`,
			field: "kind", got: "exfiltrate", supported: Kinds(),
		},
		{
			name:  "unknown scheme",
			body:  `{"kind": "attack", "scheme": "sarlock"}`,
			field: "scheme", got: "sarlock", supported: AttackSchemes(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var body struct {
				Error     string   `json:"error"`
				Field     string   `json:"field"`
				Got       string   `json:"got"`
				Supported []string `json:"supported"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Field != tc.field || body.Got != tc.got {
				t.Fatalf("field/got = %q/%q, want %q/%q", body.Field, body.Got, tc.field, tc.got)
			}
			if len(body.Supported) != len(tc.supported) {
				t.Fatalf("supported %v, want %v", body.Supported, tc.supported)
			}
			for i, s := range tc.supported {
				if body.Supported[i] != s {
					t.Fatalf("supported %v, want %v", body.Supported, tc.supported)
				}
			}
			if body.Error == "" || !strings.Contains(body.Error, tc.got) {
				t.Fatalf("error %q does not name the offending value %q", body.Error, tc.got)
			}
		})
	}
}

// TestCyclicFieldValidation covers the scheme-conditional field rules.
func TestCyclicFieldValidation(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	bad := []Request{
		{Kind: KindAttack, Scheme: SchemeCyclic, Secret: 3},
		{Kind: KindAttack, Scheme: SchemeCyclic, RandomSecret: true},
		{Kind: KindAttack, Scheme: SchemeCyclic, CycleEdges: 9},
		{Kind: KindAttack, Scheme: SchemeCyclic, CycleDecoys: 9},
		{Kind: KindAttack, CycleEdges: 2},
		{Kind: KindLock, Source: testKernel, Scheme: SchemeCyclic},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Fatalf("case %d (%+v) was accepted", i, req)
		}
	}
}

// TestCyclicCheckpointResumeByteIdentical is the cyclic form of the daemon's
// kill/resume contract: a fault kills the constrained attack mid-run, the
// transcript (carrying the cycle_break mode) survives on disk, and a
// restarted manager resumes it to bytes identical to a never-interrupted
// reference run.
func TestCyclicCheckpointResumeByteIdentical(t *testing.T) {
	req := cyclicAttack()

	// Reference: clean manager, no faults, no checkpoints.
	ref := submitWait(t, newManager(t, Config{Workers: 1}), req)

	ckptDir := t.TempDir()
	// The width-6 cyclic attack solves the miter once per DIP iteration plus
	// the terminal UNSAT and key-extraction calls (~7 total over its 5
	// iterations); failing the fifth call kills it mid-DIP-loop with several
	// iterations already checkpointed.
	inj := fault.New(fault.Plan{Seed: 1, FailEvery: map[string]uint64{"sat.solve": 5}})
	a, err := New(Config{
		Workers: 1, CheckpointDir: ckptDir,
		BaseContext: fault.NewContext(context.Background(), inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	j, err := a.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, a, j.ID)
	drainCtx, cancel := context.WithTimeout(context.Background(), 30e9)
	a.Drain(drainCtx)
	cancel()
	if got.State != StateFailed {
		t.Fatalf("faulted cyclic attack landed in state %s, want failed", got.State)
	}
	ckpt := filepath.Join(ckptDir, j.Key+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the injected failure: %v", err)
	}

	// Restart without the fault plan: the job resumes and matches the
	// reference byte for byte.
	b := newManager(t, Config{Workers: 1, CheckpointDir: ckptDir})
	final := submitWait(t, b, req)
	if !final.Resumed {
		t.Fatal("restarted run ignored the cyclic checkpoint")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("resumed cyclic result diverged:\nref: %s\ngot: %s", ref.Result, final.Result)
	}
	if _, err := os.Stat(ckpt); err == nil {
		t.Fatal("checkpoint not removed after the successful resume")
	}
}
