package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxRequestBody bounds a job submission body; maxBatchBody bounds a batch
// submission; maxCacheBody bounds a peer-cache PUT.
const (
	maxRequestBody = 1 << 20
	maxBatchBody   = 8 << 20
	maxCacheBody   = 16 << 20
)

// maxLongPoll caps the wait parameter of a long-poll GET so a client cannot
// pin a handler goroutine indefinitely.
const maxLongPoll = 60 * time.Second

// Handler returns the HTTP API:
//
//	POST   /v1/jobs        submit a job (202; 200 when served from cache or
//	                       attached to an identical in-flight job)
//	POST   /v1/jobs:batch  submit up to MaxBatch jobs in one request
//	GET    /v1/jobs        list jobs
//	GET    /v1/jobs/{id}   job status, progress and result; with
//	                       ?wait=30s[&since=N] long-polls until the job is
//	                       terminal or has progressed past N events
//	DELETE /v1/jobs/{id}   cancel a job
//	GET    /v1/cache/{key} peer-cache read from the local store tiers
//	PUT    /v1/cache/{key} peer-cache write
//	DELETE /v1/cache/{key} peer-cache invalidation
//	GET    /healthz        liveness (503 while draining)
//	GET    /metrics        Prometheus text exposition of the server registry
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", m.handleBatch)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /v1/cache/{key}", m.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", m.handleCachePut)
	mux.HandleFunc("DELETE /v1/cache/{key}", m.handleCacheDelete)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if retry, ok := m.admit(1); !ok {
		writeRateLimited(w, retry)
		return
	}
	j, err := m.Submit(req)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	status := http.StatusAccepted
	if j.State.Terminal() || j.AttachedTo != "" {
		status = http.StatusOK
	}
	writeJSON(w, status, j)
}

// BatchItem is one entry of a batch submission response: the job record on
// success, or the submission error for that item.
type BatchItem struct {
	Job   *Job   `json:"job,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleBatch submits up to MaxBatch jobs in one request. Admission takes
// one token per job up front; per-item failures (validation, queue full)
// land in the response items rather than failing the whole batch.
func (m *Manager) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Jobs []Request `json:"jobs"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	if len(body.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no jobs"))
		return
	}
	if len(body.Jobs) > m.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-job cap", len(body.Jobs), m.cfg.MaxBatch))
		return
	}
	if retry, ok := m.admit(len(body.Jobs)); !ok {
		writeRateLimited(w, retry)
		return
	}
	items := make([]BatchItem, len(body.Jobs))
	for i, req := range body.Jobs {
		j, err := m.Submit(req)
		if err != nil {
			items[i] = BatchItem{Error: err.Error()}
			continue
		}
		jc := j
		items[i] = BatchItem{Job: &jc}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": items})
}

// submitStatus maps submission errors onto HTTP status codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeRateLimited(w http.ResponseWriter, retry time.Duration) {
	secs := int64(retry / time.Second)
	if retry%time.Second != 0 || secs == 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, ErrRateLimited)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
}

// handleGet serves a job snapshot. With ?wait=DUR it long-polls: the
// response is sent when the job reaches a terminal state, when — given
// &since=N — its progress total exceeds N, or when DUR (capped at 60s)
// elapses, whichever comes first. Clients stream progress by re-issuing the
// poll with since set to the last progress_total they saw.
func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	if ws := q.Get("wait"); ws != "" {
		wait, err := time.ParseDuration(ws)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q", ws))
			return
		}
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
		since := -1
		if ss := q.Get("since"); ss != "" {
			since, err = strconv.Atoi(ss)
			if err != nil || since < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", ss))
				return
			}
		}
		j, ok := m.Wait(r.Context(), id, since, wait)
		if !ok {
			writeError(w, http.StatusNotFound, ErrUnknownJob)
			return
		}
		writeJSON(w, http.StatusOK, j)
		return
	}
	j, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// validCacheKey admits exactly the store's fingerprint keys: 64 lowercase
// hex characters, so a peer can never address a path outside the cache.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// The peer-cache endpoints serve the *local* store tiers only (memory,
// disk) — never the remote tier — so two daemons pointing -cache-peer at
// each other cannot ping-pong a lookup.

func (m *Manager) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cache key"))
		return
	}
	m.reg.Add("server_peer_cache_get_total", 1)
	data, ok := m.store.Local().Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cache miss"))
		return
	}
	m.reg.Add("server_peer_cache_hit_total", 1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (m *Manager) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cache key"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCacheBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read cache body: %w", err))
		return
	}
	m.reg.Add("server_peer_cache_put_total", 1)
	if err := m.store.Local().Put(key, data); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (m *Manager) handleCacheDelete(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cache key"))
		return
	}
	if err := m.store.Local().Delete(key); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, total, draining := m.Stats()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status": state, "queued": queued, "running": running,
		"jobs": total, "store_bytes": m.store.Bytes(),
	})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.Snapshot().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// A BadFieldError serves its structure alongside the message, so clients
	// can enumerate the supported values instead of parsing prose.
	var bf *BadFieldError
	if errors.As(err, &bf) {
		writeJSON(w, status, map[string]any{
			"error": err.Error(), "field": bf.Field,
			"got": bf.Got, "supported": bf.Supported,
		})
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
