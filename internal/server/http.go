package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBody bounds a job submission body.
const maxRequestBody = 1 << 20

// Handler returns the HTTP API:
//
//	POST   /v1/jobs      submit a job (202; 200 when served from cache)
//	GET    /v1/jobs      list jobs
//	GET    /v1/jobs/{id} job status, progress and result
//	DELETE /v1/jobs/{id} cancel a job
//	GET    /healthz      liveness (503 while draining)
//	GET    /metrics      Prometheus text exposition of the server registry
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := m.Submit(req)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	status := http.StatusAccepted
	if j.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, j)
}

// submitStatus maps submission errors onto HTTP status codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, total, draining := m.Stats()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status": state, "queued": queued, "running": running,
		"jobs": total, "store_bytes": m.store.Bytes(),
	})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.Snapshot().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
