// Package server is the serving layer of the repository: an asynchronous job
// manager fronted by a small HTTP API, turning the one-shot CLI workloads —
// prepare, bind, lock, attack, codesign — into submit/poll/cancel jobs with
// per-job deadlines, progress telemetry, cancellation with partial results,
// checkpointing of in-flight attacks, and a content-addressed result cache
// (internal/store) that serves repeated identical requests byte-identically
// without recomputing.
//
// The package composes the substrate the earlier layers built: worker slots
// run on internal/parallel, job deadlines and cancellation ride
// context.Context into the compute stack and come back as internal/interrupt
// typed errors with partial results, per-job progress events arrive through
// internal/progress hooks, counters land in a server-owned internal/metrics
// registry exported at /metrics, and interrupted attacks persist their oracle
// transcript through the internal/satattack checkpoint path so a restarted
// server resumes them bit-identically.
package server

import (
	"fmt"

	"bindlock"
	"bindlock/internal/keymat"
	"bindlock/internal/sat"
	"bindlock/internal/store"
)

// Request is a job submission, expressed in facade terms: a workload kind
// plus the same knobs the bindlock package's With* options and the CLI tools
// expose. Unset numeric fields take the facade defaults; see resolve.
type Request struct {
	// Kind selects the workload: "prepare", "bind", "lock", "attack" or
	// "codesign".
	Kind string `json:"kind"`

	// Source is kernel source in the frontend language. Exactly one of
	// Source and Bench must be set for the prepare-family kinds.
	Source string `json:"source,omitempty"`
	// Bench names one of the 11 MediaBench-derived kernels.
	Bench string `json:"bench,omitempty"`
	// MaxFUs is the per-class FU allocation bound (default 2).
	MaxFUs int `json:"max_fus,omitempty"`
	// Samples is the workload length (default 600).
	Samples int `json:"samples,omitempty"`
	// Workload selects the synthetic workload family: "uniform",
	// "image-blocks", "audio", "bitstream" or "sensor-noise". Empty means
	// the benchmark's paper-matched family, or "uniform" for Source.
	Workload string `json:"workload,omitempty"`
	// Seed is the workload generator seed (default 1; 0 means default).
	Seed int64 `json:"seed,omitempty"`

	// Class is the FU class to bind or lock: "adder" (default) or
	// "multiplier".
	Class string `json:"class,omitempty"`
	// Binder selects the binding algorithm for "bind" jobs:
	// "obfuscation-aware" (default), "area", "power" or "random".
	Binder string `json:"binder,omitempty"`
	// LockedFUs is the locked FU count |L| (default 1).
	LockedFUs int `json:"locked_fus,omitempty"`
	// MintermsPerFU is the locked minterm count per FU |M_l| (default 1).
	MintermsPerFU int `json:"minterms_per_fu,omitempty"`
	// Candidates is the candidate-pool size the co-design search draws from
	// (default 10; "codesign" only).
	Candidates int `json:"candidates,omitempty"`

	// OperandBits is the attacked adder's operand width (default 3,
	// maximum 8; "attack" only).
	OperandBits int `json:"operand_bits,omitempty"`
	// Secret is the SFLL-protected input minterm; must fit 2*OperandBits
	// bits ("attack" only). Supplying one explicitly is reproducible mode;
	// production traffic should set RandomSecret instead.
	Secret uint64 `json:"secret,omitempty"`
	// RandomSecret draws the secret from crypto/rand at submission —
	// per-request key material with no caller-visible seed, the production
	// default for real locking keys ("attack" only; mutually exclusive
	// with an explicit Secret). The drawn value enters the fingerprint, so
	// random jobs never dedup or share cache entries with each other, and
	// it is redacted from the job record: only the result payload carries
	// it.
	RandomSecret bool `json:"random_secret,omitempty"`
	// SecretRedacted is set on served job records whose Secret field was
	// zeroed for key hygiene; it is ignored on submission.
	SecretRedacted bool `json:"secret_redacted,omitempty"`
	// Solver names the sat backend the attack solves with ("" means the
	// default, "cdcl"; "attack" only). It is part of the cache fingerprint:
	// different engines walk different DIP sequences, so their results are
	// never served interchangeably.
	Solver string `json:"solver,omitempty"`
	// Incremental selects the transcript-deferred key-solver mode
	// ("attack" only). It is validated but deliberately excluded from the
	// fingerprint: both modes produce bit-identical results by
	// construction, so their cache entries must coincide.
	Incremental bool `json:"incremental,omitempty"`
	// Scheme selects the attacked locking scheme: "sfll" (default; SFLL-HD(0)
	// on the secret minterm) or "cyclic" (SRCLock-style feedback obfuscation,
	// attacked with CycSAT cycle-breaking constraints). "attack" only.
	Scheme string `json:"scheme,omitempty"`
	// CycleEdges is the key-programmed feedback MUX count of a cyclic lock
	// (default 2, maximum 8; scheme "cyclic" only).
	CycleEdges int `json:"cycle_edges,omitempty"`
	// CycleDecoys is the acyclic decoy MUX count of a cyclic lock
	// (default 2, maximum 8; scheme "cyclic" only).
	CycleDecoys int `json:"cycle_decoys,omitempty"`
}

// The job kinds.
const (
	KindPrepare  = "prepare"
	KindBind     = "bind"
	KindLock     = "lock"
	KindAttack   = "attack"
	KindCodesign = "codesign"
)

// Kinds lists every job kind the server accepts.
func Kinds() []string {
	return []string{KindPrepare, KindBind, KindLock, KindAttack, KindCodesign}
}

// The attack schemes.
const (
	SchemeSFLL   = "sfll"
	SchemeCyclic = "cyclic"
)

// AttackSchemes lists every locking scheme attack jobs accept.
func AttackSchemes() []string {
	return []string{SchemeSFLL, SchemeCyclic}
}

// BadFieldError rejects a submission over one enumerated field, carrying the
// offending value and the supported ones so the HTTP layer can serve a
// machine-readable 400 instead of a bare message.
type BadFieldError struct {
	Field     string   `json:"field"`
	Got       string   `json:"got"`
	Supported []string `json:"supported"`
}

func (e *BadFieldError) Error() string {
	return fmt.Sprintf("unknown %s %q (one of %v)", e.Field, e.Got, e.Supported)
}

// workloads maps request names onto facade workload kinds.
var workloads = map[string]bindlock.WorkloadKind{
	"uniform":      bindlock.WorkloadUniform,
	"image-blocks": bindlock.WorkloadImageBlocks,
	"audio":        bindlock.WorkloadAudio,
	"bitstream":    bindlock.WorkloadBitstream,
	"sensor-noise": bindlock.WorkloadSensorNoise,
}

// resolved is a validated request with every default filled in and every
// string field parsed, so fingerprinting and execution work from one
// unambiguous value.
type resolved struct {
	Request
	gen   bindlock.WorkloadKind
	class bindlock.Class
}

// usesDesign reports whether the kind runs the prepare flow first.
func (r *resolved) usesDesign() bool { return r.Kind != KindAttack }

// resolve validates req and fills in defaults. The returned value is
// self-contained: two requests that resolve identically are the same job.
func resolve(req Request) (*resolved, error) {
	r := &resolved{Request: req}
	switch r.Kind {
	case KindPrepare, KindBind, KindLock, KindAttack, KindCodesign:
	case "":
		return nil, fmt.Errorf("kind is required (one of %v)", Kinds())
	default:
		return nil, &BadFieldError{Field: "kind", Got: r.Kind, Supported: Kinds()}
	}

	if r.Kind == KindAttack {
		if r.Source != "" || r.Bench != "" {
			return nil, fmt.Errorf("attack jobs take operand_bits and secret, not source/bench")
		}
		if r.OperandBits == 0 {
			r.OperandBits = 3
		}
		if r.OperandBits < 1 || r.OperandBits > 8 {
			return nil, fmt.Errorf("operand_bits %d outside [1, 8]", r.OperandBits)
		}
		switch r.Scheme {
		case "", SchemeSFLL:
			r.Scheme = SchemeSFLL
		case SchemeCyclic:
		default:
			return nil, &BadFieldError{Field: "scheme", Got: r.Scheme, Supported: AttackSchemes()}
		}
		if r.Scheme == SchemeCyclic {
			// A cyclic lock's key is the acyclic MUX selection the seeded
			// placement produces; there is no secret minterm to protect.
			if r.Secret != 0 || r.RandomSecret {
				return nil, fmt.Errorf("secret and random_secret apply to sfll attacks only")
			}
			r.SecretRedacted = false
			if r.CycleEdges == 0 {
				r.CycleEdges = 2
			}
			if r.CycleEdges < 1 || r.CycleEdges > 8 {
				return nil, fmt.Errorf("cycle_edges %d outside [1, 8]", r.CycleEdges)
			}
			if r.CycleDecoys == 0 {
				r.CycleDecoys = 2
			}
			if r.CycleDecoys < 0 || r.CycleDecoys > 8 {
				return nil, fmt.Errorf("cycle_decoys %d outside [0, 8]", r.CycleDecoys)
			}
			if r.Seed == 0 {
				r.Seed = 1
			}
			if r.Solver == "" {
				r.Solver = sat.DefaultBackend
			}
			if _, err := sat.BackendFactory(r.Solver); err != nil {
				return nil, err
			}
			return r, nil
		}
		if r.CycleEdges != 0 || r.CycleDecoys != 0 {
			return nil, fmt.Errorf("cycle_edges and cycle_decoys apply to cyclic attacks only")
		}
		r.SecretRedacted = false
		if r.RandomSecret {
			if r.Secret != 0 {
				return nil, fmt.Errorf("random_secret and an explicit secret are mutually exclusive")
			}
			s, err := keymat.RandomSecret(2 * r.OperandBits)
			if err != nil {
				return nil, err
			}
			r.Secret = s
		}
		if max := uint64(1)<<(2*r.OperandBits) - 1; r.Secret > max {
			return nil, fmt.Errorf("secret %d does not fit %d input bits", r.Secret, 2*r.OperandBits)
		}
		if r.Solver == "" {
			r.Solver = sat.DefaultBackend
		}
		if _, err := sat.BackendFactory(r.Solver); err != nil {
			return nil, err
		}
		return r, nil
	}
	if r.Solver != "" || r.Incremental || r.RandomSecret {
		return nil, fmt.Errorf("solver, incremental and random_secret apply to attack jobs only")
	}
	if r.Scheme != "" || r.CycleEdges != 0 || r.CycleDecoys != 0 {
		return nil, fmt.Errorf("scheme, cycle_edges and cycle_decoys apply to attack jobs only")
	}

	// The prepare-family kinds share the front-of-line flow.
	if (r.Source == "") == (r.Bench == "") {
		return nil, fmt.Errorf("exactly one of source and bench is required")
	}
	if r.MaxFUs == 0 {
		r.MaxFUs = 2
	}
	if r.MaxFUs < 1 || r.MaxFUs > 8 {
		return nil, fmt.Errorf("max_fus %d outside [1, 8]", r.MaxFUs)
	}
	if r.Samples == 0 {
		r.Samples = 600
	}
	if r.Samples < 1 || r.Samples > 1<<20 {
		return nil, fmt.Errorf("samples %d outside [1, %d]", r.Samples, 1<<20)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Workload == "" {
		if r.Bench != "" {
			b, err := bindlock.BenchmarkByName(r.Bench)
			if err != nil {
				return nil, err
			}
			r.gen = b.Gen
		} else {
			r.gen = bindlock.WorkloadUniform
		}
		r.Workload = r.gen.String()
	} else {
		gen, ok := workloads[r.Workload]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", r.Workload)
		}
		r.gen = gen
		if r.Bench != "" {
			if _, err := bindlock.BenchmarkByName(r.Bench); err != nil {
				return nil, err
			}
		}
	}

	switch r.Class {
	case "", "adder":
		r.Class, r.class = "adder", bindlock.ClassAdd
	case "multiplier":
		r.class = bindlock.ClassMul
	default:
		return nil, fmt.Errorf("unknown class %q (adder or multiplier)", r.Class)
	}

	if r.Kind == KindPrepare {
		return r, nil
	}

	if r.LockedFUs == 0 {
		r.LockedFUs = 1
	}
	if r.LockedFUs < 1 || r.LockedFUs > r.MaxFUs {
		return nil, fmt.Errorf("locked_fus %d outside [1, %d]", r.LockedFUs, r.MaxFUs)
	}
	if r.MintermsPerFU == 0 {
		r.MintermsPerFU = 1
	}
	if r.MintermsPerFU < 1 || r.MintermsPerFU > 64 {
		return nil, fmt.Errorf("minterms_per_fu %d outside [1, 64]", r.MintermsPerFU)
	}

	if r.Kind == KindBind {
		switch r.Binder {
		case "":
			r.Binder = "obfuscation-aware"
		case "obfuscation-aware", "area", "power", "random":
		default:
			return nil, fmt.Errorf("unknown binder %q (obfuscation-aware, area, power or random)", r.Binder)
		}
	}

	if r.Kind == KindCodesign {
		if r.Candidates == 0 {
			r.Candidates = 10
		}
		if r.Candidates < r.LockedFUs*r.MintermsPerFU || r.Candidates > 4096 {
			return nil, fmt.Errorf("candidates %d outside [%d, 4096]",
				r.Candidates, r.LockedFUs*r.MintermsPerFU)
		}
	}
	return r, nil
}

// prepareFingerprint covers exactly the inputs of the front-of-line flow;
// it keys the design memo, and the prepare kind's cache entries.
func (r *resolved) prepareFingerprint() *store.Fingerprint {
	return store.NewFingerprint(KindPrepare).
		Str("source", r.Source).
		Str("bench", r.Bench).
		Int("max_fus", int64(r.MaxFUs)).
		Int("samples", int64(r.Samples)).
		Str("workload", r.Workload).
		Int("seed", r.Seed)
}

// fingerprint returns the job's cache fingerprint: every resolved field the
// result depends on, and nothing else, so irrelevant fields can neither
// split nor collide cache entries.
func (r *resolved) fingerprint() *store.Fingerprint {
	if r.Kind == KindAttack {
		// Incremental is deliberately absent: both attack modes are
		// bit-identical, so caching them separately would only halve the
		// hit rate. The scheme always enters; only the fields that scheme
		// actually reads follow it, so an sfll job can never collide with a
		// cyclic one and irrelevant knobs can never split entries.
		fp := store.NewFingerprint(KindAttack).
			Int("operand_bits", int64(r.OperandBits)).
			Str("solver", r.Solver).
			Str("scheme", r.Scheme)
		if r.Scheme == SchemeCyclic {
			return fp.
				Int("cycle_edges", int64(r.CycleEdges)).
				Int("cycle_decoys", int64(r.CycleDecoys)).
				Int("seed", r.Seed)
		}
		return fp.Uint("secret", r.Secret)
	}
	if r.Kind == KindPrepare {
		return r.prepareFingerprint()
	}
	// The prepare fields again, under the job's own kind.
	base := store.NewFingerprint(r.Kind).
		Str("source", r.Source).
		Str("bench", r.Bench).
		Int("max_fus", int64(r.MaxFUs)).
		Int("samples", int64(r.Samples)).
		Str("workload", r.Workload).
		Int("seed", r.Seed).
		Str("class", r.Class).
		Int("locked_fus", int64(r.LockedFUs)).
		Int("minterms_per_fu", int64(r.MintermsPerFU))
	switch r.Kind {
	case KindBind:
		base.Str("binder", r.Binder)
	case KindCodesign:
		base.Int("candidates", int64(r.Candidates))
	}
	return base
}
