package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bindlock/internal/metrics"
	"bindlock/internal/store"
)

// TestSingleFlightHammer is the checkpoint-clobbering regression: N
// concurrent identical attack submissions must coalesce onto one execution —
// one checkpoint file on disk at any point during the run (zero after
// success), exactly one completed execution in the metrics, and the same
// byte-identical result on every record.
func TestSingleFlightHammer(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	m := newManager(t, Config{Workers: 4, MaxQueue: 64, CheckpointDir: dir, Registry: reg})

	// Watch the checkpoint directory for the duration: two executions of
	// the same fingerprint would still share one path, but pre-single-flight
	// they deleted each other's transcript mid-run; with more than one file
	// something leaked a foreign key's checkpoint.
	stopWatch := make(chan struct{})
	watchErr := make(chan error, 1)
	go func() {
		defer close(watchErr)
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				continue
			}
			n := 0
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".ckpt") {
					n++
				}
			}
			if n > 1 {
				watchErr <- errors.New("more than one checkpoint file on disk mid-run")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const dups = 8
	req := Request{Kind: KindAttack, OperandBits: 5, Secret: 0x2F1}
	var wg sync.WaitGroup
	start := make(chan struct{})
	ids := make([]string, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := m.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	close(start)
	wg.Wait()

	var results [][]byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission did not land")
		}
		j := waitTerminal(t, m, id)
		if j.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, j.State, j.Error)
		}
		if len(j.Result) == 0 {
			t.Fatalf("job %s landed without result bytes", id)
		}
		results = append(results, j.Result)
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("result %d diverged from result 0:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}

	close(stopWatch)
	if err := <-watchErr; err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("%d checkpoint files left after success", len(entries))
	}

	snap := reg.Snapshot()
	done, _ := snap.Counter("server_jobs_done_total")
	deduped, _ := snap.Counter("server_jobs_deduped_total")
	cached, _ := snap.Counter("server_jobs_cached_total")
	if done != 1 {
		t.Fatalf("server_jobs_done_total = %d, want exactly 1 execution", done)
	}
	if deduped+cached != dups-1 {
		t.Fatalf("deduped %d + cached %d = %d, want %d duplicates", deduped, cached, deduped+cached, dups-1)
	}
	if deduped == 0 {
		t.Log("warning: every duplicate hit the cache; dedup window not exercised on this run")
	}
}

// TestSingleFlightRecordFields pins the attached_to / duplicates wiring and
// the shared progress stream.
func TestSingleFlightRecordFields(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	req := Request{Kind: KindAttack, OperandBits: 5, Secret: 0x19D}
	primary, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, m, primary.ID, 2)
	dup, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup.AttachedTo != primary.ID {
		t.Fatalf("duplicate attached_to %q, want %q", dup.AttachedTo, primary.ID)
	}
	if dup.State != StateRunning {
		t.Fatalf("duplicate of a running job reports state %s", dup.State)
	}
	p, _ := m.Get(primary.ID)
	found := false
	for _, id := range p.Duplicates {
		if id == dup.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("primary duplicates %v missing %s", p.Duplicates, dup.ID)
	}
	got := waitTerminal(t, m, dup.ID)
	want := waitTerminal(t, m, primary.ID)
	if got.State != StateDone || want.State != StateDone {
		t.Fatalf("states: dup %s primary %s", got.State, want.State)
	}
	if !bytes.Equal(got.Result, want.Result) {
		t.Fatal("attached record result diverged from primary")
	}
	if got.ProgressTotal == 0 {
		t.Fatal("attached record saw no progress from the shared ring")
	}
}

// TestCancelAttachedDetaches pins that cancelling a duplicate record only
// detaches that record: the shared execution still completes for the
// primary.
func TestCancelAttachedDetaches(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	req := Request{Kind: KindAttack, OperandBits: 5, Secret: 0x0B7}
	primary, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, m, primary.ID, 2)
	dup, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup.AttachedTo == "" {
		t.Skip("execution finished before the duplicate attached")
	}
	if _, err := m.Cancel(dup.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, dup.ID)
	if got.State != StateCancelled {
		t.Fatalf("cancelled duplicate state %s", got.State)
	}
	p := waitTerminal(t, m, primary.ID)
	if p.State != StateDone {
		t.Fatalf("primary state %s after duplicate cancel, want done (error %q)", p.State, p.Error)
	}
	// The detached record keeps its cancelled state; the fan-out must not
	// overwrite it.
	if got, _ := m.Get(dup.ID); got.State != StateCancelled || got.Result != nil {
		t.Fatalf("detached record rewritten by fan-out: state %s result %q", got.State, got.Result)
	}
}

// TestDrainServesCacheHits is the draining-order regression: a cache hit
// needs no worker, so it must be served (200, cached) even while draining,
// while uncached submissions still bounce with ErrDraining.
func TestDrainServesCacheHits(t *testing.T) {
	m, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	warm := submitWait(t, m, fastAttack())

	// Drain under load: a slow job is mid-flight when the drain begins.
	slow, err := m.Submit(Request{Kind: KindAttack, OperandBits: 5, Secret: 0x111})
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, m, slow.ID, 2)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, _, draining := m.Stats(); draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	hit, err := m.Submit(fastAttack())
	if err != nil {
		t.Fatalf("cached submission rejected while draining: %v", err)
	}
	if !hit.Cached || hit.State != StateDone {
		t.Fatalf("draining cache hit: cached=%v state=%s", hit.Cached, hit.State)
	}
	if !bytes.Equal(hit.Result, warm.Result) {
		t.Fatal("draining cache hit diverged from the stored bytes")
	}
	if _, err := m.Submit(Request{Kind: KindAttack, OperandBits: 4, Secret: 0x22}); !errors.Is(err, ErrDraining) {
		t.Fatalf("uncached submission while draining: %v, want ErrDraining", err)
	}
	waitTerminal(t, m, slow.ID)
}

// TestJobRetentionBounded pins the terminal-record GC: a sustained
// submission loop holds the retained record count at the configured bound
// instead of growing forever.
func TestJobRetentionBounded(t *testing.T) {
	reg := metrics.New()
	const bound = 64
	m := newManager(t, Config{Workers: 2, RetainJobs: bound, Registry: reg})
	submitWait(t, m, fastAttack()) // cold run populates the cache

	for i := 0; i < 10000; i++ {
		if _, err := m.Submit(fastAttack()); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if got := len(m.List()); got != bound {
		t.Fatalf("retained %d records, want the %d bound", got, bound)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Gauge("server_jobs_retained"); !ok || v != bound {
		t.Fatalf("server_jobs_retained = %v (ok=%v), want %d", v, ok, bound)
	}
	if v, _ := snap.Counter("server_jobs_gced_total"); v == 0 {
		t.Fatal("GC counter never moved over a 10k-submission loop")
	}
}

// TestJobRetentionAge pins the age bound: terminal records older than
// RetainAge vanish on the next submission whatever the count bound.
func TestJobRetentionAge(t *testing.T) {
	m := newManager(t, Config{Workers: 2, RetainAge: time.Nanosecond})
	submitWait(t, m, fastAttack())
	time.Sleep(5 * time.Millisecond)
	if _, err := m.Submit(fastAttack()); err != nil {
		t.Fatal(err)
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("retained %d records, want only the newest", got)
	}
}

// TestRetentionSparesLiveJobs pins that the GC never drops queued or
// running records, however tight the bound.
func TestRetentionSparesLiveJobs(t *testing.T) {
	m := newManager(t, Config{Workers: 1, MaxQueue: 16, RetainJobs: 1})
	var live []string
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 4, Secret: uint64(0x30 + i)})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, j.ID)
	}
	for _, id := range live {
		j := waitTerminal(t, m, id)
		if j.State != StateDone {
			t.Fatalf("live job %s was lost to GC: %s (%s)", id, j.State, j.Error)
		}
	}
}

// TestPeerCacheSharesResults is the fleet contract end to end: daemon A runs
// an attack; daemon B, pointed at A through an HTTPTier, serves the same
// request as a cold cache hit without running anything.
func TestPeerCacheSharesResults(t *testing.T) {
	regA := metrics.New()
	storeA, err := store.Open(filepath.Join(t.TempDir(), "a"), 0, regA)
	if err != nil {
		t.Fatal(err)
	}
	a := newManager(t, Config{Workers: 2, Store: storeA, Registry: regA})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	req := Request{Kind: KindAttack, OperandBits: 4, Secret: 0xA7}
	cold := submitWait(t, a, req)

	regB := metrics.New()
	storeB, err := store.Open(filepath.Join(t.TempDir(), "b"), 0, regB)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := store.NewHTTPTier(tsA.URL, 0, regB)
	if err != nil {
		t.Fatal(err)
	}
	storeB.AttachRemote(remote)
	b := newManager(t, Config{Workers: 2, Store: storeB, Registry: regB})

	warm, err := b.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.State != StateDone {
		t.Fatalf("peer B cold hit: cached=%v state=%s", warm.Cached, warm.State)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Fatalf("peer-shared result diverged:\nA: %s\nB: %s", cold.Result, warm.Result)
	}
	snapB := regB.Snapshot()
	if v, _ := snapB.Counter("store_remote_hit_total"); v != 1 {
		t.Fatalf("store_remote_hit_total on B = %d, want 1", v)
	}
	if v, _ := snapB.Counter("server_jobs_done_total"); v != 0 {
		t.Fatalf("peer B executed %d jobs, want 0", v)
	}
	// The hit was promoted into B's local tiers: a second lookup stays local.
	if _, ok := storeB.Local().Get(cold.Key); !ok {
		t.Fatal("peer hit was not promoted into B's local tiers")
	}
}

// TestHTTPPeerCacheEndpoints drives the /v1/cache API directly.
func TestHTTPPeerCacheEndpoints(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	key := strings.Repeat("ab", 32)
	url := ts.URL + "/v1/cache/" + key

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status %d, want 404", resp.StatusCode)
	}

	put, _ := http.NewRequest(http.MethodPut, url, strings.NewReader(`{"v":1}`))
	resp, err = http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put status %d, want 204", resp.StatusCode)
	}

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || buf.String() != `{"v":1}` {
		t.Fatalf("get status %d body %q", resp.StatusCode, buf.String())
	}

	del, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}

	// Keys that are not 64-char hex are rejected before touching the store.
	resp, err = http.Get(ts.URL + "/v1/cache/..%2fnope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad key status %d, want 400/404", resp.StatusCode)
	}
}

// TestHTTPLongPoll pins the streaming-progress contract: a long-poll with
// since returns as soon as new progress lands (well before the job ends),
// and a poll on a terminal job returns immediately.
func TestHTTPLongPoll(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 5, Secret: 0x1EF})
	if err != nil {
		t.Fatal(err)
	}

	// Stream: each poll waits for progress past what we saw last.
	since := 0
	polls := 0
	var last Job
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "?wait=30s&since=" + strconv.Itoa(since))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("long poll status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		polls++
		if last.State.Terminal() {
			break
		}
		if last.ProgressTotal <= since {
			t.Fatalf("long poll returned without new progress: total %d, since %d, state %s",
				last.ProgressTotal, since, last.State)
		}
		since = last.ProgressTotal
	}
	if last.State != StateDone {
		t.Fatalf("streamed job ended %s (%s)", last.State, last.Error)
	}
	if polls < 2 {
		t.Fatalf("streaming made only %d polls; progress events never woke a waiter", polls)
	}

	// A terminal job answers a long-poll immediately.
	begin := time.Now()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("terminal long-poll blocked %v", elapsed)
	}

	// Malformed parameters are rejected.
	for _, q := range []string{"?wait=bogus", "?wait=5s&since=-2", "?wait=5s&since=x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHTTPBatchSubmit pins the batch endpoint: per-item outcomes, the batch
// cap, and admission control with Retry-After.
func TestHTTPBatchSubmit(t *testing.T) {
	m := newManager(t, Config{Workers: 2, MaxBatch: 4})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	body := `{"jobs": [
		{"kind": "attack", "operand_bits": 3, "secret": 5},
		{"kind": "attack", "operand_bits": 3, "secret": 6},
		{"kind": "nope"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Jobs []BatchItem `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(out.Jobs))
	}
	for i := 0; i < 2; i++ {
		if out.Jobs[i].Job == nil || out.Jobs[i].Error != "" {
			t.Fatalf("item %d: %+v", i, out.Jobs[i])
		}
		waitTerminal(t, m, out.Jobs[i].Job.ID)
	}
	if out.Jobs[2].Job != nil || out.Jobs[2].Error == "" {
		t.Fatalf("invalid item accepted: %+v", out.Jobs[2])
	}

	// Over the cap: rejected outright.
	over := `{"jobs": [{}, {}, {}, {}, {}]}`
	resp, err = http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPAdmissionControl pins the token bucket: beyond the burst the
// submit endpoints answer 429 with a Retry-After hint, and the bucket
// refills over time.
func TestHTTPAdmissionControl(t *testing.T) {
	m := newManager(t, Config{Workers: 2, RatePerSec: 5, Burst: 2})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	okN, limited := 0, 0
	var retryAfter string
	for i := 0; i < 4; i++ {
		status, _ := postJob(t, ts, Request{Kind: KindAttack, OperandBits: 3, Secret: uint64(10 + i)})
		switch status {
		case http.StatusAccepted, http.StatusOK:
			okN++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("submit %d: status %d", i, status)
		}
	}
	if okN != 2 || limited != 2 {
		t.Fatalf("admitted %d, limited %d; want 2/2", okN, limited)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind": "attack", "operand_bits": 3, "secret": 60}`))
	if err != nil {
		t.Fatal(err)
	}
	retryAfter = resp.Header.Get("Retry-After")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || retryAfter == "" {
		t.Fatalf("status %d Retry-After %q, want 429 with a hint", resp.StatusCode, retryAfter)
	}

	// The bucket refills at 5/s: shortly, a submission is admitted again.
	deadline := time.Now().Add(5 * time.Second)
	admitted := false
	for time.Now().Before(deadline) && !admitted {
		time.Sleep(250 * time.Millisecond)
		status, _ := postJob(t, ts, Request{Kind: KindAttack, OperandBits: 3, Secret: 61})
		admitted = status == http.StatusAccepted || status == http.StatusOK
	}
	if !admitted {
		t.Fatal("bucket never refilled")
	}
}

// TestQueueDepthGauge pins the atomic queue-depth accounting: after every
// submitted job has drained, the published depth is exactly zero, and cached
// submissions never move it.
func TestQueueDepthGauge(t *testing.T) {
	reg := metrics.New()
	m := newManager(t, Config{Workers: 2, MaxQueue: 32, Registry: reg})
	var ids []string
	for i := 0; i < 8; i++ {
		j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 3, Secret: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	if n := m.queueN.Load(); n != 0 {
		t.Fatalf("queue depth counter = %d after drain, want 0", n)
	}
	snap := reg.Snapshot()
	depth, _ := snap.Gauge("server_queue_depth")
	if depth != 0 {
		t.Fatalf("server_queue_depth = %v after all jobs ran, want 0", depth)
	}

	// A cached submission never touches the queue, so the gauge must not
	// move even transiently: overwrite it with a sentinel and re-submit.
	reg.Set("server_queue_depth", -1)
	if _, err := m.Submit(Request{Kind: KindAttack, OperandBits: 3, Secret: 0}); err != nil {
		t.Fatal(err)
	}
	if depth, _ := reg.Snapshot().Gauge("server_queue_depth"); depth != -1 {
		t.Fatalf("cached submission rewrote server_queue_depth to %v", depth)
	}
}
