package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bindlock/internal/metrics"
	"bindlock/internal/store"
)

const testKernel = `
kernel demo;
input a, b, c, d;
output y, z;
t0 = a * b;
t1 = c * d;
t2 = t0 + t1;
t3 = t2 + a;
t4 = t3 + c;
y = t4;
z = t2 - d;
`

// fastPrepare keeps the workload small so prepare-family jobs run in
// milliseconds.
func fastPrepare(kind string) Request {
	return Request{Kind: kind, Source: testKernel, Samples: 100, Seed: 7}
}

// fastAttack is a width-3 attack: a handful of DIPs, a few milliseconds.
func fastAttack() Request {
	return Request{Kind: KindAttack, OperandBits: 3, Secret: 0b101101}
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return m
}

// waitTerminal polls until the job reaches a terminal state. The deadline is
// sized for the width-5 attack jobs under -race on a loaded single-core box
// (~70-90s); fast jobs return as soon as they finish.
func waitTerminal(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	deadline := time.Now().Add(240 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func submitWait(t *testing.T, m *Manager, req Request) Job {
	t.Helper()
	j, err := m.Submit(req)
	if err != nil {
		t.Fatalf("submit %s: %v", req.Kind, err)
	}
	j = waitTerminal(t, m, j.ID)
	if j.State != StateDone {
		t.Fatalf("%s job %s: state %s, error %q", req.Kind, j.ID, j.State, j.Error)
	}
	return j
}

func TestManagerRunsEveryKind(t *testing.T) {
	m := newManager(t, Config{Workers: 2})

	prep := submitWait(t, m, fastPrepare(KindPrepare))
	var pr PrepareResult
	if err := json.Unmarshal(prep.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Adds == 0 || pr.Muls == 0 || pr.NumFUs == 0 {
		t.Fatalf("empty prepare result: %+v", pr)
	}
	if prep.ProgressTotal == 0 {
		t.Fatal("prepare job recorded no progress events")
	}

	lock := submitWait(t, m, fastPrepare(KindLock))
	var lr LockResult
	if err := json.Unmarshal(lock.Result, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Locks) != 1 || lr.Lambda <= 0 {
		t.Fatalf("lock result %+v", lr)
	}

	bind := submitWait(t, m, fastPrepare(KindBind))
	var br BindResult
	if err := json.Unmarshal(bind.Result, &br); err != nil {
		t.Fatal(err)
	}
	if br.Binder != "obfuscation-aware" || len(br.Assign) == 0 {
		t.Fatalf("bind result %+v", br)
	}

	cod := submitWait(t, m, fastPrepare(KindCodesign))
	var cr CodesignResult
	if err := json.Unmarshal(cod.Result, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Locks) == 0 || cr.Enumerated == 0 {
		t.Fatalf("codesign result %+v", cr)
	}
	// Co-design picks minterms at least as good as the frequency-top default.
	if cr.Errors < br.Errors {
		t.Fatalf("codesign errors %d below fixed-lock bind errors %d", cr.Errors, br.Errors)
	}

	atk := submitWait(t, m, fastAttack())
	var ar AttackResult
	if err := json.Unmarshal(atk.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Iterations == 0 || len(ar.Key) != ar.KeyBits || strings.Trim(ar.Key, "01") != "" {
		t.Fatalf("attack result %+v", ar)
	}
}

// TestBaselineBindersServed pins that the bind kind serves every binder.
func TestBaselineBindersServed(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	for _, binder := range []string{"area", "power", "random"} {
		req := fastPrepare(KindBind)
		req.Binder = binder
		j := submitWait(t, m, req)
		var br BindResult
		if err := json.Unmarshal(j.Result, &br); err != nil {
			t.Fatal(err)
		}
		if br.Binder != binder || len(br.Assign) == 0 {
			t.Fatalf("binder %s: result %+v", binder, br)
		}
	}
}

// TestCacheHitIsByteIdentical is the store determinism contract end to end:
// a repeated identical request is served from the cache (no recompute),
// increments the hit counters, and returns the cold run's exact bytes.
func TestCacheHitIsByteIdentical(t *testing.T) {
	reg := metrics.New()
	m := newManager(t, Config{Workers: 2, Registry: reg})

	cold := submitWait(t, m, fastAttack())
	if cold.Cached {
		t.Fatal("first run must not be cached")
	}

	warm, err := m.Submit(fastAttack())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.State != StateDone {
		t.Fatalf("second run: cached=%v state=%s", warm.Cached, warm.State)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Fatalf("cache hit diverged from cold run:\ncold: %s\nwarm: %s", cold.Result, warm.Result)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("server_jobs_cached_total"); v != 1 {
		t.Fatalf("server_jobs_cached_total = %d, want 1", v)
	}
	if v, _ := snap.Counter("store_hit_total"); v == 0 {
		t.Fatal("store_hit_total did not increment")
	}

	// A delta in any request field reaches the fingerprint: different secret,
	// different job.
	other := fastAttack()
	other.Secret = 0b101100
	j := submitWait(t, m, other)
	if j.Cached {
		t.Fatal("different secret must not hit the cache")
	}
}

// TestDesignMemoSharesPrepares pins that a burst of jobs over one kernel
// prepares it once.
func TestDesignMemoSharesPrepares(t *testing.T) {
	reg := metrics.New()
	m := newManager(t, Config{Workers: 1, Registry: reg})
	submitWait(t, m, fastPrepare(KindPrepare))
	submitWait(t, m, fastPrepare(KindLock))
	submitWait(t, m, fastPrepare(KindBind))
	snap := reg.Snapshot()
	if v, _ := snap.Counter("server_design_memo_miss_total"); v != 1 {
		t.Fatalf("design memo misses = %d, want 1", v)
	}
	if v, _ := snap.Counter("server_design_memo_hit_total"); v != 2 {
		t.Fatalf("design memo hits = %d, want 2", v)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	bad := []Request{
		{},
		{Kind: "unknown"},
		{Kind: KindPrepare},
		{Kind: KindPrepare, Source: testKernel, Bench: "fir"},
		{Kind: KindPrepare, Source: testKernel, Workload: "nope"},
		{Kind: KindAttack, Source: testKernel},
		{Kind: KindAttack, OperandBits: 99},
		{Kind: KindAttack, OperandBits: 3, Secret: 1 << 20},
		{Kind: KindBind, Source: testKernel, Binder: "nope"},
		{Kind: KindLock, Source: testKernel, LockedFUs: 5},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("request %d accepted: %+v", i, req)
		}
	}
}

// TestCancelRunningJobSurfacesPartial cancels an in-flight attack and checks
// the partial result and checkpoint land on the job record.
func TestCancelRunningJobSurfacesPartial(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, Config{Workers: 1, CheckpointDir: dir})
	// Width 5 runs for roughly a second: long enough to catch mid-flight.
	j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 5, Secret: 0x2A5})
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, m, j.ID, 3)
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
	var p AttackPartial
	if err := json.Unmarshal(got.Partial, &p); err != nil {
		t.Fatalf("partial %q: %v", got.Partial, err)
	}
	if p.Iterations == 0 {
		t.Fatal("partial shows no iterations")
	}
	if got.Checkpoint == "" {
		t.Fatal("no checkpoint recorded for interrupted attack")
	}
	if _, err := os.Stat(got.Checkpoint); err != nil {
		t.Fatalf("checkpoint missing on disk: %v", err)
	}
}

// waitProgress polls until the job has recorded at least n progress events.
func waitProgress(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.ProgressTotal >= n {
			return
		}
		if j.State.Terminal() {
			t.Fatalf("job %s finished (%s) before %d progress events", id, j.State, n)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %d progress events", id, n)
}

// TestJobTimeoutFailsWithPartial pins the per-job deadline path: the job
// fails (not cancelled) and surfaces its partial work.
func TestJobTimeoutFailsWithPartial(t *testing.T) {
	m := newManager(t, Config{Workers: 1, JobTimeout: 80 * time.Millisecond})
	j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 6, Secret: 0xAB5})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("state %s, want failed", got.State)
	}
	if got.Error == "" || got.Partial == nil {
		t.Fatalf("timeout job: error %q, partial %q", got.Error, got.Partial)
	}
}

// TestDrainCheckpointsAndResumeIsByteIdentical is the graceful-shutdown
// contract: a drain cuts an in-flight attack short but its transcript is on
// disk, and a restarted manager resumes it to the exact result a never-
// interrupted run produces.
func TestDrainCheckpointsAndResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	req := Request{Kind: KindAttack, OperandBits: 5, Secret: 0x1B3}

	m1, err := New(Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	j1, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, m1, j1.ID, 3)

	// SIGTERM path: drain with an expired grace period cancels the attack.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Drain(expired)
	got1, _ := m1.Get(j1.ID)
	if got1.State != StateCancelled {
		t.Fatalf("drained job state %s, want cancelled", got1.State)
	}
	if got1.Checkpoint == "" {
		t.Fatal("drained attack left no checkpoint")
	}

	// Restarted daemon, same checkpoint dir: the job resumes and completes.
	m2 := newManager(t, Config{Workers: 1, CheckpointDir: dir})
	j2 := submitWait(t, m2, req)
	if !j2.Resumed {
		t.Fatal("restarted run did not resume from the checkpoint")
	}

	// Reference: the same request cold, no checkpoints anywhere.
	m3 := newManager(t, Config{Workers: 1})
	j3 := submitWait(t, m3, req)
	if j3.Resumed {
		t.Fatal("reference run unexpectedly resumed")
	}

	if !bytes.Equal(j2.Result, j3.Result) {
		t.Fatalf("resumed result diverged from cold run:\nresumed: %s\ncold:    %s", j2.Result, j3.Result)
	}
	var resumed, cold AttackResult
	json.Unmarshal(j2.Result, &resumed)
	json.Unmarshal(j3.Result, &cold)
	if resumed.Key == "" || resumed.Key != cold.Key {
		t.Fatalf("recovered keys diverged: resumed %q, cold %q", resumed.Key, cold.Key)
	}
	// The served transcript is consumed on success.
	if _, err := os.Stat(got1.Checkpoint); err == nil {
		t.Fatal("checkpoint not removed after successful resume")
	}
}

// TestDrainRejectsNewWork pins the intake side of draining.
func TestDrainRejectsNewWork(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Drain(ctx)
	if _, err := m.Submit(fastAttack()); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

func TestQueueBound(t *testing.T) {
	m := newManager(t, Config{Workers: 1, MaxQueue: 1})
	// Keep submitting slow attacks until the single worker plus the single
	// queue slot are full and a submission bounces.
	var accepted []Job
	var rejected bool
	for i := 0; i < 50 && !rejected; i++ {
		j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 5, Secret: uint64(0x20 + i)})
		switch {
		case err == nil:
			accepted = append(accepted, j)
		case errors.Is(err, ErrQueueFull):
			rejected = true
		default:
			t.Fatalf("submit: %v, want ErrQueueFull", err)
		}
	}
	if !rejected {
		t.Fatal("bounded queue never rejected")
	}
	for _, j := range accepted {
		m.Cancel(j.ID)
	}
}

// TestConcurrentSubmitCancelHammer exercises the manager under the race
// detector: concurrent submits, cancels, polls and listings.
func TestConcurrentSubmitCancelHammer(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open("", 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Workers: 4, MaxQueue: 256, CheckpointDir: dir, Store: st})

	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	ids := make(chan string, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var req Request
				switch i % 3 {
				case 0:
					req = Request{Kind: KindAttack, OperandBits: 3, Secret: uint64(g*perG+i) % 63}
				case 1:
					req = Request{Kind: KindAttack, OperandBits: 4, Secret: uint64(g*perG+i) % 255}
				default:
					req = fastPrepare(KindLock)
					req.Seed = int64(g + 1)
				}
				j, err := m.Submit(req)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- j.ID
				if i%2 == 0 {
					m.Cancel(j.ID)
				}
				m.Get(j.ID)
				m.List()
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		j := waitTerminal(t, m, id)
		if j.State == StateFailed {
			t.Errorf("job %s failed: %s", id, j.Error)
		}
	}
}

// --- HTTP end-to-end ---

func postJob(t *testing.T, ts *httptest.Server, req Request) (int, Job) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j Job
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, j
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, Job) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j Job
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, j
}

// TestHTTPSubmitPollResult drives every job kind through the HTTP API:
// submit (202), poll until done, read the result payload.
func TestHTTPSubmitPollResult(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	reqs := []Request{
		fastPrepare(KindPrepare),
		fastPrepare(KindBind),
		fastPrepare(KindLock),
		fastPrepare(KindCodesign),
		fastAttack(),
	}
	for _, req := range reqs {
		status, j := postJob(t, ts, req)
		if status != http.StatusAccepted {
			t.Fatalf("%s: POST status %d, want 202", req.Kind, status)
		}
		deadline := time.Now().Add(60 * time.Second)
		for !j.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("%s job %s never finished", req.Kind, j.ID)
			}
			time.Sleep(2 * time.Millisecond)
			_, j = getJob(t, ts, j.ID)
		}
		if j.State != StateDone || len(j.Result) == 0 {
			t.Fatalf("%s job: state %s, error %q", req.Kind, j.State, j.Error)
		}
	}

	// The repeated request completes inline with a 200 and the cached bytes.
	status, warm := postJob(t, ts, fastAttack())
	if status != http.StatusOK || !warm.Cached {
		t.Fatalf("cache hit: status %d, cached %v", status, warm.Cached)
	}
}

func TestHTTPErrorsAndHealth(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	if status, _ := postJob(t, ts, Request{Kind: "nope"}); status != http.StatusBadRequest {
		t.Fatalf("bad kind: status %d, want 400", status)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind": "prepare", "bogus_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if status, _ := getJob(t, ts, "j999"); status != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", status)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	submitWait(t, m, fastAttack())
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{"bindlock_server_jobs_submitted_total", "bindlock_server_jobs_done_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, buf.String())
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	_, j := postJob(t, ts, Request{Kind: KindAttack, OperandBits: 5, Secret: 0x3C1})
	waitProgress(t, m, j.ID, 2)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
}

// TestHTTPDrainingHealth pins /healthz flipping to 503 once draining.
func TestHTTPDrainingHealth(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Drain(ctx)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	status, _ := postJob(t, ts, fastAttack())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", status)
	}
}

// TestProgressRingBounded pins that a long attack cannot grow the job record
// without bound.
func TestProgressRingBounded(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	j := submitWait(t, m, Request{Kind: KindAttack, OperandBits: 5, Secret: 0x155})
	if len(j.Progress) > progressRingCap {
		t.Fatalf("progress ring holds %d entries, cap %d", len(j.Progress), progressRingCap)
	}
	if j.ProgressTotal <= len(j.Progress) {
		t.Fatalf("total %d should exceed retained %d for a long attack", j.ProgressTotal, len(j.Progress))
	}
}

// TestBenchRequestServed runs one benchmark-sourced job to cover the bench
// path of resolve and the design memo.
func TestBenchRequestServed(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	j := submitWait(t, m, Request{Kind: KindPrepare, Bench: "fir", Samples: 50})
	var pr PrepareResult
	if err := json.Unmarshal(j.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Workload == "" || pr.NumFUs == 0 {
		t.Fatalf("bench prepare result %+v", pr)
	}
	if j.Req.Workload == "" {
		t.Fatal("resolved workload not echoed in the job record")
	}
}

func TestListOrdersJobs(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	var want []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 3, Secret: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}
	list := m.List()
	if len(list) != len(want) {
		t.Fatalf("List returned %d jobs, want %d", len(list), len(want))
	}
	for i, j := range list {
		if j.ID != want[i] {
			t.Fatalf("List[%d] = %s, want %s", i, j.ID, want[i])
		}
	}
	for _, id := range want {
		waitTerminal(t, m, id)
	}
}

func TestManyJobsAllLand(t *testing.T) {
	m := newManager(t, Config{Workers: 4, MaxQueue: 128})
	var ids []string
	for i := 0; i < 20; i++ {
		j, err := m.Submit(Request{Kind: KindAttack, OperandBits: 4, Secret: uint64(i * 11 % 255)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		j := waitTerminal(t, m, id)
		if j.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, j.State, j.Error)
		}
	}
}
