package server

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the admission limiter behind the HTTP submit endpoints: a
// classic leaky bucket refilled at rate tokens/second up to burst. A denied
// take consumes nothing and reports how long until the bucket could serve
// the request, which the HTTP layer surfaces as Retry-After.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns a limiter at the given sustained rate; rate <= 0
// disables admission control (nil limiter). burst <= 0 defaults to
// ceil(rate), so one second of traffic always fits.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Ceil(rate)
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// take attempts to consume n tokens at time now. On denial it returns the
// wait until n tokens will have accumulated (at least one second granularity
// is applied by the HTTP layer, not here).
func (tb *tokenBucket) take(n int, now time.Time) (time.Duration, bool) {
	if tb == nil {
		return 0, true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if now.After(tb.last) {
		tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
		tb.last = now
	}
	need := float64(n)
	if tb.tokens >= need {
		tb.tokens -= need
		return 0, true
	}
	return time.Duration((need - tb.tokens) / tb.rate * float64(time.Second)), false
}

// admit consumes n admission tokens, or reports how long the caller should
// back off. A manager without admission control always admits.
func (m *Manager) admit(n int) (time.Duration, bool) {
	retry, ok := m.limiter.take(n, time.Now())
	if !ok {
		m.reg.Add("server_admission_rejected_total", 1)
	}
	return retry, ok
}
