package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"bindlock"
	"bindlock/internal/fault"
	"bindlock/internal/netlist"
	"bindlock/internal/satattack"
)

// The result payloads, one per job kind. These are the bytes the result
// cache stores, so they contain only deterministic fields — never wall
// time, which lives on the job record instead.

// PrepareResult summarises a prepared design.
type PrepareResult struct {
	Name     string `json:"name,omitempty"`
	Adds     int    `json:"adds"`
	Muls     int    `json:"muls"`
	Inputs   int    `json:"inputs"`
	Outputs  int    `json:"outputs"`
	Cycles   int    `json:"cycles"`
	NumFUs   int    `json:"num_fus"`
	Samples  int    `json:"samples"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// TopAdd and TopMul are the most frequent input minterms per class over
	// the workload — the default candidate locked-input lists.
	TopAdd []uint32 `json:"top_add,omitempty"`
	TopMul []uint32 `json:"top_mul,omitempty"`
}

// LockSpec is one FU's locking specification in a result payload.
type LockSpec struct {
	FU       int      `json:"fu"`
	Scheme   string   `json:"scheme"`
	Minterms []uint32 `json:"minterms"`
	KeyBits  int      `json:"key_bits"`
}

// BoundOp is one operation-to-FU assignment in a result payload.
type BoundOp struct {
	Op int `json:"op"`
	FU int `json:"fu"`
}

// LockResult is a locking configuration with its Eqn. 1 resilience.
type LockResult struct {
	Class  string     `json:"class"`
	NumFUs int        `json:"num_fus"`
	Locks  []LockSpec `json:"locks"`
	// Lambda is the expected SAT-attack iteration count of Eqn. 1.
	Lambda float64 `json:"lambda"`
}

// BindResult is a binding under a fixed locking configuration with its
// Eqn. 2 application-error cost.
type BindResult struct {
	Binder string     `json:"binder"`
	Class  string     `json:"class"`
	NumFUs int        `json:"num_fus"`
	Locks  []LockSpec `json:"locks"`
	Assign []BoundOp  `json:"assign"`
	// Errors is the expected locked-input application count of Eqn. 2.
	Errors int `json:"errors"`
}

// CodesignResult is a co-designed locking configuration and binding.
type CodesignResult struct {
	Class      string     `json:"class"`
	NumFUs     int        `json:"num_fus"`
	Candidates int        `json:"candidates"`
	Locks      []LockSpec `json:"locks"`
	Assign     []BoundOp  `json:"assign"`
	Errors     int        `json:"errors"`
	Enumerated int        `json:"enumerated"`
	Lambda     float64    `json:"lambda"`
}

// AttackResult is a completed gate-level SAT attack: the recovered key and
// the measured effort.
type AttackResult struct {
	OperandBits int    `json:"operand_bits"`
	Scheme      string `json:"scheme"`
	Secret      uint64 `json:"secret,omitempty"`
	KeyBits     int    `json:"key_bits"`
	GateCount   int    `json:"gate_count"`
	Iterations  int    `json:"iterations"`
	// FeedbackEdges is the cyclic lock's key-programmed feedback MUX count
	// (scheme "cyclic" only).
	FeedbackEdges int `json:"feedback_edges,omitempty"`
	// Key is the recovered key as a '0'/'1' string, least significant bit
	// first, verified functionally correct against the oracle.
	Key string `json:"key"`
}

// AttackPartial is the best-so-far state of an interrupted attack.
type AttackPartial struct {
	Iterations int `json:"iterations"`
	KeyBits    int `json:"key_bits"`
	GateCount  int `json:"gate_count"`
}

// run dispatches a job to its kind's executor.
func (m *Manager) run(ctx context.Context, j *job) (any, error) {
	r := j.req
	if r.Kind == KindAttack {
		return m.runAttack(ctx, j)
	}
	d, err := m.design(ctx, r)
	if err != nil {
		return nil, err
	}
	switch r.Kind {
	case KindPrepare:
		return prepareResult(r, d), nil
	case KindBind:
		return runBind(r, d)
	case KindLock:
		return runLock(r, d)
	case KindCodesign:
		return runCodesign(ctx, r, d)
	}
	return nil, fmt.Errorf("server: no executor for kind %q", r.Kind)
}

// design returns the prepared design for r's front-of-line fields, memoised
// under the prepare fingerprint so a burst of bind/lock/codesign jobs over
// one kernel compiles and simulates it once.
func (m *Manager) design(ctx context.Context, r *resolved) (*bindlock.Design, error) {
	key := r.prepareFingerprint().Key()
	if d, ok := m.designs.Get(key); ok {
		m.reg.Add("server_design_memo_hit_total", 1)
		return d, nil
	}
	m.reg.Add("server_design_memo_miss_total", 1)
	opts := []bindlock.Option{
		bindlock.WithMaxFUs(r.MaxFUs),
		bindlock.WithSamples(r.Samples),
		bindlock.WithWorkload(r.gen),
		bindlock.WithSeed(r.Seed),
	}
	var d *bindlock.Design
	var err error
	if r.Bench != "" {
		d, err = bindlock.PrepareBenchmark(ctx, r.Bench, opts...)
	} else {
		d, err = bindlock.Prepare(ctx, r.Source, opts...)
	}
	if err != nil {
		return nil, err
	}
	m.designs.Put(key, d)
	return d, nil
}

func prepareResult(r *resolved, d *bindlock.Design) *PrepareResult {
	st := d.G.Stat()
	return &PrepareResult{
		Name: st.Name, Adds: st.Adds, Muls: st.Muls,
		Inputs: st.Inputs, Outputs: st.Outputs, Cycles: st.Cycles,
		NumFUs: d.NumFUs, Samples: r.Samples, Workload: r.Workload, Seed: r.Seed,
		TopAdd: minterms32(d.Candidates(bindlock.ClassAdd, 5)),
		TopMul: minterms32(d.Candidates(bindlock.ClassMul, 5)),
	}
}

// lockConfig builds the job's locking configuration: the LockedFUs most
// frequent candidate minterms of the class, MintermsPerFU each.
func lockConfig(r *resolved, d *bindlock.Design) (*bindlock.LockConfig, error) {
	need := r.LockedFUs * r.MintermsPerFU
	cands := d.Candidates(r.class, need)
	if len(cands) < need {
		return nil, fmt.Errorf("workload yields %d %s candidate minterms, need %d",
			len(cands), r.Class, need)
	}
	sets := make([][]bindlock.Minterm, r.LockedFUs)
	for i := range sets {
		sets[i] = cands[i*r.MintermsPerFU : (i+1)*r.MintermsPerFU]
	}
	return d.NewLockConfig(r.class, r.LockedFUs, sets)
}

func runLock(r *resolved, d *bindlock.Design) (any, error) {
	cfg, err := lockConfig(r, d)
	if err != nil {
		return nil, err
	}
	lambda, err := bindlock.Resilience(cfg)
	if err != nil {
		return nil, err
	}
	return &LockResult{
		Class: r.Class, NumFUs: cfg.NumFUs,
		Locks: lockSpecs(cfg), Lambda: lambda,
	}, nil
}

func runBind(r *resolved, d *bindlock.Design) (any, error) {
	cfg, err := lockConfig(r, d)
	if err != nil {
		return nil, err
	}
	var b *bindlock.Binding
	if r.Binder == "obfuscation-aware" {
		b, err = d.BindObfuscationAware(r.class, cfg)
	} else {
		b, err = d.BindBaseline(r.class, r.Binder)
	}
	if err != nil {
		return nil, err
	}
	errs, err := d.ApplicationErrors(cfg, b)
	if err != nil {
		return nil, err
	}
	return &BindResult{
		Binder: r.Binder, Class: r.Class, NumFUs: cfg.NumFUs,
		Locks: lockSpecs(cfg), Assign: assignList(b), Errors: errs,
	}, nil
}

func runCodesign(ctx context.Context, r *resolved, d *bindlock.Design) (any, error) {
	cands := d.Candidates(r.class, r.Candidates)
	if len(cands) < r.LockedFUs*r.MintermsPerFU {
		return nil, fmt.Errorf("workload yields %d %s candidate minterms, need %d",
			len(cands), r.Class, r.LockedFUs*r.MintermsPerFU)
	}
	res, err := d.CoDesign(ctx, r.class, r.LockedFUs, r.MintermsPerFU, cands)
	if err != nil {
		// Surface the frozen-so-far configuration inside the job record.
		if p, ok := bindlock.PartialResult[*bindlock.CoDesignResult](err); ok && p != nil {
			return codesignPayload(r, len(cands), p), err
		}
		return nil, err
	}
	return codesignPayload(r, len(cands), res), nil
}

func codesignPayload(r *resolved, candidates int, res *bindlock.CoDesignResult) *CodesignResult {
	out := &CodesignResult{
		Class: r.Class, Candidates: candidates,
		Errors: res.Errors, Enumerated: res.Enumerated,
	}
	if res.Cfg != nil {
		out.NumFUs = res.Cfg.NumFUs
		out.Locks = lockSpecs(res.Cfg)
		if lambda, err := bindlock.Resilience(res.Cfg); err == nil {
			out.Lambda = lambda
		}
	}
	if res.Binding != nil {
		out.Assign = assignList(res.Binding)
	}
	return out
}

// runAttack mirrors the facade's LockAndAttack, run directly over the
// gate-level stack so the recovered key lands in the result payload. When a
// checkpoint directory is configured the attack persists its oracle
// transcript under the job's fingerprint key; a resubmission after a drain
// or crash resumes from it and — by the transcript-replay contract —
// recovers a bit-identical key.
func (m *Manager) runAttack(ctx context.Context, j *job) (any, error) {
	r := j.req
	base, err := netlist.NewAdder(r.OperandBits)
	if err != nil {
		return nil, err
	}
	var locked *netlist.Circuit
	var key []bool
	if r.Scheme == SchemeCyclic {
		locked, key, err = netlist.LockCyclic(base, r.CycleEdges, r.CycleDecoys, r.Seed)
		if err == nil {
			m.reg.Add("cyclock_cycles_inserted", int64(len(locked.Feedback)))
		}
	} else {
		locked, key, err = netlist.LockSFLLHD0(base, []uint64{r.Secret})
	}
	if err != nil {
		return nil, err
	}
	opts := satattack.Options{
		CheckpointEvery: m.cfg.CheckpointEvery,
		CheckpointKey:   m.cfg.CheckpointKey,
		Solver:          r.Solver,
		Incremental:     r.Incremental,
		CycleBreak:      r.Scheme == SchemeCyclic,
	}
	// coldRestart marks a checkpoint that existed but was rejected
	// (corrupt, tampered, foreign): the resume is abandoned and the fault
	// schedule must restart from call zero, exactly like the mid-replay
	// mismatch path below.
	coldRestart := false
	if m.cfg.CheckpointDir != "" {
		opts.CheckpointPath = filepath.Join(m.cfg.CheckpointDir, j.key+".ckpt")
		data, rerr := os.ReadFile(opts.CheckpointPath)
		if rerr == nil {
			// Route the raw bytes through the injector's corruption site
			// before decoding, so chaos runs drive the same detection path
			// real bit rot would.
			data = fault.CorruptAt(ctx, "ckpt.load", data)
			if cp, derr := satattack.DecodeCheckpoint(data, m.cfg.CheckpointKey); derr == nil {
				opts.Resume = cp
				j.setResumed(opts.CheckpointPath)
			} else {
				// Corrupt, tampered or foreign checkpoint: never resume
				// from it — drop the file and run cold, deterministically.
				m.reg.Add("resume_checkpoints_rejected_total", 1)
				os.Remove(opts.CheckpointPath)
				coldRestart = true
			}
		} else if !errors.Is(rerr, fs.ErrNotExist) {
			// Unreadable is as untrustworthy as unverifiable.
			m.reg.Add("resume_checkpoints_rejected_total", 1)
			os.Remove(opts.CheckpointPath)
			coldRestart = true
		}
	}
	// The clean oracle stays unwrapped for the final key verification; the
	// attack oracle goes through the context's fault injector when the daemon
	// runs under a fault plan (chaos harness, noisy-tester campaigns). On
	// resume the injector counter must first be realigned to the checkpoint's
	// oracle-call count — the calls before it were served in a previous
	// process, and the schedule has to continue exactly where an
	// uninterrupted run would be, not re-draw the served prefix's faults
	// against post-resume queries (that divergence was the daemon-side bug
	// the CLI's resume path never had).
	oracle := satattack.OracleFromCircuit(locked, key)
	attackOracle := oracle
	inj := fault.FromContext(ctx)
	if inj != nil {
		if opts.Resume != nil {
			inj.Seek(opts.Resume.OracleCalls)
		} else if coldRestart {
			// The rejected checkpoint's writer advanced the schedule; its
			// replacement cold run starts at call zero.
			inj.Seek(0)
		}
		attackOracle = satattack.OracleFunc(inj.WrapOracle(oracle.Query))
	}
	res, err := satattack.Attack(ctx, locked, attackOracle, opts)
	if err != nil && errors.Is(err, satattack.ErrCheckpointMismatch) && opts.Resume != nil {
		// The transcript belongs to some other run: discard and restart.
		// A cold run's fault schedule starts at call zero, so the injector
		// rewinds with it.
		m.reg.Add("resume_checkpoints_rejected_total", 1)
		os.Remove(opts.CheckpointPath)
		j.setResumed("")
		opts.Resume = nil
		inj.Seek(0)
		res, err = satattack.Attack(ctx, locked, attackOracle, opts)
	}
	if err != nil {
		if opts.CheckpointPath != "" {
			if _, serr := os.Stat(opts.CheckpointPath); serr == nil {
				j.setCheckpoint(opts.CheckpointPath)
			}
		}
		if res != nil {
			return &AttackPartial{
				Iterations: res.Iterations,
				KeyBits:    len(locked.Keys),
				GateCount:  locked.LogicGates(),
			}, err
		}
		return nil, err
	}
	if err := satattack.VerifyKey(ctx, locked, res.Key, oracle); err != nil {
		return nil, err
	}
	if opts.CheckpointPath != "" {
		// The transcript has served its purpose.
		os.Remove(opts.CheckpointPath)
	}
	return &AttackResult{
		OperandBits: r.OperandBits, Scheme: r.Scheme, Secret: r.Secret,
		KeyBits: len(locked.Keys), GateCount: locked.LogicGates(),
		Iterations: res.Iterations, FeedbackEdges: len(locked.Feedback),
		Key: bitString(res.Key),
	}, nil
}

func bitString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func minterms32(ms []bindlock.Minterm) []uint32 {
	out := make([]uint32, len(ms))
	for i, m := range ms {
		out[i] = uint32(m)
	}
	return out
}

func lockSpecs(cfg *bindlock.LockConfig) []LockSpec {
	out := make([]LockSpec, 0, len(cfg.Locks))
	for _, l := range cfg.Locks {
		out = append(out, LockSpec{
			FU: l.FU, Scheme: l.Scheme.String(),
			Minterms: minterms32(l.Minterms), KeyBits: l.KeyBits,
		})
	}
	return out
}

// assignList flattens a binding into a stable op-sorted list.
func assignList(b *bindlock.Binding) []BoundOp {
	out := make([]BoundOp, 0, len(b.Assign))
	for op, fu := range b.Assign {
		out = append(out, BoundOp{Op: int(op), FU: fu})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Op < out[k].Op })
	return out
}
