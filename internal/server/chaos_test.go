package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bindlock/internal/fault"
	"bindlock/internal/metrics"
	"bindlock/internal/satattack"
	"bindlock/internal/store"
)

// TestServerChaos is the `make chaos-bindlockd` hook: a fault plan is active
// while a hammer of identical submissions runs, the manager drains, and a
// restarted manager picks the work back up. BINDLOCK_CHAOS_SEED varies the
// injected schedule; without it the test runs a fixed seed so the path stays
// covered on plain `go test`.
//
// The contract under test is the daemon's failure discipline end to end:
//
//   - an injected solver fault fails the job cleanly (StateFailed, error
//     recorded, manager alive) and the single-flight fan-out lands the SAME
//     failure on every attached record;
//   - the failed attack's checkpoint survives on disk;
//   - after a drain and restart the same submission resumes from that
//     checkpoint and produces bytes identical to a never-faulted reference.
//
// The fail interval is chosen below one attack's solver-call count, so the
// first execution is guaranteed to die mid-run with progress checkpointed.
func TestServerChaos(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("BINDLOCK_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BINDLOCK_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	// A width-4 attack makes ~140 sat.solve calls; [97, 125] keeps the first
	// injected failure inside the run but past several checkpointed
	// iterations, whatever the seed.
	every := 97 + uint64(seed)%29
	req := Request{Kind: KindAttack, OperandBits: 4, Secret: 0x6B}

	// Reference: a clean manager, no faults.
	ref := submitWait(t, newManager(t, Config{Workers: 2}), req)

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	regA := metrics.New()
	storeA, err := store.Open(filepath.Join(dir, "cache"), 0, regA)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Plan{Seed: seed, FailEvery: map[string]uint64{"sat.solve": every}}).WithRegistry(regA)
	a, err := New(Config{
		Workers: 2, CheckpointDir: ckptDir, Store: storeA, Registry: regA,
		BaseContext: fault.NewContext(context.Background(), inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	// Hammer: identical submissions race in while the fault plan is live.
	const dups = 4
	ids := make([]string, dups)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := a.Submit(req)
			if err != nil {
				t.Errorf("chaos submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	close(start)
	wg.Wait()

	failed := false
	var failMsg string
	for _, id := range ids {
		j := waitTerminal(t, a, id)
		switch j.State {
		case StateFailed:
			if !failed {
				failed, failMsg = true, j.Error
			} else if j.Error != failMsg {
				t.Fatalf("fan-out diverged: %q vs %q", j.Error, failMsg)
			}
		case StateDone:
			// A seed whose schedule misses the run entirely still must be
			// byte-identical; the resume path is then exercised elsewhere.
			if !bytes.Equal(j.Result, ref.Result) {
				t.Fatalf("chaos run diverged from reference without faults firing")
			}
		default:
			t.Fatalf("chaos job %s landed in state %s", id, j.State)
		}
	}
	if failed {
		if !strings.Contains(failMsg, "fault") {
			t.Fatalf("injected failure surfaced as %q, want a fault error", failMsg)
		}
		// The interrupted attack left exactly its own checkpoint behind.
		entries, err := os.ReadDir(ckptDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".ckpt") {
			t.Fatalf("failed attack left %d checkpoint files, want 1", len(entries))
		}
		if v, _ := regA.Snapshot().Counter("fault_hits_total"); v == 0 {
			t.Fatal("fault plan active but fault_hits_total never moved")
		}
	}

	// Drain the faulted daemon; the checkpoint must survive the drain.
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	a.Drain(drainCtx)
	cancel()

	// Restart on the same checkpoint and cache directories, fault plan
	// cleared — the operator fixed the box and brought the daemon back up.
	regB := metrics.New()
	storeB, err := store.Open(filepath.Join(dir, "cache"), 0, regB)
	if err != nil {
		t.Fatal(err)
	}
	b := newManager(t, Config{Workers: 2, CheckpointDir: ckptDir, Store: storeB, Registry: regB})
	final := submitWait(t, b, req)
	if failed && !final.Resumed {
		t.Fatal("restarted run ignored the checkpoint the fault left behind")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("resumed result diverged from the clean reference:\nref: %s\ngot: %s",
			ref.Result, final.Result)
	}
	if entries, _ := os.ReadDir(ckptDir); len(entries) != 0 {
		t.Fatalf("%d checkpoint files left after the resumed run succeeded", len(entries))
	}
	t.Logf("chaos seed %d: fail-every %d, faulted=%v, resumed=%v", seed, every, failed, final.Resumed)
}

// TestServerChaosFaultScheduleResume pins fault-schedule continuity across a
// daemon kill/restart: the resumed attack's oracle faults must continue the
// uninterrupted run's schedule, not restart it.
//
// The fault schedule is a pure function of (seed, oracle-call index), so an
// uninterrupted run and a kill/resume pair must agree on which call indices
// fault. The daemon-side bug this guards against: the CLI resume path always
// realigned the injector (inj.Seek(cp.OracleCalls)) but the server resume
// path never did, so a restarted daemon re-drew the served prefix's faults
// against post-resume queries — silently diverging from the schedule the
// plan promised.
//
// The plan combines a sat.solve kill (to die mid-attack with a checkpoint on
// disk) with zero-duration latency spikes on the oracle surface: spikes are
// drawn per call index and counted in fault_latency_spikes_total but change
// no answers, making the schedule observable without perturbing results.
func TestServerChaosFaultScheduleResume(t *testing.T) {
	const seed = int64(1)
	every := 97 + uint64(seed)%29
	oraclePlan := fault.Plan{Seed: seed, LatencyRate: 0.3}
	req := Request{Kind: KindAttack, OperandBits: 4, Secret: 0x6B}

	// Uninterrupted reference under the oracle plan alone: total call count
	// and result bytes the kill/resume pair must land on.
	refReg := metrics.New()
	refInj := fault.New(oraclePlan).WithRegistry(refReg)
	refMgr := newManager(t, Config{
		Workers: 2, Registry: refReg,
		BaseContext: fault.NewContext(context.Background(), refInj),
	})
	ref := submitWait(t, refMgr, req)
	refCalls := refInj.Calls()
	if refCalls == 0 {
		t.Fatal("reference attack made no oracle calls; the schedule assertion is vacuous")
	}

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// First daemon: same oracle plan plus the solver kill.
	killPlan := oraclePlan
	killPlan.FailEvery = map[string]uint64{"sat.solve": every}
	regA := metrics.New()
	injA := fault.New(killPlan).WithRegistry(regA)
	a, err := New(Config{
		Workers: 2, CheckpointDir: ckptDir, Registry: regA,
		BaseContext: fault.NewContext(context.Background(), injA),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	jA, err := a.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	recA := waitTerminal(t, a, jA.ID)
	if recA.State != StateFailed {
		t.Fatalf("kill plan did not fire: job landed in %s", recA.State)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	a.Drain(drainCtx)
	cancel()

	entries, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("killed attack left %d checkpoints, want 1", len(entries))
	}
	cp, err := satattack.LoadCheckpoint(filepath.Join(ckptDir, entries[0].Name()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.OracleCalls == 0 || cp.OracleCalls >= refCalls {
		t.Fatalf("checkpoint at %d oracle calls (reference total %d): kill landed outside the attack",
			cp.OracleCalls, refCalls)
	}

	// Restarted daemon: fresh process, fresh injector, solver fault cleared,
	// oracle plan still active.
	regB := metrics.New()
	injB := fault.New(oraclePlan).WithRegistry(regB)
	b := newManager(t, Config{
		Workers: 2, CheckpointDir: ckptDir, Registry: regB,
		BaseContext: fault.NewContext(context.Background(), injB),
	})
	final := submitWait(t, b, req)
	if !final.Resumed {
		t.Fatal("restarted run ignored the checkpoint")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("resumed result diverged from reference:\nref: %s\ngot: %s", ref.Result, final.Result)
	}

	// Schedule continuity: the resumed injector was seeked to the
	// checkpoint's call count, so it finishes exactly where the
	// uninterrupted run's counter finished. Without the realignment it
	// would finish at refCalls - cp.OracleCalls.
	if got := injB.Calls(); got != refCalls {
		t.Fatalf("resumed injector finished at call %d, want %d (checkpoint at %d): "+
			"fault schedule diverged from the uninterrupted run", got, refCalls, cp.OracleCalls)
	}

	// The spikes drawn after resume must be the reference schedule's draws
	// for call indices [cp.OracleCalls, refCalls) — replay that exact window
	// through a fresh injector to get the expected count.
	replayReg := metrics.New()
	replay := fault.New(oraclePlan).WithRegistry(replayReg)
	replay.Seek(cp.OracleCalls)
	q := replay.WrapOracle(func(in []bool) ([]bool, error) { return in, nil })
	for n := cp.OracleCalls; n < refCalls; n++ {
		if _, err := q(nil); err != nil {
			t.Fatal(err)
		}
	}
	wantSpikes, _ := replayReg.Snapshot().Counter("fault_latency_spikes_total")
	gotSpikes, _ := regB.Snapshot().Counter("fault_latency_spikes_total")
	if gotSpikes != wantSpikes {
		t.Fatalf("resumed run drew %d latency spikes, want %d for schedule window [%d, %d)",
			gotSpikes, wantSpikes, cp.OracleCalls, refCalls)
	}
	t.Logf("schedule: ref %d calls, checkpoint at %d, resumed window drew %d spikes",
		refCalls, cp.OracleCalls, gotSpikes)
}
