package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bindlock/internal/fault"
	"bindlock/internal/metrics"
	"bindlock/internal/store"
)

// TestServerChaos is the `make chaos-bindlockd` hook: a fault plan is active
// while a hammer of identical submissions runs, the manager drains, and a
// restarted manager picks the work back up. BINDLOCK_CHAOS_SEED varies the
// injected schedule; without it the test runs a fixed seed so the path stays
// covered on plain `go test`.
//
// The contract under test is the daemon's failure discipline end to end:
//
//   - an injected solver fault fails the job cleanly (StateFailed, error
//     recorded, manager alive) and the single-flight fan-out lands the SAME
//     failure on every attached record;
//   - the failed attack's checkpoint survives on disk;
//   - after a drain and restart the same submission resumes from that
//     checkpoint and produces bytes identical to a never-faulted reference.
//
// The fail interval is chosen below one attack's solver-call count, so the
// first execution is guaranteed to die mid-run with progress checkpointed.
func TestServerChaos(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("BINDLOCK_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BINDLOCK_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	// A width-4 attack makes ~140 sat.solve calls; [97, 125] keeps the first
	// injected failure inside the run but past several checkpointed
	// iterations, whatever the seed.
	every := 97 + uint64(seed)%29
	req := Request{Kind: KindAttack, OperandBits: 4, Secret: 0x6B}

	// Reference: a clean manager, no faults.
	ref := submitWait(t, newManager(t, Config{Workers: 2}), req)

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	regA := metrics.New()
	storeA, err := store.Open(filepath.Join(dir, "cache"), 0, regA)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Plan{Seed: seed, FailEvery: map[string]uint64{"sat.solve": every}}).WithRegistry(regA)
	a, err := New(Config{
		Workers: 2, CheckpointDir: ckptDir, Store: storeA, Registry: regA,
		BaseContext: fault.NewContext(context.Background(), inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	// Hammer: identical submissions race in while the fault plan is live.
	const dups = 4
	ids := make([]string, dups)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := a.Submit(req)
			if err != nil {
				t.Errorf("chaos submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	close(start)
	wg.Wait()

	failed := false
	var failMsg string
	for _, id := range ids {
		j := waitTerminal(t, a, id)
		switch j.State {
		case StateFailed:
			if !failed {
				failed, failMsg = true, j.Error
			} else if j.Error != failMsg {
				t.Fatalf("fan-out diverged: %q vs %q", j.Error, failMsg)
			}
		case StateDone:
			// A seed whose schedule misses the run entirely still must be
			// byte-identical; the resume path is then exercised elsewhere.
			if !bytes.Equal(j.Result, ref.Result) {
				t.Fatalf("chaos run diverged from reference without faults firing")
			}
		default:
			t.Fatalf("chaos job %s landed in state %s", id, j.State)
		}
	}
	if failed {
		if !strings.Contains(failMsg, "fault") {
			t.Fatalf("injected failure surfaced as %q, want a fault error", failMsg)
		}
		// The interrupted attack left exactly its own checkpoint behind.
		entries, err := os.ReadDir(ckptDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".ckpt") {
			t.Fatalf("failed attack left %d checkpoint files, want 1", len(entries))
		}
		if v, _ := regA.Snapshot().Counter("fault_hits_total"); v == 0 {
			t.Fatal("fault plan active but fault_hits_total never moved")
		}
	}

	// Drain the faulted daemon; the checkpoint must survive the drain.
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	a.Drain(drainCtx)
	cancel()

	// Restart on the same checkpoint and cache directories, fault plan
	// cleared — the operator fixed the box and brought the daemon back up.
	regB := metrics.New()
	storeB, err := store.Open(filepath.Join(dir, "cache"), 0, regB)
	if err != nil {
		t.Fatal(err)
	}
	b := newManager(t, Config{Workers: 2, CheckpointDir: ckptDir, Store: storeB, Registry: regB})
	final := submitWait(t, b, req)
	if failed && !final.Resumed {
		t.Fatal("restarted run ignored the checkpoint the fault left behind")
	}
	if !bytes.Equal(final.Result, ref.Result) {
		t.Fatalf("resumed result diverged from the clean reference:\nref: %s\ngot: %s",
			ref.Result, final.Result)
	}
	if entries, _ := os.ReadDir(ckptDir); len(entries) != 0 {
		t.Fatalf("%d checkpoint files left after the resumed run succeeded", len(entries))
	}
	t.Logf("chaos seed %d: fail-every %d, faulted=%v, resumed=%v", seed, every, failed, final.Resumed)
}
