package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"bindlock/internal/progress"
)

// State is a job's lifecycle stage.
type State string

// The job states. Queued and Running are live; Done, Failed and Cancelled
// are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ProgressEntry is one progress event retained in a job record.
type ProgressEntry struct {
	Kind   string `json:"kind"`
	Phase  string `json:"phase"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// progressRing is the per-job progress.Hook: a bounded ring of the most
// recent events plus a running total, so a chatty attack (one Step per DIP)
// cannot grow a job record without bound. Attached duplicate jobs share the
// primary's ring, so long-polling any record of a single-flight group sees
// the live progress of the one execution.
type progressRing struct {
	mu    sync.Mutex
	buf   []ProgressEntry
	next  int
	total int
	// onEvent, when set, is invoked (outside the ring lock) after each
	// recorded event; the job manager points it at the owning job's wake so
	// long-poll waiters see new events promptly.
	onEvent func()
}

const progressRingCap = 32

// OnProgress implements progress.Hook.
func (p *progressRing) OnProgress(e progress.Event) {
	entry := ProgressEntry{
		Kind: e.Kind.String(), Phase: e.Phase,
		Done: e.Done, Total: e.Total, Detail: e.Detail,
	}
	p.mu.Lock()
	if len(p.buf) < progressRingCap {
		p.buf = append(p.buf, entry)
	} else {
		p.buf[p.next%progressRingCap] = entry
	}
	p.next++
	p.total++
	cb := p.onEvent
	p.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// snapshot returns the retained events oldest-first plus the total count.
func (p *progressRing) snapshot() ([]ProgressEntry, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProgressEntry, 0, len(p.buf))
	if len(p.buf) < progressRingCap {
		out = append(out, p.buf...)
	} else {
		for i := 0; i < progressRingCap; i++ {
			out = append(out, p.buf[(p.next+i)%progressRingCap])
		}
	}
	return out, p.total
}

// steps returns how many Step events of the phase were retained; tests and
// drain heuristics use it to tell whether a job has made real progress.
func (p *progressRing) steps(phase string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.buf {
		if e.Kind == "step" && e.Phase == phase {
			n++
		}
	}
	return n
}

// job is the manager's internal record. Fields are guarded by mu; the
// Job snapshot is the only thing handed out.
type job struct {
	mu sync.Mutex

	id   string
	kind string
	key  string
	req  *resolved

	state      State
	cached     bool
	resumed    bool
	checkpoint string
	result     json.RawMessage
	partial    json.RawMessage
	errMsg     string

	// attachedTo names the primary job this record rides on (single-flight
	// duplicate side); attached/duplicates are the primary side's live
	// pointers and ids of the records riding on it.
	attachedTo string
	duplicates []string
	attached   []*job

	created  time.Time
	started  time.Time
	finished time.Time

	prog *progressRing

	// notify is closed and replaced on every observable change (state
	// transition, progress event), waking long-poll waiters. Guarded by mu.
	notify chan struct{}

	// cancel aborts the running job; non-nil exactly while state is
	// StateRunning.
	cancel context.CancelCauseFunc
}

// newJob builds a queued record with its own progress ring and wake channel.
func newJob(r *resolved, key string, now time.Time) *job {
	j := &job{
		kind: r.Kind, key: key, req: r, created: now,
		prog: &progressRing{}, state: StateQueued,
		notify: make(chan struct{}),
	}
	j.prog.onEvent = j.wake
	return j
}

// wakeLocked signals long-poll waiters; callers hold j.mu.
func (j *job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// wake signals waiters on this record and on every record attached to it.
func (j *job) wake() {
	j.mu.Lock()
	j.wakeLocked()
	attached := append([]*job(nil), j.attached...)
	j.mu.Unlock()
	for _, a := range attached {
		a.mu.Lock()
		a.wakeLocked()
		a.mu.Unlock()
	}
}

// waitChan returns the current wake channel; it is closed at the next
// observable change.
func (j *job) waitChan() chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// Job is the externally visible job record, as served by the HTTP API.
type Job struct {
	ID    string  `json:"id"`
	Kind  string  `json:"kind"`
	State State   `json:"state"`
	Key   string  `json:"key"`
	Req   Request `json:"request"`

	// Cached reports that the result was served from the content-addressed
	// store without running.
	Cached bool `json:"cached,omitempty"`
	// Resumed reports that an attack job continued from a checkpoint left
	// behind by a drained predecessor.
	Resumed bool `json:"resumed,omitempty"`
	// Checkpoint is the path of the oracle transcript an interrupted attack
	// left behind; resubmitting the identical request resumes from it.
	Checkpoint string `json:"checkpoint,omitempty"`

	// AttachedTo names the in-flight job this record deduplicated onto:
	// one execution, one checkpoint file, and this record lands the same
	// byte-identical result the primary does.
	AttachedTo string `json:"attached_to,omitempty"`
	// Duplicates lists the job ids attached to this record.
	Duplicates []string `json:"duplicates,omitempty"`

	// Result is the canonical result payload of a Done job — the exact
	// bytes the cache stores and any identical future request is served.
	Result json.RawMessage `json:"result,omitempty"`
	// Partial is the best-so-far payload an interrupted job surfaced
	// through the typed interrupt errors.
	Partial json.RawMessage `json:"partial,omitempty"`
	Error   string          `json:"error,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Progress holds the most recent progress events (bounded) and
	// ProgressTotal the lifetime event count.
	Progress      []ProgressEntry `json:"progress,omitempty"`
	ProgressTotal int             `json:"progress_total,omitempty"`
}

// snapshot copies the record under its lock. Key hygiene: an attack job's
// secret is key material, so the request echo zeroes it (SecretRedacted
// marks the zeroing) — the result payload is the only place key bits leave
// the server.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Job{
		ID: j.id, Kind: j.kind, State: j.state, Key: j.key, Req: j.req.Request,
		Cached: j.cached, Resumed: j.resumed, Checkpoint: j.checkpoint,
		AttachedTo: j.attachedTo,
		Duplicates: append([]string(nil), j.duplicates...),
		Result:     j.result, Partial: j.partial, Error: j.errMsg,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	if j.prog != nil {
		out.Progress, out.ProgressTotal = j.prog.snapshot()
	}
	if out.Kind == KindAttack {
		out.Req.Secret = 0
		out.Req.SecretRedacted = true
	}
	return out
}

// setResumed records that the running attack picked up a checkpoint.
func (j *job) setResumed(path string) {
	j.mu.Lock()
	j.resumed = path != ""
	j.checkpoint = path
	j.mu.Unlock()
}

// setCheckpoint records where an interrupted attack left its transcript.
func (j *job) setCheckpoint(path string) {
	j.mu.Lock()
	j.checkpoint = path
	j.mu.Unlock()
}
