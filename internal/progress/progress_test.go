package progress

import (
	"context"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// All emit helpers must tolerate a nil hook.
	Emit(nil, Event{Kind: Step, Phase: "x"})
	Start(nil, "x", "")
	End(nil, "x", "")
	Tick(nil, "x", 1, 2)
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield a nil hook")
	}
	var got []Event
	h := Func(func(e Event) { got = append(got, e) })
	ctx := NewContext(context.Background(), h)
	FromContext(ctx).OnProgress(Event{Kind: PhaseStart, Phase: "attack"})
	if len(got) != 1 || got[0].Phase != "attack" {
		t.Fatalf("hook did not round-trip through the context: %v", got)
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("NewContext(nil hook) must return ctx unchanged")
	}
}

func TestTee(t *testing.T) {
	var a, b Counter
	h := Tee(nil, &a, nil, &b)
	h.OnProgress(Event{Kind: Step, Phase: "p"})
	if a.Steps("p") != 1 || b.Steps("p") != 1 {
		t.Fatalf("tee fan-out: a=%d b=%d", a.Steps("p"), b.Steps("p"))
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee of only nils must be nil")
	}
	if Tee(&a) != Hook(&a) {
		t.Fatal("Tee of one hook must return it directly")
	}
}

func TestLoggerThrottlesSteps(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb, EveryN: 10}
	l.OnProgress(Event{Kind: PhaseStart, Phase: "solve", Detail: "miter"})
	for i := 1; i <= 25; i++ {
		l.OnProgress(Event{Kind: Step, Phase: "solve", Done: i, Conflicts: int64(i)})
	}
	l.OnProgress(Event{Kind: PhaseEnd, Phase: "solve"})
	out := sb.String()
	lines := strings.Count(out, "\n")
	// start + steps 10 and 20 + end = 4 lines.
	if lines != 4 {
		t.Fatalf("logger emitted %d lines, want 4:\n%s", lines, out)
	}
	if !strings.Contains(out, "start miter") || !strings.Contains(out, "conflicts=20") {
		t.Fatalf("unexpected logger output:\n%s", out)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.OnProgress(Event{Kind: PhaseStart, Phase: "a"})
	c.OnProgress(Event{Kind: Step, Phase: "a"})
	c.OnProgress(Event{Kind: Step, Phase: "a"})
	c.OnProgress(Event{Kind: PhaseEnd, Phase: "a"})
	if c.Starts("a") != 1 || c.Steps("a") != 2 || c.Ends("a") != 1 {
		t.Fatalf("counter: %d/%d/%d", c.Starts("a"), c.Steps("a"), c.Ends("a"))
	}
	if c.Steps("missing") != 0 {
		t.Fatal("unknown phase must count zero")
	}
}
