// Package progress is the telemetry layer of the compute stack: a Hook
// interface receiving per-phase events (phase start/end, iteration counts,
// solver conflicts and decisions, attack DIP counts) from every long-running
// computation.
//
// Hooks travel inside a context.Context (NewContext/FromContext), so the
// compute packages need no extra parameters: each retrieves the hook from
// the ctx it already takes for cancellation and emits through the nil-safe
// Emit/Start/End helpers. The facade's WithProgress option and the cmd tools'
// -v/-progress flags install a hook at the top of the stack.
package progress

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// Kind distinguishes the event types a Hook receives.
type Kind uint8

const (
	// PhaseStart opens a named phase ("attack", "codesign", "sweep"...).
	PhaseStart Kind = iota
	// Step reports iteration progress within a phase.
	Step
	// PhaseEnd closes a phase.
	PhaseEnd
)

func (k Kind) String() string {
	switch k {
	case PhaseStart:
		return "start"
	case Step:
		return "step"
	case PhaseEnd:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one progress report.
type Event struct {
	Kind Kind
	// Phase names the computation stage: "compile", "simulate", "solve",
	// "attack", "codesign", "sweep", ...
	Phase string
	// Done and Total count phase iterations (samples simulated, DIPs found,
	// candidate sets evaluated). Total is 0 when unknown.
	Done, Total int
	// Conflicts and Decisions carry CDCL solver counters on "solve" steps.
	Conflicts, Decisions int64
	// Detail is a free-form annotation (benchmark name, circuit name...).
	Detail string
}

// Hook receives progress events. Implementations must be cheap — they run
// inside solver restart loops — and safe for concurrent use: experiment
// drivers may emit from parallel workers in the future.
type Hook interface {
	OnProgress(Event)
}

// Func adapts a plain function to the Hook interface.
type Func func(Event)

// OnProgress implements Hook.
func (f Func) OnProgress(e Event) { f(e) }

// Emit forwards an event to a possibly-nil hook.
func Emit(h Hook, e Event) {
	if h != nil {
		h.OnProgress(e)
	}
}

// Start emits a PhaseStart event.
func Start(h Hook, phase, detail string) {
	Emit(h, Event{Kind: PhaseStart, Phase: phase, Detail: detail})
}

// End emits a PhaseEnd event.
func End(h Hook, phase, detail string) {
	Emit(h, Event{Kind: PhaseEnd, Phase: phase, Detail: detail})
}

// Tick emits a Step event with iteration counts only.
func Tick(h Hook, phase string, done, total int) {
	Emit(h, Event{Kind: Step, Phase: phase, Done: done, Total: total})
}

type ctxKey struct{}

// NewContext returns a context carrying the hook. A nil hook returns ctx
// unchanged.
func NewContext(ctx context.Context, h Hook) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, h)
}

// FromContext extracts the context's hook, or nil when none is installed.
func FromContext(ctx context.Context) Hook {
	if ctx == nil {
		return nil
	}
	h, _ := ctx.Value(ctxKey{}).(Hook)
	return h
}

// Tee fans events out to several hooks (nil entries are skipped).
func Tee(hooks ...Hook) Hook {
	var live []Hook
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Hook

func (t tee) OnProgress(e Event) {
	for _, h := range t {
		h.OnProgress(e)
	}
}

// Logger is a Hook printing human-readable progress lines to W. Step events
// are throttled per phase to one line every EveryN (default 1000) to keep
// solver-restart and sweep chatter readable.
type Logger struct {
	W io.Writer
	// EveryN prints every Nth Step event of a phase; <= 0 means 1000.
	EveryN int

	mu    sync.Mutex
	steps map[string]int
}

// OnProgress implements Hook.
func (l *Logger) OnProgress(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	every := l.EveryN
	if every <= 0 {
		every = 1000
	}
	switch e.Kind {
	case PhaseStart:
		fmt.Fprintf(l.W, "[%s] start %s\n", e.Phase, e.Detail)
	case PhaseEnd:
		fmt.Fprintf(l.W, "[%s] done %s\n", e.Phase, e.Detail)
	case Step:
		if l.steps == nil {
			l.steps = map[string]int{}
		}
		l.steps[e.Phase]++
		if l.steps[e.Phase]%every != 0 {
			return
		}
		line := fmt.Sprintf("[%s]", e.Phase)
		if e.Total > 0 {
			line += fmt.Sprintf(" %d/%d", e.Done, e.Total)
		} else if e.Done > 0 {
			line += fmt.Sprintf(" %d", e.Done)
		}
		if e.Conflicts > 0 || e.Decisions > 0 {
			line += fmt.Sprintf(" conflicts=%d decisions=%d", e.Conflicts, e.Decisions)
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		fmt.Fprintln(l.W, line)
	}
}

// Counter is a Hook tallying events per phase; the cancellation and
// progress-wiring tests assert against it.
type Counter struct {
	mu     sync.Mutex
	starts map[string]int
	steps  map[string]int
	ends   map[string]int
}

// OnProgress implements Hook.
func (c *Counter) OnProgress(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.starts == nil {
		c.starts, c.steps, c.ends = map[string]int{}, map[string]int{}, map[string]int{}
	}
	switch e.Kind {
	case PhaseStart:
		c.starts[e.Phase]++
	case Step:
		c.steps[e.Phase]++
	case PhaseEnd:
		c.ends[e.Phase]++
	}
}

// Starts returns the PhaseStart count of a phase.
func (c *Counter) Starts(phase string) int { return c.count(&c.starts, phase) }

// Steps returns the Step count of a phase.
func (c *Counter) Steps(phase string) int { return c.count(&c.steps, phase) }

// Ends returns the PhaseEnd count of a phase.
func (c *Counter) Ends(phase string) int { return c.count(&c.ends, phase) }

func (c *Counter) count(m *map[string]int, phase string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return (*m)[phase]
}
