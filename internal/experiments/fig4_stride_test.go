package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"bindlock/internal/parallel"
)

// TestAssignmentSpaceSaturates is the regression test for the truncated
// partial product: the old guard broke out of the multiply loop with `total`
// holding only the factors accumulated so far, so stride sampling covered a
// biased low-index subspace. The saturating product always dominates every
// in-range space.
func TestAssignmentSpaceSaturates(t *testing.T) {
	cases := []struct {
		nCombos, lockedFUs int
		want               int64
	}{
		{120, 1, 120},
		{120, 2, 14400},
		{120, 3, 1728000}, // the sweep's largest default space
		{1, 5, 1},
		{45, 0, 1},
		// 120^10 ≈ 6.2e20 overflows the old int guard; it saturates now.
		{120, 10, spaceCap},
		// 2^31 FU choices at 2 locked FUs exceed 2^62 exactly at the edge.
		{1 << 31, 2, spaceCap},
	}
	for _, c := range cases {
		if got := assignmentSpace(c.nCombos, c.lockedFUs); got != c.want {
			t.Errorf("assignmentSpace(%d, %d) = %d, want %d", c.nCombos, c.lockedFUs, got, c.want)
		}
	}
	if spaceCap != 4611686018427387904 {
		t.Fatalf("spaceCap = %d, want 1<<62", spaceCap)
	}
}

// TestStrideIndexPinned pins the sampled indices, saturated and not: the
// stride must span the whole space instead of the old truncated prefix.
func TestStrideIndexPinned(t *testing.T) {
	// Unsaturated: plain floor(j*total/n).
	if got := strideIndex(2, 40, 1728000); got != 86400 {
		t.Errorf("strideIndex(2, 40, 1728000) = %d, want 86400", got)
	}
	// Saturated: 4 samples stride the full 2^62 space in quarters. The
	// pre-fix arithmetic would have overflowed int64 at j*total here.
	want := []int64{0, 1152921504606846976, 2305843009213693952, 3458764513820540928}
	for j, w := range want {
		if got := strideIndex(j, 4, spaceCap); got != w {
			t.Errorf("strideIndex(%d, 4, cap) = %d, want %d", j, got, w)
		}
	}
	// The last of n samples stays strictly inside the space.
	if got := strideIndex(299, 300, spaceCap); got < 0 || got >= spaceCap {
		t.Errorf("strideIndex(299, 300, cap) = %d outside [0, cap)", got)
	}
}

// cellsBitIdentical compares Fig4Data bit-for-bit, treating float fields by
// their IEEE-754 bits so that NaN placeholders (optimal pass skipped) compare
// equal when — and only when — they are the same bit pattern.
func cellsBitIdentical(t *testing.T, a, b *Fig4Data) {
	t.Helper()
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		va, vb := reflect.ValueOf(a.Cells[i]), reflect.ValueOf(b.Cells[i])
		for f := 0; f < va.NumField(); f++ {
			fa, fb := va.Field(f), vb.Field(f)
			name := va.Type().Field(f).Name
			if fa.Kind() == reflect.Float64 {
				if math.Float64bits(fa.Float()) != math.Float64bits(fb.Float()) {
					t.Fatalf("cell %d field %s: %v vs %v", i, name, fa.Float(), fb.Float())
				}
				continue
			}
			if !reflect.DeepEqual(fa.Interface(), fb.Interface()) {
				t.Fatalf("cell %d field %s: %v vs %v", i, name, fa.Interface(), fb.Interface())
			}
		}
	}
}

// TestResilienceParallelDeterminism: pre-drawn secrets and task-order
// aggregation keep the SAT-attack sweep identical across worker counts.
func TestResilienceParallelDeterminism(t *testing.T) {
	seq, err := Resilience(parallel.NewContext(context.Background(), 1), []int{2, 3}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Resilience(parallel.NewContext(context.Background(), 4), []int{2, 3}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel rows differ:\nseq %+v\npar %+v", seq, par)
	}
}

// TestFig4ParallelDeterminism asserts the tentpole guarantee at the sweep
// level: Fig4 output is bit-identical across worker counts.
func TestFig4ParallelDeterminism(t *testing.T) {
	s := smallSuite(t)
	s.Cfg.Parallelism = 1
	seq, err := s.Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		s.Cfg.Parallelism = workers
		par, err := s.Fig4(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		cellsBitIdentical(t, seq, par)
	}
}
